// Package simdata generates the synthetic workloads used by examples,
// experiments and benchmarks.
//
// The flagship generator is the IP-traffic substitute for §8.2 (see
// DESIGN.md, substitution S1): the paper's evaluation uses proprietary
// hourly flow logs, so we synthesize two correlated heavy-tailed instances
// calibrated to the published marginals (per-hour distinct destinations,
// union size, flows per hour, and the sum of per-key maxima).
package simdata

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/randx"
)

// TrafficConfig parameterizes a two-instance traffic-like workload.
type TrafficConfig struct {
	// SharedKeys is the number of keys active in both instances.
	SharedKeys int
	// Only1 and Only2 are keys active in exactly one instance.
	Only1, Only2 int
	// Alpha is the Pareto tail exponent of the per-key value distribution
	// (smaller = heavier tail). Typical traffic: 1.1–1.5.
	Alpha float64
	// MeanValue is the approximate mean per-key value (flow count).
	MeanValue float64
	// SharedMean, when positive, overrides MeanValue for shared keys, and
	// UniqueMean for single-instance keys. Real traffic concentrates
	// volume on stable (shared) destinations; the §8.2 statistics imply
	// exactly that (the published Σmax is inconsistent with uniform value
	// allocation across shared and unique keys).
	SharedMean, UniqueMean float64
	// Jitter controls cross-hour variation of a shared key's value:
	// v2 = v1 · exp(Jitter·(U−U')) for independent uniforms. 0 means
	// identical values; ~1 gives the mild hour-over-hour churn of traffic
	// data.
	Jitter float64
	// Seed drives all randomness deterministically.
	Seed uint64
}

// PaperTraffic returns the configuration calibrated to the §8.2 statistics:
// about 2.45·10⁴ distinct destinations per hour, 3.8·10⁴ distinct in the
// union, ≈5.5·10⁵ flows per hour, and Σ max ≈ 7.47·10⁵.
func PaperTraffic() TrafficConfig {
	return TrafficConfig{
		SharedKeys: 11000,
		Only1:      13500,
		Only2:      13500,
		Alpha:      1.25,
		MeanValue:  22.4, // 5.5e5 flows / 2.45e4 keys
		SharedMean: 46,   // stable destinations carry most volume
		UniqueMean: 7.5,  // churned destinations are light
		Jitter:     0.9,
		Seed:       0x9a2d,
	}
}

// ScaledTraffic returns PaperTraffic shrunk by the given factor (key counts
// divided by factor), preserving the value distribution; used to keep
// benchmarks fast while retaining the workload's shape.
func ScaledTraffic(factor int) TrafficConfig {
	c := PaperTraffic()
	c.SharedKeys /= factor
	c.Only1 /= factor
	c.Only2 /= factor
	return c
}

// Generate materializes the two-instance matrix. Keys are assigned
// sequentially: shared keys first, then instance-1-only, then
// instance-2-only.
func Generate(cfg TrafficConfig) *dataset.Matrix {
	rng := randx.New(cfg.Seed)
	in1 := make(dataset.Instance, cfg.SharedKeys+cfg.Only1)
	in2 := make(dataset.Instance, cfg.SharedKeys+cfg.Only2)
	// A Pareto with tail alpha and scale s has mean s·alpha/(alpha−1);
	// solve the scale for the requested mean.
	draw := func(mean float64) float64 {
		if mean <= 0 {
			mean = cfg.MeanValue
		}
		scale := mean * (cfg.Alpha - 1) / cfg.Alpha
		v := math.Floor(rng.Pareto(scale, cfg.Alpha))
		if v < 1 {
			v = 1
		}
		return v
	}
	key := dataset.Key(1)
	for i := 0; i < cfg.SharedKeys; i++ {
		v1 := draw(cfg.SharedMean)
		v2 := v1
		if cfg.Jitter > 0 {
			v2 = math.Floor(v1 * math.Exp(cfg.Jitter*(rng.Float64()-rng.Float64())))
			if v2 < 1 {
				v2 = 1
			}
		}
		in1[key], in2[key] = v1, v2
		key++
	}
	for i := 0; i < cfg.Only1; i++ {
		in1[key] = draw(cfg.UniqueMean)
		key++
	}
	for i := 0; i < cfg.Only2; i++ {
		in2[key] = draw(cfg.UniqueMean)
		key++
	}
	return dataset.NewMatrix(in1, in2)
}

// RequestLog generates a multi-instance request-log workload for the
// distinct-count example: numInstances periods over a key universe of size
// universe, where each key is active in a period with probability activity
// and activity is positively correlated across periods through a per-key
// popularity score.
func RequestLog(universe, numInstances int, activity float64, seed uint64) []map[dataset.Key]bool {
	rng := randx.New(seed)
	popularity := make([]float64, universe)
	for i := range popularity {
		popularity[i] = rng.Float64()
	}
	out := make([]map[dataset.Key]bool, numInstances)
	for t := range out {
		set := make(map[dataset.Key]bool)
		for i := 0; i < universe; i++ {
			// Mixture: half the activity mass follows the stable per-key
			// popularity, half is fresh per period.
			pr := activity * (popularity[i] + rng.Float64())
			if rng.Float64() < pr {
				set[dataset.Key(i+1)] = true
			}
		}
		out[t] = set
	}
	return out
}

// SensorSnapshots generates r instances of slowly drifting sensor readings
// over the given number of keys, for the change-detection example. Values
// follow a bounded random walk so consecutive instances are similar.
func SensorSnapshots(keys, r int, drift float64, seed uint64) *dataset.Matrix {
	rng := randx.New(seed)
	instances := make([]dataset.Instance, r)
	cur := make([]float64, keys)
	for i := range cur {
		cur[i] = 10 + 90*rng.Float64()
	}
	for t := 0; t < r; t++ {
		in := make(dataset.Instance, keys)
		for i := 0; i < keys; i++ {
			if t > 0 {
				cur[i] *= math.Exp(drift * (rng.Float64() - 0.5))
				if cur[i] < 1 {
					cur[i] = 1
				}
			}
			in[dataset.Key(i+1)] = math.Floor(cur[i])
		}
		instances[t] = in
	}
	return dataset.NewMatrix(instances...)
}
