package simdata

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// TestPaperTrafficCalibration: the S1 substitution must reproduce the
// §8.2 published statistics within a few percent (DESIGN.md).
func TestPaperTrafficCalibration(t *testing.T) {
	m := Generate(PaperTraffic())
	d1, d2 := len(m.Instances[0]), len(m.Instances[1])
	union := len(m.Keys())
	if d1 != 24500 || d2 != 24500 {
		t.Errorf("distinct per hour = %d, %d, want 24500", d1, d2)
	}
	if union != 38000 {
		t.Errorf("union = %d, want 38000", union)
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want)/want <= tol
	}
	f1, f2 := m.Instances[0].Total(), m.Instances[1].Total()
	if !within(f1, 5.5e5, 0.15) || !within(f2, 5.5e5, 0.15) {
		t.Errorf("flows per hour = %v, %v, want ≈5.5e5", f1, f2)
	}
	sumMax := m.SumAggregate(dataset.Max, nil)
	if !within(sumMax, 7.47e5, 0.15) {
		t.Errorf("sum of maxima = %v, want ≈7.47e5", sumMax)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ScaledTraffic(50))
	b := Generate(ScaledTraffic(50))
	if len(a.Instances[0]) != len(b.Instances[0]) {
		t.Fatal("sizes differ")
	}
	for h, v := range a.Instances[0] {
		if b.Instances[0][h] != v {
			t.Fatalf("value mismatch at key %d", h)
		}
	}
	c := Generate(TrafficConfig{SharedKeys: 100, Only1: 10, Only2: 10, Alpha: 1.3, MeanValue: 5, Seed: 999})
	if len(c.Instances[0]) != 110 {
		t.Errorf("instance size %d, want 110", len(c.Instances[0]))
	}
}

func TestScaledTraffic(t *testing.T) {
	c := ScaledTraffic(10)
	if c.SharedKeys != 1100 || c.Only1 != 1350 {
		t.Errorf("scaled config %+v", c)
	}
	m := Generate(c)
	if got := len(m.Keys()); got != 3800 {
		t.Errorf("scaled union = %d, want 3800", got)
	}
}

func TestTrafficCorrelation(t *testing.T) {
	// Jitter 0: shared keys identical across hours.
	m := Generate(TrafficConfig{SharedKeys: 200, Only1: 0, Only2: 0, Alpha: 1.3, MeanValue: 10, Jitter: 0, Seed: 1})
	for h, v := range m.Instances[0] {
		if m.Instances[1][h] != v {
			t.Fatalf("jitter 0 but values differ at key %d", h)
		}
	}
	// Positive jitter: values differ but stay positively correlated
	// (min/max ratio bounded away from 0 on average).
	m2 := Generate(TrafficConfig{SharedKeys: 2000, Only1: 0, Only2: 0, Alpha: 1.3, MeanValue: 10, Jitter: 0.9, Seed: 2})
	ratioSum, n := 0.0, 0
	diff := 0
	for h, v1 := range m2.Instances[0] {
		v2 := m2.Instances[1][h]
		if v1 != v2 {
			diff++
		}
		ratioSum += math.Min(v1, v2) / math.Max(v1, v2)
		n++
	}
	if diff == 0 {
		t.Error("jitter 0.9 produced identical instances")
	}
	if avg := ratioSum / float64(n); avg < 0.4 {
		t.Errorf("average min/max ratio %v — shared values not correlated", avg)
	}
}

func TestRequestLog(t *testing.T) {
	logs := RequestLog(1000, 3, 0.3, 7)
	if len(logs) != 3 {
		t.Fatalf("instances = %d", len(logs))
	}
	for i, set := range logs {
		if len(set) == 0 || len(set) == 1000 {
			t.Errorf("instance %d has degenerate activity %d", i, len(set))
		}
	}
	// Overlap between periods exceeds the independence baseline thanks to
	// the popularity mixture.
	inter, n1, n2 := 0, len(logs[0]), len(logs[1])
	for h := range logs[0] {
		if logs[1][h] {
			inter++
		}
	}
	expectedIndep := float64(n1) * float64(n2) / 1000
	if float64(inter) < expectedIndep {
		t.Errorf("intersection %d below independence baseline %v", inter, expectedIndep)
	}
}

func TestSensorSnapshots(t *testing.T) {
	m := SensorSnapshots(100, 4, 0.2, 9)
	if m.R() != 4 {
		t.Fatalf("r = %d", m.R())
	}
	if len(m.Keys()) != 100 {
		t.Fatalf("keys = %d", len(m.Keys()))
	}
	// Consecutive snapshots are similar: relative change bounded by the
	// drift envelope.
	for _, h := range m.Keys() {
		v := m.Vector(h)
		for i := 1; i < 4; i++ {
			if v[i] <= 0 {
				t.Fatalf("non-positive reading at key %d", h)
			}
			ratio := v[i] / v[i-1]
			if ratio > math.Exp(0.2)*1.5 || ratio < math.Exp(-0.2)/1.5 {
				t.Errorf("key %d: jump %v exceeds drift envelope", h, ratio)
			}
		}
	}
}
