package core

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// This file attaches accuracy bounds to the single- and multi-summary
// estimates the query surface serves. Every bound is a standard error
// (the square root of a variance estimate or a proven variance bound);
// callers render the conventional 95% normal interval with CI95Z. Two
// families of bounds appear:
//
//   - plug-in HT variance estimates, unbiased under the sampling design:
//     Σ f²(h)·(1/p−1)/p over the *sampled* keys (dividing the per-key
//     variance term by p makes the sampled sum unbiased for the
//     population sum of f²(1/p−1), equation (1) of the paper);
//
//   - the bottom-k coefficient-of-variation bound CV ≤ 1/√(k−2)
//     (Cohen–Kaplan style) for rank-conditioning estimators, which holds
//     for any data vector and so needs nothing from the sample beyond k.
//
// Where the estimate is exact — a bottom-k summary that never met its
// threshold (τ = +Inf), a VarOpt full sum (adjusted weights preserve the
// stream total by construction) — the standard error is exactly 0.
//
// All key-order iteration is ascending, mirroring SubsetSum: equal
// summaries report bit-identical error bars on every run.

// CI95Z is the two-sided 95% normal quantile used to widen a standard
// error into a confidence interval.
const CI95Z = 1.96

// SumStdErr bounds the standard error of the single-instance sum
// estimate est answered by sum (the q=sum query). The second result
// reports whether a bound is known for this summary:
//
//   - set summaries: binomial HT cardinality, stderr = √(n(1−p))/p;
//   - PPS summaries: the unbiased per-key HT variance estimate;
//   - bottom-k summaries: est/√(k−2) from the CV bound (unknown for
//     k ≤ 2 with a finite threshold);
//   - VarOpt summaries: 0 — the full-population adjusted-weight sum is
//     exact.
func SumStdErr(sum Summary, est float64) (float64, bool) {
	switch s := sum.(type) {
	case SetReader:
		p := s.SetP()
		if !(p > 0) || p > 1 {
			return 0, false
		}
		if p == 1 {
			return 0, true
		}
		n := float64(s.Size())
		return math.Sqrt(n*(1-p)) / p, true
	case PPSReader:
		return ppsSumStdErr(s), true
	case BottomKReader:
		return bottomKCVStdErr(est, s.Size(), s.RankTau())
	case VarOptReader:
		return 0, true
	}
	return 0, false
}

// ppsSumStdErr is the square root of the unbiased HT variance estimate
// of a PPS subset sum over all keys: Σ_{h∈S} v²(h)·(1/p−1)/p with
// p = min(1, v/τ). Keys at probability 1 contribute no variance.
func ppsSumStdErr(s PPSReader) float64 {
	tau := s.PPSTau()
	if !(tau > 0) {
		return 0
	}
	var keys []dataset.Key
	keys = sortKeys(s.AppendKeys(keys))
	variance := 0.0
	for _, h := range keys {
		v, ok := s.Lookup(h)
		if !ok || v <= 0 {
			continue
		}
		p := math.Min(1, v/tau)
		if p < 1 {
			variance += v * v * (1/p - 1) / p
		}
	}
	return math.Sqrt(variance)
}

// bottomKCVStdErr renders the bottom-k CV bound: stderr ≤ est/√(k−2).
// A +Inf threshold means the summary holds every positive key and the
// estimate is exact; k ≤ 2 with a finite threshold has no bound.
func bottomKCVStdErr(est float64, k int, tau float64) (float64, bool) {
	if math.IsInf(tau, 1) {
		return 0, true
	}
	if k <= 2 {
		return 0, false
	}
	return math.Abs(est) / math.Sqrt(float64(k-2)), true
}

// BottomKDistinct estimates the number of positive keys of one instance
// from its bottom-k summary: the rank-conditioning HT estimator
// Σ_{h∈S} 1/p(v(h); τ), where p is the rank family's inclusion
// probability under the summary's threshold. When the threshold is +Inf
// the summary holds every positive key and the count is exact. Terms
// accumulate in ascending key order (bit-identical answers across
// representations, like SubsetSum).
func BottomKDistinct(b BottomKReader) float64 {
	tau := b.RankTau()
	fam := b.RankFam()
	var keys []dataset.Key
	keys = sortKeys(b.AppendKeys(keys))
	if math.IsInf(tau, 1) {
		return float64(len(keys))
	}
	total := 0.0
	for _, h := range keys {
		v, ok := b.Lookup(h)
		if !ok {
			continue
		}
		p := fam.InclusionProb(v, tau)
		if p > 0 {
			total += 1 / p
		}
	}
	return total
}

// BottomKDistinctStdErr bounds the standard error of a BottomKDistinct
// estimate via the same k-dependent CV bound as the subset sum: the
// distinct count is the rank-conditioning estimator of the all-ones
// function, so CV ≤ 1/√(k−2) applies verbatim.
func BottomKDistinctStdErr(b BottomKReader, est float64) (float64, bool) {
	return bottomKCVStdErr(est, b.Size(), b.RankTau())
}

// DistinctHTStdErr bounds the standard error of the r-instance HT
// distinct-count estimate over set summaries: a union key contributes
// 1/P (P = Πp_i) with probability P, so the plug-in variance estimate is
// HT·(1/P−1). It is a per-key independence bound, not an unbiased
// estimate (keys shared across instances correlate), matching the HT
// column it annotates.
func DistinctHTStdErr(sums []SetReader, ht float64) (float64, bool) {
	if len(sums) == 0 || ht < 0 {
		return 0, false
	}
	prod := 1.0
	for _, s := range sums {
		p := s.SetP()
		if !(p > 0) || p > 1 {
			return 0, false
		}
		prod *= p
	}
	if prod == 1 {
		return 0, true
	}
	return math.Sqrt(ht * (1/prod - 1)), true
}

// sortKeys orders keys ascending in place and returns the slice (reader
// key sets are already distinct, so no dedup — otherwise the same
// ordering contract as unionReaderKeys).
func sortKeys(keys []dataset.Key) []dataset.Key {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
