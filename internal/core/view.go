package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Zero-copy summary views. A v2 wire message already IS a queryable data
// structure: fixed-width entries sorted by key. Hydrating it into Go maps
// costs one allocation per key plus hashing on every later lookup — pure
// overhead for a summary that is stored once and queried many times. The
// views below implement the Summary and Reader interfaces directly over
// the wire bytes: per-key lookups are a binary search over the 16-byte
// (or 8-byte, for sets) entries, key iteration walks the entry region in
// place, and re-encoding to v2 is a raw byte copy. Every query answers
// bit-identically to the hydrated decode of the same bytes — views change
// the representation, never the estimates (pinned by view_test.go).
//
// Views are strict about their input where the streaming decoder is
// lenient: ParseSummaryView accepts only the CANONICAL encoding —
// minimal varints, strictly ascending keys, no trailing bytes — i.e.
// exactly the bytes encodeSummaryV2 produces. That is what makes the
// raw-copy re-encode legal (the bytes already are the canonical
// encoding). A valid-but-non-canonical payload fails the parse and the
// caller falls back to the hydrating decoder, which remains the arbiter
// of wire validity.

// viewData is the state every view kind shares: the complete wire message
// (kept alive for raw-copy re-encoding) and the parsed header fields.
type viewData struct {
	data     []byte // the full canonical wire message
	entries  []byte // the entry region (n × entry-size bytes)
	n        int
	instance int
	seeder   xhash.Seeder
}

// wireBytes returns the canonical v2 encoding the view was parsed from.
func (v *viewData) wireBytes() []byte { return v.data }

// InstanceID implements Summary.
func (v *viewData) InstanceID() int { return v.instance }

// Size implements Summary.
func (v *viewData) Size() int { return v.n }

func (v *viewData) seederOf() xhash.Seeder { return v.seeder }

// weightedKeyAt reads the key of 16-byte entry i.
//
//summarylint:hot
func (v *viewData) weightedKeyAt(i int) uint64 {
	return binary.LittleEndian.Uint64(v.entries[i*16:])
}

// weightedValueAt reads the value of 16-byte entry i.
//
//summarylint:hot
func (v *viewData) weightedValueAt(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.entries[i*16+8:]))
}

// lookupWeighted binary-searches the 16-byte entries for key h. Keys are
// strictly ascending (enforced at parse), so the search is exact.
//
//summarylint:hot
func (v *viewData) lookupWeighted(h dataset.Key) (float64, bool) {
	//summarylint:ignore the sort.Search predicate captures only v and does not escape, so it stays on the stack (benchgate pins 0 allocs/op)
	i := sort.Search(v.n, func(i int) bool { return v.weightedKeyAt(i) >= uint64(h) })
	if i < v.n && v.weightedKeyAt(i) == uint64(h) {
		return v.weightedValueAt(i), true
	}
	return 0, false
}

// appendWeightedKeys appends the 16-byte entries' keys (already
// ascending) to dst.
func (v *viewData) appendWeightedKeys(dst []dataset.Key) []dataset.Key {
	for i := 0; i < v.n; i++ {
		dst = append(dst, dataset.Key(v.weightedKeyAt(i)))
	}
	return dst
}

// weightedValues materializes the 16-byte entries into a map (the
// hydrating escape hatch behind MarshalJSON).
func (v *viewData) weightedValues() map[dataset.Key]float64 {
	vals := make(map[dataset.Key]float64, v.n)
	for i := 0; i < v.n; i++ {
		vals[dataset.Key(v.weightedKeyAt(i))] = v.weightedValueAt(i)
	}
	return vals
}

// PPSView is a zero-copy PPS summary over v2 wire bytes.
type PPSView struct {
	viewData
	tau float64
	// rankTau is 1/tau, precomputed with the exact float division the
	// hydrating decoder performs, so inclusion probabilities — and through
	// them every estimate — match the decoded summary bit for bit.
	rankTau float64
}

// Kind implements Summary.
func (v *PPSView) Kind() string { return "pps" }

// PPSTau implements PPSReader.
func (v *PPSView) PPSTau() float64 { return v.tau }

// Lookup implements PPSReader.
func (v *PPSView) Lookup(h dataset.Key) (float64, bool) { return v.lookupWeighted(h) }

// AppendKeys implements PPSReader.
func (v *PPSView) AppendKeys(dst []dataset.Key) []dataset.Key { return v.appendWeightedKeys(dst) }

// SubsetSum implements PPSReader: the HT estimate, accumulated in
// ascending key order directly off the wire.
func (v *PPSView) SubsetSum(sel func(dataset.Key) bool) float64 {
	return weightedSubsetSum(&v.viewData, sampling.PPS{}, v.rankTau, sel)
}

// materialize hydrates the view into the map-backed summary type.
func (v *PPSView) materialize() *PPSSummary {
	return &PPSSummary{
		Instance: v.instance,
		Tau:      v.tau,
		Sample:   &sampling.WeightedSample{Values: v.weightedValues(), Tau: v.rankTau, Family: sampling.PPS{}},
		parent:   &Summarizer{seeder: v.seeder},
	}
}

// MarshalJSON implements the v1 codec by materializing; JSON encoding
// cannot reuse the binary bytes anyway.
func (v *PPSView) MarshalJSON() ([]byte, error) { return v.materialize().MarshalJSON() }

// SetView is a zero-copy set summary over v2 wire bytes (8-byte entries).
type SetView struct {
	viewData
	p float64
}

// Kind implements Summary.
func (v *SetView) Kind() string { return "set" }

// SetP implements SetReader.
func (v *SetView) SetP() float64 { return v.p }

func (v *SetView) memberAt(i int) uint64 {
	return binary.LittleEndian.Uint64(v.entries[i*8:])
}

// Contains implements SetReader.
func (v *SetView) Contains(h dataset.Key) bool {
	i := sort.Search(v.n, func(i int) bool { return v.memberAt(i) >= uint64(h) })
	return i < v.n && v.memberAt(i) == uint64(h)
}

// AppendKeys implements SetReader.
func (v *SetView) AppendKeys(dst []dataset.Key) []dataset.Key {
	for i := 0; i < v.n; i++ {
		dst = append(dst, dataset.Key(v.memberAt(i)))
	}
	return dst
}

// materialize hydrates the view into the map-backed summary type.
func (v *SetView) materialize() *SetSummary {
	members := make(map[dataset.Key]bool, v.n)
	for i := 0; i < v.n; i++ {
		members[dataset.Key(v.memberAt(i))] = true
	}
	return &SetSummary{
		Instance: v.instance,
		P:        v.p,
		Members:  members,
		parent:   &Summarizer{seeder: v.seeder},
	}
}

// MarshalJSON implements the v1 codec by materializing.
func (v *SetView) MarshalJSON() ([]byte, error) { return v.materialize().MarshalJSON() }

// BottomKView is a zero-copy bottom-k summary over v2 wire bytes.
type BottomKView struct {
	viewData
	fam sampling.RankFamily
	tau float64
}

// Kind implements Summary.
func (v *BottomKView) Kind() string { return "bottomk" }

// RankTau implements BottomKReader.
func (v *BottomKView) RankTau() float64 { return v.tau }

// RankFam implements BottomKReader.
func (v *BottomKView) RankFam() sampling.RankFamily { return v.fam }

// Lookup implements BottomKReader.
func (v *BottomKView) Lookup(h dataset.Key) (float64, bool) { return v.lookupWeighted(h) }

// AppendKeys implements BottomKReader.
func (v *BottomKView) AppendKeys(dst []dataset.Key) []dataset.Key { return v.appendWeightedKeys(dst) }

// SubsetSum implements BottomKReader: the rank-conditioning estimate,
// accumulated in ascending key order directly off the wire.
func (v *BottomKView) SubsetSum(sel func(dataset.Key) bool) float64 {
	return weightedSubsetSum(&v.viewData, v.fam, v.tau, sel)
}

// materialize hydrates the view into the map-backed summary type.
func (v *BottomKView) materialize() *BottomKSummary {
	return &BottomKSummary{
		Instance: v.instance,
		Sample:   &sampling.WeightedSample{Values: v.weightedValues(), Tau: v.tau, Family: v.fam},
		parent:   &Summarizer{seeder: v.seeder},
	}
}

// MarshalJSON implements the v1 codec by materializing.
func (v *BottomKView) MarshalJSON() ([]byte, error) { return v.materialize().MarshalJSON() }

// VarOptView is a zero-copy VarOpt_k summary over v2 wire bytes. Entries
// carry the original weights; adjusted weights are the identity
// max(w, tau) applied at read time.
type VarOptView struct {
	viewData
	tau float64
}

// Kind implements Summary.
func (v *VarOptView) Kind() string { return "varopt" }

// VarOptTau implements VarOptReader.
func (v *VarOptView) VarOptTau() float64 { return v.tau }

// SubsetSum implements VarOptReader: adjusted weights summed in ascending
// key order directly off the wire.
//
//summarylint:hot
func (v *VarOptView) SubsetSum(sel func(dataset.Key) bool) float64 {
	total := 0.0
	for i := 0; i < v.n; i++ {
		h := dataset.Key(v.weightedKeyAt(i))
		if sel != nil && !sel(h) {
			continue
		}
		total += math.Max(v.weightedValueAt(i), v.tau)
	}
	return total
}

// materialize hydrates the view into the map-backed summary type.
func (v *VarOptView) materialize() *VarOptSummary {
	return &VarOptSummary{
		Instance: v.instance,
		Sample:   varOptSampleFromWire(v.weightedValues(), v.tau),
		parent:   &Summarizer{seeder: v.seeder},
	}
}

// MarshalJSON implements the v1 codec by materializing.
func (v *VarOptView) MarshalJSON() ([]byte, error) { return v.materialize().MarshalJSON() }

// weightedSubsetSum is WeightedSample.SubsetSum over wire entries: the
// same per-key terms (v / InclusionProb(v)) in the same ascending order,
// so the result is bit-identical to the hydrated estimate.
//
//summarylint:hot
func weightedSubsetSum(v *viewData, fam sampling.RankFamily, tau float64, sel func(dataset.Key) bool) float64 {
	total := 0.0
	for i := 0; i < v.n; i++ {
		h := dataset.Key(v.weightedKeyAt(i))
		if sel != nil && !sel(h) {
			continue
		}
		val := v.weightedValueAt(i)
		if p := fam.InclusionProb(val, tau); p > 0 {
			total += val / p
		}
	}
	return total
}

// SummaryRepr reports the representation a stored summary answers
// queries from: "view" plus the canonical wire length for zero-copy v2
// views (bytes touched by a full scan), or "hydrated" with 0 for
// map-backed summaries — the query-explain face of the two paths.
func SummaryRepr(s Summary) (path string, wireBytes int) {
	if v, ok := s.(interface{ wireBytes() []byte }); ok {
		return "view", len(v.wireBytes())
	}
	return "hydrated", 0
}

// DecodeSummaryViewFrom reads one complete v2 message from r and returns
// the zero-copy view over its bytes. Canonical payloads — everything a
// conforming encoder produces — take the zero-copy path; a valid but
// non-canonical payload falls back to the hydrating v2 decoder, which
// stays the arbiter of wire validity (and of the error when the payload
// is invalid either way). Exactly one summary per stream: trailing bytes
// are an error on both paths.
func DecodeSummaryViewFrom(r io.Reader) (Summary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading summary: %w", err)
	}
	if v, err := ParseSummaryView(data); err == nil {
		return v, nil
	}
	br := bufio.NewReader(bytes.NewReader(data))
	s, err := decodeSummaryV2(br)
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing data after v2 summary")
	}
	return s, nil
}

// viewParser walks a complete byte slice with canonical-encoding checks.
type viewParser struct {
	data []byte
	off  int
}

func (p *viewParser) need(n int) ([]byte, error) {
	if len(p.data)-p.off < n {
		return nil, fmt.Errorf("core: summary view: truncated at offset %d", p.off)
	}
	b := p.data[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *viewParser) byte() (byte, error) {
	b, err := p.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (p *viewParser) uint64() (uint64, error) {
	b, err := p.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (p *viewParser) float64() (float64, error) {
	bits, err := p.uint64()
	return math.Float64frombits(bits), err
}

// varint reads a signed varint and rejects non-minimal encodings — the
// canonical-bytes discipline raw-copy re-encoding relies on.
func (p *viewParser) varint() (int64, error) {
	v, n := binary.Varint(p.data[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: summary view: bad varint at offset %d", p.off)
	}
	var scratch [binary.MaxVarintLen64]byte
	if binary.PutVarint(scratch[:], v) != n {
		return 0, fmt.Errorf("core: summary view: non-canonical varint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

// uvarint reads an unsigned varint, rejecting non-minimal encodings.
func (p *viewParser) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.data[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: summary view: bad uvarint at offset %d", p.off)
	}
	var scratch [binary.MaxVarintLen64]byte
	if binary.PutUvarint(scratch[:], v) != n {
		return 0, fmt.Errorf("core: summary view: non-canonical uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

// entryRegion validates and returns the rest of the buffer as n entries of
// the given size, consuming the parser to the end.
func (p *viewParser) entryRegion(n uint64, size int) ([]byte, error) {
	rest := len(p.data) - p.off
	if n > uint64(rest)/uint64(size) {
		return nil, fmt.Errorf("core: summary view: %d entries exceed the %d remaining bytes", n, rest)
	}
	want := int(n) * size
	if rest != want {
		return nil, fmt.Errorf("core: summary view: %d trailing bytes after entries", rest-want)
	}
	entries := p.data[p.off:]
	p.off = len(p.data)
	return entries, nil
}

// checkAscending verifies entry keys are strictly ascending (which also
// rules out duplicates) — both the canonical-encoding requirement and
// what makes binary-search lookups correct.
func checkAscending(entries []byte, n, size int) error {
	var prev uint64
	for i := 0; i < n; i++ {
		k := binary.LittleEndian.Uint64(entries[i*size:])
		if i > 0 && k <= prev {
			return fmt.Errorf("core: summary view: entry keys not strictly ascending at index %d", i)
		}
		prev = k
	}
	return nil
}

// ParseSummaryView parses a complete v2 wire message into a zero-copy
// view, validating the CANONICAL encoding: exact magic and version,
// minimal varints, parameter ranges, strictly ascending entry keys, and
// no trailing bytes. The returned Summary is backed by data — the caller
// must not mutate the slice afterwards. Any deviation from the canonical
// form is an error; callers that want maximal acceptance fall back to
// DecodeSummary, which hydrates leniently.
func ParseSummaryView(data []byte) (Summary, error) {
	p := &viewParser{data: data}
	head, err := p.need(5)
	if err != nil {
		return nil, err
	}
	if head[0] != v2Magic0 || head[1] != v2Magic1 {
		return nil, fmt.Errorf("core: summary view: bad magic %#02x %#02x", head[0], head[1])
	}
	if head[2] != 2 {
		return nil, fmt.Errorf("core: summary view: binary summary version %d (supported: %v): %w",
			head[2], SupportedWireVersions(), ErrUnknownVersion)
	}
	kind, flags := head[3], head[4]
	if flags&^v2FlagShared != 0 {
		return nil, fmt.Errorf("core: summary view: undefined flag bits %#02x", flags)
	}
	salt, err := p.uint64()
	if err != nil {
		return nil, err
	}
	instance, err := p.varint()
	if err != nil {
		return nil, err
	}
	if int64(int(instance)) != instance {
		return nil, fmt.Errorf("core: summary view: instance %d out of range", instance)
	}
	vd := viewData{
		data:     data,
		instance: int(instance),
		seeder:   xhash.Seeder{Salt: salt, Shared: flags&v2FlagShared != 0},
	}

	// finish consumes the entry count and region shared by every kind.
	finish := func(entrySize int) error {
		n, err := p.uvarint()
		if err != nil {
			return err
		}
		entries, err := p.entryRegion(n, entrySize)
		if err != nil {
			return err
		}
		if err := checkAscending(entries, int(n), entrySize); err != nil {
			return err
		}
		vd.entries, vd.n = entries, int(n)
		return nil
	}

	switch kind {
	case v2KindPPS:
		tau, err := p.float64()
		if err != nil {
			return nil, err
		}
		if !(tau > 0) || math.IsInf(tau, 1) {
			return nil, fmt.Errorf("core: summary view: invalid tau %v", tau)
		}
		if err := finish(16); err != nil {
			return nil, err
		}
		return &PPSView{viewData: vd, tau: tau, rankTau: 1 / tau}, nil
	case v2KindSet:
		pr, err := p.float64()
		if err != nil {
			return nil, err
		}
		if !(pr > 0 && pr <= 1) {
			return nil, fmt.Errorf("core: summary view: invalid sampling probability %v", pr)
		}
		if err := finish(8); err != nil {
			return nil, err
		}
		return &SetView{viewData: vd, p: pr}, nil
	case v2KindBottomK:
		famTag, err := p.byte()
		if err != nil {
			return nil, err
		}
		var fam sampling.RankFamily
		switch famTag {
		case v2FamilyPPS:
			fam = sampling.PPS{}
		case v2FamilyEXP:
			fam = sampling.EXP{}
		default:
			return nil, fmt.Errorf("core: summary view: unknown rank family tag %d", famTag)
		}
		tau, err := p.float64()
		if err != nil {
			return nil, err
		}
		if !(tau > 0) {
			return nil, fmt.Errorf("core: summary view: invalid rank threshold %v", tau)
		}
		if err := finish(16); err != nil {
			return nil, err
		}
		return &BottomKView{viewData: vd, fam: fam, tau: tau}, nil
	case v2KindVarOpt:
		tau, err := p.float64()
		if err != nil {
			return nil, err
		}
		if !(tau >= 0) || math.IsInf(tau, 1) {
			return nil, fmt.Errorf("core: summary view: invalid varopt threshold %v", tau)
		}
		if err := finish(16); err != nil {
			return nil, err
		}
		return &VarOptView{viewData: vd, tau: tau}, nil
	default:
		return nil, fmt.Errorf("core: summary view: unknown kind tag %d", kind)
	}
}
