package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The codec API is the summary serialization seam: every wire format —
// today the v1 JSON format and the v2 binary format, later compressed or
// columnar layouts — is a Codec registered per version, and everything
// that moves summaries (the summary server, pkg/client, the CLIs) speaks
// through the registry instead of hard-coding an encoding. The historical
// Encode*/Decode*Summary entry points in encode.go are thin wrappers over
// the registered codecs.

// Codec encodes and decodes summaries of one wire-format version.
// Implementations must round-trip exactly: for any summary s,
// DecodeFrom(Encode(s)) yields a summary that answers every query with
// bit-identical floats — codecs change bytes on the wire, never estimates.
type Codec interface {
	// Version is the wire-format version the codec speaks (1, 2, ...).
	Version() int
	// ContentType is the canonical HTTP content type of the format, the
	// token version negotiation exchanges (Content-Type on posts, Accept
	// on fetches).
	ContentType() string
	// Encode serializes a summary. The encoding is deterministic: equal
	// summaries produce equal bytes.
	Encode(Summary) ([]byte, error)
	// EncodeTo streams the serialization into w: exactly the bytes Encode
	// would return, but written incrementally. Implementations with a
	// streaming layout (v2) write entry by entry and never materialize
	// the payload; the v1 JSON codec necessarily buffers (encoding/json
	// cannot emit a document incrementally) but still writes through w so
	// every caller — the WAL, snapshots, HTTP response bodies — uses one
	// code path.
	EncodeTo(io.Writer, Summary) error
	// DecodeFrom reconstructs a summary from a stream. Implementations
	// with a streaming layout (v2) read entry by entry and never buffer
	// the whole payload; the v1 JSON codec necessarily buffers (a JSON
	// document cannot be validated incrementally by encoding/json).
	DecodeFrom(io.Reader) (Summary, error)
}

// Wire content types, the negotiation vocabulary. Version 1 is plain JSON;
// binary formats follow the application/x-summary-v<N> pattern.
const (
	// ContentTypeJSON is the canonical content type of the v1 JSON format.
	ContentTypeJSON = "application/json"
	// ContentTypeV2 is the content type of the v2 binary format.
	ContentTypeV2 = "application/x-summary-v2"
)

// wireContentTypePrefix is the pattern shared by every binary wire
// version's content type.
const wireContentTypePrefix = "application/x-summary-v"

var (
	codecMu sync.RWMutex
	codecs  = map[int]Codec{}
)

// RegisterCodec adds a codec to the version registry. It panics on a
// duplicate or non-positive version — codecs are registered at init time,
// and a collision is a programming error, not a runtime condition.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	v := c.Version()
	if v <= 0 {
		panic(fmt.Sprintf("core: RegisterCodec with non-positive version %d", v))
	}
	if _, dup := codecs[v]; dup {
		panic(fmt.Sprintf("core: duplicate codec for wire version %d", v))
	}
	codecs[v] = c
}

func init() {
	RegisterCodec(jsonCodec{})
	RegisterCodec(binaryCodecV2{})
}

// SupportedWireVersions lists the registered wire-format versions in
// ascending order — what a negotiating server advertises next to a 415.
func SupportedWireVersions() []int {
	codecMu.RLock()
	defer codecMu.RUnlock()
	out := make([]int, 0, len(codecs))
	for v := range codecs {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// CodecByVersion returns the codec registered for a wire version, or an
// error wrapping ErrUnknownVersion naming the supported versions.
func CodecByVersion(v int) (Codec, error) {
	codecMu.RLock()
	c, ok := codecs[v]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: summary wire version %d (supported: %v): %w",
			v, SupportedWireVersions(), ErrUnknownVersion)
	}
	return c, nil
}

// ParseWireContentType maps an HTTP content type to the wire version it
// names: application/json (any parameters) is version 1,
// application/x-summary-v<N> is version N. Content types outside the wire
// vocabulary (text/csv, multipart/…, the empty string) return ok = false —
// they name no version at all, which callers usually treat as "sniff".
func ParseWireContentType(ct string) (version int, ok bool) {
	media, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return 0, false
	}
	if media == ContentTypeJSON {
		return 1, true
	}
	if rest, found := strings.CutPrefix(media, wireContentTypePrefix); found {
		if v, err := strconv.Atoi(rest); err == nil && v > 0 {
			return v, true
		}
	}
	return 0, false
}

// CodecByContentType resolves a content type to its codec. Content types
// naming an unregistered wire version (a future application/x-summary-v9)
// return an error wrapping ErrUnknownVersion; content types outside the
// wire vocabulary return ok = false with a nil error.
func CodecByContentType(ct string) (c Codec, ok bool, err error) {
	v, named := ParseWireContentType(ct)
	if !named {
		return nil, false, nil
	}
	c, err = CodecByVersion(v)
	if err != nil {
		return nil, false, err
	}
	return c, true, nil
}

// EncodeSummary serializes a summary in the requested wire version.
// EncodeSummary(s, 1) is the JSON bytes json.Marshal would produce;
// EncodeSummary(s, 2) is the binary v2 layout.
func EncodeSummary(s Summary, version int) ([]byte, error) {
	c, err := CodecByVersion(version)
	if err != nil {
		return nil, err
	}
	return c.Encode(s)
}

// SniffWireVersion inspects the leading bytes of an encoded summary and
// reports the wire version they claim: binary payloads carry the version
// in their header, any other non-empty payload is v1 JSON. The claim is
// unvalidated — decoding is still the arbiter.
func SniffWireVersion(data []byte) (version int, ok bool) {
	if len(data) >= 3 && data[0] == v2Magic0 && data[1] == v2Magic1 {
		return int(data[2]), true
	}
	if len(data) > 0 {
		return 1, true
	}
	return 0, false
}

// DecodeSummaryFrom reconstructs a summary of any kind and any registered
// wire version from a stream, sniffing the format: the v2 binary magic
// selects the binary codec, anything else is treated as v1 JSON. It
// returns the wire version the payload actually carried alongside the
// summary. It is the trust-boundary entry point for services that accept
// posted summaries without knowing their format in advance. Binary
// decoding is streaming — it never buffers the whole payload.
func DecodeSummaryFrom(r io.Reader) (Summary, int, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 4096)
	}
	head, err := br.Peek(2)
	if err != nil && len(head) < 2 {
		// Too short even for the magic: hand what there is to the JSON
		// path for a decode error naming the real problem.
		data, _ := io.ReadAll(br)
		s, err := decodeSummaryJSON(data)
		return s, 1, err
	}
	if head[0] == v2Magic0 && head[1] == v2Magic1 {
		s, err := decodeSummaryV2(br)
		return s, 2, err
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, 1, fmt.Errorf("core: reading summary: %w", err)
	}
	s, err := decodeSummaryJSON(data)
	return s, 1, err
}

// jsonCodec is the v1 wire format: the JSON documents the Marshal/Decode
// entry points of encode.go have always produced. It buffers on decode —
// the price of a self-describing text format.
type jsonCodec struct{}

// Version implements Codec.
func (jsonCodec) Version() int { return 1 }

// ContentType implements Codec.
func (jsonCodec) ContentType() string { return ContentTypeJSON }

// Encode implements Codec. The JSON encoding is deterministic:
// encoding/json sorts map keys.
func (jsonCodec) Encode(s Summary) ([]byte, error) {
	return json.Marshal(s)
}

// EncodeTo implements Codec. JSON cannot be emitted incrementally
// (json.Encoder would also append a newline Encode never produces), so
// this marshals and writes — byte-identical to Encode, just through w.
func (c jsonCodec) EncodeTo(w io.Writer, s Summary) error {
	data, err := c.Encode(s)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// DecodeFrom implements Codec.
func (jsonCodec) DecodeFrom(r io.Reader) (Summary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading summary: %w", err)
	}
	return decodeSummaryJSON(data)
}
