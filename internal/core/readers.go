package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// Reader interfaces are the query-side seam between the estimators and a
// summary's representation. Every query in core.go/query.go needs only a
// handful of reads — the kind parameters, a per-key lookup, the retained
// key set — and those reads have two implementations: the hydrated
// summary types (map-backed, produced by summarization or a decoding
// codec) and the zero-copy v2 views of view.go (binary search over wire
// bytes). Queries written against the readers answer identically over
// both; the property tests in view_test.go pin that to the bit.
//
// Like Summary, the interfaces embed an unexported method, so only this
// package's types can satisfy them — combinability checks need the
// underlying seeder either way.

// PPSReader is the read surface of a PPS summary.
type PPSReader interface {
	Summary
	// PPSTau returns the PPS threshold: key h was included iff
	// v(h) ≥ u(h)·PPSTau().
	PPSTau() float64
	// Lookup reports the stored value of key h.
	Lookup(h dataset.Key) (float64, bool)
	// AppendKeys appends every retained key to dst (order unspecified).
	AppendKeys(dst []dataset.Key) []dataset.Key
	// SubsetSum estimates Σ_{h∈sel} v(h) (nil sel selects all keys),
	// accumulating in ascending key order.
	SubsetSum(sel func(dataset.Key) bool) float64
}

// SetReader is the read surface of a set summary.
type SetReader interface {
	Summary
	// SetP returns the per-member sampling probability.
	SetP() float64
	// Contains reports whether key h is a sampled member.
	Contains(h dataset.Key) bool
	// AppendKeys appends every sampled member to dst (order unspecified).
	AppendKeys(dst []dataset.Key) []dataset.Key
}

// BottomKReader is the read surface of a bottom-k summary.
type BottomKReader interface {
	Summary
	// RankTau returns the rank-conditioning threshold (+Inf = every
	// positive key retained).
	RankTau() float64
	// RankFam returns the rank family the summary was drawn with.
	RankFam() sampling.RankFamily
	// Lookup reports the stored value of key h.
	Lookup(h dataset.Key) (float64, bool)
	// AppendKeys appends every retained key to dst (order unspecified).
	AppendKeys(dst []dataset.Key) []dataset.Key
	// SubsetSum estimates Σ_{h∈sel} v(h) with the rank-conditioning
	// estimator, accumulating in ascending key order.
	SubsetSum(sel func(dataset.Key) bool) float64
}

// VarOptReader is the read surface of a VarOpt_k summary.
type VarOptReader interface {
	Summary
	// VarOptTau returns the final reservoir threshold (0 = never
	// overflowed).
	VarOptTau() float64
	// SubsetSum estimates Σ_{h∈sel} v(h) by summing adjusted weights,
	// accumulating in ascending key order.
	SubsetSum(sel func(dataset.Key) bool) float64
}

// --- hydrated implementations ------------------------------------------

// PPSTau implements PPSReader.
func (p *PPSSummary) PPSTau() float64 { return p.Tau }

// Lookup implements PPSReader.
func (p *PPSSummary) Lookup(h dataset.Key) (float64, bool) {
	v, ok := p.Sample.Values[h]
	return v, ok
}

// AppendKeys implements PPSReader.
func (p *PPSSummary) AppendKeys(dst []dataset.Key) []dataset.Key {
	//summarylint:ignore AppendKeys is unordered by contract; unionReaderKeys sorts and dedups before any query walks the keys
	for h := range p.Sample.Values {
		dst = append(dst, h)
	}
	return dst
}

// SetP implements SetReader.
func (s *SetSummary) SetP() float64 { return s.P }

// Contains implements SetReader.
func (s *SetSummary) Contains(h dataset.Key) bool { return s.Members[h] }

// AppendKeys implements SetReader.
func (s *SetSummary) AppendKeys(dst []dataset.Key) []dataset.Key {
	//summarylint:ignore AppendKeys is unordered by contract; unionReaderKeys sorts and dedups before any query walks the keys
	for h := range s.Members {
		dst = append(dst, h)
	}
	return dst
}

// RankTau implements BottomKReader.
func (b *BottomKSummary) RankTau() float64 { return b.Sample.Tau }

// RankFam implements BottomKReader.
func (b *BottomKSummary) RankFam() sampling.RankFamily { return b.Sample.Family }

// Lookup implements BottomKReader.
func (b *BottomKSummary) Lookup(h dataset.Key) (float64, bool) {
	v, ok := b.Sample.Values[h]
	return v, ok
}

// AppendKeys implements BottomKReader.
func (b *BottomKSummary) AppendKeys(dst []dataset.Key) []dataset.Key {
	//summarylint:ignore AppendKeys is unordered by contract; unionReaderKeys sorts and dedups before any query walks the keys
	for h := range b.Sample.Values {
		dst = append(dst, h)
	}
	return dst
}

// VarOptTau implements VarOptReader.
func (v *VarOptSummary) VarOptTau() float64 { return v.Sample.Tau }

// unionReaderKeys returns the ascending union of the readers' key sets —
// the reader-interface face of unionKeys, and the same deterministic
// iteration order: queries sum per-key estimates over it so equal
// summaries answer with bit-identical floats regardless of
// representation.
func unionReaderKeys[R interface {
	AppendKeys([]dataset.Key) []dataset.Key
}](rs ...R) []dataset.Key {
	var keys []dataset.Key
	for _, r := range rs {
		keys = r.AppendKeys(keys)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Dedup in place: the slice is sorted, so duplicates are adjacent.
	out := keys[:0]
	for i, h := range keys {
		if i == 0 || h != keys[i-1] {
			out = append(out, h)
		}
	}
	return out
}
