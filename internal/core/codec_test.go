package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
	"repro/internal/xhash"
)

// fixtureSummaries builds one summary of every kind (bottom-k under both
// rank families) for one summarizer.
func fixtureSummaries(s *Summarizer) []Summary {
	m := simdata.Generate(simdata.ScaledTraffic(120))
	members := make(map[dataset.Key]bool, len(m.Instances[0]))
	for h := range m.Instances[0] {
		members[h] = true
	}
	return []Summary{
		s.SummarizePPSExpectedSize(0, m.Instances[0], 60),
		s.SummarizeSet(1, members, 0.4),
		s.SummarizeBottomK(2, m.Instances[1], 40, sampling.PPS{}),
		s.SummarizeBottomK(3, m.Instances[1], 40, sampling.EXP{}),
		// Unbounded bottom-k threshold: fewer keys than k.
		s.SummarizeBottomK(4, dataset.Instance{7: 5, 9: 3}, 10, sampling.PPS{}),
	}
}

// queryBits reduces a summary to the float bits every codec must
// preserve: the deterministic subset-sum estimate (weighted kinds) or the
// HT cardinality estimate (sets).
func queryBits(t *testing.T, s Summary) float64 {
	t.Helper()
	switch v := s.(type) {
	case *PPSSummary:
		return v.SubsetSum(nil)
	case *BottomKSummary:
		return v.SubsetSum(nil)
	case *SetSummary:
		return float64(v.Len()) / v.P
	}
	t.Fatalf("unknown summary type %T", s)
	return 0
}

// TestCodecRegistry: the registry speaks exactly versions 1 and 2, maps
// content types both ways, and rejects unknown versions with the typed
// error.
func TestCodecRegistry(t *testing.T) {
	if got := SupportedWireVersions(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("SupportedWireVersions = %v, want [1 2]", got)
	}
	for v, wantCT := range map[int]string{1: ContentTypeJSON, 2: ContentTypeV2} {
		c, err := CodecByVersion(v)
		if err != nil {
			t.Fatalf("CodecByVersion(%d): %v", v, err)
		}
		if c.Version() != v || c.ContentType() != wantCT {
			t.Errorf("codec %d: version %d, content type %q (want %q)", v, c.Version(), c.ContentType(), wantCT)
		}
	}
	if _, err := CodecByVersion(9); err == nil {
		t.Fatal("CodecByVersion(9) succeeded")
	}
	for ct, want := range map[string]int{
		"application/json":                1,
		"application/json; charset=utf-8": 1,
		"application/x-summary-v2":        2,
		"application/x-summary-v7":        7,
	} {
		if v, ok := ParseWireContentType(ct); !ok || v != want {
			t.Errorf("ParseWireContentType(%q) = (%d, %v), want (%d, true)", ct, v, ok, want)
		}
	}
	for _, ct := range []string{"", "text/csv", "application/x-summary-", "application/x-summary-v-3"} {
		if v, ok := ParseWireContentType(ct); ok {
			t.Errorf("ParseWireContentType(%q) = (%d, true), want not a wire type", ct, v)
		}
	}
}

// TestCrossCodecEquivalence is the tentpole property: for every summary
// kind × rank family × coordination mode, decode(v2(encode(s))) and
// decode(v1(encode(s))) answer queries with bit-identical floats and
// carry the same seeder — the codecs change bytes, never estimates.
func TestCrossCodecEquivalence(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func(uint64) *Summarizer
	}{
		{"independent", NewSummarizer},
		{"coordinated", NewCoordinatedSummarizer},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for _, salt := range []uint64{2011, 7, 0xDEADBEEF} {
				for _, sum := range fixtureSummaries(mode.mk(salt)) {
					v1, err := EncodeSummary(sum, 1)
					if err != nil {
						t.Fatal(err)
					}
					v2, err := EncodeSummary(sum, 2)
					if err != nil {
						t.Fatal(err)
					}
					d1, err := DecodeSummary(v1)
					if err != nil {
						t.Fatalf("%s: decoding v1: %v", sum.Kind(), err)
					}
					d2, err := DecodeSummary(v2)
					if err != nil {
						t.Fatalf("%s: decoding v2: %v", sum.Kind(), err)
					}
					if SummarySeeder(d1) != SummarySeeder(d2) || SummarySeeder(d1) != SummarySeeder(sum) {
						t.Fatalf("%s: seeder drifted through a codec", sum.Kind())
					}
					if d1.Kind() != d2.Kind() || d1.InstanceID() != d2.InstanceID() || d1.Size() != d2.Size() {
						t.Fatalf("%s: metadata drifted: v1 (%s,%d,%d) vs v2 (%s,%d,%d)", sum.Kind(),
							d1.Kind(), d1.InstanceID(), d1.Size(), d2.Kind(), d2.InstanceID(), d2.Size())
					}
					b0, b1, b2 := queryBits(t, sum), queryBits(t, d1), queryBits(t, d2)
					if b0 != b1 || b1 != b2 {
						t.Fatalf("%s: query bits differ: original %v, via v1 %v, via v2 %v",
							sum.Kind(), b0, b1, b2)
					}
				}
			}
		})
	}
}

// TestCrossCodecMultiSummaryQueries: two-summary estimators over
// v2-decoded summaries reproduce the v1-decoded bits exactly — the
// combinability contract survives the binary format.
func TestCrossCodecMultiSummaryQueries(t *testing.T) {
	m := simdata.Generate(simdata.ScaledTraffic(150))
	s := NewSummarizer(42)
	p1 := s.SummarizePPSExpectedSize(0, m.Instances[0], 70)
	p2 := s.SummarizePPSExpectedSize(1, m.Instances[1], 70)

	reencode := func(p *PPSSummary, version int) *PPSSummary {
		data, err := EncodeSummary(p, version)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodePPSSummary(data)
		if err != nil {
			t.Fatal(err)
		}
		return dec
	}
	wantEst, err := MaxDominance(reencode(p1, 1), reencode(p2, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotEst, err := MaxDominance(reencode(p1, 2), reencode(p2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if wantEst != gotEst {
		t.Fatalf("max-dominance over v2-decoded summaries %+v != v1-decoded %+v", gotEst, wantEst)
	}
}

// TestV2EncodeDeterministic: equal summaries encode to equal bytes (map
// iteration order must not leak into the wire).
func TestV2EncodeDeterministic(t *testing.T) {
	for _, sum := range fixtureSummaries(NewSummarizer(2011)) {
		a, err := EncodeSummary(sum, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			b, err := EncodeSummary(sum, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: two encodings of the same summary differ", sum.Kind())
			}
		}
	}
}

// TestV2OversizedCountNoOverAllocation: a 30-byte payload claiming 2^60
// entries must fail on the missing entries without attempting to reserve
// memory for the claim.
func TestV2OversizedCountNoOverAllocation(t *testing.T) {
	sum := NewSummarizer(1).SummarizePPS(0, dataset.Instance{1: 5}, 2)
	data, err := EncodeSummary(sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry count (the varint right before the single
	// 16-byte entry) to a colossal claim and truncate the entries.
	head := data[:len(data)-16-1] // strip the one-byte count and the single entry
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], 1<<60)
	hostile := append(append([]byte{}, head...), cnt[:n]...)
	if _, err := DecodeSummary(hostile); err == nil {
		t.Fatal("decoding a truncated 2^60-entry claim succeeded")
	}
}

// TestDecodeSummaryFromStreams: DecodeSummaryFrom sniffs both formats off
// a reader, reports the version, and the v2 path works from a reader that
// delivers one byte at a time — the streaming-decode contract.
func TestDecodeSummaryFromStreams(t *testing.T) {
	sum := NewSummarizer(3).SummarizePPS(0, dataset.Instance{10: 4, 20: 9, 30: 2}, 3)
	for version := 1; version <= 2; version++ {
		data, err := EncodeSummary(sum, version)
		if err != nil {
			t.Fatal(err)
		}
		dec, gotVer, err := DecodeSummaryFrom(&oneByteReader{data: data})
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if gotVer != version {
			t.Fatalf("sniffed version %d, want %d", gotVer, version)
		}
		if queryBits(t, dec) != queryBits(t, Summary(sum)) {
			t.Fatalf("v%d: query bits drifted through the stream", version)
		}
	}
	// Trailing bytes after a complete v2 message: a stream reader leaves
	// them; the whole-message entry point rejects them.
	v2, _ := EncodeSummary(sum, 2)
	if _, err := DecodeSummary(append(v2, 0xFF)); err == nil {
		t.Fatal("DecodeSummary accepted trailing bytes after a v2 message")
	}
}

// oneByteReader delivers one byte per Read call — the most hostile
// chunking a stream can offer.
type oneByteReader struct{ data []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

// TestWireV2PayloadRatio pins the acceptance bound: for a 1M-entry
// bottom-k summary over realistic 64-bit keys and full-precision weights,
// the v2 binary payload is at most 40% of the v1 JSON bytes, and both
// payloads decode to summaries with identical query bits.
func TestWireV2PayloadRatio(t *testing.T) {
	sum := millionEntryBottomK(t)
	v1, err := EncodeSummary(sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeSummary(sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(v2)) / float64(len(v1))
	t.Logf("1M-entry bottom-k: v1 %d bytes, v2 %d bytes (%.1f%%)", len(v1), len(v2), 100*ratio)
	if ratio > 0.40 {
		t.Fatalf("v2 payload is %.1f%% of v1, want ≤ 40%%", 100*ratio)
	}
	d2, err := DecodeSummary(v2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != sum.Size() {
		t.Fatalf("v2 decode kept %d of %d entries", d2.Size(), sum.Size())
	}
}

var (
	millionOnce sync.Once
	millionSum  *BottomKSummary
)

// millionEntryBottomK synthesizes a 1M-entry bottom-k summary without
// running the sampler over ≥1M keys: full-width mixed keys (what hashed
// flow identifiers look like) and full-precision weights (what
// aggregated rates look like), shared between the payload test and the
// codec benchmarks.
func millionEntryBottomK(tb testing.TB) *BottomKSummary {
	tb.Helper()
	millionOnce.Do(func() {
		const n = 1 << 20
		vals := make(map[dataset.Key]float64, n)
		for i := uint64(0); i < n; i++ {
			h := xhash.Mix64(i ^ 0xA5A5A5A5A5A5A5A5)
			vals[dataset.Key(h)] = 1 + float64(h%1_000_003)/997.0
		}
		millionSum = &BottomKSummary{
			Instance: 0,
			Sample:   &sampling.WeightedSample{Values: vals, Tau: 0.25, Family: sampling.PPS{}},
			parent:   NewSummarizer(2011),
		}
	})
	return millionSum
}

// TestV2StreamingDecodeBoundedBuffer: decoding a large v2 payload from a
// chunked reader (no bytes.Reader fast path) succeeds — the decoder never
// requires the payload to be materialized — and the in-flight buffering
// stays at the bufio window, not the payload size.
func TestV2StreamingDecodeBoundedBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-entry payload")
	}
	sum := millionEntryBottomK(t)
	data, err := EncodeSummary(sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := CodecByVersion(2)
	dec, err := c.DecodeFrom(&chunkReader{data: data, chunk: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Size() != sum.Size() {
		t.Fatalf("chunked decode kept %d of %d entries", dec.Size(), sum.Size())
	}
	if math.Float64bits(queryBits(t, dec)) != math.Float64bits(queryBits(t, Summary(sum))) {
		t.Fatal("chunked decode drifted query bits")
	}
}

// chunkReader yields at most chunk bytes per Read, like a network socket.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := min(min(len(p), r.chunk), len(r.data))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// TestEncodeToMatchesEncode: the streaming encoder contract — for every
// codec and every summary kind, EncodeTo writes exactly the bytes Encode
// returns, regardless of the destination writer's type (buffered or not).
func TestEncodeToMatchesEncode(t *testing.T) {
	for _, version := range SupportedWireVersions() {
		codec, err := CodecByVersion(version)
		if err != nil {
			t.Fatal(err)
		}
		for _, sum := range fixtureSummaries(NewSummarizer(99)) {
			want, err := codec.Encode(sum)
			if err != nil {
				t.Fatalf("v%d Encode(%s): %v", version, sum.Kind(), err)
			}
			// A plain buffer (the writer EncodeTo special-cases) and an
			// opaque writer (forced through the bufio wrap path).
			var direct bytes.Buffer
			if err := codec.EncodeTo(&direct, sum); err != nil {
				t.Fatalf("v%d EncodeTo(buffer, %s): %v", version, sum.Kind(), err)
			}
			var opaque bytes.Buffer
			if err := codec.EncodeTo(onlyWriter{&opaque}, sum); err != nil {
				t.Fatalf("v%d EncodeTo(opaque, %s): %v", version, sum.Kind(), err)
			}
			if !bytes.Equal(direct.Bytes(), want) || !bytes.Equal(opaque.Bytes(), want) {
				t.Fatalf("v%d EncodeTo(%s) diverges from Encode (%d/%d vs %d bytes)",
					version, sum.Kind(), direct.Len(), opaque.Len(), len(want))
			}
		}
	}
}

// onlyWriter hides every method but Write, so EncodeTo cannot type-switch
// its way around the generic path.
type onlyWriter struct{ w io.Writer }

func (o onlyWriter) Write(p []byte) (int, error) { return o.w.Write(p) }

// TestEncodeToPropagatesWriteErrors: a failing destination surfaces the
// error instead of silently truncating.
func TestEncodeToPropagatesWriteErrors(t *testing.T) {
	sum := fixtureSummaries(NewSummarizer(99))[0]
	for _, version := range SupportedWireVersions() {
		codec, err := CodecByVersion(version)
		if err != nil {
			t.Fatal(err)
		}
		if err := codec.EncodeTo(failingWriter{}, sum); err == nil {
			t.Fatalf("v%d EncodeTo to a failing writer returned nil", version)
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
