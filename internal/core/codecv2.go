package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// The v2 binary wire format. The v1 JSON format spells every 64-bit key
// and float in decimal — roughly 3–4× the bytes of a fixed-width layout —
// and forces a full-buffer json.Unmarshal on every decode. v2 is the
// compact, streamable alternative:
//
//	offset  size  field
//	0       1     magic 0xCB
//	1       1     magic 0x53
//	2       1     wire version (2)
//	3       1     kind tag: 1 = pps, 2 = set, 3 = bottomk, 4 = varopt
//	4       1     flags: bit 0 = shared (coordinated) seeds; others must be 0
//	5       8     salt, uint64 little-endian
//	13      var   instance, signed varint (zigzag)
//	...     kind parameters:
//	              pps      tau, IEEE-754 float64 little-endian
//	              set      p, float64 little-endian
//	              bottomk  rank family (1 = pps, 2 = exp), then tau float64
//	                       (+Inf encodes the unbounded threshold directly —
//	                       no JSON-style zero sentinel)
//	              varopt   tau, float64 little-endian (0 = never overflowed)
//	...     var   entry count, unsigned varint
//	...     n×    entries, fixed width little-endian:
//	              pps/bottomk  key uint64, value float64   (16 bytes)
//	              varopt       key uint64, original weight (16 bytes)
//	              set          key uint64                  (8 bytes)
//
// Entries are written in ascending key order, so equal summaries encode to
// equal bytes. Decoding reads entry by entry through a small bufio window:
// memory beyond the resulting summary is O(buffer), never O(payload), and
// a hostile entry count cannot pre-allocate more than v2MaxPrealloc map
// slots before real entries have to back it.

// v2 magic bytes. 0xCB is not a valid first byte of JSON (or of UTF-8
// text), so the two formats are sniffable from the first two bytes.
const (
	v2Magic0 = 0xCB // "Cohen"
	v2Magic1 = 0x53 // 'S' for summary
)

// v2 kind tags.
const (
	v2KindPPS     = 1
	v2KindSet     = 2
	v2KindBottomK = 3
	v2KindVarOpt  = 4
)

// v2 rank-family tags (bottom-k only).
const (
	v2FamilyPPS = 1
	v2FamilyEXP = 2
)

// v2FlagShared marks coordinated (shared-seed) randomization.
const v2FlagShared = 0x01

// v2MaxPrealloc caps how many map slots a decoder reserves up front from
// the declared entry count. A payload claiming 2^60 entries allocates at
// most this many empty slots; everything beyond grows only as entries are
// actually read off the wire.
const v2MaxPrealloc = 1 << 12

// binaryCodecV2 is the v2 binary codec.
type binaryCodecV2 struct{}

// Version implements Codec.
func (binaryCodecV2) Version() int { return 2 }

// ContentType implements Codec.
func (binaryCodecV2) ContentType() string { return ContentTypeV2 }

// Encode implements Codec.
func (c binaryCodecV2) Encode(s Summary) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(64 + 16*s.Size())
	if err := encodeSummaryV2(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeTo implements Codec. The v2 layout streams: entries are written
// one at a time, so a giant summary flows through a bounded buffer
// instead of materializing a second copy of itself. Writers without
// their own buffering are wrapped in one (the writer issues many small
// field-sized writes).
func (binaryCodecV2) EncodeTo(w io.Writer, s Summary) error {
	switch w.(type) {
	case *bytes.Buffer, *bufio.Writer:
		return encodeSummaryV2(w, s)
	}
	bw := bufio.NewWriterSize(w, 32<<10)
	if err := encodeSummaryV2(bw, s); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeSummaryV2 writes one summary in the v2 layout.
func encodeSummaryV2(dst io.Writer, s Summary) error {
	w := &v2Writer{w: dst}
	switch t := s.(type) {
	case interface{ wireBytes() []byte }:
		// Zero-copy views were parsed from a validated CANONICAL v2 message
		// (ParseSummaryView accepts nothing else), so re-encoding is a raw
		// byte copy of exactly what any other branch would re-derive.
		w.write(t.wireBytes())
	case *PPSSummary:
		w.header(v2KindPPS, t.parent.seeder, t.Instance)
		w.float64(t.Tau)
		w.weightedEntries(t.Sample.Values)
	case *SetSummary:
		w.header(v2KindSet, t.parent.seeder, t.Instance)
		w.float64(t.P)
		w.memberEntries(t.Members)
	case *BottomKSummary:
		w.header(v2KindBottomK, t.parent.seeder, t.Instance)
		switch t.Sample.Family.(type) {
		case sampling.PPS:
			w.byte(v2FamilyPPS)
		case sampling.EXP:
			w.byte(v2FamilyEXP)
		default:
			return fmt.Errorf("core: v2 encoding of unknown rank family %q", t.Sample.Family.Name())
		}
		w.float64(t.Sample.Tau)
		w.weightedEntries(t.Sample.Values)
	case *VarOptSummary:
		// Entries carry the ORIGINAL weights; adjusted weights are the
		// decode-side identity max(w, tau), keeping the entry layout shared
		// with the other weighted kinds.
		w.header(v2KindVarOpt, t.parent.seeder, t.Instance)
		w.float64(t.Sample.Tau)
		w.weightedEntries(t.Sample.Original)
	default:
		return fmt.Errorf("core: v2 encoding of unknown summary kind %q", s.Kind())
	}
	return w.err
}

// DecodeFrom implements Codec. Decoding is streaming: entries are read one
// at a time through a bounded buffer.
func (binaryCodecV2) DecodeFrom(r io.Reader) (Summary, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 4096)
	}
	return decodeSummaryV2(br)
}

// v2Writer serializes the layout above into any io.Writer with a sticky
// error: after the first write failure every later method is a no-op, so
// the encoding functions check err once at the end.
type v2Writer struct {
	w   io.Writer
	err error
}

func (w *v2Writer) write(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *v2Writer) byte(b byte) { w.write([]byte{b}) }

func (w *v2Writer) uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.write(b[:])
}

func (w *v2Writer) float64(v float64) { w.uint64(math.Float64bits(v)) }

func (w *v2Writer) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	w.write(b[:binary.PutUvarint(b[:], v)])
}

func (w *v2Writer) varint(v int64) {
	var b [binary.MaxVarintLen64]byte
	w.write(b[:binary.PutVarint(b[:], v)])
}

func (w *v2Writer) header(kind byte, seeder xhash.Seeder, instance int) {
	w.byte(v2Magic0)
	w.byte(v2Magic1)
	w.byte(2)
	w.byte(kind)
	var flags byte
	if seeder.Shared {
		flags |= v2FlagShared
	}
	w.byte(flags)
	w.uint64(seeder.Salt)
	w.varint(int64(instance))
}

// sortedKeys returns m's keys ascending — the deterministic entry order.
func sortedKeys[V any](m map[dataset.Key]V) []dataset.Key {
	keys := make([]dataset.Key, 0, len(m))
	for h := range m {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func (w *v2Writer) weightedEntries(values map[dataset.Key]float64) {
	w.uvarint(uint64(len(values)))
	for _, h := range sortedKeys(values) {
		w.uint64(uint64(h))
		w.float64(values[h])
	}
}

func (w *v2Writer) memberEntries(members map[dataset.Key]bool) {
	w.uvarint(uint64(len(members)))
	for _, h := range sortedKeys(members) {
		w.uint64(uint64(h))
	}
}

// v2Reader decodes the layout, mapping any truncation to a decode error
// instead of a bare EOF.
type v2Reader struct {
	br *bufio.Reader
}

func (r v2Reader) fail(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("core: decoding v2 summary: %w", err)
}

func (r v2Reader) byte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, r.fail(err)
	}
	return b, nil
}

func (r v2Reader) uint64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		return 0, r.fail(err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (r v2Reader) float64() (float64, error) {
	bits, err := r.uint64()
	return math.Float64frombits(bits), err
}

func (r v2Reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, r.fail(err)
	}
	return v, nil
}

func (r v2Reader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		return 0, r.fail(err)
	}
	return v, nil
}

// prealloc bounds the up-front map reservation for a declared entry count.
func prealloc(count uint64) int {
	if count > v2MaxPrealloc {
		return v2MaxPrealloc
	}
	return int(count)
}

// decodeSummaryV2 reads one v2 summary off the stream, leaving the reader
// positioned after the final entry (trailing bytes are the caller's
// concern — a stream may carry more than one message).
func decodeSummaryV2(br *bufio.Reader) (Summary, error) {
	r := v2Reader{br}
	var head [5]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, r.fail(err)
	}
	if head[0] != v2Magic0 || head[1] != v2Magic1 {
		return nil, fmt.Errorf("core: decoding v2 summary: bad magic %#02x %#02x", head[0], head[1])
	}
	if head[2] != 2 {
		// The magic matched but the version is from the future: surface the
		// typed error so callers can negotiate down.
		return nil, fmt.Errorf("core: binary summary version %d (supported: %v): %w",
			head[2], SupportedWireVersions(), ErrUnknownVersion)
	}
	kind, flags := head[3], head[4]
	if flags&^v2FlagShared != 0 {
		return nil, fmt.Errorf("core: decoding v2 summary: undefined flag bits %#02x", flags)
	}
	salt, err := r.uint64()
	if err != nil {
		return nil, err
	}
	instance, err := r.varint()
	if err != nil {
		return nil, err
	}
	if int64(int(instance)) != instance {
		return nil, fmt.Errorf("core: decoding v2 summary: instance %d out of range", instance)
	}
	parent := &Summarizer{seeder: xhash.Seeder{Salt: salt, Shared: flags&v2FlagShared != 0}}

	switch kind {
	case v2KindPPS:
		tau, err := r.float64()
		if err != nil {
			return nil, err
		}
		if !(tau > 0) || math.IsInf(tau, 1) {
			return nil, fmt.Errorf("core: invalid tau %v", tau)
		}
		vals, err := r.weightedEntries()
		if err != nil {
			return nil, err
		}
		return &PPSSummary{
			Instance: int(instance),
			Tau:      tau,
			Sample:   &sampling.WeightedSample{Values: vals, Tau: 1 / tau, Family: sampling.PPS{}},
			parent:   parent,
		}, nil
	case v2KindSet:
		p, err := r.float64()
		if err != nil {
			return nil, err
		}
		if !(p > 0 && p <= 1) {
			return nil, fmt.Errorf("core: invalid sampling probability %v", p)
		}
		members, err := r.memberEntries()
		if err != nil {
			return nil, err
		}
		return &SetSummary{
			Instance: int(instance),
			P:        p,
			Members:  members,
			parent:   parent,
		}, nil
	case v2KindBottomK:
		famTag, err := r.byte()
		if err != nil {
			return nil, err
		}
		var fam sampling.RankFamily
		switch famTag {
		case v2FamilyPPS:
			fam = sampling.PPS{}
		case v2FamilyEXP:
			fam = sampling.EXP{}
		default:
			return nil, fmt.Errorf("core: unknown rank family tag %d", famTag)
		}
		tau, err := r.float64()
		if err != nil {
			return nil, err
		}
		if !(tau > 0) { // +Inf (the unbounded threshold) passes; 0, negatives, NaN fail
			return nil, fmt.Errorf("core: invalid rank threshold %v", tau)
		}
		vals, err := r.weightedEntries()
		if err != nil {
			return nil, err
		}
		return &BottomKSummary{
			Instance: int(instance),
			Sample:   &sampling.WeightedSample{Values: vals, Tau: tau, Family: fam},
			parent:   parent,
		}, nil
	case v2KindVarOpt:
		tau, err := r.float64()
		if err != nil {
			return nil, err
		}
		if !(tau >= 0) || math.IsInf(tau, 1) { // 0 (never overflowed) passes; negatives, NaN, +Inf fail
			return nil, fmt.Errorf("core: invalid varopt threshold %v", tau)
		}
		vals, err := r.weightedEntries()
		if err != nil {
			return nil, err
		}
		return &VarOptSummary{
			Instance: int(instance),
			Sample:   varOptSampleFromWire(vals, tau),
			parent:   parent,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown v2 summary kind tag %d", kind)
	}
}

// weightedEntries streams (key, value) entries into a fresh map.
func (r v2Reader) weightedEntries() (map[dataset.Key]float64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	vals := make(map[dataset.Key]float64, prealloc(n))
	for i := uint64(0); i < n; i++ {
		k, err := r.uint64()
		if err != nil {
			return nil, err
		}
		v, err := r.float64()
		if err != nil {
			return nil, err
		}
		vals[dataset.Key(k)] = v
	}
	if uint64(len(vals)) != n {
		return nil, fmt.Errorf("core: decoding v2 summary: %d duplicate keys", n-uint64(len(vals)))
	}
	return vals, nil
}

// memberEntries streams member keys into a fresh set.
func (r v2Reader) memberEntries() (map[dataset.Key]bool, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	members := make(map[dataset.Key]bool, prealloc(n))
	for i := uint64(0); i < n; i++ {
		k, err := r.uint64()
		if err != nil {
			return nil, err
		}
		members[dataset.Key(k)] = true
	}
	if uint64(len(members)) != n {
		return nil, fmt.Errorf("core: decoding v2 summary: %d duplicate keys", n-uint64(len(members)))
	}
	return members, nil
}
