package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simdata"
)

// TestSummarizeSetBottomKBasics: sizes, threshold semantics.
func TestSummarizeSetBottomKBasics(t *testing.T) {
	members := make(map[dataset.Key]bool)
	for k := dataset.Key(1); k <= 100; k++ {
		members[k] = true
	}
	s := NewSummarizer(4)
	sum := s.SummarizeSetBottomK(0, members, 10)
	if sum.Len() != 10 {
		t.Fatalf("summary size %d, want 10", sum.Len())
	}
	if !(sum.P > 0 && sum.P < 1) {
		t.Fatalf("threshold P = %v", sum.P)
	}
	// Every retained member's seed is below P; every excluded member's is
	// above.
	for h := range members {
		u := s.Seeder().Seed(0, uint64(h))
		if sum.Members[h] != (u < sum.P) {
			t.Fatalf("key %d inconsistent with threshold", h)
		}
	}
	// Undersized set: everything kept, P = 1.
	small := map[dataset.Key]bool{1: true, 2: true}
	sumSmall := s.SummarizeSetBottomK(0, small, 10)
	if sumSmall.Len() != 2 || sumSmall.P != 1 {
		t.Fatalf("undersized summary: len=%d P=%v", sumSmall.Len(), sumSmall.P)
	}
}

// TestBottomKDistinctUnbiased: distinct-count estimates over bottom-k set
// summaries remain unbiased (rank conditioning, §8.1).
func TestBottomKDistinctUnbiased(t *testing.T) {
	logs := simdata.RequestLog(3000, 2, 0.25, 21)
	truth := 0.0
	seen := map[dataset.Key]bool{}
	for _, l := range logs {
		for h := range l {
			if !seen[h] {
				seen[h] = true
				truth++
			}
		}
	}
	const trials = 3000
	var sumHT, sumL float64
	for i := 0; i < trials; i++ {
		s := NewSummarizer(uint64(i) * 17)
		s1 := s.SummarizeSetBottomK(0, logs[0], 100)
		s2 := s.SummarizeSetBottomK(1, logs[1], 100)
		est, err := DistinctCount(s1, s2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumHT += est.HT
		sumL += est.L
	}
	if got := sumHT / trials; math.Abs(got-truth)/truth > 0.05 {
		t.Errorf("HT mean %v, want %v", got, truth)
	}
	if got := sumL / trials; math.Abs(got-truth)/truth > 0.03 {
		t.Errorf("L mean %v, want %v", got, truth)
	}
}

// TestBottomKDistinctLBeatsHT: the partial-information advantage carries
// over from Poisson to bottom-k summaries.
func TestBottomKDistinctLBeatsHT(t *testing.T) {
	logs := simdata.RequestLog(3000, 2, 0.25, 33)
	truth := 0.0
	seen := map[dataset.Key]bool{}
	for _, l := range logs {
		for h := range l {
			if !seen[h] {
				seen[h] = true
				truth++
			}
		}
	}
	var mseHT, mseL float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := NewSummarizer(7777 + uint64(i))
		est, err := DistinctCount(
			s.SummarizeSetBottomK(0, logs[0], 80),
			s.SummarizeSetBottomK(1, logs[1], 80), nil)
		if err != nil {
			t.Fatal(err)
		}
		mseHT += (est.HT - truth) * (est.HT - truth)
		mseL += (est.L - truth) * (est.L - truth)
	}
	if mseL >= mseHT {
		t.Errorf("L MSE %v not below HT MSE %v", mseL/trials, mseHT/trials)
	}
	if ratio := mseHT / mseL; ratio < 1.5 {
		t.Errorf("MSE ratio %v, expected a clear win", ratio)
	}
}

func TestSummarizeSetBottomKPanics(t *testing.T) {
	s := NewSummarizer(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	s.SummarizeSetBottomK(0, map[dataset.Key]bool{1: true}, 0)
}
