package core

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// VarOpt_k summaries extend the dispersed workflow beyond hash-seeded
// sampling: a fixed-size variance-optimal weighted sample (Chao 1982;
// Cohen, Duffield, Kaplan, Lund, Thorup 2009) whose adjusted weights are
// unbiased subset-sum estimators with the variance-optimality the
// order-sampling families cannot give. The price is that VarOpt draws
// true randomness — there are no per-key seeds to recompute — so VarOpt
// summaries answer single-instance subset sums, not the cross-instance
// partial-information queries of §4–§5. They share the Summarizer front
// door (and its salt) so the registry's compatibility invariant still
// groups summaries by randomization.

// VarOptSummary is a VarOpt_k summary of a single instance.
type VarOptSummary struct {
	// Instance is the index identifying this instance.
	Instance int
	// Sample holds the retained keys with original and adjusted weights.
	Sample *sampling.VarOptSample

	parent *Summarizer
}

// SummarizeVarOpt draws a VarOpt_k summary of one instance through the
// engine on its sequential path; use SummarizeVarOptWith to fan out across
// shards for heavy instances.
func (s *Summarizer) SummarizeVarOpt(instance int, in dataset.Instance, k int) *VarOptSummary {
	return s.SummarizeVarOptWith(engine.Config{}, instance, in, k)
}

// SummarizeVarOptWith draws a VarOpt_k summary through the engine under
// the given config. The drop-decision randomness is derived from the
// Summarizer's salt and the instance index, so a fixed (salt, instance,
// config, arrival order) reproduces the same sample.
func (s *Summarizer) SummarizeVarOptWith(cfg engine.Config, instance int, in dataset.Instance, k int) *VarOptSummary {
	return &VarOptSummary{
		Instance: instance,
		Sample:   engine.SummarizeVarOpt(in, k, s.varOptSeed(instance), cfg),
		parent:   s,
	}
}

// varOptSeed derives the engine seed of one instance's VarOpt pipeline.
func (s *Summarizer) varOptSeed(instance int) uint64 {
	return xhash.Hash2(s.seeder.Salt, uint64(instance))
}

// SubsetSum estimates Σ_{h∈sel} v(h) by summing adjusted weights (nil sel
// selects all keys; the all-keys sum is the exact stream total).
func (v *VarOptSummary) SubsetSum(sel func(dataset.Key) bool) float64 {
	return v.Sample.SubsetSum(sel)
}

// Len returns the number of retained keys.
func (v *VarOptSummary) Len() int { return len(v.Sample.Adjusted) }

// InstanceID implements Summary.
func (v *VarOptSummary) InstanceID() int { return v.Instance }

// Kind implements Summary.
func (v *VarOptSummary) Kind() string { return "varopt" }

// Size implements Summary.
func (v *VarOptSummary) Size() int { return v.Len() }

func (v *VarOptSummary) seederOf() xhash.Seeder { return v.parent.seeder }

// VarOptStream summarizes one instance incrementally with a VarOpt_k
// reservoir behind the engine pipeline seam: Push arrivals as they happen,
// Close to obtain the finished VarOptSummary.
type VarOptStream struct {
	instance int
	parent   *Summarizer
	e        *engine.VarOpt
}

// StreamVarOpt opens a VarOpt_k summarization stream for one instance.
func (s *Summarizer) StreamVarOpt(cfg engine.Config, instance, k int) *VarOptStream {
	return &VarOptStream{
		instance: instance,
		parent:   s,
		e:        engine.NewVarOpt(k, s.varOptSeed(instance), cfg),
	}
}

// Push offers one (key, weight) arrival.
func (st *VarOptStream) Push(h dataset.Key, v float64) { st.e.Push(h, v) }

// TryPush offers one arrival without blocking: where Push would stall on a
// full shard queue, it returns engine.ErrQueueFull (counted in
// Stats().Rejected).
func (st *VarOptStream) TryPush(h dataset.Key, v float64) error { return st.e.TryPush(h, v) }

// Snapshot returns a summary of the arrivals pushed so far without closing
// the stream. Each snapshot consumes fresh merge randomness.
func (st *VarOptStream) Snapshot() *VarOptSummary {
	return &VarOptSummary{Instance: st.instance, Sample: st.e.Snapshot(), parent: st.parent}
}

// Stats exposes the engine's throughput and backpressure counters.
func (st *VarOptStream) Stats() engine.Stats { return st.e.Stats() }

// Close drains the pipeline and returns the finished summary.
func (st *VarOptStream) Close() *VarOptSummary {
	return &VarOptSummary{Instance: st.instance, Sample: st.e.Close(), parent: st.parent}
}

// varoptWire is the serialized form of a VarOptSummary. Values carries the
// ORIGINAL weights; adjusted weights are reconstructed as max(w, tau), the
// identity the reservoir maintains, so the wire stays one float per key —
// the same 16-byte v2 entry layout as the other weighted kinds. Tau = 0
// means the reservoir never overflowed (every adjusted weight is the
// original weight).
type varoptWire struct {
	Version  int                     `json:"version"`
	Kind     string                  `json:"kind"`
	Instance int                     `json:"instance"`
	Tau      float64                 `json:"tau"`
	Salt     uint64                  `json:"salt"`
	Shared   bool                    `json:"shared"`
	Values   map[dataset.Key]float64 `json:"values"`
}

// MarshalJSON encodes the summary with its randomization salt — not used
// for seed recomputation (VarOpt has no seeds) but required for the
// registry's per-dataset compatibility invariant.
func (v *VarOptSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(varoptWire{
		Version:  WireVersion,
		Kind:     "varopt",
		Instance: v.Instance,
		Tau:      v.Sample.Tau,
		Salt:     v.parent.seeder.Salt,
		Shared:   v.parent.seeder.Shared,
		Values:   v.Sample.Original,
	})
}

// decodeVarOptWire reconstructs a VarOptSummary from its parsed v1 wire
// form.
func decodeVarOptWire(w varoptWire) (*VarOptSummary, error) {
	if err := checkVersion("varopt", w.Version); err != nil {
		return nil, err
	}
	if !(w.Tau >= 0) || math.IsInf(w.Tau, 1) {
		return nil, fmt.Errorf("core: invalid varopt threshold %v", w.Tau)
	}
	vals := w.Values
	if vals == nil {
		vals = map[dataset.Key]float64{}
	}
	return &VarOptSummary{
		Instance: w.Instance,
		Sample:   varOptSampleFromWire(vals, w.Tau),
		parent:   &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}},
	}, nil
}

// varOptSampleFromWire rebuilds a VarOptSample from original weights and
// the threshold, restoring the adjusted-weight identity max(w, tau).
func varOptSampleFromWire(original map[dataset.Key]float64, tau float64) *sampling.VarOptSample {
	adj := make(map[dataset.Key]float64, len(original))
	for h, w := range original {
		adj[h] = math.Max(w, tau)
	}
	return &sampling.VarOptSample{Adjusted: adj, Original: original, Tau: tau}
}

// DecodeVarOptSummary reconstructs a VarOptSummary from its wire form (v1
// JSON or v2 binary).
func DecodeVarOptSummary(data []byte) (*VarOptSummary, error) {
	return decodeAs[*VarOptSummary](data, "varopt")
}
