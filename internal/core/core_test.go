package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
)

func TestMaxDominanceEndToEnd(t *testing.T) {
	m := simdata.Generate(simdata.TrafficConfig{
		SharedKeys: 120, Only1: 40, Only2: 40,
		Alpha: 1.4, MeanValue: 12, Jitter: 0.7, Seed: 6,
	})
	truth := m.SumAggregate(dataset.Max, nil)
	const trials = 2500
	var sumHT, sumL float64
	for i := 0; i < trials; i++ {
		s := NewSummarizer(uint64(i))
		s1 := s.SummarizePPSExpectedSize(0, m.Instances[0], 40)
		s2 := s.SummarizePPSExpectedSize(1, m.Instances[1], 40)
		res, err := MaxDominance(s1, s2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumHT += res.HT
		sumL += res.L
	}
	if got := sumHT / trials; math.Abs(got-truth)/truth > 0.06 {
		t.Errorf("HT mean %v, want %v", got, truth)
	}
	if got := sumL / trials; math.Abs(got-truth)/truth > 0.04 {
		t.Errorf("L mean %v, want %v", got, truth)
	}
}

func TestDistinctCountEndToEnd(t *testing.T) {
	logs := simdata.RequestLog(2000, 2, 0.25, 3)
	truth := 0.0
	seen := map[dataset.Key]bool{}
	for _, l := range logs {
		for h := range l {
			if !seen[h] {
				seen[h] = true
				truth++
			}
		}
	}
	const trials = 2500
	var sumHT, sumL float64
	for i := 0; i < trials; i++ {
		s := NewSummarizer(uint64(i) * 13)
		s1 := s.SummarizeSet(0, logs[0], 0.3)
		s2 := s.SummarizeSet(1, logs[1], 0.3)
		res, err := DistinctCount(s1, s2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumHT += res.HT
		sumL += res.L
	}
	if got := sumHT / trials; math.Abs(got-truth)/truth > 0.04 {
		t.Errorf("HT mean %v, want %v", got, truth)
	}
	if got := sumL / trials; math.Abs(got-truth)/truth > 0.03 {
		t.Errorf("L mean %v, want %v", got, truth)
	}
}

func TestSummaryMisuse(t *testing.T) {
	in := dataset.FigureFive().Instances[0]
	a := NewSummarizer(1)
	b := NewSummarizer(2)
	s1 := a.SummarizePPS(0, in, 5)
	s2 := b.SummarizePPS(1, in, 5)
	if _, err := MaxDominance(s1, s2, nil); err == nil {
		t.Error("expected error for summaries from different summarizers")
	}
	s3 := a.SummarizePPS(0, in, 5)
	if _, err := MaxDominance(s1, s3, nil); err == nil {
		t.Error("expected error for duplicate instance index")
	}
	m1 := a.SummarizeSet(0, map[dataset.Key]bool{1: true}, 0.5)
	m2 := b.SummarizeSet(1, map[dataset.Key]bool{1: true}, 0.5)
	if _, err := DistinctCount(m1, m2, nil); err == nil {
		t.Error("expected error for set summaries from different summarizers")
	}
	m3 := a.SummarizeSet(0, map[dataset.Key]bool{1: true}, 0.5)
	if _, err := DistinctCount(m1, m3, nil); err == nil {
		t.Error("expected error for duplicate set instance index")
	}
}

func TestSubsetSumsAcrossSchemes(t *testing.T) {
	in := dataset.Instance{}
	total := 0.0
	for k := dataset.Key(1); k <= 100; k++ {
		v := float64(1 + k%13)
		in[k] = v
		total += v
	}
	const trials = 4000
	var pps, bk, bkExp float64
	for i := 0; i < trials; i++ {
		s := NewSummarizer(uint64(i) * 7)
		pps += s.SummarizePPSExpectedSize(0, in, 20).SubsetSum(nil)
		bk += s.SummarizeBottomK(0, in, 20, sampling.PPS{}).SubsetSum(nil)
		bkExp += s.SummarizeBottomK(0, in, 20, sampling.EXP{}).SubsetSum(nil)
	}
	for name, got := range map[string]float64{
		"pps": pps / trials, "priority": bk / trials, "swor": bkExp / trials,
	} {
		if math.Abs(got-total)/total > 0.03 {
			t.Errorf("%s subset-sum mean %v, want %v", name, got, total)
		}
	}
}

// TestCoordinatedSummarizer: shared seeds make identical instances produce
// identical summaries, boosting multi-instance overlap (§7.2).
func TestCoordinatedSummarizer(t *testing.T) {
	in := dataset.FigureFive().Instances[0]
	s := NewCoordinatedSummarizer(5)
	a := s.SummarizePPS(0, in, 8)
	b := s.SummarizePPS(1, in, 8)
	if a.Len() != b.Len() {
		t.Fatalf("coordinated summaries differ in size: %d vs %d", a.Len(), b.Len())
	}
	for h := range a.Sample.Values {
		if _, ok := b.Sample.Values[h]; !ok {
			t.Fatalf("coordinated summaries differ at key %d", h)
		}
	}
	if !s.Seeder().Shared {
		t.Error("coordinated summarizer not shared")
	}
	if NewSummarizer(5).Seeder().Shared {
		t.Error("plain summarizer is shared")
	}
}

// TestKnownSeedAdvantage: the L estimator's squared error is lower than
// HT's across repeated summarizations (the paper's headline in one
// assertion).
func TestKnownSeedAdvantage(t *testing.T) {
	m := simdata.Generate(simdata.ScaledTraffic(100))
	truth := m.SumAggregate(dataset.Max, nil)
	var seHT, seL float64
	const trials = 1500
	for i := 0; i < trials; i++ {
		s := NewSummarizer(uint64(i) * 3)
		s1 := s.SummarizePPSExpectedSize(0, m.Instances[0], 60)
		s2 := s.SummarizePPSExpectedSize(1, m.Instances[1], 60)
		res, err := MaxDominance(s1, s2, nil)
		if err != nil {
			t.Fatal(err)
		}
		seHT += (res.HT - truth) * (res.HT - truth)
		seL += (res.L - truth) * (res.L - truth)
	}
	if seL >= seHT {
		t.Errorf("L MSE %v not below HT MSE %v", seL/trials, seHT/trials)
	}
	if ratio := seHT / seL; ratio < 1.5 {
		t.Errorf("MSE ratio %v, expected the known-seed estimator to win clearly", ratio)
	}
}
