// Package core is the library's front door. It packages the paper's
// workflow end to end:
//
//  1. each data instance (a snapshot, log period, or sensor round) is
//     summarized *independently* of the others — the dispersed-data
//     constraint of §2 — using weighted Poisson PPS sampling or bottom-k
//     sampling with reproducible hash-derived seeds ("known seeds");
//  2. any subset of the resulting summaries can later be combined to answer
//     multi-instance queries — distinct counts, max-dominance norms,
//     per-key quantile estimates — using the Pareto-optimal
//     partial-information estimators of §4–§5 alongside the classical
//     Horvitz–Thompson baselines.
//
// The underlying estimators live in internal/estimator, the sampling
// substrates in internal/sampling; this package wires them together so
// applications never handle seeds or outcome structures directly.
package core

import (
	"repro/internal/aggregate"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Summarizer holds the shared randomization: a salt defining the random
// hash functions. Summaries produced with the same Summarizer can be
// combined; the salt makes every seed reproducible, which is what enables
// the partial-information estimators (§5).
type Summarizer struct {
	seeder xhash.Seeder
}

// NewSummarizer returns a Summarizer with independent per-instance seeds
// (the joint distribution studied in §4–§6).
func NewSummarizer(salt uint64) *Summarizer {
	return &Summarizer{seeder: xhash.Seeder{Salt: salt}}
}

// NewCoordinatedSummarizer returns a Summarizer whose instances share
// seeds (PRN coordination, §7.2): similar instances then receive similar
// samples.
func NewCoordinatedSummarizer(salt uint64) *Summarizer {
	return &Summarizer{seeder: xhash.Seeder{Salt: salt, Shared: true}}
}

// Seeder exposes the underlying seed derivation (for advanced use and
// tests).
func (s *Summarizer) Seeder() xhash.Seeder { return s.seeder }

// seedFunc adapts the seeder to one instance.
func (s *Summarizer) seedFunc(instance int) sampling.SeedFunc {
	return func(h dataset.Key) float64 { return s.seeder.Seed(instance, uint64(h)) }
}

// PPSSummary is a weighted Poisson PPS summary of a single instance: the
// sampled keys with exact values, plus everything needed to recompute
// inclusion probabilities and seeds.
type PPSSummary struct {
	// Instance is the index identifying this instance's hash salt.
	Instance int
	// Tau is the PPS threshold: key h was included iff v(h) ≥ u(h)·Tau.
	Tau float64
	// Sample holds the sampled keys and values.
	Sample *sampling.WeightedSample

	parent *Summarizer
}

// SummarizePPS draws the PPS summary of one instance with threshold tau
// (inclusion probability min{1, v/tau}). It routes through the
// summarization engine on its sequential path; use SummarizePPSWith to fan
// out across shards for heavy instances.
func (s *Summarizer) SummarizePPS(instance int, in dataset.Instance, tau float64) *PPSSummary {
	return s.SummarizePPSWith(engine.Config{}, instance, in, tau)
}

// SummarizePPSExpectedSize draws a PPS summary sized to k expected keys.
func (s *Summarizer) SummarizePPSExpectedSize(instance int, in dataset.Instance, k float64) *PPSSummary {
	return s.SummarizePPS(instance, in, sampling.TauForExpectedSize(in, k))
}

// SubsetSum estimates the single-instance subset sum Σ_{h∈sel} v(h) from
// the summary (nil sel selects all keys).
func (p *PPSSummary) SubsetSum(sel func(dataset.Key) bool) float64 {
	return p.Sample.SubsetSum(sel)
}

// Len returns the number of sampled keys.
func (p *PPSSummary) Len() int { return p.Sample.Len() }

// MaxDominanceEstimate is the result of a two-summary max-dominance query.
type MaxDominanceEstimate struct {
	// HT is the Horvitz–Thompson estimate (positive per-key contribution
	// only when the maximum is certain).
	HT float64
	// L is the partial-information estimate Σ max^(L): Pareto optimal,
	// dominating HT (§5.2, §8.2).
	L float64
	// KeysUsed is the number of distinct keys appearing in either sample.
	KeysUsed int
}

// MaxDominance estimates Σ_{h∈sel} max(v1(h), v2(h)) from two PPS
// summaries produced by the same Summarizer.
func MaxDominance(s1, s2 *PPSSummary, sel func(dataset.Key) bool) (MaxDominanceEstimate, error) {
	return MaxDominanceReaders(s1, s2, sel)
}

// MaxDominanceReaders is MaxDominance over the PPSReader seam: it accepts
// any PPS representation — hydrated summaries or zero-copy v2 views — and
// answers identically (per-key terms sum in ascending key order either
// way).
func MaxDominanceReaders(s1, s2 PPSReader, sel func(dataset.Key) bool) (MaxDominanceEstimate, error) {
	if err := checkCombinable([]Summary{s1, s2}, 2); err != nil {
		return MaxDominanceEstimate{}, err
	}
	tau := []float64{s1.PPSTau(), s2.PPSTau()}
	seeder := s1.seederOf()
	var out MaxDominanceEstimate
	for _, h := range unionReaderKeys[PPSReader](s1, s2) {
		if sel != nil && !sel(h) {
			continue
		}
		o := estimator.PPSOutcome{
			Tau: tau,
			U: []float64{
				seeder.Seed(s1.InstanceID(), uint64(h)),
				seeder.Seed(s2.InstanceID(), uint64(h)),
			},
			Sampled: make([]bool, 2),
			Values:  make([]float64, 2),
		}
		if v, ok := s1.Lookup(h); ok {
			o.Sampled[0], o.Values[0] = true, v
		}
		if v, ok := s2.Lookup(h); ok {
			o.Sampled[1], o.Values[1] = true, v
		}
		out.HT += estimator.MaxHTPPS(o)
		out.L += estimator.MaxL2PPS(o)
		out.KeysUsed++
	}
	return out, nil
}

// SetSummary is a summary of a binary instance (a set of active keys):
// Poisson sampling with probability P over the members, with known seeds.
type SetSummary struct {
	// Instance is the index identifying this instance's hash salt.
	Instance int
	// P is the per-member sampling probability.
	P float64
	// Members holds the sampled keys.
	Members map[dataset.Key]bool

	parent *Summarizer
}

// SummarizeSet draws the known-seed Poisson summary of a set.
func (s *Summarizer) SummarizeSet(instance int, members map[dataset.Key]bool, p float64) *SetSummary {
	out := &SetSummary{Instance: instance, P: p, Members: make(map[dataset.Key]bool), parent: s}
	for h := range members {
		if s.seeder.Seed(instance, uint64(h)) < p {
			out.Members[h] = true
		}
	}
	return out
}

// Len returns the number of sampled members.
func (s *SetSummary) Len() int { return len(s.Members) }

// SetStream summarizes a set incrementally: Push members as they arrive,
// Close to obtain the finished SetSummary. Known-seed Poisson set sampling
// is stateless per key (membership is decided by the seed alone), so the
// stream needs no engine pipeline — it is the set-summary face of the
// edge-ingest path.
type SetStream struct {
	out *SetSummary
}

// StreamSet opens a set summarization stream for one instance with
// per-member sampling probability p ∈ (0, 1].
func (s *Summarizer) StreamSet(instance int, p float64) *SetStream {
	if !(p > 0 && p <= 1) {
		panic("core: StreamSet with probability outside (0,1]")
	}
	return &SetStream{out: &SetSummary{
		Instance: instance,
		P:        p,
		Members:  make(map[dataset.Key]bool),
		parent:   s,
	}}
}

// Push offers one member arrival. Pushing the same key twice is harmless
// (the seed test is deterministic).
func (st *SetStream) Push(h dataset.Key) {
	if st.out.parent.seeder.Seed(st.out.Instance, uint64(h)) < st.out.P {
		st.out.Members[h] = true
	}
}

// Close returns the finished summary. The stream is unusable afterwards.
func (st *SetStream) Close() *SetSummary {
	out := st.out
	st.out = nil
	return out
}

// SummarizeSetBottomK draws a bottom-k summary of a set: the k members
// with the smallest seeds, with P set to the (k+1)-st smallest member seed
// (§8.1). Conditioned on that threshold, membership sampling behaves like
// Poisson with probability P, so the same distinct-count estimators apply
// (rank conditioning, §7.1). If the set has at most k members, the whole
// set is kept with P = 1.
func (s *Summarizer) SummarizeSetBottomK(instance int, members map[dataset.Key]bool, k int) *SetSummary {
	if k <= 0 {
		panic("core: SummarizeSetBottomK with non-positive k")
	}
	// Track the k+1 smallest seeds with a simple bounded insertion; k is
	// a summary size, so k+1 linear scans are acceptable and allocation-
	// free compared to a heap of tuples.
	type seeded struct {
		key  dataset.Key
		seed float64
	}
	top := make([]seeded, 0, k+1)
	//summarylint:ignore bounded top-(k+1) selection by per-key seed: the kept set depends only on seed values, not arrival order
	for h := range members {
		u := s.seeder.Seed(instance, uint64(h))
		if len(top) < k+1 {
			top = append(top, seeded{h, u})
			for i := len(top) - 1; i > 0 && top[i].seed < top[i-1].seed; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if u >= top[k].seed {
			continue
		}
		top[k] = seeded{h, u}
		for i := k; i > 0 && top[i].seed < top[i-1].seed; i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
	}
	out := &SetSummary{Instance: instance, P: 1, Members: make(map[dataset.Key]bool, k), parent: s}
	if len(top) <= k {
		for _, e := range top {
			out.Members[e.key] = true
		}
		return out
	}
	out.P = top[k].seed
	for _, e := range top[:k] {
		out.Members[e.key] = true
	}
	return out
}

// DistinctEstimate is the result of a two-summary distinct-count query.
type DistinctEstimate struct {
	// HT and L are the §8.1 estimates of |N1 ∪ N2| over selected keys.
	HT, L float64
	// Counts are the outcome-category tallies behind the estimates.
	Counts aggregate.DistinctCounts
}

// DistinctCount estimates the number of distinct selected keys across two
// set summaries produced by the same Summarizer (§8.1).
func DistinctCount(s1, s2 *SetSummary, sel func(dataset.Key) bool) (DistinctEstimate, error) {
	return DistinctCountReaders(s1, s2, sel)
}

// DistinctCountReaders is DistinctCount over the SetReader seam: hydrated
// summaries and zero-copy v2 views answer identically.
func DistinctCountReaders(s1, s2 SetReader, sel func(dataset.Key) bool) (DistinctEstimate, error) {
	if err := checkCombinable([]Summary{s1, s2}, 2); err != nil {
		return DistinctEstimate{}, err
	}
	seeder := s1.seederOf()
	var c aggregate.DistinctCounts
	for _, h := range unionReaderKeys[SetReader](s1, s2) {
		if sel != nil && !sel(h) {
			continue
		}
		c.Add(aggregate.Categorize(
			s1.Contains(h), s2.Contains(h),
			seeder.Seed(s1.InstanceID(), uint64(h)),
			seeder.Seed(s2.InstanceID(), uint64(h)),
			s1.SetP(), s2.SetP(),
		))
	}
	e := aggregate.DistinctEstimator{P1: s1.SetP(), P2: s2.SetP()}
	return DistinctEstimate{HT: e.HT(c), L: e.L(c), Counts: c}, nil
}

// BottomKSummary is a bottom-k (order) summary of one instance.
type BottomKSummary struct {
	// Instance is the index identifying this instance's hash salt.
	Instance int
	// Sample holds the k lowest-ranked keys and the conditioning threshold.
	Sample *sampling.WeightedSample

	parent *Summarizer
}

// SummarizeBottomK draws a bottom-k summary with the given rank family
// (sampling.PPS{} for priority sampling, sampling.EXP{} for weighted
// sampling without replacement). It routes through the summarization
// engine on its sequential path; use SummarizeBottomKWith to fan out
// across shards for heavy instances.
func (s *Summarizer) SummarizeBottomK(instance int, in dataset.Instance, k int, fam sampling.RankFamily) *BottomKSummary {
	return s.SummarizeBottomKWith(engine.Config{}, instance, in, k, fam)
}

// SubsetSum estimates Σ_{h∈sel} v(h) with the rank-conditioning estimator.
func (b *BottomKSummary) SubsetSum(sel func(dataset.Key) bool) float64 {
	return b.Sample.SubsetSum(sel)
}

// Len returns the number of sampled keys.
func (b *BottomKSummary) Len() int { return b.Sample.Len() }
