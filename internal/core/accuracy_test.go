package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// mcInstance builds a population of n keys with mildly varied weights
// (0.5 … 1.4) — the regime where the k-dependent CV bound is tight.
func mcInstance(n int) dataset.Instance {
	in := make(dataset.Instance, n)
	for i := 1; i <= n; i++ {
		in[dataset.Key(i)] = 0.5 + 0.1*float64(i%10)
	}
	return in
}

func TestBottomKDistinctExactWhenUnderfull(t *testing.T) {
	in := mcInstance(50)
	s := NewSummarizer(7)
	b := s.SummarizeBottomK(0, in, 100, sampling.EXP{})
	if !math.IsInf(b.Sample.Tau, 1) {
		t.Fatalf("underfull summary has finite tau %v", b.Sample.Tau)
	}
	if got := BottomKDistinct(b); got != 50 {
		t.Fatalf("BottomKDistinct = %v, want exact 50", got)
	}
	stderr, ok := BottomKDistinctStdErr(b, 50)
	if !ok || stderr != 0 {
		t.Fatalf("underfull stderr = %v ok=%v, want exact 0", stderr, ok)
	}
}

func TestBottomKDistinctViewMatchesHydrated(t *testing.T) {
	in := mcInstance(500)
	s := NewSummarizer(11)
	b := s.SummarizeBottomK(0, in, 40, sampling.PPS{})
	codec, err := CodecByVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := codec.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ParseSummaryView(data)
	if err != nil {
		t.Fatal(err)
	}
	hv, vv := BottomKDistinct(b), BottomKDistinct(view.(BottomKReader))
	if hv != vv {
		t.Fatalf("hydrated %v != view %v", hv, vv)
	}
	if path, bytes := SummaryRepr(view); path != "view" || bytes != len(data) {
		t.Fatalf("SummaryRepr(view) = %q, %d; want view, %d", path, bytes, len(data))
	}
	if path, bytes := SummaryRepr(b); path != "hydrated" || bytes != 0 {
		t.Fatalf("SummaryRepr(hydrated) = %q, %d", path, bytes)
	}
}

// TestBottomKDistinctMonteCarlo pins the k-dependent bound the query
// surface reports: across independent randomizations, the distinct
// estimator's empirical CV must respect CV ≤ 1/√(k−2), and the reported
// 95% interval must cover the true count at least ~95% of the time.
func TestBottomKDistinctMonteCarlo(t *testing.T) {
	const (
		n      = 400
		k      = 50
		trials = 400
	)
	in := mcInstance(n)
	bound := 1 / math.Sqrt(float64(k-2))
	for _, fam := range []sampling.RankFamily{sampling.EXP{}, sampling.PPS{}} {
		var sum, sumSq float64
		covered := 0
		for trial := 0; trial < trials; trial++ {
			s := NewSummarizer(0x9e3779b9<<8 + uint64(trial))
			b := s.SummarizeBottomK(0, in, k, fam)
			est := BottomKDistinct(b)
			sum += est
			sumSq += est * est
			stderr, ok := BottomKDistinctStdErr(b, est)
			if !ok {
				t.Fatalf("%s trial %d: no stderr for k=%d", fam.Name(), trial, k)
			}
			if math.Abs(est-n) <= CI95Z*stderr {
				covered++
			}
		}
		mean := sum / trials
		cv := math.Sqrt(sumSq/trials-mean*mean) / mean
		if relErr := math.Abs(mean-n) / n; relErr > 0.05 {
			t.Errorf("%s: mean estimate %v is %.1f%% off the true count %d",
				fam.Name(), mean, 100*relErr, n)
		}
		// The proven bound plus Monte Carlo slack for trials=400.
		if cv > bound*1.15 {
			t.Errorf("%s: empirical CV %.4f exceeds bound 1/sqrt(k-2) = %.4f",
				fam.Name(), cv, bound)
		}
		if coverage := float64(covered) / trials; coverage < 0.90 {
			t.Errorf("%s: ci95 covered the truth in only %.1f%% of trials",
				fam.Name(), 100*coverage)
		}
	}
}

// TestPPSSumStdErrMonteCarlo pins the plug-in HT variance estimate for
// the PPS subset sum: the reported stderr must track the empirical
// spread, and the 95% interval must cover the true total.
func TestPPSSumStdErrMonteCarlo(t *testing.T) {
	const (
		n      = 300
		trials = 400
	)
	in := mcInstance(n)
	truth := 0.0
	for i := 1; i <= n; i++ {
		truth += in[dataset.Key(i)]
	}
	var sum, sumSq, stderrSum float64
	covered := 0
	for trial := 0; trial < trials; trial++ {
		s := NewSummarizer(0xabcdef<<8 + uint64(trial))
		p := s.SummarizePPS(0, in, sampling.TauForExpectedSize(in, 60))
		est := p.SubsetSum(nil)
		stderr, ok := SumStdErr(p, est)
		if !ok {
			t.Fatalf("trial %d: no stderr for pps sum", trial)
		}
		sum += est
		sumSq += est * est
		stderrSum += stderr
		if math.Abs(est-truth) <= CI95Z*stderr {
			covered++
		}
	}
	mean := sum / trials
	empSD := math.Sqrt(sumSq/trials - mean*mean)
	meanStderr := stderrSum / trials
	if relErr := math.Abs(mean-truth) / truth; relErr > 0.05 {
		t.Errorf("mean estimate %v is %.1f%% off the true sum %v", mean, 100*relErr, truth)
	}
	// The plug-in estimate should agree with the empirical SD within
	// Monte Carlo slack — not be off by a model error.
	if meanStderr < empSD*0.7 || meanStderr > empSD*1.4 {
		t.Errorf("mean reported stderr %v vs empirical SD %v", meanStderr, empSD)
	}
	if coverage := float64(covered) / trials; coverage < 0.90 {
		t.Errorf("ci95 covered the truth in only %.1f%% of trials", 100*coverage)
	}
}

func TestSumStdErrPerKind(t *testing.T) {
	in := mcInstance(200)
	s := NewSummarizer(21)

	set := s.SummarizeSet(0, map[dataset.Key]bool{1: true, 2: true, 3: true, 4: true}, 0.5)
	stderr, ok := SumStdErr(set, float64(set.Size())/0.5)
	want := math.Sqrt(float64(set.Size())*0.5) / 0.5
	if !ok || stderr != want {
		t.Errorf("set stderr = %v ok=%v, want %v", stderr, ok, want)
	}
	full := s.SummarizeSet(1, map[dataset.Key]bool{1: true, 2: true}, 1)
	if stderr, ok := SumStdErr(full, 2); !ok || stderr != 0 {
		t.Errorf("p=1 set stderr = %v ok=%v, want exact 0", stderr, ok)
	}

	b := s.SummarizeBottomK(0, in, 30, sampling.EXP{})
	est := b.SubsetSum(nil)
	stderr, ok = SumStdErr(b, est)
	if !ok || stderr != est/math.Sqrt(28) {
		t.Errorf("bottomk stderr = %v ok=%v, want %v", stderr, ok, est/math.Sqrt(28))
	}
	tiny := s.SummarizeBottomK(1, in, 2, sampling.EXP{})
	if _, ok := SumStdErr(tiny, tiny.SubsetSum(nil)); ok {
		t.Error("k=2 bottomk reported a bound; CV bound needs k > 2")
	}

	vo := s.SummarizeVarOpt(0, in, 25)
	if stderr, ok := SumStdErr(vo, vo.SubsetSum(nil)); !ok || stderr != 0 {
		t.Errorf("varopt stderr = %v ok=%v, want exact 0", stderr, ok)
	}
}

func TestDistinctHTStdErr(t *testing.T) {
	s := NewSummarizer(5)
	members := map[dataset.Key]bool{}
	for i := 1; i <= 100; i++ {
		members[dataset.Key(i)] = true
	}
	a := s.SummarizeSet(0, members, 0.5)
	b := s.SummarizeSet(1, members, 0.5)
	stderr, ok := DistinctHTStdErr([]SetReader{a, b}, 80)
	if !ok {
		t.Fatal("no bound for valid set pair")
	}
	if want := math.Sqrt(80 * (1/0.25 - 1)); stderr != want {
		t.Errorf("stderr = %v, want %v", stderr, want)
	}
	if _, ok := DistinctHTStdErr(nil, 1); ok {
		t.Error("empty reader list reported a bound")
	}
	fullA := s.SummarizeSet(2, members, 1)
	fullB := s.SummarizeSet(3, members, 1)
	if stderr, ok := DistinctHTStdErr([]SetReader{fullA, fullB}, 100); !ok || stderr != 0 {
		t.Errorf("p=1 distinct stderr = %v ok=%v, want exact 0", stderr, ok)
	}
}
