package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// FuzzDecodeSummaryV2 attacks the binary decoder: hostile headers,
// truncated entry streams, flipped flag bits, oversized varint counts.
// Three properties:
//
//  1. No panics — every input returns a summary or an error.
//  2. No over-allocation — a payload claiming billions of entries fails
//     after the bytes actually present, bounded by v2MaxPrealloc.
//  3. Self-consistency — whatever decodes re-encodes canonically and
//     decodes again to the same summary and the same query bits.
func FuzzDecodeSummaryV2(f *testing.F) {
	// Seeds: one valid payload per kind, then targeted corruptions.
	s := NewSummarizer(99)
	in := dataset.Instance{}
	for i := 1; i <= 64; i++ {
		in[dataset.Key(i*7919)] = float64(i)
	}
	members := map[dataset.Key]bool{}
	for h := range in {
		members[h] = true
	}
	for _, sum := range []Summary{
		s.SummarizePPS(0, in, 8),
		s.SummarizeSet(1, members, 0.5),
		s.SummarizeBottomK(2, in, 16, sampling.PPS{}),
		s.SummarizeBottomK(3, in, 16, sampling.EXP{}),
	} {
		data, err := EncodeSummary(sum, 2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2]) // truncated mid-entry
		f.Add(append(data, 0x00)) // trailing byte
		corrupted := bytes.Clone(data)
		corrupted[4] = 0xFF // undefined flag bits
		f.Add(corrupted)
	}
	f.Add([]byte{})
	f.Add([]byte{v2Magic0})
	f.Add([]byte{v2Magic0, v2Magic1})
	f.Add([]byte{v2Magic0, v2Magic1, 0x07, 0x01, 0x00}) // future version
	f.Add([]byte{v2Magic0, v2Magic1, 0x02, 0x09, 0x00}) // unknown kind
	f.Add([]byte{0x00, 0x53, 0x02, 0x01, 0x00})         // bad magic
	// Oversized varint count: a valid pps header followed by a 2^63 claim.
	hostile := []byte{v2Magic0, v2Magic1, 0x02, v2KindPPS, 0x00}
	hostile = binary.LittleEndian.AppendUint64(hostile, 42)                    // salt
	hostile = append(hostile, 0x00)                                            // instance 0
	hostile = binary.LittleEndian.AppendUint64(hostile, math.Float64bits(2.5)) // tau
	hostile = binary.AppendUvarint(hostile, 1<<63)                             // entry count
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		sum, err := DecodeSummary(data) // must never panic, never OOM
		if err != nil {
			return
		}
		if _, ok := SniffWireVersion(data); !ok {
			t.Fatal("decoded summary from bytes with no sniffable version")
		}
		// Whatever decodes must re-encode canonically and round-trip.
		out, err := EncodeSummary(sum, 2)
		if err != nil {
			t.Fatalf("re-encode of decoded summary: %v", err)
		}
		sum2, err := DecodeSummary(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if sum2.Kind() != sum.Kind() || sum2.InstanceID() != sum.InstanceID() || sum2.Size() != sum.Size() {
			t.Fatal("re-decoded summary differs")
		}
		if SummarySeeder(sum2) != SummarySeeder(sum) {
			t.Fatal("re-decoded seeder differs")
		}
		// The decoded summary must be usable, not just inspectable, and
		// usable identically on both sides of the round trip.
		var bits, bits2 float64
		switch v := sum.(type) {
		case *PPSSummary:
			bits, bits2 = v.SubsetSum(nil), sum2.(*PPSSummary).SubsetSum(nil)
		case *BottomKSummary:
			bits, bits2 = v.SubsetSum(nil), sum2.(*BottomKSummary).SubsetSum(nil)
		case *SetSummary:
			bits, bits2 = float64(v.Len())/v.P, float64(sum2.(*SetSummary).Len())/sum2.(*SetSummary).P
		}
		if math.Float64bits(bits) != math.Float64bits(bits2) {
			t.Fatalf("query bits changed across the round trip: %v vs %v", bits, bits2)
		}
	})
}
