package core

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simdata"
)

// TestPPSSummaryRoundTrip: a decoded summary combines with a live one and
// produces identical estimates.
func TestPPSSummaryRoundTrip(t *testing.T) {
	m := simdata.Generate(simdata.ScaledTraffic(100))
	s := NewSummarizer(42)
	sum1 := s.SummarizePPSExpectedSize(0, m.Instances[0], 50)
	sum2 := s.SummarizePPSExpectedSize(1, m.Instances[1], 50)
	want, err := MaxDominance(sum1, sum2, nil)
	if err != nil {
		t.Fatal(err)
	}
	data1, err := json.Marshal(sum1)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(sum2)
	if err != nil {
		t.Fatal(err)
	}
	dec1, err := DecodePPSSummary(data1)
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := DecodePPSSummary(data2)
	if err != nil {
		t.Fatal(err)
	}
	if dec1.Len() != sum1.Len() || dec1.Tau != sum1.Tau || dec1.Instance != 0 {
		t.Fatalf("decoded summary mismatch: len %d vs %d", dec1.Len(), sum1.Len())
	}
	got, err := MaxDominance(dec1, dec2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Map iteration order varies, so the per-key sums may differ in float
	// rounding; the estimates themselves must agree.
	if math.Abs(got.HT-want.HT) > 1e-9*want.HT || math.Abs(got.L-want.L) > 1e-9*want.L {
		t.Errorf("decoded estimates (%v, %v) differ from live (%v, %v)", got.HT, got.L, want.HT, want.L)
	}
	// Subset sums survive too.
	if a, b := dec1.SubsetSum(nil), sum1.SubsetSum(nil); math.Abs(a-b) > 1e-9 {
		t.Errorf("subset sum changed across round trip: %v vs %v", a, b)
	}
}

func TestSetSummaryRoundTrip(t *testing.T) {
	logs := simdata.RequestLog(2000, 2, 0.2, 9)
	s := NewSummarizer(7)
	s1 := s.SummarizeSet(0, logs[0], 0.3)
	s2 := s.SummarizeSet(1, logs[1], 0.3)
	want, err := DistinctCount(s1, s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := DecodeSetSummary(d1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DecodeSetSummary(d2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DistinctCount(r1, r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.HT != want.HT || got.L != want.L || got.Counts != want.Counts {
		t.Errorf("decoded distinct estimate differs: %+v vs %+v", got, want)
	}
}

// TestDecodeRejectsGarbage covers the validation paths.
func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"version":1,"kind":"set","tau":2}`,  // wrong kind for PPS
		`{"version":2,"kind":"pps","tau":2}`,  // bad version
		`{"version":1,"kind":"pps","tau":-1}`, // bad tau
	}
	for _, c := range cases {
		if _, err := DecodePPSSummary([]byte(c)); err == nil {
			t.Errorf("DecodePPSSummary accepted %q", c)
		}
	}
	setCases := []string{
		`{`,
		`{"version":1,"kind":"pps","p":0.5}`, // wrong kind
		`{"version":9,"kind":"set","p":0.5}`, // bad version
		`{"version":1,"kind":"set","p":0}`,   // bad p
		`{"version":1,"kind":"set","p":2}`,   // bad p
	}
	for _, c := range setCases {
		if _, err := DecodeSetSummary([]byte(c)); err == nil {
			t.Errorf("DecodeSetSummary accepted %q", c)
		}
	}
}

// TestCrossSaltDecodedSummariesRejected: summaries serialized under
// different salts must not silently combine.
func TestCrossSaltDecodedSummariesRejected(t *testing.T) {
	in := dataset.FigureFive().Instances[0]
	a, _ := json.Marshal(NewSummarizer(1).SummarizePPS(0, in, 10))
	b, _ := json.Marshal(NewSummarizer(2).SummarizePPS(1, in, 10))
	da, err := DecodePPSSummary(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodePPSSummary(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MaxDominance(da, db, nil); err == nil {
		t.Error("cross-salt summaries combined without error")
	}
	if Combinable(da, db) {
		t.Error("Combinable true for different salts")
	}
	da2, _ := DecodePPSSummary(a)
	if !Combinable(da, da2) {
		t.Error("Combinable false for same salt")
	}
}

// TestEmptySummaryRoundTrip: an empty sample survives serialization.
func TestEmptySummaryRoundTrip(t *testing.T) {
	s := NewSummarizer(3)
	empty := s.SummarizePPS(0, dataset.Instance{}, 10)
	data, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePPSSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 0 {
		t.Errorf("decoded empty summary has %d keys", dec.Len())
	}
	if got := dec.SubsetSum(nil); got != 0 {
		t.Errorf("empty subset sum %v", got)
	}
}
