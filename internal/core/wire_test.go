package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
)

// TestDecodeUnknownVersion: every decoder rejects a future wire version
// with the typed ErrUnknownVersion, the hook version negotiation hangs on.
func TestDecodeUnknownVersion(t *testing.T) {
	cases := map[string]func([]byte) error{
		"pps":     func(b []byte) error { _, err := DecodePPSSummary(b); return err },
		"set":     func(b []byte) error { _, err := DecodeSetSummary(b); return err },
		"bottomk": func(b []byte) error { _, err := DecodeBottomKSummary(b); return err },
	}
	for kind, decode := range cases {
		body := fmt.Sprintf(`{"version":9,"kind":%q,"instance":0,"salt":1,"tau":2,"p":0.5,"k":3,"family":"pps"}`, kind)
		err := decode([]byte(body))
		if err == nil {
			t.Fatalf("%s: decoding version 9 succeeded", kind)
		}
		if !errors.Is(err, ErrUnknownVersion) {
			t.Errorf("%s: error %v is not ErrUnknownVersion", kind, err)
		}
		// The generic dispatcher must surface the same typed error.
		if _, err := DecodeSummary([]byte(body)); !errors.Is(err, ErrUnknownVersion) {
			t.Errorf("%s: DecodeSummary error %v is not ErrUnknownVersion", kind, err)
		}
	}
	// Current-version summaries must not trip the check.
	s := NewSummarizer(7)
	data, err := json.Marshal(s.SummarizeSet(0, map[dataset.Key]bool{1: true}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSetSummary(data); err != nil {
		t.Errorf("decoding current version: %v", err)
	}
}

// TestDecodeSummaryDispatch: the kind-sniffing decoder returns the right
// concrete type for each wire kind and rejects unknown kinds.
func TestDecodeSummaryDispatch(t *testing.T) {
	m := simdata.Generate(simdata.ScaledTraffic(100))
	s := NewSummarizer(42)
	sums := []Summary{
		s.SummarizePPSExpectedSize(0, m.Instances[0], 50),
		s.SummarizeSet(1, map[dataset.Key]bool{1: true, 2: true}, 0.5),
		s.SummarizeBottomK(2, m.Instances[1], 30, sampling.PPS{}),
	}
	for _, want := range sums {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSummary(data)
		if err != nil {
			t.Fatalf("%s: %v", want.Kind(), err)
		}
		if got.Kind() != want.Kind() || got.InstanceID() != want.InstanceID() || got.Size() != want.Size() {
			t.Errorf("dispatch mismatch: got (%s, %d, %d), want (%s, %d, %d)",
				got.Kind(), got.InstanceID(), got.Size(), want.Kind(), want.InstanceID(), want.Size())
		}
		if SummarySeeder(got) != SummarySeeder(want) {
			t.Errorf("%s: seeder not preserved", want.Kind())
		}
	}
	if _, err := DecodeSummary([]byte(`{"version":1,"kind":"zipf"}`)); err == nil {
		t.Error("unknown kind decoded successfully")
	}
	if _, err := DecodeSummary([]byte(`{"version":1}`)); err == nil {
		t.Error("missing kind decoded successfully")
	}
}

// TestBottomKSummaryRoundTrip: the bottom-k wire format preserves the
// sample, threshold (including the unbounded case), rank family, and
// subset-sum estimates exactly.
func TestBottomKSummaryRoundTrip(t *testing.T) {
	m := simdata.Generate(simdata.ScaledTraffic(100))
	s := NewSummarizer(42)
	for _, fam := range []sampling.RankFamily{sampling.PPS{}, sampling.EXP{}} {
		sum := s.SummarizeBottomK(0, m.Instances[0], 40, fam)
		data, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeBottomKSummary(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec.Sample.Values, sum.Sample.Values) {
			t.Errorf("%s: values not preserved", fam.Name())
		}
		if dec.Sample.Tau != sum.Sample.Tau {
			t.Errorf("%s: tau %v != %v", fam.Name(), dec.Sample.Tau, sum.Sample.Tau)
		}
		if dec.SubsetSum(nil) != sum.SubsetSum(nil) {
			t.Errorf("%s: subset sum drifted through the wire", fam.Name())
		}
	}
	// Unbounded threshold: fewer keys than k.
	tiny := dataset.Instance{1: 5, 2: 3}
	sum := s.SummarizeBottomK(0, tiny, 10, sampling.PPS{})
	if !math.IsInf(sum.Sample.Tau, 1) {
		t.Fatalf("expected unbounded threshold, got %v", sum.Sample.Tau)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBottomKSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dec.Sample.Tau, 1) {
		t.Errorf("unbounded threshold decoded as %v", dec.Sample.Tau)
	}
	if !reflect.DeepEqual(dec.Sample.Values, sum.Sample.Values) {
		t.Error("unbounded sample values not preserved")
	}
}

// TestSetStreamMatchesBatch: streaming set summarization is bit-identical
// to the batch path — membership is a pure function of the seed.
func TestSetStreamMatchesBatch(t *testing.T) {
	s := NewSummarizer(9)
	members := map[dataset.Key]bool{}
	for i := 1; i <= 500; i++ {
		members[dataset.Key(i*7)] = true
	}
	want := s.SummarizeSet(3, members, 0.4)
	st := s.StreamSet(3, 0.4)
	for h := range members {
		st.Push(h)
	}
	got := st.Close()
	if !reflect.DeepEqual(got.Members, want.Members) || got.P != want.P || got.Instance != want.Instance {
		t.Errorf("stream summary differs from batch: %d vs %d members", got.Len(), want.Len())
	}
}
