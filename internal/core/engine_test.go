package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/randx"
	"repro/internal/sampling"
)

func engineTestInstance(n int) dataset.Instance {
	rng := randx.New(63)
	in := make(dataset.Instance, n)
	for k := dataset.Key(1); k <= dataset.Key(n); k++ {
		in[k] = math.Floor(1 + rng.Pareto(1, 1.3))
	}
	return in
}

// TestSummarizeWithConfigsAgree: the engine-routed entry points produce the
// same summary for every execution strategy, and match the legacy batch
// samplers.
func TestSummarizeWithConfigsAgree(t *testing.T) {
	in := engineTestInstance(600)
	s := NewSummarizer(404)
	cfgs := []engine.Config{{}, {Parallel: true, Shards: 3, BatchSize: 50}, {Parallel: true}}

	wantPPS := sampling.PoissonPPS(in, 40, s.seedFunc(0))
	wantBK := sampling.BottomK(in, 30, sampling.EXP{}, s.seedFunc(1))
	for _, cfg := range cfgs {
		pps := s.SummarizePPSWith(cfg, 0, in, 40)
		if len(pps.Sample.Values) != len(wantPPS.Values) {
			t.Fatalf("cfg %+v: PPS size %d, want %d", cfg, len(pps.Sample.Values), len(wantPPS.Values))
		}
		for h, v := range wantPPS.Values {
			if pps.Sample.Values[h] != v {
				t.Fatalf("cfg %+v: PPS key %d mismatch", cfg, h)
			}
		}
		bk := s.SummarizeBottomKWith(cfg, 1, in, 30, sampling.EXP{})
		if bk.Sample.Tau != wantBK.Tau {
			t.Fatalf("cfg %+v: bottom-k tau %v, want %v", cfg, bk.Sample.Tau, wantBK.Tau)
		}
		for h, v := range wantBK.Values {
			if bk.Sample.Values[h] != v {
				t.Fatalf("cfg %+v: bottom-k key %d mismatch", cfg, h)
			}
		}
	}
}

// TestStreamSummarizersMatchBatch: the incremental front-door streams end
// at the same summaries as the one-shot entry points.
func TestStreamSummarizersMatchBatch(t *testing.T) {
	in := engineTestInstance(400)
	s := NewSummarizer(77)
	cfg := engine.Config{Parallel: true, Shards: 4, BatchSize: 32}

	want := s.SummarizeBottomK(2, in, 25, sampling.PPS{})
	st := s.StreamBottomK(cfg, 2, 25, sampling.PPS{})
	for h, v := range in {
		st.Push(h, v)
	}
	got := st.Close()
	if got.Sample.Tau != want.Sample.Tau || len(got.Sample.Values) != len(want.Sample.Values) {
		t.Fatalf("bottom-k stream: tau %v size %d, want tau %v size %d",
			got.Sample.Tau, len(got.Sample.Values), want.Sample.Tau, len(want.Sample.Values))
	}

	wantPPS := s.SummarizePPS(3, in, 35)
	ps := s.StreamPPS(cfg, 3, 35)
	for h, v := range in {
		ps.Push(h, v)
	}
	gotPPS := ps.Close()
	if gotPPS.Tau != wantPPS.Tau || len(gotPPS.Sample.Values) != len(wantPPS.Sample.Values) {
		t.Fatalf("pps stream: size %d, want %d", len(gotPPS.Sample.Values), len(wantPPS.Sample.Values))
	}
	// Stream-built summaries stay combinable with one-shot ones.
	if _, err := MaxDominance(wantPPS, gotPPS, nil); err == nil {
		t.Error("same-instance summaries must be rejected")
	}
	other := s.SummarizePPS(4, in, 35)
	if _, err := MaxDominance(gotPPS, other, nil); err != nil {
		t.Errorf("stream-built summary not combinable: %v", err)
	}
}

// sameSummarySample asserts bit-equality of two summaries' samples.
func sameSummarySample(t *testing.T, label string, got, want *sampling.WeightedSample) {
	t.Helper()
	if got.Tau != want.Tau && !(math.IsInf(got.Tau, 1) && math.IsInf(want.Tau, 1)) {
		t.Fatalf("%s: tau %v, want %v", label, got.Tau, want.Tau)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: size %d, want %d", label, len(got.Values), len(want.Values))
	}
	for h, v := range want.Values {
		if got.Values[h] != v {
			t.Fatalf("%s: key %d = %v, want %v", label, h, got.Values[h], v)
		}
	}
}

// TestSummarizeMultiMatchesPerInstance: the one-pass multi-instance entry
// points equal the per-instance passes bit for bit, for both independent
// (NewSummarizer) and coordinated (NewCoordinatedSummarizer) seeds, and a
// mid-stream Snapshot equals the prefix summaries.
func TestSummarizeMultiMatchesPerInstance(t *testing.T) {
	rng := randx.New(31)
	ins := make([]dataset.Instance, 3)
	ids := []int{2, 5, 9}
	for i := range ins {
		ins[i] = make(dataset.Instance, 300)
		for j := 0; j < 300; j++ {
			ins[i][dataset.Key(rng.Intn(700)+1)] = math.Floor(1 + rng.Pareto(1, 1.3))
		}
	}
	taus := []float64{20, 45, 90}
	cfg := engine.Config{Parallel: true, Shards: 4, BatchSize: 16, Async: true, QueueDepth: 2}
	for name, s := range map[string]*Summarizer{
		"independent": NewSummarizer(8080),
		"coordinated": NewCoordinatedSummarizer(8080),
	} {
		multiPPS := s.SummarizeMultiPPSWith(cfg, ids, ins, taus)
		multiBK := s.SummarizeMultiBottomKWith(cfg, ids, ins, 25, sampling.PPS{})
		for i, id := range ids {
			wantPPS := s.SummarizePPS(id, ins[i], taus[i])
			wantBK := s.SummarizeBottomK(id, ins[i], 25, sampling.PPS{})
			if multiPPS[i].Instance != id || multiBK[i].Instance != id {
				t.Fatalf("%s: instance IDs %d/%d, want %d", name, multiPPS[i].Instance, multiBK[i].Instance, id)
			}
			if multiPPS[i].Tau != taus[i] {
				t.Fatalf("%s: tau %v, want %v", name, multiPPS[i].Tau, taus[i])
			}
			sameSummarySample(t, name+"/pps", multiPPS[i].Sample, wantPPS.Sample)
			sameSummarySample(t, name+"/bottomk", multiBK[i].Sample, wantBK.Sample)
		}
	}

	// Mid-stream snapshot ≡ prefix, and multi-built summaries answer
	// queries exactly like per-instance ones.
	s := NewSummarizer(8080)
	st := s.StreamMultiPPS(cfg, ids[:2], taus[:2])
	prefix := []*PPSSummary{s.SummarizePPS(ids[0], ins[0], taus[0]), nil}
	for h, v := range ins[0] {
		st.Push(0, h, v)
	}
	snap := st.Snapshot()
	sameSummarySample(t, "multi snapshot prefix", snap[0].Sample, prefix[0].Sample)
	if snap[1].Len() != 0 {
		t.Fatalf("instance with no arrivals holds %d keys", snap[1].Len())
	}
	for h, v := range ins[1] {
		st.Push(1, h, v)
	}
	final := st.Close()
	wantDom, err := MaxDominance(s.SummarizePPS(ids[0], ins[0], taus[0]), s.SummarizePPS(ids[1], ins[1], taus[1]), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotDom, err := MaxDominance(final[0], final[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotDom != wantDom {
		t.Fatalf("maxdominance over multi-built summaries = %+v, want %+v", gotDom, wantDom)
	}
}

// TestSummarizePPSDegenerateTau: non-positive thresholds keep their
// historical batch semantics instead of panicking in the stream sampler —
// tau = 0 samples every positive key exactly, tau < 0 samples none.
func TestSummarizePPSDegenerateTau(t *testing.T) {
	in := engineTestInstance(50)
	s := NewSummarizer(5)
	zero := s.SummarizePPS(0, in, 0)
	if zero.Len() != len(in) {
		t.Errorf("tau=0: sampled %d of %d keys, want all", zero.Len(), len(in))
	}
	neg := s.SummarizePPS(0, in, -3)
	if neg.Len() != 0 {
		t.Errorf("tau<0: sampled %d keys, want none", neg.Len())
	}
}

// TestSummarizeMultiPPSDegenerateTau: the one-pass entry point honors the
// degenerate batch thresholds (tau = 0 keeps every positive key, tau < 0
// none) exactly like r per-instance SummarizePPSWith calls — their
// presence drops the call to the batch path instead of panicking in the
// streaming sampler.
func TestSummarizeMultiPPSDegenerateTau(t *testing.T) {
	s := NewSummarizer(17)
	ins := []dataset.Instance{engineTestInstance(300), engineTestInstance(300), engineTestInstance(300)}
	taus := []float64{0, 25, -1}
	got := s.SummarizeMultiPPSWith(engine.Config{}, []int{0, 1, 2}, ins, taus)
	for i, in := range ins {
		want := s.SummarizePPSWith(engine.Config{}, i, in, taus[i])
		if got[i].Tau != want.Tau || got[i].Len() != want.Len() {
			t.Fatalf("instance %d (tau %v): (tau %v, %d keys) != (tau %v, %d keys)",
				i, taus[i], got[i].Tau, got[i].Len(), want.Tau, want.Len())
		}
		for h, v := range want.Sample.Values {
			if got[i].Sample.Values[h] != v {
				t.Fatalf("instance %d key %d: %v != %v", i, h, got[i].Sample.Values[h], v)
			}
		}
	}
	if got[0].Len() != len(ins[0]) {
		t.Fatalf("tau 0 kept %d of %d keys, want all", got[0].Len(), len(ins[0]))
	}
	if got[2].Len() != 0 {
		t.Fatalf("tau < 0 kept %d keys, want none", got[2].Len())
	}
	// The streaming entry point has no batch fallback: it must refuse
	// degenerate thresholds loudly rather than mis-sample.
	defer func() {
		if recover() == nil {
			t.Fatal("StreamMultiPPS accepted a non-positive threshold")
		}
	}()
	s.StreamMultiPPS(engine.Config{}, []int{0}, []float64{0})
}
