package core

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dataset"
)

// Fuzz targets for the summary wire format. Two properties:
//
//  1. Round trip: decode(encode(s)) reproduces s exactly — keys, values,
//     threshold, salt, sharing mode.
//  2. Robustness: decoding arbitrary (corrupted) bytes returns an error
//     instead of panicking, and anything that does decode re-encodes to a
//     summary that decodes identically (the format is self-consistent).
//
// `go test` runs these over the seed corpus; `go test -fuzz=FuzzX` explores.

// buildPPS constructs a PPS summary deterministically from fuzz inputs:
// every byte of blob becomes one sampled (key, value) pair.
func buildPPS(salt uint64, shared bool, instance int, tau float64, blob []byte) *PPSSummary {
	var s *Summarizer
	if shared {
		s = NewCoordinatedSummarizer(salt)
	} else {
		s = NewSummarizer(salt)
	}
	in := make(dataset.Instance, len(blob))
	for i, b := range blob {
		in[dataset.Key(uint64(i)<<8|uint64(b))] = 1 + float64(b)
	}
	return s.SummarizePPS(instance, in, tau)
}

func FuzzPPSSummaryRoundTrip(f *testing.F) {
	f.Add(uint64(1), false, 0, 10.0, []byte{1, 2, 3})
	f.Add(uint64(42), true, 3, 0.5, []byte{})
	f.Add(uint64(7), false, 100, 1e6, []byte{255, 0, 128, 7})
	f.Fuzz(func(t *testing.T, salt uint64, shared bool, instance int, tau float64, blob []byte) {
		if !(tau > 0) || math.IsInf(tau, 1) || len(blob) > 1024 {
			t.Skip()
		}
		orig := buildPPS(salt, shared, instance, tau, blob)
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodePPSSummary(data)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if got.Instance != orig.Instance || got.Tau != orig.Tau {
			t.Fatalf("instance/tau mismatch: %+v vs %+v", got, orig)
		}
		if got.parent.seeder != orig.parent.seeder {
			t.Fatalf("seeder mismatch: %+v vs %+v", got.parent.seeder, orig.parent.seeder)
		}
		if len(got.Sample.Values) != len(orig.Sample.Values) {
			t.Fatalf("sample size %d vs %d", len(got.Sample.Values), len(orig.Sample.Values))
		}
		for h, v := range orig.Sample.Values {
			gv, ok := got.Sample.Values[h]
			if !ok || gv != v {
				t.Fatalf("key %d: %v vs %v (ok=%v)", h, gv, v, ok)
			}
		}
	})
}

func FuzzDecodePPSSummary(f *testing.F) {
	valid, _ := json.Marshal(buildPPS(3, false, 1, 25, []byte{9, 9, 4}))
	f.Add(valid)
	f.Add([]byte(`{"version":1,"kind":"pps","tau":-1}`))
	f.Add([]byte(`{"version":99,"kind":"pps","tau":1}`))
	f.Add([]byte(`{"kind":"set"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"kind":"pps","tau":1,"values":{"1":"NaN"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodePPSSummary(data) // must never panic
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same summary.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encode of decoded summary: %v", err)
		}
		s2, err := DecodePPSSummary(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if s2.Instance != s.Instance || s2.Tau != s.Tau || s2.parent.seeder != s.parent.seeder {
			t.Fatal("re-decoded summary differs")
		}
		if len(s2.Sample.Values) != len(s.Sample.Values) {
			t.Fatal("re-decoded sample size differs")
		}
		// The decoded summary must be usable, not just inspectable.
		_ = s2.SubsetSum(nil)
	})
}

func FuzzSetSummaryRoundTrip(f *testing.F) {
	f.Add(uint64(1), false, 0, 0.5, []byte{1, 2, 3})
	f.Add(uint64(11), true, 2, 1.0, []byte{0})
	f.Fuzz(func(t *testing.T, salt uint64, shared bool, instance int, p float64, blob []byte) {
		if !(p > 0 && p <= 1) || len(blob) > 1024 {
			t.Skip()
		}
		var s *Summarizer
		if shared {
			s = NewCoordinatedSummarizer(salt)
		} else {
			s = NewSummarizer(salt)
		}
		members := make(map[dataset.Key]bool, len(blob))
		for i, b := range blob {
			members[dataset.Key(uint64(i)<<8|uint64(b))] = true
		}
		orig := s.SummarizeSet(instance, members, p)
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeSetSummary(data)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if got.Instance != orig.Instance || got.P != orig.P || got.parent.seeder != orig.parent.seeder {
			t.Fatal("metadata mismatch")
		}
		if len(got.Members) != len(orig.Members) {
			t.Fatalf("member count %d vs %d", len(got.Members), len(orig.Members))
		}
		for h := range orig.Members {
			if !got.Members[h] {
				t.Fatalf("member %d lost", h)
			}
		}
	})
}

func FuzzDecodeSetSummary(f *testing.F) {
	f.Add([]byte(`{"version":1,"kind":"set","p":0.5,"members":[1,2]}`))
	f.Add([]byte(`{"version":1,"kind":"set","p":2}`))
	f.Add([]byte(`{"version":1,"kind":"pps","p":0.5}`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0xff, 0xfe})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSetSummary(data) // must never panic
		if err != nil {
			return
		}
		if !(s.P > 0 && s.P <= 1) {
			t.Fatalf("decoded invalid P %v", s.P)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := DecodeSetSummary(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if s2.P != s.P || s2.Instance != s.Instance || len(s2.Members) != len(s.Members) {
			t.Fatal("re-decoded summary differs")
		}
	})
}
