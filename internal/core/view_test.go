package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
)

// viewFixtures builds one summary of every kind the v2 wire speaks,
// including the VarOpt reservoir and edge shapes (empty, unbounded
// bottom-k threshold, never-overflowed VarOpt).
func viewFixtures(s *Summarizer) []Summary {
	m := simdata.Generate(simdata.ScaledTraffic(150))
	members := make(map[dataset.Key]bool, len(m.Instances[0]))
	for h := range m.Instances[0] {
		members[h] = true
	}
	return []Summary{
		s.SummarizePPSExpectedSize(0, m.Instances[0], 60),
		s.SummarizeSet(1, members, 0.4),
		s.SummarizeBottomK(2, m.Instances[1], 40, sampling.PPS{}),
		s.SummarizeBottomK(3, m.Instances[1], 40, sampling.EXP{}),
		s.SummarizeBottomK(4, dataset.Instance{7: 5, 9: 3}, 10, sampling.PPS{}),
		s.SummarizeVarOpt(5, m.Instances[0], 48),
		s.SummarizeVarOpt(6, dataset.Instance{3: 2.5, 8: 1.5}, 10), // never overflowed: tau = 0
		s.SummarizePPSExpectedSize(7, dataset.Instance{}, 10),      // empty
	}
}

// mustView encodes s to v2 bytes and parses them back as a zero-copy view.
func mustView(t *testing.T, s Summary) (Summary, []byte) {
	t.Helper()
	data, err := EncodeSummary(s, 2)
	if err != nil {
		t.Fatalf("EncodeSummary(%s, 2): %v", s.Kind(), err)
	}
	v, err := ParseSummaryView(data)
	if err != nil {
		t.Fatalf("ParseSummaryView(%s): %v", s.Kind(), err)
	}
	return v, data
}

// TestViewRoundTripRawBytes: re-encoding a view to v2 is a raw copy — the
// output bytes equal the input bytes exactly, for every kind.
func TestViewRoundTripRawBytes(t *testing.T) {
	for _, s := range viewFixtures(NewSummarizer(0xFEED)) {
		v, data := mustView(t, s)
		out, err := EncodeSummary(v, 2)
		if err != nil {
			t.Fatalf("re-encode view %s: %v", s.Kind(), err)
		}
		if !bytes.Equal(out, data) {
			t.Errorf("kind %s: view re-encode differs from original wire bytes", s.Kind())
		}
		// The JSON path materializes; decoding it must reproduce the summary.
		js, err := EncodeSummary(v, 1)
		if err != nil {
			t.Fatalf("JSON-encode view %s: %v", s.Kind(), err)
		}
		back, err := DecodeSummary(js)
		if err != nil {
			t.Fatalf("decode JSON of view %s: %v", s.Kind(), err)
		}
		if back.Kind() != s.Kind() || back.Size() != s.Size() || back.InstanceID() != s.InstanceID() {
			t.Errorf("kind %s: JSON round trip via view lost identity", s.Kind())
		}
	}
}

// TestViewSummaryMetadata: views report the same kind, size, instance, and
// seeder as the summary they encode.
func TestViewSummaryMetadata(t *testing.T) {
	for _, mk := range []func(uint64) *Summarizer{NewSummarizer, NewCoordinatedSummarizer} {
		for _, s := range viewFixtures(mk(0xABCD)) {
			v, _ := mustView(t, s)
			if v.Kind() != s.Kind() || v.Size() != s.Size() || v.InstanceID() != s.InstanceID() {
				t.Errorf("view of %s: metadata mismatch (kind %s size %d instance %d)",
					s.Kind(), v.Kind(), v.Size(), v.InstanceID())
			}
			if v.seederOf() != s.seederOf() {
				t.Errorf("view of %s: seeder mismatch", s.Kind())
			}
		}
	}
}

// TestViewSubsetSumBitIdentical: every per-summary estimate a view can
// answer matches the hydrated decode of the same bytes bit for bit — with
// nil selectors and with a proper subset selector.
func TestViewSubsetSumBitIdentical(t *testing.T) {
	sel := func(h dataset.Key) bool { return h%3 != 0 }
	for _, s := range viewFixtures(NewSummarizer(0x5EED)) {
		v, data := mustView(t, s)
		dec, err := DecodeSummary(data)
		if err != nil {
			t.Fatalf("DecodeSummary(%s): %v", s.Kind(), err)
		}
		type subsetSummer interface {
			SubsetSum(func(dataset.Key) bool) float64
		}
		vs, ok1 := v.(subsetSummer)
		ds, ok2 := dec.(subsetSummer)
		if ok1 != ok2 {
			t.Fatalf("kind %s: view and decode disagree on SubsetSum support", s.Kind())
		}
		if !ok1 {
			continue
		}
		for name, f := range map[string]func(dataset.Key) bool{"all": nil, "subset": sel} {
			got, want := vs.SubsetSum(f), ds.SubsetSum(f)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("kind %s, sel %s: view SubsetSum %v != hydrated %v", s.Kind(), name, got, want)
			}
		}
	}
}

// TestViewLookupMatchesHydrated: binary-search lookups over wire entries
// agree with map lookups for present and absent keys.
func TestViewLookupMatchesHydrated(t *testing.T) {
	s := NewSummarizer(0xD0)
	m := simdata.Generate(simdata.ScaledTraffic(150))
	pps := s.SummarizePPSExpectedSize(0, m.Instances[0], 60)
	pv, _ := mustView(t, pps)
	pr := pv.(PPSReader)
	if pr.PPSTau() != pps.Tau {
		t.Fatalf("view tau %v != %v", pr.PPSTau(), pps.Tau)
	}
	probe := append(pps.AppendKeys(nil), 0, 1, math.MaxUint64/2, math.MaxUint64)
	for _, h := range probe {
		gv, gok := pr.Lookup(h)
		wv, wok := pps.Lookup(h)
		if gok != wok || gv != wv {
			t.Errorf("key %d: view Lookup (%v,%v) != hydrated (%v,%v)", h, gv, gok, wv, wok)
		}
	}

	members := make(map[dataset.Key]bool, len(m.Instances[1]))
	for h := range m.Instances[1] {
		members[h] = true
	}
	set := s.SummarizeSet(1, members, 0.3)
	sv, _ := mustView(t, set)
	sr := sv.(SetReader)
	probe = append(set.AppendKeys(nil), 0, 42, math.MaxUint64)
	for _, h := range probe {
		if sr.Contains(h) != set.Contains(h) {
			t.Errorf("key %d: view Contains %v != hydrated %v", h, sr.Contains(h), set.Contains(h))
		}
	}
	if sr.SetP() != set.P {
		t.Errorf("view p %v != %v", sr.SetP(), set.P)
	}
}

// TestViewQueriesBitIdentical: the multi-summary queries answer with
// bit-identical floats whether the inputs are hydrated summaries, views,
// or a mix of both.
func TestViewQueriesBitIdentical(t *testing.T) {
	s := NewSummarizer(0xBEEF)
	m := simdata.Generate(simdata.ScaledTraffic(200))
	// A third instance (the generator produces two): shifted, rescaled keys.
	inst3 := make(dataset.Instance, len(m.Instances[0]))
	for h, v := range m.Instances[0] {
		inst3[h+1] = v * 1.5
	}
	instances := []dataset.Instance{m.Instances[0], m.Instances[1], inst3}

	// Max-dominance over two PPS summaries.
	p1 := s.SummarizePPSExpectedSize(0, m.Instances[0], 70)
	p2 := s.SummarizePPSExpectedSize(1, m.Instances[1], 70)
	v1, _ := mustView(t, p1)
	v2, _ := mustView(t, p2)
	want, err := MaxDominance(p1, p2, nil)
	if err != nil {
		t.Fatalf("MaxDominance hydrated: %v", err)
	}
	for name, pair := range map[string][2]PPSReader{
		"views": {v1.(PPSReader), v2.(PPSReader)},
		"mixed": {p1, v2.(PPSReader)},
	} {
		got, err := MaxDominanceReaders(pair[0], pair[1], nil)
		if err != nil {
			t.Fatalf("MaxDominanceReaders %s: %v", name, err)
		}
		if math.Float64bits(got.HT) != math.Float64bits(want.HT) ||
			math.Float64bits(got.L) != math.Float64bits(want.L) {
			t.Errorf("%s: dominance (HT %v, L %v) != hydrated (HT %v, L %v)",
				name, got.HT, got.L, want.HT, want.L)
		}
	}

	// Quantile over three PPS summaries.
	p3 := s.SummarizePPSExpectedSize(2, inst3, 70)
	v3, _ := mustView(t, p3)
	var anyKey dataset.Key
	for _, h := range p1.AppendKeys(nil) {
		anyKey = h
		break
	}
	wantQ, err := QuantilePPS([]*PPSSummary{p1, p2, p3}, anyKey, 2)
	if err != nil {
		t.Fatalf("QuantilePPS hydrated: %v", err)
	}
	gotQ, err := QuantilePPSReaders([]PPSReader{v1.(PPSReader), v2.(PPSReader), v3.(PPSReader)}, anyKey, 2)
	if err != nil {
		t.Fatalf("QuantilePPSReaders views: %v", err)
	}
	if math.Float64bits(gotQ.HT) != math.Float64bits(wantQ.HT) || gotQ.Sampled != wantQ.Sampled {
		t.Errorf("quantile via views (%v, %d) != hydrated (%v, %d)", gotQ.HT, gotQ.Sampled, wantQ.HT, wantQ.Sampled)
	}

	// Distinct count over three set summaries (uniform p).
	var sets []*SetSummary
	var readers []SetReader
	for i := 0; i < 3; i++ {
		members := make(map[dataset.Key]bool, len(instances[i]))
		for h := range instances[i] {
			members[h] = true
		}
		set := s.SummarizeSet(10+i, members, 0.35)
		sets = append(sets, set)
		sv, _ := mustView(t, set)
		readers = append(readers, sv.(SetReader))
	}
	wantD, err := DistinctCountMulti(sets, nil)
	if err != nil {
		t.Fatalf("DistinctCountMulti hydrated: %v", err)
	}
	gotD, err := DistinctCountMultiReaders(readers, nil)
	if err != nil {
		t.Fatalf("DistinctCountMultiReaders views: %v", err)
	}
	if math.Float64bits(gotD.HT) != math.Float64bits(wantD.HT) ||
		math.Float64bits(gotD.L) != math.Float64bits(wantD.L) ||
		gotD.KeysUsed != wantD.KeysUsed {
		t.Errorf("distinct via views (%v, %v, %d) != hydrated (%v, %v, %d)",
			gotD.HT, gotD.L, gotD.KeysUsed, wantD.HT, wantD.L, wantD.KeysUsed)
	}
}

// TestParseSummaryViewRejectsNonCanonical: every deviation from the
// canonical encoding fails the strict parse — and, where the payload is
// still structurally decodable, the lenient decoder remains the fallback
// arbiter.
func TestParseSummaryViewRejectsNonCanonical(t *testing.T) {
	s := NewSummarizer(0xC0DE)
	good, err := EncodeSummary(s.SummarizePPSExpectedSize(0, dataset.Instance{5: 2, 9: 4, 12: 1}, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSummaryView(good); err != nil {
		t.Fatalf("canonical bytes rejected: %v", err)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-5],
		"trailing":  append(append([]byte(nil), good...), 0x00),
		"bad magic": mutate(func(b []byte) []byte { b[0] = 0x7B; return b }),
		"future version": mutate(func(b []byte) []byte {
			b[2] = 9
			return b
		}),
		"unknown kind": mutate(func(b []byte) []byte { b[3] = 200; return b }),
		"bad flags":    mutate(func(b []byte) []byte { b[4] = 0x80; return b }),
		"negative tau": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[14:], math.Float64bits(-1))
			return b
		}),
	}
	// Swap the first two entries: keys no longer ascending. Layout:
	// 5 header + 8 salt + 1 instance varint (0) + 8 tau + 1 count = 23.
	cases["descending keys"] = mutate(func(b []byte) []byte {
		e := b[23:]
		var tmp [16]byte
		copy(tmp[:], e[:16])
		copy(e[:16], e[16:32])
		copy(e[16:32], tmp[:])
		return b
	})
	// Non-minimal entry count: rewrite uvarint 3 as the two-byte 0x83 0x00.
	cases["non-minimal uvarint"] = mutate(func(b []byte) []byte {
		out := append([]byte(nil), b[:22]...)
		out = append(out, 0x83, 0x00)
		return append(out, b[23:]...)
	})
	for name, data := range cases {
		if _, err := ParseSummaryView(data); err == nil {
			t.Errorf("%s: ParseSummaryView succeeded", name)
		}
	}

	// The non-canonical-but-valid payloads still hydrate via the lenient
	// decoder — the strict parse narrows acceptance, never the protocol.
	for _, name := range []string{"descending keys", "non-minimal uvarint"} {
		if _, err := DecodeSummary(cases[name]); err != nil {
			t.Errorf("%s: lenient DecodeSummary failed: %v", name, err)
		}
	}
}

// TestParseSummaryViewVarOptThreshold: the varopt parameter validation
// matches the hydrating decoder (0 valid, negative/NaN/+Inf rejected).
func TestParseSummaryViewVarOptThreshold(t *testing.T) {
	s := NewSummarizer(7)
	good, err := EncodeSummary(s.SummarizeVarOpt(0, dataset.Instance{1: 1, 2: 2}, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseSummaryView(good)
	if err != nil {
		t.Fatalf("varopt view: %v", err)
	}
	if got := v.(VarOptReader).VarOptTau(); got != 0 {
		t.Fatalf("never-overflowed reservoir: tau %v, want 0", got)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(b[14:], math.Float64bits(bad))
		if _, err := ParseSummaryView(b); err == nil {
			t.Errorf("varopt threshold %v accepted", bad)
		}
	}
}
