package core

import (
	"fmt"
	"testing"
)

// Codec benchmarks over the shared 1M-entry bottom-k summary (64-bit
// mixed keys, full-precision weights — the regime the wire travels in
// production). CI runs these at -benchtime 1x into BENCH_wire.json; run
// locally with:
//
//	go test -run '^$' -bench 'EncodeSummary|DecodeSummary' ./internal/core
//
// The wire-bytes metric is the payload size, the headline v1-vs-v2
// comparison; ns/op contrasts text marshaling against the fixed-width
// layout.

func BenchmarkEncodeSummary(b *testing.B) {
	sum := millionEntryBottomK(b)
	for _, version := range []int{1, 2} {
		b.Run(fmt.Sprintf("v%d/entries=1M", version), func(b *testing.B) {
			var encoded int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := EncodeSummary(sum, version)
				if err != nil {
					b.Fatal(err)
				}
				encoded = len(data)
			}
			b.ReportMetric(float64(encoded), "wire-bytes")
			b.ReportMetric(float64(encoded)/float64(sum.Len()), "bytes/entry")
		})
	}
}

func BenchmarkDecodeSummary(b *testing.B) {
	sum := millionEntryBottomK(b)
	for _, version := range []int{1, 2} {
		data, err := EncodeSummary(sum, version)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("v%d/entries=1M", version), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := DecodeSummary(data)
				if err != nil {
					b.Fatal(err)
				}
				if dec.Size() != sum.Len() {
					b.Fatalf("decoded %d entries, want %d", dec.Size(), sum.Len())
				}
			}
			b.ReportMetric(float64(len(data)), "wire-bytes")
		})
	}
}
