package core

import (
	"math"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/randx"
	"repro/internal/sampling"
)

// threeSets builds three overlapping member sets over a shared universe.
func threeSets(n int) []map[dataset.Key]bool {
	rng := randx.New(5)
	sets := make([]map[dataset.Key]bool, 3)
	for i := range sets {
		sets[i] = make(map[dataset.Key]bool)
	}
	for k := 1; k <= n; k++ {
		h := dataset.Key(k)
		placed := false
		for i := range sets {
			if rng.Float64() < 0.6 {
				sets[i][h] = true
				placed = true
			}
		}
		if !placed {
			sets[rng.Intn(3)][h] = true
		}
	}
	return sets
}

// TestDistinctCountMultiMatchesAggregate: the summary-level r = 3 distinct
// count must agree with aggregate.MultiDistinct run on the full sets —
// the summaries carry all the information the estimator consumes.
func TestDistinctCountMultiMatchesAggregate(t *testing.T) {
	const p = 0.3
	sets := threeSets(2000)
	s := NewSummarizer(2011)
	sums := make([]*SetSummary, 3)
	for i, set := range sets {
		sums[i] = s.SummarizeSet(i, set, p)
	}
	got, err := DistinctCountMulti(sums, nil)
	if err != nil {
		t.Fatal(err)
	}
	md, err := aggregate.NewMultiDistinct(3, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := md.Estimate(sets, s.Seeder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.HT-want.HT) > 1e-9*(1+want.HT) {
		t.Errorf("HT = %v, aggregate says %v", got.HT, want.HT)
	}
	if math.Abs(got.L-want.L) > 1e-9*(1+want.L) {
		t.Errorf("L = %v, aggregate says %v", got.L, want.L)
	}
	if got.KeysUsed != want.Sampled {
		t.Errorf("KeysUsed = %d, aggregate sampled %d", got.KeysUsed, want.Sampled)
	}
}

// TestDistinctCountMultiPairDelegation: r = 2 must reproduce the §8.1 pair
// estimator exactly, including differing sampling probabilities.
func TestDistinctCountMultiPairDelegation(t *testing.T) {
	sets := threeSets(1000)
	s := NewSummarizer(17)
	s1 := s.SummarizeSet(0, sets[0], 0.25)
	s2 := s.SummarizeSet(1, sets[1], 0.4)
	want, err := DistinctCount(s1, s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DistinctCountMulti([]*SetSummary{s1, s2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.HT != want.HT || got.L != want.L {
		t.Errorf("pair delegation drifted: (%v, %v) vs (%v, %v)", got.HT, got.L, want.HT, want.L)
	}
}

// TestDistinctCountMultiRejects: incompatible summary combinations fail
// loudly.
func TestDistinctCountMultiRejects(t *testing.T) {
	sets := threeSets(100)
	s := NewSummarizer(1)
	other := NewSummarizer(2)
	a := s.SummarizeSet(0, sets[0], 0.5)
	b := s.SummarizeSet(1, sets[1], 0.5)
	c := s.SummarizeSet(2, sets[2], 0.25)

	if _, err := DistinctCountMulti([]*SetSummary{a}, nil); err == nil {
		t.Error("single summary accepted")
	}
	if _, err := DistinctCountMulti([]*SetSummary{a, other.SummarizeSet(1, sets[1], 0.5)}, nil); err == nil {
		t.Error("mixed randomizations accepted")
	}
	if _, err := DistinctCountMulti([]*SetSummary{a, s.SummarizeSet(0, sets[1], 0.5)}, nil); err == nil {
		t.Error("duplicate instance accepted")
	}
	if _, err := DistinctCountMulti([]*SetSummary{a, b, c}, nil); err == nil {
		t.Error("non-uniform p accepted for r = 3")
	}
	// Coordinated (shared-seed) summaries: the estimators assume
	// independent per-instance seeds, so these must be rejected, not
	// silently mis-estimated.
	coord := NewCoordinatedSummarizer(1)
	ca := coord.SummarizeSet(0, sets[0], 0.5)
	cb := coord.SummarizeSet(1, sets[1], 0.5)
	if _, err := DistinctCountMulti([]*SetSummary{ca, cb}, nil); err == nil {
		t.Error("coordinated summaries accepted by DistinctCountMulti")
	}
	in := dataset.Instance{1: 5, 2: 3}
	qa := coord.SummarizePPS(0, in, 4)
	qb := coord.SummarizePPS(1, in, 4)
	if _, err := QuantilePPS([]*PPSSummary{qa, qb}, 1, 1); err == nil {
		t.Error("coordinated summaries accepted by QuantilePPS")
	}
}

// TestQuantilePPS: the query helper must evaluate LthHTPPS on exactly the
// outcome the summaries encode.
func TestQuantilePPS(t *testing.T) {
	in := []dataset.Instance{
		{1: 50, 2: 3, 3: 7},
		{1: 40, 2: 9},
		{1: 60, 3: 2},
	}
	s := NewSummarizer(123)
	taus := []float64{20, 25, 30}
	sums := make([]*PPSSummary, 3)
	for i := range in {
		sums[i] = s.SummarizePPS(i, in[i], taus[i])
	}
	for _, h := range []dataset.Key{1, 2, 3} {
		for l := 1; l <= 3; l++ {
			got, err := QuantilePPS(sums, h, l)
			if err != nil {
				t.Fatal(err)
			}
			o := estimator.PPSOutcome{
				Tau:     taus,
				U:       make([]float64, 3),
				Sampled: make([]bool, 3),
				Values:  make([]float64, 3),
			}
			for i := range sums {
				o.U[i] = s.Seeder().Seed(i, uint64(h))
				if v, ok := sums[i].Sample.Values[h]; ok {
					o.Sampled[i], o.Values[i] = true, v
				}
			}
			if want := estimator.LthHTPPS(o, l); got.HT != want {
				t.Errorf("key %d, l=%d: HT = %v, want %v", h, l, got.HT, want)
			}
		}
	}
	// Key 1 is far above every threshold: sampled everywhere, so the
	// median is determined and the estimate equals it exactly.
	got, err := QuantilePPS(sums, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled != 3 || got.HT != 50 {
		t.Errorf("hot key: HT = %v (sampled %d), want 50 (sampled 3)", got.HT, got.Sampled)
	}
	if _, err := QuantilePPS(sums, 1, 4); err == nil {
		t.Error("out-of-range quantile index accepted")
	}
	if _, err := QuantilePPS(sums[:1], 1, 1); err == nil {
		t.Error("single summary accepted")
	}
}

// TestQueryDeterminism: repeated queries over the same summaries must be
// bit-identical — the reproducibility contract the summary server
// advertises.
func TestQueryDeterminism(t *testing.T) {
	sets := threeSets(3000)
	s := NewSummarizer(31)
	sums := make([]*SetSummary, 3)
	ws := make([]*PPSSummary, 2)
	for i, set := range sets {
		sums[i] = s.SummarizeSet(i, set, 0.3)
	}
	for i := 0; i < 2; i++ {
		in := make(dataset.Instance, len(sets[i]))
		rng := randx.New(uint64(i))
		for h := range sets[i] {
			in[h] = math.Floor(1 + 30*rng.Float64())
		}
		ws[i] = s.SummarizePPS(i, in, sampling.TauForExpectedSize(in, 200))
	}
	d1, err := DistinctCountMulti(sums, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := MaxDominance(ws[0], ws[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d2, _ := DistinctCountMulti(sums, nil)
		m2, _ := MaxDominance(ws[0], ws[1], nil)
		if d2 != d1 || m2 != m1 {
			t.Fatalf("query results drifted between runs: %+v vs %+v, %+v vs %+v", d2, d1, m2, m1)
		}
	}
}
