package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Summaries are what a dispersed system actually ships: a sample plus the
// metadata needed to recompute inclusion probabilities and seeds. This
// file holds the v1 JSON wire format (the codec registered as version 1 in
// codec.go) and the historical Encode*/Decode* entry points, which are now
// thin wrappers over the codec registry: they accept any registered format
// by sniffing, so a caller holding v1 JSON or v2 binary bytes decodes
// through the same functions.

// WireVersion is the version of the JSON wire format this file implements.
// Binary formats carry their own version in the header (codecv2.go);
// SupportedWireVersions lists everything this build speaks.
const WireVersion = 1

// ErrUnknownVersion reports a summary whose wire-format version this
// build does not speak. Callers negotiating formats (the summary server
// accepting posts, pkg/client choosing what to send) detect it with
// errors.Is and reply with an upgrade hint — the server maps it to HTTP
// 415 listing SupportedWireVersions — instead of a generic decode failure.
var ErrUnknownVersion = errors.New("core: unknown summary wire-format version")

// checkVersion validates a decoded JSON version number against WireVersion.
func checkVersion(kind string, version int) error {
	if version != WireVersion {
		return fmt.Errorf("core: %s summary version %d (supported: %v): %w",
			kind, version, SupportedWireVersions(), ErrUnknownVersion)
	}
	return nil
}

// ppsWire is the serialized form of a PPSSummary.
type ppsWire struct {
	Version  int                     `json:"version"`
	Kind     string                  `json:"kind"`
	Instance int                     `json:"instance"`
	Tau      float64                 `json:"tau"`
	Salt     uint64                  `json:"salt"`
	Shared   bool                    `json:"shared"`
	Values   map[dataset.Key]float64 `json:"values"`
}

// setWire is the serialized form of a SetSummary.
type setWire struct {
	Version  int           `json:"version"`
	Kind     string        `json:"kind"`
	Instance int           `json:"instance"`
	P        float64       `json:"p"`
	Salt     uint64        `json:"salt"`
	Shared   bool          `json:"shared"`
	Members  []dataset.Key `json:"members"`
}

// MarshalJSON encodes the summary together with its randomization salt, so
// the receiver can recompute every seed. This is the v1 codec's encoder.
func (p *PPSSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(ppsWire{
		Version:  WireVersion,
		Kind:     "pps",
		Instance: p.Instance,
		Tau:      p.Tau,
		Salt:     p.parent.seeder.Salt,
		Shared:   p.parent.seeder.Shared,
		Values:   p.Sample.Values,
	})
}

// decodePPSWire reconstructs a PPSSummary from its parsed v1 wire form.
func decodePPSWire(w ppsWire) (*PPSSummary, error) {
	if err := checkVersion("pps", w.Version); err != nil {
		return nil, err
	}
	if w.Tau <= 0 {
		return nil, fmt.Errorf("core: invalid tau %v", w.Tau)
	}
	parent := &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}}
	vals := w.Values
	if vals == nil {
		vals = map[dataset.Key]float64{}
	}
	return &PPSSummary{
		Instance: w.Instance,
		Tau:      w.Tau,
		Sample:   &sampling.WeightedSample{Values: vals, Tau: 1 / w.Tau, Family: sampling.PPS{}},
		parent:   parent,
	}, nil
}

// MarshalJSON encodes the set summary with its randomization salt.
// Members are sorted ascending: the codec contract promises deterministic
// bytes, and a slice drawn from map iteration would break it (encoding/
// json sorts map keys for the other kinds, but Members is an array).
func (s *SetSummary) MarshalJSON() ([]byte, error) {
	members := sortedKeys(s.Members)
	return json.Marshal(setWire{
		Version:  WireVersion,
		Kind:     "set",
		Instance: s.Instance,
		P:        s.P,
		Salt:     s.parent.seeder.Salt,
		Shared:   s.parent.seeder.Shared,
		Members:  members,
	})
}

// decodeSetWire reconstructs a SetSummary from its parsed v1 wire form.
func decodeSetWire(w setWire) (*SetSummary, error) {
	if err := checkVersion("set", w.Version); err != nil {
		return nil, err
	}
	if !(w.P > 0 && w.P <= 1) {
		return nil, fmt.Errorf("core: invalid sampling probability %v", w.P)
	}
	out := &SetSummary{
		Instance: w.Instance,
		P:        w.P,
		Members:  make(map[dataset.Key]bool, len(w.Members)),
		parent:   &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}},
	}
	for _, h := range w.Members {
		out.Members[h] = true
	}
	return out, nil
}

// bottomkWire is the serialized form of a BottomKSummary. Tau encodes the
// rank-conditioning threshold; because JSON has no representation for
// +Inf, an absent (zero) tau means "unbounded": every positive key was
// retained.
type bottomkWire struct {
	Version  int                     `json:"version"`
	Kind     string                  `json:"kind"`
	Instance int                     `json:"instance"`
	Family   string                  `json:"family"`
	Tau      float64                 `json:"tau,omitempty"`
	Salt     uint64                  `json:"salt"`
	Shared   bool                    `json:"shared"`
	Values   map[dataset.Key]float64 `json:"values"`
}

// MarshalJSON encodes the bottom-k summary with its randomization salt and
// rank family, so the receiver can recompute every rank-conditioning
// inclusion probability.
func (b *BottomKSummary) MarshalJSON() ([]byte, error) {
	tau := b.Sample.Tau
	if math.IsInf(tau, 1) {
		tau = 0
	}
	return json.Marshal(bottomkWire{
		Version:  WireVersion,
		Kind:     "bottomk",
		Instance: b.Instance,
		Family:   b.Sample.Family.Name(),
		Tau:      tau,
		Salt:     b.parent.seeder.Salt,
		Shared:   b.parent.seeder.Shared,
		Values:   b.Sample.Values,
	})
}

// decodeBottomKWire reconstructs a BottomKSummary from its parsed v1 wire
// form.
func decodeBottomKWire(w bottomkWire) (*BottomKSummary, error) {
	if err := checkVersion("bottomk", w.Version); err != nil {
		return nil, err
	}
	var fam sampling.RankFamily
	switch w.Family {
	case sampling.PPS{}.Name():
		fam = sampling.PPS{}
	case sampling.EXP{}.Name():
		fam = sampling.EXP{}
	default:
		return nil, fmt.Errorf("core: unknown rank family %q", w.Family)
	}
	tau := w.Tau
	switch {
	case tau == 0:
		tau = math.Inf(1)
	case tau < 0:
		return nil, fmt.Errorf("core: invalid rank threshold %v", tau)
	}
	vals := w.Values
	if vals == nil {
		vals = map[dataset.Key]float64{}
	}
	return &BottomKSummary{
		Instance: w.Instance,
		Sample:   &sampling.WeightedSample{Values: vals, Tau: tau, Family: fam},
		parent:   &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}},
	}, nil
}

// Summary is any decoded or freshly drawn summary the wire formats can
// carry. The interface is satisfied only by this package's summary types:
// combinability checks need access to the underlying seeder.
type Summary interface {
	// InstanceID returns the instance index the summary was drawn for.
	InstanceID() int
	// Kind returns the wire-format kind tag ("pps", "set", "bottomk",
	// "varopt").
	Kind() string
	// Size returns the number of retained keys.
	Size() int

	seederOf() xhash.Seeder
}

// InstanceID implements Summary.
func (p *PPSSummary) InstanceID() int { return p.Instance }

// InstanceID implements Summary.
func (s *SetSummary) InstanceID() int { return s.Instance }

// InstanceID implements Summary.
func (b *BottomKSummary) InstanceID() int { return b.Instance }

// Kind implements Summary.
func (p *PPSSummary) Kind() string { return "pps" }

// Kind implements Summary.
func (s *SetSummary) Kind() string { return "set" }

// Kind implements Summary.
func (b *BottomKSummary) Kind() string { return "bottomk" }

// Size implements Summary.
func (p *PPSSummary) Size() int { return p.Len() }

// Size implements Summary.
func (s *SetSummary) Size() int { return s.Len() }

// Size implements Summary.
func (b *BottomKSummary) Size() int { return b.Len() }

// Seeder returns the randomization a summary was drawn under.
func SummarySeeder(s Summary) xhash.Seeder { return s.seederOf() }

// DecodeSummary reconstructs a summary of any kind from its wire form —
// the v2 binary layout (recognized by its magic bytes) or v1 JSON
// (dispatching on the "kind" tag). It is the trust-boundary entry point
// for callers holding a complete message; services reading from a stream
// use DecodeSummaryFrom. A v2 message with trailing bytes is rejected,
// matching encoding/json's whole-document discipline.
func DecodeSummary(data []byte) (Summary, error) {
	if len(data) >= 2 && data[0] == v2Magic0 && data[1] == v2Magic1 {
		br := bufio.NewReader(bytes.NewReader(data))
		s, err := decodeSummaryV2(br)
		if err != nil {
			return nil, err
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("core: decoding v2 summary: trailing data after entries")
		}
		return s, nil
	}
	return decodeSummaryJSON(data)
}

// decodeSummaryJSON is the v1 decoder: kind-tag dispatch over the JSON
// wire structs.
func decodeSummaryJSON(data []byte) (Summary, error) {
	var head struct {
		Version int    `json:"version"`
		Kind    string `json:"kind"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("core: decoding summary: %w", err)
	}
	switch head.Kind {
	case "pps":
		var w ppsWire
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, fmt.Errorf("core: decoding PPS summary: %w", err)
		}
		return decodePPSWire(w)
	case "set":
		var w setWire
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, fmt.Errorf("core: decoding set summary: %w", err)
		}
		return decodeSetWire(w)
	case "bottomk":
		var w bottomkWire
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, fmt.Errorf("core: decoding bottom-k summary: %w", err)
		}
		return decodeBottomKWire(w)
	case "varopt":
		var w varoptWire
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, fmt.Errorf("core: decoding varopt summary: %w", err)
		}
		return decodeVarOptWire(w)
	default:
		// An unrecognized (or missing) kind on an unrecognized version is
		// a future format: surface the typed version error so callers can
		// negotiate down instead of reporting a malformed summary.
		if err := checkVersion("summary", head.Version); err != nil {
			return nil, err
		}
		if head.Kind == "" {
			return nil, fmt.Errorf("core: summary has no kind tag")
		}
		return nil, fmt.Errorf("core: unknown summary kind %q", head.Kind)
	}
}

// decodeAs narrows DecodeSummary to one concrete summary type, naming the
// expected kind in the error. It accepts any registered wire format.
func decodeAs[T Summary](data []byte, kind string) (T, error) {
	var zero T
	s, err := DecodeSummary(data)
	if err != nil {
		return zero, err
	}
	t, ok := s.(T)
	if !ok {
		return zero, fmt.Errorf("core: expected kind %q, got %q", kind, s.Kind())
	}
	return t, nil
}

// DecodePPSSummary reconstructs a PPSSummary from its wire form (v1 JSON
// or v2 binary). Summaries decoded from the same salt are combinable
// exactly like freshly drawn ones.
func DecodePPSSummary(data []byte) (*PPSSummary, error) {
	return decodeAs[*PPSSummary](data, "pps")
}

// DecodeSetSummary reconstructs a SetSummary from its wire form (v1 JSON
// or v2 binary).
func DecodeSetSummary(data []byte) (*SetSummary, error) {
	return decodeAs[*SetSummary](data, "set")
}

// DecodeBottomKSummary reconstructs a BottomKSummary from its wire form
// (v1 JSON or v2 binary).
func DecodeBottomKSummary(data []byte) (*BottomKSummary, error) {
	return decodeAs[*BottomKSummary](data, "bottomk")
}

// Combinable reports whether two decoded or freshly drawn summaries share
// the same randomization and can be queried together. Decoded summaries
// have distinct parent pointers, so this checks the seeder itself.
func Combinable(a, b interface{ seederOf() xhash.Seeder }) bool {
	return a.seederOf() == b.seederOf()
}

func (p *PPSSummary) seederOf() xhash.Seeder     { return p.parent.seeder }
func (s *SetSummary) seederOf() xhash.Seeder     { return s.parent.seeder }
func (b *BottomKSummary) seederOf() xhash.Seeder { return b.parent.seeder }
