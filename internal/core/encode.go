package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Summaries are what a dispersed system actually ships: a sample plus the
// metadata needed to recompute inclusion probabilities and seeds. This
// file provides a stable JSON wire format so summaries can be transmitted
// or archived and recombined later ("post hoc" estimation, §1).

// WireVersion is the current wire-format version emitted by the encoders.
const WireVersion = 1

// ErrUnknownVersion reports a summary whose wire-format version this
// build does not speak. Callers negotiating formats (e.g. a server that
// will eventually accept a binary v2 alongside JSON v1) can detect it
// with errors.Is and reply with an upgrade hint instead of a generic
// decode failure.
var ErrUnknownVersion = errors.New("core: unknown summary wire-format version")

// checkVersion validates a decoded version number against WireVersion.
func checkVersion(kind string, version int) error {
	if version != WireVersion {
		return fmt.Errorf("core: %s summary version %d (supported: %d): %w",
			kind, version, WireVersion, ErrUnknownVersion)
	}
	return nil
}

// ppsWire is the serialized form of a PPSSummary.
type ppsWire struct {
	Version  int                     `json:"version"`
	Kind     string                  `json:"kind"`
	Instance int                     `json:"instance"`
	Tau      float64                 `json:"tau"`
	Salt     uint64                  `json:"salt"`
	Shared   bool                    `json:"shared"`
	Values   map[dataset.Key]float64 `json:"values"`
}

// setWire is the serialized form of a SetSummary.
type setWire struct {
	Version  int           `json:"version"`
	Kind     string        `json:"kind"`
	Instance int           `json:"instance"`
	P        float64       `json:"p"`
	Salt     uint64        `json:"salt"`
	Shared   bool          `json:"shared"`
	Members  []dataset.Key `json:"members"`
}

// MarshalJSON encodes the summary together with its randomization salt, so
// the receiver can recompute every seed.
func (p *PPSSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(ppsWire{
		Version:  WireVersion,
		Kind:     "pps",
		Instance: p.Instance,
		Tau:      p.Tau,
		Salt:     p.parent.seeder.Salt,
		Shared:   p.parent.seeder.Shared,
		Values:   p.Sample.Values,
	})
}

// DecodePPSSummary reconstructs a PPSSummary from its wire form. Summaries
// decoded from the same salt are combinable exactly like freshly drawn
// ones.
func DecodePPSSummary(data []byte) (*PPSSummary, error) {
	var w ppsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decoding PPS summary: %w", err)
	}
	if w.Kind != "pps" {
		return nil, fmt.Errorf("core: expected kind %q, got %q", "pps", w.Kind)
	}
	if err := checkVersion("pps", w.Version); err != nil {
		return nil, err
	}
	if w.Tau <= 0 {
		return nil, fmt.Errorf("core: invalid tau %v", w.Tau)
	}
	parent := &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}}
	vals := w.Values
	if vals == nil {
		vals = map[dataset.Key]float64{}
	}
	return &PPSSummary{
		Instance: w.Instance,
		Tau:      w.Tau,
		Sample:   &sampling.WeightedSample{Values: vals, Tau: 1 / w.Tau, Family: sampling.PPS{}},
		parent:   parent,
	}, nil
}

// MarshalJSON encodes the set summary with its randomization salt.
func (s *SetSummary) MarshalJSON() ([]byte, error) {
	members := make([]dataset.Key, 0, len(s.Members))
	for h := range s.Members {
		members = append(members, h)
	}
	return json.Marshal(setWire{
		Version:  WireVersion,
		Kind:     "set",
		Instance: s.Instance,
		P:        s.P,
		Salt:     s.parent.seeder.Salt,
		Shared:   s.parent.seeder.Shared,
		Members:  members,
	})
}

// DecodeSetSummary reconstructs a SetSummary from its wire form.
func DecodeSetSummary(data []byte) (*SetSummary, error) {
	var w setWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decoding set summary: %w", err)
	}
	if w.Kind != "set" {
		return nil, fmt.Errorf("core: expected kind %q, got %q", "set", w.Kind)
	}
	if err := checkVersion("set", w.Version); err != nil {
		return nil, err
	}
	if !(w.P > 0 && w.P <= 1) {
		return nil, fmt.Errorf("core: invalid sampling probability %v", w.P)
	}
	out := &SetSummary{
		Instance: w.Instance,
		P:        w.P,
		Members:  make(map[dataset.Key]bool, len(w.Members)),
		parent:   &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}},
	}
	for _, h := range w.Members {
		out.Members[h] = true
	}
	return out, nil
}

// bottomkWire is the serialized form of a BottomKSummary. Tau encodes the
// rank-conditioning threshold; because JSON has no representation for
// +Inf, an absent (zero) tau means "unbounded": every positive key was
// retained.
type bottomkWire struct {
	Version  int                     `json:"version"`
	Kind     string                  `json:"kind"`
	Instance int                     `json:"instance"`
	Family   string                  `json:"family"`
	Tau      float64                 `json:"tau,omitempty"`
	Salt     uint64                  `json:"salt"`
	Shared   bool                    `json:"shared"`
	Values   map[dataset.Key]float64 `json:"values"`
}

// MarshalJSON encodes the bottom-k summary with its randomization salt and
// rank family, so the receiver can recompute every rank-conditioning
// inclusion probability.
func (b *BottomKSummary) MarshalJSON() ([]byte, error) {
	tau := b.Sample.Tau
	if math.IsInf(tau, 1) {
		tau = 0
	}
	return json.Marshal(bottomkWire{
		Version:  WireVersion,
		Kind:     "bottomk",
		Instance: b.Instance,
		Family:   b.Sample.Family.Name(),
		Tau:      tau,
		Salt:     b.parent.seeder.Salt,
		Shared:   b.parent.seeder.Shared,
		Values:   b.Sample.Values,
	})
}

// DecodeBottomKSummary reconstructs a BottomKSummary from its wire form.
func DecodeBottomKSummary(data []byte) (*BottomKSummary, error) {
	var w bottomkWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decoding bottom-k summary: %w", err)
	}
	if w.Kind != "bottomk" {
		return nil, fmt.Errorf("core: expected kind %q, got %q", "bottomk", w.Kind)
	}
	if err := checkVersion("bottomk", w.Version); err != nil {
		return nil, err
	}
	var fam sampling.RankFamily
	switch w.Family {
	case sampling.PPS{}.Name():
		fam = sampling.PPS{}
	case sampling.EXP{}.Name():
		fam = sampling.EXP{}
	default:
		return nil, fmt.Errorf("core: unknown rank family %q", w.Family)
	}
	tau := w.Tau
	switch {
	case tau == 0:
		tau = math.Inf(1)
	case tau < 0:
		return nil, fmt.Errorf("core: invalid rank threshold %v", tau)
	}
	vals := w.Values
	if vals == nil {
		vals = map[dataset.Key]float64{}
	}
	return &BottomKSummary{
		Instance: w.Instance,
		Sample:   &sampling.WeightedSample{Values: vals, Tau: tau, Family: fam},
		parent:   &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}},
	}, nil
}

// Summary is any decoded or freshly drawn summary the wire format can
// carry. The interface is satisfied only by this package's summary types:
// combinability checks need access to the underlying seeder.
type Summary interface {
	// InstanceID returns the instance index the summary was drawn for.
	InstanceID() int
	// Kind returns the wire-format kind tag ("pps", "set", "bottomk").
	Kind() string
	// Size returns the number of retained keys.
	Size() int

	seederOf() xhash.Seeder
}

// InstanceID implements Summary.
func (p *PPSSummary) InstanceID() int { return p.Instance }

// InstanceID implements Summary.
func (s *SetSummary) InstanceID() int { return s.Instance }

// InstanceID implements Summary.
func (b *BottomKSummary) InstanceID() int { return b.Instance }

// Kind implements Summary.
func (p *PPSSummary) Kind() string { return "pps" }

// Kind implements Summary.
func (s *SetSummary) Kind() string { return "set" }

// Kind implements Summary.
func (b *BottomKSummary) Kind() string { return "bottomk" }

// Size implements Summary.
func (p *PPSSummary) Size() int { return p.Len() }

// Size implements Summary.
func (s *SetSummary) Size() int { return s.Len() }

// Size implements Summary.
func (b *BottomKSummary) Size() int { return b.Len() }

// Seeder returns the randomization a summary was drawn under.
func SummarySeeder(s Summary) xhash.Seeder { return s.seederOf() }

// DecodeSummary reconstructs a summary of any kind from its wire form,
// dispatching on the "kind" tag. It is the trust-boundary entry point for
// services that accept posted summaries without knowing their kind in
// advance.
func DecodeSummary(data []byte) (Summary, error) {
	var head struct {
		Version int    `json:"version"`
		Kind    string `json:"kind"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("core: decoding summary: %w", err)
	}
	switch head.Kind {
	case "pps":
		return DecodePPSSummary(data)
	case "set":
		return DecodeSetSummary(data)
	case "bottomk":
		return DecodeBottomKSummary(data)
	default:
		// An unrecognized (or missing) kind on an unrecognized version is
		// a future format: surface the typed version error so callers can
		// negotiate down instead of reporting a malformed summary.
		if err := checkVersion("summary", head.Version); err != nil {
			return nil, err
		}
		if head.Kind == "" {
			return nil, fmt.Errorf("core: summary has no kind tag")
		}
		return nil, fmt.Errorf("core: unknown summary kind %q", head.Kind)
	}
}

// Combinable reports whether two decoded or freshly drawn summaries share
// the same randomization and can be queried together. Decoded summaries
// have distinct parent pointers, so this checks the seeder itself.
func Combinable(a, b interface{ seederOf() xhash.Seeder }) bool {
	return a.seederOf() == b.seederOf()
}

func (p *PPSSummary) seederOf() xhash.Seeder     { return p.parent.seeder }
func (s *SetSummary) seederOf() xhash.Seeder     { return s.parent.seeder }
func (b *BottomKSummary) seederOf() xhash.Seeder { return b.parent.seeder }
