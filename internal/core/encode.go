package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Summaries are what a dispersed system actually ships: a sample plus the
// metadata needed to recompute inclusion probabilities and seeds. This
// file provides a stable JSON wire format so summaries can be transmitted
// or archived and recombined later ("post hoc" estimation, §1).

// ppsWire is the serialized form of a PPSSummary.
type ppsWire struct {
	Version  int                     `json:"version"`
	Kind     string                  `json:"kind"`
	Instance int                     `json:"instance"`
	Tau      float64                 `json:"tau"`
	Salt     uint64                  `json:"salt"`
	Shared   bool                    `json:"shared"`
	Values   map[dataset.Key]float64 `json:"values"`
}

// setWire is the serialized form of a SetSummary.
type setWire struct {
	Version  int           `json:"version"`
	Kind     string        `json:"kind"`
	Instance int           `json:"instance"`
	P        float64       `json:"p"`
	Salt     uint64        `json:"salt"`
	Shared   bool          `json:"shared"`
	Members  []dataset.Key `json:"members"`
}

// MarshalJSON encodes the summary together with its randomization salt, so
// the receiver can recompute every seed.
func (p *PPSSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(ppsWire{
		Version:  1,
		Kind:     "pps",
		Instance: p.Instance,
		Tau:      p.Tau,
		Salt:     p.parent.seeder.Salt,
		Shared:   p.parent.seeder.Shared,
		Values:   p.Sample.Values,
	})
}

// DecodePPSSummary reconstructs a PPSSummary from its wire form. Summaries
// decoded from the same salt are combinable exactly like freshly drawn
// ones.
func DecodePPSSummary(data []byte) (*PPSSummary, error) {
	var w ppsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decoding PPS summary: %w", err)
	}
	if w.Kind != "pps" {
		return nil, fmt.Errorf("core: expected kind %q, got %q", "pps", w.Kind)
	}
	if w.Version != 1 {
		return nil, fmt.Errorf("core: unsupported PPS summary version %d", w.Version)
	}
	if w.Tau <= 0 {
		return nil, fmt.Errorf("core: invalid tau %v", w.Tau)
	}
	parent := &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}}
	vals := w.Values
	if vals == nil {
		vals = map[dataset.Key]float64{}
	}
	return &PPSSummary{
		Instance: w.Instance,
		Tau:      w.Tau,
		Sample:   &sampling.WeightedSample{Values: vals, Tau: 1 / w.Tau, Family: sampling.PPS{}},
		parent:   parent,
	}, nil
}

// MarshalJSON encodes the set summary with its randomization salt.
func (s *SetSummary) MarshalJSON() ([]byte, error) {
	members := make([]dataset.Key, 0, len(s.Members))
	for h := range s.Members {
		members = append(members, h)
	}
	return json.Marshal(setWire{
		Version:  1,
		Kind:     "set",
		Instance: s.Instance,
		P:        s.P,
		Salt:     s.parent.seeder.Salt,
		Shared:   s.parent.seeder.Shared,
		Members:  members,
	})
}

// DecodeSetSummary reconstructs a SetSummary from its wire form.
func DecodeSetSummary(data []byte) (*SetSummary, error) {
	var w setWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decoding set summary: %w", err)
	}
	if w.Kind != "set" {
		return nil, fmt.Errorf("core: expected kind %q, got %q", "set", w.Kind)
	}
	if w.Version != 1 {
		return nil, fmt.Errorf("core: unsupported set summary version %d", w.Version)
	}
	if !(w.P > 0 && w.P <= 1) {
		return nil, fmt.Errorf("core: invalid sampling probability %v", w.P)
	}
	out := &SetSummary{
		Instance: w.Instance,
		P:        w.P,
		Members:  make(map[dataset.Key]bool, len(w.Members)),
		parent:   &Summarizer{seeder: xhash.Seeder{Salt: w.Salt, Shared: w.Shared}},
	}
	for _, h := range w.Members {
		out.Members[h] = true
	}
	return out, nil
}

// Combinable reports whether two decoded or freshly drawn summaries share
// the same randomization and can be queried together. Decoded summaries
// have distinct parent pointers, so this checks the seeder itself.
func Combinable(a, b interface{ seederOf() xhash.Seeder }) bool {
	return a.seederOf() == b.seederOf()
}

func (p *PPSSummary) seederOf() xhash.Seeder { return p.parent.seeder }
func (s *SetSummary) seederOf() xhash.Seeder { return s.parent.seeder }
