package core

import (
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
)

// This file wires the Summarizer front door through the sharded
// summarization engine. Every Summarize entry point in core.go routes
// through one of the With variants below with the zero (sequential)
// engine.Config; callers with heavy streams pass Config{Parallel: true} to
// fan out across shards. Either way the resulting summary is identical —
// ranks depend only on the hash-derived seeds, not on arrival order or
// shard assignment — so estimator semantics never depend on the execution
// strategy.

// SummarizePPSWith draws the PPS summary of one instance with threshold tau
// through the engine under the given config.
func (s *Summarizer) SummarizePPSWith(cfg engine.Config, instance int, in dataset.Instance, tau float64) *PPSSummary {
	if tau <= 0 {
		// The engine's stream samplers reject non-positive thresholds, but
		// this entry point has always accepted them (tau = 0 samples every
		// positive key, tau < 0 samples none); keep the historical batch
		// semantics for the degenerate cases.
		return &PPSSummary{
			Instance: instance,
			Tau:      tau,
			Sample:   sampling.PoissonPPS(in, tau, s.seedFunc(instance)),
			parent:   s,
		}
	}
	return &PPSSummary{
		Instance: instance,
		Tau:      tau,
		Sample:   engine.SummarizePoissonPPS(in, tau, s.seedFunc(instance), cfg),
		parent:   s,
	}
}

// SummarizePPSExpectedSizeWith draws a PPS summary sized to k expected keys
// through the engine under the given config.
func (s *Summarizer) SummarizePPSExpectedSizeWith(cfg engine.Config, instance int, in dataset.Instance, k float64) *PPSSummary {
	return s.SummarizePPSWith(cfg, instance, in, sampling.TauForExpectedSize(in, k))
}

// SummarizeBottomKWith draws a bottom-k summary through the engine under
// the given config.
func (s *Summarizer) SummarizeBottomKWith(cfg engine.Config, instance int, in dataset.Instance, k int, fam sampling.RankFamily) *BottomKSummary {
	return &BottomKSummary{
		Instance: instance,
		Sample:   engine.SummarizeBottomK(in, k, fam, s.seedFunc(instance), cfg),
		parent:   s,
	}
}

// BottomKStream summarizes one instance incrementally: Push arrivals as
// they happen, Close to obtain the finished BottomKSummary. It is the
// streaming face of SummarizeBottomKWith for callers that never
// materialize the instance.
type BottomKStream struct {
	instance int
	parent   *Summarizer
	e        *engine.BottomK
}

// StreamBottomK opens a bottom-k summarization stream for one instance.
func (s *Summarizer) StreamBottomK(cfg engine.Config, instance int, k int, fam sampling.RankFamily) *BottomKStream {
	return &BottomKStream{
		instance: instance,
		parent:   s,
		e:        engine.NewBottomK(k, fam, s.seedFunc(instance), cfg),
	}
}

// Push offers one (key, value) arrival.
func (b *BottomKStream) Push(h dataset.Key, v float64) { b.e.Push(h, v) }

// Close drains the pipeline and returns the finished summary.
func (b *BottomKStream) Close() *BottomKSummary {
	return &BottomKSummary{Instance: b.instance, Sample: b.e.Close(), parent: b.parent}
}

// PPSStream summarizes one instance incrementally with Poisson PPS
// sampling at a fixed threshold tau.
type PPSStream struct {
	instance int
	tau      float64
	parent   *Summarizer
	e        *engine.PoissonPPS
}

// StreamPPS opens a Poisson PPS summarization stream for one instance.
func (s *Summarizer) StreamPPS(cfg engine.Config, instance int, tau float64) *PPSStream {
	return &PPSStream{
		instance: instance,
		tau:      tau,
		parent:   s,
		e:        engine.NewPoissonPPS(tau, s.seedFunc(instance), cfg),
	}
}

// Push offers one (key, value) arrival.
func (p *PPSStream) Push(h dataset.Key, v float64) { p.e.Push(h, v) }

// Close drains the pipeline and returns the finished summary.
func (p *PPSStream) Close() *PPSSummary {
	return &PPSSummary{Instance: p.instance, Tau: p.tau, Sample: p.e.Close(), parent: p.parent}
}
