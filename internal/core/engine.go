package core

import (
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
)

// This file wires the Summarizer front door through the sharded
// summarization engine. Every Summarize entry point in core.go routes
// through one of the With variants below with the zero (sequential)
// engine.Config; callers with heavy streams pass Config{Parallel: true} to
// fan out across shards. Either way the resulting summary is identical —
// ranks depend only on the hash-derived seeds, not on arrival order or
// shard assignment — so estimator semantics never depend on the execution
// strategy.

// SummarizePPSWith draws the PPS summary of one instance with threshold tau
// through the engine under the given config.
func (s *Summarizer) SummarizePPSWith(cfg engine.Config, instance int, in dataset.Instance, tau float64) *PPSSummary {
	if tau <= 0 {
		// The engine's stream samplers reject non-positive thresholds, but
		// this entry point has always accepted them (tau = 0 samples every
		// positive key, tau < 0 samples none); keep the historical batch
		// semantics for the degenerate cases.
		return &PPSSummary{
			Instance: instance,
			Tau:      tau,
			Sample:   sampling.PoissonPPS(in, tau, s.seedFunc(instance)),
			parent:   s,
		}
	}
	return &PPSSummary{
		Instance: instance,
		Tau:      tau,
		Sample:   engine.SummarizePoissonPPS(in, tau, s.seedFunc(instance), cfg),
		parent:   s,
	}
}

// SummarizePPSExpectedSizeWith draws a PPS summary sized to k expected keys
// through the engine under the given config.
func (s *Summarizer) SummarizePPSExpectedSizeWith(cfg engine.Config, instance int, in dataset.Instance, k float64) *PPSSummary {
	return s.SummarizePPSWith(cfg, instance, in, sampling.TauForExpectedSize(in, k))
}

// SummarizeBottomKWith draws a bottom-k summary through the engine under
// the given config.
func (s *Summarizer) SummarizeBottomKWith(cfg engine.Config, instance int, in dataset.Instance, k int, fam sampling.RankFamily) *BottomKSummary {
	return &BottomKSummary{
		Instance: instance,
		Sample:   engine.SummarizeBottomK(in, k, fam, s.seedFunc(instance), cfg),
		parent:   s,
	}
}

// BottomKStream summarizes one instance incrementally: Push arrivals as
// they happen, Close to obtain the finished BottomKSummary. It is the
// streaming face of SummarizeBottomKWith for callers that never
// materialize the instance.
type BottomKStream struct {
	instance int
	parent   *Summarizer
	e        *engine.BottomK
}

// StreamBottomK opens a bottom-k summarization stream for one instance.
func (s *Summarizer) StreamBottomK(cfg engine.Config, instance int, k int, fam sampling.RankFamily) *BottomKStream {
	return &BottomKStream{
		instance: instance,
		parent:   s,
		e:        engine.NewBottomK(k, fam, s.seedFunc(instance), cfg),
	}
}

// Push offers one (key, value) arrival.
func (b *BottomKStream) Push(h dataset.Key, v float64) { b.e.Push(h, v) }

// TryPush offers one arrival without blocking: where Push would stall on a
// full shard queue, it returns engine.ErrQueueFull (counted in
// Stats().Rejected) — the opt-in path for lossy producers that prefer
// dropping an arrival over stalling.
func (b *BottomKStream) TryPush(h dataset.Key, v float64) error { return b.e.TryPush(h, v) }

// Snapshot returns the summary of exactly the arrivals pushed so far —
// equal to a sequential pass over that prefix — without closing the
// stream. With an async engine config this is the live-monitoring hook:
// continuous queries read snapshots while ingest keeps running.
func (b *BottomKStream) Snapshot() *BottomKSummary {
	return &BottomKSummary{Instance: b.instance, Sample: b.e.Snapshot(), parent: b.parent}
}

// Stats exposes the engine's throughput and backpressure counters. Like
// Push it must be called from the producer goroutine (or after Close).
func (b *BottomKStream) Stats() engine.Stats { return b.e.Stats() }

// Close drains the pipeline and returns the finished summary.
func (b *BottomKStream) Close() *BottomKSummary {
	return &BottomKSummary{Instance: b.instance, Sample: b.e.Close(), parent: b.parent}
}

// PPSStream summarizes one instance incrementally with Poisson PPS
// sampling at a fixed threshold tau.
type PPSStream struct {
	instance int
	tau      float64
	parent   *Summarizer
	e        *engine.PoissonPPS
}

// StreamPPS opens a Poisson PPS summarization stream for one instance.
func (s *Summarizer) StreamPPS(cfg engine.Config, instance int, tau float64) *PPSStream {
	return &PPSStream{
		instance: instance,
		tau:      tau,
		parent:   s,
		e:        engine.NewPoissonPPS(tau, s.seedFunc(instance), cfg),
	}
}

// Push offers one (key, value) arrival.
func (p *PPSStream) Push(h dataset.Key, v float64) { p.e.Push(h, v) }

// TryPush offers one arrival without blocking: where Push would stall on a
// full shard queue, it returns engine.ErrQueueFull (counted in
// Stats().Rejected).
func (p *PPSStream) TryPush(h dataset.Key, v float64) error { return p.e.TryPush(h, v) }

// Snapshot returns the summary of exactly the arrivals pushed so far
// without closing the stream.
func (p *PPSStream) Snapshot() *PPSSummary {
	return &PPSSummary{Instance: p.instance, Tau: p.tau, Sample: p.e.Snapshot(), parent: p.parent}
}

// Stats exposes the engine's throughput and backpressure counters.
func (p *PPSStream) Stats() engine.Stats { return p.e.Stats() }

// Close drains the pipeline and returns the finished summary.
func (p *PPSStream) Close() *PPSSummary {
	return &PPSSummary{Instance: p.instance, Tau: p.tau, Sample: p.e.Close(), parent: p.parent}
}

// --- One-pass multi-instance summarization -----------------------------
//
// The Multi streams summarize r instances in ONE pass over a combined
// stream: Push(i, h, v) names the instance by its position in the
// instances slice, and the engine hosts one sampler per instance behind
// every shard worker. Per-instance results are bit-identical to r
// independent single-instance passes. The Summarizer's coordination mode
// carries through unchanged: a NewCoordinatedSummarizer hands every
// instance the same seeds (coordinated samples, §7.2), a NewSummarizer
// per-instance seeds (the independent joint distribution of §4–§6).

// multiSeeds adapts the seeder to a slice of instance IDs, indexed by
// position.
func (s *Summarizer) multiSeeds(instances []int) func(int) sampling.SeedFunc {
	return func(i int) sampling.SeedFunc { return s.seedFunc(instances[i]) }
}

// MultiBottomKStream summarizes r instances incrementally in one pass.
type MultiBottomKStream struct {
	instances []int
	parent    *Summarizer
	e         *engine.MultiBottomK
}

// StreamMultiBottomK opens a one-pass bottom-k summarization stream over
// the given instance IDs (positions in the slice name the Push index).
func (s *Summarizer) StreamMultiBottomK(cfg engine.Config, instances []int, k int, fam sampling.RankFamily) *MultiBottomKStream {
	ids := append([]int(nil), instances...)
	return &MultiBottomKStream{
		instances: ids,
		parent:    s,
		e:         engine.NewMultiBottomK(len(ids), k, fam, s.multiSeeds(ids), cfg),
	}
}

// Push offers one (key, value) arrival of instances[i].
func (m *MultiBottomKStream) Push(i int, h dataset.Key, v float64) { m.e.Push(i, h, v) }

// Snapshot returns per-instance summaries of exactly the arrivals pushed
// so far, without closing the stream.
func (m *MultiBottomKStream) Snapshot() []*BottomKSummary { return m.wrap(m.e.Snapshot()) }

// Stats exposes the engine's throughput and backpressure counters.
func (m *MultiBottomKStream) Stats() engine.Stats { return m.e.Stats() }

// Close drains the pipeline and returns the finished per-instance
// summaries, ordered as the instances slice.
func (m *MultiBottomKStream) Close() []*BottomKSummary { return m.wrap(m.e.Close()) }

func (m *MultiBottomKStream) wrap(samples []*sampling.WeightedSample) []*BottomKSummary {
	out := make([]*BottomKSummary, len(samples))
	for i, sm := range samples {
		out[i] = &BottomKSummary{Instance: m.instances[i], Sample: sm, parent: m.parent}
	}
	return out
}

// MultiPPSStream summarizes r instances incrementally in one pass with
// Poisson PPS sampling at per-instance thresholds.
type MultiPPSStream struct {
	instances []int
	taus      []float64
	parent    *Summarizer
	e         *engine.MultiPoissonPPS
}

// StreamMultiPPS opens a one-pass Poisson PPS summarization stream over
// the given instance IDs; taus[i] is the threshold of instances[i].
// Thresholds must be positive: the degenerate batch semantics of
// SummarizePPSWith (tau = 0 keeps every positive key, tau < 0 none) have
// no streaming sampler — SummarizeMultiPPSWith handles them by falling
// back to per-instance batch summarization.
func (s *Summarizer) StreamMultiPPS(cfg engine.Config, instances []int, taus []float64) *MultiPPSStream {
	if len(instances) != len(taus) {
		panic("core: StreamMultiPPS needs one threshold per instance")
	}
	for _, tau := range taus {
		if tau <= 0 {
			panic("core: StreamMultiPPS needs positive thresholds (degenerate taus are batch-only; see SummarizeMultiPPSWith)")
		}
	}
	ids := append([]int(nil), instances...)
	ts := append([]float64(nil), taus...)
	return &MultiPPSStream{
		instances: ids,
		taus:      ts,
		parent:    s,
		e:         engine.NewMultiPoissonPPS(ts, s.multiSeeds(ids), cfg),
	}
}

// Push offers one (key, value) arrival of instances[i].
func (m *MultiPPSStream) Push(i int, h dataset.Key, v float64) { m.e.Push(i, h, v) }

// Snapshot returns per-instance summaries of exactly the arrivals pushed
// so far, without closing the stream.
func (m *MultiPPSStream) Snapshot() []*PPSSummary { return m.wrap(m.e.Snapshot()) }

// Stats exposes the engine's throughput and backpressure counters.
func (m *MultiPPSStream) Stats() engine.Stats { return m.e.Stats() }

// Close drains the pipeline and returns the finished per-instance
// summaries, ordered as the instances slice.
func (m *MultiPPSStream) Close() []*PPSSummary { return m.wrap(m.e.Close()) }

func (m *MultiPPSStream) wrap(samples []*sampling.WeightedSample) []*PPSSummary {
	out := make([]*PPSSummary, len(samples))
	for i, sm := range samples {
		out[i] = &PPSSummary{Instance: m.instances[i], Tau: m.taus[i], Sample: sm, parent: m.parent}
	}
	return out
}

// SummarizeMultiPPSWith draws PPS summaries of r materialized instances in
// one pass: ins[i] is summarized as instance instances[i] with threshold
// taus[i]. Bit-identical to calling SummarizePPSWith per instance,
// including the degenerate thresholds (tau = 0 keeps every positive key,
// tau < 0 none) — those have no streaming sampler, so their presence
// drops the whole call to per-instance batch summarization.
func (s *Summarizer) SummarizeMultiPPSWith(cfg engine.Config, instances []int, ins []dataset.Instance, taus []float64) []*PPSSummary {
	if len(instances) != len(ins) {
		panic("core: SummarizeMultiPPSWith needs one instance ID per instance")
	}
	if len(instances) != len(taus) {
		panic("core: SummarizeMultiPPSWith needs one threshold per instance")
	}
	for _, tau := range taus {
		if tau <= 0 {
			out := make([]*PPSSummary, len(ins))
			for i, in := range ins {
				out[i] = s.SummarizePPSWith(cfg, instances[i], in, taus[i])
			}
			return out
		}
	}
	st := s.StreamMultiPPS(cfg, instances, taus)
	for i, in := range ins {
		//summarylint:ignore sampler Push keeps keys by per-key seed threshold, so the sample is arrival-order independent (property-tested ≡ sequential)
		for h, v := range in {
			st.Push(i, h, v)
		}
	}
	return st.Close()
}

// SummarizeMultiBottomKWith draws bottom-k summaries of r materialized
// instances in one pass. Bit-identical to calling SummarizeBottomKWith per
// instance.
func (s *Summarizer) SummarizeMultiBottomKWith(cfg engine.Config, instances []int, ins []dataset.Instance, k int, fam sampling.RankFamily) []*BottomKSummary {
	if len(instances) != len(ins) {
		panic("core: SummarizeMultiBottomKWith needs one instance ID per instance")
	}
	st := s.StreamMultiBottomK(cfg, instances, k, fam)
	for i, in := range ins {
		//summarylint:ignore bottom-k Push keeps the k smallest ranks, so the sample is arrival-order independent (property-tested ≡ sequential)
		for h, v := range in {
			st.Push(i, h, v)
		}
	}
	return st.Close()
}
