package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/estimator"
)

// This file extends the two-summary queries of core.go to arbitrary
// stored subsets — the query surface the summary server dispatches to.
// Every function takes decoded summaries (freshly drawn or reconstructed
// from the wire format), verifies they share a randomization, and sums
// per-key partial-information estimates.

// checkCombinable verifies r ≥ min summaries, pairwise-combinable
// randomizations, and pairwise-distinct instance indices. Coordinated
// (shared-seed) summaries are rejected: the estimators behind these
// queries assume independent per-instance seeds (the §4–§6 joint
// distribution), and under shared seeds they would return silently biased
// numbers — e.g. the r-instance HT term pays 1/p^r for an event of
// probability p.
func checkCombinable[S Summary](sums []S, min int) error {
	if len(sums) < min {
		return fmt.Errorf("core: query needs at least %d summaries, got %d", min, len(sums))
	}
	if sums[0].seederOf().Shared {
		return fmt.Errorf("core: query estimators need independent per-instance seeds; summaries use coordinated (shared-seed) sampling")
	}
	seen := make(map[int]bool, len(sums))
	for _, s := range sums {
		if s.seederOf() != sums[0].seederOf() {
			return fmt.Errorf("core: summaries use different randomizations")
		}
		if seen[s.InstanceID()] {
			return fmt.Errorf("core: duplicate instance %d", s.InstanceID())
		}
		seen[s.InstanceID()] = true
	}
	return nil
}

// MultiDistinctEstimate is the result of a distinct-count query over r ≥ 2
// set summaries.
type MultiDistinctEstimate struct {
	// HT and L are the estimates of |N1 ∪ … ∪ Nr| over selected keys: HT
	// generalizes §8.1 (a key contributes 1/Πp_i exactly when every
	// membership is determined and at least one holds), L is the
	// r-instance OR^(L) estimator built on the Theorem 4.2 machinery.
	HT, L float64
	// KeysUsed is the number of distinct keys appearing in ≥ 1 sample.
	KeysUsed int
}

// DistinctCountMulti estimates the number of distinct selected keys across
// r ≥ 2 set summaries produced by the same Summarizer. For r = 2 it
// delegates to the §8.1 pair estimator (which supports differing sampling
// probabilities); for r > 2 the OR^(L) construction requires a uniform
// per-member probability across the summaries.
func DistinctCountMulti(sums []*SetSummary, sel func(dataset.Key) bool) (MultiDistinctEstimate, error) {
	readers := make([]SetReader, len(sums))
	for i, s := range sums {
		readers[i] = s
	}
	return DistinctCountMultiReaders(readers, sel)
}

// DistinctCountMultiReaders is DistinctCountMulti over the SetReader seam:
// hydrated summaries and zero-copy v2 views answer identically (per-key
// terms sum in ascending key order either way).
func DistinctCountMultiReaders(sums []SetReader, sel func(dataset.Key) bool) (MultiDistinctEstimate, error) {
	if err := checkCombinable(sums, 2); err != nil {
		return MultiDistinctEstimate{}, err
	}
	if len(sums) == 2 {
		est, err := DistinctCountReaders(sums[0], sums[1], sel)
		if err != nil {
			return MultiDistinctEstimate{}, err
		}
		return MultiDistinctEstimate{HT: est.HT, L: est.L, KeysUsed: est.Counts.Sampled()}, nil
	}
	r := len(sums)
	p := sums[0].SetP()
	for _, s := range sums[1:] {
		if s.SetP() != p {
			return MultiDistinctEstimate{}, fmt.Errorf(
				"core: distinct count over %d summaries needs a uniform sampling probability, got %v and %v",
				r, p, s.SetP())
		}
	}
	est, err := estimator.ORLUniform(r, p)
	if err != nil {
		return MultiDistinctEstimate{}, err
	}
	seeder := sums[0].seederOf()
	htCoeff := 1.0
	for i := 0; i < r; i++ {
		htCoeff *= p
	}
	var out MultiDistinctEstimate
	for _, h := range unionReaderKeys(sums...) {
		if sel != nil && !sel(h) {
			continue
		}
		o := estimator.BinaryKnownSeedsOutcome{
			P:       make([]float64, r),
			U:       make([]float64, r),
			Sampled: make([]bool, r),
		}
		inAnySample := false
		allSeedsLow := true
		for i, s := range sums {
			o.P[i] = p
			o.U[i] = seeder.Seed(s.InstanceID(), uint64(h))
			// Summaries hold the *sampled* members, so membership in the
			// summary is exactly "member and seed below p".
			o.Sampled[i] = s.Contains(h)
			if o.Sampled[i] {
				inAnySample = true
			}
			if o.U[i] >= p {
				allSeedsLow = false
			}
		}
		if !inAnySample {
			continue
		}
		out.KeysUsed++
		out.L += est.Estimate(o.ToOblivious())
		if allSeedsLow {
			out.HT += 1 / htCoeff
		}
	}
	return out, nil
}

// QuantileEstimate is the result of a per-key quantile query.
type QuantileEstimate struct {
	// HT is the unbiased inverse-probability estimate of the ℓ-th largest
	// value of the key across the queried instances (LthHTPPS): positive
	// exactly when the summaries determine that value.
	HT float64
	// Sampled is the number of queried instances whose summary holds the
	// key.
	Sampled int
}

// QuantilePPS estimates the ℓ-th largest value (1-based: ℓ = 1 is the max,
// ℓ = r the min) of one key across r ≥ 2 PPS summaries produced by the
// same Summarizer. Interior quantiles have no closed-form order-based
// estimator in the paper (§4 proves plain HT suboptimal and the
// conclusion leaves derivation to automated tools — see examples/derive),
// so the HT baseline is what a query can serve exactly.
func QuantilePPS(sums []*PPSSummary, h dataset.Key, l int) (QuantileEstimate, error) {
	readers := make([]PPSReader, len(sums))
	for i, s := range sums {
		readers[i] = s
	}
	return QuantilePPSReaders(readers, h, l)
}

// QuantilePPSReaders is QuantilePPS over the PPSReader seam: hydrated
// summaries and zero-copy v2 views answer identically.
func QuantilePPSReaders(sums []PPSReader, h dataset.Key, l int) (QuantileEstimate, error) {
	if err := checkCombinable(sums, 2); err != nil {
		return QuantileEstimate{}, err
	}
	r := len(sums)
	if l < 1 || l > r {
		return QuantileEstimate{}, fmt.Errorf("core: quantile index %d out of range [1,%d]", l, r)
	}
	seeder := sums[0].seederOf()
	o := estimator.PPSOutcome{
		Tau:     make([]float64, r),
		U:       make([]float64, r),
		Sampled: make([]bool, r),
		Values:  make([]float64, r),
	}
	var out QuantileEstimate
	for i, s := range sums {
		if s.PPSTau() <= 0 {
			return QuantileEstimate{}, fmt.Errorf("core: summary of instance %d has non-positive tau %v", s.InstanceID(), s.PPSTau())
		}
		o.Tau[i] = s.PPSTau()
		o.U[i] = seeder.Seed(s.InstanceID(), uint64(h))
		if v, ok := s.Lookup(h); ok {
			o.Sampled[i], o.Values[i] = true, v
			out.Sampled++
		}
	}
	out.HT = estimator.LthHTPPS(o, l)
	return out, nil
}
