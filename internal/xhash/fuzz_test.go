package xhash

import (
	"math"
	"testing"
)

// Fuzz targets for seed derivation stability. The "known seeds" model
// collapses if any of these break: seeds must be pure functions of
// (salt, shared, instance, key), land in [0,1), and respect the
// shared/independent contract. `go test` runs the seed corpus;
// `go test -fuzz=FuzzX` explores.

func FuzzSeederStability(f *testing.F) {
	f.Add(uint64(0), uint64(0), 0, false)
	f.Add(uint64(1), uint64(1), 1, true)
	f.Add(uint64(0xdeadbeef), ^uint64(0), 1<<20, false)
	f.Fuzz(func(t *testing.T, salt, key uint64, instance int, shared bool) {
		s := Seeder{Salt: salt, Shared: shared}
		u := s.Seed(instance, key)
		if u != s.Seed(instance, key) {
			t.Fatal("Seed is not deterministic")
		}
		if !(u >= 0 && u < 1) {
			t.Fatalf("Seed out of [0,1): %v", u)
		}
		if math.IsNaN(u) {
			t.Fatal("Seed is NaN")
		}
		if fresh := (Seeder{Salt: salt, Shared: shared}).Seed(instance, key); fresh != u {
			t.Fatal("Seed depends on Seeder identity, not value")
		}
		if shared {
			// Coordinated sampling: every instance sees the same seed.
			if s.Seed(instance+1, key) != u || s.Seed(0, key) != u {
				t.Fatal("shared Seeder must ignore the instance")
			}
		} else if instance < 1<<30 {
			// Independent instances derive from distinct salts; a collision
			// of the full 53-bit seed across adjacent instances means the
			// instance is not being mixed in at all for this input.
			if s.Seed(instance, key) == s.Seed(instance+1, key) &&
				s.Seed(instance, key+1) == s.Seed(instance+1, key+1) &&
				s.Seed(instance, key+2) == s.Seed(instance+1, key+2) {
				t.Fatal("independent Seeder ignores the instance")
			}
		}
	})
}

func FuzzUnitRange(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(1) << 63)
	f.Fuzz(func(t *testing.T, h uint64) {
		u := Unit(h)
		if !(u >= 0 && u < 1) {
			t.Fatalf("Unit(%d) = %v out of [0,1)", h, u)
		}
		up := UnitPos(h)
		if !(up > 0 && up <= 1) {
			t.Fatalf("UnitPos(%d) = %v out of (0,1]", h, up)
		}
		if u != 0 && up != u {
			t.Fatalf("UnitPos must agree with Unit away from 0: %v vs %v", up, u)
		}
		if Mix64(h) != Mix64(h) {
			t.Fatal("Mix64 is not deterministic")
		}
	})
}

func FuzzHashStringStability(f *testing.F) {
	f.Add(uint64(0), "")
	f.Add(uint64(5), "alpha")
	f.Add(uint64(1<<40), "the same key")
	f.Fuzz(func(t *testing.T, salt uint64, s string) {
		h := HashString(salt, s)
		if h != HashString(salt, s) {
			t.Fatal("HashString is not deterministic")
		}
		sd := Seeder{Salt: salt}
		u := sd.SeedString(0, s)
		if u != sd.SeedString(0, s) {
			t.Fatal("SeedString is not deterministic")
		}
		if !(u >= 0 && u < 1) {
			t.Fatalf("SeedString out of [0,1): %v", u)
		}
		shared := Seeder{Salt: salt, Shared: true}
		if shared.SeedString(3, s) != shared.SeedString(9, s) {
			t.Fatal("shared SeedString must ignore the instance")
		}
	})
}
