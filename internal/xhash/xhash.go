// Package xhash provides deterministic 64-bit hashing and hash-derived
// uniform seeds.
//
// The paper's "known seeds" model requires reproducible randomization: the
// seed u_i(h) used to sample key h in instance i must be recomputable by the
// estimator. We realize this with a keyed 64-bit hash: u_i(h) is derived
// from a per-instance salt and the key, so any party holding the salt can
// reproduce every seed without storing it.
package xhash

import "math"

// Mix64 is the splitmix64 finalizer: a bijective mixer with good avalanche
// behaviour. It is the core primitive behind all hashing in this repository.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes two words into one. It is used to combine an instance salt
// with a key identifier.
func Hash2(a, b uint64) uint64 {
	return Mix64(Mix64(a) ^ b + 0x9e3779b97f4a7c15*b)
}

// HashString hashes a string with a salt, using an FNV-1a style pass
// followed by the splitmix64 finalizer.
func HashString(salt uint64, s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ Mix64(salt)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Mix64(h)
}

// Unit maps a 64-bit hash value to a float64 uniformly distributed in
// [0, 1). It uses the top 53 bits so the result is an exact dyadic rational
// and never equals 1.
func Unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// UnitPos maps a 64-bit hash value to (0, 1], avoiding exact zero. This is
// convenient for rank transforms such as -ln(u) that are undefined at 0.
func UnitPos(h uint64) float64 {
	u := Unit(h)
	if u == 0 {
		return math.SmallestNonzeroFloat64
	}
	return u
}

// Seeder derives reproducible per-(instance, key) uniform seeds. A Seeder
// with Shared=true ignores the instance component, producing the shared-seed
// (coordinated / PRN) joint distribution of the paper; with Shared=false the
// seeds of different instances are independent hashes.
type Seeder struct {
	// Salt identifies the random hash function. Two Seeders with the same
	// Salt produce identical seeds.
	Salt uint64
	// Shared selects coordinated (shared-seed) sampling: every instance sees
	// the same seed for a given key.
	Shared bool
}

// Seed returns the uniform [0,1) seed for key in the given instance.
func (s Seeder) Seed(instance int, key uint64) float64 {
	if s.Shared {
		return Unit(Hash2(s.Salt, key))
	}
	return Unit(Hash2(s.Salt^Mix64(uint64(instance)+1), key))
}

// SeedString is Seed for string keys.
func (s Seeder) SeedString(instance int, key string) float64 {
	if s.Shared {
		return Unit(HashString(s.Salt, key))
	}
	return Unit(HashString(s.Salt^Mix64(uint64(instance)+1), key))
}
