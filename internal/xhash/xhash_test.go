package xhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must map to distinct outputs (spot check over a
	// structured set that would expose weak mixing).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for bit := 0; bit < 64; bit++ {
		flips := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			x := Mix64(uint64(i) * 0x9e3779b97f4a7c15)
			d := Mix64(x) ^ Mix64(x^(1<<uint(bit)))
			for d != 0 {
				flips += int(d & 1)
				d >>= 1
			}
		}
		avg := float64(flips) / trials
		if avg < 24 || avg > 40 {
			t.Errorf("bit %d: average %v output bits flipped, want ≈32", bit, avg)
		}
	}
}

func TestUnitRange(t *testing.T) {
	f := func(x uint64) bool {
		u := Unit(x)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Unit(0) != 0 {
		t.Errorf("Unit(0) = %v, want 0", Unit(0))
	}
	if u := Unit(math.MaxUint64); u >= 1 {
		t.Errorf("Unit(max) = %v, want < 1", u)
	}
	if UnitPos(0) <= 0 {
		t.Errorf("UnitPos(0) = %v, want > 0", UnitPos(0))
	}
}

func TestUnitUniformity(t *testing.T) {
	// Bucket hashed seeds and check rough uniformity.
	const n, buckets = 200000, 20
	var counts [buckets]int
	for i := 0; i < n; i++ {
		u := Unit(Mix64(uint64(i)))
		counts[int(u*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d observations, want ≈%v", b, c, want)
		}
	}
}

func TestSeederSharedVsIndependent(t *testing.T) {
	shared := Seeder{Salt: 99, Shared: true}
	indep := Seeder{Salt: 99}
	same, diff := 0, 0
	for k := uint64(0); k < 1000; k++ {
		if shared.Seed(0, k) != shared.Seed(1, k) {
			t.Fatalf("shared seeder differs across instances for key %d", k)
		}
		if indep.Seed(0, k) == indep.Seed(1, k) {
			same++
		} else {
			diff++
		}
	}
	if same > 0 {
		t.Errorf("independent seeder produced %d identical cross-instance seeds", same)
	}
}

func TestSeederDeterministic(t *testing.T) {
	a := Seeder{Salt: 7}
	b := Seeder{Salt: 7}
	c := Seeder{Salt: 8}
	for k := uint64(0); k < 100; k++ {
		if a.Seed(3, k) != b.Seed(3, k) {
			t.Fatalf("same salt, different seeds for key %d", k)
		}
		if a.Seed(3, k) == c.Seed(3, k) {
			t.Fatalf("different salt, same seed for key %d", k)
		}
	}
}

func TestHashStringDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	keys := []string{"", "a", "b", "ab", "ba", "abc", "acb", "key-1", "key-2", "1-key"}
	for _, k := range keys {
		h := HashString(1, k)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", k, prev)
		}
		seen[h] = k
	}
	if HashString(1, "x") == HashString(2, "x") {
		t.Error("salt has no effect on HashString")
	}
	s := Seeder{Salt: 5}
	if s.SeedString(0, "x") == s.SeedString(1, "x") {
		t.Error("independent SeedString identical across instances")
	}
	sh := Seeder{Salt: 5, Shared: true}
	if sh.SeedString(0, "x") != sh.SeedString(1, "x") {
		t.Error("shared SeedString differs across instances")
	}
}
