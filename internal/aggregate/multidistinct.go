package aggregate

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/xhash"
)

// MultiDistinct estimates the number of distinct keys across r ≥ 2
// independently sampled sets with known seeds and a uniform per-member
// sampling probability p — the sum aggregate of the r-instance OR^(L)
// estimator built on the Theorem 4.2 machinery (§7, §8.1 generalized
// beyond two instances).
type MultiDistinct struct {
	p   float64
	est *estimator.MaxLUniform
}

// NewMultiDistinct prepares the estimator for r instances at probability
// p ∈ (0, 1].
func NewMultiDistinct(r int, p float64) (*MultiDistinct, error) {
	if r < 2 {
		return nil, fmt.Errorf("aggregate: MultiDistinct needs r ≥ 2, got %d", r)
	}
	e, err := estimator.ORLUniform(r, p)
	if err != nil {
		return nil, err
	}
	return &MultiDistinct{p: p, est: e}, nil
}

// R returns the number of instances.
func (m *MultiDistinct) R() int { return m.est.R() }

// EstimateResult carries the HT and L estimates of |N1 ∪ … ∪ Nr|.
type EstimateResult struct {
	HT, L float64
	// Sampled is the number of distinct keys appearing in ≥1 sample.
	Sampled int
}

// Estimate samples each set with the seeder's per-instance seeds
// (membership sampled iff u_i(h) < p) and sums the per-key OR estimates
// over keys selected by sel (nil selects all).
//
// The HT estimate generalizes §8.1: a key contributes 1/p^r exactly when
// every seed is below p (all memberships determined) and at least one set
// contains it.
func (m *MultiDistinct) Estimate(sets []map[dataset.Key]bool, seeder xhash.Seeder, sel func(dataset.Key) bool) (EstimateResult, error) {
	r := m.est.R()
	if len(sets) != r {
		return EstimateResult{}, fmt.Errorf("aggregate: estimator built for r=%d, got %d sets", r, len(sets))
	}
	var res EstimateResult
	htCoeff := 1.0
	for i := 0; i < r; i++ {
		htCoeff *= m.p
	}
	consider := func(h dataset.Key) {
		if sel != nil && !sel(h) {
			return
		}
		// Per-key outcome: entry i is sampled (in the weighted binary
		// sense) iff the key is in set i and its seed is below p.
		o := estimator.BinaryKnownSeedsOutcome{
			P:       make([]float64, r),
			U:       make([]float64, r),
			Sampled: make([]bool, r),
		}
		inAnySample := false
		allSeedsLow := true
		anyMember := false
		for i := 0; i < r; i++ {
			o.P[i] = m.p
			o.U[i] = seeder.Seed(i, uint64(h))
			member := sets[i][h]
			o.Sampled[i] = member && o.U[i] < m.p
			if o.Sampled[i] {
				inAnySample = true
				anyMember = true
			}
			if o.U[i] >= m.p {
				allSeedsLow = false
			}
		}
		if !inAnySample {
			return
		}
		res.Sampled++
		res.L += m.est.Estimate(o.ToOblivious())
		if allSeedsLow && anyMember {
			res.HT += 1 / htCoeff
		}
	}
	// Ascending key order (not map order): res.L accumulates floats, so
	// the union walk must be deterministic for bit-identical estimates.
	for _, h := range sortedUnionKeys(sets...) {
		consider(h)
	}
	return res, nil
}
