package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/sampling"
	"repro/internal/simdata"
	"repro/internal/xhash"
)

func TestMinHTPPSUnbiased(t *testing.T) {
	opt := estimator.PPSMomentsOptions{N: 1024, ZeroOnEmpty: true}
	cases := [][4]float64{
		{5, 3, 10, 10},
		{12, 8, 10, 5},
		{2, 2, 6, 9},
		{7, 0, 10, 10}, // zero min: estimator identically 0 and unbiased
	}
	for _, c := range cases {
		mean, _ := estimator.PPSMoments2(c[0:2], c[2:4], MinHTPPS, opt)
		want := math.Min(c[0], c[1])
		if math.Abs(mean-want) > 1e-5*math.Max(1, want) {
			t.Errorf("v=%v: mean %v, want %v", c, mean, want)
		}
	}
}

func TestMinAndL1DominanceUnbiased(t *testing.T) {
	m := simdata.Generate(simdata.TrafficConfig{
		SharedKeys: 120, Only1: 40, Only2: 40,
		Alpha: 1.5, MeanValue: 12, Jitter: 0.6, Seed: 15,
	})
	truthMin := m.SumAggregate(dataset.Min, nil)
	truthL1 := m.SumAggregate(dataset.Range, nil)
	tau1 := sampling.TauForExpectedSize(m.Instances[0], 50)
	tau2 := sampling.TauForExpectedSize(m.Instances[1], 50)
	const trials = 4000
	var sumMin, sumL1 float64
	sawNegative := false
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: uint64(i)}
		mn, err := EstimateMinDominance(m, tau1, tau2, seeder, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mn.Truth != truthMin {
			t.Fatalf("min truth mismatch")
		}
		sumMin += mn.HT
		l1, err := EstimateL1Distance(m, tau1, tau2, seeder, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumL1 += l1.Estimate
		if l1.Estimate < 0 {
			sawNegative = true
		}
		if math.Abs(l1.Estimate-(l1.MaxPart-l1.MinPart)) > 1e-9 {
			t.Fatal("decomposition inconsistent")
		}
	}
	if got := sumMin / trials; math.Abs(got-truthMin)/truthMin > 0.05 {
		t.Errorf("min-dominance mean %v, want %v", got, truthMin)
	}
	if got := sumL1 / trials; math.Abs(got-truthL1)/truthL1 > 0.12 {
		t.Errorf("L1 mean %v, want %v", got, truthL1)
	}
	// The §2.3 impossibility manifests: a signed estimator is the price,
	// and negative draws actually occur at this sampling rate.
	if !sawNegative {
		t.Log("no negative L1 draw observed (not an error, but unexpected at this rate)")
	}
}

func TestMinDominanceSelectionAndErrors(t *testing.T) {
	m3 := dataset.FigureFive()
	if _, err := EstimateMinDominance(m3, 1, 1, xhash.Seeder{}, nil); err == nil {
		t.Error("expected error for r≠2")
	}
	if _, err := EstimateL1Distance(m3, 1, 1, xhash.Seeder{}, nil); err == nil {
		t.Error("expected error for r≠2")
	}
	m := dataset.NewMatrix(m3.Instances[1], m3.Instances[2])
	first3 := func(h dataset.Key) bool { return h <= 3 }
	// Full sampling: exact values; the paper's worked L1 number is 18.
	res, err := EstimateL1Distance(m, 1e-9, 1e-9, xhash.Seeder{Salt: 2}, first3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-18) > 1e-6 || res.Truth != 18 {
		t.Errorf("full-sampling L1 = %v (truth %v), want 18", res.Estimate, res.Truth)
	}
}

func TestMinHTPPSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for r≠2")
		}
	}()
	MinHTPPS(estimator.PPSOutcome{Tau: []float64{1}, U: []float64{0}, Sampled: []bool{true}, Values: []float64{1}})
}
