package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xhash"
)

func multiSets(r, universe int, overlap float64) ([]map[dataset.Key]bool, float64) {
	sets := make([]map[dataset.Key]bool, r)
	for i := range sets {
		sets[i] = make(map[dataset.Key]bool)
	}
	union := 0.0
	for k := 1; k <= universe; k++ {
		h := dataset.Key(k)
		member := false
		for i := 0; i < r; i++ {
			// Deterministic membership pattern: a fraction `overlap` of
			// keys is in every set; the rest round-robin across sets.
			if float64(k) <= overlap*float64(universe) || k%r == i {
				sets[i][h] = true
				member = true
			}
		}
		if member {
			union++
		}
	}
	return sets, union
}

// TestMultiDistinctUnbiased: the r-instance distinct count is unbiased for
// r = 2, 3, 4.
func TestMultiDistinctUnbiased(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		sets, union := multiSets(r, 600, 0.3)
		md, err := NewMultiDistinct(r, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if md.R() != r {
			t.Fatalf("R = %d", md.R())
		}
		const trials = 3000
		var sumHT, sumL float64
		for i := 0; i < trials; i++ {
			res, err := md.Estimate(sets, xhash.Seeder{Salt: uint64(i)}, nil)
			if err != nil {
				t.Fatal(err)
			}
			sumHT += res.HT
			sumL += res.L
		}
		if got := sumHT / trials; math.Abs(got-union)/union > 0.05 {
			t.Errorf("r=%d: HT mean %v, want %v", r, got, union)
		}
		if got := sumL / trials; math.Abs(got-union)/union > 0.03 {
			t.Errorf("r=%d: L mean %v, want %v", r, got, union)
		}
	}
}

// TestMultiDistinctLBeatsHT: across replications the L estimator's MSE is
// lower — and the gap widens with r (HT needs all r seeds low).
func TestMultiDistinctLBeatsHT(t *testing.T) {
	prevRatio := 0.0
	for _, r := range []int{2, 3} {
		sets, union := multiSets(r, 600, 0.5)
		md, err := NewMultiDistinct(r, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		var mseHT, mseL float64
		const trials = 2000
		for i := 0; i < trials; i++ {
			res, err := md.Estimate(sets, xhash.Seeder{Salt: 555 + uint64(i)}, nil)
			if err != nil {
				t.Fatal(err)
			}
			mseHT += (res.HT - union) * (res.HT - union)
			mseL += (res.L - union) * (res.L - union)
		}
		if mseL >= mseHT {
			t.Errorf("r=%d: L MSE %v not below HT MSE %v", r, mseL/trials, mseHT/trials)
		}
		ratio := mseHT / mseL
		if ratio < prevRatio {
			t.Errorf("r=%d: advantage ratio %v below r-1's %v — expected growth with r", r, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestMultiDistinctErrors(t *testing.T) {
	if _, err := NewMultiDistinct(1, 0.5); err == nil {
		t.Error("expected error for r=1")
	}
	if _, err := NewMultiDistinct(3, 0); err == nil {
		t.Error("expected error for p=0")
	}
	md, err := NewMultiDistinct(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sets, _ := multiSets(2, 10, 0.5)
	if _, err := md.Estimate(sets, xhash.Seeder{}, nil); err == nil {
		t.Error("expected error for mismatched set count")
	}
}

// TestMultiDistinctSelection: selection filters keys.
func TestMultiDistinctSelection(t *testing.T) {
	sets, _ := multiSets(3, 900, 1) // every key in every set
	md, err := NewMultiDistinct(3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	even := func(h dataset.Key) bool { return h%2 == 0 }
	const trials = 1500
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := md.Estimate(sets, xhash.Seeder{Salt: uint64(i) * 11}, even)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.L
	}
	if got := sum / trials; math.Abs(got-450)/450 > 0.03 {
		t.Errorf("selected mean %v, want 450", got)
	}
}
