package aggregate

import (
	"sort"

	"repro/internal/dataset"
)

// sortedUnionKeys returns the union of the maps' keys in ascending order.
// Every union estimator in this package iterates sample maps through this
// helper so per-key terms accumulate in a specified order: float addition
// is not associative, and summing in Go's randomized map order made the
// estimates differ in the low bits from run to run (the PR-5
// nondeterminism class summarylint's maporder/floatsum checks now flag).
func sortedUnionKeys[V any](ms ...map[dataset.Key]V) []dataset.Key {
	n := 0
	for _, m := range ms {
		n += len(m)
	}
	seen := make(map[dataset.Key]bool, n)
	keys := make([]dataset.Key, 0, n)
	for _, m := range ms {
		for h := range m {
			if !seen[h] {
				seen[h] = true
				keys = append(keys, h)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
