package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/xhash"
)

func TestCategorize(t *testing.T) {
	p1, p2 := 0.4, 0.6
	cases := []struct {
		inS1, inS2 bool
		u1, u2     float64
		want       Category
	}{
		{true, true, 0.1, 0.2, Cat11},
		{true, false, 0.1, 0.9, Cat1Q}, // u2 > p2: membership 2 unknown
		{true, false, 0.1, 0.3, Cat10}, // u2 ≤ p2: v2 revealed 0
		{false, true, 0.9, 0.2, CatQ1}, // u1 > p1
		{false, true, 0.3, 0.2, Cat01}, // u1 ≤ p1
		{false, false, 0.9, 0.9, CatNone},
		{false, false, 0.1, 0.1, CatNone},
	}
	for _, c := range cases {
		if got := Categorize(c.inS1, c.inS2, c.u1, c.u2, p1, p2); got != c.want {
			t.Errorf("Categorize(%v,%v,%v,%v) = %v, want %v", c.inS1, c.inS2, c.u1, c.u2, got, c.want)
		}
	}
}

// TestDistinctEstimatesMatchPerKeyOR: the aggregate formulas are the sums
// of the per-key OR estimators.
func TestDistinctEstimatesMatchPerKeyOR(t *testing.T) {
	p1, p2 := 0.3, 0.7
	e := DistinctEstimator{P1: p1, P2: p2}
	perKey := func(cat Category) (ht, l, u float64) {
		var o estimator.BinaryKnownSeedsOutcome
		switch cat {
		case Cat1Q:
			o = estimator.BinaryKnownSeedsOutcome{P: []float64{p1, p2}, U: []float64{p1 / 2, (1 + p2) / 2}, Sampled: []bool{true, false}}
		case CatQ1:
			o = estimator.BinaryKnownSeedsOutcome{P: []float64{p1, p2}, U: []float64{(1 + p1) / 2, p2 / 2}, Sampled: []bool{false, true}}
		case Cat11:
			o = estimator.BinaryKnownSeedsOutcome{P: []float64{p1, p2}, U: []float64{p1 / 2, p2 / 2}, Sampled: []bool{true, true}}
		case Cat10:
			o = estimator.BinaryKnownSeedsOutcome{P: []float64{p1, p2}, U: []float64{p1 / 2, p2 / 2}, Sampled: []bool{true, false}}
		case Cat01:
			o = estimator.BinaryKnownSeedsOutcome{P: []float64{p1, p2}, U: []float64{p1 / 2, p2 / 2}, Sampled: []bool{false, true}}
		}
		return estimator.ORHTKnownSeeds(o), estimator.ORLKnownSeeds(o), estimator.ORUKnownSeeds(o)
	}
	for _, cat := range []Category{Cat1Q, CatQ1, Cat11, Cat10, Cat01} {
		var c DistinctCounts
		c.Add(cat)
		ht, l, u := perKey(cat)
		if got := e.HT(c); math.Abs(got-ht) > 1e-12 {
			t.Errorf("cat %v: aggregate HT %v, per-key %v", cat, got, ht)
		}
		if got := e.L(c); math.Abs(got-l) > 1e-12 {
			t.Errorf("cat %v: aggregate L %v, per-key %v", cat, got, l)
		}
		if got := e.U(c); math.Abs(got-u) > 1e-12 {
			t.Errorf("cat %v: aggregate U %v, per-key %v", cat, got, u)
		}
	}
}

// TestEstimateDistinctUnbiased: Monte Carlo over hash salts.
func TestEstimateDistinctUnbiased(t *testing.T) {
	n1 := make(map[dataset.Key]bool)
	n2 := make(map[dataset.Key]bool)
	for k := dataset.Key(1); k <= 300; k++ {
		if k <= 200 {
			n1[k] = true
		}
		if k > 100 {
			n2[k] = true
		}
	}
	const union = 300
	p1, p2 := 0.25, 0.4
	e := DistinctEstimator{P1: p1, P2: p2}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	var sumHT, sumL, sumU float64
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: uint64(i)}
		c := EstimateDistinct(n1, n2, p1, p2, seeder, nil)
		sumHT += e.HT(c)
		sumL += e.L(c)
		sumU += e.U(c)
	}
	for name, got := range map[string]float64{"HT": sumHT / trials, "L": sumL / trials, "U": sumU / trials} {
		if math.Abs(got-union)/union > 0.02 {
			t.Errorf("%s mean %v, want %v", name, got, union)
		}
	}
}

// TestDistinctVarianceFormulas: the closed-form variances match Monte
// Carlo.
func TestDistinctVarianceFormulas(t *testing.T) {
	n1 := make(map[dataset.Key]bool)
	n2 := make(map[dataset.Key]bool)
	for k := dataset.Key(1); k <= 400; k++ {
		if k <= 250 {
			n1[k] = true
		}
		if k > 150 {
			n2[k] = true
		}
	}
	union, inter := 400.0, 100.0
	j := inter / union
	p := 0.3
	e := DistinctEstimator{P1: p, P2: p}
	const trials = 6000
	var ht, l []float64
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: 7777 + uint64(i)}
		c := EstimateDistinct(n1, n2, p, p, seeder, nil)
		ht = append(ht, e.HT(c))
		l = append(l, e.L(c))
	}
	varOf := func(xs []float64) float64 {
		var m, m2 float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		for _, x := range xs {
			m2 += (x - m) * (x - m)
		}
		return m2 / float64(len(xs))
	}
	if got, want := varOf(ht), e.VarHT(union); math.Abs(got-want)/want > 0.08 {
		t.Errorf("VarHT: MC %v, formula %v", got, want)
	}
	if got, want := varOf(l), e.VarL(union, j); math.Abs(got-want)/want > 0.08 {
		t.Errorf("VarL: MC %v, formula %v", got, want)
	}
	// L dominates HT.
	if e.VarL(union, j) > e.VarHT(union) {
		t.Errorf("VarL %v > VarHT %v", e.VarL(union, j), e.VarHT(union))
	}
}

// TestRequiredSampleSizes reproduces the Figure 6 headline: the L estimator
// needs up to 2× fewer samples, and for J > 0 its required p approaches a
// constant as n grows (constant sample size for fixed cv).
func TestRequiredSampleSizes(t *testing.T) {
	cv := 0.1
	for _, j := range []float64{0, 0.5, 0.9, 1} {
		for _, n := range []float64{1e3, 1e6, 1e9} {
			pht := RequiredPHT(n, j, cv)
			pl := RequiredPL(n, j, cv)
			if pl > pht*(1+1e-9) {
				t.Errorf("J=%v n=%v: L needs more samples than HT (%v > %v)", j, n, pl, pht)
			}
			// Verify the solved p actually achieves the target cv.
			bigN := 2 * n / (1 + j)
			e := DistinctEstimator{P1: pht, P2: pht}
			if gotCV := math.Sqrt(e.VarHT(bigN)) / bigN; pht < 1 && math.Abs(gotCV-cv) > 1e-6 {
				t.Errorf("J=%v n=%v: HT cv at solved p = %v", j, n, gotCV)
			}
			el := DistinctEstimator{P1: pl, P2: pl}
			if gotCV := math.Sqrt(el.VarL(bigN, j)) / bigN; pl < 1 && math.Abs(gotCV-cv) > 1e-6 {
				t.Errorf("J=%v n=%v: L cv at solved p = %v", j, n, gotCV)
			}
		}
	}
	// Large-n asymptotics (§8.1): s(L)/s(HT) → √(1−J)/2 for J < 1, since
	// the (1−J)/(4p²) variance term dominates once p < (1−J)/(2J).
	for _, j := range []float64{0, 0.5, 0.9} {
		pts := SampleSizeCurve([]float64{1e10}, j, cv)
		want := math.Sqrt(1-j) / 2
		if r := pts[0].Ratio; math.Abs(r-want) > 0.05*want+0.01 {
			t.Errorf("J=%v ratio = %v, want ≈%v", j, r, want)
		}
	}
	// J = 1: Θ(1) samples suffice for a fixed cv — the required sample
	// size is the constant 1/(2cv²)+O(1) independent of n.
	a := SampleSizeCurve([]float64{1e6}, 1, cv)[0].SL
	b := SampleSizeCurve([]float64{1e10}, 1, cv)[0].SL
	if math.Abs(a-b) > 0.01*a {
		t.Errorf("J=1: sample size not constant (%v → %v)", a, b)
	}
	if want := 1 / (2 * cv * cv); math.Abs(b-want) > 0.05*want {
		t.Errorf("J=1: sample size %v, want ≈%v", b, want)
	}
}

// TestSelectionFilter: selection restricts the estimate to matching keys.
func TestSelectionFilter(t *testing.T) {
	n1 := map[dataset.Key]bool{}
	n2 := map[dataset.Key]bool{}
	for k := dataset.Key(1); k <= 1000; k++ {
		n1[k] = true
		n2[k] = true
	}
	even := func(h dataset.Key) bool { return h%2 == 0 }
	e := DistinctEstimator{P1: 0.5, P2: 0.5}
	const trials = 2000
	sum := 0.0
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: 31 + uint64(i)}
		c := EstimateDistinct(n1, n2, 0.5, 0.5, seeder, even)
		sum += e.L(c)
	}
	if mean := sum / trials; math.Abs(mean-500)/500 > 0.03 {
		t.Errorf("selected distinct mean %v, want 500", mean)
	}
}

func TestValidate(t *testing.T) {
	if err := (DistinctEstimator{P1: 0, P2: 0.5}).Validate(); err == nil {
		t.Error("expected error for p1=0")
	}
	if err := (DistinctEstimator{P1: 0.5, P2: 1.5}).Validate(); err == nil {
		t.Error("expected error for p2>1")
	}
}
