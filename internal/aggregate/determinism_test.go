package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xhash"
)

// Determinism regression tests for the sortedUnionKeys fix: every
// estimator that sums per-key float terms must return bit-identical
// results on repeated calls with identical inputs. Before the fix those
// sums ran in Go's randomized map iteration order; with terms spanning
// ~60 orders of magnitude, float addition's non-associativity made two
// runs of the same estimate almost surely disagree in the low mantissa
// bits. summarylint's maporder/floatsum checks flag the pattern
// statically; these tests pin the behavioral contract.

const determinismRounds = 20

// spreadMatrix builds a two-instance matrix whose values span roughly
// 10^-30..10^30, maximizing the rounding difference between any two
// summation orders.
func spreadMatrix(n int) *dataset.Matrix {
	in1 := make(dataset.Instance, n)
	in2 := make(dataset.Instance, n)
	for i := 0; i < n; i++ {
		h := dataset.Key(uint64(i)*2654435761 + 1)
		e := float64(i%61) - 30
		in1[h] = math.Pow(10, e) * float64(i%7+1)
		if i%3 != 0 {
			in2[h] = math.Pow(10, -e) * float64(i%5+1)
		}
	}
	return dataset.NewMatrix(in1, in2)
}

// sameBits fails the test unless got and want are bitwise-identical.
func sameBits(t *testing.T, round int, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("round %d: %s = %x, first call gave %x (non-deterministic summation order)",
			round, name, math.Float64bits(got), math.Float64bits(want))
	}
}

func TestEstimateMaxDominanceDeterministic(t *testing.T) {
	m := spreadMatrix(400)
	seeder := xhash.Seeder{Salt: 12345}
	first, err := EstimateMaxDominance(m, 1e-9, 1e-9, seeder, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Sampled1 == 0 || first.Sampled2 == 0 {
		t.Fatalf("empty samples (%d, %d): test exercises nothing", first.Sampled1, first.Sampled2)
	}
	for i := 1; i < determinismRounds; i++ {
		res, err := EstimateMaxDominance(m, 1e-9, 1e-9, seeder, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, i, "HT", res.HT, first.HT)
		sameBits(t, i, "L", res.L, first.L)
		sameBits(t, i, "Truth", res.Truth, first.Truth)
	}
}

func TestEstimateMaxDominanceBottomKDeterministic(t *testing.T) {
	m := spreadMatrix(400)
	seeder := xhash.Seeder{Salt: 777}
	first, err := EstimateMaxDominanceBottomK(m, 100, seeder, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < determinismRounds; i++ {
		res, err := EstimateMaxDominanceBottomK(m, 100, seeder, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, i, "HT", res.HT, first.HT)
		sameBits(t, i, "L", res.L, first.L)
		sameBits(t, i, "Truth", res.Truth, first.Truth)
	}
}

func TestEstimateMinDominanceDeterministic(t *testing.T) {
	m := spreadMatrix(400)
	seeder := xhash.Seeder{Salt: 9}
	first, err := EstimateMinDominance(m, 1e-9, 1e-9, seeder, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < determinismRounds; i++ {
		res, err := EstimateMinDominance(m, 1e-9, 1e-9, seeder, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, i, "HT", res.HT, first.HT)
		sameBits(t, i, "Truth", res.Truth, first.Truth)
	}
}

func TestMultiDistinctDeterministic(t *testing.T) {
	const n = 600
	sets := make([]map[dataset.Key]bool, 3)
	for r := range sets {
		sets[r] = make(map[dataset.Key]bool)
		for i := 0; i < n; i++ {
			if (i+r)%(r+2) == 0 {
				sets[r][dataset.Key(uint64(i)*11400714819323198485+7)] = true
			}
		}
	}
	md, err := NewMultiDistinct(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seeder := xhash.Seeder{Salt: 4242}
	first, err := md.Estimate(sets, seeder, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Sampled == 0 {
		t.Fatal("empty sample: test exercises nothing")
	}
	for i := 1; i < determinismRounds; i++ {
		res, err := md.Estimate(sets, seeder, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, i, "HT", res.HT, first.HT)
		sameBits(t, i, "L", res.L, first.L)
	}
}
