package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xhash"
)

func TestCoordinatedDistinctUnbiased(t *testing.T) {
	sets, union := multiSets(3, 500, 0.4)
	const p = 0.2
	const trials = 5000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < trials; i++ {
		est, _, err := CoordinatedDistinct(sets, p, xhash.Seeder{Salt: uint64(i), Shared: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
		sum2 += est * est
	}
	mean := sum / trials
	if math.Abs(mean-union)/union > 0.02 {
		t.Errorf("mean %v, want %v", mean, union)
	}
	// Variance matches the closed form d(1/p−1).
	mcVar := sum2/trials - mean*mean
	want := VarCoordinatedDistinct(union, p)
	if math.Abs(mcVar-want)/want > 0.1 {
		t.Errorf("variance %v, closed form %v", mcVar, want)
	}
}

// TestCoordinationVsIndependence pins the §7.2 trade-off precisely.
// Coordination turns the per-key outcome into "all or nothing" (variance
// d(1/p−1)), which always beats the independent-sample HT estimator
// (d(1/p²−1)) and beats the independent L estimator in the aggressive-
// sampling regime (small p) and on dissimilar sets. But on highly similar
// sets, *independent* sampling gives each union key up to two chances to
// be sampled, and the L estimator exploits both: at J=1 its variance
// d(1/(2p−p²)−1) is strictly below the coordinated d(1/p−1). Coordination
// is a boost, not a free lunch.
func TestCoordinationVsIndependence(t *testing.T) {
	const d = 1000.0
	for _, p := range []float64{0.05, 0.2, 0.5} {
		coord := VarCoordinatedDistinct(d, p)
		e := DistinctEstimator{P1: p, P2: p}
		if ht := e.VarHT(d); coord > ht {
			t.Errorf("p=%v: coordinated %v above independent HT %v", p, coord, ht)
		}
		// Disjoint sets, small p: coordination wins (1/p vs ≈1/(4p²)).
		if p <= 0.2 {
			if indep := e.VarL(d, 0); coord > indep+1e-9 {
				t.Errorf("p=%v J=0: coordinated %v above independent L %v", p, coord, indep)
			}
		}
		// Identical sets: independent L wins at every p.
		if indep := e.VarL(d, 1); indep > coord+1e-9 {
			t.Errorf("p=%v J=1: independent L %v above coordinated %v", p, indep, coord)
		}
	}
}

func TestCoordinatedDistinctErrors(t *testing.T) {
	sets := []map[dataset.Key]bool{{1: true}}
	if _, _, err := CoordinatedDistinct(sets, 0.5, xhash.Seeder{Salt: 1}, nil); err == nil {
		t.Error("expected error for non-shared seeder")
	}
	if _, _, err := CoordinatedDistinct(sets, 0, xhash.Seeder{Salt: 1, Shared: true}, nil); err == nil {
		t.Error("expected error for p=0")
	}
}

func TestCoordinatedDistinctSelection(t *testing.T) {
	sets, _ := multiSets(2, 1000, 1)
	even := func(h dataset.Key) bool { return h%2 == 0 }
	const trials = 3000
	sum := 0.0
	for i := 0; i < trials; i++ {
		est, _, err := CoordinatedDistinct(sets, 0.3, xhash.Seeder{Salt: 99 + uint64(i), Shared: true}, even)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	if mean := sum / trials; math.Abs(mean-500)/500 > 0.03 {
		t.Errorf("selected mean %v, want 500", mean)
	}
}
