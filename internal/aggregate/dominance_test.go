package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
	"repro/internal/xhash"
)

// TestMaxDominanceUnbiased: both sum-aggregate estimators are unbiased over
// hash salts.
func TestMaxDominanceUnbiased(t *testing.T) {
	m := simdata.Generate(simdata.TrafficConfig{
		SharedKeys: 150, Only1: 60, Only2: 60,
		Alpha: 1.4, MeanValue: 15, Jitter: 0.8, Seed: 4,
	})
	truth := m.SumAggregate(dataset.Max, nil)
	tau1 := sampling.TauForExpectedSize(m.Instances[0], 40)
	tau2 := sampling.TauForExpectedSize(m.Instances[1], 40)
	const trials = 3000
	var sumHT, sumL float64
	for i := 0; i < trials; i++ {
		res, err := EstimateMaxDominance(m, tau1, tau2, xhash.Seeder{Salt: uint64(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumHT += res.HT
		sumL += res.L
		if res.Truth != truth {
			t.Fatalf("truth mismatch: %v vs %v", res.Truth, truth)
		}
	}
	if got := sumHT / trials; math.Abs(got-truth)/truth > 0.05 {
		t.Errorf("HT mean %v, want %v", got, truth)
	}
	if got := sumL / trials; math.Abs(got-truth)/truth > 0.03 {
		t.Errorf("L mean %v, want %v", got, truth)
	}
}

// TestDominanceVarianceMatchesMC: the per-key integration agrees with
// Monte Carlo over salts.
func TestDominanceVarianceMatchesMC(t *testing.T) {
	m := simdata.Generate(simdata.TrafficConfig{
		SharedKeys: 80, Only1: 30, Only2: 30,
		Alpha: 1.5, MeanValue: 10, Jitter: 0.5, Seed: 11,
	})
	tau1 := sampling.TauForExpectedSize(m.Instances[0], 25)
	tau2 := sampling.TauForExpectedSize(m.Instances[1], 25)
	varHT, varL, total, err := DominanceVariance(m, tau1, tau2, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	if total != m.SumAggregate(dataset.Max, nil) {
		t.Fatalf("total mismatch")
	}
	const trials = 5000
	var whtM, whtM2, wlM, wlM2 float64
	for i := 0; i < trials; i++ {
		res, err := EstimateMaxDominance(m, tau1, tau2, xhash.Seeder{Salt: 999 + uint64(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		whtM += res.HT
		whtM2 += res.HT * res.HT
		wlM += res.L
		wlM2 += res.L * res.L
	}
	whtM /= trials
	wlM /= trials
	mcVarHT := whtM2/trials - whtM*whtM
	mcVarL := wlM2/trials - wlM*wlM
	if math.Abs(mcVarHT-varHT)/varHT > 0.1 {
		t.Errorf("HT variance: MC %v, integration %v", mcVarHT, varHT)
	}
	if math.Abs(mcVarL-varL)/varL > 0.1 {
		t.Errorf("L variance: MC %v, integration %v", mcVarL, varL)
	}
	if varL > varHT {
		t.Errorf("L variance %v exceeds HT %v", varL, varHT)
	}
}

// TestDominanceSelection: selection restricts both the estimate and the
// truth.
func TestDominanceSelection(t *testing.T) {
	m := dataset.NewMatrix(dataset.FigureFive().Instances[0], dataset.FigureFive().Instances[1])
	even := func(h dataset.Key) bool { return h%2 == 0 }
	res, err := EstimateMaxDominance(m, 1e-9, 1e-9, xhash.Seeder{Salt: 3}, even)
	if err != nil {
		t.Fatal(err)
	}
	// With tau→0 everything is sampled and the estimate is exact: 40.
	if math.Abs(res.HT-40) > 1e-6 || math.Abs(res.L-40) > 1e-6 {
		t.Errorf("full-sampling estimates (%v, %v), want 40", res.HT, res.L)
	}
	if res.Truth != 40 {
		t.Errorf("truth %v, want 40", res.Truth)
	}
}

func TestDominanceErrors(t *testing.T) {
	m := dataset.FigureFive() // 3 instances
	if _, err := EstimateMaxDominance(m, 1, 1, xhash.Seeder{}, nil); err == nil {
		t.Error("expected error for r≠2")
	}
	if _, _, _, err := DominanceVariance(m, 1, 1, nil, 16); err == nil {
		t.Error("expected error for r≠2")
	}
}

func TestTauForFraction(t *testing.T) {
	in := simdata.Generate(simdata.ScaledTraffic(20)).Instances[0]
	tau := TauForFraction(in, 0.1)
	expected := 0.0
	for _, v := range in {
		expected += math.Min(1, v/tau)
	}
	if target := 0.1 * float64(len(in)); math.Abs(expected-target)/target > 1e-6 {
		t.Errorf("expected sample size %v, want %v", expected, target)
	}
}
