// Package aggregate implements the paper's sum-aggregate estimators (§7,
// §8): linear per-key estimates summed over selected keys. It covers
// distinct counting over two independently sampled sets with known seeds
// (§8.1), the max-dominance norm over independent PPS samples (§8.2), and
// the sample-size analysis behind Figure 6.
package aggregate

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/stats"
	"repro/internal/xhash"
)

// Category classifies a key's outcome when two binary instances are
// sampled independently with known seeds (§8.1). The subscripts follow the
// paper: 1 means "known to be in the set", 0 means "known to be out",
// ? means "unknown" (the seed exceeded the sampling threshold, so absence
// from the sample carries no information).
type Category int

// Categories of §8.1.
const (
	// CatNone: not sampled anywhere and no seed reveals anything — or the
	// seeds reveal the key is in neither set. Estimate 0 either way.
	CatNone Category = iota
	// Cat1Q: in sample 1; seed 2 above threshold (membership 2 unknown).
	Cat1Q
	// CatQ1: in sample 2; seed 1 above threshold (membership 1 unknown).
	CatQ1
	// Cat11: in both samples.
	Cat11
	// Cat10: in sample 1; seed 2 below threshold, so absence from sample 2
	// proves non-membership in set 2.
	Cat10
	// Cat01: in sample 2; seed 1 proves non-membership in set 1.
	Cat01
)

// Categorize classifies one key given its sample memberships, seeds, and
// per-instance sampling probabilities.
func Categorize(inS1, inS2 bool, u1, u2, p1, p2 float64) Category {
	switch {
	case inS1 && inS2:
		return Cat11
	case inS1 && u2 > p2:
		return Cat1Q
	case inS1:
		return Cat10
	case inS2 && u1 > p1:
		return CatQ1
	case inS2:
		return Cat01
	default:
		return CatNone
	}
}

// DistinctCounts tallies the §8.1 categories over the selected keys.
type DistinctCounts struct {
	F1Q, FQ1, F11, F10, F01 int
}

// Add increments the tally for one categorized key.
func (c *DistinctCounts) Add(cat Category) {
	switch cat {
	case Cat1Q:
		c.F1Q++
	case CatQ1:
		c.FQ1++
	case Cat11:
		c.F11++
	case Cat10:
		c.F10++
	case Cat01:
		c.F01++
	}
}

// Sampled returns the number of keys present in at least one sample.
func (c *DistinctCounts) Sampled() int {
	return c.F1Q + c.FQ1 + c.F11 + c.F10 + c.F01
}

// DistinctEstimator estimates D = |(N1 ∪ N2) ∩ A| from the category
// counts, for sampling probabilities P1, P2.
type DistinctEstimator struct {
	P1, P2 float64
}

// HT is the inverse-probability estimate D̂^(HT) of §8.1: only keys whose
// membership in both sets is fully determined contribute.
func (e DistinctEstimator) HT(c DistinctCounts) float64 {
	return float64(c.F11+c.F10+c.F01) / (e.P1 * e.P2)
}

// L is the partial-information estimate D̂^(L) of §8.1, the sum-aggregate
// of the per-key OR^(L) estimator.
func (e DistinctEstimator) L(c DistinctCounts) float64 {
	q := e.P1 + e.P2 - e.P1*e.P2
	return float64(c.F1Q+c.FQ1+c.F11)/q +
		float64(c.F10)/(e.P1*q) +
		float64(c.F01)/(e.P2*q)
}

// U is the sum-aggregate of the per-key OR^(U) estimator, which favours
// "change" keys (present in only one instance). Not derived in §8.1 but a
// direct consequence of §5.1.
func (e DistinctEstimator) U(c DistinctCounts) float64 {
	cc := math.Max(0, 1-e.P1-e.P2)
	both := (1 - ((1-e.P2)+(1-e.P1))/(1+cc)) / (e.P1 * e.P2)
	with1 := (1 - (1-e.P2)/(1+cc)) / (e.P1 * e.P2) // v2 revealed 0
	with2 := (1 - (1-e.P1)/(1+cc)) / (e.P1 * e.P2) // v1 revealed 0
	return float64(c.F1Q)/(e.P1*(1+cc)) +
		float64(c.FQ1)/(e.P2*(1+cc)) +
		float64(c.F11)*both +
		float64(c.F10)*with1 +
		float64(c.F01)*with2
}

// VarHT returns VAR[D̂^(HT)] = D(1/(p1p2) − 1) for a union of size D
// (§8.1).
func (e DistinctEstimator) VarHT(d float64) float64 {
	return d * (1/(e.P1*e.P2) - 1)
}

// VarL returns VAR[D̂^(L)] for a union of size D and Jaccard coefficient J
// (§8.1): D·J·VAR[OR^L|(1,1)] + D(1−J)·VAR[OR^L|(1,0)].
func (e DistinctEstimator) VarL(d, j float64) float64 {
	return d*j*estimator.VarORL11(e.P1, e.P2) + d*(1-j)*estimator.VarORL10(e.P1, e.P2)
}

// EstimateDistinct runs the full §8.1 pipeline: sample both sets with
// independent known seeds, categorize the union of samples, and return the
// counts. Keys are filtered by sel (nil selects all).
func EstimateDistinct(n1, n2 map[dataset.Key]bool, p1, p2 float64, seeder xhash.Seeder, sel func(dataset.Key) bool) DistinctCounts {
	inSample := func(instance int, members map[dataset.Key]bool, p float64, h dataset.Key) bool {
		return members[h] && seeder.Seed(instance, uint64(h)) < p
	}
	var c DistinctCounts
	consider := func(h dataset.Key) {
		if sel != nil && !sel(h) {
			return
		}
		s1 := inSample(0, n1, p1, h)
		s2 := inSample(1, n2, p2, h)
		if !s1 && !s2 {
			return
		}
		u1 := seeder.Seed(0, uint64(h))
		u2 := seeder.Seed(1, uint64(h))
		c.Add(Categorize(s1, s2, u1, u2, p1, p2))
	}
	// The counts are integers, so any union order gives the same answer —
	// but the iteration goes through sortedUnionKeys anyway: every union
	// walk in this package is deterministic, so none of them can drift
	// into float accumulation without tripping summarylint.
	for _, h := range sortedUnionKeys(n1, n2) {
		consider(h)
	}
	return c
}

// RequiredPHT returns the sampling probability p (p1 = p2 = p) needed for
// the HT distinct-count estimator to reach coefficient of variation cv on
// two sets of size n with Jaccard coefficient j (Figure 6 analysis):
// cv² = (1/p² − 1)/N with N = 2n/(1+j).
func RequiredPHT(n, j, cv float64) float64 {
	bigN := 2 * n / (1 + j)
	p := 1 / math.Sqrt(cv*cv*bigN+1)
	return math.Min(1, p)
}

// RequiredPL returns the sampling probability needed by the L estimator for
// the same target, solved by bisection on the exact per-key variances.
func RequiredPL(n, j, cv float64) float64 {
	bigN := 2 * n / (1 + j)
	cvAt := func(p float64) float64 {
		e := DistinctEstimator{P1: p, P2: p}
		return math.Sqrt(e.VarL(bigN, j)) / bigN
	}
	if cvAt(1) > cv {
		return 1
	}
	// cv(p) decreases in p; find the crossing.
	return stats.Bisect(1e-12, 1, 200, func(p float64) float64 {
		return cv - cvAt(p) // negative while cv(p) > target
	})
}

// SampleSizePoint is one point of the Figure 6 curves: the expected
// per-instance sample size s = p·n required to hit the target cv.
type SampleSizePoint struct {
	N     float64
	SHT   float64
	SL    float64
	Ratio float64
}

// SampleSizeCurve evaluates the required sample sizes over a range of set
// sizes for a fixed Jaccard coefficient and cv target.
func SampleSizeCurve(ns []float64, j, cv float64) []SampleSizePoint {
	out := make([]SampleSizePoint, 0, len(ns))
	for _, n := range ns {
		pht := RequiredPHT(n, j, cv)
		pl := RequiredPL(n, j, cv)
		pt := SampleSizePoint{N: n, SHT: pht * n, SL: pl * n}
		if pt.SHT > 0 {
			pt.Ratio = pt.SL / pt.SHT
		}
		out = append(out, pt)
	}
	return out
}

// Validate checks the estimator's probabilities.
func (e DistinctEstimator) Validate() error {
	if !(e.P1 > 0 && e.P1 <= 1 && e.P2 > 0 && e.P2 <= 1) {
		return fmt.Errorf("aggregate: sampling probabilities (%v, %v) outside (0,1]", e.P1, e.P2)
	}
	return nil
}
