package aggregate

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Min-dominance and L1 distance (§7): Σ min(v1, v2) and the Manhattan
// distance Σ |v1 − v2|. Under weighted sampling, min(v(h)) is determined
// exactly when both entries are sampled — and for any vector with a
// positive minimum, that event has positive probability — so the
// inverse-probability estimator exists and is Pareto optimal (a
// nonnegative estimator must vanish on all other outcomes, §4).
//
// The L1 distance itself admits no nonnegative unbiased estimator over
// weighted samples (the range argument of §2.3), but since
// |v1 − v2| = max − min, the difference of the Σmax and Σmin estimators is
// an unbiased — though possibly negative — estimate. That is what
// L1Distance returns; the signedness is the price §2.3 proves unavoidable.

// MinHTPPS is the per-key inverse-probability estimator of min(v1, v2)
// under independent PPS sampling: positive only when both entries are
// sampled.
func MinHTPPS(o estimator.PPSOutcome) float64 {
	if o.R() != 2 {
		panic("aggregate: MinHTPPS requires r=2")
	}
	if !o.Sampled[0] || !o.Sampled[1] {
		return 0
	}
	mn := math.Min(o.Values[0], o.Values[1])
	if mn <= 0 {
		return 0
	}
	p := math.Min(1, o.Values[0]/o.Tau[0]) * math.Min(1, o.Values[1]/o.Tau[1])
	return mn / p
}

// MinDominanceResult carries a Σmin estimate with its ground truth.
type MinDominanceResult struct {
	HT       float64
	Truth    float64
	KeysUsed int
}

// EstimateMinDominance estimates Σ_{h∈sel} min(v1(h), v2(h)) from two
// independent PPS samples with known seeds.
func EstimateMinDominance(m *dataset.Matrix, tau1, tau2 float64, seeder xhash.Seeder, sel func(dataset.Key) bool) (MinDominanceResult, error) {
	if m.R() != 2 {
		return MinDominanceResult{}, fmt.Errorf("aggregate: min dominance needs 2 instances, got %d", m.R())
	}
	seedFn := func(instance int) sampling.SeedFunc {
		return func(h dataset.Key) float64 { return seeder.Seed(instance, uint64(h)) }
	}
	s1 := sampling.PoissonPPS(m.Instances[0], tau1, seedFn(0))
	s2 := sampling.PoissonPPS(m.Instances[1], tau2, seedFn(1))
	var res MinDominanceResult
	tau := []float64{tau1, tau2}
	// Ascending key order (not map order): res.HT accumulates floats, so
	// the walk must be deterministic for bit-identical estimates.
	for _, h := range sortedUnionKeys(s1.Values) {
		v1 := s1.Values[h]
		v2, ok := s2.Values[h]
		if !ok || (sel != nil && !sel(h)) {
			continue
		}
		o := estimator.PPSOutcome{
			Tau:     tau,
			U:       []float64{seeder.Seed(0, uint64(h)), seeder.Seed(1, uint64(h))},
			Sampled: []bool{true, true},
			Values:  []float64{v1, v2},
		}
		res.HT += MinHTPPS(o)
		res.KeysUsed++
	}
	res.Truth = m.SumAggregate(dataset.Min, sel)
	return res, nil
}

// L1Result carries the decomposed L1 estimate.
type L1Result struct {
	// Estimate is Σmax(L) − Σmin(HT): unbiased for the L1 distance, but
	// can be negative on unlucky draws (§2.3 proves no nonnegative
	// unbiased estimator exists for this query over weighted samples).
	Estimate float64
	// MaxPart and MinPart are the two components.
	MaxPart, MinPart float64
	// Truth is the exact Σ|v1−v2| over the selected keys.
	Truth float64
}

// EstimateL1Distance estimates the Manhattan distance between two
// instances from their independent PPS samples with known seeds, via the
// Σmax − Σmin decomposition.
func EstimateL1Distance(m *dataset.Matrix, tau1, tau2 float64, seeder xhash.Seeder, sel func(dataset.Key) bool) (L1Result, error) {
	maxRes, err := EstimateMaxDominance(m, tau1, tau2, seeder, sel)
	if err != nil {
		return L1Result{}, err
	}
	minRes, err := EstimateMinDominance(m, tau1, tau2, seeder, sel)
	if err != nil {
		return L1Result{}, err
	}
	return L1Result{
		Estimate: maxRes.L - minRes.HT,
		MaxPart:  maxRes.L,
		MinPart:  minRes.HT,
		Truth:    m.SumAggregate(dataset.Range, sel),
	}, nil
}
