package aggregate

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xhash"
)

// Coordinated (shared-seed) distinct counting, the §7.2 contrast to the
// independent-sample estimators of §8.1. With one shared seed u(h) per key
// and equal sampling probability p, a key of the union is sampled in
// *every* set containing it exactly when u(h) < p. The outcome therefore
// reveals, for each key with u(h) < p, its exact membership pattern — an
// "all or nothing" structure for which plain HT is optimal, with per-key
// variance 1/p − 1 instead of the independent-sample 1/p² − 1.

// CoordinatedDistinct estimates |N1 ∪ … ∪ Nr| from shared-seed samples of
// the sets with common probability p. It returns the estimate and the
// number of keys observed in any sample.
func CoordinatedDistinct(sets []map[dataset.Key]bool, p float64, seeder xhash.Seeder, sel func(dataset.Key) bool) (float64, int, error) {
	if !seeder.Shared {
		return 0, 0, fmt.Errorf("aggregate: CoordinatedDistinct requires a shared-seed seeder")
	}
	if !(p > 0 && p <= 1) {
		return 0, 0, fmt.Errorf("aggregate: sampling probability %v outside (0,1]", p)
	}
	seen := make(map[dataset.Key]bool)
	count := 0
	for _, set := range sets {
		for h := range set {
			if seen[h] || (sel != nil && !sel(h)) {
				continue
			}
			seen[h] = true
			// Shared seed: membership in any set implies membership in
			// its sample iff u(h) < p; one check covers all sets.
			if seeder.Seed(0, uint64(h)) < p {
				count++
			}
		}
	}
	return float64(count) / p, count, nil
}

// VarCoordinatedDistinct is the exact variance of the coordinated
// estimator for a union of size d: d·(1/p − 1) — the binomial count
// variance, independent of the Jaccard coefficient.
func VarCoordinatedDistinct(d, p float64) float64 {
	return d * (1/p - 1)
}
