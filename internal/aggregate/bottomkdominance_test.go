package aggregate

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simdata"
	"repro/internal/xhash"
)

// TestBottomKDominanceUnbiased verifies the §8.2 claim that the pipeline
// works unchanged for priority samples: rank conditioning keeps both
// estimators unbiased.
func TestBottomKDominanceUnbiased(t *testing.T) {
	m := simdata.Generate(simdata.TrafficConfig{
		SharedKeys: 150, Only1: 50, Only2: 50,
		Alpha: 1.4, MeanValue: 12, Jitter: 0.7, Seed: 23,
	})
	truth := m.SumAggregate(dataset.Max, nil)
	const trials = 4000
	var sumHT, sumL float64
	for i := 0; i < trials; i++ {
		res, err := EstimateMaxDominanceBottomK(m, 50, xhash.Seeder{Salt: uint64(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sampled1 != 50 || res.Sampled2 != 50 {
			t.Fatalf("sample sizes %d, %d, want 50", res.Sampled1, res.Sampled2)
		}
		sumHT += res.HT
		sumL += res.L
	}
	if got := sumHT / trials; math.Abs(got-truth)/truth > 0.05 {
		t.Errorf("HT mean %v, want %v", got, truth)
	}
	if got := sumL / trials; math.Abs(got-truth)/truth > 0.03 {
		t.Errorf("L mean %v, want %v", got, truth)
	}
}

// TestBottomKDominanceLBeatsHT: the partial-information advantage holds
// under priority sampling too, with a similar factor as Poisson PPS
// (Figure 7's "results are same for priority sampling").
func TestBottomKDominanceLBeatsHT(t *testing.T) {
	m := simdata.Generate(simdata.ScaledTraffic(100))
	truth := m.SumAggregate(dataset.Max, nil)
	var mseHT, mseL float64
	const trials = 2500
	for i := 0; i < trials; i++ {
		res, err := EstimateMaxDominanceBottomK(m, 40, xhash.Seeder{Salt: 31 + uint64(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		mseHT += (res.HT - truth) * (res.HT - truth)
		mseL += (res.L - truth) * (res.L - truth)
	}
	ratio := mseHT / mseL
	if ratio < 1.8 {
		t.Errorf("MSE ratio %v, expected ≈2.4–2.8 as with Poisson PPS", ratio)
	}
}

func TestBottomKDominanceErrors(t *testing.T) {
	if _, err := EstimateMaxDominanceBottomK(dataset.FigureFive(), 3, xhash.Seeder{}, nil); err == nil {
		t.Error("expected error for r≠2")
	}
}
