package aggregate

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// Max-dominance from bottom-k (priority) samples. §8.2 notes the Figure 7
// results "are same for priority sampling": conditioned on the (k+1)-st
// smallest rank τ_r of each instance (rank conditioning, §7.1), a priority
// sample behaves like a Poisson PPS sample with weight-scale threshold
// τ* = 1/τ_r, so the per-key PPS estimators apply unchanged with the
// conditioned thresholds.

// EstimateMaxDominanceBottomK draws a bottom-k priority sample of each
// instance (PPS ranks, hash-derived known seeds) and estimates
// Σ max(v1(h), v2(h)) with the HT and L estimators under rank
// conditioning.
func EstimateMaxDominanceBottomK(m *dataset.Matrix, k int, seeder xhash.Seeder, sel func(dataset.Key) bool) (DominanceResult, error) {
	if m.R() != 2 {
		return DominanceResult{}, fmt.Errorf("aggregate: max dominance needs 2 instances, got %d", m.R())
	}
	seedFn := func(instance int) sampling.SeedFunc {
		return func(h dataset.Key) float64 { return seeder.Seed(instance, uint64(h)) }
	}
	s1 := sampling.BottomK(m.Instances[0], k, sampling.PPS{}, seedFn(0))
	s2 := sampling.BottomK(m.Instances[1], k, sampling.PPS{}, seedFn(1))
	// Conditioned PPS thresholds: rank < τ_r ⟺ u/v < τ_r ⟺ v ≥ u/τ_r.
	tau := []float64{1 / s1.Tau, 1 / s2.Tau}
	res := DominanceResult{Sampled1: s1.Len(), Sampled2: s2.Len()}
	consider := func(h dataset.Key) {
		if sel != nil && !sel(h) {
			return
		}
		o := estimator.PPSOutcome{
			Tau:     tau,
			U:       []float64{seeder.Seed(0, uint64(h)), seeder.Seed(1, uint64(h))},
			Sampled: make([]bool, 2),
			Values:  make([]float64, 2),
		}
		if v, ok := s1.Values[h]; ok {
			o.Sampled[0], o.Values[0] = true, v
		}
		if v, ok := s2.Values[h]; ok {
			o.Sampled[1], o.Values[1] = true, v
		}
		res.HT += estimator.MaxHTPPS(o)
		res.L += estimator.MaxL2PPS(o)
	}
	// Ascending key order (not map order): the float sums must be
	// bit-identical across runs. The union is already deduplicated.
	for _, h := range sortedUnionKeys(s1.Values, s2.Values) {
		consider(h)
	}
	res.Truth = m.SumAggregate(dataset.Max, sel)
	return res, nil
}
