package aggregate

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// DominanceResult holds the max-dominance estimates of §8.2 alongside the
// ground truth and sample footprint.
type DominanceResult struct {
	// HT and L are the sum-aggregate estimates Σ_h max^(HT/L)(h).
	HT, L float64
	// Truth is the exact Σ_h max(v1(h), v2(h)) over the selected keys.
	Truth float64
	// Sampled1 and Sampled2 are the realized per-instance sample sizes.
	Sampled1, Sampled2 int
}

// EstimateMaxDominance runs the §8.2 pipeline on a two-instance matrix:
// draw an independent Poisson PPS sample of each instance with hash-derived
// (known) seeds and thresholds tau1, tau2, then sum the per-key max^(HT)
// and max^(L) estimates over keys selected by sel (nil selects all).
//
// Keys absent from both samples contribute 0 — their estimates are
// identically zero, so the sums are computable from the samples alone.
func EstimateMaxDominance(m *dataset.Matrix, tau1, tau2 float64, seeder xhash.Seeder, sel func(dataset.Key) bool) (DominanceResult, error) {
	if m.R() != 2 {
		return DominanceResult{}, fmt.Errorf("aggregate: max dominance needs 2 instances, got %d", m.R())
	}
	seedFn := func(instance int) sampling.SeedFunc {
		return func(h dataset.Key) float64 { return seeder.Seed(instance, uint64(h)) }
	}
	s1 := sampling.PoissonPPS(m.Instances[0], tau1, seedFn(0))
	s2 := sampling.PoissonPPS(m.Instances[1], tau2, seedFn(1))
	res := DominanceResult{Sampled1: s1.Len(), Sampled2: s2.Len()}
	tau := []float64{tau1, tau2}
	consider := func(h dataset.Key) {
		if sel != nil && !sel(h) {
			return
		}
		o := estimator.PPSOutcome{
			Tau:     tau,
			U:       []float64{seeder.Seed(0, uint64(h)), seeder.Seed(1, uint64(h))},
			Sampled: make([]bool, 2),
			Values:  make([]float64, 2),
		}
		if v, ok := s1.Values[h]; ok {
			o.Sampled[0], o.Values[0] = true, v
		}
		if v, ok := s2.Values[h]; ok {
			o.Sampled[1], o.Values[1] = true, v
		}
		res.HT += estimator.MaxHTPPS(o)
		res.L += estimator.MaxL2PPS(o)
	}
	// Ascending key order (not map order): the float sums must be
	// bit-identical across runs. The union is already deduplicated.
	for _, h := range sortedUnionKeys(s1.Values, s2.Values) {
		consider(h)
	}
	res.Truth = m.SumAggregate(dataset.Max, sel)
	return res, nil
}

// DominanceVariance computes the exact variance of the two sum-aggregate
// estimators by per-key seed-space integration (estimates of different keys
// are independent, so variances add). It returns (VAR[Σ max^HT],
// VAR[Σ max^L], Σ max).
func DominanceVariance(m *dataset.Matrix, tau1, tau2 float64, sel func(dataset.Key) bool, n int) (varHT, varL, total float64, err error) {
	if m.R() != 2 {
		return 0, 0, 0, fmt.Errorf("aggregate: max dominance needs 2 instances, got %d", m.R())
	}
	tau := []float64{tau1, tau2}
	opt := estimator.PPSMomentsOptions{N: n, ZeroOnEmpty: true}
	for _, h := range m.Keys() {
		if sel != nil && !sel(h) {
			continue
		}
		v := m.Vector(h)
		_, vh := estimator.PPSMoments2(v, tau, estimator.MaxHTPPS, opt)
		_, vl := estimator.PPSMoments2(v, tau, estimator.MaxL2PPS, opt)
		varHT += vh
		varL += vl
		total += math.Max(v[0], v[1])
	}
	return varHT, varL, total, nil
}

// TauForFraction returns the PPS threshold that samples the given fraction
// of an instance's keys in expectation.
func TauForFraction(in dataset.Instance, fraction float64) float64 {
	return sampling.TauForExpectedSize(in, fraction*float64(len(in)))
}
