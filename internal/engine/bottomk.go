package engine

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// BottomK is a sharded streaming bottom-k summarizer. Push offers arrivals,
// Close drains the pipeline and returns the merged sample, Snapshot
// materializes the sample of the pairs pushed so far without closing. The
// results are identical to feeding the same stream (or prefix) through one
// sequential sampling.StreamBottomK (see sampling.MergeBottomK for why the
// merge is exact).
//
// Push, Snapshot, Stats, and Close must be called from a single producer
// goroutine; the parallelism is internal. The seed function is shared by
// all shard workers and must be safe for concurrent use (hash-derived
// seeds are pure functions and qualify).
type BottomK struct {
	k   int
	fam sampling.RankFamily
	pipeline[Pair, *sampling.StreamBottomK]
}

// NewBottomK returns a bottom-k summarization pipeline of size k over the
// given rank family and seed function.
func NewBottomK(k int, fam sampling.RankFamily, seed sampling.SeedFunc, cfg Config) *BottomK {
	return &BottomK{k: k, fam: fam, pipeline: newPipeline(cfg,
		func() *sampling.StreamBottomK { return sampling.NewStreamBottomK(k, fam, seed) },
		func(p Pair) dataset.Key { return p.Key },
		func(s *sampling.StreamBottomK, p Pair) { s.Push(p.Key, p.Value) },
	)}
}

// Push offers one (key, value) arrival.
func (e *BottomK) Push(h dataset.Key, v float64) {
	e.pipeline.Push(Pair{Key: h, Value: v})
}

// TryPush offers one arrival without blocking: where Push would stall on a
// full shard queue, TryPush returns ErrQueueFull and drops nothing already
// accepted. Rejections are counted in Stats().Rejected.
func (e *BottomK) TryPush(h dataset.Key, v float64) error {
	return e.pipeline.TryPush(Pair{Key: h, Value: v})
}

// Snapshot quiesces the pipeline and returns the merged bottom-k sample of
// exactly the pairs pushed so far — equal to a sequential pass over that
// prefix. The pipeline remains usable afterwards.
func (e *BottomK) Snapshot() *sampling.WeightedSample {
	return mergeBottomKSamplers(e.k, e.fam, e.samplers())
}

// Close flushes buffered batches, waits for the shard workers, and returns
// the merged bottom-k sample. The pipeline is unusable afterwards.
func (e *BottomK) Close() *sampling.WeightedSample {
	return mergeBottomKSamplers(e.k, e.fam, e.close())
}

// mergeBottomKSamplers merges per-shard bottom-k samplers into the global
// sample without consuming them (Entries and Snapshot leave samplers
// usable, which Snapshot-then-resume relies on).
func mergeBottomKSamplers(k int, fam sampling.RankFamily, samplers []*sampling.StreamBottomK) *sampling.WeightedSample {
	if len(samplers) == 1 {
		return samplers[0].Snapshot()
	}
	groups := make([][]sampling.Entry, len(samplers))
	for i, s := range samplers {
		groups[i] = s.Entries()
	}
	return sampling.MergeBottomK(k, fam, groups...)
}

// SummarizeBottomK runs a materialized instance through a bottom-k pipeline
// with the given config. With the zero Config this is the sequential
// baseline; with Parallel it is the sharded pipeline. Both return the same
// sample.
func SummarizeBottomK(in dataset.Instance, k int, fam sampling.RankFamily, seed sampling.SeedFunc, cfg Config) *sampling.WeightedSample {
	e := NewBottomK(k, fam, seed, cfg)
	for h, v := range in {
		e.Push(h, v)
	}
	return e.Close()
}

// MultiBottomK summarizes r instances of dispersed data in one pass over a
// combined MultiPair stream: each shard worker hosts r bottom-k samplers
// behind the single hash router, so all instances are summarized with one
// scan. Per-instance results are bit-identical to r independent sequential
// passes. seeds(i) supplies instance i's seed function: hand every
// instance the same function for coordinated (shared-seed) samples,
// distinct per-instance functions for independent samples.
type MultiBottomK struct {
	r   int
	k   int
	fam sampling.RankFamily
	pipeline[MultiPair, *instanceGroup[*sampling.StreamBottomK]]
}

// NewMultiBottomK returns a one-pass bottom-k summarization pipeline over
// r instances.
func NewMultiBottomK(r, k int, fam sampling.RankFamily, seeds func(instance int) sampling.SeedFunc, cfg Config) *MultiBottomK {
	if r <= 0 {
		panic("engine: NewMultiBottomK with non-positive instance count")
	}
	return &MultiBottomK{r: r, k: k, fam: fam, pipeline: newPipeline(cfg,
		func() *instanceGroup[*sampling.StreamBottomK] {
			return newInstanceGroup(r, func(i int) *sampling.StreamBottomK {
				return sampling.NewStreamBottomK(k, fam, seeds(i))
			})
		},
		func(m MultiPair) dataset.Key { return m.Key },
		func(g *instanceGroup[*sampling.StreamBottomK], m MultiPair) { g.by[m.Instance].Push(m.Key, m.Value) },
	)}
}

// Instances returns r, the number of summarized instances.
func (e *MultiBottomK) Instances() int { return e.r }

// Push offers one (key, value) arrival of the given instance (0 ≤
// instance < r).
func (e *MultiBottomK) Push(instance int, h dataset.Key, v float64) {
	checkInstance(instance, e.r)
	e.pipeline.Push(MultiPair{Key: h, Instance: instance, Value: v})
}

// TryPush offers one arrival of the given instance without blocking,
// returning ErrQueueFull where Push would stall (counted in
// Stats().Rejected).
func (e *MultiBottomK) TryPush(instance int, h dataset.Key, v float64) error {
	checkInstance(instance, e.r)
	return e.pipeline.TryPush(MultiPair{Key: h, Instance: instance, Value: v})
}

// PushBatch offers a slice of combined-stream arrivals.
func (e *MultiBottomK) PushBatch(ms []MultiPair) {
	for _, m := range ms {
		e.Push(m.Instance, m.Key, m.Value)
	}
}

// Snapshot quiesces the pipeline and returns the per-instance samples of
// exactly the pairs pushed so far, indexed by instance. The pipeline
// remains usable afterwards.
func (e *MultiBottomK) Snapshot() []*sampling.WeightedSample {
	return e.merge(e.samplers())
}

// Close drains the pipeline and returns the per-instance samples, indexed
// by instance. The pipeline is unusable afterwards.
func (e *MultiBottomK) Close() []*sampling.WeightedSample {
	return e.merge(e.pipeline.close())
}

func (e *MultiBottomK) merge(groups []*instanceGroup[*sampling.StreamBottomK]) []*sampling.WeightedSample {
	out := make([]*sampling.WeightedSample, e.r)
	per := make([]*sampling.StreamBottomK, len(groups))
	for i := 0; i < e.r; i++ {
		for gi, g := range groups {
			per[gi] = g.by[i]
		}
		out[i] = mergeBottomKSamplers(e.k, e.fam, per)
	}
	return out
}

// SummarizeMultiBottomK runs r materialized instances through a one-pass
// multi-instance bottom-k pipeline: ins[i] is summarized with seeds(i).
// The result equals []{SummarizeBottomK(ins[i], k, fam, seeds(i), cfg)}
// bit for bit, at the cost of one scan instead of r.
func SummarizeMultiBottomK(ins []dataset.Instance, k int, fam sampling.RankFamily, seeds func(instance int) sampling.SeedFunc, cfg Config) []*sampling.WeightedSample {
	e := NewMultiBottomK(len(ins), k, fam, seeds, cfg)
	for i, in := range ins {
		for h, v := range in {
			e.Push(i, h, v)
		}
	}
	return e.Close()
}

// checkInstance bounds-checks a multi-stream instance index on the
// producer side, before the pair crosses into a worker goroutine.
func checkInstance(instance, r int) {
	if instance < 0 || instance >= r {
		panic(fmt.Sprintf("engine: instance %d out of range [0,%d)", instance, r))
	}
}
