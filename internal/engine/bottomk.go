package engine

import (
	"repro/internal/dataset"
	"repro/internal/sampling"
)

// BottomK is a sharded streaming bottom-k summarizer. Push offers arrivals,
// Close drains the pipeline and returns the merged sample. The result is
// identical to feeding the whole stream through one sampling.StreamBottomK
// (see sampling.MergeBottomK for why the merge is exact).
//
// Push and Close must be called from a single producer goroutine; the
// parallelism is internal. The seed function is shared by all shard workers
// and must be safe for concurrent use (hash-derived seeds are pure
// functions and qualify).
type BottomK struct {
	k   int
	fam sampling.RankFamily
	pipeline[*sampling.StreamBottomK]
}

// NewBottomK returns a bottom-k summarization pipeline of size k over the
// given rank family and seed function.
func NewBottomK(k int, fam sampling.RankFamily, seed sampling.SeedFunc, cfg Config) *BottomK {
	return &BottomK{k: k, fam: fam, pipeline: newPipeline(cfg, func() *sampling.StreamBottomK {
		return sampling.NewStreamBottomK(k, fam, seed)
	})}
}

// Close flushes buffered batches, waits for the shard workers, and returns
// the merged bottom-k sample. The pipeline is unusable afterwards.
func (e *BottomK) Close() *sampling.WeightedSample {
	samplers := e.close()
	if len(samplers) == 1 {
		return samplers[0].Snapshot()
	}
	groups := make([][]sampling.Entry, len(samplers))
	for i, s := range samplers {
		groups[i] = s.Entries()
	}
	return sampling.MergeBottomK(e.k, e.fam, groups...)
}

// SummarizeBottomK runs a materialized instance through a bottom-k pipeline
// with the given config. With the zero Config this is the sequential
// baseline; with Parallel it is the sharded pipeline. Both return the same
// sample.
func SummarizeBottomK(in dataset.Instance, k int, fam sampling.RankFamily, seed sampling.SeedFunc, cfg Config) *sampling.WeightedSample {
	e := NewBottomK(k, fam, seed, cfg)
	for h, v := range in {
		e.Push(h, v)
	}
	return e.Close()
}
