// Package engine is the sharded, batched summarization pipeline: the
// throughput layer between raw (key, value) arrivals and the sampling
// substrates of internal/sampling.
//
// A summarizer hash-partitions keys across a configurable number of shards,
// each served by a worker goroutine running an independent sequential
// sampler (StreamBottomK for bottom-k / order sampling, StreamPoissonPPS
// for Poisson PPS). Arrivals are handed to workers in batches to amortize
// channel synchronization. On Close the per-shard samples are merged into a
// summary identical to what one sequential pass over the whole stream would
// have produced: ranks and inclusion tests depend only on the shared seed
// function, never on arrival order or shard assignment, so the merge is
// well-defined and exact (sampling.MergeBottomK).
//
// The zero Config routes everything through a single sequential sampler
// with no goroutines — the safe default for small instances — while
// Config{Parallel: true} fans out across GOMAXPROCS workers. This is the
// seam later ingest backends (files, sockets, queues) plug into: anything
// that can produce Pair values can saturate the pipeline.
package engine

import (
	"runtime"

	"repro/internal/dataset"
	"repro/internal/xhash"
)

// DefaultBatchSize is the number of pairs buffered per shard before they
// are handed to the shard's worker. 1024 pairs ≈ 16 KiB per batch: large
// enough to amortize channel operations, small enough to keep workers busy.
const DefaultBatchSize = 1024

// batchQueueDepth is the per-shard channel capacity, in batches. A small
// queue lets the producer run ahead of a momentarily busy worker without
// unbounded buffering.
const batchQueueDepth = 8

// Config selects the execution strategy of a summarization pipeline. The
// zero value means sequential: one sampler, no goroutines, byte-identical
// to calling the internal/sampling streams directly.
type Config struct {
	// Parallel enables the sharded pipeline. When false the other fields
	// are ignored and the engine degenerates to a single in-line sampler.
	Parallel bool
	// Shards is the number of hash partitions (and worker goroutines) when
	// Parallel; 0 means GOMAXPROCS.
	Shards int
	// BatchSize is the number of pairs buffered per shard between channel
	// sends; 0 means DefaultBatchSize.
	BatchSize int
}

// NumShards resolves the effective shard count.
func (c Config) NumShards() int {
	if !c.Parallel {
		return 1
	}
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveBatchSize resolves the effective batch size.
func (c Config) EffectiveBatchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// Pair is one (key, value) arrival. Streams feed the engine as Pair values;
// the instances×keys model assigns one value per key per instance, so a key
// must arrive at most once per stream.
type Pair struct {
	Key   dataset.Key
	Value float64
}

// shardOf routes a key to its shard. The route is a pure function of the
// key, so re-feeding a stream in any order reproduces the same partition;
// the merged result is independent of the partition anyway, but stable
// routing keeps per-shard load deterministic. Mix64 decorrelates the route
// from the seed hashes (which mix the key with a salt via Hash2).
func shardOf(h dataset.Key, shards int) int {
	return int(xhash.Mix64(uint64(h)) % uint64(shards))
}
