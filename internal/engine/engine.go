// Package engine is the sharded, batched summarization pipeline: the
// throughput layer between raw (key, value) arrivals and the sampling
// substrates of internal/sampling.
//
// A summarizer hash-partitions keys across a configurable number of shards,
// each served by a worker goroutine running independent sequential
// samplers (StreamBottomK for bottom-k / order sampling, StreamPoissonPPS
// for Poisson PPS). Arrivals are handed to workers in batches to amortize
// channel synchronization. On Close the per-shard samples are merged into a
// summary identical to what one sequential pass over the whole stream would
// have produced: ranks and inclusion tests depend only on the shared seed
// function, never on arrival order or shard assignment, so the merge is
// well-defined and exact (sampling.MergeBottomK).
//
// # Execution modes
//
// The zero Config routes everything through a single in-line sequential
// sampler with no goroutines — the safe default for small instances.
// Config{Parallel: true} fans out across GOMAXPROCS workers; Push then
// does no sampling work itself, it only routes batches.
//
// Config{Async: true} additionally decouples the producer from the
// samplers even when there is only one shard, and makes the backpressure
// contract explicit: every shard has a bounded queue of QueueDepth
// batches, and Push never blocks beyond that bound — a Push stalls only
// while the destination shard's queue is full, i.e. at most until the
// worker drains one batch, and every stall is counted in Stats().Stalls.
// Memory is bounded by shards × (QueueDepth+2) × BatchSize buffered pairs
// (per shard: the producer-side buffer, the queued batches, and the batch
// the worker is applying).
// Close always drains: the summary it returns holds every pushed pair and
// is bit-identical to the sync-mode (and sequential) summary. Snapshot
// quiesces the workers mid-stream and returns the summary of exactly the
// pairs pushed so far, equal to a sequential pass over that prefix.
//
// # Multi-instance summarization
//
// The Multi variants summarize r instances of dispersed data in ONE pass
// over a combined MultiPair stream: each shard worker hosts one sampler
// per instance behind the same hash router, so an r-instance ingest costs
// one scan instead of r. The per-instance results are bit-identical to r
// independent sequential passes. Seed assignment decides the joint
// distribution: hand every instance the same SeedFunc for coordinated
// (shared-seed, §7.2) samples, per-instance seeds for the independent
// joint distribution of §4–§6.
//
// This is the seam ingest backends (files, sockets, queues) plug into:
// anything that can produce Pair or MultiPair values can saturate the
// pipeline.
package engine

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/xhash"
)

// ErrQueueFull reports a TryPush that found its destination shard's
// bounded queue full with a full batch to hand off. It is the typed
// backpressure signal of the non-blocking producer path: lossy producers
// (live taps, UDP-style feeds) drop the arrival and move on instead of
// stalling, and every rejection is counted in Stats().Rejected.
var ErrQueueFull = errors.New("engine: shard queue full")

// DefaultBatchSize is the number of pairs buffered per shard before they
// are handed to the shard's worker. 1024 pairs ≈ 16 KiB per batch: large
// enough to amortize channel operations, small enough to keep workers busy.
const DefaultBatchSize = 1024

// DefaultQueueDepth is the per-shard queue capacity, in batches. A small
// queue lets the producer run ahead of a momentarily busy worker without
// unbounded buffering.
const DefaultQueueDepth = 8

// Config selects the execution strategy of a summarization pipeline. The
// zero value means sequential: one sampler, no goroutines, byte-identical
// to calling the internal/sampling streams directly.
//
// Zero-valued fields select documented defaults (see each field); negative
// values are meaningless and rejected by Validate. Pipeline constructors
// panic on an invalid Config — callers that accept user-supplied settings
// (command-line flags, request parameters) should call Validate first and
// surface the error.
type Config struct {
	// Parallel enables the sharded pipeline. When false (and Async is
	// false) the engine degenerates to a single in-line sampler.
	Parallel bool
	// Shards is the number of hash partitions (and worker goroutines) when
	// Parallel; 0 means GOMAXPROCS.
	Shards int
	// BatchSize is the number of pairs buffered per shard between channel
	// sends; 0 means DefaultBatchSize.
	BatchSize int
	// Async decouples the producer from the samplers even on a one-shard
	// pipeline and bounds the time Push may block: a Push stalls only
	// while the destination shard's bounded queue is full (at most until
	// the worker drains one batch), and stalls are counted in
	// Stats().Stalls — the engine's explicit backpressure signal.
	Async bool
	// QueueDepth is the per-shard queue capacity in batches; 0 means
	// DefaultQueueDepth.
	QueueDepth int
}

// ConfigError reports a Config field set to a meaningless (negative)
// value. It is the typed error behind Config.Validate, so flag handling
// in commands and request validation in services share one rule.
type ConfigError struct {
	// Field is the offending Config field name.
	Field string
	// Value is the rejected value.
	Value int
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("engine: Config.%s must not be negative, got %d (0 selects the default)", e.Field, e.Value)
}

// Validate rejects meaningless settings with a typed *ConfigError. The
// rule, in one place for every caller: negative Shards, BatchSize, or
// QueueDepth are errors; zero always means "use the default" (GOMAXPROCS
// shards, DefaultBatchSize, DefaultQueueDepth).
func (c Config) Validate() error {
	if c.Shards < 0 {
		return &ConfigError{Field: "Shards", Value: c.Shards}
	}
	if c.BatchSize < 0 {
		return &ConfigError{Field: "BatchSize", Value: c.BatchSize}
	}
	if c.QueueDepth < 0 {
		return &ConfigError{Field: "QueueDepth", Value: c.QueueDepth}
	}
	return nil
}

// NumShards resolves the effective shard count.
func (c Config) NumShards() int {
	if !c.Parallel {
		return 1
	}
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveBatchSize resolves the effective batch size.
func (c Config) EffectiveBatchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// EffectiveQueueDepth resolves the effective per-shard queue capacity.
func (c Config) EffectiveQueueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return DefaultQueueDepth
}

// Pair is one (key, value) arrival. Streams feed the engine as Pair values;
// the instances×keys model assigns one value per key per instance, so a key
// must arrive at most once per stream.
type Pair struct {
	Key   dataset.Key
	Value float64
}

// MultiPair is one (key, instance, value) arrival of a combined
// multi-instance stream: Instance selects which of the r per-instance
// samplers consumes the pair. A (key, instance) combination must arrive
// at most once per stream.
type MultiPair struct {
	Key      dataset.Key
	Instance int
	Value    float64
}

// Stats is a point-in-time view of a pipeline's throughput and
// backpressure counters. The counters are maintained by the producer
// goroutine without synchronization, so Stats must be called from the
// same goroutine that calls Push (or after Close).
type Stats struct {
	// Pairs is the number of arrivals accepted by Push.
	Pairs uint64
	// Batches is the number of batches handed to shard workers (0 on the
	// in-line sequential path, which has no workers).
	Batches uint64
	// Stalls counts batch handoffs that found the destination shard's
	// queue full and had to wait for the worker — the backpressure signal.
	// A stall lasts at most the time the worker needs to drain one batch.
	Stalls uint64
	// Rejected counts arrivals refused by TryPush because the destination
	// shard's queue was full — the lossy-producer counterpart of Stalls
	// (blocking Push stalls; non-blocking TryPush rejects).
	Rejected uint64
	// Snapshots counts mid-stream Snapshot calls — each one quiesces the
	// shard workers, so a high rate on a hot pipeline is itself a signal.
	Snapshots uint64
	// Shards is the effective shard (worker) count; 1 on the sequential
	// path.
	Shards int
	// QueueDepth is the per-shard queue capacity in batches; 0 on the
	// in-line sequential path, which has no queues.
	QueueDepth int
}

// shardOf routes a key to its shard. The route is a pure function of the
// key, so re-feeding a stream in any order reproduces the same partition;
// the merged result is independent of the partition anyway, but stable
// routing keeps per-shard load deterministic. Mix64 decorrelates the route
// from the seed hashes (which mix the key with a salt via Hash2). Routing
// by key alone also means every instance of a multi-instance stream sees
// the same partition — per-instance merges stay exact no matter how
// instances interleave.
func shardOf(h dataset.Key, shards int) int {
	return int(xhash.Mix64(uint64(h)) % uint64(shards))
}
