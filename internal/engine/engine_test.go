package engine

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

func TestConfigDefaults(t *testing.T) {
	if got := (Config{}).NumShards(); got != 1 {
		t.Errorf("zero config shards = %d, want 1", got)
	}
	if got := (Config{Parallel: true}).NumShards(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("parallel auto shards = %d, want GOMAXPROCS", got)
	}
	if got := (Config{Parallel: true, Shards: 3}).NumShards(); got != 3 {
		t.Errorf("explicit shards = %d, want 3", got)
	}
	if got := (Config{Shards: 8}).NumShards(); got != 1 {
		t.Errorf("non-parallel config must stay sequential, got %d shards", got)
	}
	if got := (Config{}).EffectiveBatchSize(); got != DefaultBatchSize {
		t.Errorf("default batch = %d", got)
	}
	if got := (Config{BatchSize: 17}).EffectiveBatchSize(); got != 17 {
		t.Errorf("explicit batch = %d", got)
	}
}

func TestShardOfRange(t *testing.T) {
	rng := randx.New(1)
	for _, shards := range []int{1, 2, 3, 8} {
		counts := make([]int, shards)
		for i := 0; i < 4000; i++ {
			s := shardOf(dataset.Key(rng.Uint64()), shards)
			if s < 0 || s >= shards {
				t.Fatalf("shardOf out of range: %d of %d", s, shards)
			}
			counts[s]++
		}
		// Hash routing must not starve a shard on random keys.
		for i, c := range counts {
			if c == 0 {
				t.Errorf("shards=%d: shard %d received no keys", shards, i)
			}
		}
	}
}

func TestShardOfDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		h := dataset.Key(i * 7919)
		if shardOf(h, 4) != shardOf(h, 4) {
			t.Fatal("shardOf must be a pure function of the key")
		}
	}
}

func TestSummarizeBottomKInstance(t *testing.T) {
	seeder := xhash.Seeder{Salt: 5}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	rng := randx.New(9)
	in := make(dataset.Instance, 300)
	for k := dataset.Key(1); k <= 300; k++ {
		in[k] = math.Floor(1 + rng.Pareto(1, 1.3))
	}
	want := sampling.BottomK(in, 25, sampling.PPS{}, seed)
	for _, cfg := range []Config{{}, {Parallel: true, Shards: 4, BatchSize: 32}} {
		got := SummarizeBottomK(in, 25, sampling.PPS{}, seed, cfg)
		if got.Tau != want.Tau {
			t.Fatalf("cfg %+v: tau %v, want %v", cfg, got.Tau, want.Tau)
		}
		for h, v := range want.Values {
			if got.Values[h] != v {
				t.Fatalf("cfg %+v: key %d mismatch", cfg, h)
			}
		}
		if len(got.Values) != len(want.Values) {
			t.Fatalf("cfg %+v: size %d, want %d", cfg, len(got.Values), len(want.Values))
		}
	}
}

func TestUndersizedStream(t *testing.T) {
	seeder := xhash.Seeder{Salt: 2}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	e := NewBottomK(100, sampling.PPS{}, seed, Config{Parallel: true, Shards: 4})
	e.Push(1, 2)
	e.Push(2, 3)
	s := e.Close()
	if !math.IsInf(s.Tau, 1) {
		t.Errorf("tau = %v, want +Inf for undersized stream", s.Tau)
	}
	if s.Len() != 2 || s.Values[1] != 2 || s.Values[2] != 3 {
		t.Errorf("undersized sample = %+v", s.Values)
	}
}

func TestEmptyStream(t *testing.T) {
	seed := func(dataset.Key) float64 { return 0.5 }
	for _, cfg := range []Config{{}, {Parallel: true, Shards: 3}} {
		s := NewBottomK(4, sampling.PPS{}, seed, cfg).Close()
		if s.Len() != 0 || !math.IsInf(s.Tau, 1) {
			t.Errorf("cfg %+v: empty close = len %d tau %v", cfg, s.Len(), s.Tau)
		}
		p := NewPoissonPPS(10, seed, cfg).Close()
		if p.Len() != 0 {
			t.Errorf("cfg %+v: empty poisson close = len %d", cfg, p.Len())
		}
	}
}

func TestUseAfterClosePanics(t *testing.T) {
	seed := func(dataset.Key) float64 { return 0.5 }
	for _, cfg := range []Config{{}, {Parallel: true, Shards: 2}} {
		e := NewBottomK(4, sampling.PPS{}, seed, cfg)
		e.Close()
		mustPanic(t, func() { e.Push(1, 1) })
		mustPanic(t, func() { e.Close() })
		p := NewPoissonPPS(10, seed, cfg)
		p.Close()
		mustPanic(t, func() { p.Push(1, 1) })
		mustPanic(t, func() { p.Close() })
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
