package engine

import (
	"sync"

	"repro/internal/dataset"
)

// pipeline is the lifecycle shared by the engine's summarizers: the
// closed-state guard and the in-line-vs-sharded dispatch, generic over the
// stream item type T (Pair on the single-instance paths, MultiPair on the
// multi-instance paths) and the per-shard sampler state S. Summarizers
// embed it and implement only sampler construction and the type-specific
// merge; the item-level glue is two small functions — key (the hash-router
// input) and apply (how one item drives one sampler).
type pipeline[T, S any] struct {
	closed bool
	inline bool // true: seq is driven in-line, no goroutines
	seq    S
	apply  func(S, T)
	sh     *sharder[T, S]
	pairs  uint64
	snaps  uint64
}

// newPipeline builds the execution strategy selected by cfg, constructing
// per-shard sampler state with mk. It panics on an invalid Config;
// callers handling user input validate first (Config.Validate).
func newPipeline[T, S any](cfg Config, mk func() S, key func(T) dataset.Key, apply func(S, T)) pipeline[T, S] {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Async always takes the worker path, even with one shard: the point
	// is to decouple the producer from the sampling work.
	if shards := cfg.NumShards(); shards > 1 || cfg.Async {
		return pipeline[T, S]{apply: apply, sh: newSharder(shards, cfg, mk, key, apply)}
	}
	return pipeline[T, S]{inline: true, seq: mk(), apply: apply}
}

// Push offers one arrival to the pipeline.
func (p *pipeline[T, S]) Push(item T) {
	if p.closed {
		panic("engine: Push after Close")
	}
	p.pairs++
	if p.inline {
		p.apply(p.seq, item)
		return
	}
	p.sh.push(item)
}

// PushBatch offers a slice of arrivals.
func (p *pipeline[T, S]) PushBatch(items []T) {
	for _, it := range items {
		p.Push(it)
	}
}

// TryPush offers one arrival without ever blocking on a full shard queue:
// where Push would stall waiting for the worker, TryPush refuses the item
// with ErrQueueFull instead (counted in Stats().Rejected). On the in-line
// sequential path — which has no queues — it always accepts.
func (p *pipeline[T, S]) TryPush(item T) error {
	if p.closed {
		panic("engine: TryPush after Close")
	}
	if p.inline {
		p.pairs++
		p.apply(p.seq, item)
		return nil
	}
	if err := p.sh.tryPush(item); err != nil {
		return err
	}
	p.pairs++
	return nil
}

// samplers quiesces the pipeline and returns the per-shard sampler state
// for reading: on return every pushed item has been applied and the
// workers sit idle, so the producer goroutine may inspect the samplers.
// Pushing may resume afterwards. This is the substrate of Snapshot.
func (p *pipeline[T, S]) samplers() []S {
	if p.closed {
		panic("engine: Snapshot after Close")
	}
	p.snaps++
	if p.inline {
		return []S{p.seq}
	}
	return p.sh.quiesce()
}

// close marks the pipeline closed and returns the samplers to merge: the
// single in-line sampler, or every shard's state after drain.
func (p *pipeline[T, S]) close() []S {
	if p.closed {
		panic("engine: Close after Close")
	}
	p.closed = true
	if p.inline {
		return []S{p.seq}
	}
	return p.sh.drain()
}

// Stats returns the pipeline's throughput and backpressure counters. Like
// Push, it must be called from the producer goroutine (or after Close).
func (p *pipeline[T, S]) Stats() Stats {
	st := Stats{Pairs: p.pairs, Shards: 1, Snapshots: p.snaps}
	if p.sh != nil {
		st.Shards = len(p.sh.chans)
		st.QueueDepth = p.sh.depth
		st.Batches = p.sh.batches
		st.Stalls = p.sh.stalls
		st.Rejected = p.sh.rejects
	}
	return st
}

// batch is one unit of producer→worker handoff: a pooled slice of items,
// or a barrier the worker acknowledges once every earlier item of its
// shard has been applied. items points into the sharder's batch arena; the
// worker recycles it after applying (see sharder.arena).
type batch[T any] struct {
	items   *[]T
	barrier chan<- struct{}
}

// sharder is the sharded batching pipeline shared by the engines: it owns
// the per-shard buffers, bounded worker queues, and goroutines, generically
// over the item and sampler-state types. The engines own sampler
// construction and the merge.
//
// Batch slices live in a sync.Pool arena: the producer takes a slice from
// the pool, fills it, and hands it to a shard worker, which returns it to
// the pool after applying — so a steady-state producer allocates nothing
// per batch. Pool entries are *[]T (a bare []T would box the slice header
// on every Put, re-introducing the allocation the arena removes).
type sharder[T, S any] struct {
	batch    int
	depth    int
	key      func(T) dataset.Key
	bufs     []*[]T
	chans    []chan batch[T]
	samplers []S
	arena    sync.Pool
	batches  uint64
	stalls   uint64
	rejects  uint64
	wg       sync.WaitGroup
}

// newSharder spawns one worker goroutine per shard, each draining batches
// into sampler state built by mk.
func newSharder[T, S any](shards int, cfg Config, mk func() S, key func(T) dataset.Key, apply func(S, T)) *sharder[T, S] {
	sh := &sharder[T, S]{
		batch:    cfg.EffectiveBatchSize(),
		depth:    cfg.EffectiveQueueDepth(),
		key:      key,
		bufs:     make([]*[]T, shards),
		chans:    make([]chan batch[T], shards),
		samplers: make([]S, shards),
	}
	sh.arena.New = func() any {
		s := make([]T, 0, sh.batch)
		return &s
	}
	for i := 0; i < shards; i++ {
		sh.bufs[i] = sh.getBuf()
		ch := make(chan batch[T], sh.depth)
		s := mk()
		sh.chans[i] = ch
		sh.samplers[i] = s
		sh.wg.Add(1)
		go func() {
			defer sh.wg.Done()
			for b := range ch {
				if b.items != nil {
					for _, it := range *b.items {
						apply(s, it)
					}
					sh.putBuf(b.items)
				}
				if b.barrier != nil {
					b.barrier <- struct{}{}
				}
			}
		}()
	}
	return sh
}

// getBuf takes an empty batch slice from the arena.
func (sh *sharder[T, S]) getBuf() *[]T {
	return sh.arena.Get().(*[]T)
}

// putBuf recycles an applied batch slice back to the arena for the
// producer to refill.
func (sh *sharder[T, S]) putBuf(buf *[]T) {
	*buf = (*buf)[:0]
	sh.arena.Put(buf)
}

// push routes one arrival to its shard, handing the shard's batch to its
// worker when full and pulling a recycled slice from the arena.
//
//summarylint:hot
func (sh *sharder[T, S]) push(item T) {
	i := 0
	if len(sh.chans) > 1 {
		i = shardOf(sh.key(item), len(sh.chans))
	}
	buf := sh.bufs[i]
	//summarylint:ignore arena buffers carry cap=batch, so this append never grows (benchgate pins 0 allocs/op)
	*buf = append(*buf, item)
	if len(*buf) >= sh.batch {
		sh.send(i, buf)
		sh.bufs[i] = sh.getBuf()
	}
}

// send hands one full batch to a shard worker. The queue is bounded, so
// the handoff can block — at most until the worker frees one slot by
// consuming a batch — and every blocking handoff is counted as a stall:
// Stats().Stalls is the engine's explicit backpressure signal.
//
//summarylint:hot
func (sh *sharder[T, S]) send(i int, items *[]T) {
	sh.batches++
	select {
	case sh.chans[i] <- batch[T]{items: items}:
	default:
		sh.stalls++
		sh.chans[i] <- batch[T]{items: items}
	}
}

// tryPush routes one arrival to its shard like push, but never blocks:
// when accepting the item would fill the shard's batch and the queue has
// no free slot for the handoff, the item is refused with ErrQueueFull and
// the buffered prefix stays intact. Arrivals that merely join a non-full
// buffer are always accepted — rejection happens exactly at the handoff
// boundary, where Push would have stalled.
//
//summarylint:hot
func (sh *sharder[T, S]) tryPush(item T) error {
	i := 0
	if len(sh.chans) > 1 {
		i = shardOf(sh.key(item), len(sh.chans))
	}
	buf := sh.bufs[i]
	if len(*buf)+1 < sh.batch {
		//summarylint:ignore arena buffers carry cap=batch, so this append never grows (benchgate pins 0 allocs/op)
		*buf = append(*buf, item)
		return nil
	}
	//summarylint:ignore arena buffers carry cap=batch, so this append never grows (benchgate pins 0 allocs/op)
	*buf = append(*buf, item)
	select {
	case sh.chans[i] <- batch[T]{items: buf}:
		sh.batches++
		sh.bufs[i] = sh.getBuf()
		return nil
	default:
		*buf = (*buf)[:len(*buf)-1]
		sh.rejects++
		return ErrQueueFull
	}
}

// quiesce flushes the buffered batches and barriers every worker: on
// return the workers have applied every pushed item and are blocked
// waiting for more, so the producer may read the samplers. The barrier
// acknowledgement orders every worker write before the producer's reads,
// and the producer's next send orders its reads before further worker
// writes — the memory-safety handshake behind mid-stream Snapshot.
func (sh *sharder[T, S]) quiesce() []S {
	done := make(chan struct{}, len(sh.chans))
	for i, buf := range sh.bufs {
		if len(*buf) > 0 {
			sh.send(i, buf)
			sh.bufs[i] = sh.getBuf()
		}
		sh.chans[i] <- batch[T]{barrier: done}
	}
	for range sh.chans {
		<-done
	}
	return sh.samplers
}

// drain flushes the buffered batches, stops the workers, and returns the
// samplers, now exclusively owned by the caller (wg.Wait orders every
// worker write before the return).
func (sh *sharder[T, S]) drain() []S {
	for i, buf := range sh.bufs {
		if len(*buf) > 0 {
			sh.send(i, buf)
		}
		close(sh.chans[i])
	}
	sh.wg.Wait()
	return sh.samplers
}

// instanceGroup hosts one sampler per instance inside a single shard
// worker: the hash router dispatches a MultiPair to the shard owning its
// key, and the worker indexes into the instance's sampler — one pass over
// a combined r-instance stream feeds all r summaries at once.
type instanceGroup[S any] struct {
	by []S
}

// newInstanceGroup builds one sampler per instance with mk.
func newInstanceGroup[S any](r int, mk func(instance int) S) *instanceGroup[S] {
	g := &instanceGroup[S]{by: make([]S, r)}
	for i := range g.by {
		g.by[i] = mk(i)
	}
	return g
}
