package engine

import (
	"sync"

	"repro/internal/dataset"
)

// pusher is the streaming-sampler interface a shard worker drives.
type pusher interface {
	Push(h dataset.Key, v float64)
}

// pipeline is the lifecycle shared by the engine's summarizers: the
// closed-state guard and the sequential-vs-sharded dispatch, generic over
// the sampler type. Summarizers embed it and implement only sampler
// construction and the type-specific merge.
type pipeline[S pusher] struct {
	closed bool
	seq    S // sequential path sampler (zero value when sharded)
	sh     *sharder[S]
}

// newPipeline builds the execution strategy selected by cfg, constructing
// samplers with mk.
func newPipeline[S pusher](cfg Config, mk func() S) pipeline[S] {
	if shards := cfg.NumShards(); shards > 1 {
		return pipeline[S]{sh: newSharder(shards, cfg, mk)}
	}
	return pipeline[S]{seq: mk()}
}

// Push offers one (key, value) arrival to the pipeline.
func (p *pipeline[S]) Push(h dataset.Key, v float64) {
	if p.closed {
		panic("engine: Push after Close")
	}
	if p.sh == nil {
		p.seq.Push(h, v)
		return
	}
	p.sh.push(h, v)
}

// PushBatch offers a slice of arrivals.
func (p *pipeline[S]) PushBatch(pairs []Pair) {
	for _, pr := range pairs {
		p.Push(pr.Key, pr.Value)
	}
}

// close marks the pipeline closed and returns the samplers to merge: the
// single sequential sampler, or every shard's sampler after drain.
func (p *pipeline[S]) close() []S {
	if p.closed {
		panic("engine: Close after Close")
	}
	p.closed = true
	if p.sh == nil {
		return []S{p.seq}
	}
	return p.sh.drain()
}

// sharder is the sharded batching pipeline shared by the engines: it owns
// the per-shard buffers, worker channels, and goroutines, generically over
// the sampler type. The engines own sampler construction and the merge.
type sharder[S pusher] struct {
	batch    int
	bufs     [][]Pair
	chans    []chan []Pair
	samplers []S
	wg       sync.WaitGroup
}

// newSharder spawns one worker goroutine per shard, each draining batches
// into a sampler built by mk.
func newSharder[S pusher](shards int, cfg Config, mk func() S) *sharder[S] {
	sh := &sharder[S]{
		batch:    cfg.EffectiveBatchSize(),
		bufs:     make([][]Pair, shards),
		chans:    make([]chan []Pair, shards),
		samplers: make([]S, shards),
	}
	for i := 0; i < shards; i++ {
		sh.bufs[i] = make([]Pair, 0, sh.batch)
		ch := make(chan []Pair, batchQueueDepth)
		s := mk()
		sh.chans[i] = ch
		sh.samplers[i] = s
		sh.wg.Add(1)
		go func() {
			defer sh.wg.Done()
			for b := range ch {
				for _, p := range b {
					s.Push(p.Key, p.Value)
				}
			}
		}()
	}
	return sh
}

// push routes one arrival to its shard, handing the shard's batch to its
// worker when full.
func (sh *sharder[S]) push(h dataset.Key, v float64) {
	i := shardOf(h, len(sh.chans))
	buf := append(sh.bufs[i], Pair{h, v})
	if len(buf) >= sh.batch {
		sh.chans[i] <- buf
		buf = make([]Pair, 0, sh.batch)
	}
	sh.bufs[i] = buf
}

// drain flushes the buffered batches, stops the workers, and returns the
// samplers, now exclusively owned by the caller (wg.Wait orders every
// worker write before the return).
func (sh *sharder[S]) drain() []S {
	for i, buf := range sh.bufs {
		if len(buf) > 0 {
			sh.chans[i] <- buf
		}
		close(sh.chans[i])
	}
	sh.wg.Wait()
	return sh.samplers
}
