package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// TestTryPushRejectsWithoutStalling pins the non-blocking contract: with
// the shard worker deterministically wedged inside its sampler and the
// bounded queue full, TryPush must return ErrQueueFull immediately — if it
// blocked like Push, this test would deadlock, because the worker is only
// released after the rejection is observed. Accepted arrivals survive to
// Close; the rejected one is dropped and counted.
func TestTryPushRejectsWithoutStalling(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	seed := func(h dataset.Key) float64 {
		// First application wedges the worker until the producer has seen
		// the rejection; later applications are instant.
		once.Do(func() {
			close(started)
			<-release
		})
		return 0.5
	}

	// One async shard, one-pair batches, a one-batch queue: after the
	// worker takes the first batch and wedges, a single queued batch fills
	// the queue and the third arrival has nowhere to go.
	// tauStar 10 with seed 0.5 keeps every value ≥ 5, so both accepted
	// arrivals land in the sample.
	e := NewPoissonPPS(10, seed, Config{Async: true, BatchSize: 1, QueueDepth: 1})

	if err := e.TryPush(1, 10); err != nil {
		t.Fatalf("first TryPush: %v", err)
	}
	<-started // the worker now owns batch 1 and is wedged in seed()
	if err := e.TryPush(2, 20); err != nil {
		t.Fatalf("second TryPush (fills the queue): %v", err)
	}
	if err := e.TryPush(3, 30); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third TryPush on a full queue: got %v, want ErrQueueFull", err)
	}
	st := e.Stats()
	if st.Pairs != 2 {
		t.Errorf("Pairs = %d, want 2 (the rejected arrival must not count)", st.Pairs)
	}
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}

	close(release)
	sample := e.Close()
	if len(sample.Values) != 2 || sample.Values[1] != 10 || sample.Values[2] != 20 {
		t.Errorf("summary %v, want exactly keys 1 and 2", sample.Values)
	}
}

// TestTryPushInlineAlwaysAccepts: the sequential in-line path has no
// queues, so TryPush degenerates to Push and never rejects.
func TestTryPushInlineAlwaysAccepts(t *testing.T) {
	e := NewBottomK(4, sampling.PPS{}, func(h dataset.Key) float64 { return 0.5 }, Config{})
	for i := 1; i <= 100; i++ {
		if err := e.TryPush(dataset.Key(i), float64(i)); err != nil {
			t.Fatalf("inline TryPush %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.Pairs != 100 || st.Rejected != 0 {
		t.Fatalf("Stats = %+v, want 100 pairs, 0 rejected", st)
	}
	if got := e.Close().Len(); got != 4 {
		t.Fatalf("sample size %d, want 4", got)
	}
}

// TestTryPushMatchesPushWhenNeverFull: on an uncontended async pipeline a
// TryPush-fed stream must close to the same bits as a Push-fed one — the
// non-blocking path changes scheduling, never sampling.
func TestTryPushMatchesPushWhenNeverFull(t *testing.T) {
	seed := func(h dataset.Key) float64 {
		return float64(uint64(h)%997) / 997
	}
	cfg := Config{Parallel: true, Shards: 3, Async: true, BatchSize: 8, QueueDepth: 4}
	try := NewBottomK(16, sampling.PPS{}, seed, cfg)
	push := NewBottomK(16, sampling.PPS{}, seed, Config{})
	for i := 1; i <= 2000; i++ {
		h, v := dataset.Key(i*31), float64(1+i%13)
		// An uncontended queue can still momentarily fill if the scheduler
		// starves the worker; retry like a lossy producer that respects
		// the signal, so the comparison stays exact.
		for {
			if err := try.TryPush(h, v); err == nil {
				break
			} else if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("TryPush: %v", err)
			}
		}
		push.Push(h, v)
	}
	got, want := try.Close(), push.Close()
	if got.Tau != want.Tau || len(got.Values) != len(want.Values) {
		t.Fatalf("tau/size mismatch: (%v, %d) vs (%v, %d)", got.Tau, len(got.Values), want.Tau, len(want.Values))
	}
	for h, v := range want.Values {
		if got.Values[h] != v {
			t.Fatalf("key %d: %v != %v", h, got.Values[h], v)
		}
	}
}
