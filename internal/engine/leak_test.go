package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/testutil"
	"repro/internal/xhash"
)

// TestCloseReleasesWorkerGoroutines pins the shutdown contract of every
// goroutine-owning pipeline configuration: after Close returns, no shard
// worker is left behind — including on pipelines that snapshotted
// mid-stream (Snapshot quiesces and restarts the workers, a natural
// place to strand one).
func TestCloseReleasesWorkerGoroutines(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	seeder := xhash.Seeder{Salt: 41}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	for _, cfg := range []Config{
		{Parallel: true, Shards: 4},
		{Async: true},
		{Parallel: true, Shards: 2, Async: true, BatchSize: 16, QueueDepth: 2},
	} {
		e := NewBottomK(16, sampling.PPS{}, seed, cfg)
		// Keys are distinct across both loops: a stream carries at most
		// one value per key.
		for i := 0; i < 2_000; i++ {
			e.Push(dataset.Key(i+1), float64(i%31+1))
		}
		if s := e.Snapshot(); s == nil {
			t.Fatalf("cfg %+v: nil snapshot", cfg)
		}
		for i := 0; i < 1_000; i++ {
			e.Push(dataset.Key(i+2_001), 1)
		}
		if s := e.Close(); s.Len() != 16 {
			t.Fatalf("cfg %+v: final len %d, want 16", cfg, s.Len())
		}
	}
}
