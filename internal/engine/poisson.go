package engine

import (
	"repro/internal/dataset"
	"repro/internal/sampling"
)

// PoissonPPS is a sharded streaming Poisson PPS summarizer with a fixed
// weight-scale threshold tauStar. Poisson sampling is a stateless per-key
// filter, so the merge is a plain union of the per-shard samples — trivially
// identical to a sequential sampling.StreamPoissonPPS pass.
//
// Push, Snapshot, Stats, and Close must be called from a single producer
// goroutine; the seed function must be safe for concurrent use.
type PoissonPPS struct {
	pipeline[Pair, *sampling.StreamPoissonPPS]
}

// NewPoissonPPS returns a Poisson PPS summarization pipeline with
// weight-scale threshold tauStar (inclusion probability min{1, v/tauStar}).
func NewPoissonPPS(tauStar float64, seed sampling.SeedFunc, cfg Config) *PoissonPPS {
	return &PoissonPPS{pipeline: newPipeline(cfg,
		func() *sampling.StreamPoissonPPS { return sampling.NewStreamPoissonPPS(tauStar, seed) },
		func(p Pair) dataset.Key { return p.Key },
		func(s *sampling.StreamPoissonPPS, p Pair) { s.Push(p.Key, p.Value) },
	)}
}

// Push offers one (key, value) arrival.
func (e *PoissonPPS) Push(h dataset.Key, v float64) {
	e.pipeline.Push(Pair{Key: h, Value: v})
}

// TryPush offers one arrival without blocking: where Push would stall on a
// full shard queue, TryPush returns ErrQueueFull and drops nothing already
// accepted. Rejections are counted in Stats().Rejected.
func (e *PoissonPPS) TryPush(h dataset.Key, v float64) error {
	return e.pipeline.TryPush(Pair{Key: h, Value: v})
}

// Snapshot quiesces the pipeline and returns the merged PPS sample of
// exactly the pairs pushed so far — equal to a sequential pass over that
// prefix. The pipeline remains usable afterwards.
func (e *PoissonPPS) Snapshot() *sampling.WeightedSample {
	return unionPoissonSamplers(e.samplers())
}

// Close flushes buffered batches, waits for the shard workers, and returns
// the merged PPS sample. The pipeline is unusable afterwards.
func (e *PoissonPPS) Close() *sampling.WeightedSample {
	return unionPoissonSamplers(e.close())
}

// unionPoissonSamplers unions per-shard Poisson samples into one without
// consuming the samplers (shards hold disjoint key partitions). The result
// map is presized to the summed shard sizes, so the copies never grow it —
// one allocation for the union regardless of shard count.
func unionPoissonSamplers(samplers []*sampling.StreamPoissonPPS) *sampling.WeightedSample {
	total := 0
	for _, s := range samplers {
		total += s.Len()
	}
	vals := make(map[dataset.Key]float64, total)
	for _, s := range samplers {
		s.AppendTo(vals)
	}
	return &sampling.WeightedSample{Values: vals, Tau: samplers[0].RankTau(), Family: sampling.PPS{}}
}

// SummarizePoissonPPS runs a materialized instance through a Poisson PPS
// pipeline with the given config.
func SummarizePoissonPPS(in dataset.Instance, tauStar float64, seed sampling.SeedFunc, cfg Config) *sampling.WeightedSample {
	e := NewPoissonPPS(tauStar, seed, cfg)
	for h, v := range in {
		e.Push(h, v)
	}
	return e.Close()
}

// MultiPoissonPPS summarizes r instances in one pass over a combined
// MultiPair stream: each shard worker hosts r Poisson PPS samplers behind
// the single hash router. taus[i] is instance i's weight-scale threshold;
// seeds(i) its seed function (the same function for every instance ⇒
// coordinated samples, per-instance functions ⇒ independent samples).
// Per-instance results are bit-identical to r independent sequential
// passes.
type MultiPoissonPPS struct {
	r int
	pipeline[MultiPair, *instanceGroup[*sampling.StreamPoissonPPS]]
}

// NewMultiPoissonPPS returns a one-pass Poisson PPS summarization pipeline
// over len(taus) instances.
func NewMultiPoissonPPS(taus []float64, seeds func(instance int) sampling.SeedFunc, cfg Config) *MultiPoissonPPS {
	if len(taus) == 0 {
		panic("engine: NewMultiPoissonPPS with no instances")
	}
	r := len(taus)
	return &MultiPoissonPPS{r: r, pipeline: newPipeline(cfg,
		func() *instanceGroup[*sampling.StreamPoissonPPS] {
			return newInstanceGroup(r, func(i int) *sampling.StreamPoissonPPS {
				return sampling.NewStreamPoissonPPS(taus[i], seeds(i))
			})
		},
		func(m MultiPair) dataset.Key { return m.Key },
		func(g *instanceGroup[*sampling.StreamPoissonPPS], m MultiPair) { g.by[m.Instance].Push(m.Key, m.Value) },
	)}
}

// Instances returns r, the number of summarized instances.
func (e *MultiPoissonPPS) Instances() int { return e.r }

// Push offers one (key, value) arrival of the given instance (0 ≤
// instance < r).
func (e *MultiPoissonPPS) Push(instance int, h dataset.Key, v float64) {
	checkInstance(instance, e.r)
	e.pipeline.Push(MultiPair{Key: h, Instance: instance, Value: v})
}

// TryPush offers one arrival of the given instance without blocking,
// returning ErrQueueFull where Push would stall (counted in
// Stats().Rejected).
func (e *MultiPoissonPPS) TryPush(instance int, h dataset.Key, v float64) error {
	checkInstance(instance, e.r)
	return e.pipeline.TryPush(MultiPair{Key: h, Instance: instance, Value: v})
}

// PushBatch offers a slice of combined-stream arrivals.
func (e *MultiPoissonPPS) PushBatch(ms []MultiPair) {
	for _, m := range ms {
		e.Push(m.Instance, m.Key, m.Value)
	}
}

// Snapshot quiesces the pipeline and returns the per-instance samples of
// exactly the pairs pushed so far, indexed by instance. The pipeline
// remains usable afterwards.
func (e *MultiPoissonPPS) Snapshot() []*sampling.WeightedSample {
	return e.merge(e.samplers())
}

// Close drains the pipeline and returns the per-instance samples, indexed
// by instance. The pipeline is unusable afterwards.
func (e *MultiPoissonPPS) Close() []*sampling.WeightedSample {
	return e.merge(e.pipeline.close())
}

func (e *MultiPoissonPPS) merge(groups []*instanceGroup[*sampling.StreamPoissonPPS]) []*sampling.WeightedSample {
	out := make([]*sampling.WeightedSample, e.r)
	per := make([]*sampling.StreamPoissonPPS, len(groups))
	for i := 0; i < e.r; i++ {
		for gi, g := range groups {
			per[gi] = g.by[i]
		}
		out[i] = unionPoissonSamplers(per)
	}
	return out
}

// SummarizeMultiPoissonPPS runs r materialized instances through a
// one-pass multi-instance Poisson PPS pipeline: ins[i] is summarized with
// threshold taus[i] and seeds(i). The result equals
// []{SummarizePoissonPPS(ins[i], taus[i], seeds(i), cfg)} bit for bit, at
// the cost of one scan instead of r.
func SummarizeMultiPoissonPPS(ins []dataset.Instance, taus []float64, seeds func(instance int) sampling.SeedFunc, cfg Config) []*sampling.WeightedSample {
	if len(ins) != len(taus) {
		panic("engine: SummarizeMultiPoissonPPS needs one threshold per instance")
	}
	e := NewMultiPoissonPPS(taus, seeds, cfg)
	for i, in := range ins {
		for h, v := range in {
			e.Push(i, h, v)
		}
	}
	return e.Close()
}
