package engine

import (
	"repro/internal/dataset"
	"repro/internal/sampling"
)

// PoissonPPS is a sharded streaming Poisson PPS summarizer with a fixed
// weight-scale threshold tauStar. Poisson sampling is a stateless per-key
// filter, so the merge is a plain union of the per-shard samples — trivially
// identical to a sequential sampling.StreamPoissonPPS pass.
//
// Push and Close must be called from a single producer goroutine; the seed
// function must be safe for concurrent use.
type PoissonPPS struct {
	pipeline[*sampling.StreamPoissonPPS]
}

// NewPoissonPPS returns a Poisson PPS summarization pipeline with
// weight-scale threshold tauStar (inclusion probability min{1, v/tauStar}).
func NewPoissonPPS(tauStar float64, seed sampling.SeedFunc, cfg Config) *PoissonPPS {
	return &PoissonPPS{pipeline: newPipeline(cfg, func() *sampling.StreamPoissonPPS {
		return sampling.NewStreamPoissonPPS(tauStar, seed)
	})}
}

// Close flushes buffered batches, waits for the shard workers, and returns
// the merged PPS sample. The pipeline is unusable afterwards.
func (e *PoissonPPS) Close() *sampling.WeightedSample {
	samplers := e.close()
	out := samplers[0].Snapshot()
	for _, s := range samplers[1:] {
		s.AppendTo(out.Values)
	}
	return out
}

// SummarizePoissonPPS runs a materialized instance through a Poisson PPS
// pipeline with the given config.
func SummarizePoissonPPS(in dataset.Instance, tauStar float64, seed sampling.SeedFunc, cfg Config) *sampling.WeightedSample {
	e := NewPoissonPPS(tauStar, seed, cfg)
	for h, v := range in {
		e.Push(h, v)
	}
	return e.Close()
}
