package engine

import (
	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// VarOpt is a sharded streaming VarOpt_k summarizer behind the same
// pipeline seam as the bottom-k and Poisson engines: Push offers arrivals,
// Snapshot/Close merge the per-shard reservoirs into one VarOpt_k sample.
//
// Unlike bottom-k and Poisson PPS, VarOpt draws true randomness for its
// drop decisions (there are no per-key seeds to recompute), so sharded
// results are NOT bit-identical to a sequential pass: each shard runs its
// own deterministic splitmix64 stream derived from the engine seed, and
// the per-shard reservoirs are combined with sampling.MergeVarOpt — the
// threshold-union (two-level) construction, which keeps subset-sum
// estimates unbiased for every shard count. Shard-count invariance is
// therefore distributional (equal expectations, comparable variance), not
// bitwise; the property tests pin the Monte Carlo moments.
//
// Push, Snapshot, Stats, and Close must be called from a single producer
// goroutine; the parallelism is internal.
type VarOpt struct {
	k int
	pipeline[Pair, *sampling.VarOpt]
	// mergeRNG drives the re-drop decisions of Snapshot/Close merges,
	// deterministically derived from the engine seed and independent of
	// every shard stream.
	mergeRNG *randx.RNG
}

// NewVarOpt returns a VarOpt_k summarization pipeline of capacity k.
// seed deterministically derives every shard's drop-decision stream (and
// the merge stream), so a fixed (seed, shard count, arrival order) triple
// reproduces the same sample.
func NewVarOpt(k int, seed uint64, cfg Config) *VarOpt {
	if k <= 0 {
		panic("engine: NewVarOpt with non-positive k")
	}
	shard := uint64(0)
	return &VarOpt{
		k:        k,
		mergeRNG: randx.New(xhash.Hash2(seed, 0)),
		pipeline: newPipeline(cfg,
			func() *sampling.VarOpt {
				shard++
				return sampling.NewVarOpt(k, randx.New(xhash.Hash2(seed, shard)))
			},
			func(p Pair) dataset.Key { return p.Key },
			func(s *sampling.VarOpt, p Pair) { s.Add(p.Key, p.Value) },
		),
	}
}

// K returns the reservoir capacity.
func (e *VarOpt) K() int { return e.k }

// Push offers one (key, weight) arrival.
func (e *VarOpt) Push(h dataset.Key, v float64) {
	e.pipeline.Push(Pair{Key: h, Value: v})
}

// TryPush offers one arrival without blocking: where Push would stall on a
// full shard queue, TryPush returns ErrQueueFull and drops nothing already
// accepted. Rejections are counted in Stats().Rejected.
func (e *VarOpt) TryPush(h dataset.Key, v float64) error {
	return e.pipeline.TryPush(Pair{Key: h, Value: v})
}

// Snapshot quiesces the pipeline and returns the merged VarOpt sample of
// the pairs pushed so far. The pipeline remains usable afterwards; each
// snapshot consumes fresh merge randomness.
func (e *VarOpt) Snapshot() *sampling.VarOptSample {
	return e.merge(e.samplers())
}

// Close drains the pipeline and returns the merged VarOpt sample. The
// pipeline is unusable afterwards.
func (e *VarOpt) Close() *sampling.VarOptSample {
	return e.merge(e.pipeline.close())
}

func (e *VarOpt) merge(samplers []*sampling.VarOpt) *sampling.VarOptSample {
	if len(samplers) == 1 {
		// One reservoir: its sample is already final; re-dropping through
		// MergeVarOpt would only launder weights through another level.
		return samplers[0].Sample()
	}
	return sampling.MergeVarOpt(e.k, e.mergeRNG, samplers...).Sample()
}

// SummarizeVarOpt runs a materialized instance through a VarOpt_k pipeline
// with the given config. Instance iteration order is map order, so unlike
// the bottom-k summarizers two runs over the same instance may retain
// different keys; the estimates are unbiased either way.
func SummarizeVarOpt(in dataset.Instance, k int, seed uint64, cfg Config) *sampling.VarOptSample {
	e := NewVarOpt(k, seed, cfg)
	for h, v := range in {
		e.Push(h, v)
	}
	return e.Close()
}
