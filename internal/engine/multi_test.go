package engine

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// multiStream builds a combined r-instance stream over a shared key
// universe with partial overlap: every key appears in a random subset of
// the instances, at most once per instance.
func multiStream(rng *randx.RNG, r, keys int) []MultiPair {
	out := make([]MultiPair, 0, r*keys)
	for k := 0; k < keys; k++ {
		h := dataset.Key(rng.Uint64())
		for i := 0; i < r; i++ {
			if rng.Float64() < 0.7 {
				out = append(out, MultiPair{Key: h, Instance: i, Value: float64(1 + rng.Intn(1000))})
			}
		}
	}
	shuffled := make([]MultiPair, len(out))
	for i, j := range rng.Perm(len(out)) {
		shuffled[i] = out[j]
	}
	return shuffled
}

// seedModes returns the two joint distributions of the tentpole contract:
// a shared SeedFunc (coordinated samples) and per-instance seeds
// (independent samples).
func seedModes(salt uint64) map[string]func(int) sampling.SeedFunc {
	shared := xhash.Seeder{Salt: salt, Shared: true}
	indep := xhash.Seeder{Salt: salt}
	return map[string]func(int) sampling.SeedFunc{
		"coordinated": func(int) sampling.SeedFunc {
			return func(h dataset.Key) float64 { return shared.Seed(0, uint64(h)) }
		},
		"independent": func(i int) sampling.SeedFunc {
			return func(h dataset.Key) float64 { return indep.Seed(i, uint64(h)) }
		},
	}
}

// TestMultiBottomKMatchesIndependentPasses is the one-pass contract: a
// MultiBottomK fed the combined interleaved stream must produce, per
// instance, exactly the summary of an independent sequential pass over
// that instance's pairs alone — for shared and per-instance seeds, across
// shard counts and sync/async modes.
func TestMultiBottomKMatchesIndependentPasses(t *testing.T) {
	const r, k = 3, 24
	rng := randx.New(61)
	stream := multiStream(rng, r, 600)
	for mode, seeds := range seedModes(417) {
		want := make([]*sampling.WeightedSample, r)
		for i := 0; i < r; i++ {
			ref := sampling.NewStreamBottomK(k, sampling.PPS{}, seeds(i))
			for _, m := range stream {
				if m.Instance == i {
					ref.Push(m.Key, m.Value)
				}
			}
			want[i] = ref.Snapshot()
		}
		for _, shards := range []int{1, 2, 4} {
			for _, async := range []bool{false, true} {
				cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 64, Async: async, QueueDepth: 2}
				e := NewMultiBottomK(r, k, sampling.PPS{}, seeds, cfg)
				e.PushBatch(stream)
				got := e.Close()
				for i := 0; i < r; i++ {
					label := mode + "/shards=" + strconv.Itoa(shards) +
						"/async=" + strconv.FormatBool(async) + "/instance=" + strconv.Itoa(i)
					sameSample(t, got[i], want[i], label)
				}
			}
		}
	}
}

// TestMultiPoissonPPSMatchesIndependentPasses: the same contract for the
// Poisson PPS pipeline, with per-instance thresholds.
func TestMultiPoissonPPSMatchesIndependentPasses(t *testing.T) {
	const r = 3
	taus := []float64{40, 90, 250}
	rng := randx.New(62)
	stream := multiStream(rng, r, 800)
	for mode, seeds := range seedModes(901) {
		want := make([]*sampling.WeightedSample, r)
		for i := 0; i < r; i++ {
			ref := sampling.NewStreamPoissonPPS(taus[i], seeds(i))
			for _, m := range stream {
				if m.Instance == i {
					ref.Push(m.Key, m.Value)
				}
			}
			want[i] = ref.Snapshot()
		}
		for _, shards := range []int{1, 2, 4} {
			for _, async := range []bool{false, true} {
				cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 32, Async: async, QueueDepth: 3}
				e := NewMultiPoissonPPS(taus, seeds, cfg)
				e.PushBatch(stream)
				got := e.Close()
				for i := 0; i < r; i++ {
					label := mode + "/shards=" + strconv.Itoa(shards) +
						"/async=" + strconv.FormatBool(async) + "/instance=" + strconv.Itoa(i)
					sameSample(t, got[i], want[i], label)
				}
			}
		}
	}
}

// TestSummarizeMultiEntryPoints: the materialized one-pass entry points
// equal their r independent single-instance counterparts bit for bit.
func TestSummarizeMultiEntryPoints(t *testing.T) {
	const r, k = 3, 16
	rng := randx.New(63)
	ins := make([]dataset.Instance, r)
	for i := range ins {
		ins[i] = make(dataset.Instance, 400)
		for j := 0; j < 400; j++ {
			ins[i][dataset.Key(rng.Intn(900)+1)] = float64(1 + rng.Intn(500))
		}
	}
	taus := []float64{25, 60, 140}
	cfg := Config{Parallel: true, Shards: 4, BatchSize: 16, Async: true}
	for mode, seeds := range seedModes(5150) {
		gotB := SummarizeMultiBottomK(ins, k, sampling.EXP{}, seeds, cfg)
		gotP := SummarizeMultiPoissonPPS(ins, taus, seeds, cfg)
		for i := 0; i < r; i++ {
			wantB := SummarizeBottomK(ins[i], k, sampling.EXP{}, seeds(i), Config{})
			wantP := SummarizePoissonPPS(ins[i], taus[i], seeds(i), Config{})
			sameSample(t, gotB[i], wantB, mode+"/bottomk/instance="+strconv.Itoa(i))
			sameSample(t, gotP[i], wantP, mode+"/pps/instance="+strconv.Itoa(i))
		}
	}
}

func TestMultiPushValidation(t *testing.T) {
	seeds := seedModes(7)["independent"]
	e := NewMultiBottomK(2, 4, sampling.PPS{}, seeds, Config{})
	defer e.Close()
	mustPanic(t, func() { e.Push(-1, 1, 1) })
	mustPanic(t, func() { e.Push(2, 1, 1) })
	p := NewMultiPoissonPPS([]float64{5, 5}, seeds, Config{})
	defer p.Close()
	mustPanic(t, func() { p.Push(2, 1, 1) })
	mustPanic(t, func() { NewMultiBottomK(0, 4, sampling.PPS{}, seeds, Config{}) })
	mustPanic(t, func() { NewMultiPoissonPPS(nil, seeds, Config{}) })
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		cfg   Config
		field string
	}{
		{Config{Shards: -1}, "Shards"},
		{Config{BatchSize: -7}, "BatchSize"},
		{Config{QueueDepth: -2}, "QueueDepth"},
	} {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("Validate(%+v) = %v, want *ConfigError", tc.cfg, err)
		}
		if ce.Field != tc.field {
			t.Errorf("Validate(%+v) flagged %s, want %s", tc.cfg, ce.Field, tc.field)
		}
	}
	for _, cfg := range []Config{{}, {Parallel: true}, {Async: true, QueueDepth: 4}, {Shards: 8, BatchSize: 1}} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	// Constructors enforce the same rule by panicking.
	seed := func(dataset.Key) float64 { return 0.5 }
	mustPanic(t, func() { NewBottomK(4, sampling.PPS{}, seed, Config{Shards: -1}) })
	mustPanic(t, func() { NewPoissonPPS(10, seed, Config{BatchSize: -1}) })
}

// TestAsyncDrainAndStats: async Close drains to the same bits as the
// sequential pass, and the producer-side counters account for every pair,
// with stalls surfacing once the tiny queue fills.
func TestAsyncDrainAndStats(t *testing.T) {
	seeder := xhash.Seeder{Salt: 99}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	rng := randx.New(5)
	stream := randomStream(rng, 5000)
	ref := sampling.NewStreamBottomK(64, sampling.PPS{}, seed)
	for _, p := range stream {
		ref.Push(p.Key, p.Value)
	}
	for _, shards := range []int{1, 3} {
		cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 8, Async: true, QueueDepth: 1}
		e := NewBottomK(64, sampling.PPS{}, seed, cfg)
		e.PushBatch(stream)
		st := e.Stats()
		if st.Pairs != uint64(len(stream)) {
			t.Errorf("shards=%d: Stats.Pairs = %d, want %d", shards, st.Pairs, len(stream))
		}
		if st.Shards != shards || st.QueueDepth != 1 {
			t.Errorf("shards=%d: Stats = %+v", shards, st)
		}
		if st.Batches == 0 {
			t.Errorf("shards=%d: no batches recorded", shards)
		}
		sameSample(t, e.Close(), ref.Snapshot(), "async drain shards="+strconv.Itoa(shards))
	}
	// The inline sequential path reports one shard and no queues.
	seq := NewBottomK(4, sampling.PPS{}, seed, Config{})
	seq.Push(1, 2)
	if st := seq.Stats(); st.Pairs != 1 || st.Shards != 1 || st.QueueDepth != 0 || st.Batches != 0 {
		t.Errorf("sequential Stats = %+v", st)
	}
	seq.Close()
}
