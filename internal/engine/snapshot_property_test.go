package engine

import (
	"sort"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// TestSnapshotMatchesSequentialPrefix is the mid-stream snapshot property:
// at random cut points of a random stream, Snapshot() on the sharded (and
// async) path must equal the sequential summary of exactly the pushed
// prefix — for shards 1/2/4 and both sampler kinds — and snapshotting must
// not perturb the final Close result.
func TestSnapshotMatchesSequentialPrefix(t *testing.T) {
	seeder := xhash.Seeder{Salt: 20110614}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	const n = 3000
	stream := randomStream(randx.New(8), n)
	tau := 300.0

	for trial := 0; trial < 3; trial++ {
		// Random cut points, including the degenerate prefixes 0 and n.
		cutRng := randx.New(uint64(100*trial) + 13)
		cuts := []int{0, n}
		for c := 0; c < 4; c++ {
			cuts = append(cuts, cutRng.Intn(n+1))
		}
		sort.Ints(cuts)

		for _, shards := range []int{1, 2, 4} {
			for _, async := range []bool{false, true} {
				cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 64, Async: async, QueueDepth: 2}
				label := "shards=" + strconv.Itoa(shards) + "/async=" + strconv.FormatBool(async) +
					"/trial=" + strconv.Itoa(trial)

				bk := NewBottomK(48, sampling.PPS{}, seed, cfg)
				pps := NewPoissonPPS(tau, seed, cfg)
				refBK := sampling.NewStreamBottomK(48, sampling.PPS{}, seed)
				refPPS := sampling.NewStreamPoissonPPS(tau, seed)

				next := 0
				for _, cut := range cuts {
					for ; next < cut; next++ {
						p := stream[next]
						bk.Push(p.Key, p.Value)
						pps.Push(p.Key, p.Value)
						refBK.Push(p.Key, p.Value)
						refPPS.Push(p.Key, p.Value)
					}
					at := label + "/cut=" + strconv.Itoa(cut)
					sameSample(t, bk.Snapshot(), refBK.Snapshot(), "bottomk/"+at)
					sameSample(t, pps.Snapshot(), refPPS.Snapshot(), "poisson/"+at)
				}
				// Feed the tail and confirm snapshots did not perturb the
				// final drained summary.
				for ; next < n; next++ {
					p := stream[next]
					bk.Push(p.Key, p.Value)
					pps.Push(p.Key, p.Value)
					refBK.Push(p.Key, p.Value)
					refPPS.Push(p.Key, p.Value)
				}
				sameSample(t, bk.Close(), refBK.Snapshot(), "bottomk/"+label+"/close")
				sameSample(t, pps.Close(), refPPS.Snapshot(), "poisson/"+label+"/close")
			}
		}
	}
}

// TestMultiSnapshotMatchesSequentialPrefix extends the property to the
// one-pass multi-instance pipeline: a mid-stream snapshot equals, per
// instance, the sequential summary of that instance's pushed prefix.
func TestMultiSnapshotMatchesSequentialPrefix(t *testing.T) {
	const r, k = 3, 20
	stream := multiStream(randx.New(77), r, 700)
	for mode, seeds := range seedModes(31) {
		for _, shards := range []int{1, 2, 4} {
			cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 32, Async: true, QueueDepth: 2}
			e := NewMultiBottomK(r, k, sampling.PPS{}, seeds, cfg)
			refs := make([]*sampling.StreamBottomK, r)
			for i := range refs {
				refs[i] = sampling.NewStreamBottomK(k, sampling.PPS{}, seeds(i))
			}
			cut := len(stream) / 3
			for _, m := range stream[:cut] {
				e.Push(m.Instance, m.Key, m.Value)
				refs[m.Instance].Push(m.Key, m.Value)
			}
			snap := e.Snapshot()
			for i := 0; i < r; i++ {
				sameSample(t, snap[i], refs[i].Snapshot(),
					mode+"/shards="+strconv.Itoa(shards)+"/snapshot/instance="+strconv.Itoa(i))
			}
			for _, m := range stream[cut:] {
				e.Push(m.Instance, m.Key, m.Value)
				refs[m.Instance].Push(m.Key, m.Value)
			}
			got := e.Close()
			for i := 0; i < r; i++ {
				sameSample(t, got[i], refs[i].Snapshot(),
					mode+"/shards="+strconv.Itoa(shards)+"/close/instance="+strconv.Itoa(i))
			}
		}
	}
}
