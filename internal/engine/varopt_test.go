package engine

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
)

// varOptWorkload draws a fixed heavy-tailed instance for the VarOpt
// pipeline tests.
func varOptWorkload(n int) (dataset.Instance, float64, float64, func(dataset.Key) bool) {
	rng := randx.New(23)
	in := make(dataset.Instance, n)
	total, subsetTotal := 0.0, 0.0
	sel := func(h dataset.Key) bool { return h%3 == 0 }
	for i := 1; i <= n; i++ {
		h := dataset.Key(i)
		w := 1 + rng.Pareto(1, 1.4)
		in[h] = w
		total += w
		if sel(h) {
			subsetTotal += w
		}
	}
	return in, total, subsetTotal, sel
}

// TestVarOptEngineTotalExact: the merged reservoir preserves the exact
// stream total for every shard count — both merge levels preserve their
// input totals, so Σ adjusted equals Σ pushed bit-for-bit up to float
// accumulation.
func TestVarOptEngineTotalExact(t *testing.T) {
	in, total, _, _ := varOptWorkload(2000)
	for _, cfg := range []Config{
		{},
		{Parallel: true, Shards: 2},
		{Parallel: true, Shards: 4, Async: true},
	} {
		s := SummarizeVarOpt(in, 64, 99, cfg)
		if got := s.SubsetSum(nil); math.Abs(got-total) > 1e-6*total {
			t.Errorf("shards=%d: total %v, want %v", cfg.NumShards(), got, total)
		}
		if len(s.Adjusted) != 64 {
			t.Errorf("shards=%d: sample size %d, want 64", cfg.NumShards(), len(s.Adjusted))
		}
	}
}

// TestVarOptEngineUnbiasedAcrossShards: subset-sum estimates from the
// sharded VarOpt pipeline are unbiased for shard counts 1, 2, and 4 —
// the distributional shard-count invariance of the threshold-union merge
// (bitwise invariance is impossible: VarOpt draws true randomness).
func TestVarOptEngineUnbiasedAcrossShards(t *testing.T) {
	in, _, subsetTotal, sel := varOptWorkload(1200)
	const (
		k      = 48
		trials = 250
	)
	for _, shards := range []int{1, 2, 4} {
		cfg := Config{Parallel: shards > 1, Shards: shards}
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			s := SummarizeVarOpt(in, k, uint64(1000*shards+tr), cfg)
			sum += s.SubsetSum(sel)
		}
		mean := sum / trials
		if rel := math.Abs(mean-subsetTotal) / subsetTotal; rel > 0.05 {
			t.Errorf("shards=%d: subset mean %v, want %v (rel err %.3f)", shards, mean, subsetTotal, rel)
		}
	}
}

// TestVarOptEngineSnapshot: Snapshot returns a usable sample mid-stream
// and the pipeline keeps accepting pushes afterwards.
func TestVarOptEngineSnapshot(t *testing.T) {
	in, total, _, _ := varOptWorkload(800)
	e := NewVarOpt(32, 7, Config{Parallel: true, Shards: 2, Async: true})
	i := 0
	for h, v := range in {
		e.Push(h, v)
		if i++; i == 400 {
			break
		}
	}
	snap := e.Snapshot()
	if got, want := len(snap.Adjusted), 32; got != want {
		t.Fatalf("snapshot size %d, want %d", got, want)
	}
	for h, v := range in {
		e.Push(h+100000, v) // fresh keys: no duplicates with the prefix
	}
	final := e.Close()
	if len(final.Adjusted) != 32 {
		t.Fatalf("final size %d, want 32", len(final.Adjusted))
	}
	// The final total covers the 400-pair prefix plus the full re-keyed
	// stream; verify it is at least the full stream's total.
	if got := final.SubsetSum(nil); got < total {
		t.Errorf("final total %v < full-stream total %v", got, total)
	}
}
