package engine

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// randomStream draws n pairs with sparse random keys (no duplicates) and
// heavy-tailed positive values, with an occasional zero value to exercise
// the never-sampled path.
func randomStream(rng *randx.RNG, n int) []Pair {
	seen := make(map[dataset.Key]bool, n)
	out := make([]Pair, 0, n)
	for len(out) < n {
		h := dataset.Key(rng.Uint64())
		if seen[h] {
			continue
		}
		seen[h] = true
		v := math.Floor(1 + rng.Pareto(1, 1.2))
		if rng.Float64() < 0.05 {
			v = 0
		}
		out = append(out, Pair{Key: h, Value: v})
	}
	return out
}

// sameSample asserts exact equality: keys, values, and threshold witness.
func sameSample(t *testing.T, got, want *sampling.WeightedSample, label string) {
	t.Helper()
	if got.Tau != want.Tau && !(math.IsInf(got.Tau, 1) && math.IsInf(want.Tau, 1)) {
		t.Fatalf("%s: tau %v, want %v", label, got.Tau, want.Tau)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: size %d, want %d", label, len(got.Values), len(want.Values))
	}
	for h, v := range want.Values {
		gv, ok := got.Values[h]
		if !ok {
			t.Fatalf("%s: key %d missing", label, h)
		}
		if gv != v {
			t.Fatalf("%s: key %d value %v, want %v", label, h, gv, v)
		}
	}
}

// TestBottomKMatchesSequential is the engine/sequential equivalence
// property: for random streams, arrival permutations, and shard counts
// {1, 2, 4, 7}, the engine's merged summary equals the sequential
// StreamBottomK snapshot exactly — same keys, same values, same threshold
// witness.
func TestBottomKMatchesSequential(t *testing.T) {
	seeder := xhash.Seeder{Salt: 20110613}
	for _, fam := range []sampling.RankFamily{sampling.PPS{}, sampling.EXP{}} {
		for trial, size := range []int{1, 5, 64, 500, 2000} {
			rng := randx.New(uint64(1000*trial) + 7)
			stream := randomStream(rng, size)
			for _, k := range []int{1, 16, 100} {
				seed := func(h dataset.Key) float64 { return seeder.Seed(trial, uint64(h)) }
				ref := sampling.NewStreamBottomK(k, fam, seed)
				for _, p := range stream {
					ref.Push(p.Key, p.Value)
				}
				want := ref.Snapshot()
				for _, shards := range []int{1, 2, 4, 7} {
					for perm := 0; perm < 3; perm++ {
						order := randx.New(uint64(perm)*31 + 1).Perm(len(stream))
						cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 64}
						e := NewBottomK(k, fam, seed, cfg)
						for _, idx := range order {
							e.Push(stream[idx].Key, stream[idx].Value)
						}
						got := e.Close()
						label := fam.Name() + "/" +
							"size=" + strconv.Itoa(size) + "/k=" + strconv.Itoa(k) +
							"/shards=" + strconv.Itoa(shards) + "/perm=" + strconv.Itoa(perm)
						sameSample(t, got, want, label)
					}
				}
			}
		}
	}
}

// TestPoissonPPSMatchesSequential: the sharded Poisson pipeline equals the
// sequential StreamPoissonPPS filter for every shard count and permutation.
func TestPoissonPPSMatchesSequential(t *testing.T) {
	seeder := xhash.Seeder{Salt: 8812}
	rng := randx.New(3)
	stream := randomStream(rng, 1500)
	in := make(dataset.Instance, len(stream))
	for _, p := range stream {
		in[p.Key] = p.Value
	}
	tau := sampling.TauForExpectedSize(in, 120)
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	ref := sampling.NewStreamPoissonPPS(tau, seed)
	for _, p := range stream {
		ref.Push(p.Key, p.Value)
	}
	want := ref.Snapshot()
	for _, shards := range []int{1, 2, 4, 7} {
		for perm := 0; perm < 3; perm++ {
			order := randx.New(uint64(perm)*17 + 5).Perm(len(stream))
			cfg := Config{Parallel: shards > 1, Shards: shards, BatchSize: 128}
			e := NewPoissonPPS(tau, seed, cfg)
			for _, idx := range order {
				e.Push(stream[idx].Key, stream[idx].Value)
			}
			got := e.Close()
			sameSample(t, got, want, "shards="+strconv.Itoa(shards)+"/perm="+strconv.Itoa(perm))
		}
	}
}

// TestMergeBottomKDirect pins the merge primitive itself on a hand-built
// partition: the merged sample must match a full sequential pass even when
// shard loads are maximally skewed (one shard sees almost everything).
func TestMergeBottomKDirect(t *testing.T) {
	seeder := xhash.Seeder{Salt: 41}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	rng := randx.New(77)
	stream := randomStream(rng, 800)
	const k = 32
	ref := sampling.NewStreamBottomK(k, sampling.PPS{}, seed)
	skewA := sampling.NewStreamBottomK(k, sampling.PPS{}, seed)
	skewB := sampling.NewStreamBottomK(k, sampling.PPS{}, seed)
	for i, p := range stream {
		ref.Push(p.Key, p.Value)
		if i < 5 {
			skewB.Push(p.Key, p.Value)
		} else {
			skewA.Push(p.Key, p.Value)
		}
	}
	got := sampling.MergeBottomK(k, sampling.PPS{}, skewA.Entries(), skewB.Entries())
	sameSample(t, got, ref.Snapshot(), "skewed merge")
}
