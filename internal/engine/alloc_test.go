package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/xhash"
)

// TestAsyncProducerAllocs pins the steady-state producer path of the async
// pipeline at (near) zero allocations per Push: batch slices come from the
// sync.Pool arena and are recycled by the shard workers, so a warm
// producer never allocates a batch. The bound is a small tolerance rather
// than exactly zero because a concurrent GC may clear the pool mid-run.
func TestAsyncProducerAllocs(t *testing.T) {
	seeder := xhash.Seeder{Salt: 9}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	e := NewBottomK(256, sampling.PPS{}, seed, Config{Parallel: true, Shards: 4, Async: true})
	defer e.Close()
	// Warm up: fill the samplers past k and let the arena reach its
	// steady population (shards × (depth+2) buffers at most).
	for i := 0; i < 1<<16; i++ {
		e.Push(dataset.Key(i+1), 1+float64(i%97))
	}
	const pushes = 1 << 17
	i := 0
	allocs := testing.AllocsPerRun(1, func() {
		for j := 0; j < pushes; j++ {
			e.Push(dataset.Key(i+1), 1+float64(i%97))
			i++
		}
	})
	if perPush := allocs / pushes; perPush > 0.001 {
		t.Errorf("async producer allocs/push = %v, want ~0 (arena-recycled batches)", perPush)
	}
}

// TestStreamRejectAllocs pins the full-sampler reject path at exactly zero
// allocations: once k+1 items are retained, the common-case arrival must
// touch neither the heap nor the value map.
func TestStreamRejectAllocs(t *testing.T) {
	seeder := xhash.Seeder{Salt: 6}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	for _, fam := range []sampling.RankFamily{sampling.PPS{}, sampling.EXP{}} {
		s := sampling.NewStreamBottomK(64, fam, seed)
		for k := dataset.Key(1); k <= 1024; k++ {
			s.Push(k, 1000)
		}
		i := 0
		allocs := testing.AllocsPerRun(500, func() {
			s.Push(dataset.Key(1_000_000+i), 1e-12)
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: reject-path allocs/op = %v, want 0", fam.Name(), allocs)
		}
	}
}
