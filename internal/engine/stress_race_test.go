//go:build race

// Race-detector stress tests for the async pipeline. They are gated on
// the race build because their value is the -race instrumentation, not
// the assertions: without it they are just slow; with it they put the
// producer contract (one goroutine calling Push/Snapshot/Close) under
// maximum pressure against the shard workers and against consumer
// goroutines reading the snapshots the producer hands out.
package engine

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/testutil"
	"repro/internal/xhash"
)

// TestStressAsyncIngestSnapshotQuery drives an async sharded bottom-k
// engine with a hot producer while mid-stream snapshots are queried
// concurrently by reader goroutines. Every snapshot must be fully
// detached from the worker-side samplers: a merge that shared state with
// a still-running worker is a data race the detector will flag here.
func TestStressAsyncIngestSnapshotQuery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	seeder := xhash.Seeder{Salt: 11}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	e := NewBottomK(64, sampling.PPS{}, seed, Config{
		Parallel: true, Shards: 4, Async: true, BatchSize: 64, QueueDepth: 4,
	})

	snaps := make(chan *sampling.WeightedSample, 16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range snaps {
				sum := s.SubsetSum(nil)
				if s.Len() > 0 && !(sum > 0) {
					t.Errorf("snapshot with %d keys has subset sum %v", s.Len(), sum)
				}
			}
		}()
	}

	// Keys are distinct: a stream carries at most one value per key.
	const n = 50_000
	for i := 0; i < n; i++ {
		e.Push(dataset.Key(i+1), float64(i%97+1))
		if i%5_000 == 4_999 {
			snaps <- e.Snapshot()
		}
	}
	final := e.Close()
	close(snaps)
	wg.Wait()

	if final.Len() != 64 || math.IsInf(final.Tau, 1) {
		t.Fatalf("final sample: len %d tau %v, want a saturated bottom-64", final.Len(), final.Tau)
	}
}

// TestStressAsyncMultiSnapshotQuery is the multi-instance variant: one
// combined stream feeding r samplers per shard, with per-instance
// snapshots handed to concurrent readers.
func TestStressAsyncMultiSnapshotQuery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	seeder := xhash.Seeder{Salt: 23}
	seeds := func(instance int) sampling.SeedFunc {
		return func(h dataset.Key) float64 { return seeder.Seed(instance, uint64(h)) }
	}
	const r = 3
	e := NewMultiBottomK(r, 32, sampling.PPS{}, seeds, Config{
		Parallel: true, Shards: 4, Async: true, BatchSize: 32, QueueDepth: 2,
	})

	snaps := make(chan []*sampling.WeightedSample, 8)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ss := range snaps {
				for inst, s := range ss {
					if s == nil {
						t.Errorf("instance %d: nil snapshot", inst)
						continue
					}
					s.SubsetSum(nil)
				}
			}
		}()
	}

	// Each key arrives once per instance (instances 0 and 2 share the
	// combined stream; instance 1 stays empty).
	for i := 0; i < 20_000; i++ {
		h := dataset.Key(i + 1)
		e.Push(0, h, float64(i%13+1))
		e.Push(2, h, float64(i%7+1))
		if i%4_000 == 3_999 {
			snaps <- e.Snapshot()
		}
	}
	final := e.Close()
	close(snaps)
	wg.Wait()

	if len(final) != r {
		t.Fatalf("Close returned %d samples, want %d", len(final), r)
	}
	for inst, s := range final {
		if inst == 1 {
			continue // instance 1 was never pushed to
		}
		if s.Len() != 32 {
			t.Errorf("instance %d: final len %d, want 32", inst, s.Len())
		}
	}
}
