// Package randx provides a small deterministic PRNG and the distributions
// used by the workload generators.
//
// Everything in this repository is reproducible from a 64-bit seed; randx
// wraps a splitmix64 stream with the inverse-CDF samplers needed for
// synthetic traffic and sensor workloads (uniform, exponential, Pareto,
// bounded Zipf).
package randx

import (
	"math"
	"sort"
)

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns an RNG seeded deterministically.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform sample from [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Pos returns a uniform sample from (0, 1].
func (r *RNG) Float64Pos() float64 {
	return 1 - r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponential sample with rate lambda (mean 1/lambda).
func (r *RNG) Exp(lambda float64) float64 {
	return -math.Log(r.Float64Pos()) / lambda
}

// Pareto returns a Pareto(scale, alpha) sample: scale * U^(-1/alpha).
func (r *RNG) Pareto(scale, alpha float64) float64 {
	return scale * math.Pow(r.Float64Pos(), -1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator. Sampling from the child
// does not perturb the parent stream, which keeps experiment stages
// reproducible independently of each other.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Zipf samples ranks 1..N with P(k) proportional to k^(-s) via inverse CDF
// with binary search over precomputed cumulative weights. It is exact (no
// rejection) and deterministic given the RNG stream.
type Zipf struct {
	cum []float64 // cum[k] = sum_{i<=k+1} i^-s, normalized
}

// NewZipf builds a bounded Zipf distribution over {1..n} with exponent s>0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cum) }

// Rank draws a rank in [1, N].
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cum, u) + 1
}

// P returns the probability of rank k (1-based).
func (z *Zipf) P(k int) float64 {
	if k < 1 || k > len(z.cum) {
		return 0
	}
	if k == 1 {
		return z.cum[0]
	}
	return z.cum[k-1] - z.cum[k-2]
}
