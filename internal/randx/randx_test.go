package randx

import (
	"math"
	"testing"
)

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		up := r.Float64Pos()
		if up <= 0 || up > 1 {
			t.Fatalf("Float64Pos out of range: %v", up)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling children start identically")
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(11)
	const n = 200000
	over := 0
	for i := 0; i < n; i++ {
		if r.Pareto(1, 2) > 10 {
			over++
		}
	}
	// PR[X > 10] = (1/10)^2 = 0.01.
	if frac := float64(over) / n; math.Abs(frac-0.01) > 0.002 {
		t.Errorf("Pareto tail fraction %v, want ≈0.01", frac)
	}
	if r.Pareto(3, 1.5) < 3 {
		t.Error("Pareto below scale")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if x := r.Intn(7); x < 0 || x >= 7 {
			t.Fatalf("Intn(7) = %d", x)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, x := range p {
		if x < 0 || x >= 100 || seen[x] {
			t.Fatalf("invalid permutation at %d", x)
		}
		seen[x] = true
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	// Probabilities sum to 1 and decrease.
	sum := 0.0
	for k := 1; k <= 100; k++ {
		p := z.P(k)
		if p <= 0 {
			t.Fatalf("P(%d) = %v", k, p)
		}
		if k > 1 && p > z.P(k-1)+1e-15 {
			t.Fatalf("P not decreasing at %d", k)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if z.P(0) != 0 || z.P(101) != 0 {
		t.Error("out-of-range P not zero")
	}
	// Empirical rank-1 frequency matches P(1).
	r := New(23)
	const n = 100000
	ones := 0
	for i := 0; i < n; i++ {
		k := z.Rank(r)
		if k < 1 || k > 100 {
			t.Fatalf("rank out of range: %d", k)
		}
		if k == 1 {
			ones++
		}
	}
	if frac := float64(ones) / n; math.Abs(frac-z.P(1)) > 0.01 {
		t.Errorf("rank-1 frequency %v, want ≈%v", frac, z.P(1))
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", frac)
	}
}
