package experiments

import (
	"math"

	"repro/internal/estimator"
)

// Figure1 reproduces Figure 1: the max estimators for r = 2 under
// weight-oblivious Poisson sampling with p1 = p2 = 1/2 — the outcome
// tables and the variance ratios VAR[L]/VAR[HT] and VAR[U]/VAR[HT] as a
// function of min(v)/max(v).
func Figure1() []*Table {
	p := []float64{0.5, 0.5}

	table := &Table{
		ID:     "figure1-table",
		Title:  "max estimators on outcome S (v1=1, v2=m), p1=p2=1/2",
		Header: []string{"outcome", "maxHT", "maxL", "maxU"},
	}
	outcomes := []struct {
		name   string
		s1, s2 bool
	}{
		{"S=∅", false, false},
		{"S={1}", true, false},
		{"S={2}", false, true},
		{"S={1,2}", true, true},
	}
	const m = 0.25 // representative min/max ratio for the table
	for _, oc := range outcomes {
		o := estimator.ObliviousOutcome{P: p, Sampled: []bool{oc.s1, oc.s2}, Values: []float64{0, 0}}
		if oc.s1 {
			o.Values[0] = 1
		}
		if oc.s2 {
			o.Values[1] = m
		}
		table.AddRow(oc.name,
			estimator.MaxHTOblivious(o),
			estimator.MaxL2(o),
			estimator.MaxU2(o))
	}

	ratios := &Table{
		ID:     "figure1-ratios",
		Title:  "variance ratios vs min/max, p1=p2=1/2 (exact enumeration)",
		Header: []string{"min/max", "var[L]/var[HT]", "var[U]/var[HT]"},
		Notes: []string{
			"var[U] follows the paper's outcome table; Figure 1's printed var[U] closed form is inconsistent with that table (see EXPERIMENTS.md).",
		},
	}
	for i := 0; i <= 20; i++ {
		ratio := float64(i) / 20
		v := []float64{1, ratio}
		_, varHT := estimator.ObliviousMoments(p, v, estimator.MaxHTOblivious)
		_, varL := estimator.ObliviousMoments(p, v, estimator.MaxL2)
		_, varU := estimator.ObliviousMoments(p, v, estimator.MaxU2)
		ratios.AddRow(ratio, varL/varHT, varU/varHT)
	}
	return []*Table{table, ratios}
}

// Figure1Checkpoints returns the headline numbers the reproduction must
// hit, used by tests and EXPERIMENTS.md: variance of each estimator at the
// two corners min/max ∈ {0, 1}.
func Figure1Checkpoints() (varLEqual, varLZero, varUEqual, varUZero, varHT float64) {
	p := []float64{0.5, 0.5}
	_, varLEqual = estimator.ObliviousMoments(p, []float64{1, 1}, estimator.MaxL2)
	_, varLZero = estimator.ObliviousMoments(p, []float64{1, 0}, estimator.MaxL2)
	_, varUEqual = estimator.ObliviousMoments(p, []float64{1, 1}, estimator.MaxU2)
	_, varUZero = estimator.ObliviousMoments(p, []float64{1, 0}, estimator.MaxU2)
	varHT = estimator.VarMaxHTOblivious2(0.5, 0.5, 1, math.SmallestNonzeroFloat64)
	return
}
