package experiments

import (
	"math"

	"repro/internal/aggregate"
)

// Figure6 reproduces Figure 6: the per-instance sample size s = p·n needed
// for the HT and L distinct-count estimators to reach a target coefficient
// of variation, as a function of the set size n, for several Jaccard
// coefficients — plus the ratio s(L)/s(HT).
func Figure6() []*Table {
	js := []float64{0, 0.5, 0.9, 1}
	var tables []*Table
	for _, cv := range []float64{0.1, 0.02} {
		t := &Table{
			ID:     "figure6-size",
			Title:  "required sample size s vs n, cv=" + fmtG(cv),
			Header: []string{"n", "HT J=0", "HT J=0.5", "HT J=0.9", "HT J=1", "L J=0", "L J=0.5", "L J=0.9", "L J=1"},
		}
		r := &Table{
			ID:     "figure6-ratio",
			Title:  "s(L)/s(HT) vs n, cv=" + fmtG(cv),
			Header: []string{"n", "J=0", "J=0.5", "J=0.9", "J=1"},
		}
		for e := 2; e <= 10; e++ {
			n := math.Pow(10, float64(e))
			row := []interface{}{n}
			ratioRow := []interface{}{n}
			var hts, ls [4]float64
			for i, j := range js {
				hts[i] = aggregate.RequiredPHT(n, j, cv) * n
				ls[i] = aggregate.RequiredPL(n, j, cv) * n
			}
			for _, s := range hts {
				row = append(row, s)
			}
			for _, s := range ls {
				row = append(row, s)
			}
			for i := range js {
				if hts[i] > 0 {
					ratioRow = append(ratioRow, ls[i]/hts[i])
				} else {
					ratioRow = append(ratioRow, "n/a")
				}
			}
			t.AddRow(row...)
			r.AddRow(ratioRow...)
		}
		tables = append(tables, t, r)
	}
	return tables
}
