package experiments

import "repro/internal/estimator"

// Figure4 reproduces Figure 4: normalized variances VAR/(τ*)² of max^(HT)
// and max^(L) for two independent PPS samples with τ1* = τ2* = τ*, as a
// function of min(v)/max(v) for fixed ρ = max(v)/τ* (panels A, B), and the
// variance ratio VAR[HT]/VAR[L] for several ρ (panel C).
func Figure4() []*Table {
	opt := estimator.PPSMomentsOptions{N: 2048, ZeroOnEmpty: true}
	tau := []float64{1, 1}
	grid := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

	var tables []*Table
	for _, rho := range []float64{0.5, 0.01} {
		t := &Table{
			ID:     "figure4-var",
			Title:  "normalized variance vs min/max, rho=" + fmtG(rho),
			Header: []string{"min/max", "var[HT]/tau^2", "var[L]/tau^2"},
		}
		for _, m := range grid {
			v := []float64{rho, rho * m}
			_, varHT := estimator.PPSMoments2(v, tau, estimator.MaxHTPPS, opt)
			_, varL := estimator.PPSMoments2(v, tau, estimator.MaxL2PPS, opt)
			t.AddRow(m, varHT, varL)
		}
		tables = append(tables, t)
	}

	ratio := &Table{
		ID:     "figure4-ratio",
		Title:  "VAR[HT]/VAR[L] vs min/max for several rho=max/tau",
		Header: []string{"min/max", "rho=0.99", "rho=0.5", "rho=0.1", "rho=0.01", "rho=0.001"},
		Notes: []string{
			"At min/max=0 the measured ratio is ≈1.93–1.96, slightly below the paper's idealized (1+rho)/rho ≥ 2 bound (see EXPERIMENTS.md); everywhere else it is ≥ 2 and grows as rho→0.",
		},
	}
	rhos := []float64{0.99, 0.5, 0.1, 0.01, 0.001}
	for _, m := range grid {
		row := make([]interface{}, 0, len(rhos)+1)
		row = append(row, m)
		for _, rho := range rhos {
			v := []float64{rho, rho * m}
			_, varHT := estimator.PPSMoments2(v, tau, estimator.MaxHTPPS, opt)
			_, varL := estimator.PPSMoments2(v, tau, estimator.MaxL2PPS, opt)
			if varL > 0 {
				row = append(row, varHT/varL)
			} else {
				row = append(row, "inf")
			}
		}
		ratio.AddRow(row...)
	}
	tables = append(tables, ratio)
	return tables
}
