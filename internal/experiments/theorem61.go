package experiments

import "repro/internal/estimator"

// Theorem61 reports the §6 impossibility result as a table: the forced
// estimate on the both-sampled outcome for OR over weighted samples with
// unknown seeds, which is negative exactly when p1 + p2 < 1.
func Theorem61() *Table {
	t := &Table{
		ID:     "theorem6.1",
		Title:  "unknown seeds: forced OR estimator value on S={1,2} (negative ⇒ no nonnegative unbiased estimator)",
		Header: []string{"p1", "p2", "est(S={1,2})", "nonnegative estimator exists"},
	}
	for _, pp := range [][2]float64{
		{0.05, 0.05}, {0.1, 0.1}, {0.25, 0.25}, {0.4, 0.4}, {0.49, 0.49},
		{0.5, 0.5}, {0.6, 0.6}, {0.25, 0.8}, {0.9, 0.05}, {1, 1},
	} {
		s := estimator.SolveUnknownSeedsOR2(pp[0], pp[1])
		t.AddRow(pp[0], pp[1], s.EstBoth, s.Feasible)
	}
	t.Notes = append(t.Notes,
		"With known seeds the OR^(L)/OR^(U) estimators exist for every p (Section 5.1) — knowledge of seeds strictly enlarges the feasible region.")
	return t
}
