// Package experiments reproduces every figure and table of the paper's
// evaluation as deterministic text series (DESIGN.md lists the index).
// Each FigureN function returns one or more Tables; cmd/figures prints
// them, the root benchmarks time them, and the tests pin their headline
// numbers against the paper.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a reproduced figure/table: named columns over formatted rows.
type Table struct {
	// ID names the paper artifact (e.g. "figure2").
	ID string
	// Title describes what the series shows.
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes records reproduction caveats (substitutions, errata).
	Notes []string
}

// AddRow appends one row of values formatted with %.6g.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.6g", x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// All runs every experiment and returns the tables in paper order.
func All() []*Table {
	var out []*Table
	out = append(out, Figure1()...)
	out = append(out, Figure2())
	out = append(out, Figure3())
	out = append(out, Figure4()...)
	out = append(out, Figure5()...)
	out = append(out, Figure6()...)
	out = append(out, Figure7(Figure7Options{}))
	out = append(out, Theorem61())
	out = append(out, Ablation()...)
	out = append(out, MultiPeriod())
	return out
}
