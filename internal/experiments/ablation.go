package experiments

import (
	"fmt"

	"repro/internal/estimator"
)

// Ablation quantifies the design choices DESIGN.md calls out, with exact
// variances throughout:
//
//   - estimator family (HT vs L vs U vs Uas) across data profiles — the
//     Pareto trade between "values similar" and "values disjoint";
//   - symmetric U vs asymmetric Uas — what the symmetry requirement costs
//     on each side;
//   - known vs unknown seeds — the variance attainable with seeds against
//     the infeasibility (or HT-only fallback) without them.
func Ablation() []*Table {
	families := &Table{
		ID:     "ablation-families",
		Title:  "exact VAR of max estimators (r=2, weight-oblivious) by data profile",
		Header: []string{"p", "data", "HT", "L", "U", "Uas"},
	}
	for _, p := range []float64{0.2, 0.5} {
		ps := []float64{p, p}
		for _, d := range []struct {
			name string
			v    []float64
		}{
			{"equal (10,10)", []float64{10, 10}},
			{"close (10,8)", []float64{10, 8}},
			{"far (10,2)", []float64{10, 2}},
			{"disjoint (10,0)", []float64{10, 0}},
		} {
			_, ht := estimator.ObliviousMoments(ps, d.v, estimator.MaxHTOblivious)
			_, l := estimator.ObliviousMoments(ps, d.v, estimator.MaxL2)
			_, u := estimator.ObliviousMoments(ps, d.v, estimator.MaxU2)
			_, uas := estimator.ObliviousMoments(ps, d.v, estimator.MaxUAsym2)
			families.AddRow(p, d.name, ht, l, u, uas)
		}
	}

	seeds := &Table{
		ID:     "ablation-seeds",
		Title:  "known vs unknown seeds: OR over two weighted samples, exact VAR",
		Header: []string{"p", "data", "known (L)", "known (U)", "known (HT)", "unknown seeds"},
		Notes: []string{
			"\"unknown seeds\": the unique unbiased estimator; where infeasible (p1+p2<1) no nonnegative unbiased estimator exists (Theorem 6.1).",
			"For p1+p2 ≥ 1 the forced unknown-seed estimator coincides with OR^(U) on outcomes that reveal nothing extra (c = 0), so known (U) never loses to it; the known-seed L estimator additionally wins on the no-change vector (1,1).",
		},
	}
	for _, p := range []float64{0.2, 0.4, 0.5, 0.7} {
		ps := []float64{p, p}
		for _, d := range []struct {
			name string
			v    []float64
		}{{"(1,1)", []float64{1, 1}}, {"(1,0)", []float64{1, 0}}} {
			_, l := estimator.BinaryKnownSeedsMoments(ps, d.v, estimator.ORLKnownSeeds)
			_, u := estimator.BinaryKnownSeedsMoments(ps, d.v, estimator.ORUKnownSeeds)
			_, ht := estimator.BinaryKnownSeedsMoments(ps, d.v, estimator.ORHTKnownSeeds)
			sol := estimator.SolveUnknownSeedsOR2(p, p)
			unknown := "infeasible"
			if sol.Feasible {
				// Variance of the forced estimator by direct enumeration
				// over the weighted outcome distribution.
				unknown = fmt.Sprintf("%.6g", unknownSeedsVar(p, p, d.v, sol))
			}
			seeds.AddRow(p, d.name, l, u, ht, unknown)
		}
	}

	recur := &Table{
		ID:     "ablation-recurrence",
		Title:  "max^(L) coefficient structure vs r (uniform p=0.3): alpha1 and HT coefficient p^-r",
		Header: []string{"r", "alpha1", "p^-r", "alpha1/p^-r", "A_r"},
	}
	for r := 2; r <= 8; r++ {
		e, err := estimator.NewMaxLUniform(r, 0.3)
		if err != nil {
			panic(err) // r and p are valid by construction
		}
		a := e.Alpha()
		htc := 1.0
		for i := 0; i < r; i++ {
			htc /= 0.3
		}
		recur.AddRow(r, a[0], htc, a[0]/htc, e.PrefixSum(r))
	}
	return []*Table{families, seeds, recur}
}

// unknownSeedsVar computes the exact variance of the forced unknown-seed
// OR estimator on binary data v (outcome space: each positive entry
// sampled independently with its probability; zero entries never sampled).
func unknownSeedsVar(p1, p2 float64, v []float64, s estimator.UnknownSeedsOR2) float64 {
	q1, q2 := 0.0, 0.0
	if v[0] > 0 {
		q1 = p1
	}
	if v[1] > 0 {
		q2 = p2
	}
	var m1, m2 float64
	add := func(pr, x float64) {
		m1 += pr * x
		m2 += pr * x * x
	}
	add(q1*q2, s.EstBoth)
	add(q1*(1-q2), s.EstOne1)
	add((1-q1)*q2, s.EstOne2)
	add((1-q1)*(1-q2), s.EstEmpty)
	return m2 - m1*m1
}
