package experiments

import "repro/internal/estimator"

// Figure2 reproduces Figure 2: the variance of OR^(HT), OR^(L) and OR^(U)
// on data vectors (1,1) and (1,0) as a function of p = p1 = p2, by exact
// outcome enumeration.
func Figure2() *Table {
	t := &Table{
		ID:     "figure2",
		Title:  "variance of OR estimators vs p=p1=p2 (exact)",
		Header: []string{"p", "HT(1,0)=(1,1)", "L(1,1)", "L(1,0)", "U(1,1)", "U(1,0)"},
	}
	for _, p := range []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		ps := []float64{p, p}
		_, l11 := estimator.ObliviousMoments(ps, []float64{1, 1}, estimator.ORL2)
		_, l10 := estimator.ObliviousMoments(ps, []float64{1, 0}, estimator.ORL2)
		_, u11 := estimator.ObliviousMoments(ps, []float64{1, 1}, estimator.ORU2)
		_, u10 := estimator.ObliviousMoments(ps, []float64{1, 0}, estimator.ORU2)
		t.AddRow(p, estimator.VarORHT(ps), l11, l10, u11, u10)
	}
	return t
}
