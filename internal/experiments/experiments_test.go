package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func cell(t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestFigure1Checkpoints(t *testing.T) {
	varLEqual, varLZero, varUEqual, varUZero, _ := Figure1Checkpoints()
	if math.Abs(varLEqual-1.0/3) > 1e-12 {
		t.Errorf("VAR[L|(1,1)] = %v, want 1/3", varLEqual)
	}
	if math.Abs(varLZero-11.0/9) > 1e-12 {
		t.Errorf("VAR[L|(1,0)] = %v, want 11/9", varLZero)
	}
	if math.Abs(varUEqual-1) > 1e-12 || math.Abs(varUZero-1) > 1e-12 {
		t.Errorf("VAR[U] corners = %v, %v, want 1, 1", varUEqual, varUZero)
	}
}

func TestFigure1Series(t *testing.T) {
	tables := Figure1()
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	ratios := tables[1]
	if len(ratios.Rows) != 21 {
		t.Fatalf("rows = %d", len(ratios.Rows))
	}
	// Both ratios ≤ 1 everywhere (dominance) and L's ratio decreasing in
	// min/max beyond the crossover toward 1/9.
	for i := range ratios.Rows {
		l := cell(ratios, i, 1)
		u := cell(ratios, i, 2)
		if l > 1+1e-9 || u > 1+1e-9 {
			t.Errorf("row %d: ratio exceeds 1 (L=%v U=%v)", i, l, u)
		}
	}
	if last := cell(ratios, 20, 1); math.Abs(last-1.0/9) > 1e-5 {
		t.Errorf("L ratio at min/max=1 is %v, want 1/9", last)
	}
	if first := cell(ratios, 0, 1); math.Abs(first-11.0/27) > 1e-5 {
		t.Errorf("L ratio at min/max=0 is %v, want 11/27", first)
	}
}

func TestFigure2Shape(t *testing.T) {
	tab := Figure2()
	for i := range tab.Rows {
		ht := cell(tab, i, 1)
		l11, l10 := cell(tab, i, 2), cell(tab, i, 3)
		u11, u10 := cell(tab, i, 4), cell(tab, i, 5)
		if l11 > ht || l10 > ht || u11 > ht || u10 > ht {
			t.Errorf("row %d: some optimal estimator above HT", i)
		}
		if l11 > u11+1e-9 {
			t.Errorf("row %d: L should win on (1,1)", i)
		}
		if u10 > l10+1e-9 {
			t.Errorf("row %d: U should win on (1,0)", i)
		}
	}
	// p → 0 asymptotics of §4.3 on the smallest-p row.
	p := cell(tab, 0, 0)
	if ht := cell(tab, 0, 1); math.Abs(ht-1/(p*p))/(1/(p*p)) > 0.05 {
		t.Errorf("HT(p→0) = %v, want ≈1/p²", ht)
	}
	if l11 := cell(tab, 0, 2); math.Abs(l11-1/(2*p))/(1/(2*p)) > 0.05 {
		t.Errorf("L(1,1)(p→0) = %v, want ≈1/2p", l11)
	}
	if l10 := cell(tab, 0, 3); math.Abs(l10-1/(4*p*p))/(1/(4*p*p)) > 0.08 {
		t.Errorf("L(1,0)(p→0) = %v, want ≈1/4p²", l10)
	}
}

func TestFigure3Unbiasedness(t *testing.T) {
	tab := Figure3()
	for i := range tab.Rows {
		mean := cell(tab, i, 6)
		want := cell(tab, i, 7)
		if math.Abs(mean-want)/want > 1e-4 {
			t.Errorf("row %d (%s): E[est] = %v, want %v", i, tab.Rows[i][0], mean, want)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tables := Figure4()
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, varTab := range tables[:2] {
		for i := range varTab.Rows {
			ht := cell(varTab, i, 1)
			l := cell(varTab, i, 2)
			if l > ht*(1+1e-6) {
				t.Errorf("%s row %d: VAR[L]=%v above VAR[HT]=%v", varTab.Title, i, l, ht)
			}
		}
		// HT variance flat in min/max: first and last rows agree.
		if a, b := cell(varTab, 0, 1), cell(varTab, len(varTab.Rows)-1, 1); math.Abs(a-b)/a > 0.01 {
			t.Errorf("%s: VAR[HT] not flat (%v vs %v)", varTab.Title, a, b)
		}
	}
	ratio := tables[2]
	last := len(ratio.Rows) - 1
	for c := 1; c <= 5; c++ {
		// Within each rho, the advantage of L grows with min/max
		// (Figure 4(C): all curves climb).
		prev := 0.0
		for i := 0; i <= last; i++ {
			r := cell(ratio, i, c)
			if r < prev*(1-1e-6) {
				t.Errorf("col %d: ratio not increasing in min/max at row %d (%v after %v)", c, i, r, prev)
			}
			prev = r
		}
	}
	// At min/max = 1 the closed form is (1−ρ²)/(ρ²(1/(2ρ−ρ²)−1)); check
	// the two extreme columns.
	closed := func(rho float64) float64 {
		q := 2*rho - rho*rho
		return (1 - rho*rho) / (rho * rho * (1/q - 1))
	}
	if r := cell(ratio, last, 2); math.Abs(r-closed(0.5))/closed(0.5) > 1e-3 {
		t.Errorf("rho=0.5 ratio at min/max=1 is %v, want %v", r, closed(0.5))
	}
	if r := cell(ratio, last, 5); math.Abs(r-closed(0.001))/closed(0.001) > 1e-3 {
		t.Errorf("rho=0.001 ratio at min/max=1 is %v, want %v", r, closed(0.001))
	}
	// At min/max = 0 every column sits just below 2 (see EXPERIMENTS.md).
	for c := 1; c <= 5; c++ {
		if r := cell(ratio, 0, c); r < 1.9 || r > 2.05 {
			t.Errorf("col %d: min/max=0 ratio %v outside [1.9, 2.05]", c, r)
		}
	}
}

func TestFigure5MatchesPaper(t *testing.T) {
	tables := Figure5()
	byID := map[string]*Table{}
	for _, tab := range tables {
		byID[tab.ID] = tab
	}
	samples := byID["figure5-bottom3"]
	if samples == nil {
		t.Fatal("missing bottom3 table")
	}
	wantShared := []string{"3, 1, 6", "3, 1, 6", "3, 1, 5"}
	wantIndep := []string{"3, 1, 6", "1, 6, 4", "3, 5, 2"}
	for i := 0; i < 3; i++ {
		if samples.Rows[i][1] != wantShared[i] {
			t.Errorf("shared sample %d = %q, want %q", i+1, samples.Rows[i][1], wantShared[i])
		}
		if samples.Rows[i][2] != wantIndep[i] {
			t.Errorf("independent sample %d = %q, want %q", i+1, samples.Rows[i][2], wantIndep[i])
		}
	}
	// Note: the paper's Figure 5(C) prints the shared-seed instance-2
	// sample as "1, 6, 4", but its own consistent-rank rule u/v gives
	// r2(k3) = 0.07/12 = 0.00583 (the figure's rank table misprints it as
	// 0.0583), which puts key 3 first: "3, 1, 6". We follow the rank rule.
	aggr := byID["figure5-aggregates"]
	if got := aggr.Rows[0][1]; got != "40" {
		t.Errorf("max-dominance aggregate = %s, want 40", got)
	}
	if got := aggr.Rows[1][1]; got != "18" {
		t.Errorf("L1 aggregate = %s, want 18", got)
	}
}

func TestFigure6Shape(t *testing.T) {
	tables := Figure6()
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	for ti := 0; ti < 4; ti += 2 {
		size, ratio := tables[ti], tables[ti+1]
		for i := range ratio.Rows {
			prev := math.Inf(1)
			for c := 1; c <= 4; c++ {
				r := cell(ratio, i, c)
				if r > 1+1e-9 {
					t.Errorf("%s row %d col %d: ratio %v above 1", ratio.Title, i, c, r)
				}
				if r <= 0 {
					t.Errorf("%s row %d col %d: ratio %v not positive", ratio.Title, i, c, r)
				}
				// Larger J (later columns) benefits more from L, so the
				// ratio decreases left to right.
				if r > prev+1e-9 {
					t.Errorf("%s row %d: ratio not decreasing in J at col %d", ratio.Title, i, c)
				}
				prev = r
			}
		}
		// Large-n limits: J=0 column → 1/2, J=0.9 → √0.1/2 ≈ 0.158.
		last := len(ratio.Rows) - 1
		if r := cell(ratio, last, 1); math.Abs(r-0.5) > 0.02 {
			t.Errorf("%s: J=0 large-n ratio %v, want ≈0.5", ratio.Title, r)
		}
		if r := cell(ratio, last, 3); math.Abs(r-math.Sqrt(0.1)/2) > 0.01 {
			t.Errorf("%s: J=0.9 large-n ratio %v, want ≈0.158", ratio.Title, r)
		}
		// Sample sizes grow with n for the HT columns.
		for c := 1; c <= 4; c++ {
			if a, b := cell(size, 0, c), cell(size, len(size.Rows)-1, c); b < a {
				t.Errorf("%s col %d: HT sample size shrinks with n", size.Title, c)
			}
		}
	}
}

func TestFigure7Band(t *testing.T) {
	tab := Figure7(Figure7Options{ScaleDown: 20, IntegrationN: 32,
		Fractions: []float64{0.01, 0.05, 0.1, 0.25}})
	for i := range tab.Rows {
		ratio := cell(tab, i, 3)
		if ratio < 2 || ratio > 3.2 {
			t.Errorf("row %d: HT/L ratio %v outside the expected band (paper: 2.45–2.7)", i, ratio)
		}
		if l, ht := cell(tab, i, 2), cell(tab, i, 1); l > ht {
			t.Errorf("row %d: var[L] above var[HT]", i)
		}
	}
	// Normalized variance decreases as the sampled fraction grows.
	for i := 1; i < len(tab.Rows); i++ {
		if cell(tab, i, 1) > cell(tab, i-1, 1) {
			t.Errorf("var[HT] not decreasing at row %d", i)
		}
	}
}

func TestTheorem61Table(t *testing.T) {
	tab := Theorem61()
	for i := range tab.Rows {
		p1 := cell(tab, i, 0)
		p2 := cell(tab, i, 1)
		est := cell(tab, i, 2)
		feasible := tab.Rows[i][3] == "true"
		if (p1+p2 >= 1) != feasible {
			t.Errorf("row %d: feasibility %v inconsistent with p1+p2=%v", i, feasible, p1+p2)
		}
		if (est >= 0) != feasible {
			t.Errorf("row %d: est %v sign inconsistent with feasibility", i, est)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow(1.5, "hello")
	tab.AddRow(2, 3.25)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "hello") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("line count %d, want 4", len(lines))
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in short mode")
	}
	tables := All()
	if len(tables) < 12 {
		t.Errorf("All() produced %d tables", len(tables))
	}
	for _, tab := range tables {
		if tab.ID == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Errorf("table %q is degenerate", tab.ID)
		}
	}
}
