package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure tables in testdata/")

// Golden tests pin the full Figure 1–7 tables against committed expected
// outputs. Every figure is a deterministic computation (exact enumeration
// or numeric integration over the seed space), so any estimator regression
// — a changed coefficient, a broken variance formula, a biased estimate —
// shifts cells and fails here, not silently. Numeric cells are compared
// within a small relative tolerance to absorb last-ulp libm differences
// across platforms; everything else must match exactly.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/experiments -run TestGoldenFigures -update

const (
	goldenRelTol = 1e-5
	goldenAbsTol = 1e-9
)

func goldenCases() []struct {
	Name string
	Gen  func() []*Table
} {
	return []struct {
		Name string
		Gen  func() []*Table
	}{
		{"figure1", Figure1},
		{"figure2", func() []*Table { return []*Table{Figure2()} }},
		{"figure3", func() []*Table { return []*Table{Figure3()} }},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure6", Figure6},
		// Benchmark-scale workload: same estimator code paths as the
		// paper-scale figure at a fraction of the runtime.
		{"figure7", func() []*Table {
			return []*Table{Figure7(Figure7Options{ScaleDown: 20, IntegrationN: 32,
				Fractions: []float64{0.01, 0.1, 0.5}})}
		}},
	}
}

func TestGoldenFigures(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.Name, func(t *testing.T) {
			got := tc.Gen()
			path := filepath.Join("testdata", tc.Name+".golden.json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			var want []*Table
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file: %v", err)
			}
			compareTables(t, got, want)
		})
	}
}

func compareTables(t *testing.T, got, want []*Table) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("table count %d, want %d", len(got), len(want))
	}
	for ti, w := range want {
		g := got[ti]
		if g.ID != w.ID {
			t.Errorf("table %d: ID %q, want %q", ti, g.ID, w.ID)
		}
		if len(g.Header) != len(w.Header) {
			t.Fatalf("%s: header width %d, want %d", w.ID, len(g.Header), len(w.Header))
		}
		for i := range w.Header {
			if g.Header[i] != w.Header[i] {
				t.Errorf("%s: header[%d] %q, want %q", w.ID, i, g.Header[i], w.Header[i])
			}
		}
		if len(g.Rows) != len(w.Rows) {
			t.Fatalf("%s: %d rows, want %d", w.ID, len(g.Rows), len(w.Rows))
		}
		for ri, wrow := range w.Rows {
			grow := g.Rows[ri]
			if len(grow) != len(wrow) {
				t.Fatalf("%s row %d: %d cells, want %d", w.ID, ri, len(grow), len(wrow))
			}
			for ci, wcell := range wrow {
				if !cellsMatch(grow[ci], wcell) {
					t.Errorf("%s row %d col %d (%s): got %q, want %q",
						w.ID, ri, ci, colName(w.Header, ci), grow[ci], wcell)
				}
			}
		}
	}
}

// cellsMatch compares two formatted cells: numerically within tolerance
// when both parse as floats, exactly otherwise.
func cellsMatch(got, want string) bool {
	if got == want {
		return true
	}
	gv, gerr := strconv.ParseFloat(got, 64)
	wv, werr := strconv.ParseFloat(want, 64)
	if gerr != nil || werr != nil {
		return false
	}
	if math.IsInf(wv, 0) || math.IsNaN(wv) {
		return gv == wv || (math.IsNaN(gv) && math.IsNaN(wv))
	}
	diff := math.Abs(gv - wv)
	return diff <= goldenAbsTol || diff <= goldenRelTol*math.Abs(wv)
}

func colName(header []string, i int) string {
	if i < len(header) {
		return header[i]
	}
	return "?"
}
