package experiments

import "repro/internal/estimator"

// Figure3 reproduces Figure 3: the max^(L) estimator for two independent
// PPS samples with known seeds, tabulated as a function of the determining
// vector across its four regimes, with the integrator's unbiasedness check
// alongside.
func Figure3() *Table {
	t := &Table{
		ID:     "figure3",
		Title:  "max^(L) for PPS known seeds (determining-vector form) + unbiasedness check",
		Header: []string{"regime", "v1", "v2", "tau1", "tau2", "est(v)", "E[est] (integrated)", "max(v)"},
		Notes: []string{
			"The printed equation (30) of the paper has a typo in its log argument; the implementation integrates Appendix A directly (see EXPERIMENTS.md).",
		},
	}
	cases := []struct {
		regime         string
		v1, v2, t1, t2 float64
	}{
		{"v1≥v2≥tau2", 12, 8, 10, 5},
		{"v1≥tau1, v2≤min(tau2,v1)", 15, 2, 10, 20},
		{"v2≤v1≤min(tau1,tau2)", 3, 1, 10, 10},
		{"v2≤tau2≤v1≤tau1", 8, 1, 10, 5},
	}
	opt := estimator.PPSMomentsOptions{N: 2048, ZeroOnEmpty: true}
	for _, c := range cases {
		est := estimator.MaxL2PPSDetermining(c.v1, c.v2, c.t1, c.t2)
		mean, _ := estimator.PPSMoments2([]float64{c.v1, c.v2}, []float64{c.t1, c.t2}, estimator.MaxL2PPS, opt)
		mx := c.v1
		if c.v2 > mx {
			mx = c.v2
		}
		t.AddRow(c.regime, c.v1, c.v2, c.t1, c.t2, est, mean, mx)
	}
	return t
}
