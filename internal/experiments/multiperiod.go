package experiments

import (
	"repro/internal/aggregate"
	"repro/internal/dataset"
	"repro/internal/simdata"
	"repro/internal/stats"
	"repro/internal/xhash"
)

// MultiPeriod extends §8.1 beyond two instances: distinct counts over r
// request-log periods, comparing the r-instance HT and OR^(L) estimators
// (independent samples, known seeds) against coordinated sampling. MSE is
// measured over many hash salts (deterministic Monte Carlo); the advantage
// of partial information grows with r because HT needs all r seeds below
// the threshold.
func MultiPeriod() *Table {
	t := &Table{
		ID:     "multiperiod",
		Title:  "distinct count over r periods, p=0.2: MSE over 1500 salts (lower is better)",
		Header: []string{"r", "union", "MSE HT", "MSE L", "HT/L", "MSE coordinated"},
		Notes: []string{
			"Extension experiment (not a paper figure): the §8.1 estimators generalized to r instances via the Theorem 4.2 machinery.",
		},
	}
	const p = 0.2
	const trials = 1500
	for _, r := range []int{2, 3, 4} {
		logs := simdata.RequestLog(4000, r, 0.25, 91)
		truth := 0.0
		seen := map[dataset.Key]bool{}
		for _, l := range logs {
			for h := range l {
				if !seen[h] {
					seen[h] = true
					truth++
				}
			}
		}
		md, err := aggregate.NewMultiDistinct(r, p)
		if err != nil {
			panic(err) // r ≥ 2 and p valid by construction
		}
		var ht, l, coord stats.Welford
		for i := 0; i < trials; i++ {
			res, err := md.Estimate(logs, xhash.Seeder{Salt: uint64(i)}, nil)
			if err != nil {
				panic(err)
			}
			ht.Add((res.HT - truth) * (res.HT - truth))
			l.Add((res.L - truth) * (res.L - truth))
			c, _, err := aggregate.CoordinatedDistinct(logs, p, xhash.Seeder{Salt: uint64(i), Shared: true}, nil)
			if err != nil {
				panic(err)
			}
			coord.Add((c - truth) * (c - truth))
		}
		t.AddRow(r, truth, ht.Mean(), l.Mean(), ht.Mean()/l.Mean(), coord.Mean())
	}
	return t
}
