package experiments

import "testing"

func TestMultiPeriodShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-salt MSE sweep in short mode")
	}
	tab := MultiPeriod()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevRatio := 0.0
	for i := range tab.Rows {
		mseHT := cell(tab, i, 2)
		mseL := cell(tab, i, 3)
		ratio := cell(tab, i, 4)
		if mseL >= mseHT {
			t.Errorf("row %d: L MSE %v not below HT %v", i, mseL, mseHT)
		}
		// The partial-information advantage grows with r.
		if ratio <= prevRatio {
			t.Errorf("row %d: HT/L ratio %v not growing (prev %v)", i, ratio, prevRatio)
		}
		prevRatio = ratio
		// Coordinated sampling beats both independent estimators on this
		// workload (moderate overlap, p=0.2).
		if coord := cell(tab, i, 5); coord >= mseL {
			t.Errorf("row %d: coordinated MSE %v not below independent L %v", i, coord, mseL)
		}
	}
}
