package experiments

import (
	"math"
	"strconv"
	"testing"
)

func TestAblationFamilies(t *testing.T) {
	tables := Ablation()
	fam := tables[0]
	for i := range fam.Rows {
		ht := cell(fam, i, 2)
		for c := 3; c <= 5; c++ {
			if v := cell(fam, i, c); v > ht {
				t.Errorf("row %d col %d: optimal estimator variance %v above HT %v", i, c, v, ht)
			}
		}
	}
	// First block (p=0.2): L best on equal data, U best on disjoint, Uas
	// best of all on the (v,0) profile it prioritizes.
	if l, u := cell(fam, 0, 3), cell(fam, 0, 4); l > u {
		t.Errorf("equal data: L %v above U %v", l, u)
	}
	if l, u := cell(fam, 3, 3), cell(fam, 3, 4); u > l {
		t.Errorf("disjoint data: U %v above L %v", u, l)
	}
	if u, uas := cell(fam, 3, 4), cell(fam, 3, 5); uas > u {
		t.Errorf("disjoint (v1,0) data: Uas %v above symmetric U %v", uas, u)
	}
}

func TestAblationSeeds(t *testing.T) {
	tables := Ablation()
	seeds := tables[1]
	for i := range seeds.Rows {
		p := cell(seeds, i, 0)
		data := seeds.Rows[i][1]
		l := cell(seeds, i, 2)
		u := cell(seeds, i, 3)
		ht := cell(seeds, i, 4)
		if l > ht || u > ht {
			t.Errorf("row %d: known-seed estimator above HT (L=%v U=%v HT=%v)", i, l, u, ht)
		}
		unknown := seeds.Rows[i][5]
		if p+p < 1 {
			if unknown != "infeasible" {
				t.Errorf("row %d: expected infeasible at p=%v, got %q", i, p, unknown)
			}
			continue
		}
		uv, err := strconv.ParseFloat(unknown, 64)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		// The known-seed U estimator never loses to the forced
		// unknown-seed estimator; L additionally wins on (1,1).
		if u > uv+1e-9 {
			t.Errorf("row %d: known-seed U %v above unknown-seed %v", i, u, uv)
		}
		if data == "(1,1)" && l > uv+1e-9 {
			t.Errorf("row %d: known-seed L %v above unknown-seed %v on (1,1)", i, l, uv)
		}
	}
}

func TestAblationRecurrence(t *testing.T) {
	tables := Ablation()
	rec := tables[2]
	prevFrac := math.Inf(1)
	for i := range rec.Rows {
		a1 := cell(rec, i, 1)
		htc := cell(rec, i, 2)
		frac := cell(rec, i, 3)
		if a1 > htc {
			t.Errorf("row %d: alpha1 %v exceeds HT coefficient %v (Lemma 4.2)", i, a1, htc)
		}
		if frac > prevFrac {
			t.Errorf("row %d: alpha1/p^-r fraction increasing (%v after %v)", i, frac, prevFrac)
		}
		prevFrac = frac
		if ar := cell(rec, i, 4); ar < 1 {
			t.Errorf("row %d: A_r = %v below 1", i, ar)
		}
	}
}
