package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// Figure5 reproduces the worked example of Figure 5: (A) the 3×6 data
// matrix with per-key multi-instance function values, (B) shared-seed
// (consistent) and independent PPS rank assignments, and (C) the resulting
// bottom-3 samples.
func Figure5() []*Table {
	m := dataset.FigureFive()
	keys := m.Keys()

	data := &Table{
		ID:     "figure5-data",
		Title:  "example data set: instances × keys, with per-key primitives",
		Header: []string{"row", "k1", "k2", "k3", "k4", "k5", "k6"},
	}
	for i, in := range m.Instances {
		row := []interface{}{fmt.Sprintf("instance %d", i+1)}
		for _, h := range keys {
			row = append(row, in[h])
		}
		data.AddRow(row...)
	}
	funcs := []struct {
		name string
		f    func(v []float64) float64
	}{
		{"max(v1,v2)", func(v []float64) float64 { return math.Max(v[0], v[1]) }},
		{"max(v1,v2,v3)", dataset.Max},
		{"min(v1,v2)", func(v []float64) float64 { return math.Min(v[0], v[1]) }},
		{"RG(v1,v2,v3)", dataset.Range},
	}
	for _, fc := range funcs {
		row := []interface{}{fc.name}
		for _, h := range keys {
			row = append(row, fc.f(m.Vector(h)))
		}
		data.AddRow(row...)
	}

	shared := dataset.FigureFiveSharedSeeds()
	ranksShared := &Table{
		ID:     "figure5-ranks-shared",
		Title:  "consistent shared-seed PPS ranks (r_i = u/v_i)",
		Header: []string{"row", "k1", "k2", "k3", "k4", "k5", "k6"},
	}
	urow := []interface{}{"u"}
	for _, h := range keys {
		urow = append(urow, shared[h])
	}
	ranksShared.AddRow(urow...)
	ppsRank := func(u, v float64) string {
		r := sampling.PPS{}.Rank(u, v)
		if math.IsInf(r, 1) {
			return "+inf"
		}
		return fmt.Sprintf("%.4g", r)
	}
	for i, in := range m.Instances {
		row := []interface{}{fmt.Sprintf("r%d", i+1)}
		for _, h := range keys {
			row = append(row, ppsRank(shared[h], in[h]))
		}
		ranksShared.AddRow(row...)
	}

	indep := dataset.FigureFiveIndependentSeeds()
	ranksIndep := &Table{
		ID:     "figure5-ranks-indep",
		Title:  "independent PPS ranks",
		Header: []string{"row", "k1", "k2", "k3", "k4", "k5", "k6"},
	}
	for i, in := range m.Instances {
		urow := []interface{}{fmt.Sprintf("u%d", i+1)}
		for _, h := range keys {
			urow = append(urow, indep[i][h])
		}
		ranksIndep.AddRow(urow...)
		row := []interface{}{fmt.Sprintf("r%d", i+1)}
		for _, h := range keys {
			row = append(row, ppsRank(indep[i][h], in[h]))
		}
		ranksIndep.AddRow(row...)
	}

	samples := &Table{
		ID:     "figure5-bottom3",
		Title:  "bottom-3 samples (keys by increasing rank)",
		Header: []string{"instance", "shared seed", "independent"},
	}
	for i, in := range m.Instances {
		samples.AddRow(
			fmt.Sprintf("%d", i+1),
			fmtKeyList(Bottom3Keys(in, func(h dataset.Key) float64 { return shared[h] })),
			fmtKeyList(Bottom3Keys(in, func(h dataset.Key) float64 { return indep[i][h] })),
		)
	}
	aggr := &Table{
		ID:     "figure5-aggregates",
		Title:  "worked sum aggregates from §7",
		Header: []string{"aggregate", "value"},
	}
	even := func(h dataset.Key) bool { return h%2 == 0 }
	first3 := func(h dataset.Key) bool { return h <= 3 }
	maxDom12 := dataset.NewMatrix(m.Instances[0], m.Instances[1]).SumAggregate(dataset.Max, even)
	l1dist23 := dataset.NewMatrix(m.Instances[1], m.Instances[2]).SumAggregate(dataset.Range, first3)
	aggr.AddRow("max-dominance, even keys, instances {1,2}", maxDom12)
	aggr.AddRow("L1 distance, keys {1,2,3}, instances {2,3}", l1dist23)

	return []*Table{data, ranksShared, ranksIndep, samples, aggr}
}

// Bottom3Keys returns the 3 keys of smallest PPS rank in the instance
// (ordered by rank), exposed for the Figure 5 tests.
func Bottom3Keys(in dataset.Instance, seed func(dataset.Key) float64) []dataset.Key {
	type kr struct {
		k dataset.Key
		r float64
	}
	var all []kr
	for h, v := range in {
		all = append(all, kr{h, sampling.PPS{}.Rank(seed(h), v)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r < all[j].r })
	out := make([]dataset.Key, 0, 3)
	for i := 0; i < 3 && i < len(all); i++ {
		out = append(out, all[i].k)
	}
	return out
}

func fmtKeyList(ks []dataset.Key) string {
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprint(k)
	}
	return s
}

func fmtG(x float64) string { return fmt.Sprintf("%g", x) }
