package experiments

import (
	"repro/internal/aggregate"
	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
	"repro/internal/stats"
)

// Figure7Options sizes the §8.2 max-dominance experiment. The zero value
// reproduces the paper-scale workload (≈3.8·10⁴ keys; see substitution S1
// in DESIGN.md); benchmarks use a scale factor to stay fast.
type Figure7Options struct {
	// ScaleDown divides the workload's key counts (0 or 1 = full scale).
	ScaleDown int
	// IntegrationN is the per-key Simpson interval count (default 64).
	IntegrationN int
	// Fractions overrides the sampled-fraction sweep.
	Fractions []float64
}

// Figure7 reproduces Figure 7: the normalized variance VAR[Σmax]/(Σmax)²
// of the HT and L max-dominance estimators over two independently sampled
// PPS instances with known seeds, as a function of the percentage of
// sampled keys. The data is the synthetic traffic workload calibrated to
// the paper's published statistics.
func Figure7(opt Figure7Options) *Table {
	cfg := simdata.PaperTraffic()
	if opt.ScaleDown > 1 {
		cfg = simdata.ScaledTraffic(opt.ScaleDown)
	}
	n := opt.IntegrationN
	if n <= 0 {
		n = 64
	}
	fractions := opt.Fractions
	if fractions == nil {
		fractions = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
	}
	m := simdata.Generate(cfg)
	t := &Table{
		ID:     "figure7",
		Title:  "normalized variance of max-dominance estimates vs % sampled (synthetic IP traffic)",
		Header: []string{"% sampled", "var[HT]/mu^2", "var[L]/mu^2", "var[HT]/var[L]"},
		Notes: []string{
			"Workload: substitution S1 (synthetic heavy-tailed traffic calibrated to the §8.2 statistics).",
			"Paper reports the HT/L variance ratio between 2.45 and 2.7 on its proprietary data.",
		},
	}
	for _, f := range fractions {
		tau1 := sampling.TauForExpectedSize(m.Instances[0], f*float64(len(m.Instances[0])))
		tau2 := sampling.TauForExpectedSize(m.Instances[1], f*float64(len(m.Instances[1])))
		varHT, varL, total, err := aggregate.DominanceVariance(m, tau1, tau2, nil, n)
		if err != nil {
			panic(err) // impossible: the generator always emits 2 instances
		}
		ratio := 0.0
		if varL > 0 {
			ratio = varHT / varL
		}
		t.AddRow(f*100, stats.NormalizedVar(varHT, total), stats.NormalizedVar(varL, total), ratio)
	}
	return t
}

// Figure7Workload exposes the generated matrix and its summary statistics
// for tests that validate the S1 calibration.
func Figure7Workload() (m *dataset.Matrix, distinct1, distinct2, union int, flows1, flows2, sumMax float64) {
	m = simdata.Generate(simdata.PaperTraffic())
	distinct1 = len(m.Instances[0])
	distinct2 = len(m.Instances[1])
	union = len(m.Keys())
	flows1 = m.Instances[0].Total()
	flows2 = m.Instances[1].Total()
	sumMax = m.SumAggregate(dataset.Max, nil)
	return
}
