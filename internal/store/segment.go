package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/pkg/api"
)

// The durable record framing, shared by WAL segments and snapshot chain
// files. One record carries one accepted (dataset, summary) registration:
//
//	offset  size  field
//	0       4     payload length N, uint32 little-endian
//	4       4     CRC32-C (Castagnoli) of the payload, uint32 little-endian
//	8       N     payload:
//	              uvarint  dataset-name length
//	              ...      dataset name (UTF-8)
//	              ...      summary, v2 binary wire format (codecv2.go)
//
// The length lives outside the checksum so a torn tail is detected
// structurally (length runs past the file) as well as by CRC; a record
// whose CRC fails, whose length is zero or absurd, or whose payload does
// not decode ends replay of the FINAL segment at the previous record —
// the longest valid prefix is the recovered state. Appends patch the
// header in after the payload bytes are on disk, so a crash mid-append
// leaves a zero length (an invalid record) rather than a frame that lies
// about its extent. Sealed (non-final) segments were fsynced whole before
// the manifest demoted them from live duty, so they have no legitimate
// torn state: any invalid record there is a hard error.

const (
	// recordHeaderLen is the framing overhead per record.
	recordHeaderLen = 8
	// maxRecord caps a record's declared payload length. It matches the
	// summary server's largest acceptable request body; a length beyond it
	// is corruption, not a summary, and replay must not trust it with an
	// allocation.
	maxRecord = 256 << 20
	// maxDatasetName caps the dataset-name prefix inside a payload. The
	// bound is enforced on BOTH sides of the format: append refuses to
	// write a longer name (failing the registration before anything hits
	// the file), and replay treats a longer name in a checksummed payload
	// as corruption. Writer and validator must stay aligned — a record the
	// writer acknowledges but replay rejects would wedge every later Open.
	// The registry additionally rejects longer names at registration
	// (api.MaxDatasetName, the same value), so the API's accepted-name
	// set is identical with and without durability; the check here is the
	// backstop that keeps the file-format invariant local to this package.
	maxDatasetName = api.MaxDatasetName
)

// File headers. Every file opens with a 5-byte ASCII magic naming the
// format and its version, so a foreign or future file fails loudly
// instead of replaying as garbage. Segments keep the magic the pre-
// segmented single-file WAL used, which is what lets a legacy "wal" file
// migrate into the segmented layout by rename alone.
const (
	segMagic  = "CWAL1"
	snapMagic = "CSNP1"
	magicLen  = 5
)

// Default segment rotation caps (Options.SegmentBytes/SegmentRecords).
const (
	DefaultSegmentBytes   = 64 << 20
	DefaultSegmentRecords = 1 << 16
)

// Legacy (pre-segmented) file names, migrated or quarantined at Open.
const (
	legacyWALName      = "wal"
	legacySnapshotName = "snapshot"
)

// quarantineDir is where Open moves files it cannot account for —
// out-of-manifest segments, unparsable segment/snapshot names, legacy
// files that should not exist alongside the segmented layout. Moving
// (not deleting) keeps the bytes for forensics; moving (not replaying)
// keeps unaccounted records from resurrecting state the manifest never
// acknowledged.
const quarantineDir = "quarantine"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName names WAL segment seq. The zero-padding keeps lexical and
// numeric order aligned for the first million segments; parsing, not
// globbing order, is authoritative beyond that.
func segmentName(seq int64) string {
	return fmt.Sprintf("wal-%06d.seg", seq)
}

// parseSegmentSeq extracts the sequence number from a segment file name.
func parseSegmentSeq(name string) (int64, bool) {
	body, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	body, ok = strings.CutSuffix(body, ".seg")
	if !ok || body == "" {
		return 0, false
	}
	for i := 0; i < len(body); i++ {
		if body[i] < '0' || body[i] > '9' {
			return 0, false
		}
	}
	seq, err := strconv.ParseInt(body, 10, 64)
	if err != nil || seq < 1 {
		return 0, false
	}
	return seq, true
}

// segment is one open WAL segment file. The store holds exactly one —
// the live segment, the only one accepting appends; sealed segments are
// closed files named by the manifest.
type segment struct {
	seq     int64
	path    string
	f       *os.File
	w       *recordWriter
	records int64
}

// createSegment creates a fresh segment file: magic written and fsynced
// before anything can reference it, so a manifest that names the segment
// always finds a well-formed (if empty) file.
func createSegment(dir string, codec core.Codec, seq int64) (*segment, error) {
	path := filepath.Join(dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating WAL segment %d: %w", seq, err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: writing WAL segment %d header: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: syncing new WAL segment %d: %w", seq, err)
	}
	return &segment{seq: seq, path: path, f: f, w: newRecordWriter(f, codec, magicLen), records: 0}, nil
}

// scanSegments lists the segment sequence numbers present in dir, plus
// any file names that look segment-ish ("wal-*.seg") but do not parse —
// the caller quarantines those.
func scanSegments(dir string) (seqs []int64, malformed []string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: scanning WAL segments: %w", err)
	}
	for _, m := range matches {
		name := filepath.Base(m)
		seq, ok := parseSegmentSeq(name)
		if !ok {
			malformed = append(malformed, name)
			continue
		}
		seqs = append(seqs, seq)
	}
	return seqs, malformed, nil
}

// payloadWriter writes a record payload at a fixed file position,
// accumulating the CRC and length the header needs. It writes with
// WriteAt so the 8 header bytes before it stay reserved until the
// payload is complete.
type payloadWriter struct {
	f   *os.File
	off int64
	n   int64
	crc uint32
}

func (p *payloadWriter) Write(b []byte) (int, error) {
	n, err := p.f.WriteAt(b, p.off)
	p.crc = crc32.Update(p.crc, crcTable, b[:n])
	p.off += int64(n)
	p.n += int64(n)
	return n, err
}

// recordWriter appends framed records to a file. The live segment holds
// one for its lifetime; each snapshot creates one for its temp file.
type recordWriter struct {
	f     *os.File
	bw    *bufio.Writer
	codec core.Codec
	// end is the logical end of the file: where the next record starts.
	end int64
}

func newRecordWriter(f *os.File, codec core.Codec, end int64) *recordWriter {
	return &recordWriter{f: f, bw: bufio.NewWriterSize(nil, 32<<10), codec: codec, end: end}
}

// append frames one (dataset, summary) record at the current end. The
// payload streams through the v2 codec's EncodeTo — a large summary never
// materializes a second buffer — and the header is patched in afterwards,
// which is what makes a mid-append crash look like a torn record instead
// of a valid-looking frame over garbage.
func (w *recordWriter) append(dataset string, s core.Summary) error {
	if len(dataset) > maxDatasetName {
		// Refuse before any byte is written: replay hard-fails on a
		// checksummed record whose name exceeds the bound, so logging one
		// would poison every later Open. The error propagates through
		// Store.Append to Registry.Put, which rolls the registration back
		// and fails the request.
		return fmt.Errorf("store: dataset name is %d bytes (max %d)", len(dataset), maxDatasetName)
	}
	pw := &payloadWriter{f: w.f, off: w.end + recordHeaderLen}
	w.bw.Reset(pw)
	var varint [binary.MaxVarintLen64]byte
	if _, err := w.bw.Write(varint[:binary.PutUvarint(varint[:], uint64(len(dataset)))]); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if _, err := w.bw.WriteString(dataset); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if err := w.codec.EncodeTo(w.bw, s); err != nil {
		return fmt.Errorf("store: encoding summary for dataset %q: %w", dataset, err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if pw.n > maxRecord {
		// Unframeable: the record would be rejected by replay. The file now
		// carries a zero header before it, so the oversized bytes are torn
		// off on the next open.
		return fmt.Errorf("store: record for dataset %q is %d bytes (max %d)", dataset, pw.n, maxRecord)
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(pw.n))
	binary.LittleEndian.PutUint32(hdr[4:8], pw.crc)
	if _, err := w.f.WriteAt(hdr[:], w.end); err != nil {
		return fmt.Errorf("store: appending record header: %w", err)
	}
	w.end += recordHeaderLen + pw.n
	return nil
}

// readRecords scans framed records from r, which is positioned just past
// the file header, and applies each decoded (dataset, summary). size is
// the remaining byte count. In strict mode (snapshot chain files, written
// atomically, and sealed segments, fsynced before the manifest demoted
// them) any invalid record is an error. In lax mode (the FINAL segment,
// whose tail a crash may tear) scanning stops at the first STRUCTURALLY
// invalid record — short frame, zero/absurd length, CRC mismatch — with a
// nil error: records reports how many valid records were applied and
// validBytes the length of the valid prefix, which the caller truncates
// to.
//
// A payload that passes its CRC but fails to parse is a hard error in
// BOTH modes: the patch-header-last append discipline guarantees a torn
// append never checksums, so an unintelligible checksummed payload can
// only mean version skew (a binary downgrade reading a future format) or
// a writer bug — truncating it, and every acknowledged record after it,
// would silently destroy data the log still faithfully holds.
func readRecords(r io.Reader, size int64, strict bool, apply func(dataset string, s core.Summary) error) (records, validBytes int64, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var scratch []byte
	invalid := func(format string, args ...any) (int64, int64, error) {
		if strict {
			args = append([]any{records + 1}, args...)
			return records, validBytes, fmt.Errorf("store: record %d: "+format, args...)
		}
		return records, validBytes, nil
	}
	remaining := size
	for remaining > 0 {
		if remaining < recordHeaderLen {
			return invalid("torn header (%d trailing bytes)", remaining)
		}
		var hdr [recordHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return records, validBytes, fmt.Errorf("store: reading record header: %w", err)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecord {
			return invalid("invalid payload length %d", length)
		}
		if length > remaining-recordHeaderLen {
			return invalid("payload runs past the file (%d declared, %d remain)", length, remaining-recordHeaderLen)
		}
		if int64(cap(scratch)) < length {
			scratch = make([]byte, length)
		}
		payload := scratch[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, validBytes, fmt.Errorf("store: reading record payload: %w", err)
		}
		if got := crc32.Checksum(payload, crcTable); got != crc {
			return invalid("checksum mismatch (stored %#08x, computed %#08x)", crc, got)
		}
		nameLen, n := binary.Uvarint(payload)
		if n <= 0 || nameLen > maxDatasetName || int64(n)+int64(nameLen) > length {
			return records, validBytes, fmt.Errorf(
				"store: record %d: checksummed payload has an invalid dataset-name length (version skew or writer bug; refusing to truncate)", records+1)
		}
		dataset := string(payload[n : int64(n)+int64(nameLen)])
		sum, derr := core.DecodeSummary(payload[int64(n)+int64(nameLen):])
		if derr != nil {
			return records, validBytes, fmt.Errorf(
				"store: record %d: checksummed payload failed to decode (version skew or writer bug; refusing to truncate): %w", records+1, derr)
		}
		if err := apply(dataset, sum); err != nil {
			return records, validBytes, fmt.Errorf("store: replaying record %d (dataset %q): %w", records+1, dataset, err)
		}
		records++
		validBytes += recordHeaderLen + length
		remaining -= recordHeaderLen + length
	}
	return records, validBytes, nil
}

// checkMagic validates a file's 5-byte header against the expected magic.
func checkMagic(r io.Reader, want, what string) error {
	var got [magicLen]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return fmt.Errorf("store: reading %s header: %w", what, err)
	}
	if string(got[:]) != want {
		return fmt.Errorf("store: %s header %q is not %q (foreign or future file)", what, got[:], want)
	}
	return nil
}
