package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// benchSummaries builds summaries totalling about `entries` retained keys
// across `count` PPS summaries (one dataset, rotating instances).
func benchSummaries(count, entries int) []core.Summary {
	summ := core.NewSummarizer(2011)
	per := entries / count
	out := make([]core.Summary, count)
	key := uint64(1)
	for i := range out {
		in := make(dataset.Instance, per)
		for j := 0; j < per; j++ {
			in[dataset.Key(key*0x9E3779B97F4A7C15)] = float64(1 + key%997)
			key++
		}
		// tau below every value: all keys retained, so the summary size is
		// exactly per.
		out[i] = summ.SummarizePPS(i, in, 0.5)
	}
	return out
}

// BenchmarkWALAppend measures the durable hot path: one framed,
// checksummed, v2-encoded record per accepted summary (1000 retained
// keys each), no fsync — the configuration a throughput-focused
// deployment runs.
func BenchmarkWALAppend(b *testing.B) {
	sums := benchSummaries(8, 8*1000)
	st, err := Open(b.TempDir(), Options{SnapshotEvery: -1}, func(string, core.Summary) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append("bench", sums[i%len(sums)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	status := st.Status()
	b.ReportMetric(float64(status.WALBytes)/float64(status.WALRecords), "wal-bytes/record")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSnapshotRecover measures crash recovery over a 1M-entry
// registry: the snapshot is written once, then each iteration replays it
// cold through Open. The recover-s metric is the boot-time cost an
// operator actually waits on.
func BenchmarkSnapshotRecover(b *testing.B) {
	const totalEntries = 1_000_000
	sums := benchSummaries(100, totalEntries)
	dir := b.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: -1}, func(string, core.Summary) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Snapshot(func(emit func(string, core.Summary) error) error {
		for i, s := range sums {
			if err := emit(fmt.Sprintf("bench%d", i%10), s); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	st.Close()

	b.ReportAllocs()
	b.ResetTimer()
	var recovered int64
	var recoverTime time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		recovered = 0
		st, err := Open(dir, Options{}, func(_ string, s core.Summary) error {
			recovered += int64(s.Size())
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		st.Close()
		recoverTime += time.Since(start)
	}
	b.StopTimer()
	if recovered != totalEntries {
		b.Fatalf("recovered %d entries, want %d", recovered, totalEntries)
	}
	b.ReportMetric(recoverTime.Seconds()/float64(b.N), "recover-s")
	b.ReportMetric(float64(totalEntries)*float64(b.N)/recoverTime.Seconds(), "entries/s")
}
