package store

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// benchSummaries builds summaries totalling about `entries` retained keys
// across `count` PPS summaries (one dataset, rotating instances).
func benchSummaries(count, entries int) []core.Summary {
	summ := core.NewSummarizer(2011)
	per := entries / count
	out := make([]core.Summary, count)
	key := uint64(1)
	for i := range out {
		in := make(dataset.Instance, per)
		for j := 0; j < per; j++ {
			in[dataset.Key(key*0x9E3779B97F4A7C15)] = float64(1 + key%997)
			key++
		}
		// tau below every value: all keys retained, so the summary size is
		// exactly per.
		out[i] = summ.SummarizePPS(i, in, 0.5)
	}
	return out
}

// BenchmarkWALAppend measures the durable hot path: one framed,
// checksummed, v2-encoded record per accepted summary (1000 retained
// keys each), no fsync — the configuration a throughput-focused
// deployment runs.
func BenchmarkWALAppend(b *testing.B) {
	sums := benchSummaries(8, 8*1000)
	st, err := Open(b.TempDir(), Options{SnapshotEvery: -1}, func(string, core.Summary) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append("bench", sums[i%len(sums)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	status := st.Status()
	b.ReportMetric(float64(status.WALBytes)/float64(status.WALRecords), "wal-bytes/record")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSnapshotRecover measures crash recovery over a 1M-entry
// registry: the snapshot is written once, then each iteration replays it
// cold through Open. The recover-s metric is the boot-time cost an
// operator actually waits on.
func BenchmarkSnapshotRecover(b *testing.B) {
	const totalEntries = 1_000_000
	sums := benchSummaries(100, totalEntries)
	dir := b.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: -1}, func(string, core.Summary) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	wait, err := st.Snapshot(func(emit func(string, core.Summary) error) error {
		for i, s := range sums {
			if err := emit(fmt.Sprintf("bench%d", i%10), s); err != nil {
				return err
			}
		}
		return nil
	}, func(bool) {}, true)
	if err != nil {
		b.Fatal(err)
	}
	if err := wait(); err != nil {
		b.Fatal(err)
	}
	st.Close()

	b.ReportAllocs()
	b.ResetTimer()
	var recovered int64
	var recoverTime time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		recovered = 0
		st, err := Open(dir, Options{}, func(_ string, s core.Summary) error {
			recovered += int64(s.Size())
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		st.Close()
		recoverTime += time.Since(start)
	}
	b.StopTimer()
	if recovered != totalEntries {
		b.Fatalf("recovered %d entries, want %d", recovered, totalEntries)
	}
	b.ReportMetric(recoverTime.Seconds()/float64(b.N), "recover-s")
	b.ReportMetric(float64(totalEntries)*float64(b.N)/recoverTime.Seconds(), "entries/s")
}

// p99 returns the 99th-percentile of the samples. Destructive (sorts).
func p99(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(len(samples)*99)/100]
}

// BenchmarkAppendDuringSnapshot is the tentpole's latency claim measured:
// p99 append latency while a background worker continuously snapshots a
// 1M-entry registry image, against a baseline p99 with no snapshot in
// flight. The p99-ratio metric is what CI watches — durability work off
// the request path means the ratio stays small even though each snapshot
// encodes and fsyncs tens of megabytes.
func BenchmarkAppendDuringSnapshot(b *testing.B) {
	const totalEntries = 1_000_000
	snapSums := benchSummaries(100, totalEntries)
	sums := benchSummaries(8, 8*1000)
	st, err := Open(b.TempDir(), Options{SnapshotEvery: -1}, func(string, core.Summary) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	// Baseline: appends with the snapshot worker idle.
	const baselineOps = 2000
	base := make([]time.Duration, baselineOps)
	for i := range base {
		start := time.Now()
		if _, err := st.Append("bench", sums[i%len(sums)]); err != nil {
			b.Fatal(err)
		}
		base[i] = time.Since(start)
	}
	basep99 := p99(base)

	// Keep one snapshot of the 1M-entry image perpetually in flight.
	dump := func(emit func(string, core.Summary) error) error {
		for i, s := range snapSums {
			if err := emit(fmt.Sprintf("bench%d", i%10), s); err != nil {
				return err
			}
		}
		return nil
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			wait, err := st.Snapshot(dump, func(bool) {}, true)
			if err != nil {
				return
			}
			_ = wait()
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	lat := make([]time.Duration, b.N)
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := st.Append("bench", sums[i%len(sums)]); err != nil {
			b.Fatal(err)
		}
		lat[i] = time.Since(start)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	dur := p99(lat)
	b.ReportMetric(float64(dur.Nanoseconds()), "p99-append-ns")
	b.ReportMetric(float64(basep99.Nanoseconds()), "baseline-p99-ns")
	b.ReportMetric(float64(dur)/float64(basep99), "p99-ratio")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
