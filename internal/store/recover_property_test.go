package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// TestCrashRecoveryProperty is the subsystem's central contract: for
// random interleavings of posts and ingest results (modeled as registry
// Puts — both HTTP paths reduce to Put) with mid-run incremental
// snapshots and segment rotations, recovery from (snapshot chain +
// segments) is bit-for-bit the in-memory registry, and recovery after
// truncating the FINAL segment at an ARBITRARY byte offset is
// bit-for-bit the registry built from the longest valid record prefix.
// Truncation anywhere in a SEALED segment, by contrast, must hard-error:
// sealed segments were fsynced before the manifest retained them, so a
// tear there is lost acknowledged data, not a crash artifact.
//
// The expected state is computed from a test-side shadow model — never
// from the store's own reader — so the check cannot be circular. Every
// append records a mark {segment seq, end offset in that segment, shadow
// clone after the append}. Because snapshots cut at rotation points and
// segments replay in order, the state recovered after truncating the
// final segment (seq L) at offset X is the shadow of the LAST mark with
// seq < L, or seq == L and end <= X — no matter how many chain files and
// sealed segments sit underneath.
func TestCrashRecoveryProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dir := t.TempDir()
		// Tiny segments force rotations; automatic snapshots off so the
		// mid-run snapshots below are the only, deterministic, cuts.
		reg, st := reopen(t, dir, Options{SnapshotEvery: -1, SegmentRecords: 3})

		type mark struct {
			seq   int64 // segment holding the record
			end   int64 // offset in that segment where the record ends
			state shadow
		}
		full := make(shadow)
		var marks []mark

		ops := 15 + rng.Intn(25)
		snapAt := map[int]bool{ops / 3: true, (2 * ops) / 3: true}
		for i := 0; i < ops; i++ {
			spec := specs[rng.Intn(len(specs))]
			sum := randomSummary(rng, spec)
			if err := reg.Put(spec.name, sum); err != nil {
				t.Fatalf("trial %d op %d: put: %v", trial, i, err)
			}
			full.put(spec.name, sum)
			st.mu.Lock()
			marks = append(marks, mark{seq: st.live.seq, end: st.live.w.end, state: full.clone()})
			st.mu.Unlock()
			if snapAt[i] {
				if err := reg.Snapshot(); err != nil {
					t.Fatalf("trial %d op %d: snapshot: %v", trial, i, err)
				}
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}

		// The untouched directory replays to the full state.
		reg2, st2 := reopen(t, dir, Options{})
		mustMatch(t, "full replay", image(t, reg2.Dump), image(t, full.dump))
		st2.Close()

		first, last, ok, err := readManifest(dir)
		if err != nil || !ok {
			t.Fatalf("trial %d: manifest: ok=%v err=%v", trial, ok, err)
		}

		// Truncate the final segment at arbitrary byte offsets — record
		// boundaries, mid-header, mid-payload, inside the file magic, even
		// zero — and check the recovered registry against the
		// longest-valid-prefix expectation.
		livePath := filepath.Join(dir, segmentName(last))
		liveBytes, err := os.ReadFile(livePath)
		if err != nil {
			t.Fatalf("trial %d: reading final segment: %v", trial, err)
		}
		offsets := []int64{0, 3, magicLen, int64(len(liveBytes))}
		for _, m := range marks {
			if m.seq == last {
				offsets = append(offsets, m.end, m.end-1, m.end+3)
			}
		}
		for k := 0; k < 8; k++ {
			offsets = append(offsets, int64(rng.Intn(len(liveBytes)+1)))
		}
		for _, x := range offsets {
			if x < 0 || x > int64(len(liveBytes)) {
				continue
			}
			if err := os.WriteFile(livePath, liveBytes[:x], 0o644); err != nil {
				t.Fatal(err)
			}
			expected := make(shadow)
			for _, m := range marks {
				if m.seq < last || (m.seq == last && m.end <= x) {
					expected = m.state
				}
			}
			regT := server.NewRegistry()
			stT, err := Open(dir, Options{}, regT.Put)
			if err != nil {
				t.Fatalf("trial %d: open after truncation at %d: %v", trial, x, err)
			}
			mustMatch(t, "truncation", image(t, regT.Dump), image(t, expected.dump))

			// The acceptance criterion speaks of query answers: spot-check
			// that the recovered summaries answer bit-identically too (the
			// byte equality above already implies it; this pins the claim
			// at the query layer).
			if err := regT.Dump(func(ds string, s core.Summary) error {
				var got, want float64
				switch v := s.(type) {
				case *core.PPSSummary:
					got = v.SubsetSum(nil)
					want = expected[ds][s.InstanceID()].(*core.PPSSummary).SubsetSum(nil)
				case *core.BottomKSummary:
					got = v.SubsetSum(nil)
					want = expected[ds][s.InstanceID()].(*core.BottomKSummary).SubsetSum(nil)
				default:
					return nil
				}
				if got != want {
					t.Fatalf("trial %d truncation at %d: %s/%d subset sum %v != %v",
						trial, x, ds, s.InstanceID(), got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			stT.Close()
		}

		// Restore the final segment, then tear a SEALED retained segment:
		// recovery must refuse outright rather than quietly truncate.
		if err := os.WriteFile(livePath, liveBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if first < last {
			sealedPath := filepath.Join(dir, segmentName(first))
			size := fileSize(t, sealedPath)
			if err := os.Truncate(sealedPath, size-2); err != nil {
				t.Fatal(err)
			}
			regT := server.NewRegistry()
			if _, err := Open(dir, Options{}, regT.Put); err == nil {
				t.Fatalf("trial %d: Open silently accepted a torn sealed segment", trial)
			}
		}
	}
}
