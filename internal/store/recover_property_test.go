package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// TestCrashRecoveryProperty is the subsystem's central contract: for
// random interleavings of posts and ingest results (modeled as registry
// Puts — both HTTP paths reduce to Put), recovery from (snapshot + WAL)
// is bit-for-bit the in-memory registry, and recovery after truncating
// the WAL at an ARBITRARY byte offset is bit-for-bit the registry built
// from the longest valid record prefix.
//
// The expected state is computed from a test-side shadow model — never
// from the store's own reader — so the check cannot be circular: the
// shadow tracks each record's end offset as reported by Status, and a
// truncation at X is expected to keep exactly the records that end at or
// before X.
func TestCrashRecoveryProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dir := t.TempDir()
		reg, st := reopen(t, dir, Options{SnapshotEvery: 5})

		type walRec struct {
			end int64 // absolute file offset where the record ends
			ds  string
			sum core.Summary
		}
		full := make(shadow) // the in-memory registry, modeled
		var snapState shadow // shadow at the last snapshot (nil = none)
		var walLog []walRec  // records currently in the WAL, in order

		ops := 15 + rng.Intn(25)
		for i := 0; i < ops; i++ {
			spec := specs[rng.Intn(len(specs))]
			sum := randomSummary(rng, spec)
			if err := reg.Put(spec.name, sum); err != nil {
				t.Fatalf("trial %d op %d: put: %v", trial, i, err)
			}
			full.put(spec.name, sum)
			status := st.Status()
			if status.WALRecords == 0 {
				// The put tripped an automatic snapshot: the full state —
				// including this record — moved into the snapshot and the
				// WAL restarted.
				snapState = full.clone()
				walLog = nil
			} else {
				walLog = append(walLog, walRec{
					end: magicLen + status.WALBytes,
					ds:  spec.name,
					sum: sum,
				})
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}

		// The full log replays to the full state.
		reg2, st2 := reopen(t, dir, Options{})
		mustMatch(t, "full replay", image(t, reg2.Dump), image(t, full.dump))
		st2.Close()

		// Truncate the WAL at arbitrary byte offsets — record boundaries,
		// mid-header, mid-payload, inside the file magic — and check the
		// recovered registry against the longest-valid-prefix expectation.
		walPath := filepath.Join(dir, walName)
		walBytes, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatalf("trial %d: reading WAL: %v", trial, err)
		}
		offsets := []int64{0, 3, magicLen, int64(len(walBytes))}
		for _, r := range walLog {
			offsets = append(offsets, r.end, r.end-1, r.end+3)
		}
		for k := 0; k < 8; k++ {
			offsets = append(offsets, int64(rng.Intn(len(walBytes)+1)))
		}
		for _, x := range offsets {
			if x < 0 || x > int64(len(walBytes)) {
				continue
			}
			if err := os.WriteFile(walPath, walBytes[:x], 0o644); err != nil {
				t.Fatal(err)
			}
			expected := make(shadow)
			if snapState != nil {
				expected = snapState.clone()
			}
			for _, r := range walLog {
				if r.end <= x {
					expected.put(r.ds, r.sum)
				}
			}
			regT := server.NewRegistry()
			stT, err := Open(dir, Options{}, regT.Put)
			if err != nil {
				t.Fatalf("trial %d: open after truncation at %d: %v", trial, x, err)
			}
			mustMatch(t, "truncation", image(t, regT.Dump), image(t, expected.dump))

			// The acceptance criterion speaks of query answers: spot-check
			// that the recovered summaries answer bit-identically too (the
			// byte equality above already implies it; this pins the claim
			// at the query layer).
			if err := regT.Dump(func(ds string, s core.Summary) error {
				var got, want float64
				switch v := s.(type) {
				case *core.PPSSummary:
					got = v.SubsetSum(nil)
					want = expected[ds][s.InstanceID()].(*core.PPSSummary).SubsetSum(nil)
				case *core.BottomKSummary:
					got = v.SubsetSum(nil)
					want = expected[ds][s.InstanceID()].(*core.BottomKSummary).SubsetSum(nil)
				default:
					return nil
				}
				if got != want {
					t.Fatalf("trial %d truncation at %d: %s/%d subset sum %v != %v",
						trial, x, ds, s.InstanceID(), got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			stT.Close()
		}
	}
}
