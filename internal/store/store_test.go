package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/server"
)

// The store implements the registry's persistence seam.
var _ server.Persister = (*Store)(nil)

// datasetSpec pins the per-dataset invariants (kind, salt, coordination)
// the registry enforces, so random operation sequences never trip the
// compatibility checks.
type datasetSpec struct {
	name   string
	kind   string
	salt   uint64
	shared bool
}

var specs = []datasetSpec{
	{name: "alpha", kind: "pps", salt: 101},
	{name: "beta", kind: "bottomk", salt: 202, shared: true},
	{name: "gamma", kind: "set", salt: 303},
}

// randomSummary draws a small random summary matching spec for a random
// instance in [0, 4).
func randomSummary(rng *rand.Rand, spec datasetSpec) core.Summary {
	summ := core.NewSummarizer(spec.salt)
	if spec.shared {
		summ = core.NewCoordinatedSummarizer(spec.salt)
	}
	instance := rng.Intn(4)
	n := 1 + rng.Intn(40)
	in := make(dataset.Instance, n)
	for len(in) < n {
		in[dataset.Key(rng.Uint64())] = float64(1 + rng.Intn(1000))
	}
	switch spec.kind {
	case "pps":
		return summ.SummarizePPS(instance, in, 1+rng.Float64()*500)
	case "bottomk":
		return summ.SummarizeBottomK(instance, in, 1+rng.Intn(10), sampling.EXP{})
	case "set":
		members := make(map[dataset.Key]bool, len(in))
		for h := range in {
			members[h] = true
		}
		return summ.SummarizeSet(instance, members, 0.5)
	}
	panic("unknown kind")
}

// image renders a registry (or shadow state) as v2 bytes per (dataset,
// instance): the bit-for-bit comparison currency of every recovery test.
// Encoding equality implies query equality — v2 bytes determine the
// summary and its randomization completely, and queries are
// deterministic functions of both.
func image(t *testing.T, dump func(emit func(string, core.Summary) error) error) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := dump(func(ds string, s core.Summary) error {
		data, err := core.EncodeSummary(s, 2)
		if err != nil {
			return err
		}
		out[fmt.Sprintf("%s/%d", ds, s.InstanceID())] = data
		return nil
	})
	if err != nil {
		t.Fatalf("dumping image: %v", err)
	}
	return out
}

// shadow is the test's independent model of registry state.
type shadow map[string]map[int]core.Summary

func (sh shadow) put(ds string, s core.Summary) {
	if sh[ds] == nil {
		sh[ds] = make(map[int]core.Summary)
	}
	sh[ds][s.InstanceID()] = s
}

func (sh shadow) clone() shadow {
	out := make(shadow, len(sh))
	for ds, m := range sh {
		out[ds] = make(map[int]core.Summary, len(m))
		for id, s := range m {
			out[ds][id] = s
		}
	}
	return out
}

func (sh shadow) dump(emit func(string, core.Summary) error) error {
	for ds, m := range sh {
		for _, s := range m {
			if err := emit(ds, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// mustMatch asserts two images are identical.
func mustMatch(t *testing.T, what string, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d summaries, want %d", what, len(got), len(want))
	}
	for key, wb := range want {
		gb, ok := got[key]
		if !ok {
			t.Fatalf("%s: missing %s", what, key)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("%s: %s differs after recovery (%d vs %d bytes)", what, key, len(gb), len(wb))
		}
	}
}

// reopen replays dir into a fresh registry and returns it with its store.
func reopen(t *testing.T, dir string, opts Options) (*server.Registry, *Store) {
	t.Helper()
	reg := server.NewRegistry()
	st, err := Open(dir, opts, reg.Put)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	reg.SetPersister(st)
	return reg, st
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	reg, st := reopen(t, dir, Options{})

	want := make(shadow)
	for i := 0; i < 25; i++ {
		spec := specs[rng.Intn(len(specs))]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatalf("put: %v", err)
		}
		want.put(spec.name, s)
	}
	status := st.Status()
	if status.WALRecords != 25 {
		t.Fatalf("WALRecords = %d, want 25", status.WALRecords)
	}
	if status.WALBytes <= 0 {
		t.Fatalf("WALBytes = %d, want > 0", status.WALBytes)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "round trip", image(t, reg2.Dump), image(t, want.dump))
	status = st2.Status()
	if status.RecoveredDatasets != len(specs) {
		t.Fatalf("RecoveredDatasets = %d, want %d", status.RecoveredDatasets, len(specs))
	}
	// Recovered summaries are distinct (dataset, instance) entries — the
	// registry's contents — not the 25 replayed records (re-puts replace).
	distinct := 0
	for _, m := range want {
		distinct += len(m)
	}
	if status.RecoveredSummaries != int64(distinct) {
		t.Fatalf("RecoveredSummaries = %d, want %d", status.RecoveredSummaries, distinct)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	reg, st := reopen(t, dir, Options{SnapshotEvery: 4})

	want := make(shadow)
	for i := 0; i < 10; i++ {
		spec := specs[i%len(specs)]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatalf("put: %v", err)
		}
		want.put(spec.name, s)
	}
	// 10 appends with a snapshot every 4: two snapshots fired, WAL holds
	// the 2 records since the second.
	status := st.Status()
	if status.WALRecords != 2 {
		t.Fatalf("WALRecords = %d, want 2 (snapshots did not fire)", status.WALRecords)
	}
	if status.SnapshotEntries == 0 || status.LastSnapshot == "" {
		t.Fatalf("snapshot status not recorded: %+v", status)
	}
	st.Close()

	reg2, st2 := reopen(t, dir, Options{SnapshotEvery: 4})
	mustMatch(t, "snapshot+wal", image(t, reg2.Dump), image(t, want.dump))

	// An explicit snapshot (the shutdown path) empties the WAL.
	if err := reg2.Snapshot(); err != nil {
		t.Fatalf("explicit snapshot: %v", err)
	}
	status = st2.Status()
	if status.WALRecords != 0 || status.WALBytes != 0 {
		t.Fatalf("WAL not truncated after snapshot: %+v", status)
	}
	st2.Close()

	reg3, st3 := reopen(t, dir, Options{})
	defer st3.Close()
	mustMatch(t, "snapshot only", image(t, reg3.Dump), image(t, want.dump))
	if got := st3.Status().WALRecords; got != 0 {
		t.Fatalf("WALRecords after snapshot-only recovery = %d, want 0", got)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	for i := 0; i < 5; i++ {
		spec := specs[0]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatalf("put: %v", err)
		}
		want.put(spec.name, s)
	}
	st.Close()

	// A crash mid-append: garbage where the sixth record would be.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xCB, 0x53, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, walPath)

	reg2, st2 := reopen(t, dir, Options{})
	mustMatch(t, "torn tail", image(t, reg2.Dump), image(t, want.dump))
	if got := fileSize(t, walPath); got >= sizeBefore {
		t.Fatalf("torn tail not truncated: %d >= %d", got, sizeBefore)
	}

	// Appends continue cleanly from the truncated boundary.
	s := randomSummary(rng, specs[0])
	if err := reg2.Put(specs[0].name, s); err != nil {
		t.Fatalf("put after truncation: %v", err)
	}
	want.put(specs[0].name, s)
	st2.Close()

	reg3, st3 := reopen(t, dir, Options{})
	defer st3.Close()
	mustMatch(t, "append after truncation", image(t, reg3.Dump), image(t, want.dump))
}

func TestSnapshotAtomicity(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	put := func(n int) {
		for i := 0; i < n; i++ {
			spec := specs[rng.Intn(len(specs))]
			s := randomSummary(rng, spec)
			if err := reg.Put(spec.name, s); err != nil {
				t.Fatalf("put: %v", err)
			}
			want.put(spec.name, s)
		}
	}
	put(6)
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	put(4) // these live only in the WAL

	// Simulate a crash between temp-file write and rename: the new image
	// is fully written but never promoted.
	codec, err := core.CodecByVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	tmp, entries, err := writeSnapshotTemp(dir, codec, reg.Dump)
	if err != nil {
		t.Fatalf("writeSnapshotTemp: %v", err)
	}
	if entries == 0 {
		t.Fatal("temp snapshot wrote no entries")
	}
	snapBefore, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Recovery must use the previous snapshot (untouched by the aborted
	// attempt) plus the WAL, and must discard the stray temp file.
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "aborted snapshot", image(t, reg2.Dump), image(t, want.dump))
	snapAfter, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBefore, snapAfter) {
		t.Fatal("previous snapshot was modified by the aborted attempt")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray snapshot temp file survived recovery: %v", err)
	}
}

func TestSnapshotCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	reg, st := reopen(t, dir, Options{})
	if err := reg.Put("alpha", randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a payload byte: snapshots are renamed atomically, so damage is
	// disk corruption and replay must refuse rather than guess.
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, func(string, core.Summary) error { return nil }); err == nil {
		t.Fatal("Open accepted a corrupted snapshot")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestOverlongDatasetNameRefusedAtWriteTime(t *testing.T) {
	// Replay hard-fails on a checksummed record whose dataset name exceeds
	// maxDatasetName, so the write side must refuse such a name before it
	// reaches the log — otherwise one oversized POST would be acknowledged
	// and then crash-loop every subsequent Open.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	keep := randomSummary(rng, specs[0])
	if err := reg.Put(specs[0].name, keep); err != nil {
		t.Fatal(err)
	}
	want.put(specs[0].name, keep)

	long := string(bytes.Repeat([]byte("n"), maxDatasetName+1))
	if err := reg.Put(long, randomSummary(rng, specs[0])); err == nil {
		t.Fatal("Put accepted a dataset name longer than maxDatasetName")
	}
	// The rollback must be complete: the registry answers as if the post
	// never happened.
	if _, err := reg.Get(long, nil); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("overlong dataset survived rollback: err=%v", err)
	}
	// A name exactly at the bound is fine.
	edge := string(bytes.Repeat([]byte("e"), maxDatasetName))
	s := randomSummary(rng, specs[0])
	if err := reg.Put(edge, s); err != nil {
		t.Fatalf("put with max-length name: %v", err)
	}
	want.put(edge, s)
	st.Close()

	// The log holds only refusable-free records, so recovery succeeds and
	// matches the surviving state bit-for-bit.
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "after refused overlong name", image(t, reg2.Dump), image(t, want.dump))
}

func TestDirectoryLockExcludesSecondStore(t *testing.T) {
	if !lockEnforced {
		t.Skip("directory locking is advisory (no-op) on this platform")
	}
	dir := t.TempDir()
	_, st := reopen(t, dir, Options{})
	if _, err := Open(dir, Options{}, func(string, core.Summary) error { return nil }); err == nil {
		t.Fatal("second Open on a live directory succeeded; two writers would corrupt the WAL")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the flock: the directory is usable again.
	_, st2 := reopen(t, dir, Options{})
	st2.Close()
}

func TestSnapshotWALOverlapReplaysIdempotently(t *testing.T) {
	// The crash window between snapshot promotion and WAL truncation: the
	// snapshot holds everything and the WAL still holds everything too.
	// Replay must converge to the same registry (idempotent re-puts) and
	// the recovery report must count recovered summaries, not replayed
	// records.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	for i := 0; i < 6; i++ {
		spec := specs[i%len(specs)]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatal(err)
		}
		want.put(spec.name, s)
	}
	distinct := 0
	for _, m := range want {
		distinct += len(m)
	}
	// Promote a full snapshot by hand, WITHOUT the WAL truncation that
	// Store.Snapshot would do next — exactly the crash-window state.
	codec, err := core.CodecByVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	tmp, _, err := writeSnapshotTemp(dir, codec, reg.Dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := promoteSnapshot(dir, tmp); err != nil {
		t.Fatal(err)
	}
	st.Close()

	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "overlap replay", image(t, reg2.Dump), image(t, want.dump))
	status := st2.Status()
	if status.RecoveredSummaries != int64(distinct) {
		t.Fatalf("RecoveredSummaries = %d, want %d distinct (records were double-counted)",
			status.RecoveredSummaries, distinct)
	}
	if status.RecoveredDatasets != len(want) {
		t.Fatalf("RecoveredDatasets = %d, want %d", status.RecoveredDatasets, len(want))
	}
}

func TestFsyncFailureDoesNotResurrectRecord(t *testing.T) {
	// With -fsync, a Sync failure NACKs the request and the registry rolls
	// back; the frame that already hit the file must be erased, or a
	// restart would resurrect a summary the client was told did not land.
	// A real Sync failure needs a broken disk; instead, verify the
	// truncation arithmetic the recovery depends on: after an append is
	// undone via Truncate(prevEnd), replay sees only the earlier records.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	reg, st := reopen(t, dir, Options{})
	keep := randomSummary(rng, specs[0])
	if err := reg.Put(specs[0].name, keep); err != nil {
		t.Fatal(err)
	}
	prevEnd := st.w.end
	if _, err := st.Append("doomed", randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	// Undo exactly as the Sync-failure path does.
	if err := st.wal.Truncate(prevEnd); err != nil {
		t.Fatal(err)
	}
	st.w.end = prevEnd
	st.Close()

	var got []string
	st2, err := Open(dir, Options{}, func(ds string, s core.Summary) error {
		got = append(got, ds)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if len(got) != 1 || got[0] != specs[0].name {
		t.Fatalf("replay found %v, want only [%s]: the unacknowledged record survived", got, specs[0].name)
	}
}

func TestSnapshotFailureSurfacesAndBacksOff(t *testing.T) {
	// Deleting the data dir out from under the store keeps the open WAL
	// fd appendable but makes snapshot temp-file creation fail — a stand-
	// in for quota/permission failures. Puts must keep succeeding (the
	// WAL holds them), the failure must surface in Status, and the next
	// automatic attempt must wait a full interval, not fire per append.
	dir := filepath.Join(t.TempDir(), "sub")
	rng := rand.New(rand.NewSource(8))
	reg, st := reopen(t, dir, Options{SnapshotEvery: 2})
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Second put trips the due snapshot, which fails; the put succeeds.
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatalf("put with failing snapshot: %v", err)
	}
	status := st.Status()
	if status.SnapshotError == "" {
		t.Fatal("snapshot failure not surfaced in Status")
	}
	// Backoff: the failed attempt reset the interval, so the very next
	// put must not be due again (sinceSnapshot restarted at 0).
	if due, err := st.Append("probe", randomSummary(rng, specs[0])); err != nil || due {
		t.Fatalf("append after failed snapshot: due=%v err=%v (want no immediate retry)", due, err)
	}
	st.Close()
}
