package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/testutil"
)

// The store implements the registry's persistence seam.
var _ server.Persister = (*Store)(nil)

// datasetSpec pins the per-dataset invariants (kind, salt, coordination)
// the registry enforces, so random operation sequences never trip the
// compatibility checks.
type datasetSpec struct {
	name   string
	kind   string
	salt   uint64
	shared bool
}

var specs = []datasetSpec{
	{name: "alpha", kind: "pps", salt: 101},
	{name: "beta", kind: "bottomk", salt: 202, shared: true},
	{name: "gamma", kind: "set", salt: 303},
}

// randomSummary draws a small random summary matching spec for a random
// instance in [0, 4).
func randomSummary(rng *rand.Rand, spec datasetSpec) core.Summary {
	summ := core.NewSummarizer(spec.salt)
	if spec.shared {
		summ = core.NewCoordinatedSummarizer(spec.salt)
	}
	instance := rng.Intn(4)
	n := 1 + rng.Intn(40)
	in := make(dataset.Instance, n)
	for len(in) < n {
		in[dataset.Key(rng.Uint64())] = float64(1 + rng.Intn(1000))
	}
	switch spec.kind {
	case "pps":
		return summ.SummarizePPS(instance, in, 1+rng.Float64()*500)
	case "bottomk":
		return summ.SummarizeBottomK(instance, in, 1+rng.Intn(10), sampling.EXP{})
	case "set":
		members := make(map[dataset.Key]bool, len(in))
		for h := range in {
			members[h] = true
		}
		return summ.SummarizeSet(instance, members, 0.5)
	}
	panic("unknown kind")
}

// image renders a registry (or shadow state) as v2 bytes per (dataset,
// instance): the bit-for-bit comparison currency of every recovery test.
// Encoding equality implies query equality — v2 bytes determine the
// summary and its randomization completely, and queries are
// deterministic functions of both.
func image(t *testing.T, dump func(emit func(string, core.Summary) error) error) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := dump(func(ds string, s core.Summary) error {
		data, err := core.EncodeSummary(s, 2)
		if err != nil {
			return err
		}
		out[fmt.Sprintf("%s/%d", ds, s.InstanceID())] = data
		return nil
	})
	if err != nil {
		t.Fatalf("dumping image: %v", err)
	}
	return out
}

// shadow is the test's independent model of registry state.
type shadow map[string]map[int]core.Summary

func (sh shadow) put(ds string, s core.Summary) {
	if sh[ds] == nil {
		sh[ds] = make(map[int]core.Summary)
	}
	sh[ds][s.InstanceID()] = s
}

func (sh shadow) clone() shadow {
	out := make(shadow, len(sh))
	for ds, m := range sh {
		out[ds] = make(map[int]core.Summary, len(m))
		for id, s := range m {
			out[ds][id] = s
		}
	}
	return out
}

func (sh shadow) dump(emit func(string, core.Summary) error) error {
	for ds, m := range sh {
		for _, s := range m {
			if err := emit(ds, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// mustMatch asserts two images are identical.
func mustMatch(t *testing.T, what string, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d summaries, want %d", what, len(got), len(want))
	}
	for key, wb := range want {
		gb, ok := got[key]
		if !ok {
			t.Fatalf("%s: missing %s", what, key)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("%s: %s differs after recovery (%d vs %d bytes)", what, key, len(gb), len(wb))
		}
	}
}

// reopen replays dir into a fresh registry and returns it with its store,
// wired exactly as summaryd wires them: persister attached after replay,
// dirty tracking narrowed to the datasets with live WAL records.
func reopen(t *testing.T, dir string, opts Options) (*server.Registry, *Store) {
	t.Helper()
	reg := server.NewRegistry()
	st, err := Open(dir, opts, reg.Put)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	reg.SetPersister(st)
	reg.MarkClean(st.WALDatasets())
	return reg, st
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	reg, st := reopen(t, dir, Options{})

	want := make(shadow)
	for i := 0; i < 25; i++ {
		spec := specs[rng.Intn(len(specs))]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatalf("put: %v", err)
		}
		want.put(spec.name, s)
	}
	status := st.Status()
	if status.WALRecords != 25 {
		t.Fatalf("WALRecords = %d, want 25", status.WALRecords)
	}
	if status.WALBytes <= 0 {
		t.Fatalf("WALBytes = %d, want > 0", status.WALBytes)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "round trip", image(t, reg2.Dump), image(t, want.dump))
	status = st2.Status()
	if status.RecoveredDatasets != len(specs) {
		t.Fatalf("RecoveredDatasets = %d, want %d", status.RecoveredDatasets, len(specs))
	}
	// Recovered summaries are distinct (dataset, instance) entries — the
	// registry's contents — not the 25 replayed records (re-puts replace).
	distinct := 0
	for _, m := range want {
		distinct += len(m)
	}
	if status.RecoveredSummaries != int64(distinct) {
		t.Fatalf("RecoveredSummaries = %d, want %d", status.RecoveredSummaries, distinct)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	// Every store opened here is closed; the snapshot workers must all
	// have exited by the end of the test.
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	// Automatic snapshots off: every snapshot in this test is an explicit,
	// synchronous Registry.Snapshot, so the lifecycle is deterministic.
	reg, st := reopen(t, dir, Options{SnapshotEvery: -1})

	want := make(shadow)
	put := func(reg *server.Registry, n int) {
		for i := 0; i < n; i++ {
			spec := specs[i%len(specs)]
			s := randomSummary(rng, spec)
			if err := reg.Put(spec.name, s); err != nil {
				t.Fatalf("put: %v", err)
			}
			want.put(spec.name, s)
		}
	}
	put(reg, 8)
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	put(reg, 2)
	// The snapshot covered the first 8 records; the WAL holds the 2 since.
	status := st.Status()
	if status.WALRecords != 2 {
		t.Fatalf("WALRecords = %d, want 2 (snapshot did not supersede the log)", status.WALRecords)
	}
	if status.SnapshotEntries == 0 || status.LastSnapshot == "" || status.SnapshotChain != 1 {
		t.Fatalf("snapshot status not recorded: %+v", status)
	}
	st.Close()

	reg2, st2 := reopen(t, dir, Options{SnapshotEvery: -1})
	mustMatch(t, "snapshot+wal", image(t, reg2.Dump), image(t, want.dump))

	// An explicit snapshot (the shutdown path) supersedes the whole WAL —
	// including with automatic snapshots disabled, the disabled-auto bug
	// this release fixes.
	if err := reg2.Snapshot(); err != nil {
		t.Fatalf("explicit snapshot: %v", err)
	}
	status = st2.Status()
	if status.WALRecords != 0 || status.WALBytes != 0 {
		t.Fatalf("WAL not superseded after snapshot: %+v", status)
	}
	st2.Close()

	reg3, st3 := reopen(t, dir, Options{})
	defer st3.Close()
	mustMatch(t, "snapshot only", image(t, reg3.Dump), image(t, want.dump))
	if got := st3.Status().WALRecords; got != 0 {
		t.Fatalf("WALRecords after snapshot-only recovery = %d, want 0", got)
	}
}

func TestAutomaticSnapshotsRunInBackground(t *testing.T) {
	// Close must stop the snapshot worker, not abandon it.
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	reg, st := reopen(t, dir, Options{SnapshotEvery: 4})
	want := make(shadow)
	for i := 0; i < 10; i++ {
		spec := specs[i%len(specs)]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatalf("put: %v", err)
		}
		want.put(spec.name, s)
	}
	// The 4th put queued a background snapshot; poll until the worker has
	// committed one (the only nondeterminism is its scheduling).
	deadline := time.Now().Add(10 * time.Second)
	for {
		status := st.Status()
		if status.SnapshotEntries > 0 && status.LastSnapshot != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background snapshot never committed: %+v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st.Close()
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "background snapshot", image(t, reg2.Dump), image(t, want.dump))
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	for i := 0; i < 5; i++ {
		spec := specs[0]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatalf("put: %v", err)
		}
		want.put(spec.name, s)
	}
	st.Close()

	// A crash mid-append: garbage where the sixth record would be, in the
	// live (final) segment — the one place torn bytes are legitimate.
	walPath := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xCB, 0x53, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, walPath)

	reg2, st2 := reopen(t, dir, Options{})
	mustMatch(t, "torn tail", image(t, reg2.Dump), image(t, want.dump))
	if got := fileSize(t, walPath); got >= sizeBefore {
		t.Fatalf("torn tail not truncated: %d >= %d", got, sizeBefore)
	}

	// Appends continue cleanly from the truncated boundary.
	s := randomSummary(rng, specs[0])
	if err := reg2.Put(specs[0].name, s); err != nil {
		t.Fatalf("put after truncation: %v", err)
	}
	want.put(specs[0].name, s)
	st2.Close()

	reg3, st3 := reopen(t, dir, Options{})
	defer st3.Close()
	mustMatch(t, "append after truncation", image(t, reg3.Dump), image(t, want.dump))
}

func TestSnapshotAtomicity(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	put := func(n int) {
		for i := 0; i < n; i++ {
			spec := specs[rng.Intn(len(specs))]
			s := randomSummary(rng, spec)
			if err := reg.Put(spec.name, s); err != nil {
				t.Fatalf("put: %v", err)
			}
			want.put(spec.name, s)
		}
	}
	put(6)
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	put(4) // these live only in the WAL

	// Simulate a crash between temp-file write and rename: the new image
	// is fully written but never promoted.
	codec, err := core.CodecByVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	tmp, entries, err := writeSnapshotTemp(dir, codec, reg.Dump)
	if err != nil {
		t.Fatalf("writeSnapshotTemp: %v", err)
	}
	if entries == 0 {
		t.Fatal("temp snapshot wrote no entries")
	}
	snapBefore, err := os.ReadFile(filepath.Join(dir, snapName(1)))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Recovery must use the previous snapshot (untouched by the aborted
	// attempt) plus the WAL, and must discard the stray temp file.
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "aborted snapshot", image(t, reg2.Dump), image(t, want.dump))
	snapAfter, err := os.ReadFile(filepath.Join(dir, snapName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBefore, snapAfter) {
		t.Fatal("previous snapshot was modified by the aborted attempt")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray snapshot temp file survived recovery: %v", err)
	}
}

func TestSnapshotCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	reg, st := reopen(t, dir, Options{})
	if err := reg.Put("alpha", randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a payload byte: snapshots are renamed atomically, so damage is
	// disk corruption and replay must refuse rather than guess.
	path := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, func(string, core.Summary) error { return nil }); err == nil {
		t.Fatal("Open accepted a corrupted snapshot")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestOverlongDatasetNameRefusedAtWriteTime(t *testing.T) {
	// Replay hard-fails on a checksummed record whose dataset name exceeds
	// maxDatasetName, so the write side must refuse such a name before it
	// reaches the log — otherwise one oversized POST would be acknowledged
	// and then crash-loop every subsequent Open.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	keep := randomSummary(rng, specs[0])
	if err := reg.Put(specs[0].name, keep); err != nil {
		t.Fatal(err)
	}
	want.put(specs[0].name, keep)

	long := string(bytes.Repeat([]byte("n"), maxDatasetName+1))
	if err := reg.Put(long, randomSummary(rng, specs[0])); err == nil {
		t.Fatal("Put accepted a dataset name longer than maxDatasetName")
	}
	// The rollback must be complete: the registry answers as if the post
	// never happened.
	if _, err := reg.Get(long, nil); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("overlong dataset survived rollback: err=%v", err)
	}
	// A name exactly at the bound is fine.
	edge := string(bytes.Repeat([]byte("e"), maxDatasetName))
	s := randomSummary(rng, specs[0])
	if err := reg.Put(edge, s); err != nil {
		t.Fatalf("put with max-length name: %v", err)
	}
	want.put(edge, s)
	st.Close()

	// The log holds only refusable-free records, so recovery succeeds and
	// matches the surviving state bit-for-bit.
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "after refused overlong name", image(t, reg2.Dump), image(t, want.dump))
}

func TestDirectoryLockExcludesSecondStore(t *testing.T) {
	if !lockEnforced {
		t.Skip("directory locking is advisory (no-op) on this platform")
	}
	dir := t.TempDir()
	_, st := reopen(t, dir, Options{})
	if _, err := Open(dir, Options{}, func(string, core.Summary) error { return nil }); err == nil {
		t.Fatal("second Open on a live directory succeeded; two writers would corrupt the WAL")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the flock: the directory is usable again.
	_, st2 := reopen(t, dir, Options{})
	st2.Close()
}

func TestSnapshotWALOverlapReplaysIdempotently(t *testing.T) {
	// The crash window between snapshot promotion and WAL truncation: the
	// snapshot holds everything and the WAL still holds everything too.
	// Replay must converge to the same registry (idempotent re-puts) and
	// the recovery report must count recovered summaries, not replayed
	// records.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	for i := 0; i < 6; i++ {
		spec := specs[i%len(specs)]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatal(err)
		}
		want.put(spec.name, s)
	}
	distinct := 0
	for _, m := range want {
		distinct += len(m)
	}
	// Promote a full snapshot by hand, WITHOUT the WAL truncation that
	// Store.Snapshot would do next — exactly the crash-window state.
	codec, err := core.CodecByVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	tmp, _, err := writeSnapshotTemp(dir, codec, reg.Dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := promoteSnapshot(dir, tmp, 1); err != nil {
		t.Fatal(err)
	}
	st.Close()

	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "overlap replay", image(t, reg2.Dump), image(t, want.dump))
	status := st2.Status()
	if status.RecoveredSummaries != int64(distinct) {
		t.Fatalf("RecoveredSummaries = %d, want %d distinct (records were double-counted)",
			status.RecoveredSummaries, distinct)
	}
	if status.RecoveredDatasets != len(want) {
		t.Fatalf("RecoveredDatasets = %d, want %d", status.RecoveredDatasets, len(want))
	}
}

func TestFsyncFailureDoesNotResurrectRecord(t *testing.T) {
	// With -fsync, a Sync failure NACKs the request and the registry rolls
	// back; the frame that already hit the file must be erased, or a
	// restart would resurrect a summary the client was told did not land.
	// A real Sync failure needs a broken disk; instead, verify the
	// truncation arithmetic the recovery depends on: after an append is
	// undone via Truncate(prevEnd), replay sees only the earlier records.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	reg, st := reopen(t, dir, Options{})
	keep := randomSummary(rng, specs[0])
	if err := reg.Put(specs[0].name, keep); err != nil {
		t.Fatal(err)
	}
	prevEnd := st.live.w.end
	if _, err := st.Append("doomed", randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	// Undo exactly as the Sync-failure path does.
	if err := st.live.f.Truncate(prevEnd); err != nil {
		t.Fatal(err)
	}
	st.live.w.end = prevEnd
	st.Close()

	var got []string
	st2, err := Open(dir, Options{}, func(ds string, s core.Summary) error {
		got = append(got, ds)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if len(got) != 1 || got[0] != specs[0].name {
		t.Fatalf("replay found %v, want only [%s]: the unacknowledged record survived", got, specs[0].name)
	}
}

func TestSnapshotFailureSurfacesAndBacksOff(t *testing.T) {
	// Deleting the data dir out from under the store keeps the open WAL
	// fd appendable but makes snapshot temp-file creation fail — a stand-
	// in for quota/permission failures. Puts must keep succeeding (the
	// WAL holds them), the failure must surface in Status, and the next
	// automatic attempt must wait a full interval, not fire per append.
	dir := filepath.Join(t.TempDir(), "sub")
	rng := rand.New(rand.NewSource(8))
	reg, st := reopen(t, dir, Options{SnapshotEvery: 2})
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Second put trips the due snapshot, which fails; the put succeeds.
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatalf("put with failing snapshot: %v", err)
	}
	status := st.Status()
	if status.SnapshotError == "" {
		t.Fatal("snapshot failure not surfaced in Status")
	}
	// Backoff: the failed attempt reset the interval, so the very next
	// put must not be due again (sinceSnapshot restarted at 0).
	if due, err := st.Append("probe", randomSummary(rng, specs[0])); err != nil || due {
		t.Fatalf("append after failed snapshot: due=%v err=%v (want no immediate retry)", due, err)
	}
	st.Close()
}

func TestSegmentRotationBoundsFiles(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(12))
	opts := Options{SnapshotEvery: -1, SegmentRecords: 2}
	reg, st := reopen(t, dir, opts)
	want := make(shadow)
	for i := 0; i < 7; i++ {
		spec := specs[i%len(specs)]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatal(err)
		}
		want.put(spec.name, s)
	}
	// 7 records at 2 per segment: segments 1..3 sealed full, segment 4
	// live with one record.
	status := st.Status()
	if status.WALSegments != 4 || status.WALRecords != 7 {
		t.Fatalf("segments=%d records=%d, want 4/7", status.WALSegments, status.WALRecords)
	}
	if first, last, ok, err := readManifest(dir); err != nil || !ok || first != 1 || last != 4 {
		t.Fatalf("manifest = [%d,%d] ok=%v err=%v, want [1,4]", first, last, ok, err)
	}
	st.Close()

	reg2, st2 := reopen(t, dir, opts)
	defer st2.Close()
	mustMatch(t, "multi-segment recovery", image(t, reg2.Dump), image(t, want.dump))
	if got := st2.Status().WALRecords; got != 7 {
		t.Fatalf("WALRecords after recovery = %d, want 7", got)
	}

	// A snapshot covers every sealed segment: only the fresh live segment
	// survives it, and the manifest window moves past the deleted files.
	if err := reg2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	status = st2.Status()
	if status.WALSegments != 1 || status.WALRecords != 0 {
		t.Fatalf("after snapshot: segments=%d records=%d, want 1/0", status.WALSegments, status.WALRecords)
	}
	segs, _, err := scanSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segment files on disk after snapshot: %v (err=%v), want exactly one", segs, err)
	}
	if first, _, _, _ := readManifest(dir); first != segs[0] {
		t.Fatalf("manifest first=%d does not match surviving segment %d", first, segs[0])
	}
}

func TestSealedSegmentTruncationHardErrors(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	reg, st := reopen(t, dir, Options{SnapshotEvery: -1, SegmentRecords: 2})
	for i := 0; i < 5; i++ {
		if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Chop bytes off a SEALED segment. It was fsynced before the manifest
	// demoted it, so a tear here is lost acknowledged data — recovery must
	// refuse, not silently truncate like it would on the final segment.
	sealedPath := filepath.Join(dir, segmentName(1))
	size := fileSize(t, sealedPath)
	if err := os.Truncate(sealedPath, size-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, func(string, core.Summary) error { return nil }); err == nil {
		t.Fatal("Open silently accepted a torn sealed segment")
	}
}

func TestOrphanAndMalformedSegmentsQuarantined(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(14))
	reg, st := reopen(t, dir, Options{})
	want := make(shadow)
	s := randomSummary(rng, specs[0])
	if err := reg.Put(specs[0].name, s); err != nil {
		t.Fatal(err)
	}
	want.put(specs[0].name, s)
	st.Close()

	// An out-of-manifest segment (crash between segment creation and
	// manifest update) and an unparsable segment-ish name: both must be
	// moved aside — neither replayed nor deleted nor left to collide.
	orphan := filepath.Join(dir, segmentName(99))
	if err := os.WriteFile(orphan, []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	malformed := filepath.Join(dir, "wal-bogus.seg")
	if err := os.WriteFile(malformed, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "quarantine recovery", image(t, reg2.Dump), image(t, want.dump))
	if got := st2.Status().QuarantinedFiles; got != 2 {
		t.Fatalf("QuarantinedFiles = %d, want 2", got)
	}
	for _, name := range []string{segmentName(99), "wal-bogus.seg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s still in the data dir: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, name)); err != nil {
			t.Fatalf("%s not preserved in quarantine: %v", name, err)
		}
	}
}

func TestLegacyLayoutMigrates(t *testing.T) {
	// Build a PR-5-era directory by hand: a single "wal" file (same magic
	// and framing as a segment) and a promoted "snapshot". Open must adopt
	// both losslessly — rename into the segmented layout, write the first
	// manifest — and a second open must find a normal segmented store.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(15))
	codec, err := core.CodecByVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	want := make(shadow)
	snapSum := randomSummary(rng, specs[0])
	want.put(specs[0].name, snapSum)
	tmp, _, err := writeSnapshotTemp(dir, codec, func(emit func(string, core.Summary) error) error {
		return emit(specs[0].name, snapSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, legacySnapshotName)); err != nil {
		t.Fatal(err)
	}
	wal, err := os.Create(filepath.Join(dir, legacyWALName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.WriteString(segMagic); err != nil {
		t.Fatal(err)
	}
	w := newRecordWriter(wal, codec, magicLen)
	for i := 0; i < 3; i++ {
		s := randomSummary(rng, specs[1])
		if err := w.append(specs[1].name, s); err != nil {
			t.Fatal(err)
		}
		want.put(specs[1].name, s)
	}
	wal.Close()

	reg, st := reopen(t, dir, Options{})
	mustMatch(t, "legacy migration", image(t, reg.Dump), image(t, want.dump))
	if _, err := os.Stat(filepath.Join(dir, legacyWALName)); !os.IsNotExist(err) {
		t.Fatalf("legacy wal still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, legacySnapshotName)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot still present: %v", err)
	}
	if first, last, ok, err := readManifest(dir); err != nil || !ok || first != 1 || last != 1 {
		t.Fatalf("manifest after migration = [%d,%d] ok=%v err=%v, want [1,1]", first, last, ok, err)
	}
	// The migrated log keeps accepting appends, and a second recovery sees
	// a plain segmented store.
	s := randomSummary(rng, specs[2])
	if err := reg.Put(specs[2].name, s); err != nil {
		t.Fatal(err)
	}
	want.put(specs[2].name, s)
	st.Close()
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "post-migration reopen", image(t, reg2.Dump), image(t, want.dump))
}

func TestAppendsProceedDuringSnapshot(t *testing.T) {
	// The tentpole property: an in-flight snapshot must not block the
	// serving path. The dump blocks on a gate held by the test; appends
	// must complete while it is held.
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(16))
	st, err := Open(dir, Options{SnapshotEvery: -1}, func(string, core.Summary) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 2; i++ {
		if _, err := st.Append(specs[0].name, randomSummary(rng, specs[0])); err != nil {
			t.Fatal(err)
		}
	}
	started := make(chan struct{})
	gate := make(chan struct{})
	snapSum := randomSummary(rng, specs[0])
	dump := func(emit func(string, core.Summary) error) error {
		close(started)
		<-gate
		return emit(specs[0].name, snapSum)
	}
	wait, err := st.Snapshot(dump, func(bool) {}, true)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is inside the dump, snapshot in flight

	appended := make(chan error, 1)
	go func() {
		_, err := st.Append(specs[0].name, randomSummary(rng, specs[0]))
		appended <- err
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatalf("append during snapshot: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append blocked behind an in-flight snapshot")
	}

	close(gate)
	if err := wait(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if got := st.Status().SnapshotChain; got != 1 {
		t.Fatalf("SnapshotChain = %d, want 1", got)
	}
}

func TestSnapshotErrorClearsOnSuccess(t *testing.T) {
	// Regression: the error was sticky — set on failure, never cleared —
	// so /healthz kept paging long after snapshots had recovered. A
	// success must wipe it, both in Status and in the healthz JSON (the
	// field is omitempty, so a healthy store has no key at all).
	dir := filepath.Join(t.TempDir(), "data")
	rng := rand.New(rand.NewSource(17))
	reg, st := reopen(t, dir, Options{SnapshotEvery: -1})
	defer st.Close()
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with the data dir gone")
	}
	if st.Status().SnapshotError == "" {
		t.Fatal("failed snapshot left no error in Status")
	}
	srv := server.New(reg, engine.Config{}, server.WithStoreStatus(st.Status))
	if !healthzHasSnapshotError(t, srv) {
		t.Fatal("healthz hides the snapshot error while degraded")
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	if got := st.Status().SnapshotError; got != "" {
		t.Fatalf("SnapshotError still %q after a successful snapshot", got)
	}
	if healthzHasSnapshotError(t, srv) {
		t.Fatal("healthz still reports snapshot_error after a successful snapshot")
	}
}

// healthzHasSnapshotError probes GET /healthz and reports whether the
// store object carries a snapshot_error key.
func healthzHasSnapshotError(t *testing.T, srv *server.Server) bool {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var raw struct {
		Store map[string]json.RawMessage `json:"store"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if raw.Store == nil {
		t.Fatal("healthz has no store object")
	}
	_, ok := raw.Store["snapshot_error"]
	return ok
}

func TestIncrementalSnapshotsCoverOnlyDirtyDatasets(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(18))
	reg, st := reopen(t, dir, Options{SnapshotEvery: -1})
	want := make(shadow)
	for i := 0; i < 2; i++ {
		for _, spec := range specs[:2] { // alpha and beta
			s := randomSummary(rng, spec)
			if err := reg.Put(spec.name, s); err != nil {
				t.Fatal(err)
			}
			want.put(spec.name, s)
		}
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Only beta mutates; the second chain file must hold beta alone.
	s := randomSummary(rng, specs[1])
	if err := reg.Put(specs[1].name, s); err != nil {
		t.Fatal(err)
	}
	want.put(specs[1].name, s)
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := st.Status().SnapshotChain; got != 2 {
		t.Fatalf("SnapshotChain = %d, want 2", got)
	}
	chainDatasets := make(map[string]int)
	if _, _, err := readSnapshotFile(dir, 2, func(ds string, s core.Summary) error {
		chainDatasets[ds]++
		return nil
	}); err != nil {
		t.Fatalf("reading chain file 2: %v", err)
	}
	if len(chainDatasets) != 1 || chainDatasets[specs[1].name] != len(want[specs[1].name]) {
		t.Fatalf("chain file 2 holds %v, want only %s with all %d instances",
			chainDatasets, specs[1].name, len(want[specs[1].name]))
	}
	st.Close()

	// Reopen compacts the chain to one file and loses nothing.
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "chain recovery", image(t, reg2.Dump), image(t, want.dump))
	if got := st2.Status().SnapshotChain; got != 1 {
		t.Fatalf("SnapshotChain after reopen = %d, want 1 (compacted)", got)
	}
}

func TestSnapshotChainCompactsAtRuntime(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(19))
	reg, st := reopen(t, dir, Options{SnapshotEvery: -1})
	want := make(shadow)
	// One more snapshot than the chain bound: the last one must fold the
	// whole chain into a single file instead of growing it without limit.
	for i := 0; i <= maxSnapshotChain; i++ {
		spec := specs[i%len(specs)]
		s := randomSummary(rng, spec)
		if err := reg.Put(spec.name, s); err != nil {
			t.Fatal(err)
		}
		want.put(spec.name, s)
		if err := reg.Snapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	if got := st.Status().SnapshotChain; got != 1 {
		t.Fatalf("SnapshotChain = %d, want 1 after compaction", got)
	}
	snaps, _, err := scanSnapshots(dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files on disk: %v (err=%v), want exactly one", snaps, err)
	}
	st.Close()
	reg2, st2 := reopen(t, dir, Options{})
	defer st2.Close()
	mustMatch(t, "compacted recovery", image(t, reg2.Dump), image(t, want.dump))
}
