package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Snapshots form a numbered chain: snap-000001.snap, snap-000002.snap, …
// Each file holds one framed record (segment.go framing) per (dataset,
// summary) that was DIRTY at its cut — mutated since the previous
// successful snapshot — datasets sorted by name and instances ascending,
// so equal cuts snapshot to equal bytes. Replaying the chain in sequence
// order, later entries replacing earlier ones, reconstructs the full
// registry image at the newest cut; WAL segments then replay on top.
//
// Every file is written atomically — temp file in the same directory,
// fsync, rename, directory fsync — so a chain file is always a complete
// image: a crash mid-snapshot leaves the previous chain, never a
// truncated hybrid. Replay is therefore strict; tolerance for torn tails
// belongs to the final WAL segment alone.
//
// The chain is compacted — merged into a single full file — at Open, and
// by the background writer whenever it would grow past maxSnapshotChain,
// so recovery replays a bounded number of files no matter how long the
// process ran.

const (
	// maxSnapshotChain bounds the chain length: a snapshot that would be
	// chain file maxSnapshotChain+1 is written as a full merge instead.
	maxSnapshotChain = 8
	// snapshotTempPattern names in-flight snapshot temp files; Open
	// removes strays matching it (or the legacy pattern) — the residue of
	// a crash mid-snapshot.
	snapshotTempPattern       = "snap-*.tmp"
	legacySnapshotTempPattern = "snapshot-*.tmp"
)

// snapName names snapshot chain file seq.
func snapName(seq int64) string {
	return fmt.Sprintf("snap-%06d.snap", seq)
}

// parseSnapSeq extracts the sequence number from a chain file name.
func parseSnapSeq(name string) (int64, bool) {
	body, ok := strings.CutPrefix(name, "snap-")
	if !ok {
		return 0, false
	}
	body, ok = strings.CutSuffix(body, ".snap")
	if !ok || body == "" {
		return 0, false
	}
	for i := 0; i < len(body); i++ {
		if body[i] < '0' || body[i] > '9' {
			return 0, false
		}
	}
	seq, err := strconv.ParseInt(body, 10, 64)
	if err != nil || seq < 1 {
		return 0, false
	}
	return seq, true
}

// scanSnapshots lists the chain file sequence numbers in dir (ascending),
// plus any "snap-*.snap"-shaped names that do not parse, for quarantine.
func scanSnapshots(dir string) (seqs []int64, malformed []string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: scanning snapshots: %w", err)
	}
	for _, m := range matches {
		name := filepath.Base(m)
		seq, ok := parseSnapSeq(name)
		if !ok {
			malformed = append(malformed, name)
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, malformed, nil
}

// writeSnapshotTemp streams the image dump yields into a fresh temp file
// in dir and returns its path, fsynced and closed but NOT yet promoted
// into the chain. Splitting the write from the promotion keeps the crash
// window explicit (and testable): until promoteSnapshot's rename, the
// existing chain is untouched.
func writeSnapshotTemp(dir string, codec core.Codec, dump func(emit func(dataset string, s core.Summary) error) error) (path string, entries int64, err error) {
	tmp, err := os.CreateTemp(dir, snapshotTempPattern)
	if err != nil {
		return "", 0, fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	path = tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(path)
		}
	}()
	if _, err = tmp.WriteString(snapMagic); err != nil {
		return "", 0, fmt.Errorf("store: writing snapshot header: %w", err)
	}
	w := newRecordWriter(tmp, codec, magicLen)
	if err = dump(func(dataset string, s core.Summary) error {
		if err := w.append(dataset, s); err != nil {
			return err
		}
		entries++
		// The writer is a background, latency-insensitive goroutine; the
		// appends it runs beside are not. Yielding between records keeps
		// the serving path's scheduling delay at a record's encode time
		// instead of the runtime's ~10ms forced-preemption quantum — which
		// is what appends would see on small machines during a large
		// snapshot encode.
		if entries%64 == 0 {
			runtime.Gosched()
		}
		return nil
	}); err != nil {
		return "", 0, err
	}
	if err = tmp.Sync(); err != nil {
		return "", 0, fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return "", 0, fmt.Errorf("store: closing snapshot temp file: %w", err)
	}
	return path, entries, nil
}

// promoteSnapshot atomically adds the temp file to the chain as file seq
// and fsyncs the directory so the rename itself is durable.
func promoteSnapshot(dir, tmpPath string, seq int64) error {
	if err := os.Rename(tmpPath, filepath.Join(dir, snapName(seq))); err != nil {
		return fmt.Errorf("store: promoting snapshot %d: %w", seq, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-renamed entry durable. Some
// platforms cannot fsync directories; that is a durability reduction,
// not an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// readSnapshotFile strictly replays one chain file, applying every entry.
// It returns the entry count and the file's modification time. Snapshot
// corruption is an error: an atomically renamed file has no legitimate
// torn state.
func readSnapshotFile(dir string, seq int64, apply func(dataset string, s core.Summary) error) (entries int64, taken time.Time, err error) {
	path := filepath.Join(dir, snapName(seq))
	f, err := os.Open(path)
	if err != nil {
		return 0, time.Time{}, fmt.Errorf("store: opening snapshot %d: %w", seq, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, time.Time{}, fmt.Errorf("store: snapshot %d stat: %w", seq, err)
	}
	if err := checkMagic(f, snapMagic, fmt.Sprintf("snapshot %d", seq)); err != nil {
		if info.Size() == 0 {
			return 0, time.Time{}, fmt.Errorf("store: snapshot %d is empty (was it created by hand?): %w", seq, err)
		}
		return 0, time.Time{}, err
	}
	entries, _, err = readRecords(io.LimitReader(f, info.Size()-magicLen), info.Size()-magicLen, true, apply)
	if err != nil {
		return entries, time.Time{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return entries, info.ModTime(), nil
}

// instanceKey identifies one summary slot for chain merging.
type instanceKey struct {
	dataset  string
	instance int
}

// sortedMergeDump renders a merged chain image as a deterministic dump:
// datasets by name, instances ascending — the same order a registry cut
// uses, so a compacted chain and a fresh full snapshot of equal state are
// byte-identical.
func sortedMergeDump(merged map[instanceKey]core.Summary) func(emit func(dataset string, s core.Summary) error) error {
	keys := make([]instanceKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dataset != keys[j].dataset {
			return keys[i].dataset < keys[j].dataset
		}
		return keys[i].instance < keys[j].instance
	})
	return func(emit func(dataset string, s core.Summary) error) error {
		for _, k := range keys {
			if err := emit(k.dataset, merged[k]); err != nil {
				return err
			}
		}
		return nil
	}
}

// removeStrayTemps deletes leftover snapshot and manifest temp files —
// the residue of a crash between temp-file write and rename. Promoted
// files are untouched; the interrupted writes are simply discarded.
func removeStrayTemps(dir string) {
	for _, pattern := range []string{snapshotTempPattern, legacySnapshotTempPattern, manifestTempPattern} {
		strays, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			continue
		}
		for _, s := range strays {
			os.Remove(s)
		}
	}
}
