package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// A snapshot is the full registry image at one WAL cut: the snapshot
// file header followed by one framed record (wal.go) per stored
// (dataset, summary), datasets sorted by name and instances ascending so
// equal registries snapshot to equal bytes. Snapshots are written
// atomically — temp file in the same directory, fsync, rename — so the
// file named "snapshot" is always a complete image: a crash at any point
// of snapshotting leaves either the previous snapshot or the new one,
// never a truncated hybrid. Replay is therefore strict; tolerance for
// torn tails belongs to the WAL alone.

const (
	snapshotName = "snapshot"
	walName      = "wal"
	// snapshotTempPattern names in-flight snapshot temp files. Open
	// removes strays matching it — the residue of a crash mid-snapshot.
	snapshotTempPattern = "snapshot-*.tmp"
)

// writeSnapshotTemp streams a full image from dump into a fresh temp file
// in dir and returns its path, fsynced and closed but NOT yet promoted to
// the live snapshot name. Splitting the write from the promotion keeps
// the crash window explicit (and testable): until promoteSnapshot's
// rename, the previous snapshot is untouched.
func writeSnapshotTemp(dir string, codec core.Codec, dump func(emit func(dataset string, s core.Summary) error) error) (path string, entries int64, err error) {
	tmp, err := os.CreateTemp(dir, snapshotTempPattern)
	if err != nil {
		return "", 0, fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	path = tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(path)
		}
	}()
	if _, err = tmp.WriteString(snapMagic); err != nil {
		return "", 0, fmt.Errorf("store: writing snapshot header: %w", err)
	}
	w := newRecordWriter(tmp, codec, magicLen)
	if err = dump(func(dataset string, s core.Summary) error {
		if err := w.append(dataset, s); err != nil {
			return err
		}
		entries++
		return nil
	}); err != nil {
		return "", 0, err
	}
	if err = tmp.Sync(); err != nil {
		return "", 0, fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return "", 0, fmt.Errorf("store: closing snapshot temp file: %w", err)
	}
	return path, entries, nil
}

// promoteSnapshot atomically replaces the live snapshot with the temp
// file and fsyncs the directory so the rename itself is durable.
func promoteSnapshot(dir, tmpPath string) error {
	if err := os.Rename(tmpPath, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("store: promoting snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-renamed entry durable. Some
// platforms cannot fsync directories; that is a durability reduction,
// not an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// readSnapshot replays the live snapshot, if one exists, applying every
// entry. It returns the entry count and the snapshot's modification time
// (the zero time when no snapshot exists). Snapshot corruption is an
// error: an atomically renamed file has no legitimate torn state.
func readSnapshot(dir string, apply func(dataset string, s core.Summary) error) (entries int64, taken time.Time, err error) {
	path := filepath.Join(dir, snapshotName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, time.Time{}, nil
	}
	if err != nil {
		return 0, time.Time{}, fmt.Errorf("store: opening snapshot: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, time.Time{}, fmt.Errorf("store: snapshot stat: %w", err)
	}
	if err := checkMagic(f, snapMagic, "snapshot"); err != nil {
		if info.Size() == 0 {
			return 0, time.Time{}, fmt.Errorf("store: snapshot is empty (was it created by hand?): %w", err)
		}
		return 0, time.Time{}, err
	}
	entries, _, err = readRecords(io.LimitReader(f, info.Size()-magicLen), info.Size()-magicLen, true, apply)
	if err != nil {
		return entries, time.Time{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return entries, info.ModTime(), nil
}

// removeStrayTemps deletes leftover snapshot temp files — the residue of
// a crash between temp-file write and rename. The live snapshot is
// untouched; the interrupted image is simply discarded.
func removeStrayTemps(dir string) {
	strays, err := filepath.Glob(filepath.Join(dir, snapshotTempPattern))
	if err != nil {
		return
	}
	for _, s := range strays {
		os.Remove(s)
	}
}
