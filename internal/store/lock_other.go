//go:build !darwin && !dragonfly && !freebsd && !illumos && !linux && !netbsd && !openbsd

package store

import "os"

// lockEnforced reports whether lockFile actually excludes a second
// owner on this platform.
const lockEnforced = false

// lockFile is a no-op on platforms without flock (Windows, solaris,
// aix, …): the package compiles and works, but single-writer
// enforcement is advisory there — running two stores on one data
// directory is the operator's responsibility. (Flock-bearing platforms
// get kernel-enforced exclusion; see lock_unix.go.)
func lockFile(*os.File) error { return nil }
