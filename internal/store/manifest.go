package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// The manifest is the 25-byte source of truth for which WAL segments are
// live:
//
//	offset  size  field
//	0       5     magic "CMAN1"
//	5       8     first live segment sequence, uint64 little-endian
//	13      8     last (appending) segment sequence, uint64 little-endian
//	21      4     CRC32-C of bytes [5, 21), uint32 little-endian
//
// Recovery replays exactly segments [first, last]: a segment below first
// is a superseded file whose deletion a crash interrupted (removed), one
// above last is the residue of a crash between segment creation and
// manifest update (quarantined — it can hold no acknowledged record,
// because appends only start after the manifest names the segment). The
// manifest is rewritten atomically (temp file + fsync + rename + dir
// fsync) so it is always one of its two neighboring states, never torn.

const (
	manifestName        = "MANIFEST"
	manifestMagic       = "CMAN1"
	manifestLen         = magicLen + 16 + 4
	manifestTempPattern = "manifest-*.tmp"
)

// writeManifest atomically replaces the manifest with [first, last].
func writeManifest(dir string, first, last int64) error {
	if first < 1 || last < first {
		return fmt.Errorf("store: invalid manifest range [%d, %d]", first, last)
	}
	var buf [manifestLen]byte
	copy(buf[:magicLen], manifestMagic)
	binary.LittleEndian.PutUint64(buf[magicLen:magicLen+8], uint64(first))
	binary.LittleEndian.PutUint64(buf[magicLen+8:magicLen+16], uint64(last))
	binary.LittleEndian.PutUint32(buf[magicLen+16:], crc32.Checksum(buf[magicLen:magicLen+16], crcTable))
	tmp, err := os.CreateTemp(dir, manifestTempPattern)
	if err != nil {
		return fmt.Errorf("store: creating manifest temp file: %w", err)
	}
	path := tmp.Name()
	if _, err := tmp.Write(buf[:]); err != nil {
		tmp.Close()
		os.Remove(path)
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(path)
		return fmt.Errorf("store: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("store: closing manifest temp file: %w", err)
	}
	if err := os.Rename(path, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(path)
		return fmt.Errorf("store: promoting manifest: %w", err)
	}
	return syncDir(dir)
}

// readManifest reads and validates the manifest. ok is false (with a nil
// error) when none exists — a fresh directory, or one needing migration
// from the pre-segmented layout.
func readManifest(dir string) (first, last int64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: reading manifest: %w", err)
	}
	if len(data) != manifestLen || string(data[:magicLen]) != manifestMagic {
		return 0, 0, false, fmt.Errorf("store: manifest is malformed (%d bytes, magic %q)", len(data), data[:min(len(data), magicLen)])
	}
	if got, want := crc32.Checksum(data[magicLen:magicLen+16], crcTable), binary.LittleEndian.Uint32(data[magicLen+16:]); got != want {
		return 0, 0, false, fmt.Errorf("store: manifest checksum mismatch (stored %#08x, computed %#08x)", want, got)
	}
	first = int64(binary.LittleEndian.Uint64(data[magicLen : magicLen+8]))
	last = int64(binary.LittleEndian.Uint64(data[magicLen+8 : magicLen+16]))
	if first < 1 || last < first {
		return 0, 0, false, fmt.Errorf("store: manifest names an invalid segment range [%d, %d]", first, last)
	}
	return first, last, true, nil
}
