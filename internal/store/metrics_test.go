package store

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// TestStoreMetrics drives appends, fsyncs, rotations, and a snapshot
// through an instrumented store and checks the summaryd_store_* series
// track the work — both the instrument values and the rendered
// exposition.
func TestStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	mreg := obs.NewRegistry()
	reg := server.NewRegistry()
	st, err := Open(dir, Options{SnapshotEvery: -1, SegmentBytes: 512, Fsync: true, Metrics: mreg}, reg.Put)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	reg.SetPersister(st)

	for i := 0; i < 10; i++ {
		spec := specs[i%len(specs)]
		if err := reg.Put(spec.name, randomSummary(rng, spec)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	if got := st.metrics.walAppends.Value(); got != 10 {
		t.Errorf("wal appends counter = %d, want 10", got)
	}
	if st.metrics.walBytes.Value() == 0 {
		t.Error("wal bytes counter is zero after 10 appends")
	}
	// -fsync times every append's sync.
	if got := st.metrics.fsync.Count(); got != 10 {
		t.Errorf("fsync histogram count = %d, want 10", got)
	}
	// The 512-byte segment cap forces mid-stream rotations, and the
	// snapshot seals the live segment too.
	if st.metrics.rotations.Value() == 0 {
		t.Error("rotation counter is zero despite a 512-byte segment cap")
	}
	if got := st.metrics.snapshots.Value(); got != 1 {
		t.Errorf("snapshot counter = %d, want 1", got)
	}
	if got := st.metrics.snapDur.Count(); got != 1 {
		t.Errorf("snapshot duration histogram count = %d, want 1", got)
	}

	var buf strings.Builder
	if err := mreg.WritePrometheus(&buf); err != nil {
		t.Fatalf("rendering exposition: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE summaryd_store_wal_appends_total counter",
		"summaryd_store_wal_appends_total 10",
		"# TYPE summaryd_store_wal_append_bytes_total counter",
		"# TYPE summaryd_store_fsync_seconds histogram",
		"summaryd_store_fsync_seconds_count 10",
		"# TYPE summaryd_store_segment_rotations_total counter",
		"# TYPE summaryd_store_snapshots_total counter",
		"summaryd_store_snapshots_total 1",
		"# TYPE summaryd_store_snapshot_seconds histogram",
		"# TYPE summaryd_store_sealed_segments gauge",
		"# TYPE summaryd_store_snapshot_chain_files gauge",
		"summaryd_store_snapshot_chain_files 1",
		"# TYPE summaryd_store_snapshot_entries gauge",
		"# TYPE summaryd_store_quarantined_files gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The snapshot superseded every sealed segment.
	if !strings.Contains(text, "summaryd_store_sealed_segments 0") {
		t.Error("sealed-segments gauge nonzero after a full snapshot")
	}
}

// TestStoreWithoutMetrics pins the nil default: no registry, no
// instruments, every hook a no-op.
func TestStoreWithoutMetrics(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(10))
	reg := server.NewRegistry()
	st, err := Open(dir, Options{}, reg.Put)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	reg.SetPersister(st)
	if err := reg.Put(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatalf("put: %v", err)
	}
	if st.metrics.walAppends != nil || st.metrics.fsync != nil {
		t.Error("instruments constructed without a metrics registry")
	}
	if got := st.metrics.walAppends.Value(); got != 0 {
		t.Errorf("nil counter reads %d", got)
	}
}
