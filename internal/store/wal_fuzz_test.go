package store

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// FuzzWALReplay feeds hostile bytes to the segmented replay path. Each
// fuzz directory is a two-segment store: a FIXED, genuinely valid sealed
// segment plus the fuzz input as the final segment, under a manifest
// retaining both. Open must never panic; it either refuses the directory
// (foreign header, torn sealed data, or a checksummed payload that does
// not parse — version skew must not truncate acknowledged data) or
// recovers: the sealed segment's records completely (sealed segments
// never replay partially) plus a stable longest-valid-prefix of the
// final one — reopening recovers exactly the same records and shrinks
// nothing further.
func FuzzWALReplay(f *testing.F) {
	// Build a genuine rotated store once: 3 records at 2 per segment
	// leave segment 1 sealed with 2 records and segment 2 live with 1.
	seedDir := f.TempDir()
	const sealedRecords = 2
	func() {
		rng := rand.New(rand.NewSource(42))
		reg := server.NewRegistry()
		st, err := Open(seedDir, Options{SnapshotEvery: -1, SegmentRecords: sealedRecords}, reg.Put)
		if err != nil {
			f.Fatal(err)
		}
		reg.SetPersister(st)
		for i := 0; i < sealedRecords+1; i++ {
			spec := specs[i%len(specs)]
			if err := reg.Put(spec.name, randomSummary(rng, spec)); err != nil {
				f.Fatal(err)
			}
		}
		st.Close()
	}()
	sealed, err := os.ReadFile(filepath.Join(seedDir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, segmentName(2)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                     // truncated final record
	f.Add(append(append([]byte{}, valid...), 0xCB)) // garbage trailer
	f.Add([]byte(segMagic))                         // empty segment
	f.Add([]byte("CWAL"))                           // torn header
	f.Add([]byte("NOPE!records"))                   // foreign file
	f.Add([]byte{})                                 // zero bytes (fresh-crash residue)
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)-1] ^= 0xFF // CRC mismatch in the last record
	f.Add(corrupt)
	oversized := append([]byte{}, valid[:magicLen]...)
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31-1) // absurd declared length
	f.Add(append(append(oversized, hdr[:]...), 0xEE, 0xEE))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), sealed, 0o644); err != nil {
			t.Fatal(err)
		}
		finalPath := filepath.Join(dir, segmentName(2))
		if err := os.WriteFile(finalPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := writeManifest(dir, 1, 2); err != nil {
			t.Fatal(err)
		}
		var first int
		st, err := Open(dir, Options{}, func(string, core.Summary) error { first++; return nil })
		if err != nil {
			// A refusal (foreign header, or checksummed-but-unintelligible
			// payload), not a recovery; nothing more to check.
			return
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// Success means the sealed segment replayed in full — hostile bytes
		// in the final segment must never swallow acknowledged records that
		// live before it in the log.
		if first < sealedRecords {
			t.Fatalf("recovered %d records, sealed segment alone holds %d", first, sealedRecords)
		}
		// Open truncated the final segment to its valid prefix: replaying
		// must find the identical record count, and the file must now end
		// exactly at a record boundary (a third open must not shrink it
		// further).
		size := fileSize(t, finalPath)
		var second int
		st2, err := Open(dir, Options{}, func(string, core.Summary) error { second++; return nil })
		if err != nil {
			t.Fatalf("reopen after truncation failed: %v", err)
		}
		st2.Close()
		if second != first {
			t.Fatalf("recovered %d records, then %d from the truncated log", first, second)
		}
		if got := fileSize(t, finalPath); got != size {
			t.Fatalf("valid prefix not stable: %d then %d bytes", size, got)
		}
	})
}
