package store

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// FuzzWALReplay feeds hostile bytes to the WAL replay path: corrupt
// checksums, oversized length prefixes, truncated records, garbage
// trailers, torn headers. Open must never panic; it either refuses the
// file (foreign header, or a checksummed payload that does not parse —
// version skew must not truncate acknowledged data) or recovers a
// stable longest-valid-prefix: reopening the truncated result recovers
// exactly the same records.
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine 3-record WAL and targeted mutations of it.
	seedDir := f.TempDir()
	func() {
		rng := rand.New(rand.NewSource(42))
		reg := server.NewRegistry()
		st, err := Open(seedDir, Options{}, reg.Put)
		if err != nil {
			f.Fatal(err)
		}
		reg.SetPersister(st)
		for i := 0; i < 3; i++ {
			spec := specs[i%len(specs)]
			if err := reg.Put(spec.name, randomSummary(rng, spec)); err != nil {
				f.Fatal(err)
			}
		}
		st.Close()
	}()
	valid, err := os.ReadFile(filepath.Join(seedDir, walName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                     // truncated final record
	f.Add(append(append([]byte{}, valid...), 0xCB)) // garbage trailer
	f.Add([]byte(walMagic))                         // empty log
	f.Add([]byte("CWAL"))                           // torn header
	f.Add([]byte("NOPE!records"))                   // foreign file
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)-1] ^= 0xFF // CRC mismatch in the last record
	f.Add(corrupt)
	oversized := append([]byte{}, valid[:magicLen]...)
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31-1) // absurd declared length
	f.Add(append(append(oversized, hdr[:]...), 0xEE, 0xEE))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		walPath := filepath.Join(dir, walName)
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var first int
		st, err := Open(dir, Options{}, func(string, core.Summary) error { first++; return nil })
		if err != nil {
			// A refusal (foreign header, or checksummed-but-unintelligible
			// payload), not a recovery; nothing more to check.
			return
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// Open truncated the log to its valid prefix: replaying the
		// truncated file must find the identical record count, and the
		// file must now end exactly at a record boundary (a third open
		// must not shrink it further).
		size := fileSize(t, walPath)
		var second int
		st2, err := Open(dir, Options{}, func(string, core.Summary) error { second++; return nil })
		if err != nil {
			t.Fatalf("reopen after truncation failed: %v", err)
		}
		st2.Close()
		if second != first {
			t.Fatalf("recovered %d records, then %d from the truncated log", first, second)
		}
		if got := fileSize(t, walPath); got != size {
			t.Fatalf("valid prefix not stable: %d then %d bytes", size, got)
		}
	})
}
