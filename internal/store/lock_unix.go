// The platforms where the stdlib syscall package defines Flock — the
// plain `unix` constraint is too broad (solaris and aix lack it).
//go:build darwin || dragonfly || freebsd || illumos || linux || netbsd || openbsd

package store

import (
	"os"
	"syscall"
)

// lockEnforced reports whether lockFile actually excludes a second
// owner on this platform (tests guarding exclusion behavior skip when
// it is advisory).
const lockEnforced = true

// lockFile takes an exclusive, non-blocking flock on f. The kernel
// releases the lock when the process dies, so a crash never leaves the
// directory wedged — the one situation this store exists for (a plain
// lock file would go stale across crashes).
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
