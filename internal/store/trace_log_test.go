package store

import (
	"bytes"
	"errors"
	"log/slog"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/testutil"
)

// The store implements the traced persistence seam too.
var _ server.TracedPersister = (*Store)(nil)

// TestSnapshotLogAndTrace: a background snapshot emits one slog line
// carrying its sequence and the trace ID of the cut that triggered it,
// and records its own store.snapshot trace stamped the same way — the
// correlation that makes a later /healthz snapshot_error attributable
// to a specific request.
func TestSnapshotLogAndTrace(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	rng := rand.New(rand.NewSource(23))
	// The worker is the log's only writer and wait() orders it before the
	// reads below, so a plain buffer is race-free here.
	var logBuf bytes.Buffer
	tr := trace.New(4)
	st, err := Open(t.TempDir(), Options{
		SnapshotEvery: -1,
		Tracer:        tr,
		Logger:        slog.New(slog.NewJSONHandler(&logBuf, nil)),
	}, func(string, core.Summary) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	trigger := tr.StartSpan("POST /v1/summaries", trace.SpanContext{})
	if _, err := st.AppendTraced(trigger, specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	snapSum := randomSummary(rng, specs[0])
	dump := func(emit func(string, core.Summary) error) error {
		return emit(specs[0].name, snapSum)
	}
	wait, err := st.SnapshotTraced(trigger, dump, func(bool) {}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	trigger.Finish()

	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"snapshot"`) {
		t.Fatalf("no snapshot log line emitted: %q", logs)
	}
	if !strings.Contains(logs, `"snapshot_seq":1`) {
		t.Errorf("snapshot log line carries no sequence: %q", logs)
	}
	if !strings.Contains(logs, `"trigger_trace":"`+trigger.TraceID()+`"`) {
		t.Errorf("snapshot log line carries no trigger trace ID %s: %q", trigger.TraceID(), logs)
	}

	// The snapshot outlives its trigger, so it records as its own trace,
	// stamped with the trigger's trace ID; the inline segment seal is a
	// child of the trigger itself.
	var snapRoot *trace.SpanRecord
	for _, rec := range tr.Traces() {
		for i := range rec.Spans {
			if rec.Spans[i].Name == "store.snapshot" && rec.Spans[i].ParentID == "" {
				snapRoot = &rec.Spans[i]
			}
		}
	}
	if snapRoot == nil {
		t.Fatalf("no store.snapshot root span recorded in %+v", tr.Traces())
	}
	attrs := make(map[string]string)
	for _, a := range snapRoot.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["trigger_trace"] != trigger.TraceID() {
		t.Errorf("store.snapshot trigger_trace = %q, want %q", attrs["trigger_trace"], trigger.TraceID())
	}
	if attrs["snapshot_seq"] != "1" {
		t.Errorf("store.snapshot snapshot_seq = %q, want 1", attrs["snapshot_seq"])
	}
	rec := findTriggerRecord(tr, trigger.TraceID())
	if rec == nil {
		t.Fatal("trigger trace not published")
	}
	var sawRotate bool
	for _, sp := range rec.Spans {
		if sp.Name == "store.rotate" {
			sawRotate = true
		}
	}
	if !sawRotate {
		t.Errorf("snapshot cut recorded no store.rotate child under the trigger: %+v", rec.Spans)
	}
}

func findTriggerRecord(tr *trace.Tracer, traceID string) *trace.Record {
	recs := tr.Traces()
	for i := range recs {
		if recs[i].TraceID == traceID {
			return &recs[i]
		}
	}
	return nil
}

// TestSnapshotFailureLogCorrelates: a failing snapshot's error line and
// the /healthz snapshot_error carry the same sequence number.
func TestSnapshotFailureLogCorrelates(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	rng := rand.New(rand.NewSource(24))
	var logBuf bytes.Buffer
	st, err := Open(t.TempDir(), Options{
		SnapshotEvery: -1,
		Logger:        slog.New(slog.NewJSONHandler(&logBuf, nil)),
	}, func(string, core.Summary) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Append(specs[0].name, randomSummary(rng, specs[0])); err != nil {
		t.Fatal(err)
	}
	boom := func(emit func(string, core.Summary) error) error {
		return errors.New("dump exploded")
	}
	wait, err := st.Snapshot(boom, func(bool) {}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err == nil {
		t.Fatal("failing dump reported no error")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"snapshot failed"`) || !strings.Contains(logs, `"snapshot_seq":1`) {
		t.Errorf("failure line missing or unsequenced: %q", logs)
	}
	if got := st.Status().SnapshotError; !strings.Contains(got, "snapshot 1:") {
		t.Errorf("snapshot_error %q does not name the sequence the log used", got)
	}
}
