// Package store is the summary server's durability subsystem: a
// write-ahead log rotated into bounded, numbered segment files plus an
// incremental snapshot chain, all carrying (dataset, summary) records
// whose payloads are the deterministic v2 binary wire format
// (internal/core codecv2).
//
// The contract with the registry (internal/server.Registry via its
// Persister hook):
//
//   - every accepted registration is appended to the live WAL segment
//     before the request is acknowledged — the segments named by the
//     MANIFEST are the source of truth between snapshots;
//   - the live segment rotates once it reaches Options.SegmentBytes /
//     SegmentRecords: it is fsynced, sealed, and a fresh segment takes
//     over, so no single file grows with uptime;
//   - snapshots run in the BACKGROUND: the registry hands Snapshot a
//     consistent cut (cloned under its lock — the only moment the request
//     path pauses) and a single worker goroutine writes it to the next
//     snapshot chain file while appends continue into the live segment.
//     Only datasets dirty since the previous successful snapshot are
//     written (the chain is compacted at Open and whenever it would grow
//     past maxSnapshotChain), and only sealed segments older than the cut
//     are deleted — recovery cost stays bounded by the snapshot interval
//     plus the live segments, not uptime;
//   - Open replays the snapshot chain then the live segments into the
//     caller's registry. Sealed segments and chain files have no
//     legitimate torn state (both are made durable before anything
//     references them) and hard-error on any invalid record; only the
//     FINAL segment tolerates a torn tail (a crash mid-append), recovering
//     its longest valid record prefix — exactly the registrations that
//     were previously acknowledged durable. Files the manifest cannot
//     account for are quarantined, never silently replayed or deleted.
//
// Replay is idempotent: a record re-applied after an ill-timed crash
// between snapshot promotion and segment deletion replaces a (dataset,
// instance) entry with the identical summary, so every crash point
// converges to the same recovered registry.
package store

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/pkg/api"
)

// DefaultSnapshotEvery is the append count between automatic snapshots
// when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// Options configures a Store at Open.
type Options struct {
	// SnapshotEvery is the number of WAL appends between automatic
	// snapshots: Append reports snapshotDue every SnapshotEvery records.
	// Zero means DefaultSnapshotEvery; negative disables automatic
	// snapshots (Snapshot can still be called explicitly, e.g. at
	// shutdown).
	SnapshotEvery int64
	// Fsync syncs the live segment after every append, making each
	// acknowledgment durable against power loss, not just process death.
	// Off, the OS flushes at its leisure — crash-consistent (replay never
	// sees a half-state) but the tail may be lost with the page cache.
	Fsync bool
	// SegmentBytes caps a live segment's file size: the next append after
	// the cap is reached goes to a fresh segment. Zero means
	// DefaultSegmentBytes. A segment may overshoot by at most one record.
	SegmentBytes int64
	// SegmentRecords caps a live segment's record count. Zero means
	// DefaultSegmentRecords.
	SegmentRecords int64
	// Metrics, when set, receives the store's durability series
	// (summaryd_store_*): WAL append counts/bytes, fsync and snapshot
	// latency histograms, rotation/compaction/drop counters, and gauges
	// over the sealed-segment and snapshot-chain state. Nil disables
	// instrumentation at zero cost (the obs instruments are nil no-ops).
	// A registry serves one Open: the series register once, so a reopened
	// store needs a fresh registry.
	Metrics *obs.Registry
	// Tracer, when set, records store spans: WAL append/fsync/rotation
	// under the registering request's span (through AppendTraced), and one
	// self-rooted trace per background snapshot carrying the trace ID of
	// the cut that triggered it. Nil (or a disabled tracer) costs nothing.
	Tracer *trace.Tracer
	// Logger, when set, receives the background-snapshot lines: every
	// completed or failed snapshot logs its sequence number and the
	// triggering cut's trace ID, so a snapshot_error surfaced in /healthz
	// is attributable to a specific run. Nil disables the logging.
	Logger *slog.Logger
}

// storeMetrics holds the store's pre-constructed instruments. Every field
// is nil when Options.Metrics is nil — the obs package makes nil
// instruments free no-ops, so the hot paths below update them
// unconditionally.
type storeMetrics struct {
	walAppends  *obs.Counter
	walBytes    *obs.Counter
	fsync       *obs.Histogram
	rotations   *obs.Counter
	snapshots   *obs.Counter
	snapDur     *obs.Histogram
	snapDrops   *obs.Counter
	compactions *obs.Counter
}

// register builds the store's instruments and the gauges that read its
// guarded state at exposition time (cheap: one mutex hop per scrape, not
// per append).
func (s *Store) registerMetrics(reg *obs.Registry) {
	s.metrics = storeMetrics{
		walAppends: reg.Counter("summaryd_store_wal_appends_total",
			"Records appended to the write-ahead log.", nil),
		walBytes: reg.Counter("summaryd_store_wal_append_bytes_total",
			"Bytes appended to the write-ahead log.", nil),
		fsync: reg.Histogram("summaryd_store_fsync_seconds",
			"Per-append WAL fsync latency (only under -fsync).", nil, nil),
		rotations: reg.Counter("summaryd_store_segment_rotations_total",
			"Live WAL segments sealed and rotated.", nil),
		snapshots: reg.Counter("summaryd_store_snapshots_total",
			"Snapshot chain files written successfully.", nil),
		snapDur: reg.Histogram("summaryd_store_snapshot_seconds",
			"Background snapshot write duration.", nil, nil),
		snapDrops: reg.Counter("summaryd_store_snapshot_drops_total",
			"Automatic snapshots skipped because one was already queued or running.", nil),
		compactions: reg.Counter("summaryd_store_compactions_total",
			"Snapshot chains merged into a single full image.", nil),
	}
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	reg.GaugeFunc("summaryd_store_sealed_segments",
		"Sealed, not-yet-snapshotted WAL segments retained on disk.", nil,
		locked(func() float64 { return float64(len(s.sealed)) }))
	reg.GaugeFunc("summaryd_store_snapshot_chain_files",
		"Incremental snapshot chain files recovery would replay.", nil,
		locked(func() float64 { return float64(len(s.snapSeqs)) }))
	reg.GaugeFunc("summaryd_store_snapshot_entries",
		"Summaries held by the on-disk snapshot chain.", nil,
		locked(func() float64 { return float64(s.snapEntries) }))
	reg.GaugeFunc("summaryd_store_quarantined_files",
		"Files recovery could not account for and quarantined.", nil,
		locked(func() float64 { return float64(s.quarantined) }))
}

// segMeta describes one sealed segment the store still retains: it holds
// records newer than the last snapshot cut and will be deleted once a
// snapshot covers it.
type segMeta struct {
	seq     int64
	records int64
	bytes   int64
}

// snapJob is one queued snapshot: a consistent cut the registry cloned
// under its lock, destined for the next chain file. cut is the highest
// sealed segment sequence the dump covers.
type snapJob struct {
	cut    int64
	dump   func(emit func(dataset string, s core.Summary) error) error
	commit func(ok bool)
	done   chan error
	// trigger is the trace ID of the operation that cut this snapshot
	// ("" for untraced cuts); seq, entries, and dur are filled in by
	// writeSnapshot for the worker's log line.
	trigger string
	seq     int64
	entries int64
	dur     time.Duration
}

// Store is an open durability directory: a live WAL segment accepting
// appends, the sealed segments behind it, the snapshot chain, and the
// background snapshot worker. Methods are safe for concurrent use; the
// registry additionally serializes Append calls under its own lock, which
// is what makes WAL order identical to registry apply order.
type Store struct {
	dir     string
	opts    Options
	codec   core.Codec
	metrics storeMetrics

	mu     sync.Mutex
	closed bool
	lock   *os.File
	live   *segment
	first  int64     // first live segment named by the manifest
	sealed []segMeta // sealed, not-yet-snapshotted segments, ascending seq

	sinceSnapshot int64
	snapSeqs      []int64 // snapshot chain, ascending seq
	snapEntries   int64
	lastSnapshot  time.Time
	lastSnapErr   string
	quarantined   int

	recoveredDatasets  int
	recoveredSummaries int64
	walDatasets        []string

	// Background snapshot worker state, guarded by mu; snapCond signals
	// the worker when snapQ grows or the store closes.
	snapCond *sync.Cond
	snapQ    []*snapJob
	pending  int // queued + in-flight snapshot jobs
	wg       sync.WaitGroup
}

// Open opens (creating if needed) the durability directory and replays
// its state — snapshot chain first, then the WAL segments in sequence
// order — through apply, converging on exactly the previously
// acknowledged registrations. A pre-segmented directory (single "wal" /
// "snapshot" files) is migrated in place. apply is typically Registry.Put
// on a fresh registry; attach the store as the registry's persister only
// after Open returns, so replay does not re-append what the log already
// holds, and pass WALDatasets to Registry.MarkClean so the first
// incremental snapshot covers exactly the un-snapshotted datasets.
func Open(dir string, opts Options, apply func(dataset string, s core.Summary) error) (st *Store, err error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentRecords == 0 {
		opts.SegmentRecords = DefaultSegmentRecords
	}
	if opts.SegmentBytes < 1 || opts.SegmentRecords < 1 {
		return nil, fmt.Errorf("store: segment caps must be positive (bytes %d, records %d)", opts.SegmentBytes, opts.SegmentRecords)
	}
	codec, err := core.CodecByVersion(2)
	if err != nil {
		return nil, fmt.Errorf("store: v2 codec unavailable: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	// One owner per directory, enforced with flock (lock_unix.go; non-Unix
	// platforms compile with a no-op fallback). Two stores appending to
	// one live segment would interleave WriteAts at overlapping offsets
	// and corrupt acknowledged records.
	lock, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: data dir %s is in use by another process: %w", dir, err)
	}
	// Closing the lock file releases the flock; do so on every failed
	// open, or an aborted recovery would wedge the directory until the
	// process exits.
	defer func() {
		if st == nil {
			lock.Close()
		}
	}()
	removeStrayTemps(dir)

	s := &Store{dir: dir, opts: opts, codec: codec, lock: lock}
	s.snapCond = sync.NewCond(&s.mu)
	s.registerMetrics(opts.Metrics)

	if err := s.migrateLegacy(); err != nil {
		return nil, err
	}

	// Count distinct (dataset, instance) summaries, not replayed records:
	// after a crash between snapshot promotion and segment deletion the
	// segments re-play records the chain already holds (idempotently), and
	// the recovery report must describe the recovered registry, not the
	// replay's work.
	type instance struct {
		dataset string
		id      int
	}
	datasets := make(map[string]bool)
	summaries := make(map[instance]bool)
	counting := func(dataset string, sum core.Summary) error {
		if err := apply(dataset, sum); err != nil {
			return err
		}
		datasets[dataset] = true
		summaries[instance{dataset, sum.InstanceID()}] = true
		return nil
	}

	if err := s.recoverSnapshots(counting); err != nil {
		return nil, err
	}

	// Datasets with WAL records are exactly the ones the snapshot chain
	// does not fully cover — the registry must consider them dirty.
	walDirty := make(map[string]bool)
	if err := s.recoverSegments(func(dataset string, sum core.Summary) error {
		walDirty[dataset] = true
		return counting(dataset, sum)
	}); err != nil {
		return nil, err
	}
	for name := range walDirty {
		s.walDatasets = append(s.walDatasets, name)
	}
	sort.Strings(s.walDatasets)

	s.recoveredDatasets = len(datasets)
	s.recoveredSummaries = int64(len(summaries))
	s.sinceSnapshot = s.live.records
	for _, m := range s.sealed {
		s.sinceSnapshot += m.records
	}

	s.wg.Add(1)
	go s.worker()
	return s, nil
}

// migrateLegacy adopts a pre-segmented directory. With no MANIFEST
// present, a "snapshot" file becomes chain file 1 and a "wal" file
// becomes segment 1 by atomic rename; recoverSegments then writes the
// first manifest. Each rename is an independent crash point — a restart
// simply resumes where the last attempt stopped. With a MANIFEST present,
// legacy files are unaccounted state (a downgrade wrote here?) and are
// quarantined.
func (s *Store) migrateLegacy() error {
	_, _, ok, err := readManifest(s.dir)
	if err != nil {
		return err
	}
	if ok {
		for _, name := range []string{legacyWALName, legacySnapshotName} {
			if _, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
				if err := s.quarantine(name); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if _, err := os.Stat(filepath.Join(s.dir, legacySnapshotName)); err == nil {
		if err := os.Rename(filepath.Join(s.dir, legacySnapshotName), filepath.Join(s.dir, snapName(1))); err != nil {
			return fmt.Errorf("store: migrating legacy snapshot: %w", err)
		}
		syncDir(s.dir)
	}
	if _, err := os.Stat(filepath.Join(s.dir, legacyWALName)); err == nil {
		if err := os.Rename(filepath.Join(s.dir, legacyWALName), filepath.Join(s.dir, segmentName(1))); err != nil {
			return fmt.Errorf("store: migrating legacy WAL: %w", err)
		}
		syncDir(s.dir)
	}
	return nil
}

// recoverSnapshots replays the snapshot chain: files merge in sequence
// order (later entries replace earlier ones) and only the merged image
// reaches apply, so a superseded entry never touches the registry. A
// chain longer than one file is compacted into a single full file —
// best-effort: a compaction failure keeps the valid chain and costs only
// replay time on the next open.
func (s *Store) recoverSnapshots(apply func(dataset string, sum core.Summary) error) error {
	seqs, malformed, err := scanSnapshots(s.dir)
	if err != nil {
		return err
	}
	for _, name := range malformed {
		if err := s.quarantine(name); err != nil {
			return err
		}
	}
	if len(seqs) == 0 {
		return nil
	}
	merged := make(map[instanceKey]core.Summary)
	var taken time.Time
	for _, seq := range seqs {
		_, t, err := readSnapshotFile(s.dir, seq, func(dataset string, sum core.Summary) error {
			merged[instanceKey{dataset, sum.InstanceID()}] = sum
			return nil
		})
		if err != nil {
			return err
		}
		taken = t
	}
	if err := sortedMergeDump(merged)(apply); err != nil {
		return err
	}
	if len(seqs) > 1 {
		if tmp, _, err := writeSnapshotTemp(s.dir, s.codec, sortedMergeDump(merged)); err == nil {
			compacted := seqs[len(seqs)-1] + 1
			if err := promoteSnapshot(s.dir, tmp, compacted); err != nil {
				os.Remove(tmp)
			} else {
				for _, old := range seqs {
					os.Remove(filepath.Join(s.dir, snapName(old)))
				}
				syncDir(s.dir)
				seqs = []int64{compacted}
			}
		}
	}
	s.snapSeqs = seqs
	s.snapEntries = int64(len(merged))
	s.lastSnapshot = taken
	return nil
}

// recoverSegments replays the WAL segments the manifest names — sealed
// segments strictly, the final one tolerating a torn tail — and leaves
// the final segment open as the live one. Segments below the manifest
// range are a deletion a crash interrupted (removed); segments above it
// are the residue of a crash between segment creation and manifest update
// and can hold no acknowledged record (appends only start after the
// manifest names the segment) — those are quarantined, per the
// never-silently-replay rule.
func (s *Store) recoverSegments(apply func(dataset string, sum core.Summary) error) error {
	first, last, ok, err := readManifest(s.dir)
	if err != nil {
		return err
	}
	seqs, malformed, err := scanSegments(s.dir)
	if err != nil {
		return err
	}
	for _, name := range malformed {
		if err := s.quarantine(name); err != nil {
			return err
		}
	}
	if !ok {
		switch {
		case len(seqs) == 0:
			// Fresh directory: create segment 1, then the manifest naming
			// it. A crash in between leaves the magic-only segment the next
			// clause adopts.
			live, err := createSegment(s.dir, s.codec, 1)
			if err != nil {
				return err
			}
			if err := writeManifest(s.dir, 1, 1); err != nil {
				live.f.Close()
				os.Remove(live.path)
				return err
			}
			s.first, s.live = 1, live
			return nil
		case len(seqs) == 1 && seqs[0] == 1:
			// A crash before the first manifest write. Segment 1 is either
			// the magic-only file of an interrupted fresh init or a just-
			// renamed legacy WAL; either way it is the entire log — adopt
			// it rather than quarantine acknowledged records.
			if err := writeManifest(s.dir, 1, 1); err != nil {
				return err
			}
			first, last = 1, 1
		default:
			return fmt.Errorf("store: %d WAL segments present without a manifest; refusing to guess which are live", len(seqs))
		}
	}
	present := make(map[int64]bool, len(seqs))
	for _, seq := range seqs {
		present[seq] = true
		switch {
		case seq < first:
			// Superseded by a snapshot whose deletion a crash interrupted.
			os.Remove(filepath.Join(s.dir, segmentName(seq)))
		case seq > last:
			if err := s.quarantine(segmentName(seq)); err != nil {
				return err
			}
		}
	}
	for seq := first; seq <= last; seq++ {
		if !present[seq] {
			return fmt.Errorf("store: manifest names WAL segment %d but the file is missing (acknowledged data is unrecoverable without it)", seq)
		}
	}
	for seq := first; seq < last; seq++ {
		meta, err := s.replaySealed(seq, apply)
		if err != nil {
			return err
		}
		s.sealed = append(s.sealed, meta)
	}
	live, err := s.openLive(last, apply)
	if err != nil {
		return err
	}
	s.first, s.live = first, live
	return nil
}

// replaySealed strictly replays one sealed segment. Sealed segments were
// fsynced whole before the manifest demoted them from live duty, so any
// invalid record means lost acknowledged data — a hard error, never a
// silent truncation.
func (s *Store) replaySealed(seq int64, apply func(dataset string, sum core.Summary) error) (segMeta, error) {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.Open(path)
	if err != nil {
		return segMeta{}, fmt.Errorf("store: opening sealed WAL segment %d: %w", seq, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return segMeta{}, fmt.Errorf("store: sealed WAL segment %d stat: %w", seq, err)
	}
	if info.Size() < magicLen {
		return segMeta{}, fmt.Errorf("store: sealed WAL segment %d is torn at %d bytes (acknowledged data lost; refusing to recover silently)", seq, info.Size())
	}
	if err := checkMagic(f, segMagic, fmt.Sprintf("WAL segment %d", seq)); err != nil {
		return segMeta{}, err
	}
	records, valid, err := readRecords(f, info.Size()-magicLen, true, apply)
	if err != nil {
		return segMeta{}, fmt.Errorf("store: sealed WAL segment %s: %w", path, err)
	}
	return segMeta{seq: seq, records: records, bytes: valid}, nil
}

// openLive opens the manifest's last segment for appending, replaying its
// longest valid record prefix and truncating any torn tail — the one
// place the lax rule applies, because only the live segment can be torn
// by a crash mid-append.
func (s *Store) openLive(seq int64, apply func(dataset string, sum core.Summary) error) (*segment, error) {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL segment %d: %w", seq, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: WAL segment %d stat: %w", seq, err)
	}
	end := int64(magicLen)
	var records int64
	if info.Size() < magicLen {
		// A crash before even the header landed: nothing recoverable in
		// this segment, start it over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: resetting torn WAL segment %d header: %w", seq, err)
		}
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: writing WAL segment %d header: %w", seq, err)
		}
	} else {
		if err := checkMagic(f, segMagic, fmt.Sprintf("WAL segment %d", seq)); err != nil {
			f.Close()
			return nil, err
		}
		var valid int64
		records, valid, err = readRecords(f, info.Size()-magicLen, false, apply)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: WAL segment %s: %w", path, err)
		}
		end = magicLen + valid
		if end < info.Size() {
			// Tear off the invalid tail so appends continue from a clean
			// boundary.
			if err := f.Truncate(end); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: syncing WAL segment %d after recovery: %w", seq, err)
	}
	return &segment{seq: seq, path: path, f: f, w: newRecordWriter(f, s.codec, end), records: records}, nil
}

// quarantine moves a file the recovery cannot account for into the
// quarantine subdirectory: the bytes are kept for forensics, but they
// never replay and never collide with live file names.
func (s *Store) quarantine(name string) error {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: creating quarantine dir: %w", err)
	}
	if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("store: quarantining %s: %w", name, err)
	}
	syncDir(s.dir)
	s.quarantined++
	return nil
}

// Append writes one accepted (dataset, summary) registration to the live
// segment, rotating first if the segment is at its cap. It reports
// snapshotDue when the appends since the last snapshot have reached
// Options.SnapshotEvery — the caller (holding whatever lock serializes
// registrations) should then call Snapshot with a consistent cut. Append
// implements half of server.Persister.
func (s *Store) Append(dataset string, sum core.Summary) (snapshotDue bool, err error) {
	return s.AppendTraced(nil, dataset, sum)
}

// AppendTraced is Append carrying the registering request's span: the
// durable write is recorded as a store.append child span, with the fsync
// and any segment rotation as its own children. A nil parent (or no
// tracer behind it) records nothing. AppendTraced implements half of
// server.TracedPersister.
func (s *Store) AppendTraced(parent *trace.Span, dataset string, sum core.Summary) (snapshotDue bool, err error) {
	sp := parent.StartChild("store.append")
	defer sp.Finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("store: append on closed store")
	}
	if s.live.records >= s.opts.SegmentRecords || s.live.w.end >= s.opts.SegmentBytes {
		// Rotation failure is not an append failure: the record still lands
		// durably in the over-cap live segment, costing recovery granularity
		// rather than the request. Rotation is retried on the next append.
		rsp := sp.StartChild("store.rotate")
		_ = s.rotateLocked()
		rsp.Finish()
	}
	live := s.live
	prevEnd := live.w.end
	sp.SetInt("segment", live.seq)
	if err := live.w.append(dataset, sum); err != nil {
		return false, err
	}
	if s.opts.Fsync {
		fsp := sp.StartChild("store.fsync")
		fsyncStart := time.Now()
		if err := live.f.Sync(); err != nil {
			fsp.Finish()
			// The record is fully framed on disk, but this error makes the
			// caller roll the registration back and fail the request — so
			// the frame must go too, or a restart would resurrect a summary
			// the client was told did not land. If even the truncate fails,
			// poison the store: better no more appends than a log whose
			// valid prefix disagrees with what was acknowledged.
			if terr := live.f.Truncate(prevEnd); terr != nil {
				s.closed = true
				s.snapCond.Broadcast() // let the snapshot worker exit
				live.f.Close()
				s.lock.Close()
				return false, fmt.Errorf("store: syncing WAL: %v (truncating the unacknowledged record also failed, store closed: %w)", err, terr)
			}
			live.w.end = prevEnd
			return false, fmt.Errorf("store: syncing WAL: %w", err)
		}
		fsp.Finish()
		s.metrics.fsync.ObserveSince(fsyncStart)
	}
	live.records++
	s.sinceSnapshot++
	s.metrics.walAppends.Inc()
	s.metrics.walBytes.Add(uint64(live.w.end - prevEnd))
	sp.SetInt("bytes", live.w.end-prevEnd)
	return s.opts.SnapshotEvery > 0 && s.sinceSnapshot >= s.opts.SnapshotEvery, nil
}

// rotateLocked seals the live segment and opens the next one. The order
// is the crash-safety argument: the outgoing segment is truncated to its
// logical end (dropping any failed-append residue) and fsynced BEFORE the
// manifest demotes it — a sealed segment replays strictly, so its bytes
// must be fully durable first. The new segment likewise exists, with its
// header fsynced, before the manifest names it.
func (s *Store) rotateLocked() error {
	live := s.live
	if err := live.f.Truncate(live.w.end); err != nil {
		return fmt.Errorf("store: sealing WAL segment %d: %w", live.seq, err)
	}
	if err := live.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL segment %d before sealing: %w", live.seq, err)
	}
	next, err := createSegment(s.dir, s.codec, live.seq+1)
	if err != nil {
		return err
	}
	if err := writeManifest(s.dir, s.first, next.seq); err != nil {
		next.f.Close()
		os.Remove(next.path)
		return err
	}
	s.sealed = append(s.sealed, segMeta{seq: live.seq, records: live.records, bytes: live.w.end - magicLen})
	live.f.Close()
	s.live = next
	s.metrics.rotations.Inc()
	return nil
}

// Snapshot accepts a consistent cut for the background snapshot worker.
// The caller (Registry.Put when due, Registry.Snapshot explicitly) holds
// the registry lock, which is what makes enqueue order equal cut order:
// the single worker then writes chain files in cut order, so a newer cut
// can never be overridden by an older one replaying later.
//
// dump must iterate state cloned at the cut — it runs on the worker
// goroutine, concurrently with new registrations. commit(ok) is called
// exactly once, off the registry lock, when the snapshot completes or
// fails: the registry uses it to mark the cut's datasets clean (ok) or
// leave them dirty for the next attempt (!ok). With syncWait set the
// returned wait blocks until the job finishes — call it AFTER releasing
// the registry lock, or the worker's commit would deadlock against it.
// Without syncWait, wait is nil, and the job is dropped (commit(false))
// if a snapshot is already queued or running — dirtiness is retained, so
// the next due snapshot re-covers the skipped appends. Snapshot
// implements the other half of server.Persister.
func (s *Store) Snapshot(dump func(emit func(dataset string, sum core.Summary) error) error, commit func(ok bool), syncWait bool) (wait func() error, err error) {
	return s.SnapshotTraced(nil, dump, commit, syncWait)
}

// SnapshotTraced is Snapshot carrying the span of the operation that cut
// it (the registering request for an automatic snapshot, nil for
// explicit/shutdown cuts). The snapshot outlives the request, so it is
// recorded as its own trace (rooted at store.snapshot) stamped with the
// trigger's trace ID rather than as a child span; the live-segment seal
// it performs inline, however, IS a child of the trigger. SnapshotTraced
// implements the other half of server.TracedPersister.
func (s *Store) SnapshotTraced(trigger *trace.Span, dump func(emit func(dataset string, sum core.Summary) error) error, commit func(ok bool), syncWait bool) (wait func() error, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		commit(false)
		return nil, errors.New("store: snapshot on closed store")
	}
	// Back off a full interval before the next automatic attempt,
	// whatever this one's outcome: a persistently failing snapshot must
	// not re-trigger on every subsequent append.
	s.sinceSnapshot = 0
	if !syncWait && s.pending > 0 {
		s.mu.Unlock()
		s.metrics.snapDrops.Inc()
		commit(false)
		return nil, nil
	}
	if s.live.records > 0 {
		// Seal the live segment so the cut covers every record appended so
		// far and the worker can delete segments up to it.
		rsp := trigger.StartChild("store.rotate")
		err := s.rotateLocked()
		rsp.Finish()
		if err != nil {
			s.lastSnapErr = err.Error()
			s.mu.Unlock()
			commit(false)
			return nil, err
		}
	}
	job := &snapJob{cut: s.live.seq - 1, dump: dump, commit: commit, done: make(chan error, 1), trigger: trigger.TraceID()}
	s.pending++
	s.snapQ = append(s.snapQ, job)
	s.snapCond.Signal()
	s.mu.Unlock()
	if syncWait {
		return func() error { return <-job.done }, nil
	}
	return nil, nil
}

// worker is the background snapshot goroutine: it drains snapQ in FIFO
// (= cut) order, holding no store lock during the expensive file write.
// At close it fails any jobs still queued — their cuts stay dirty and the
// WAL still holds their records, so nothing is lost.
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.snapQ) == 0 && !s.closed {
			s.snapCond.Wait()
		}
		if len(s.snapQ) == 0 {
			s.mu.Unlock()
			return
		}
		job := s.snapQ[0]
		s.snapQ = s.snapQ[1:]
		closed := s.closed
		s.mu.Unlock()

		var err error
		if closed {
			err = errors.New("store: closed before snapshot ran")
		} else {
			err = s.writeSnapshot(job)
		}
		if err != nil {
			// Stamp the failure with the run's sequence so the
			// snapshot_error surfaced in /healthz names a specific,
			// log-correlatable snapshot attempt.
			msg := err.Error()
			if job.seq > 0 {
				msg = fmt.Sprintf("snapshot %d: %s", job.seq, msg)
			}
			s.mu.Lock()
			s.lastSnapErr = msg
			s.mu.Unlock()
		}
		s.logSnapshot(job, err)
		// Off every store lock: commit re-enters the registry, whose lock
		// ranks above the store's.
		job.commit(err == nil)
		job.done <- err

		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
	}
}

// logSnapshot emits one background-snapshot line per completed job,
// carrying the snapshot sequence and the trace ID of the triggering cut —
// the correlation fields that make a later snapshot_error attributable.
func (s *Store) logSnapshot(job *snapJob, err error) {
	l := s.opts.Logger
	if l == nil {
		return
	}
	if err != nil {
		l.LogAttrs(context.Background(), slog.LevelError, "snapshot failed",
			slog.Int64("snapshot_seq", job.seq),
			slog.String("trigger_trace", job.trigger),
			slog.String("error", err.Error()),
		)
		return
	}
	l.LogAttrs(context.Background(), slog.LevelInfo, "snapshot",
		slog.Int64("snapshot_seq", job.seq),
		slog.String("trigger_trace", job.trigger),
		slog.Int64("entries", job.entries),
		slog.Duration("duration", job.dur),
	)
}

// writeSnapshot runs one snapshot job on the worker goroutine. The dump
// (already a consistent cut) streams into the next chain file; when the
// chain would outgrow maxSnapshotChain it is merged with the existing
// files into one full image instead. On success the manifest advances
// past the covered segments and those files are deleted — strictly after
// the chain file is durable, so a crash at any point leaves a directory
// that recovers to the same state.
func (s *Store) writeSnapshot(job *snapJob) (err error) {
	snapStart := time.Now()
	s.mu.Lock()
	chain := append([]int64(nil), s.snapSeqs...)
	s.mu.Unlock()

	nextSeq := int64(1)
	if len(chain) > 0 {
		nextSeq = chain[len(chain)-1] + 1
	}
	job.seq = nextSeq
	// The snapshot outlives whatever triggered it, so it records as its
	// own trace, stamped with the trigger's trace ID for correlation.
	sp := s.opts.Tracer.StartSpan("store.snapshot", trace.SpanContext{})
	sp.SetInt("snapshot_seq", nextSeq)
	if job.trigger != "" {
		sp.SetAttr("trigger_trace", job.trigger)
	}
	defer func() {
		job.dur = time.Since(snapStart)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.Finish()
	}()
	dump := job.dump
	merge := len(chain)+1 > maxSnapshotChain
	if merge {
		// Chain files are immutable once promoted and only this goroutine
		// adds or removes them, so reading them unlocked is safe.
		merged := make(map[instanceKey]core.Summary)
		for _, seq := range chain {
			if _, _, err := readSnapshotFile(s.dir, seq, func(dataset string, sum core.Summary) error {
				merged[instanceKey{dataset, sum.InstanceID()}] = sum
				return nil
			}); err != nil {
				return err
			}
		}
		if err := job.dump(func(dataset string, sum core.Summary) error {
			merged[instanceKey{dataset, sum.InstanceID()}] = sum
			return nil
		}); err != nil {
			return err
		}
		dump = sortedMergeDump(merged)
	}

	tmp, entries, err := writeSnapshotTemp(s.dir, s.codec, dump)
	if err != nil {
		return err
	}
	job.entries = entries
	sp.SetInt("entries", entries)
	wrote := entries > 0 || merge
	if !wrote {
		// Nothing was dirty at the cut. Every record in the covered
		// segments mutated some dataset after the PREVIOUS cut, so an empty
		// dump means those segments hold nothing the chain lacks — the
		// manifest can still advance and delete them, without an empty
		// chain file to show for it.
		os.Remove(tmp)
	} else if err := promoteSnapshot(s.dir, tmp, nextSeq); err != nil {
		os.Remove(tmp)
		return err
	}

	s.mu.Lock()
	if wrote {
		if merge {
			s.snapSeqs = []int64{nextSeq}
			s.snapEntries = entries
		} else {
			s.snapSeqs = append(s.snapSeqs, nextSeq)
			s.snapEntries += entries
		}
	}
	var goneSegs []string
	if job.cut >= s.first {
		if err := writeManifest(s.dir, job.cut+1, s.live.seq); err != nil {
			s.mu.Unlock()
			return err
		}
		for len(s.sealed) > 0 && s.sealed[0].seq <= job.cut {
			goneSegs = append(goneSegs, segmentName(s.sealed[0].seq))
			s.sealed = s.sealed[1:]
		}
		s.first = job.cut + 1
	}
	s.lastSnapshot = time.Now()
	s.lastSnapErr = "" // a successful snapshot clears any stale error
	s.mu.Unlock()

	// Deletions come last: until the manifest advanced, these files were
	// needed; now a crash before any Remove just means recoverSegments
	// prunes them next open.
	if merge {
		for _, seq := range chain {
			os.Remove(filepath.Join(s.dir, snapName(seq)))
		}
	}
	for _, name := range goneSegs {
		os.Remove(filepath.Join(s.dir, name))
	}
	if merge || len(goneSegs) > 0 {
		syncDir(s.dir)
	}
	s.metrics.snapshots.Inc()
	s.metrics.snapDur.ObserveSince(snapStart)
	if merge {
		s.metrics.compactions.Inc()
	}
	return nil
}

// Status reports the store's durability state for /healthz.
func (s *Store) Status() api.StoreStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	records, bytes := s.live.records, s.live.w.end-magicLen
	for _, m := range s.sealed {
		records += m.records
		bytes += m.bytes
	}
	st := api.StoreStatus{
		Dir:                s.dir,
		WALRecords:         records,
		WALBytes:           bytes,
		WALSegments:        int64(len(s.sealed)) + 1,
		SnapshotEntries:    s.snapEntries,
		SnapshotChain:      len(s.snapSeqs),
		QuarantinedFiles:   s.quarantined,
		RecoveredDatasets:  s.recoveredDatasets,
		RecoveredSummaries: s.recoveredSummaries,
		Fsync:              s.opts.Fsync,
	}
	st.SnapshotError = s.lastSnapErr
	if !s.lastSnapshot.IsZero() {
		st.LastSnapshot = s.lastSnapshot.UTC().Format(time.RFC3339)
	}
	return st
}

// WALDatasets lists (sorted) the distinct dataset names Open recovered
// from WAL segments — exactly the datasets the snapshot chain does not
// fully cover. Pass it to Registry.MarkClean after SetPersister so the
// first incremental snapshot writes these datasets and no others.
func (s *Store) WALDatasets() []string {
	return append([]string(nil), s.walDatasets...)
}

// Close stops the snapshot worker (failing any still-queued jobs — their
// records remain in the WAL), fsyncs the live segment, and releases the
// directory. A store shutting down cleanly should run a final
// Registry.Snapshot first (as summaryd does on SIGTERM) so the next Open
// replays a snapshot instead of the whole log — but skipping that costs
// only recovery time, never data.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.snapCond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.lock.Close() // releases the directory flock
	if err := s.live.f.Sync(); err != nil {
		s.live.f.Close()
		return fmt.Errorf("store: syncing WAL at close: %w", err)
	}
	return s.live.f.Close()
}
