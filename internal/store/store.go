// Package store is the summary server's durability subsystem: an
// append-only write-ahead log plus periodic full snapshots, both carrying
// (dataset, summary) records whose payloads are the deterministic v2
// binary wire format (internal/core codecv2).
//
// The contract with the registry (internal/server.Registry via its
// Persister hook):
//
//   - every accepted registration is appended to the WAL before the
//     request is acknowledged — the WAL is the source of truth between
//     snapshots;
//   - every SnapshotEvery appends, the full registry image is written
//     atomically (temp file + fsync + rename) and the WAL is truncated —
//     recovery cost stays bounded by the snapshot interval, not uptime;
//   - Open replays snapshot then WAL into the caller's registry,
//     tolerating a torn final WAL record (a crash mid-append): the
//     recovered state is the longest valid record prefix, exactly the
//     registrations that were previously acknowledged durable.
//
// Replay is idempotent: a record re-applied after an ill-timed crash
// between snapshot promotion and WAL truncation replaces a (dataset,
// instance) entry with the identical summary, so every crash point
// converges to the same recovered registry.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/pkg/api"
)

// DefaultSnapshotEvery is the append count between automatic snapshots
// when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// Options configures a Store at Open.
type Options struct {
	// SnapshotEvery is the number of WAL appends between automatic
	// snapshots: Append reports snapshotDue every SnapshotEvery records.
	// Zero means DefaultSnapshotEvery; negative disables automatic
	// snapshots (Snapshot can still be called explicitly, e.g. at
	// shutdown).
	SnapshotEvery int64
	// Fsync syncs the WAL file after every append, making each
	// acknowledgment durable against power loss, not just process death.
	// Off, the OS flushes at its leisure — crash-consistent (replay never
	// sees a half-state) but the tail may be lost with the page cache.
	Fsync bool
}

// Store is an open durability directory: a WAL accepting appends and the
// snapshot machinery around it. Methods are safe for concurrent use; the
// registry additionally serializes Append calls under its own lock, which
// is what makes WAL order identical to registry apply order.
type Store struct {
	dir   string
	opts  Options
	codec core.Codec

	mu     sync.Mutex
	closed bool
	lock   *os.File
	wal    *os.File
	w      *recordWriter

	walRecords    int64
	sinceSnapshot int64
	snapEntries   int64
	lastSnapshot  time.Time
	lastSnapErr   string

	recoveredDatasets  int
	recoveredSummaries int64
}

// Open opens (creating if needed) the durability directory and replays
// its state — snapshot first, then the WAL's longest valid record prefix
// — through apply, in the exact order the records were accepted. The WAL
// is truncated to its valid prefix so a torn tail never lingers. apply is
// typically Registry.Put on a fresh registry; attach the store as the
// registry's persister only after Open returns, so replay does not
// re-append what the log already holds.
func Open(dir string, opts Options, apply func(dataset string, s core.Summary) error) (st *Store, err error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	codec, err := core.CodecByVersion(2)
	if err != nil {
		return nil, fmt.Errorf("store: v2 codec unavailable: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	// One owner per directory, enforced with flock (lock_unix.go; non-Unix
	// platforms compile with a no-op fallback). Two stores appending to
	// one WAL would interleave WriteAts at overlapping offsets and corrupt
	// acknowledged records.
	lock, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: data dir %s is in use by another process: %w", dir, err)
	}
	// Closing the lock file releases the flock; do so on every failed
	// open, or an aborted recovery would wedge the directory until the
	// process exits.
	defer func() {
		if st == nil {
			lock.Close()
		}
	}()
	removeStrayTemps(dir)

	s := &Store{dir: dir, opts: opts, codec: codec, lock: lock}
	// Count distinct (dataset, instance) summaries, not replayed records:
	// after a crash between snapshot promotion and WAL truncation the WAL
	// re-plays records the snapshot already holds (idempotently), and the
	// recovery report must describe the recovered registry, not the
	// replay's work.
	type instance struct {
		dataset string
		id      int
	}
	datasets := make(map[string]bool)
	summaries := make(map[instance]bool)
	counting := func(dataset string, sum core.Summary) error {
		if err := apply(dataset, sum); err != nil {
			return err
		}
		datasets[dataset] = true
		summaries[instance{dataset, sum.InstanceID()}] = true
		return nil
	}

	s.snapEntries, s.lastSnapshot, err = readSnapshot(dir, counting)
	if err != nil {
		return nil, err
	}

	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: WAL stat: %w", err)
	}
	end := int64(magicLen)
	switch {
	case info.Size() == 0:
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: writing WAL header: %w", err)
		}
	case info.Size() < magicLen:
		// A crash before even the header landed: nothing recoverable, start
		// the log over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: resetting torn WAL header: %w", err)
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: writing WAL header: %w", err)
		}
	default:
		if err := checkMagic(f, walMagic, "WAL"); err != nil {
			f.Close()
			return nil, err
		}
		records, valid, err := readRecords(f, info.Size()-magicLen, false, counting)
		if err != nil {
			f.Close()
			return nil, err
		}
		s.walRecords = records
		end = magicLen + valid
		if end < info.Size() {
			// Tear off the invalid tail so appends continue from a clean
			// boundary.
			if err := f.Truncate(end); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: syncing WAL after recovery: %w", err)
	}
	s.wal = f
	s.w = newRecordWriter(f, codec, end)
	s.sinceSnapshot = s.walRecords
	s.recoveredDatasets = len(datasets)
	s.recoveredSummaries = int64(len(summaries))
	return s, nil
}

// Append writes one accepted (dataset, summary) registration to the WAL.
// It reports snapshotDue when the appends since the last snapshot have
// reached Options.SnapshotEvery — the caller (holding whatever lock
// serializes registrations) should then call Snapshot with a consistent
// dump. Append implements half of server.Persister.
func (s *Store) Append(dataset string, sum core.Summary) (snapshotDue bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, fmt.Errorf("store: append on closed store")
	}
	prevEnd := s.w.end
	if err := s.w.append(dataset, sum); err != nil {
		return false, err
	}
	if s.opts.Fsync {
		if err := s.wal.Sync(); err != nil {
			// The record is fully framed on disk, but this error makes the
			// caller roll the registration back and fail the request — so
			// the frame must go too, or a restart would resurrect a summary
			// the client was told did not land. If even the truncate fails,
			// poison the store: better no more appends than a log whose
			// valid prefix disagrees with what was acknowledged.
			if terr := s.wal.Truncate(prevEnd); terr != nil {
				s.closed = true
				s.wal.Close()
				s.lock.Close()
				return false, fmt.Errorf("store: syncing WAL: %v (truncating the unacknowledged record also failed, store closed: %w)", err, terr)
			}
			s.w.end = prevEnd
			return false, fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	s.walRecords++
	s.sinceSnapshot++
	return s.opts.SnapshotEvery > 0 && s.sinceSnapshot >= s.opts.SnapshotEvery, nil
}

// Snapshot writes the full image dump yields — atomically, via temp file
// and rename — and then truncates the WAL: the snapshot supersedes every
// logged record. dump must iterate a state that includes everything
// appended so far (the registry guarantees this by dumping under the
// same lock that ordered the appends). A crash anywhere inside Snapshot
// is safe: before the rename the old snapshot + full WAL recover the
// state; after it, the new snapshot does, with any not-yet-truncated WAL
// records replaying idempotently. Snapshot implements the other half of
// server.Persister.
func (s *Store) Snapshot(dump func(emit func(dataset string, s core.Summary) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	if err := s.snapshotLocked(dump); err != nil {
		// Durability is intact — the WAL holds every record — but surface
		// the failure in Status (operators watch /healthz) and back off a
		// full snapshot interval before the next automatic attempt, so a
		// persistently failing snapshot does not cost a registry dump on
		// every subsequent append.
		s.lastSnapErr = err.Error()
		s.sinceSnapshot = 0
		return err
	}
	s.lastSnapErr = ""
	return nil
}

func (s *Store) snapshotLocked(dump func(emit func(dataset string, s core.Summary) error) error) error {
	tmp, entries, err := writeSnapshotTemp(s.dir, s.codec, dump)
	if err != nil {
		return err
	}
	if err := promoteSnapshot(s.dir, tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.wal.Truncate(magicLen); err != nil {
		return fmt.Errorf("store: truncating WAL after snapshot: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing truncated WAL: %w", err)
	}
	s.w.end = magicLen
	s.walRecords = 0
	s.sinceSnapshot = 0
	s.snapEntries = entries
	s.lastSnapshot = time.Now()
	return nil
}

// Status reports the store's durability state for /healthz.
func (s *Store) Status() api.StoreStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := api.StoreStatus{
		Dir:                s.dir,
		WALRecords:         s.walRecords,
		WALBytes:           s.w.end - magicLen,
		SnapshotEntries:    s.snapEntries,
		RecoveredDatasets:  s.recoveredDatasets,
		RecoveredSummaries: s.recoveredSummaries,
		Fsync:              s.opts.Fsync,
	}
	st.SnapshotError = s.lastSnapErr
	if !s.lastSnapshot.IsZero() {
		st.LastSnapshot = s.lastSnapshot.UTC().Format(time.RFC3339)
	}
	return st
}

// Close flushes and fsyncs the WAL and releases the directory. A store
// shutting down cleanly should Snapshot first (as summaryd does on
// SIGTERM) so the next Open replays a snapshot instead of the whole log —
// but skipping that costs only recovery time, never data.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer s.lock.Close() // releases the directory flock
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("store: syncing WAL at close: %w", err)
	}
	return s.wal.Close()
}
