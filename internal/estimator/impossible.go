package estimator

// Negative results of §6: with weighted sampling and *unknown* seeds there
// is no unbiased nonnegative estimator for ℓth(v) with ℓ < r (including
// Boolean OR) or for RG^d, even on binary domains. The functions here make
// Theorem 6.1's argument executable: they solve the (unique) candidate
// unbiased estimator and report the forced violation.

// UnknownSeedsOR2 solves the unique unbiased estimator of OR(v1, v2) over
// weighted samples with unknown seeds, where p_i is the inclusion
// probability of entry i when v_i = 1 (a zero entry is never sampled, and
// without seeds its absence carries no information).
//
// The outcome space is {∅, {1}, {2}, {1,2}} (sampled entries always carry
// value 1). Unbiasedness on (0,0), (1,0), (0,1) forces
//
//	f̂(∅) = 0,  f̂({1}) = 1/p1,  f̂({2}) = 1/p2,
//
// and unbiasedness on (1,1) then forces
//
//	f̂({1,2}) = (p1 + p2 − 1)/(p1·p2),
//
// which is negative exactly when p1 + p2 < 1. Feasible reports whether a
// nonnegative unbiased estimator exists.
type UnknownSeedsOR2 struct {
	// EstEmpty, EstOne1, EstOne2, EstBoth are the forced estimate values.
	EstEmpty, EstOne1, EstOne2, EstBoth float64
	// Feasible is true iff EstBoth ≥ 0, i.e. p1 + p2 ≥ 1.
	Feasible bool
}

// SolveUnknownSeedsOR2 computes the forced estimator for given inclusion
// probabilities (both must lie in (0,1]).
func SolveUnknownSeedsOR2(p1, p2 float64) UnknownSeedsOR2 {
	both := (p1 + p2 - 1) / (p1 * p2)
	return UnknownSeedsOR2{
		EstEmpty: 0,
		EstOne1:  1 / p1,
		EstOne2:  1 / p2,
		EstBoth:  both,
		Feasible: both >= 0,
	}
}

// Mean returns the expectation of the forced estimator on binary data
// (v1, v2) — used by tests to confirm it is the unique unbiased solution.
func (s UnknownSeedsOR2) Mean(p1, p2 float64, v1, v2 bool) float64 {
	q1, q2 := 0.0, 0.0
	if v1 {
		q1 = p1
	}
	if v2 {
		q2 = p2
	}
	return q1*q2*s.EstBoth + q1*(1-q2)*s.EstOne1 + (1-q1)*q2*s.EstOne2 + (1-q1)*(1-q2)*s.EstEmpty
}

// UnknownSeedsXORInfeasible demonstrates the RG^d / XOR argument of §6: any
// nonnegative estimator of XOR over weighted samples with unknown seeds
// must be 0 on outcomes with at most one sampled entry (nonnegativity
// against the data vector whose hidden entry equals the sampled one), so on
// data (1,0) — whose only possible outcomes are ∅ and {1} — the expectation
// is 0 ≠ XOR(1,0) = 1. The function returns the resulting bias on (1,0),
// which is −1 for every choice of probabilities: unbiasedness is impossible.
func UnknownSeedsXORInfeasible(p1, p2 float64) (bias float64) {
	// Outcomes for data (1,0): {1} with probability p1, ∅ otherwise; both
	// forced to estimate 0.
	return 0 - 1
}
