package estimator

import (
	"errors"
	"math"
	"testing"
)

// TestDeriveORLMatchesClosedForm runs Algorithm 1 with the §4.3 order on
// the binary domain and checks the derived table equals OR^(L) on every
// outcome.
func TestDeriveORLMatchesClosedForm(t *testing.T) {
	for _, p1 := range []float64{0.2, 0.5, 0.8} {
		for _, p2 := range []float64{0.3, 0.5, 0.9} {
			d, err := Derive(DiscreteProblem{
				P:       []float64{p1, p2},
				Domains: [][]float64{{0, 1}, {0, 1}},
				F:       orOf,
				Less:    ORLOrder,
			})
			if err != nil {
				t.Fatalf("p=(%v,%v): %v", p1, p2, err)
			}
			if !d.Nonnegative() {
				t.Errorf("p=(%v,%v): derived OR^L negative (min %v)", p1, p2, d.MinEstimate)
			}
			forEachOutcome2([]float64{p1, p2}, [][]float64{{0, 1}, {0, 1}}, func(o ObliviousOutcome) {
				got, err := d.Estimate(o)
				if err != nil {
					t.Fatal(err)
				}
				if want := ORL2(o); !approxEq(got, want, 1e-9) {
					t.Errorf("p=(%v,%v) outcome %v/%v: derived %v, closed form %v",
						p1, p2, o.Sampled, o.Values, got, want)
				}
			})
		}
	}
}

// TestDeriveMaxLMatchesClosedForm derives max^(L) on a 3-value domain and
// compares against the r=2 closed form (which holds for arbitrary reals, so
// in particular on the discrete grid).
func TestDeriveMaxLMatchesClosedForm(t *testing.T) {
	dom := [][]float64{{0, 1, 2}, {0, 1, 2}}
	for _, p1 := range []float64{0.3, 0.6} {
		for _, p2 := range []float64{0.4, 0.7} {
			d, err := Derive(DiscreteProblem{
				P:       []float64{p1, p2},
				Domains: dom,
				F:       maxOf,
				Less:    MaxLOrder,
			})
			if err != nil {
				t.Fatal(err)
			}
			forEachOutcome2([]float64{p1, p2}, dom, func(o ObliviousOutcome) {
				got, err := d.Estimate(o)
				if err != nil {
					t.Fatal(err)
				}
				if want := MaxL2(o); !approxEq(got, want, 1e-9) {
					t.Errorf("p=(%v,%v) outcome %v/%v: derived %v, closed form %v",
						p1, p2, o.Sampled, o.Values, got, want)
				}
			})
		}
	}
}

// TestDeriveMaxLUniformR3 cross-validates the Theorem 4.2 recurrence: the
// generic engine on a binary 3-entry domain must agree with MaxLUniform.
func TestDeriveMaxLUniformR3(t *testing.T) {
	p := 0.4
	e, err := NewMaxLUniform(3, p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Derive(DiscreteProblem{
		P:       []float64{p, p, p},
		Domains: [][]float64{{0, 1}, {0, 1}, {0, 1}},
		F:       maxOf,
		Less:    MaxLOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		for vm := 0; vm < 8; vm++ {
			o := ObliviousOutcome{P: []float64{p, p, p}, Sampled: make([]bool, 3), Values: make([]float64, 3)}
			for i := 0; i < 3; i++ {
				o.Sampled[i] = mask&(1<<uint(i)) != 0
				if o.Sampled[i] && vm&(1<<uint(i)) != 0 {
					o.Values[i] = 1
				}
			}
			got, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			if want := e.Estimate(o); !approxEq(got, want, 1e-9) {
				t.Errorf("outcome %v/%v: derived %v, recurrence %v", o.Sampled, o.Values, got, want)
			}
		}
	}
}

// TestDeriveUnbiasedByEnumeration confirms the derived estimator satisfies
// the unbiasedness constraints it was built from, on every data vector.
func TestDeriveUnbiasedByEnumeration(t *testing.T) {
	dom := [][]float64{{0, 1, 3}, {0, 2, 3}}
	p := []float64{0.35, 0.55}
	d, err := Derive(DiscreteProblem{P: p, Domains: dom, F: maxOf, Less: MaxLOrder})
	if err != nil {
		t.Fatal(err)
	}
	for _, v1 := range dom[0] {
		for _, v2 := range dom[1] {
			v := []float64{v1, v2}
			mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
				x, err := d.Estimate(o)
				if err != nil {
					t.Fatal(err)
				}
				return x
			})
			if !approxEq(mean, maxOf(v), 1e-9) {
				t.Errorf("v=%v: mean %v, want %v", v, mean, maxOf(v))
			}
		}
	}
}

// TestDeriveSparseOrderGoesNegative reproduces the §4.2 observation: plain
// Algorithm 1 under the sparse-first order yields a negative estimate when
// p1 + p2 < 1 (motivating the nonnegativity-constrained f̂(+≺) and the
// partition-based max^(U)).
func TestDeriveSparseOrderGoesNegative(t *testing.T) {
	d, err := Derive(DiscreteProblem{
		P:       []float64{0.3, 0.3},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       maxOf,
		Less:    SparseOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Nonnegative() {
		t.Errorf("expected negative estimates for sparse order at p1+p2<1, min=%v", d.MinEstimate)
	}
	// With p1 + p2 ≥ 1 the same derivation stays nonnegative.
	d2, err := Derive(DiscreteProblem{
		P:       []float64{0.6, 0.6},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       maxOf,
		Less:    SparseOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Nonnegative() {
		t.Errorf("expected nonnegative estimates at p1+p2≥1, min=%v", d2.MinEstimate)
	}
}

// TestDeriveFailurePath models the unknown-seed weighted regime inside the
// engine: setting p2 = 0 makes entry 2 never observable, which is the
// information structure of Theorem 6.1 — and the derivation of OR must
// fail (vector (0,1) demands expectation 1 but all its outcomes were
// already forced to 0).
func TestDeriveFailurePath(t *testing.T) {
	_, err := Derive(DiscreteProblem{
		P:       []float64{0.5, 0},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       orOf,
		Less:    ORLOrder,
	})
	if err == nil {
		t.Fatal("expected failure when one entry is never observable")
	}
	if !errors.Is(err, ErrNoUnbiased) {
		t.Fatalf("expected ErrNoUnbiased, got %v", err)
	}
}

// TestDeriveXORIsHT: XOR on binary domains equals RG, whose HT estimator is
// Pareto optimal for r = 2 (§4); the order-based derivation must rediscover
// exactly that estimator — positive only on fully sampled mixed outcomes,
// and nonnegative.
func TestDeriveXORIsHT(t *testing.T) {
	p := []float64{0.4, 0.4}
	xor := func(v []float64) float64 {
		if (v[0] > 0) != (v[1] > 0) {
			return 1
		}
		return 0
	}
	d, err := Derive(DiscreteProblem{
		P:       p,
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       xor,
		Less:    ORLOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nonnegative() {
		t.Errorf("derived XOR estimator negative: min=%v", d.MinEstimate)
	}
	forEachOutcome2(p, [][]float64{{0, 1}, {0, 1}}, func(o ObliviousOutcome) {
		got, err := d.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		want := HTOblivious(o, xor)
		if !approxEq(got, want, 1e-9) {
			t.Errorf("outcome %v/%v: derived %v, HT %v", o.Sampled, o.Values, got, want)
		}
	})
	for _, v := range binaryVectors2 {
		mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
			x, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			return x
		})
		if !approxEq(mean, xor(v), 1e-9) {
			t.Errorf("derived XOR biased on %v: mean %v", v, mean)
		}
	}
}

// forEachOutcome2 enumerates every outcome (sampled set × domain values)
// for a 2-entry problem.
func forEachOutcome2(p []float64, dom [][]float64, f func(ObliviousOutcome)) {
	for mask := 0; mask < 4; mask++ {
		vals1 := []float64{0}
		if mask&1 != 0 {
			vals1 = dom[0]
		}
		vals2 := []float64{0}
		if mask&2 != 0 {
			vals2 = dom[1]
		}
		for _, v1 := range vals1 {
			for _, v2 := range vals2 {
				f(ObliviousOutcome{
					P:       p,
					Sampled: []bool{mask&1 != 0, mask&2 != 0},
					Values:  []float64{v1, v2},
				})
			}
		}
	}
}

// TestDerivedTableSize sanity-checks outcome coverage.
func TestDerivedTableSize(t *testing.T) {
	d, err := Derive(DiscreteProblem{
		P:       []float64{0.5, 0.5},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       orOf,
		Less:    ORLOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Outcomes: ∅ (1) + {1} (2 values) + {2} (2) + {1,2} (4) = 9.
	if d.Len() != 9 {
		t.Errorf("table size %d, want 9", d.Len())
	}
	if math.IsInf(d.MinEstimate, 1) {
		t.Error("MinEstimate not set")
	}
}
