package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

// TestMaxLUniformPrefixSumsMatchPaper locks the parametric prefix sums the
// paper derives for r = 2 and r = 3 (§4.1).
func TestMaxLUniformPrefixSumsMatchPaper(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.5, 0.8} {
		e2, err := NewMaxLUniform(2, p)
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 / (p * (2 - p)); !approxEq(e2.PrefixSum(2), want, 1e-12) {
			t.Errorf("r=2 A2(p=%v) = %v, want %v", p, e2.PrefixSum(2), want)
		}
		if want := 1 / (p * p * (2 - p)); !approxEq(e2.PrefixSum(1), want, 1e-12) {
			t.Errorf("r=2 A1(p=%v) = %v, want %v", p, e2.PrefixSum(1), want)
		}
		e3, err := NewMaxLUniform(3, p)
		if err != nil {
			t.Fatal(err)
		}
		d := p*p - 3*p + 3
		if want := 1 / (p * d); !approxEq(e3.PrefixSum(3), want, 1e-12) {
			t.Errorf("r=3 A3(p=%v) = %v, want %v", p, e3.PrefixSum(3), want)
		}
		if want := 1 / (p * p * d * (2 - p)); !approxEq(e3.PrefixSum(2), want, 1e-12) {
			t.Errorf("r=3 A2(p=%v) = %v, want %v", p, e3.PrefixSum(2), want)
		}
		if want := (2 + p*p - 2*p) / (p * p * p * d * (2 - p)); !approxEq(e3.PrefixSum(1), want, 1e-12) {
			t.Errorf("r=3 A1(p=%v) = %v, want %v", p, e3.PrefixSum(1), want)
		}
	}
}

// TestMaxLUniformAlphaFormulaR2 locks the explicit coefficient vector (22).
func TestMaxLUniformAlphaFormulaR2(t *testing.T) {
	for _, p := range []float64{0.2, 0.5, 0.9} {
		e, err := NewMaxLUniform(2, p)
		if err != nil {
			t.Fatal(err)
		}
		a := e.Alpha()
		if want := 1 / (p * p * (2 - p)); !approxEq(a[0], want, 1e-12) {
			t.Errorf("alpha1(p=%v) = %v, want %v", p, a[0], want)
		}
		if want := -(1 - p) / (p * p * (2 - p)); !approxEq(a[1], want, 1e-12) {
			t.Errorf("alpha2(p=%v) = %v, want %v", p, a[1], want)
		}
	}
}

// TestMaxLUniformMatchesMaxL2 cross-validates the Algorithm 3 machinery
// against the independent r=2 closed form on every outcome.
func TestMaxLUniformMatchesMaxL2(t *testing.T) {
	for _, p := range []float64{0.1, 0.4, 0.5, 0.7, 1} {
		e, err := NewMaxLUniform(2, p)
		if err != nil {
			t.Fatal(err)
		}
		ps := []float64{p, p}
		for _, v := range valueGrid2 {
			for mask := 0; mask < 4; mask++ {
				o := ObliviousOutcome{P: ps,
					Sampled: []bool{mask&1 != 0, mask&2 != 0},
					Values:  []float64{v[0], v[1]},
				}
				if !o.Sampled[0] {
					o.Values[0] = 0
				}
				if !o.Sampled[1] {
					o.Values[1] = 0
				}
				got, want := e.Estimate(o), MaxL2(o)
				if !approxEq(got, want, 1e-10) {
					t.Errorf("p=%v v=%v mask=%b: uniform %v vs closed form %v", p, v, mask, got, want)
				}
			}
		}
	}
}

// TestMaxLUniformUnbiased checks unbiasedness by exact outcome enumeration
// for r up to 6 over random data vectors.
func TestMaxLUniformUnbiased(t *testing.T) {
	rng := randx.New(7)
	for r := 2; r <= 6; r++ {
		for _, p := range []float64{0.15, 0.5, 0.85} {
			e, err := NewMaxLUniform(r, p)
			if err != nil {
				t.Fatal(err)
			}
			ps := make([]float64, r)
			for i := range ps {
				ps[i] = p
			}
			for trial := 0; trial < 10; trial++ {
				v := make([]float64, r)
				for i := range v {
					if rng.Bool(0.25) {
						v[i] = 0
					} else {
						v[i] = math.Floor(rng.Float64()*100) / 10
					}
				}
				mean, _ := ObliviousMoments(ps, v, e.Estimate)
				want := maxOf(v)
				if !approxEq(mean, want, 1e-9) {
					t.Errorf("r=%d p=%v v=%v: mean %v want %v", r, p, v, mean, want)
				}
			}
		}
	}
}

// TestMaxLUniformLemma42 verifies the conditions of Lemma 4.2 — α_i < 0 for
// i > 1 and α_1 ≤ p^{−r} — which imply monotonicity, nonnegativity, and
// dominance over max^(HT). The paper verified them up to r = 4; we extend
// the numeric verification to r = 8.
func TestMaxLUniformLemma42(t *testing.T) {
	for r := 2; r <= 8; r++ {
		for _, p := range []float64{0.05, 0.2, 0.5, 0.8, 0.99} {
			e, err := NewMaxLUniform(r, p)
			if err != nil {
				t.Fatal(err)
			}
			a := e.Alpha()
			if a[0] <= 0 {
				t.Errorf("r=%d p=%v: alpha1 = %v not positive", r, p, a[0])
			}
			if bound := math.Pow(p, -float64(r)); a[0] > bound*(1+1e-9) {
				t.Errorf("r=%d p=%v: alpha1 = %v exceeds HT coefficient %v", r, p, a[0], bound)
			}
			for i := 1; i < r; i++ {
				if a[i] >= 1e-12 {
					t.Errorf("r=%d p=%v: alpha%d = %v not negative", r, p, i+1, a[i])
				}
			}
			// Prefix sums must be positive (needed for the monotone
			// manipulation argument) and total A_r = 1/(1−(1−p)^r).
			sum := 0.0
			for i, ai := range a {
				sum += ai
				if sum <= 0 {
					t.Errorf("r=%d p=%v: prefix sum A_%d = %v not positive", r, p, i+1, sum)
				}
			}
			if want := 1 / (1 - math.Pow(1-p, float64(r))); !approxEq(sum, want, 1e-6) {
				t.Errorf("r=%d p=%v: A_r = %v, want %v", r, p, sum, want)
			}
		}
	}
}

// TestMaxLUniformDominatesHT compares exact variances against max^(HT) for
// r = 3..5.
func TestMaxLUniformDominatesHT(t *testing.T) {
	rng := randx.New(11)
	for r := 3; r <= 5; r++ {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			e, err := NewMaxLUniform(r, p)
			if err != nil {
				t.Fatal(err)
			}
			ps := make([]float64, r)
			for i := range ps {
				ps[i] = p
			}
			for trial := 0; trial < 8; trial++ {
				v := make([]float64, r)
				for i := range v {
					v[i] = rng.Float64() * 10
				}
				_, varL := ObliviousMoments(ps, v, e.Estimate)
				_, varHT := ObliviousMoments(ps, v, MaxHTOblivious)
				if varL > varHT*(1+1e-9)+1e-12 {
					t.Errorf("r=%d p=%v v=%v: VAR[L]=%v > VAR[HT]=%v", r, p, v, varL, varHT)
				}
			}
		}
	}
}

// TestMaxLUniformMonotoneQuick: adding a sampled entry (more information)
// never decreases the estimate.
func TestMaxLUniformMonotoneQuick(t *testing.T) {
	e, err := NewMaxLUniform(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		vals := []float64{100 * frac(a), 100 * frac(b), 100 * frac(c)}
		// Estimate with 2 sampled values vs the same plus a third that is
		// not above the current max (the determining-vector manipulation
		// of Lemma 4.2).
		base := e.EstimateValues(vals[:2])
		mx := math.Max(vals[0], vals[1])
		extra := math.Min(vals[2], mx)
		more := e.EstimateValues([]float64{vals[0], vals[1], extra})
		return more >= base-1e-9*math.Max(1, math.Abs(base))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestMaxLUniformEdgeCases covers r=1 and p=1.
func TestMaxLUniformEdgeCases(t *testing.T) {
	if _, err := NewMaxLUniform(0, 0.5); err == nil {
		t.Error("expected error for r=0")
	}
	if _, err := NewMaxLUniform(2, 0); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := NewMaxLUniform(2, 1.5); err == nil {
		t.Error("expected error for p>1")
	}
	e, err := NewMaxLUniform(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With p=1 everything is sampled and the estimate is the exact max.
	if got := e.EstimateValues([]float64{2, 9, 4}); !approxEq(got, 9, 1e-12) {
		t.Errorf("p=1 estimate = %v, want 9", got)
	}
	e1, err := NewMaxLUniform(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// r=1: plain HT of the single value.
	if got := e1.EstimateValues([]float64{3}); !approxEq(got, 3/0.4, 1e-12) {
		t.Errorf("r=1 estimate = %v, want %v", got, 3/0.4)
	}
}
