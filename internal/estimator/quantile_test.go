package estimator

import (
	"math"
	"testing"
)

func TestLthHTUnbiased(t *testing.T) {
	p := []float64{0.3, 0.5, 0.7}
	v := []float64{4, 9, 1}
	sorted := []float64{9, 4, 1}
	for l := 1; l <= 3; l++ {
		mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
			return LthHTOblivious(o, l)
		})
		if !approxEq(mean, sorted[l-1], 1e-12) {
			t.Errorf("Lth(%d) mean %v, want %v", l, mean, sorted[l-1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range quantile did not panic")
		}
	}()
	LthHTOblivious(ObliviousOutcome{P: p, Sampled: make([]bool, 3), Values: make([]float64, 3)}, 4)
}

func TestRGdHTUnbiased(t *testing.T) {
	p := []float64{0.4, 0.6}
	v := []float64{7, 3}
	for _, d := range []float64{1, 2, 0.5} {
		mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
			return RGdHTOblivious(o, d)
		})
		want := math.Pow(4, d)
		if !approxEq(mean, want, 1e-12) {
			t.Errorf("RG^%v mean %v, want %v", d, mean, want)
		}
	}
}

// TestLthHTSuboptimalForMax: for ℓ=1 (the max), the HT quantile estimator
// coincides with max^(HT), which max^(L) strictly dominates on data with
// distinct values — the motivation of §4.
func TestLthHTSuboptimalForMax(t *testing.T) {
	p := []float64{0.5, 0.5}
	v := []float64{10, 4}
	_, varHT := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
		return LthHTOblivious(o, 1)
	})
	_, varL := ObliviousMoments(p, v, MaxL2)
	if !(varL < varHT) {
		t.Errorf("expected strict dominance: VAR[L]=%v, VAR[HT]=%v", varL, varHT)
	}
}
