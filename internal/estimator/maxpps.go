package estimator

import "math"

// MaxL2PPS is the order-based Pareto-optimal estimator max^(L) for the
// maximum of two entries under independent Poisson PPS sampling with known
// seeds (§5.2, Figure 3, Appendix A).
//
// The estimate is a function of the determining vector φ(S): sampled
// entries keep their values; an unsampled entry i is set to
// min{max sampled value, U[i]·Tau[i]} — the partial information revealed by
// the known seed. The closed form (MaxL2PPSDetermining) has four regimes
// depending on where the determining vector falls relative to the
// thresholds; two regimes involve logarithmic terms from integrating the
// variance-optimality ODE of Appendix A.
//
// MaxL2PPS dominates MaxHTPPS with a variance ratio of at least
// (1+ρ)/ρ ≥ 2 where ρ = max(v)/τ* (for τ1 = τ2 = τ*).
func MaxL2PPS(o PPSOutcome) float64 {
	if o.R() != 2 {
		panic("estimator: MaxL2PPS requires r=2")
	}
	phi := o.DeterminingVector()
	return MaxL2PPSDetermining(phi[0], phi[1], o.Tau[0], o.Tau[1])
}

// MaxL2PPSDetermining evaluates max^(L) as a function of the determining
// vector (v1, v2) and thresholds (tau1, tau2) — the bottom table of
// Figure 3. The function is symmetric under exchanging entry 1 and entry 2
// together with their thresholds.
func MaxL2PPSDetermining(v1, v2, tau1, tau2 float64) float64 {
	a, b, ta, tb := v1, v2, tau1, tau2
	if b > a {
		a, b, ta, tb = b, a, tb, ta
	}
	if a <= 0 {
		return 0
	}
	if b <= 0 {
		// Measure-zero corner (a seed of exactly 0); take the limit from
		// the smallest representable positive value so the logarithmic
		// terms stay finite.
		b = math.SmallestNonzeroFloat64
	}
	switch {
	case b >= tb:
		// v1 ≥ v2 ≥ τ2*: both entries' order is pinned down; only the
		// larger entry's inclusion is uncertain.
		return b + (a-b)/math.Min(1, a/ta)
	case a >= ta:
		// v1 ≥ τ1*, v2 ≤ min{τ2*, v1}: the max is sampled with certainty.
		return a
	case a <= tb:
		// v2 ≤ v1 ≤ min{τ1*, τ2*}. The log ratio is computed as a
		// difference of logarithms so a denormal b cannot overflow the
		// quotient.
		T := ta + tb
		est := ta * tb / (T - a)
		est += ta * tb * (ta - a) / (a * T) * (math.Log((T-b)*a) - math.Log(b*(T-a)))
		est += (a - b) * ta * tb * (ta - a) / (a * (T - b) * (T - a))
		return est
	default:
		// v2 ≤ τ2* ≤ v1 ≤ τ1*.
		//
		// Erratum: equation (30) of the paper prints the logarithm as
		// ln(((τ1+τ2−v+∆)·τ1)/(τ2·(τ1+τ2−v))), which is discontinuous at
		// the v2 = τ2 boundary with the first case and does not integrate
		// g' of Appendix A from the stated lower limit. Evaluating
		// ∫_{v−τ2}^{∆} dx/((τ1+τ2−v+x)²(v−x)) with the footnote-2
		// antiderivative gives ln(((τ1+τ2−v2)·τ2)/(v2·τ1)) instead; this
		// form is continuous at both case boundaries and exact-moment
		// integration confirms unbiasedness (see TestMaxPPSUnbiased).
		T := ta + tb
		est := ta + tb - ta*tb/a
		est += ta * tb * (ta - a) / (a * T) * (math.Log((T-b)*tb) - math.Log(b*ta))
		est += tb * (ta - a) * (tb - b) / ((T - b) * a)
		return est
	}
}

// MaxL2PPSEqual evaluates max^(L) on a determining vector with two equal
// entries (Appendix A, equation (25)); exposed for cross-validation against
// the general closed form.
func MaxL2PPSEqual(v, tau1, tau2 float64) float64 {
	if v <= 0 {
		return 0
	}
	q1 := math.Min(1, v/tau1)
	q2 := math.Min(1, v/tau2)
	return v / (q1 + (1-q1)*q2)
}
