package estimator

import (
	"math"
	"testing"
)

func binaryProblem(p1, p2 float64, f func([]float64) float64) DiscreteProblem {
	return DiscreteProblem{
		P:       []float64{p1, p2},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       f,
		Less:    ORLOrder,
	}
}

// TestDeltaMaxPositive: for max over weight-oblivious samples, Δ(v, ε) > 0
// everywhere — consistent with the existence of max^(L)/max^(U)
// (Lemma 2.1's necessary condition holds).
func TestDeltaMaxPositive(t *testing.T) {
	p := binaryProblem(0.3, 0.4, maxOf)
	if !DeltaFeasible(p) {
		t.Error("Δ condition fails for max, but estimators exist")
	}
	// Explicit value: for v=(1,1), ε=1, the largest portion keeping
	// f ≤ 0 must leave both entries unsampled: Δ = 1 − (1−p1)(1−p2).
	got := DeltaOblivious(p, []float64{1, 1}, 1)
	want := 1 - 0.7*0.6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Δ((1,1),1) = %v, want %v", got, want)
	}
	// For v=(1,0): keeping f ≤ 0 requires entry 1 unsampled (entry 2 may
	// be sampled since its value 0 doesn't pin the max): Δ = p1.
	got = DeltaOblivious(p, []float64{1, 0}, 1)
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Δ((1,0),1) = %v, want 0.3", got)
	}
}

// TestDeltaXOR: XOR also satisfies the necessary condition under
// weight-oblivious sampling (the HT estimator exists; see
// TestDeriveXORIsHT). Keeping XOR below XOR(1,0)=1 only requires hiding
// one of the entries.
func TestDeltaXOR(t *testing.T) {
	xor := func(v []float64) float64 {
		if (v[0] > 0) != (v[1] > 0) {
			return 1
		}
		return 0
	}
	p := binaryProblem(0.5, 0.5, xor)
	if !DeltaFeasible(p) {
		t.Error("Δ condition fails for XOR under oblivious sampling")
	}
	// Δ((1,0), 1): hiding either single entry already admits a consistent
	// vector with XOR = 0, so the best portion fixes only one entry's
	// visibility — Ω′ = {σ ⊆ {i}} with probability 1 − p_j. Hence
	// Δ = 1 − max(1−p1, 1−p2) = min(p1, p2) = 0.5 here.
	if got := DeltaOblivious(p, []float64{1, 0}, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Δ((1,0),1) = %v, want 0.5", got)
	}
}

// TestDeltaUnobservableEntry models the unknown-seeds information
// structure inside the oblivious formalism (p2 = 0: entry 2 never
// observed) and recovers the Theorem 6.1 impossibility: Δ((0,1), 1) = 0.
func TestDeltaUnobservableEntry(t *testing.T) {
	p := DiscreteProblem{
		P:       []float64{0.5, 0},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       orOf,
		Less:    ORLOrder,
	}
	if got := DeltaOblivious(p, []float64{0, 1}, 1); got != 0 {
		t.Errorf("Δ((0,1),1) = %v, want 0", got)
	}
	if DeltaFeasible(p) {
		t.Error("Δ condition should fail with an unobservable positive entry")
	}
	// And indeed the derivation fails (cross-check with Algorithm 1).
	if _, err := Derive(p); err == nil {
		t.Error("Derive should fail where Δ = 0")
	}
}

// TestDeltaMonotoneInEps: Δ(v, ε) is non-decreasing in ε (larger
// deviations are harder to hide).
func TestDeltaMonotoneInEps(t *testing.T) {
	p := DiscreteProblem{
		P:       []float64{0.3, 0.6},
		Domains: [][]float64{{0, 1, 2}, {0, 1, 2}},
		F:       maxOf,
		Less:    MaxLOrder,
	}
	v := []float64{2, 1}
	prev := -1.0
	for _, eps := range []float64{0.5, 1, 1.5, 2, 2.5} {
		d := DeltaOblivious(p, v, eps)
		if d < prev-1e-12 {
			t.Errorf("Δ decreasing at ε=%v: %v after %v", eps, d, prev)
		}
		prev = d
	}
	// Beyond any achievable gap, Δ = 1.
	if got := DeltaOblivious(p, v, 10); got != 1 {
		t.Errorf("Δ(v, 10) = %v, want 1", got)
	}
}
