package estimator

import (
	"testing"
)

// TestDeriveUOrThreeInstances derives the symmetric sparse-first OR
// estimator for THREE instances — a construction the paper only carries
// out for r = 2 — and checks it has all the §2.1 properties: unbiased,
// nonnegative, and dominating OR^(HT), with lower variance than OR^(L) on
// sparse data.
func TestDeriveUOrThreeInstances(t *testing.T) {
	p := []float64{0.3, 0.3, 0.3}
	dom := [][]float64{{0, 1}, {0, 1}, {0, 1}}
	u, err := DeriveU(DiscreteProblem{P: p, Domains: dom, F: orOf, Less: SparseOrder}, PositivesBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Nonnegative() {
		t.Fatalf("r=3 OR^(U) negative: min %v", u.MinEstimate)
	}
	l, err := ORLUniform(3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	est := func(o ObliviousOutcome) float64 {
		x, err := u.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	for mask := 0; mask < 8; mask++ {
		v := make([]float64, 3)
		for i := 0; i < 3; i++ {
			if mask&(1<<uint(i)) != 0 {
				v[i] = 1
			}
		}
		mean, varU := ObliviousMoments(p, v, est)
		if !approxEq(mean, orOf(v), 1e-7) {
			t.Errorf("v=%v: mean %v, want %v", v, mean, orOf(v))
		}
		_, varHT := ObliviousMoments(p, v, ORHTOblivious)
		if varU > varHT+1e-9 {
			t.Errorf("v=%v: derived U variance %v above HT %v", v, varU, varHT)
		}
		_, varL := ObliviousMoments(p, v, l.Estimate)
		ones := positives(v)
		switch ones {
		case 1:
			// Sparse data: the sparse-first estimator must win.
			if varU > varL+1e-9 {
				t.Errorf("v=%v: U %v above L %v on sparse data", v, varU, varL)
			}
		case 3:
			// Dense data: L must win.
			if varL > varU+1e-9 {
				t.Errorf("v=%v: L %v above U %v on dense data", v, varL, varU)
			}
		}
	}
	// Symmetry across all 3 entries.
	a, err := u.Estimate(ObliviousOutcome{P: p, Sampled: []bool{true, false, false}, Values: []float64{1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Estimate(ObliviousOutcome{P: p, Sampled: []bool{false, false, true}, Values: []float64{0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(a, b, 1e-8) {
		t.Errorf("r=3 derived U not symmetric: %v vs %v", a, b)
	}
}
