package estimator

import "math"

// Coordinated (shared-seed) sampling of a single key's vector (§7.2): all
// entries share one uniform seed u, and entry i is sampled iff
// v_i ≥ u·Tau[i]. Coordination makes the outcome far more informative for
// max estimation: with equal thresholds, whenever *any* entry is sampled,
// the largest entry is sampled too — so the maximum is determined by every
// non-empty outcome, and the HT estimator's success probability improves
// from Π min{1, max/τ_i} (independent seeds) to max_i min{1, max/τ_i}.

// CoordinatedOutcome is the outcome of shared-seed PPS sampling.
type CoordinatedOutcome struct {
	// Tau holds the per-entry PPS thresholds.
	Tau []float64
	// U is the single shared seed (known).
	U float64
	// Sampled marks sampled entries; Values holds their exact values.
	Sampled []bool
	Values  []float64
}

// SampleCoordinated materializes the shared-seed outcome for data v.
func SampleCoordinated(v []float64, u float64, tau []float64) CoordinatedOutcome {
	r := len(v)
	o := CoordinatedOutcome{Tau: tau, U: u, Sampled: make([]bool, r), Values: make([]float64, r)}
	for i := 0; i < r; i++ {
		if v[i] > 0 && v[i] >= u*tau[i] {
			o.Sampled[i] = true
			o.Values[i] = v[i]
		}
	}
	return o
}

// MaxHTCoordinated is the inverse-probability estimator of max(v) over a
// shared-seed PPS outcome. The positive-estimate set S* contains the
// outcomes on which the maximum is determined: the argmax entry must be
// sampled and every unsampled entry's revealed bound u·τ_i must not exceed
// it, which for a shared seed is the single event u ≤ min_i max(v)/τ_i.
// The success probability PR[S*|v] = min_i min{1, max(v)/τ_i} is
// computable from any outcome in S*; it always dominates the
// independent-seed probability Π_i min{1, max(v)/τ_i} because a shared
// seed replaces a product of factors ≤ 1 with their minimum.
func MaxHTCoordinated(o CoordinatedOutcome) float64 {
	m := 0.0
	for i, s := range o.Sampled {
		if s && o.Values[i] > m {
			m = o.Values[i]
		}
	}
	if m <= 0 {
		return 0
	}
	for i, s := range o.Sampled {
		if !s && o.U*o.Tau[i] > m {
			return 0
		}
	}
	p := 1.0
	for _, tau := range o.Tau {
		p = math.Min(p, math.Min(1, m/tau))
	}
	if p <= 0 {
		return 0
	}
	return m / p
}

// VarMaxHTCoordinated is the exact variance of the coordinated estimator
// on data v with equal thresholds τ: max²(1/p − 1) with p = min{1, max/τ}.
// Compare VarMaxHTPPS2's p = min{1, max/τ}² for independent seeds: the
// coordinated success probability is the square root of the independent
// one, which is the §7.2 boost in closed form.
func VarMaxHTCoordinated(tau float64, v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if m <= 0 {
		return 0
	}
	return VarHT(m, math.Min(1, m/tau))
}
