package estimator

import "fmt"

// MaxL2 is the Pareto-optimal order-based estimator max^(L) for the maximum
// of two entries under weight-oblivious Poisson sampling with general
// inclusion probabilities p1, p2 (§4.1). It prioritizes "dense" data where
// the two values are close: its variance is smallest when v1 = v2.
//
// Outcome table (q = p1 + p2 − p1·p2):
//
//	S = ∅:      0
//	S = {1}:    v1/q
//	S = {2}:    v2/q
//	S = {1,2}:  max(v1,v2)/(p1·p2) − ((1/p2−1)·v1 + (1/p1−1)·v2)/q
//
// It is unbiased, nonnegative, monotone, and dominates max^(HT).
func MaxL2(o ObliviousOutcome) float64 {
	requireR(o, 2)
	p1, p2 := o.P[0], o.P[1]
	q := p1 + p2 - p1*p2
	switch {
	case !o.Sampled[0] && !o.Sampled[1]:
		return 0
	case o.Sampled[0] && !o.Sampled[1]:
		return o.Values[0] / q
	case !o.Sampled[0] && o.Sampled[1]:
		return o.Values[1] / q
	}
	v1, v2 := o.Values[0], o.Values[1]
	mx := v1
	if v2 > mx {
		mx = v2
	}
	return mx/(p1*p2) - ((1/p2-1)*v1+(1/p1-1)*v2)/q
}

// MaxU2 is the symmetric Pareto-optimal ordered-partition estimator max^(U)
// for r = 2 (§4.2). It prioritizes "sparse" data vectors (fewer positive
// entries): on data with one zero entry its variance is lower than
// max^(L)'s, at the cost of higher variance when the entries are equal.
//
// Outcome table (c = max{0, 1 − p1 − p2}):
//
//	S = ∅:      0
//	S = {1}:    v1/(p1·(1+c))
//	S = {2}:    v2/(p2·(1+c))
//	S = {1,2}:  (max(v1,v2) − (v1·(1−p2) + v2·(1−p1))/(1+c)) / (p1·p2)
func MaxU2(o ObliviousOutcome) float64 {
	requireR(o, 2)
	p1, p2 := o.P[0], o.P[1]
	c := 1 - p1 - p2
	if c < 0 {
		c = 0
	}
	switch {
	case !o.Sampled[0] && !o.Sampled[1]:
		return 0
	case o.Sampled[0] && !o.Sampled[1]:
		return o.Values[0] / (p1 * (1 + c))
	case !o.Sampled[0] && o.Sampled[1]:
		return o.Values[1] / (p2 * (1 + c))
	}
	v1, v2 := o.Values[0], o.Values[1]
	mx := v1
	if v2 > mx {
		mx = v2
	}
	return (mx - (v1*(1-p2)+v2*(1-p1))/(1+c)) / (p1 * p2)
}

// MaxUAsym2 is the asymmetric ≺-optimal variant max^(Uas) of §4.2, obtained
// by processing vectors of the form (v1, 0) before (0, v2) while enforcing
// the nonnegativity constraints. It is Pareto optimal but not symmetric:
// permuting the entries (and probabilities) changes the estimate.
//
// Outcome table (m = max{1−p1, p2}):
//
//	S = ∅:      0
//	S = {1}:    v1/p1
//	S = {2}:    v2/m
//	S = {1,2}:  (max(v1,v2) − p2·(1−p1)/m·v2 − (1−p2)·v1) / (p1·p2)
func MaxUAsym2(o ObliviousOutcome) float64 {
	requireR(o, 2)
	p1, p2 := o.P[0], o.P[1]
	m := 1 - p1
	if p2 > m {
		m = p2
	}
	switch {
	case !o.Sampled[0] && !o.Sampled[1]:
		return 0
	case o.Sampled[0] && !o.Sampled[1]:
		return o.Values[0] / p1
	case !o.Sampled[0] && o.Sampled[1]:
		return o.Values[1] / m
	}
	v1, v2 := o.Values[0], o.Values[1]
	mx := v1
	if v2 > mx {
		mx = v2
	}
	return (mx - p2*(1-p1)/m*v2 - (1-p2)*v1) / (p1 * p2)
}

func requireR(o ObliviousOutcome, r int) {
	if o.R() != r {
		panic(fmt.Sprintf("estimator: outcome has r=%d entries, estimator requires r=%d", o.R(), r))
	}
}
