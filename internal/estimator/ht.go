package estimator

import "math"

// HTOblivious is the inverse-probability (Horvitz–Thompson) estimator for an
// arbitrary multi-entry function f under weight-oblivious Poisson sampling
// (§2.2, §4): positive only when every entry is sampled, in which case the
// estimate is f(v)/PR[S=[r]]. It is unbiased and nonnegative for f ≥ 0, and
// it is the optimal inverse-probability estimator for quantiles and range.
func HTOblivious(o ObliviousOutcome, f func([]float64) float64) float64 {
	p := 1.0
	for i, s := range o.Sampled {
		if !s {
			return 0
		}
		p *= o.P[i]
	}
	return f(o.Values) / p
}

// MaxHTOblivious is HTOblivious specialized to max (§4). Pareto-dominated by
// both MaxL and MaxU.
func MaxHTOblivious(o ObliviousOutcome) float64 {
	return HTOblivious(o, maxOf)
}

// MinHTOblivious is HTOblivious specialized to min. For any r it is Pareto
// optimal: any nonnegative estimator must be 0 on outcomes consistent with a
// zero minimum, which includes every outcome with an unsampled entry.
func MinHTOblivious(o ObliviousOutcome) float64 {
	return HTOblivious(o, minOf)
}

// RangeHTOblivious is HTOblivious specialized to RG = max − min. For r = 2
// it is Pareto optimal (§4); for r > 2 it is not.
func RangeHTOblivious(o ObliviousOutcome) float64 {
	return HTOblivious(o, func(v []float64) float64 { return maxOf(v) - minOf(v) })
}

// ORHTOblivious is HTOblivious specialized to Boolean OR: 1/Πp when all
// entries are sampled and at least one is positive, 0 otherwise (§4.3).
func ORHTOblivious(o ObliviousOutcome) float64 {
	return HTOblivious(o, orOf)
}

// ORHTKnownSeeds is the optimal inverse-probability OR estimator for
// weighted sampling of binary data with known seeds (§5.1): positive exactly
// when u_i ≤ p_i for every entry (the outcome then reveals the full vector).
func ORHTKnownSeeds(o BinaryKnownSeedsOutcome) float64 {
	return ORHTOblivious(o.ToOblivious())
}

// MaxHTPPS is the optimal inverse-probability estimator of max under
// independent PPS sampling with known seeds (§5.2, from [17, 18]): the
// estimate is positive exactly on outcomes where the revealed upper bounds
// of unsampled entries do not exceed the maximum sampled value, so the max
// is determined.
func MaxHTPPS(o PPSOutcome) float64 {
	m := o.MaxSampled()
	if m <= 0 {
		return 0
	}
	p := 1.0
	for i, s := range o.Sampled {
		if !s && o.U[i]*o.Tau[i] > m {
			return 0
		}
	}
	for i := range o.Tau {
		p *= math.Min(1, m/o.Tau[i])
	}
	if p <= 0 {
		return 0
	}
	return m / p
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if len(v) == 0 {
		return 0
	}
	return m
}

func minOf(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	if len(v) == 0 {
		return 0
	}
	return m
}

func orOf(v []float64) float64 {
	for _, x := range v {
		if x > 0 {
			return 1
		}
	}
	return 0
}
