package estimator

import (
	"fmt"
	"math"
	"sort"
)

// This file implements a generic f̂(U) — Algorithm 2 of §3 — for
// weight-oblivious Poisson sampling over finite discrete domains. Data
// vectors are partitioned into ordered batches; each batch's outcomes are
// assigned jointly, minimizing the batch's total variance subject to
// unbiasedness for every batch member and to the nonnegativity
// constraints (9) toward later batches.
//
// The paper asks for a "locally Pareto optimal" assignment per batch;
// minimizing the sum of the batch variances is the natural symmetric
// scalarization, and on the constructions the paper works out (the
// ordered partition by number of positive entries) it reproduces the
// symmetric estimator max^(U) exactly — cross-validated in
// deriveu_test.go.

// BatchFunc assigns a data vector to its batch index U_h; batches are
// processed in increasing index order.
type BatchFunc func(v []float64) int

// PositivesBatch is the §4.2 partition for max^(U): batch index = number
// of positive entries.
func PositivesBatch(v []float64) int { return positives(v) }

// DeriveU runs the batch construction. The returned estimator is
// nonnegative whenever the per-batch QPs admit nonnegative solutions (the
// x ≥ 0 constraints are imposed explicitly).
func DeriveU(p DiscreteProblem, batch BatchFunc) (*Derived, error) {
	r := len(p.P)
	if len(p.Domains) != r {
		return nil, fmt.Errorf("estimator: %d probabilities but %d domains", r, len(p.Domains))
	}
	vectors := enumerate(p.Domains)
	// Group vectors by batch.
	groups := map[int][][]float64{}
	var order []int
	for _, v := range vectors {
		h := batch(v)
		if _, ok := groups[h]; !ok {
			order = append(order, h)
		}
		groups[h] = append(groups[h], v)
	}
	sort.Ints(order)
	prS := make([]float64, 1<<uint(r))
	for mask := range prS {
		w := 1.0
		for i := 0; i < r; i++ {
			if mask&(1<<uint(i)) != 0 {
				w *= p.P[i]
			} else {
				w *= 1 - p.P[i]
			}
		}
		prS[mask] = w
	}
	d := &Derived{problem: p, estimate: make(map[string]float64), MinEstimate: math.Inf(1)}
	const tol = 1e-9
	for gi, h := range order {
		batchVecs := groups[h]
		// New outcomes touched by this batch, indexed for the QP.
		index := map[string]int{}
		var keys []string
		var weights []float64
		touch := func(mask int, v []float64) int {
			key := outcomeKey(mask, v)
			if _, ok := d.estimate[key]; ok {
				return -1
			}
			if i, ok := index[key]; ok {
				return i
			}
			index[key] = len(keys)
			keys = append(keys, key)
			weights = append(weights, 0)
			return len(keys) - 1
		}
		// Unbiasedness equality per batch vector; also accumulate the QP
		// weights Σ_{v∈batch} PR[S|v] so the objective is the batch's
		// total variance.
		var eqs []qpConstraint
		for _, v := range batchVecs {
			coeff := make(map[int]float64)
			f0 := 0.0
			for mask := 0; mask < 1<<uint(r); mask++ {
				key := outcomeKey(mask, v)
				if x, ok := d.estimate[key]; ok {
					f0 += prS[mask] * x
					continue
				}
				i := touch(mask, v)
				coeff[i] += prS[mask]
				weights[i] += prS[mask]
			}
			need := p.F(v) - f0
			if len(coeff) == 0 {
				if math.Abs(need) > tol {
					return nil, fmt.Errorf("%w: vector %v needs estimate mass %v but has no unprocessed outcomes", ErrNoUnbiased, v, need)
				}
				continue
			}
			row := qpConstraint{a: make([]float64, len(keys)), d: need}
			for i, c := range coeff {
				row.a[i] = c
			}
			eqs = append(eqs, row)
		}
		if len(keys) == 0 {
			continue
		}
		// Pad earlier equality rows to the final variable count.
		for i := range eqs {
			for len(eqs[i].a) < len(keys) {
				eqs[i].a = append(eqs[i].a, 0)
			}
		}
		// Inequality constraints (9) toward later batches, plus x ≥ 0.
		var cons []qpConstraint
		for _, hh := range order[gi+1:] {
			for _, vp := range groups[hh] {
				coeff := make([]float64, len(keys))
				assigned := 0.0
				touches := false
				for mask := 0; mask < 1<<uint(r); mask++ {
					key := outcomeKey(mask, vp)
					if x, ok := d.estimate[key]; ok {
						assigned += prS[mask] * x
						continue
					}
					if i, ok := index[key]; ok {
						coeff[i] += prS[mask]
						touches = true
					}
				}
				if touches {
					cons = append(cons, qpConstraint{a: coeff, d: p.F(vp) - assigned})
				}
			}
		}
		for i := range keys {
			a := make([]float64, len(keys))
			a[i] = -1
			cons = append(cons, qpConstraint{a: a, d: 0})
		}
		x, err := solveQP(weights, eqs, cons)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %w", h, err)
		}
		for i, k := range keys {
			d.estimate[k] = x[i]
			if x[i] < d.MinEstimate {
				d.MinEstimate = x[i]
			}
		}
	}
	if math.IsInf(d.MinEstimate, 1) {
		d.MinEstimate = 0
	}
	return d, nil
}
