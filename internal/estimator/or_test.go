package estimator

import (
	"math"
	"testing"
)

var binaryVectors2 = [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}

func TestORL2Unbiased(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			p := []float64{p1, p2}
			for _, v := range binaryVectors2 {
				mean, _ := ObliviousMoments(p, v, ORL2)
				if !approxEq(mean, orOf(v), 1e-12) {
					t.Errorf("ORL2 biased: p=%v v=%v mean=%v", p, v, mean)
				}
				mean, _ = ObliviousMoments(p, v, ORU2)
				if !approxEq(mean, orOf(v), 1e-12) {
					t.Errorf("ORU2 biased: p=%v v=%v mean=%v", p, v, mean)
				}
				mean, _ = ObliviousMoments(p, v, ORHTOblivious)
				if !approxEq(mean, orOf(v), 1e-12) {
					t.Errorf("ORHT biased: p=%v v=%v mean=%v", p, v, mean)
				}
			}
		}
	}
}

// TestORVarianceClosedForms validates equations (23), (24) and the (1,0)
// variance expression of §4.3 against exact enumeration.
func TestORVarianceClosedForms(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			p := []float64{p1, p2}
			_, v11 := ObliviousMoments(p, []float64{1, 1}, ORL2)
			if want := VarORL11(p1, p2); !approxEq(v11, want, 1e-9) {
				t.Errorf("VarORL11(%v,%v) = %v, enumeration %v", p1, p2, want, v11)
			}
			_, v10 := ObliviousMoments(p, []float64{1, 0}, ORL2)
			if want := VarORL10(p1, p2); !approxEq(v10, want, 1e-9) {
				t.Errorf("VarORL10(%v,%v) = %v, enumeration %v", p1, p2, want, v10)
			}
			_, ht11 := ObliviousMoments(p, []float64{1, 1}, ORHTOblivious)
			if want := VarORHT(p); !approxEq(ht11, want, 1e-9) {
				t.Errorf("VarORHT(%v) = %v, enumeration %v", p, want, ht11)
			}
		}
	}
}

// TestORAsymptotics checks the p→0 regime of §4.3: VAR[OR^HT] ≈ 1/p²,
// VAR[OR^L|(1,1)] ≈ 1/(2p), VAR[OR^L|(1,0)] ≈ 1/(4p²).
func TestORAsymptotics(t *testing.T) {
	p := 1e-4
	ps := []float64{p, p}
	if got := VarORHT(ps); !approxEq(got, 1/(p*p), 1e-3) {
		t.Errorf("VAR[OR^HT] = %v, want ≈ %v", got, 1/(p*p))
	}
	if got := VarORL11(p, p); !approxEq(got, 1/(2*p), 1e-3) {
		t.Errorf("VAR[OR^L|(1,1)] = %v, want ≈ %v", got, 1/(2*p))
	}
	if got := VarORL10(p, p); !approxEq(got, 1/(4*p*p), 1e-3) {
		t.Errorf("VAR[OR^L|(1,0)] = %v, want ≈ %v", got, 1/(4*p*p))
	}
	_, u10 := ObliviousMoments(ps, []float64{1, 0}, ORU2)
	if !approxEq(u10, 1/(4*p*p), 1e-3) {
		t.Errorf("VAR[OR^U|(1,0)] = %v, want ≈ %v", u10, 1/(4*p*p))
	}
	_, u11 := ObliviousMoments(ps, []float64{1, 1}, ORU2)
	if !approxEq(u11, 1/(2*p), 1e-2) {
		t.Errorf("VAR[OR^U|(1,1)] = %v, want ≈ %v", u11, 1/(2*p))
	}
}

// TestORDominance: OR^(L) and OR^(U) dominate OR^(HT) everywhere; OR^(L)
// has minimum variance on (1,1), OR^(U) on (1,0)/(0,1) (Figure 2).
func TestORDominance(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			p := []float64{p1, p2}
			for _, v := range binaryVectors2 {
				_, ht := ObliviousMoments(p, v, ORHTOblivious)
				_, l := ObliviousMoments(p, v, ORL2)
				_, u := ObliviousMoments(p, v, ORU2)
				if l > ht+1e-9 || u > ht+1e-9 {
					t.Errorf("dominance violated: p=%v v=%v L=%v U=%v HT=%v", p, v, l, u, ht)
				}
			}
			_, l11 := ObliviousMoments(p, []float64{1, 1}, ORL2)
			_, u11 := ObliviousMoments(p, []float64{1, 1}, ORU2)
			if l11 > u11+1e-9 {
				t.Errorf("p=%v: L should win on (1,1): L=%v U=%v", p, l11, u11)
			}
			// OR^(U) beats OR^(L) on each individual "change" vector in the
			// symmetric setting of Figure 2; for asymmetric probabilities
			// the right statement is about the symmetric pair sum.
			_, l10 := ObliviousMoments(p, []float64{1, 0}, ORL2)
			_, u10 := ObliviousMoments(p, []float64{1, 0}, ORU2)
			if p1 == p2 && u10 > l10+1e-9 {
				t.Errorf("p=%v: U should win on (1,0): L=%v U=%v", p, l10, u10)
			}
			_, l01 := ObliviousMoments(p, []float64{0, 1}, ORL2)
			_, u01 := ObliviousMoments(p, []float64{0, 1}, ORU2)
			if u10+u01 > l10+l01+1e-9 {
				t.Errorf("p=%v: U should win on change pair: L=%v U=%v", p, l10+l01, u10+u01)
			}
		}
	}
}

// TestKnownSeedsMappingPreservesDistribution verifies the §5 claim that for
// binary domains, weighted sampling with known seeds is equivalent to
// weight-oblivious sampling: the mapped estimators remain unbiased with the
// same variance.
func TestKnownSeedsMappingPreservesDistribution(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			if p1 == 1 && p2 == 1 {
				continue
			}
			p := []float64{p1, p2}
			for _, v := range binaryVectors2 {
				for name, pair := range map[string][2]func(ObliviousOutcome) float64{
					"L":  {ORL2, ORL2},
					"U":  {ORU2, ORU2},
					"HT": {ORHTOblivious, ORHTOblivious},
				} {
					oblMean, oblVar := ObliviousMoments(p, v, pair[0])
					wMean, wVar := BinaryKnownSeedsMoments(p, v, func(o BinaryKnownSeedsOutcome) float64 {
						return pair[1](o.ToOblivious())
					})
					if !approxEq(oblMean, wMean, 1e-12) || !approxEq(oblVar, wVar, 1e-9) {
						t.Errorf("%s mapping mismatch: p=%v v=%v obl=(%v,%v) weighted=(%v,%v)",
							name, p, v, oblMean, oblVar, wMean, wVar)
					}
				}
			}
		}
	}
}

// TestORKnownSeedsTable locks the §5.1 outcome tables for OR^(L) and
// OR^(U) under weighted sampling with known seeds.
func TestORKnownSeedsTable(t *testing.T) {
	p1, p2 := 0.3, 0.6
	p := []float64{p1, p2}
	q := p1 + p2 - p1*p2
	mk := func(s1, s2 bool, u1, u2 float64) BinaryKnownSeedsOutcome {
		return BinaryKnownSeedsOutcome{P: p, U: []float64{u1, u2}, Sampled: []bool{s1, s2}}
	}
	cases := []struct {
		name  string
		o     BinaryKnownSeedsOutcome
		wantL float64
	}{
		{"empty, both seeds high", mk(false, false, 0.9, 0.95), 0},
		{"S={1}, u2 high", mk(true, false, 0.1, 0.95), 1 / q},
		{"S={2}, u1 high", mk(false, true, 0.9, 0.2), 1 / q},
		{"S={1,2}", mk(true, true, 0.1, 0.2), 1 / q},
		{"S={1}, u2 low", mk(true, false, 0.1, 0.1), 1 / (p1 * q)},
		{"S={2}, u1 low", mk(false, true, 0.1, 0.1), 1 / (p2 * q)},
		{"S=∅, u1 low (reveals v1=0)", mk(false, false, 0.1, 0.9), 0},
	}
	for _, c := range cases {
		if got := ORLKnownSeeds(c.o); !approxEq(got, c.wantL, 1e-12) {
			t.Errorf("OR^L %s = %v, want %v", c.name, got, c.wantL)
		}
	}
	cmax := math.Max(0, 1-p1-p2)
	ucases := []struct {
		name  string
		o     BinaryKnownSeedsOutcome
		wantU float64
	}{
		{"S={1}, u2 high", mk(true, false, 0.1, 0.95), 1 / (p1 * (1 + cmax))},
		{"S={2}, u1 high", mk(false, true, 0.9, 0.2), 1 / (p2 * (1 + cmax))},
		{"S={1}, u2 low (v2=0 known)", mk(true, false, 0.1, 0.1),
			(1 - (1-p2)/(1+cmax)) / (p1 * p2)},
		{"S={1,2}", mk(true, true, 0.1, 0.2),
			(1 - ((1-p2)+(1-p1))/(1+cmax)) / (p1 * p2)},
	}
	for _, c := range ucases {
		if got := ORUKnownSeeds(c.o); !approxEq(got, c.wantU, 1e-12) {
			t.Errorf("OR^U %s = %v, want %v", c.name, got, c.wantU)
		}
	}
}

// TestORLUniformMultiInstance: OR^(L) for r > 2 via the uniform max^(L)
// machinery stays unbiased on binary vectors.
func TestORLUniformMultiInstance(t *testing.T) {
	for r := 2; r <= 5; r++ {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			e, err := ORLUniform(r, p)
			if err != nil {
				t.Fatal(err)
			}
			ps := make([]float64, r)
			for i := range ps {
				ps[i] = p
			}
			for mask := 0; mask < 1<<uint(r); mask++ {
				v := make([]float64, r)
				for i := 0; i < r; i++ {
					if mask&(1<<uint(i)) != 0 {
						v[i] = 1
					}
				}
				mean, _ := ObliviousMoments(ps, v, e.Estimate)
				if !approxEq(mean, orOf(v), 1e-9) {
					t.Errorf("r=%d p=%v v=%v: mean %v want %v", r, p, v, mean, orOf(v))
				}
			}
		}
	}
}
