package estimator

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// TestLthHTPPSUnbiased integrates the PPS quantile estimator over the
// seed space: for r = 2 the ℓ = 1 case must be unbiased for the max and
// the ℓ = 2 case for the min, across every Figure 3 regime.
func TestLthHTPPSUnbiased(t *testing.T) {
	opt := PPSMomentsOptions{N: 4096, ZeroOnEmpty: true}
	for _, c := range ppsCases {
		v := []float64{c.v1, c.v2}
		tau := []float64{c.t1, c.t2}
		mean, _ := PPSMoments2(v, tau, func(o PPSOutcome) float64 { return LthHTPPS(o, 1) }, opt)
		if !approxEq(mean, math.Max(c.v1, c.v2), 1e-6) {
			t.Errorf("%s: LthHTPPS(·,1) mean = %v, want %v", c.name, mean, math.Max(c.v1, c.v2))
		}
		mean, _ = PPSMoments2(v, tau, func(o PPSOutcome) float64 { return LthHTPPS(o, 2) }, opt)
		if !approxEq(mean, math.Min(c.v1, c.v2), 1e-6) {
			t.Errorf("%s: LthHTPPS(·,2) mean = %v, want %v", c.name, mean, math.Min(c.v1, c.v2))
		}
	}
}

// TestLthHTPPSMatchesMaxHT: for ℓ = 1 the quantile estimator must coincide
// with MaxHTPPS on every outcome — it generalizes exactly that
// construction.
func TestLthHTPPSMatchesMaxHT(t *testing.T) {
	rng := randx.New(42)
	for trial := 0; trial < 2000; trial++ {
		r := 2 + rng.Intn(3)
		o := PPSOutcome{
			Tau:     make([]float64, r),
			U:       make([]float64, r),
			Sampled: make([]bool, r),
			Values:  make([]float64, r),
		}
		for i := 0; i < r; i++ {
			o.Tau[i] = 1 + 20*rng.Float64()
			v := math.Floor(10 * rng.Float64())
			u := rng.Float64()
			// Sample according to the PPS rule so outcomes are consistent.
			if v >= u*o.Tau[i] {
				o.Sampled[i], o.Values[i] = true, v
			}
			o.U[i] = u
		}
		got := LthHTPPS(o, 1)
		want := MaxHTPPS(o)
		if !approxEq(got, want, 1e-12) {
			t.Fatalf("trial %d: LthHTPPS(·,1) = %v, MaxHTPPS = %v (outcome %+v)", trial, got, want, o)
		}
	}
}

// TestLthHTPPSUnbiasedMonteCarloR3 checks the r = 3 median by Monte Carlo:
// the deterministic integrator only covers r = 2, and the interior
// quantile is exactly the case the all-pairs machinery cannot reach.
func TestLthHTPPSUnbiasedMonteCarloR3(t *testing.T) {
	rng := randx.New(99)
	v := []float64{9, 4, 2}
	tau := []float64{12, 8, 10}
	const n = 500000
	sum := 0.0
	for trial := 0; trial < n; trial++ {
		o := PPSOutcome{
			Tau:     tau,
			U:       make([]float64, 3),
			Sampled: make([]bool, 3),
			Values:  make([]float64, 3),
		}
		for i := range v {
			o.U[i] = rng.Float64()
			if v[i] >= o.U[i]*tau[i] {
				o.Sampled[i], o.Values[i] = true, v[i]
			}
		}
		sum += LthHTPPS(o, 2)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("Monte Carlo mean of the r=3 median = %v, want 4", mean)
	}
}
