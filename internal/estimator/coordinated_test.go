package estimator

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// coordinatedMoments integrates the shared-seed estimator over the single
// seed dimension (deterministic, exact up to Simpson error with kink
// splits at every v_i/τ_i and m/τ_i boundary).
func coordinatedMoments(v, tau []float64, est func(CoordinatedOutcome) float64, n int) (mean, variance float64) {
	// Collect breakpoints where the outcome structure changes.
	breaks := []float64{0, 1}
	for i := range v {
		if v[i] > 0 {
			if b := v[i] / tau[i]; b > 0 && b < 1 {
				breaks = append(breaks, b)
			}
		}
		for j := range v {
			if b := v[j] / tau[i]; b > 0 && b < 1 {
				breaks = append(breaks, b)
			}
		}
	}
	sortFloats(breaks)
	var m1, m2 float64
	for k := 0; k+1 < len(breaks); k++ {
		lo, hi := breaks[k], breaks[k+1]
		if hi-lo < 1e-15 {
			continue
		}
		eps := 1e-9 * (hi - lo)
		integrate1D(lo+eps, hi-eps, n, func(u, w float64) {
			x := est(SampleCoordinated(v, u, tau))
			m1 += w * x
			m2 += w * x * x
		})
	}
	return m1, m2 - m1*m1
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestMaxHTCoordinatedUnbiased(t *testing.T) {
	cases := []struct {
		v   []float64
		tau []float64
	}{
		{[]float64{5, 3}, []float64{10, 10}},
		{[]float64{2, 8}, []float64{10, 10}},
		{[]float64{4, 4}, []float64{10, 10}},
		{[]float64{5, 0}, []float64{10, 10}},
		{[]float64{3, 7, 1}, []float64{12, 12, 12}},
		{[]float64{3, 7}, []float64{8, 20}}, // unequal thresholds
	}
	for _, c := range cases {
		mean, _ := coordinatedMoments(c.v, c.tau, MaxHTCoordinated, 2048)
		want := maxOf(c.v)
		if !approxEq(mean, want, 1e-5) {
			t.Errorf("v=%v tau=%v: mean %v, want %v", c.v, c.tau, mean, want)
		}
	}
}

// TestCoordinationBoost quantifies §7.2: with equal thresholds the
// coordinated HT variance is max²(1/p−1) with p = max/τ, versus the
// independent-seed p² — coordination turns the square into a first power.
func TestCoordinationBoost(t *testing.T) {
	tau := []float64{10, 10}
	for _, v := range [][]float64{{5, 3}, {2, 1}, {8, 8}} {
		_, varCoord := coordinatedMoments(v, tau, MaxHTCoordinated, 2048)
		want := VarMaxHTCoordinated(10, v)
		if !approxEq(varCoord, want, 1e-4) {
			t.Errorf("v=%v: integrated %v, closed form %v", v, varCoord, want)
		}
		indep := VarMaxHTPPS2(10, 10, v[0], v[1])
		if varCoord >= indep {
			t.Errorf("v=%v: coordinated %v not below independent %v", v, varCoord, indep)
		}
		// The boost factor: (1/p−1) vs (1/p²−1) at p = max/τ.
		p := maxOf(v) / 10
		if gotRatio, wantRatio := indep/varCoord, (1/(p*p)-1)/(1/p-1); !approxEq(gotRatio, wantRatio, 1e-3) {
			t.Errorf("v=%v: boost ratio %v, want %v", v, gotRatio, wantRatio)
		}
	}
	// Against the independent-seed optimal max^(L), the comparison goes
	// both ways (mirroring the distinct-count trade-off): coordinated HT
	// wins on disjoint-support data, while independent L wins on
	// similar-value data, where it extracts partial information that the
	// plain coordinated HT ignores.
	opt := PPSMomentsOptions{N: 2048, ZeroOnEmpty: true}
	_, varLZero := PPSMoments2([]float64{5, 0}, tau, MaxL2PPS, opt)
	if got := VarMaxHTCoordinated(10, []float64{5, 0}); got >= varLZero {
		t.Errorf("(5,0): coordinated HT %v not below independent L %v", got, varLZero)
	}
	_, varLEqual := PPSMoments2([]float64{5, 5}, tau, MaxL2PPS, opt)
	if got := VarMaxHTCoordinated(10, []float64{5, 5}); varLEqual >= got {
		t.Errorf("(5,5): independent L %v not below coordinated HT %v", varLEqual, got)
	}
}

// TestMaxHTCoordinatedSupport: positive exactly when the outcome
// determines the max; and with equal thresholds, every non-empty outcome
// does.
func TestMaxHTCoordinatedSupport(t *testing.T) {
	rng := randx.New(9)
	tau := []float64{10, 10}
	for i := 0; i < 20000; i++ {
		v := []float64{rng.Float64() * 12, rng.Float64() * 12}
		u := rng.Float64()
		o := SampleCoordinated(v, u, tau)
		est := MaxHTCoordinated(o)
		any := o.Sampled[0] || o.Sampled[1]
		if any != (est > 0) {
			t.Fatalf("v=%v u=%v: sampled=%v est=%v (equal thresholds must determine max)", v, u, any, est)
		}
		if est > 0 && !approxEq(est*math.Min(1, maxOf(v)/10), maxOf(v), 1e-9) {
			t.Fatalf("v=%v: estimate %v inconsistent with p", v, est)
		}
	}
}
