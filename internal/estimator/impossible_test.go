package estimator

import (
	"math"
	"testing"
	"testing/quick"
)

// TestUnknownSeedsORBoundary: the forced estimator is nonnegative exactly
// when p1 + p2 ≥ 1 (Theorem 6.1).
func TestUnknownSeedsORBoundary(t *testing.T) {
	cases := []struct {
		p1, p2   float64
		feasible bool
	}{
		{0.3, 0.3, false},
		{0.49, 0.49, false},
		{0.5, 0.5, true},
		{0.2, 0.9, true},
		{0.1, 0.1, false},
		{1, 1, true},
		{0.05, 0.9, false},
	}
	for _, c := range cases {
		s := SolveUnknownSeedsOR2(c.p1, c.p2)
		if s.Feasible != c.feasible {
			t.Errorf("p=(%v,%v): feasible=%v, want %v (EstBoth=%v)",
				c.p1, c.p2, s.Feasible, c.feasible, s.EstBoth)
		}
	}
}

// TestUnknownSeedsORUniqueUnbiased: the forced estimator is unbiased on all
// four binary data vectors; since each constraint pinned a unique value,
// any unbiased estimator must coincide with it — so infeasibility of this
// one proves Theorem 6.1.
func TestUnknownSeedsORUniqueUnbiased(t *testing.T) {
	f := func(a, b float64) bool {
		p1 := 0.05 + 0.95*frac(a)
		p2 := 0.05 + 0.95*frac(b)
		s := SolveUnknownSeedsOR2(p1, p2)
		for _, v := range []struct {
			v1, v2 bool
			want   float64
		}{{false, false, 0}, {true, false, 1}, {false, true, 1}, {true, true, 1}} {
			if !approxEq(s.Mean(p1, p2, v.v1, v.v2), v.want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestUnknownSeedsFeasibleRegionMatchesKnownSeeds: when seeds are known the
// OR estimators exist for every p (contrast with the unknown-seed regime).
func TestUnknownSeedsFeasibleRegionMatchesKnownSeeds(t *testing.T) {
	p1, p2 := 0.2, 0.2 // infeasible without seeds
	if s := SolveUnknownSeedsOR2(p1, p2); s.Feasible {
		t.Fatal("expected infeasible")
	}
	// Known seeds: OR^(L) is unbiased and nonnegative at the same p.
	p := []float64{p1, p2}
	for _, v := range binaryVectors2 {
		mean, _ := BinaryKnownSeedsMoments(p, v, ORLKnownSeeds)
		if !approxEq(mean, orOf(v), 1e-12) {
			t.Errorf("known seeds OR^L biased at v=%v: %v", v, mean)
		}
	}
}

// TestUnknownSeedsXOR: the bias of the forced XOR estimator on (1,0) is −1
// regardless of probabilities.
func TestUnknownSeedsXOR(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if bias := UnknownSeedsXORInfeasible(p, p); bias != -1 {
			t.Errorf("p=%v: bias %v, want -1", p, bias)
		}
	}
}

// TestUnknownSeedsEstBothExplodes documents the structural reason: as
// p → 0, the forced value on the both-sampled outcome tends to −∞ — the
// single-sampled outcomes over-contribute 2−p1−p2 > 1 to the expectation.
func TestUnknownSeedsEstBothExplodes(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{0.4, 0.2, 0.1, 0.05} {
		s := SolveUnknownSeedsOR2(p, p)
		if s.EstBoth >= 0 {
			t.Fatalf("p=%v: expected negative EstBoth, got %v", p, s.EstBoth)
		}
		if s.EstBoth >= prev && prev != 0 {
			t.Errorf("p=%v: EstBoth %v not decreasing (prev %v)", p, s.EstBoth, prev)
		}
		prev = s.EstBoth
	}
	if s := SolveUnknownSeedsOR2(0.01, 0.01); s.EstBoth > -9000 {
		t.Errorf("EstBoth at p=0.01 = %v, expected ≈ −9800", s.EstBoth)
	}
	if s := SolveUnknownSeedsOR2(1e-9, 1e-9); !math.IsInf(s.EstBoth, 0) && s.EstBoth > -1e17 {
		t.Errorf("EstBoth at p=1e-9 = %v, expected ≈ −1e18", s.EstBoth)
	}
}
