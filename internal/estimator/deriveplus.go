package estimator

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file implements f̂(+≺) — Algorithm 1 with the explicit
// nonnegativity constraints (7)–(9) of §3 — for weight-oblivious Poisson
// sampling over finite discrete domains. At each step the estimate values
// on the newly determined outcomes minimize the current vector's variance
// subject to unbiasedness and to not over-committing expectation mass of
// any succeeding vector. The per-step problem is a small convex QP solved
// with an active-set method.
//
// With the sparse-first order that processes (v,0)-shaped vectors before
// (0,v)-shaped ones, the construction reproduces the paper's asymmetric
// estimator max^(Uas) (§4.2) — cross-validated in deriveplus_test.go.

// DerivePlus runs the constrained derivation. Unlike Derive, the
// resulting estimator is nonnegative whenever one exists for the order;
// the price is that outcomes determined by the same vector may carry
// different values (the QP splits mass to respect constraints).
func DerivePlus(p DiscreteProblem) (*Derived, error) {
	r := len(p.P)
	if len(p.Domains) != r {
		return nil, fmt.Errorf("estimator: %d probabilities but %d domains", r, len(p.Domains))
	}
	vectors := enumerate(p.Domains)
	sort.SliceStable(vectors, func(i, j int) bool {
		if p.Less(vectors[i], vectors[j]) {
			return true
		}
		if p.Less(vectors[j], vectors[i]) {
			return false
		}
		return lexLess(vectors[i], vectors[j])
	})
	prS := make([]float64, 1<<uint(r))
	for mask := range prS {
		w := 1.0
		for i := 0; i < r; i++ {
			if mask&(1<<uint(i)) != 0 {
				w *= p.P[i]
			} else {
				w *= 1 - p.P[i]
			}
		}
		prS[mask] = w
	}
	d := &Derived{problem: p, estimate: make(map[string]float64), MinEstimate: math.Inf(1)}
	const tol = 1e-9
	for vi, v := range vectors {
		fv := p.F(v)
		var f0 float64
		var newKeys []string
		var w []float64 // PR[S|v] for the new outcomes
		for mask := 0; mask < 1<<uint(r); mask++ {
			key := outcomeKey(mask, v)
			if x, ok := d.estimate[key]; ok {
				f0 += prS[mask] * x
			} else if !contains(newKeys, key) {
				newKeys = append(newKeys, key)
				w = append(w, prS[mask])
			}
		}
		prNew := 0.0
		for _, wi := range w {
			prNew += wi
		}
		if prNew <= tol {
			if math.Abs(fv-f0) > tol {
				return nil, fmt.Errorf("%w: vector %v needs estimate mass %v but has no unprocessed outcomes", ErrNoUnbiased, v, fv-f0)
			}
			for _, k := range newKeys {
				d.estimate[k] = 0
			}
			continue
		}
		// Build the inequality constraints (9): for every succeeding
		// vector v', the contribution of the new outcomes must not push
		// E[f̂|v'] above f(v'). Only constraints that actually touch the
		// new outcomes matter.
		var cons []qpConstraint
		for _, vp := range vectors[vi+1:] {
			var coeff []float64
			assigned := 0.0
			touches := false
			coeff = make([]float64, len(newKeys))
			for mask := 0; mask < 1<<uint(r); mask++ {
				key := outcomeKey(mask, vp)
				if x, ok := d.estimate[key]; ok {
					assigned += prS[mask] * x
					continue
				}
				for i, nk := range newKeys {
					if nk == key {
						coeff[i] += prS[mask]
						touches = true
						break
					}
				}
			}
			if touches {
				cons = append(cons, qpConstraint{a: coeff, d: p.F(vp) - assigned})
			}
		}
		// Also nonnegativity of the new values themselves: x_i ≥ 0,
		// i.e. −x_i ≤ 0.
		for i := range newKeys {
			a := make([]float64, len(newKeys))
			a[i] = -1
			cons = append(cons, qpConstraint{a: a, d: 0})
		}
		x, err := solveVarianceQP(w, fv-f0, cons)
		if err != nil {
			return nil, fmt.Errorf("vector %v: %w", v, err)
		}
		for i, k := range newKeys {
			d.estimate[k] = x[i]
			if x[i] < d.MinEstimate {
				d.MinEstimate = x[i]
			}
		}
	}
	if math.IsInf(d.MinEstimate, 1) {
		d.MinEstimate = 0
	}
	return d, nil
}

// qpConstraint is one inequality a·x ≤ d.
type qpConstraint struct {
	a []float64
	d float64
}

// solveVarianceQP minimizes Σ w_i x_i² subject to Σ w_i x_i = b and
// a_j·x ≤ d_j for every constraint, using a primal active-set method.
// Weights w_i ≥ 0; entries with w_i = 0 carry no probability mass and are
// fixed to the common unconstrained value.
func solveVarianceQP(w []float64, b float64, cons []qpConstraint) ([]float64, error) {
	eq := []qpConstraint{{a: append([]float64(nil), w...), d: b}}
	return solveQP(w, eq, cons)
}

// solveQP minimizes Σ w_i x_i² subject to the given equality constraints
// (a·x = d) and inequality constraints (a·x ≤ d) with a primal active-set
// method.
func solveQP(w []float64, eqs, cons []qpConstraint) ([]float64, error) {
	active := make([]int, 0, len(cons))
	inActive := make([]bool, len(cons))
	const tol = 1e-9
	for iter := 0; iter < 300; iter++ {
		x, mu, err := solveEquality(w, eqs, cons, active)
		if err != nil {
			return nil, err
		}
		// Drop an active constraint whose true multiplier is negative (it
		// pushes the wrong way). With the x_i = λ/2 + Σ μ'_j a_{ji}/(2w_i)
		// parametrization used in solveEquality, the true KKT multiplier
		// of an a·x ≤ d constraint is −μ', so "negative multiplier" means
		// μ' > 0.
		dropped := false
		for i := len(active) - 1; i >= 0; i-- {
			if mu[i] > tol {
				inActive[active[i]] = false
				active = append(active[:i], active[i+1:]...)
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		// Add the most violated inactive constraint.
		worst, worstViol := -1, tol
		for j, c := range cons {
			if inActive[j] {
				continue
			}
			v := dot(c.a, x) - c.d
			if v > worstViol {
				worst, worstViol = j, v
			}
		}
		if worst < 0 {
			return x, nil
		}
		inActive[worst] = true
		active = append(active, worst)
	}
	return nil, fmt.Errorf("estimator: active-set QP did not converge")
}

// solveEquality minimizes Σ w_i x_i² s.t. the equality constraints and
// a_j·x = d_j for j in active, via the KKT system. It returns the
// solution and the multipliers of the active inequality constraints (in
// the x_i = Σ ν_j a_{ji}/(2w_i) parametrization).
func solveEquality(w []float64, eqs []qpConstraint, cons []qpConstraint, active []int) (x []float64, mu []float64, err error) {
	n := len(w)
	all := make([]qpConstraint, 0, len(eqs)+len(active))
	all = append(all, eqs...)
	for _, j := range active {
		all = append(all, cons[j])
	}
	m := len(all)
	// KKT stationarity: 2 w_i x_i = Σ_j ν_j a_{ji}
	//  ⇒ x_i = Σ_j ν_j a_{ji}/(2 w_i)   (for w_i > 0)
	// Feasibility rows: for each constraint k, Σ_i a_{ki} x_i = d_k, i.e.
	// Σ_j ν_j · (Σ_i a_{ki} a_{ji}/(2 w_i)) = d_k.
	mat := make([][]float64, m)
	rhs := make([]float64, m)
	for k := range mat {
		mat[k] = make([]float64, m)
		for j := 0; j < m; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				if w[i] > 0 {
					s += all[k].a[i] * all[j].a[i] / w[i]
				}
			}
			mat[k][j] = s / 2
		}
		rhs[k] = all[k].d
	}
	nu, err := solveLinear(mat, rhs)
	if err != nil {
		return nil, nil, err
	}
	x = make([]float64, n)
	for i := 0; i < n; i++ {
		if w[i] <= 0 {
			continue
		}
		for j := 0; j < m; j++ {
			x[i] += nu[j] * all[j].a[i] / (2 * w[i])
		}
	}
	return x, nu[len(eqs):], nil
}

// solveLinear solves a small dense linear system by Gaussian elimination
// with partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, fmt.Errorf("estimator: singular KKT system (degenerate active set)")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

func dot(a, x []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * x[i]
	}
	return s
}

func contains(ks []string, k string) bool {
	for _, s := range ks {
		if s == k {
			return true
		}
	}
	return false
}

// UasOrder is the §4.2 processing order behind max^(Uas): the zero vector,
// then vectors whose only positive entries are a prefix (entry 1 first),
// then the rest — within groups by number of positive entries. For r = 2:
// 0, then (x, 0), then (0, y), then two-positive vectors.
func UasOrder(a, b []float64) bool {
	ra, rb := uasRank(a), uasRank(b)
	return ra < rb
}

func uasRank(v []float64) int {
	pos := positives(v)
	if pos == 0 {
		return 0
	}
	if pos < len(v) {
		// Sparse vectors ordered by the index of their first positive
		// entry: (x,0,…) before (0,y,…).
		first := 0
		for i, x := range v {
			if x > 0 {
				first = i
				break
			}
		}
		return 1 + first
	}
	return 1 + len(v) + pos
}

// String renders a derived estimator's table for debugging and docs.
func (d *Derived) String() string {
	keys := make([]string, 0, len(d.estimate))
	for k := range d.estimate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-24s %.6g\n", k, d.estimate[k])
	}
	return b.String()
}
