package estimator

import "math"

// This file provides exact moment computation for the finite outcome spaces
// (weight-oblivious Poisson, weighted binary with known seeds) and
// deterministic numeric integration for the continuous-seed PPS setting,
// plus the paper's closed-form variances. These power every figure
// reproduction without Monte Carlo noise.

// ObliviousMoments computes the exact mean and variance of an estimator on
// data vector v under weight-oblivious Poisson sampling with probabilities
// p, by enumerating all 2^r outcomes. It is exact up to floating point and
// feasible for r ≲ 20.
func ObliviousMoments(p, v []float64, est func(ObliviousOutcome) float64) (mean, variance float64) {
	r := len(p)
	o := ObliviousOutcome{P: p, Sampled: make([]bool, r), Values: make([]float64, r)}
	var m1, m2 float64
	for mask := 0; mask < 1<<uint(r); mask++ {
		w := 1.0
		for i := 0; i < r; i++ {
			if mask&(1<<uint(i)) != 0 {
				o.Sampled[i] = true
				o.Values[i] = v[i]
				w *= p[i]
			} else {
				o.Sampled[i] = false
				o.Values[i] = 0
				w *= 1 - p[i]
			}
		}
		x := est(o)
		m1 += w * x
		m2 += w * x * x
	}
	return m1, m2 - m1*m1
}

// BinaryKnownSeedsMoments computes the exact mean and variance of an
// estimator of a binary vector v under weighted Poisson sampling with known
// seeds. The outcome depends on the seeds only through the indicators
// U[i] ≤ P[i], so 2^r outcomes cover the space exactly.
func BinaryKnownSeedsMoments(p, v []float64, est func(BinaryKnownSeedsOutcome) float64) (mean, variance float64) {
	r := len(p)
	o := BinaryKnownSeedsOutcome{P: p, U: make([]float64, r), Sampled: make([]bool, r)}
	var m1, m2 float64
	for mask := 0; mask < 1<<uint(r); mask++ {
		w := 1.0
		for i := 0; i < r; i++ {
			if mask&(1<<uint(i)) != 0 {
				// Seed below the threshold: entry sampled iff v_i = 1.
				o.U[i] = p[i] / 2
				o.Sampled[i] = v[i] > 0
				w *= p[i]
			} else {
				o.U[i] = (1 + p[i]) / 2
				o.Sampled[i] = false
				w *= 1 - p[i]
			}
		}
		x := est(o)
		m1 += w * x
		m2 += w * x * x
	}
	return m1, m2 - m1*m1
}

// PPSMomentsOptions tunes PPSMoments2.
type PPSMomentsOptions struct {
	// N is the number of Simpson intervals per 1D integral (must be even;
	// default 128).
	N int
	// ZeroOnEmpty asserts that the estimator returns 0 on the empty
	// outcome, skipping the 2D integration over the S = ∅ region. All
	// nonnegative unbiased estimators in this package satisfy it.
	ZeroOnEmpty bool
}

// PPSMoments2 computes the mean and variance of an estimator of a 2-entry
// data vector under independent PPS sampling with known seeds, by
// deterministic integration over the seed space [0,1]².
//
// The estimator must not depend on the seeds of sampled entries (true for
// every estimator in this package: a sampled entry's exact value subsumes
// its seed).
func PPSMoments2(v, tau []float64, est func(PPSOutcome) float64, opt PPSMomentsOptions) (mean, variance float64) {
	if len(v) != 2 || len(tau) != 2 {
		panic("estimator: PPSMoments2 requires r=2")
	}
	n := opt.N
	if n <= 0 {
		n = 128
	}
	if n%2 == 1 {
		n++
	}
	q := [2]float64{incl(v[0], tau[0]), incl(v[1], tau[1])}
	var m1, m2 float64
	acc := func(w, x float64) {
		m1 += w * x
		m2 += w * x * x
	}
	outcome := func(s1, s2 bool, u1, u2 float64) PPSOutcome {
		o := PPSOutcome{Tau: tau, U: []float64{u1, u2}, Sampled: []bool{s1, s2}, Values: []float64{0, 0}}
		if s1 {
			o.Values[0] = v[0]
		}
		if s2 {
			o.Values[1] = v[1]
		}
		return o
	}
	// Region S = {1,2}: constant in the seeds.
	if q[0] > 0 && q[1] > 0 {
		acc(q[0]*q[1], est(outcome(true, true, q[0]/2, q[1]/2)))
	}
	// Region S = {1}: integrate over u2 ∈ (q2, 1]. The integrand has a
	// kink where the revealed bound u2·τ2 crosses the sampled value v1
	// (the determining vector's min{·} switches); split there so Simpson
	// converges at full order.
	if q[0] > 0 && q[1] < 1 {
		kink := clamp(v[0]/tau[1], q[1], 1)
		regionIntegrate(q[1], kink, n, func(u2, w float64) {
			x := est(outcome(true, false, q[0]/2, u2))
			acc(q[0]*w, x)
		})
	}
	// Region S = {2}: integrate over u1 ∈ (q1, 1], split at the symmetric
	// kink.
	if q[1] > 0 && q[0] < 1 {
		kink := clamp(v[1]/tau[0], q[0], 1)
		regionIntegrate(q[0], kink, n, func(u1, w float64) {
			x := est(outcome(false, true, u1, q[1]/2))
			acc(q[1]*w, x)
		})
	}
	// Region S = ∅.
	if q[0] < 1 && q[1] < 1 && !opt.ZeroOnEmpty {
		m := n / 2
		if m%2 == 1 {
			m++
		}
		integrate1D(q[0], 1, m, func(u1, w1 float64) {
			integrate1D(q[1], 1, m, func(u2, w2 float64) {
				x := est(outcome(false, false, u1, u2))
				acc(w1*w2, x)
			})
		})
	}
	return m1, m2 - m1*m1
}

// integrate1D visits the composite-Simpson nodes of [a,b] with n intervals
// (n even), calling visit(u, weight) for each node; the weights sum to b−a.
func integrate1D(a, b float64, n int, visit func(u, w float64)) {
	if b <= a {
		return
	}
	h := (b - a) / float64(n)
	for i := 0; i <= n; i++ {
		u := a + float64(i)*h
		c := 2.0
		switch {
		case i == 0 || i == n:
			c = 1
		case i%2 == 1:
			c = 4
		}
		visit(u, c*h/3)
	}
}

// regionIntegrate integrates an unsampled-seed region (lo, 1] with a known
// interior kink where the integrand changes analytic form (and, for
// max^(HT), jumps). Three numerical hazards are handled:
//
//   - the kink itself: the interval is split there, shrunk by a relative
//     epsilon so a jump exactly at the kink is never sampled on the wrong
//     side;
//   - the open lower boundary: max^(HT) jumps at u = lo, so the lower limit
//     is nudged strictly inside the region;
//   - lo = 0 with a logarithmic singularity of max^(L) at u = 0 (revealed
//     bound → 0): the first piece is integrated under the substitution
//     u = t², which regularizes ∫ ln(1/u) du at the origin.
func regionIntegrate(lo, kink float64, n int, visit func(u, w float64)) {
	const eps = 1e-9
	if lo == 0 {
		c := kink
		if c <= 0 || c > 1 {
			c = 1
		}
		integrate1D(0, math.Sqrt(c*(1-eps)), n, func(t, w float64) {
			visit(t*t, 2*t*w)
		})
		if c < 1 {
			integrate1D(c+eps*(1-c), 1, n, visit)
		}
		return
	}
	a := lo + eps*(1-lo)
	if kink <= a || kink >= 1 {
		integrate1D(a, 1, n, visit)
		return
	}
	integrate1D(a, kink-eps*(1-lo), n, visit)
	integrate1D(kink+eps*(1-lo), 1, n, visit)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func incl(v, tau float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Min(1, v/tau)
}

// Closed-form variances from the paper.

// VarHT returns the generic inverse-probability variance f²(1/p − 1),
// equation (1).
func VarHT(f, p float64) float64 {
	if f == 0 {
		return 0
	}
	return f * f * (1/p - 1)
}

// VarMaxHTOblivious2 is the variance of max^(HT) on (v1, v2) under
// weight-oblivious Poisson sampling (equation (10) for r = 2).
func VarMaxHTOblivious2(p1, p2, v1, v2 float64) float64 {
	return VarHT(math.Max(v1, v2), p1*p2)
}

// VarMaxL2Half is the variance of max^(L) at p1 = p2 = 1/2 (Figure 1):
// (11/9)·max² + (8/9)·min² − (16/9)·max·min.
func VarMaxL2Half(v1, v2 float64) float64 {
	mx, mn := math.Max(v1, v2), math.Min(v1, v2)
	return 11.0/9.0*mx*mx + 8.0/9.0*mn*mn - 16.0/9.0*mx*mn
}

// VarMaxU2Half is the variance of max^(U) at p1 = p2 = 1/2:
// max² + 2·min² − 2·max·min, obtained by exact enumeration of the
// estimator's own outcome table.
//
// Erratum: Figure 1 of the paper prints (3/4)·max² + 2·min² − 2·max·min,
// which is inconsistent with the outcome table printed directly above it
// (and with the general max^(U) construction and the §4.3 asymptotics,
// which give VAR ≈ 1/(4p²) on (1,0) — equal to max² at p = 1/2). We follow
// the outcome table.
func VarMaxU2Half(v1, v2 float64) float64 {
	mx, mn := math.Max(v1, v2), math.Min(v1, v2)
	return mx*mx + 2*mn*mn - 2*mx*mn
}

// VarORHT is the variance of OR^(HT) on any vector with OR(v) = 1
// (equation (23)).
func VarORHT(p []float64) float64 {
	prod := 1.0
	for _, pi := range p {
		prod *= pi
	}
	return 1/prod - 1
}

// VarORL11 is the variance of OR^(L) on data (1,1) (equation (24)).
func VarORL11(p1, p2 float64) float64 {
	return 1/(p1+p2-p1*p2) - 1
}

// VarORL10 is the variance of OR^(L) on data (1,0) (§4.3), with entry 1
// being the positive one.
func VarORL10(p1, p2 float64) float64 {
	q := p1 + p2 - p1*p2
	a := 1/q - 1
	b := 1/(p1*q) - 1
	return (1 - p1) + p1*(1-p2)*a*a + p1*p2*b*b
}

// VarMaxHTPPS2 is the variance of max^(HT) under PPS with known seeds for
// r = 2 (§5.2): max²(1/p − 1) with p = Π min{1, max/τ_i}.
func VarMaxHTPPS2(tau1, tau2, v1, v2 float64) float64 {
	m := math.Max(v1, v2)
	if m <= 0 {
		return 0
	}
	p := math.Min(1, m/tau1) * math.Min(1, m/tau2)
	return VarHT(m, p)
}
