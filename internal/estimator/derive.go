package estimator

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file implements the paper's Algorithm 1 — the generic order-based
// derivation of the estimator f̂(≺) — for weight-oblivious Poisson sampling
// over finite discrete value domains. It turns an order over data vectors
// into a concrete estimate table, solving the unbiasedness equations
// vector-by-vector in ≺ order.
//
// The engine serves three purposes:
//   1. cross-validating every closed-form estimator in this package on
//      small discrete domains,
//   2. demonstrating the failure modes (no unbiased estimator / forced
//      negativity) discussed in §3 and §6, and
//   3. deriving estimators for functions the paper does not treat in
//      closed form (ablation experiments).

// DiscreteProblem specifies a derivation instance.
type DiscreteProblem struct {
	// P holds the per-entry inclusion probabilities, all in (0, 1).
	P []float64
	// Domains holds the finite value domain of each entry, in ascending
	// order (e.g. {0, 1} for Boolean entries).
	Domains [][]float64
	// F is the estimated function.
	F func(v []float64) float64
	// Less is the strict order ≺ on data vectors; vectors are processed in
	// a linearization of this order (ties broken deterministically by
	// lexicographic value order). It must place the all-consistent minimum
	// first for the derivation to match the paper's constructions.
	Less func(a, b []float64) bool
}

// Derived is a fully materialized estimator table produced by Derive: one
// estimate per outcome (sampled set plus sampled values).
type Derived struct {
	problem  DiscreteProblem
	estimate map[string]float64
	// MinEstimate is the smallest estimate in the table; negative values
	// mean f̂(≺) exists but is not nonnegative (the case motivating the
	// constrained f̂(+≺) and partition-based f̂(U) constructions).
	MinEstimate float64
}

// ErrNoUnbiased is returned (wrapped) when no unbiased estimator consistent
// with the order exists: some data vector has zero probability of an
// unprocessed outcome while its expectation constraint is not yet met.
var ErrNoUnbiased = fmt.Errorf("estimator: no unbiased order-based estimator exists")

// Derive runs Algorithm 1. It returns an error wrapping ErrNoUnbiased when
// the unbiasedness equations are unsolvable.
func Derive(p DiscreteProblem) (*Derived, error) {
	r := len(p.P)
	if len(p.Domains) != r {
		return nil, fmt.Errorf("estimator: %d probabilities but %d domains", r, len(p.Domains))
	}
	vectors := enumerate(p.Domains)
	sort.SliceStable(vectors, func(i, j int) bool {
		if p.Less(vectors[i], vectors[j]) {
			return true
		}
		if p.Less(vectors[j], vectors[i]) {
			return false
		}
		return lexLess(vectors[i], vectors[j])
	})
	// Outcome probability PR[S] is value-independent under weight-oblivious
	// sampling; precompute per subset mask.
	prS := make([]float64, 1<<uint(r))
	for mask := range prS {
		w := 1.0
		for i := 0; i < r; i++ {
			if mask&(1<<uint(i)) != 0 {
				w *= p.P[i]
			} else {
				w *= 1 - p.P[i]
			}
		}
		prS[mask] = w
	}
	d := &Derived{problem: p, estimate: make(map[string]float64), MinEstimate: math.Inf(1)}
	const tol = 1e-9
	for _, v := range vectors {
		fv := p.F(v)
		var f0, prNew float64
		var newKeys []string
		for mask := 0; mask < 1<<uint(r); mask++ {
			key := outcomeKey(mask, v)
			if x, ok := d.estimate[key]; ok {
				f0 += prS[mask] * x
			} else {
				prNew += prS[mask]
				newKeys = append(newKeys, key)
			}
		}
		switch {
		case prNew <= tol:
			if math.Abs(fv-f0) > tol {
				return nil, fmt.Errorf("%w: vector %v needs estimate mass %v but has no unprocessed outcomes", ErrNoUnbiased, v, fv-f0)
			}
			for _, k := range newKeys {
				d.estimate[k] = 0
			}
		default:
			x := (fv - f0) / prNew
			for _, k := range newKeys {
				d.estimate[k] = x
			}
			if x < d.MinEstimate {
				d.MinEstimate = x
			}
		}
	}
	if math.IsInf(d.MinEstimate, 1) {
		d.MinEstimate = 0
	}
	return d, nil
}

// Estimate looks up the derived estimate for an outcome. The sampled values
// must be members of the entry domains (within 1e-9).
func (d *Derived) Estimate(o ObliviousOutcome) (float64, error) {
	mask := 0
	v := make([]float64, o.R())
	for i, s := range o.Sampled {
		if !s {
			continue
		}
		mask |= 1 << uint(i)
		v[i] = o.Values[i]
		if !inDomain(d.problem.Domains[i], o.Values[i]) {
			return 0, fmt.Errorf("estimator: value %v not in domain of entry %d", o.Values[i], i)
		}
	}
	x, ok := d.estimate[outcomeKey(mask, v)]
	if !ok {
		return 0, fmt.Errorf("estimator: outcome not covered by derivation")
	}
	return x, nil
}

// Nonnegative reports whether the derived estimator is nonnegative.
func (d *Derived) Nonnegative() bool { return d.MinEstimate >= -1e-9 }

// Len returns the number of distinct outcomes in the table.
func (d *Derived) Len() int { return len(d.estimate) }

// MaxLOrder is the §4.1 order for max^(L): the zero vector first, then
// ascending L(v) = #entries strictly below the maximum.
func MaxLOrder(a, b []float64) bool {
	za, zb := allZero(a), allZero(b)
	if za || zb {
		return za && !zb
	}
	return belowMax(a) < belowMax(b)
}

// SparseOrder is the §4.2 order for max^(U): ascending number of positive
// entries. Plain Algorithm 1 under this order generally yields negative
// estimates (motivating f̂(+≺)); Derive reports this via MinEstimate.
func SparseOrder(a, b []float64) bool {
	return positives(a) < positives(b)
}

// ORLOrder is the §4.3 order for OR^(L) on binary domains: zero vector
// first, then ascending number of zero entries.
func ORLOrder(a, b []float64) bool {
	za, zb := allZero(a), allZero(b)
	if za || zb {
		return za && !zb
	}
	return zeros(a) < zeros(b)
}

func enumerate(domains [][]float64) [][]float64 {
	out := [][]float64{{}}
	for _, dom := range domains {
		var next [][]float64
		for _, prefix := range out {
			for _, x := range dom {
				v := append(append([]float64(nil), prefix...), x)
				next = append(next, v)
			}
		}
		out = next
	}
	return out
}

func outcomeKey(mask int, v []float64) string {
	var b strings.Builder
	for i := range v {
		if mask&(1<<uint(i)) != 0 {
			fmt.Fprintf(&b, "%.9g|", v[i])
		} else {
			b.WriteString("-|")
		}
	}
	return b.String()
}

func inDomain(dom []float64, x float64) bool {
	for _, d := range dom {
		if math.Abs(d-x) <= 1e-9 {
			return true
		}
	}
	return false
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func belowMax(v []float64) int {
	m := maxOf(v)
	n := 0
	for _, x := range v {
		if x < m {
			n++
		}
	}
	return n
}

func positives(v []float64) int {
	n := 0
	for _, x := range v {
		if x > 0 {
			n++
		}
	}
	return n
}

func zeros(v []float64) int {
	n := 0
	for _, x := range v {
		if x == 0 {
			n++
		}
	}
	return n
}
