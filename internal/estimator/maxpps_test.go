package estimator

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// ppsCases spans all four regimes of the Figure 3 closed form plus corner
// configurations.
var ppsCases = []struct {
	name           string
	v1, v2, t1, t2 float64
}{
	{"both above thresholds", 12, 8, 10, 5},
	{"max above own threshold", 15, 2, 10, 20},
	{"both small equal taus", 3, 1, 10, 10},
	{"both small uneq taus", 3, 1, 10, 40},
	{"middle regime", 8, 1, 10, 5},
	{"zero min", 5, 0, 10, 10},
	{"zero vector", 0, 0, 10, 10},
	{"equal values", 4, 4, 10, 12},
	{"swap order", 1, 3, 10, 10},
	{"tiny sampling rate", 0.1, 0.05, 10, 10},
	{"asymmetric taus", 2, 7, 3, 50},
}

// TestMaxPPSUnbiased integrates the estimators over the seed space and
// checks unbiasedness for both max^(HT) and max^(L) across every regime.
func TestMaxPPSUnbiased(t *testing.T) {
	for _, c := range ppsCases {
		v := []float64{c.v1, c.v2}
		tau := []float64{c.t1, c.t2}
		want := math.Max(c.v1, c.v2)
		opt := PPSMomentsOptions{N: 4096, ZeroOnEmpty: true}
		mean, _ := PPSMoments2(v, tau, MaxHTPPS, opt)
		if !approxEq(mean, want, 1e-6) {
			t.Errorf("%s: MaxHTPPS mean = %v, want %v", c.name, mean, want)
		}
		mean, _ = PPSMoments2(v, tau, MaxL2PPS, opt)
		if !approxEq(mean, want, 1e-6) {
			t.Errorf("%s: MaxL2PPS mean = %v, want %v", c.name, mean, want)
		}
	}
}

// TestMaxPPSUnbiasedMonteCarlo cross-checks the deterministic integrator
// with an independent Monte Carlo estimate.
func TestMaxPPSUnbiasedMonteCarlo(t *testing.T) {
	rng := randx.New(123)
	for _, c := range ppsCases {
		if c.v1 == 0 && c.v2 == 0 {
			continue
		}
		v := []float64{c.v1, c.v2}
		tau := []float64{c.t1, c.t2}
		want := math.Max(c.v1, c.v2)
		const n = 400000
		sum := 0.0
		for i := 0; i < n; i++ {
			u := []float64{rng.Float64(), rng.Float64()}
			sum += MaxL2PPS(SamplePPS(v, u, tau))
		}
		got := sum / n
		if !approxEq(got, want, 0.05) {
			t.Errorf("%s: MC mean = %v, want %v", c.name, got, want)
		}
	}
}

// TestMaxL2PPSDominatesHT verifies VAR[L] ≤ VAR[HT] in every regime, and
// the §5.2 bound VAR[HT]/VAR[L] ≥ (1+ρ)/ρ for equal thresholds.
func TestMaxL2PPSDominatesHT(t *testing.T) {
	opt := PPSMomentsOptions{N: 4096, ZeroOnEmpty: true}
	for _, c := range ppsCases {
		v := []float64{c.v1, c.v2}
		tau := []float64{c.t1, c.t2}
		_, varHT := PPSMoments2(v, tau, MaxHTPPS, opt)
		_, varL := PPSMoments2(v, tau, MaxL2PPS, opt)
		if varL > varHT*(1+1e-6)+1e-9 {
			t.Errorf("%s: VAR[L]=%v > VAR[HT]=%v", c.name, varL, varHT)
		}
		// The paper claims VAR[HT]/VAR[L] ≥ (1+ρ)/ρ for equal thresholds;
		// that analysis idealizes the min = 0 behaviour (it assumes a
		// constant estimate on single-sampled outcomes, which the actual
		// order-based estimator does not have — see EXPERIMENTS.md). The
		// factor-≥2 headline holds; we lock that in for ρ ≤ 1/2.
		if c.t1 == c.t2 && varL > 1e-9 {
			rho := math.Max(c.v1, c.v2) / c.t1
			// Measured dominance factor: ≥ 2 whenever both entries are
			// positive; ≈ 1.93–1.96 at min = 0 (the paper's idealized ≥ 2
			// bound slightly overstates the min = 0 corner; see
			// EXPERIMENTS.md).
			floor := 2.0
			if math.Min(c.v1, c.v2) == 0 {
				floor = 1.9
			}
			if rho <= 0.5 {
				if ratio := varHT / varL; ratio < floor {
					t.Errorf("%s: VAR[HT]/VAR[L] = %v below %v (rho=%v)", c.name, ratio, floor, rho)
				}
			}
		}
	}
}

// TestVarMaxHTPPS2ClosedForm checks the closed-form HT variance against the
// integrator.
func TestVarMaxHTPPS2ClosedForm(t *testing.T) {
	opt := PPSMomentsOptions{N: 4096, ZeroOnEmpty: true}
	for _, c := range ppsCases {
		v := []float64{c.v1, c.v2}
		tau := []float64{c.t1, c.t2}
		_, got := PPSMoments2(v, tau, MaxHTPPS, opt)
		want := VarMaxHTPPS2(c.t1, c.t2, c.v1, c.v2)
		if !approxEq(got, want, 1e-5) {
			t.Errorf("%s: integrator VAR[HT]=%v, closed form %v", c.name, got, want)
		}
	}
}

// TestMaxL2PPSDeterminingTable spot-checks the Figure 3 closed form in each
// regime directly.
func TestMaxL2PPSDeterminingTable(t *testing.T) {
	// Case v1 ≥ v2 ≥ τ2: v2 + (v1−v2)/min{1, v1/τ1}.
	if got, want := MaxL2PPSDetermining(12, 8, 10, 5), 8.0+4.0; !approxEq(got, want, 1e-12) {
		t.Errorf("case1 = %v, want %v", got, want)
	}
	if got, want := MaxL2PPSDetermining(8, 6, 16, 5), 6+(8-6)/(8.0/16); !approxEq(got, want, 1e-12) {
		t.Errorf("case1b = %v, want %v", got, want)
	}
	// Case v1 ≥ τ1, v2 ≤ min{τ2, v1}: exactly v1.
	if got := MaxL2PPSDetermining(15, 2, 10, 20); !approxEq(got, 15, 1e-12) {
		t.Errorf("case2 = %v, want 15", got)
	}
	// Case v2 ≤ v1 ≤ min{τ1, τ2} with v1 = v2 reduces to (25).
	if got, want := MaxL2PPSDetermining(4, 4, 10, 12), MaxL2PPSEqual(4, 10, 12); !approxEq(got, want, 1e-12) {
		t.Errorf("case3 equal entries = %v, want %v", got, want)
	}
	// Symmetry: exchanging entries with their thresholds is invariant.
	if a, b := MaxL2PPSDetermining(3, 1, 10, 40), MaxL2PPSDetermining(1, 3, 40, 10); !approxEq(a, b, 1e-12) {
		t.Errorf("symmetry violated: %v vs %v", a, b)
	}
}

// TestMaxL2PPSEqualFormula verifies (25) against first principles: the
// probability that an outcome determined by (v,v) occurs.
func TestMaxL2PPSEqualFormula(t *testing.T) {
	for _, c := range []struct{ v, t1, t2 float64 }{{4, 10, 12}, {2, 3, 9}, {7, 8, 8}} {
		q1 := math.Min(1, c.v/c.t1)
		q2 := math.Min(1, c.v/c.t2)
		want := c.v / (q1 + (1-q1)*q2)
		if got := MaxL2PPSEqual(c.v, c.t1, c.t2); !approxEq(got, want, 1e-12) {
			t.Errorf("MaxL2PPSEqual(%v) = %v, want %v", c, got, want)
		}
	}
}

// TestMaxL2PPSMonotoneInInformation: revealing a higher upper bound on the
// unsampled entry (larger seed) weakly increases the determining vector's
// min entry and the estimate must respond monotonically downward in the
// bound... — concretely, the estimate as a function of the unsampled seed
// is continuous across the determining-vector kink.
func TestMaxL2PPSContinuityAtKink(t *testing.T) {
	v := []float64{6, 0}
	tau := []float64{10, 10}
	kink := v[0] / tau[1] // u2 where min{u2·τ2, v1} switches
	mk := func(u2 float64) PPSOutcome {
		return PPSOutcome{
			Tau: tau, U: []float64{0.3, u2},
			Sampled: []bool{true, false}, Values: []float64{6, 0},
		}
	}
	lo := MaxL2PPS(mk(kink * (1 - 1e-9)))
	hi := MaxL2PPS(mk(kink * (1 + 1e-9)))
	if !approxEq(lo, hi, 1e-6) {
		t.Errorf("discontinuity at kink: %v vs %v", lo, hi)
	}
}

// TestMaxL2PPSNonnegative sweeps outcomes for nonnegativity.
func TestMaxL2PPSNonnegative(t *testing.T) {
	rng := randx.New(5)
	for i := 0; i < 20000; i++ {
		v := []float64{rng.Float64() * 20, rng.Float64() * 20}
		tau := []float64{1 + rng.Float64()*20, 1 + rng.Float64()*20}
		u := []float64{rng.Float64(), rng.Float64()}
		o := SamplePPS(v, u, tau)
		if est := MaxL2PPS(o); est < 0 || math.IsNaN(est) {
			t.Fatalf("negative/NaN estimate %v for v=%v tau=%v u=%v", est, v, tau, u)
		}
		if est := MaxHTPPS(o); est < 0 || math.IsNaN(est) {
			t.Fatalf("negative/NaN HT estimate %v for v=%v tau=%v u=%v", est, v, tau, u)
		}
	}
}

// TestFigure4Shape reproduces the headline shape of Figure 4: for
// τ1=τ2=τ*, VAR[HT]/(τ*)² = ρ²(1/p−1) is flat in min/max, while VAR[L]
// decreases with min/max; the ratio is ≥ 2 and grows as ρ shrinks.
func TestFigure4Shape(t *testing.T) {
	tau := []float64{1, 1}
	opt := PPSMomentsOptions{N: 2048, ZeroOnEmpty: true}
	for _, rho := range []float64{0.5, 0.1} {
		prev := math.Inf(1)
		for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := []float64{rho, rho * ratio}
			_, varHT := PPSMoments2(v, tau, MaxHTPPS, opt)
			if want := 1 - rho*rho; !approxEq(varHT, want, 1e-4) {
				t.Errorf("rho=%v ratio=%v: VAR[HT]=%v, want %v", rho, ratio, varHT, want)
			}
			_, varL := PPSMoments2(v, tau, MaxL2PPS, opt)
			if varL > prev*(1+1e-6) {
				t.Errorf("rho=%v: VAR[L] not decreasing in min/max at ratio %v: %v > %v", rho, ratio, varL, prev)
			}
			prev = varL
			if varL > 0 {
				floor := 2.0
				if ratio == 0 {
					floor = 1.9 // min=0 corner, see EXPERIMENTS.md
				}
				if r := varHT / varL; r < floor {
					t.Errorf("rho=%v ratio=%v: VAR ratio %v below %v", rho, ratio, r, floor)
				}
			}
		}
		// At min = 0 the paper idealizes VAR[L]/(τ*)² = ρ − ρ² (constant
		// estimate on single-sampled outcomes); the actual order-based
		// estimator varies with the revealed bound, so its variance lies
		// strictly between that bound and VAR[HT] = 1 − ρ².
		_, varL0 := PPSMoments2([]float64{rho, 0}, tau, MaxL2PPS, opt)
		if lower, upper := rho-rho*rho, (1-rho*rho)/1.9; varL0 < lower*(1-1e-6) || varL0 > upper {
			t.Errorf("rho=%v: VAR[L|min=0]=%v outside [%v, %v]", rho, varL0, lower, upper)
		}
	}
}
