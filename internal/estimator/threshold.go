package estimator

import (
	"math"

	"repro/internal/sampling"
)

// The general weighted-sampling model of §2: entry i is sampled iff
// v_i ≥ τ_i(u_i) for a non-decreasing threshold function τ_i and uniform
// seed u_i. PPS is τ(u) = u·τ*; EXP-rank Poisson sampling is
// τ(u) = −ln(1−u)/r* for rank threshold r*. With known seeds, an
// unsampled entry reveals the upper bound v_i < τ_i(u_i), and the
// inclusion probability of a value v is PR[v ≥ τ(U)] = sup{u : v ≥ τ(u)}.

// Threshold describes one entry's sampling rule in the general weighted
// model.
type Threshold interface {
	// At returns τ(u), the value threshold at seed u.
	At(u float64) float64
	// InclusionProb returns PR[v ≥ τ(U)] for uniform U.
	InclusionProb(v float64) float64
}

// PPSThreshold is τ(u) = u·TauStar (inclusion probability min{1, v/τ*}).
type PPSThreshold struct{ TauStar float64 }

// At implements Threshold.
func (t PPSThreshold) At(u float64) float64 { return u * t.TauStar }

// InclusionProb implements Threshold.
func (t PPSThreshold) InclusionProb(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Min(1, v/t.TauStar)
}

// EXPThreshold is τ(u) = −ln(1−u)/RankTau — Poisson sampling with
// exponential ranks below RankTau (inclusion probability 1 − e^{−v·r*}).
type EXPThreshold struct{ RankTau float64 }

// At implements Threshold.
func (t EXPThreshold) At(u float64) float64 {
	return -math.Log1p(-u) / t.RankTau
}

// InclusionProb implements Threshold.
func (t EXPThreshold) InclusionProb(v float64) float64 {
	return sampling.EXP{}.InclusionProb(v, t.RankTau)
}

// WeightedOutcome is the outcome of independent weighted sampling with
// known seeds under arbitrary thresholds.
type WeightedOutcome struct {
	// Thresholds holds the per-entry sampling rules.
	Thresholds []Threshold
	// U holds the known seeds.
	U []float64
	// Sampled marks sampled entries; Values holds their exact values.
	Sampled []bool
	Values  []float64
}

// R returns the number of entries.
func (o WeightedOutcome) R() int { return len(o.Thresholds) }

// MaxSampled returns the maximum sampled value (0 when S is empty).
func (o WeightedOutcome) MaxSampled() float64 {
	m := 0.0
	for i, s := range o.Sampled {
		if s && o.Values[i] > m {
			m = o.Values[i]
		}
	}
	return m
}

// SampleWeighted materializes the outcome for data v under thresholds and
// seeds.
func SampleWeighted(v, u []float64, th []Threshold) WeightedOutcome {
	r := len(v)
	o := WeightedOutcome{Thresholds: th, U: u, Sampled: make([]bool, r), Values: make([]float64, r)}
	for i := 0; i < r; i++ {
		if v[i] > 0 && v[i] >= th[i].At(u[i]) {
			o.Sampled[i] = true
			o.Values[i] = v[i]
		}
	}
	return o
}

// MaxHTWeighted generalizes MaxHTPPS to arbitrary threshold families
// (§5.2 with the §2 general model): the estimate is positive exactly when
// every unsampled entry's revealed bound τ_i(u_i) is at most the maximum
// sampled value — the outcome then determines max(v) — and equals
// max / Π_i PR[max ≥ τ_i(U)].
func MaxHTWeighted(o WeightedOutcome) float64 {
	m := o.MaxSampled()
	if m <= 0 {
		return 0
	}
	for i, s := range o.Sampled {
		if !s && o.Thresholds[i].At(o.U[i]) > m {
			return 0
		}
	}
	p := 1.0
	for _, th := range o.Thresholds {
		p *= th.InclusionProb(m)
	}
	if p <= 0 {
		return 0
	}
	return m / p
}

// MinHTWeighted is the inverse-probability estimator of min(v) in the
// general model: positive only when every entry is sampled, which is the
// only outcome class that determines the minimum.
func MinHTWeighted(o WeightedOutcome) float64 {
	mn := math.Inf(1)
	p := 1.0
	for i, s := range o.Sampled {
		if !s {
			return 0
		}
		if o.Values[i] < mn {
			mn = o.Values[i]
		}
	}
	for i, th := range o.Thresholds {
		p *= th.InclusionProb(o.Values[i])
	}
	if p <= 0 || math.IsInf(mn, 1) {
		return 0
	}
	return mn / p
}
