package estimator

// Boolean OR estimators (§4.3 weight-oblivious, §5.1 weighted with known
// seeds). On binary domains OR coincides with max, and the OR estimators
// are the max estimators specialized to {0,1} values — but they remain
// Pareto optimal in the restricted domain.

// ORL2 is OR^(L) for two entries under weight-oblivious Poisson sampling:
// the specialization of max^(L) to binary data. Variance is minimized on
// the "no change" vector (1,1).
func ORL2(o ObliviousOutcome) float64 {
	return MaxL2(binarized(o))
}

// ORU2 is OR^(U) for two entries under weight-oblivious Poisson sampling:
// the specialization of max^(U); it is the symmetric nonnegative unbiased
// estimator with minimum variance on the "change" vectors (1,0) and (0,1).
func ORU2(o ObliviousOutcome) float64 {
	return MaxU2(binarized(o))
}

// ORLKnownSeeds is OR^(L) for weighted sampling of binary data with known
// seeds (§5.1), via the information-preserving mapping to the oblivious
// model.
func ORLKnownSeeds(o BinaryKnownSeedsOutcome) float64 {
	return ORL2(o.ToOblivious())
}

// ORUKnownSeeds is OR^(U) for weighted sampling of binary data with known
// seeds (§5.1).
func ORUKnownSeeds(o BinaryKnownSeedsOutcome) float64 {
	return ORU2(o.ToOblivious())
}

// ORLUniform returns OR^(L) for r entries with uniform inclusion
// probability p, built on the max^(L) coefficient machinery (the §4.3
// specialization remains optimal on the binary domain).
func ORLUniform(r int, p float64) (*MaxLUniform, error) {
	return NewMaxLUniform(r, p)
}

// binarized clamps sampled values to {0,1} so the max machinery operates on
// the Boolean domain.
func binarized(o ObliviousOutcome) ObliviousOutcome {
	out := ObliviousOutcome{P: o.P, Sampled: o.Sampled, Values: make([]float64, len(o.Values))}
	for i, v := range o.Values {
		if o.Sampled[i] && v > 0 {
			out.Values[i] = 1
		}
	}
	return out
}
