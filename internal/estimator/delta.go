package estimator

import "math"

// The necessary conditions of §2.3 (Lemma 2.1), made executable for
// weight-oblivious Poisson sampling over finite domains.
//
// Δ(v, ε) measures how much outcome-probability mass necessarily pins
// f near f(v): the paper shows an unbiased nonnegative estimator requires
// Δ(v, ε) > 0 for all ε > 0, bounded variance requires Δ(v, ε) = Ω(ε²),
// and boundedness requires Δ(v, ε) = Ω(ε).
//
// For weight-oblivious sampling the sample space is the set of constant
// predicate vectors σ ∈ 2^[r], and the vectors consistent with every
// outcome of a portion Ω′ are exactly those agreeing with v on the union
// of the sampled sets of Ω′. The supremum over Ω′ with a given union U is
// attained by Ω′ = {σ : σ ⊆ U}, whose probability is Π_{i∉U}(1−p_i), so
//
//	Δ(v, ε) = 1 − max{ Π_{i∉U}(1−p_i) :
//	                   U ⊆ [r], inf{f(w) : w_i = v_i ∀i∈U} ≤ f(v) − ε }.
func DeltaOblivious(p DiscreteProblem, v []float64, eps float64) float64 {
	r := len(p.P)
	fv := p.F(v)
	best := -1.0
	for u := 0; u < 1<<uint(r); u++ {
		// inf f over vectors agreeing with v on U.
		inf := infAgreeing(p, v, u)
		if inf > fv-eps {
			continue
		}
		prob := 1.0
		for i := 0; i < r; i++ {
			if u&(1<<uint(i)) == 0 {
				prob *= 1 - p.P[i]
			}
		}
		if prob > best {
			best = prob
		}
	}
	if best < 0 {
		// No portion can keep f below f(v) − ε: Δ = 1 by the paper's
		// convention for that case.
		return 1
	}
	return 1 - best
}

// infAgreeing returns inf{f(w) : w ∈ domains, w_i = v_i for i ∈ U}.
func infAgreeing(p DiscreteProblem, v []float64, u int) float64 {
	r := len(p.P)
	w := make([]float64, r)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == r {
			if f := p.F(w); f < best {
				best = f
			}
			return
		}
		if u&(1<<uint(i)) != 0 {
			w[i] = v[i]
			rec(i + 1)
			return
		}
		for _, x := range p.Domains[i] {
			w[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// DeltaFeasible reports whether the Lemma 2.1 necessary condition for an
// unbiased nonnegative estimator — Δ(v, ε) > 0 for every v and ε > 0 —
// holds over the whole finite domain. For discrete domains it suffices to
// check the smallest positive ε (the minimum gap between distinct values
// of f below each f(v)).
func DeltaFeasible(p DiscreteProblem) bool {
	vectors := enumerate(p.Domains)
	for _, v := range vectors {
		fv := p.F(v)
		// Collect candidate gaps: f(v) − f(w) over all w with smaller f.
		for _, w := range vectors {
			gap := fv - p.F(w)
			if gap <= 1e-12 {
				continue
			}
			if DeltaOblivious(p, v, gap) <= 1e-12 {
				return false
			}
		}
	}
	return true
}
