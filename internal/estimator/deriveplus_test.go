package estimator

import (
	"testing"
)

// TestDerivePlusMatchesUas: f̂(+≺) under the §4.2 processing order
// reproduces the closed-form asymmetric estimator max^(Uas) on the binary
// domain, for probabilities on both sides of p1+p2 = 1.
func TestDerivePlusMatchesUas(t *testing.T) {
	for _, pp := range [][2]float64{
		{0.3, 0.3}, {0.2, 0.6}, {0.6, 0.2}, {0.7, 0.8}, {0.5, 0.5},
	} {
		p := []float64{pp[0], pp[1]}
		d, err := DerivePlus(DiscreteProblem{
			P:       p,
			Domains: [][]float64{{0, 1}, {0, 1}},
			F:       maxOf,
			Less:    UasOrder,
		})
		if err != nil {
			t.Fatalf("p=%v: %v", pp, err)
		}
		if !d.Nonnegative() {
			t.Errorf("p=%v: constrained derivation went negative (min %v)", pp, d.MinEstimate)
		}
		forEachOutcome2(p, [][]float64{{0, 1}, {0, 1}}, func(o ObliviousOutcome) {
			got, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			if want := MaxUAsym2(o); !approxEq(got, want, 1e-8) {
				t.Errorf("p=%v outcome %v/%v: derived %v, closed form %v",
					pp, o.Sampled, o.Values, got, want)
			}
		})
	}
}

// TestDerivePlusUnbiased: the constrained estimator remains exactly
// unbiased on every data vector of a multi-valued domain.
func TestDerivePlusUnbiased(t *testing.T) {
	dom := [][]float64{{0, 1, 3}, {0, 2, 3}}
	p := []float64{0.35, 0.3}
	d, err := DerivePlus(DiscreteProblem{P: p, Domains: dom, F: maxOf, Less: UasOrder})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nonnegative() {
		t.Errorf("negative estimates: min %v", d.MinEstimate)
	}
	for _, v1 := range dom[0] {
		for _, v2 := range dom[1] {
			v := []float64{v1, v2}
			mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
				x, err := d.Estimate(o)
				if err != nil {
					t.Fatal(err)
				}
				return x
			})
			if !approxEq(mean, maxOf(v), 1e-8) {
				t.Errorf("v=%v: mean %v, want %v", v, mean, maxOf(v))
			}
		}
	}
}

// TestDerivePlusEqualsDeriveWhenUnconstrained: when the plain order-based
// estimator is already nonnegative (the max^(L) order), the constrained
// construction must coincide with it.
func TestDerivePlusEqualsDeriveWhenUnconstrained(t *testing.T) {
	prob := DiscreteProblem{
		P:       []float64{0.4, 0.7},
		Domains: [][]float64{{0, 1, 2}, {0, 1, 2}},
		F:       maxOf,
		Less:    MaxLOrder,
	}
	plain, err := Derive(prob)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := DerivePlus(prob)
	if err != nil {
		t.Fatal(err)
	}
	forEachOutcome2(prob.P, prob.Domains, func(o ObliviousOutcome) {
		a, err := plain.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := constrained.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(a, b, 1e-8) {
			t.Errorf("outcome %v/%v: plain %v, constrained %v", o.Sampled, o.Values, a, b)
		}
	})
}

// TestDerivePlusSparseOrderStaysNonnegative contrasts with
// TestDeriveSparseOrderGoesNegative: the same order that breaks plain
// Algorithm 1 at p1+p2 < 1 yields a valid nonnegative estimator under the
// constrained construction.
func TestDerivePlusSparseOrderStaysNonnegative(t *testing.T) {
	p := []float64{0.3, 0.3}
	d, err := DerivePlus(DiscreteProblem{
		P:       p,
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       maxOf,
		Less:    SparseOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nonnegative() {
		t.Fatalf("constrained derivation negative: min %v", d.MinEstimate)
	}
	for _, v := range binaryVectors2 {
		mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
			x, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			return x
		})
		if !approxEq(mean, maxOf(v), 1e-8) {
			t.Errorf("v=%v: mean %v, want %v", v, mean, maxOf(v))
		}
	}
}

// TestDerivePlusVarianceOrdering: on the "change" vector (1,0) the
// Uas-order estimator has weakly lower variance than the L-order one, and
// on (1,1) the ordering flips — the Pareto trade the paper designs for.
func TestDerivePlusVarianceOrdering(t *testing.T) {
	p := []float64{0.3, 0.3}
	prob := DiscreteProblem{P: p, Domains: [][]float64{{0, 1}, {0, 1}}, F: maxOf}
	probUas := prob
	probUas.Less = UasOrder
	uas, err := DerivePlus(probUas)
	if err != nil {
		t.Fatal(err)
	}
	probL := prob
	probL.Less = MaxLOrder
	l, err := DerivePlus(probL)
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(d *Derived, v []float64) float64 {
		_, vr := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
			x, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			return x
		})
		return vr
	}
	if u, lv := varOf(uas, []float64{1, 0}), varOf(l, []float64{1, 0}); u > lv+1e-9 {
		t.Errorf("on (1,0): Uas variance %v above L variance %v", u, lv)
	}
	if u, lv := varOf(uas, []float64{1, 1}), varOf(l, []float64{1, 1}); lv > u+1e-9 {
		t.Errorf("on (1,1): L variance %v above Uas variance %v", lv, u)
	}
}

// TestSolveVarianceQP exercises the QP solver directly.
func TestSolveVarianceQP(t *testing.T) {
	// Unconstrained optimum: equal values b/Σw.
	x, err := solveVarianceQP([]float64{0.2, 0.3}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 2, 1e-9) || !approxEq(x[1], 2, 1e-9) {
		t.Errorf("unconstrained solution %v, want [2 2]", x)
	}
	// A binding upper bound on x0 shifts mass to x1.
	x, err = solveVarianceQP([]float64{0.2, 0.3}, 1, []qpConstraint{
		{a: []float64{1, 0}, d: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 1, 1e-9) {
		t.Errorf("bound not binding: %v", x)
	}
	if !approxEq(0.2*x[0]+0.3*x[1], 1, 1e-9) {
		t.Errorf("equality violated: %v", x)
	}
	// A non-binding constraint changes nothing.
	x, err = solveVarianceQP([]float64{0.5, 0.5}, 1, []qpConstraint{
		{a: []float64{1, 0}, d: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 1, 1e-9) || !approxEq(x[1], 1, 1e-9) {
		t.Errorf("loose constraint perturbed solution: %v", x)
	}
	// Nonnegativity can force an asymmetric split.
	x, err = solveVarianceQP([]float64{0.5, 0.5}, 1, []qpConstraint{
		{a: []float64{-1, 0}, d: 0},
		{a: []float64{0, -1}, d: 0},
		{a: []float64{1, 0}, d: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 0.5, 1e-9) || !approxEq(x[1], 1.5, 1e-9) {
		t.Errorf("constrained split %v, want [0.5 1.5]", x)
	}
}

func TestSolveLinear(t *testing.T) {
	x, err := solveLinear([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 1, 1e-12) || !approxEq(x[1], 3, 1e-12) {
		t.Errorf("solution %v, want [1 3]", x)
	}
	if _, err := solveLinear([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("singular system did not error")
	}
}
