package estimator

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based invariant tests (testing/quick) on the estimator layer.

// TestQuickMaxL2PPSSymmetry: exchanging the two entries together with
// their thresholds and seeds leaves the estimate unchanged.
func TestQuickMaxL2PPSSymmetry(t *testing.T) {
	f := func(a, b, ta, tb, ua, ub float64) bool {
		v1, v2 := 20*frac(a), 20*frac(b)
		t1, t2 := 1+30*frac(ta), 1+30*frac(tb)
		u1, u2 := frac(ua), frac(ub)
		o := SamplePPS([]float64{v1, v2}, []float64{u1, u2}, []float64{t1, t2})
		swapped := SamplePPS([]float64{v2, v1}, []float64{u2, u1}, []float64{t2, t1})
		x, y := MaxL2PPS(o), MaxL2PPS(swapped)
		return approxEq(x, y, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMaxL2Symmetry: the oblivious max^(L) is invariant under entry
// permutation (with probabilities permuted too).
func TestQuickMaxL2Symmetry(t *testing.T) {
	f := func(a, b, pa, pb, ua, ub float64) bool {
		v1, v2 := 100*frac(a), 100*frac(b)
		p1, p2 := 0.05+0.9*frac(pa), 0.05+0.9*frac(pb)
		u1, u2 := frac(ua), frac(ub)
		o := SampleOblivious([]float64{v1, v2}, []float64{u1, u2}, []float64{p1, p2})
		sw := SampleOblivious([]float64{v2, v1}, []float64{u2, u1}, []float64{p2, p1})
		if !approxEq(MaxL2(o), MaxL2(sw), 1e-9) {
			return false
		}
		return approxEq(MaxU2(o), MaxU2(sw), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMaxL2Scale: the estimators are positively homogeneous — scaling
// the data scales the estimate (for fixed sampled set; oblivious sampling
// is value-independent so the outcome structure is preserved).
func TestQuickMaxL2Scale(t *testing.T) {
	f := func(a, b, pa, pb, s float64) bool {
		v1, v2 := 10*frac(a), 10*frac(b)
		p1, p2 := 0.05+0.9*frac(pa), 0.05+0.9*frac(pb)
		c := 0.1 + 10*frac(s)
		o := ObliviousOutcome{P: []float64{p1, p2}, Sampled: []bool{true, true}, Values: []float64{v1, v2}}
		oc := ObliviousOutcome{P: []float64{p1, p2}, Sampled: []bool{true, true}, Values: []float64{c * v1, c * v2}}
		return approxEq(c*MaxL2(o), MaxL2(oc), 1e-9) &&
			approxEq(c*MaxU2(o), MaxU2(oc), 1e-9) &&
			approxEq(c*MaxHTOblivious(o), MaxHTOblivious(oc), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminingVectorConsistency: the determining vector is always
// consistent with the outcome — it matches sampled values exactly and
// respects revealed upper bounds on unsampled entries.
func TestQuickDeterminingVectorConsistency(t *testing.T) {
	f := func(a, b, ta, tb, ua, ub float64) bool {
		v := []float64{20 * frac(a), 20 * frac(b)}
		tau := []float64{1 + 30*frac(ta), 1 + 30*frac(tb)}
		u := []float64{frac(ua), frac(ub)}
		o := SamplePPS(v, u, tau)
		phi := o.DeterminingVector()
		for i := 0; i < 2; i++ {
			if o.Sampled[i] {
				if phi[i] != o.Values[i] {
					return false
				}
			} else if phi[i] > o.U[i]*o.Tau[i]+1e-12 {
				return false
			}
		}
		// φ's max equals the max sampled value when anything was sampled.
		if o.NumSampled() > 0 {
			if !approxEq(math.Max(phi[0], phi[1]), o.MaxSampled(), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickBinaryMappingInformationPreserving: the §5 outcome mapping is
// information-preserving — the oblivious image determines exactly the
// revealed entries.
func TestQuickBinaryMappingInformationPreserving(t *testing.T) {
	f := func(b1, b2 bool, pa, pb, ua, ub float64) bool {
		v := []float64{0, 0}
		if b1 {
			v[0] = 1
		}
		if b2 {
			v[1] = 1
		}
		p := []float64{0.05 + 0.9*frac(pa), 0.05 + 0.9*frac(pb)}
		u := []float64{frac(ua), frac(ub)}
		o := SampleBinaryKnownSeeds(v, u, p)
		m := o.ToOblivious()
		for i := 0; i < 2; i++ {
			revealed := u[i] <= p[i]
			if m.Sampled[i] != revealed {
				return false
			}
			if revealed && m.Values[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickHTSupport: max^(HT) under PPS is positive exactly when the
// outcome determines the maximum.
func TestQuickHTSupport(t *testing.T) {
	f := func(a, b, ta, tb, ua, ub float64) bool {
		v := []float64{20 * frac(a), 20 * frac(b)}
		tau := []float64{1 + 30*frac(ta), 1 + 30*frac(tb)}
		u := []float64{frac(ua), frac(ub)}
		o := SamplePPS(v, u, tau)
		est := MaxHTPPS(o)
		m := o.MaxSampled()
		determined := m > 0
		for i := 0; i < 2; i++ {
			if !o.Sampled[i] && o.U[i]*o.Tau[i] > m {
				determined = false
			}
		}
		if determined != (est > 0) {
			return false
		}
		// When positive, the estimate is at least the true sampled max.
		return est == 0 || est >= m-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
