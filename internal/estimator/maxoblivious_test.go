package estimator

import (
	"math"
	"testing"
	"testing/quick"
)

var probGrid = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}

var valueGrid2 = [][2]float64{
	{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}, {5, 5},
	{10, 0}, {0, 10}, {3, 7}, {7, 3}, {100, 1}, {1e-3, 1e3},
}

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(1, scale)
}

func TestMaxL2Unbiased(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			for _, v := range valueGrid2 {
				mean, _ := ObliviousMoments([]float64{p1, p2}, v[:], MaxL2)
				want := math.Max(v[0], v[1])
				if !approxEq(mean, want, 1e-12) {
					t.Errorf("MaxL2 biased: p=(%v,%v) v=%v mean=%v want=%v", p1, p2, v, mean, want)
				}
			}
		}
	}
}

func TestMaxU2Unbiased(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			for _, v := range valueGrid2 {
				mean, _ := ObliviousMoments([]float64{p1, p2}, v[:], MaxU2)
				want := math.Max(v[0], v[1])
				if !approxEq(mean, want, 1e-12) {
					t.Errorf("MaxU2 biased: p=(%v,%v) v=%v mean=%v want=%v", p1, p2, v, mean, want)
				}
			}
		}
	}
}

func TestMaxUAsym2Unbiased(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			for _, v := range valueGrid2 {
				mean, _ := ObliviousMoments([]float64{p1, p2}, v[:], MaxUAsym2)
				want := math.Max(v[0], v[1])
				if !approxEq(mean, want, 1e-12) {
					t.Errorf("MaxUAsym2 biased: p=(%v,%v) v=%v mean=%v want=%v", p1, p2, v, mean, want)
				}
			}
		}
	}
}

// TestMaxL2FigureOneTable checks the explicit outcome table of Figure 1
// (p1 = p2 = 1/2).
func TestMaxL2FigureOneTable(t *testing.T) {
	p := []float64{0.5, 0.5}
	mk := func(s1, s2 bool, v1, v2 float64) ObliviousOutcome {
		return ObliviousOutcome{P: p, Sampled: []bool{s1, s2}, Values: []float64{v1, v2}}
	}
	v1, v2 := 9.0, 4.0
	cases := []struct {
		name string
		o    ObliviousOutcome
		want float64
	}{
		{"empty", mk(false, false, 0, 0), 0},
		{"only1", mk(true, false, v1, 0), 4 * v1 / 3},
		{"only2", mk(false, true, 0, v2), 4 * v2 / 3},
		{"both", mk(true, true, v1, v2), (8*v1 - 4*v2) / 3},
	}
	for _, c := range cases {
		if got := MaxL2(c.o); !approxEq(got, c.want, 1e-12) {
			t.Errorf("MaxL2 %s = %v, want %v", c.name, got, c.want)
		}
	}
	// max^(U) table of Figure 1.
	ucases := []struct {
		name string
		o    ObliviousOutcome
		want float64
	}{
		{"empty", mk(false, false, 0, 0), 0},
		{"only1", mk(true, false, v1, 0), 2 * v1},
		{"only2", mk(false, true, 0, v2), 2 * v2},
		{"both", mk(true, true, v1, v2), 2*v1 - 2*v2},
	}
	for _, c := range ucases {
		if got := MaxU2(c.o); !approxEq(got, c.want, 1e-12) {
			t.Errorf("MaxU2 %s = %v, want %v", c.name, got, c.want)
		}
	}
	// max^(HT) table of Figure 1.
	if got := MaxHTOblivious(mk(true, true, v1, v2)); !approxEq(got, 4*v1, 1e-12) {
		t.Errorf("MaxHT both = %v, want %v", got, 4*v1)
	}
	if got := MaxHTOblivious(mk(true, false, v1, 0)); got != 0 {
		t.Errorf("MaxHT only1 = %v, want 0", got)
	}
}

func TestVarianceClosedFormsHalf(t *testing.T) {
	p := []float64{0.5, 0.5}
	for _, v := range valueGrid2 {
		_, varL := ObliviousMoments(p, v[:], MaxL2)
		if want := VarMaxL2Half(v[0], v[1]); !approxEq(varL, want, 1e-9) {
			t.Errorf("VarMaxL2Half(%v) = %v, enumeration %v", v, want, varL)
		}
		_, varU := ObliviousMoments(p, v[:], MaxU2)
		if want := VarMaxU2Half(v[0], v[1]); !approxEq(varU, want, 1e-9) {
			t.Errorf("VarMaxU2Half(%v) = %v, enumeration %v", v, want, varU)
		}
		_, varHT := ObliviousMoments(p, v[:], MaxHTOblivious)
		if want := VarMaxHTOblivious2(0.5, 0.5, v[0], v[1]); !approxEq(varHT, want, 1e-9) {
			t.Errorf("VarMaxHTOblivious2(%v) = %v, enumeration %v", v, want, varHT)
		}
	}
}

// TestDominanceOverHT verifies that max^(L), max^(U) and max^(Uas) all
// dominate max^(HT) (Lemma 4.1 and §4.2) on a probability/value grid.
func TestDominanceOverHT(t *testing.T) {
	ests := map[string]func(ObliviousOutcome) float64{
		"L":   MaxL2,
		"U":   MaxU2,
		"Uas": MaxUAsym2,
	}
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			p := []float64{p1, p2}
			for _, v := range valueGrid2 {
				_, varHT := ObliviousMoments(p, v[:], MaxHTOblivious)
				for name, est := range ests {
					_, varE := ObliviousMoments(p, v[:], est)
					if varE > varHT+1e-9*math.Max(1, varHT) {
						t.Errorf("max^(%s) does not dominate HT: p=%v v=%v var=%v varHT=%v",
							name, p, v, varE, varHT)
					}
				}
			}
		}
	}
}

// TestParetoIncomparable confirms Figure 1's message: L wins on similar
// values, U wins on disjoint support, so neither dominates the other.
func TestParetoIncomparable(t *testing.T) {
	p := []float64{0.5, 0.5}
	_, lEqual := ObliviousMoments(p, []float64{1, 1}, MaxL2)
	_, uEqual := ObliviousMoments(p, []float64{1, 1}, MaxU2)
	if !(lEqual < uEqual) {
		t.Errorf("expected VAR[L]=%v < VAR[U]=%v on (1,1)", lEqual, uEqual)
	}
	_, lZero := ObliviousMoments(p, []float64{1, 0}, MaxL2)
	_, uZero := ObliviousMoments(p, []float64{1, 0}, MaxU2)
	if !(uZero < lZero) {
		t.Errorf("expected VAR[U]=%v < VAR[L]=%v on (1,0)", uZero, lZero)
	}
	// Figure 1 constants: VAR[L] = (1/3)max² on v1=v2, (11/9)max² on min=0;
	// VAR[U] = (3/4)max² in both corners.
	if !approxEq(lEqual, 1.0/3, 1e-12) {
		t.Errorf("VAR[L|(1,1)] = %v, want 1/3", lEqual)
	}
	if !approxEq(lZero, 11.0/9, 1e-12) {
		t.Errorf("VAR[L|(1,0)] = %v, want 11/9", lZero)
	}
	// See the erratum note on VarMaxU2Half: the outcome table yields
	// variance max² = 1 in both corners at p = 1/2 (not the 3/4 printed in
	// Figure 1's variance formula).
	if !approxEq(uEqual, 1, 1e-12) || !approxEq(uZero, 1, 1e-12) {
		t.Errorf("VAR[U] = %v, %v, want 1, 1", uEqual, uZero)
	}
}

// TestMaxL2Monotone verifies monotonicity: sampling more entries can only
// increase the estimate for a fixed data vector (Lemma 4.1).
func TestMaxL2Monotone(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			p := []float64{p1, p2}
			for _, v := range valueGrid2 {
				both := MaxL2(ObliviousOutcome{P: p, Sampled: []bool{true, true}, Values: v[:]})
				one := MaxL2(ObliviousOutcome{P: p, Sampled: []bool{true, false}, Values: []float64{v[0], 0}})
				two := MaxL2(ObliviousOutcome{P: p, Sampled: []bool{false, true}, Values: []float64{0, v[1]}})
				if both < one-1e-12 || both < two-1e-12 {
					t.Errorf("MaxL2 not monotone: p=%v v=%v both=%v one=%v two=%v", p, v, both, one, two)
				}
				if one < 0 || two < 0 || both < 0 {
					t.Errorf("MaxL2 negative: p=%v v=%v", p, v)
				}
			}
		}
	}
}

// TestMaxEstimatorsNonnegativeQuick drives nonnegativity with random
// outcomes via testing/quick.
func TestMaxEstimatorsNonnegativeQuick(t *testing.T) {
	f := func(v1, v2, q1, q2, u1, u2 float64) bool {
		v1, v2 = 1000*frac(v1), 1000*frac(v2)
		p1 := 0.05 + 0.95*frac(q1)
		p2 := 0.05 + 0.95*frac(q2)
		o := SampleOblivious([]float64{v1, v2}, []float64{frac(u1), frac(u2)}, []float64{p1, p2})
		return MaxL2(o) >= -1e-12 && MaxU2(o) >= -1e-12 && MaxUAsym2(o) >= -1e-12 && MaxHTOblivious(o) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	x = math.Abs(x)
	x -= math.Floor(x)
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return x
}

// TestRangeAndMinHTOptimal verifies the §4 claim that for r=2 the HT
// estimators of RG and min are unbiased (optimality is analytic; here we
// lock in unbiasedness and the all-sampled support).
func TestRangeAndMinHTOptimal(t *testing.T) {
	for _, p1 := range probGrid {
		for _, p2 := range probGrid {
			p := []float64{p1, p2}
			for _, v := range valueGrid2 {
				mean, _ := ObliviousMoments(p, v[:], RangeHTOblivious)
				if want := math.Abs(v[0] - v[1]); !approxEq(mean, want, 1e-12) {
					t.Errorf("RangeHT biased: p=%v v=%v mean=%v want=%v", p, v, mean, want)
				}
				mean, _ = ObliviousMoments(p, v[:], MinHTOblivious)
				if want := math.Min(v[0], v[1]); !approxEq(mean, want, 1e-12) {
					t.Errorf("MinHT biased: p=%v v=%v mean=%v want=%v", p, v, mean, want)
				}
			}
		}
	}
}
