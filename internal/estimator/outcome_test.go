package estimator

import (
	"math"
	"testing"
)

func TestObliviousOutcomeHelpers(t *testing.T) {
	o := ObliviousOutcome{
		P:       []float64{0.5, 0.4, 0.3},
		Sampled: []bool{true, false, true},
		Values:  []float64{2, 0, 7},
	}
	if o.R() != 3 {
		t.Errorf("R = %d", o.R())
	}
	if o.NumSampled() != 2 {
		t.Errorf("NumSampled = %d", o.NumSampled())
	}
	if o.MaxSampled() != 7 {
		t.Errorf("MaxSampled = %v", o.MaxSampled())
	}
	phi := o.DeterminingVector()
	if phi[0] != 2 || phi[1] != 7 || phi[2] != 7 {
		t.Errorf("DeterminingVector = %v", phi)
	}
	empty := ObliviousOutcome{P: o.P, Sampled: make([]bool, 3), Values: make([]float64, 3)}
	if empty.MaxSampled() != 0 || empty.NumSampled() != 0 {
		t.Error("empty outcome helpers wrong")
	}
	for _, x := range empty.DeterminingVector() {
		if x != 0 {
			t.Error("empty determining vector not zero")
		}
	}
}

func TestObliviousOutcomeValidate(t *testing.T) {
	good := ObliviousOutcome{P: []float64{0.5, 1}, Sampled: []bool{true, false}, Values: []float64{1, 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid outcome rejected: %v", err)
	}
	bad := []ObliviousOutcome{
		{P: []float64{0.5}, Sampled: []bool{true, false}, Values: []float64{1, 0}},
		{P: []float64{0, 0.5}, Sampled: []bool{true, false}, Values: []float64{1, 0}},
		{P: []float64{0.5, 1.5}, Sampled: []bool{true, false}, Values: []float64{1, 0}},
		{P: []float64{0.5, math.NaN()}, Sampled: []bool{true, false}, Values: []float64{1, 0}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid outcome accepted", i)
		}
	}
}

func TestPPSOutcomeHelpers(t *testing.T) {
	o := PPSOutcome{
		Tau:     []float64{10, 20},
		U:       []float64{0.3, 0.4},
		Sampled: []bool{true, false},
		Values:  []float64{5, 0},
	}
	if o.R() != 2 || o.NumSampled() != 1 || o.MaxSampled() != 5 {
		t.Error("PPS helpers wrong")
	}
	if got := o.UpperBound(0); got != 5 {
		t.Errorf("UpperBound(sampled) = %v", got)
	}
	if got := o.UpperBound(1); got != 8 {
		t.Errorf("UpperBound(unsampled) = %v, want 0.4·20", got)
	}
	phi := o.DeterminingVector()
	// min{u·τ, max sampled} = min{8, 5} = 5.
	if phi[0] != 5 || phi[1] != 5 {
		t.Errorf("DeterminingVector = %v", phi)
	}
}

func TestMaxLUniformAccessors(t *testing.T) {
	e, err := NewMaxLUniform(4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if e.R() != 4 || e.P() != 0.25 {
		t.Errorf("R/P = %d/%v", e.R(), e.P())
	}
	defer func() {
		if recover() == nil {
			t.Error("PrefixSum(0) did not panic")
		}
	}()
	e.PrefixSum(0)
}

func TestORHTKnownSeedsValues(t *testing.T) {
	p := []float64{0.5, 0.5}
	// Full revelation with OR = 1.
	o := BinaryKnownSeedsOutcome{P: p, U: []float64{0.1, 0.1}, Sampled: []bool{true, false}}
	if got := ORHTKnownSeeds(o); !approxEq(got, 4, 1e-12) {
		t.Errorf("ORHT = %v, want 4", got)
	}
	// Partial revelation: 0.
	o2 := BinaryKnownSeedsOutcome{P: p, U: []float64{0.1, 0.9}, Sampled: []bool{true, false}}
	if got := ORHTKnownSeeds(o2); got != 0 {
		t.Errorf("ORHT partial = %v, want 0", got)
	}
}

func TestDerivedStringRendering(t *testing.T) {
	d, err := Derive(DiscreteProblem{
		P:       []float64{0.5, 0.5},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       orOf,
		Less:    ORLOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
	// One line per outcome.
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != d.Len() {
		t.Errorf("rendered %d lines for %d outcomes", lines, d.Len())
	}
}

func TestDerivedEstimateRejectsUnknown(t *testing.T) {
	d, err := Derive(DiscreteProblem{
		P:       []float64{0.5, 0.5},
		Domains: [][]float64{{0, 1}, {0, 1}},
		F:       orOf,
		Less:    ORLOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Value outside the domain.
	if _, err := d.Estimate(ObliviousOutcome{
		P: []float64{0.5, 0.5}, Sampled: []bool{true, false}, Values: []float64{7, 0},
	}); err == nil {
		t.Error("out-of-domain value accepted")
	}
}
