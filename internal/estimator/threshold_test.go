package estimator

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestThresholdFamilies(t *testing.T) {
	pps := PPSThreshold{TauStar: 10}
	if got := pps.At(0.5); got != 5 {
		t.Errorf("PPS At(0.5) = %v", got)
	}
	if got := pps.InclusionProb(2); got != 0.2 {
		t.Errorf("PPS InclusionProb(2) = %v", got)
	}
	if got := pps.InclusionProb(20); got != 1 {
		t.Errorf("PPS InclusionProb(20) = %v", got)
	}
	exp := EXPThreshold{RankTau: 0.5}
	// v ≥ τ(u) ⟺ 1 − e^{−v·r*} ≥ u, so inclusion prob matches the EXP
	// rank family.
	if got, want := exp.InclusionProb(3), 1-math.Exp(-1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("EXP InclusionProb(3) = %v, want %v", got, want)
	}
	// τ is increasing in u for both families.
	for _, th := range []Threshold{pps, exp} {
		prev := -1.0
		for _, u := range []float64{0, 0.2, 0.5, 0.9, 0.999} {
			cur := th.At(u)
			if cur < prev {
				t.Errorf("threshold not monotone at u=%v", u)
			}
			prev = cur
		}
	}
}

// TestSampleWeightedConsistency: the sampling rule agrees with the
// threshold's inclusion probability empirically.
func TestSampleWeightedConsistency(t *testing.T) {
	rng := randx.New(3)
	for _, th := range []Threshold{PPSThreshold{TauStar: 8}, EXPThreshold{RankTau: 0.3}} {
		for _, v := range []float64{0.5, 2, 10} {
			const n = 200000
			hits := 0
			for i := 0; i < n; i++ {
				o := SampleWeighted([]float64{v}, []float64{rng.Float64()}, []Threshold{th})
				if o.Sampled[0] {
					hits++
				}
			}
			want := th.InclusionProb(v)
			if got := float64(hits) / n; math.Abs(got-want) > 0.005 {
				t.Errorf("%T v=%v: empirical %v, want %v", th, v, got, want)
			}
		}
	}
}

// TestMaxHTWeightedUnbiased: Monte Carlo unbiasedness of the generalized
// HT max estimator for mixed threshold families (one PPS entry, one EXP
// entry) — the §2 general model in action.
func TestMaxHTWeightedUnbiased(t *testing.T) {
	th := []Threshold{PPSThreshold{TauStar: 12}, EXPThreshold{RankTau: 0.15}}
	rng := randx.New(31)
	for _, v := range [][]float64{{5, 3}, {10, 1}, {2, 8}, {4, 4}, {6, 0}} {
		const n = 500000
		var sumMax, sumMin float64
		for i := 0; i < n; i++ {
			o := SampleWeighted(v, []float64{rng.Float64(), rng.Float64()}, th)
			sumMax += MaxHTWeighted(o)
			sumMin += MinHTWeighted(o)
		}
		wantMax := math.Max(v[0], v[1])
		if got := sumMax / n; math.Abs(got-wantMax)/wantMax > 0.03 {
			t.Errorf("v=%v: MaxHTWeighted mean %v, want %v", v, got, wantMax)
		}
		wantMin := math.Min(v[0], v[1])
		got := sumMin / n
		if wantMin == 0 {
			if got != 0 {
				t.Errorf("v=%v: MinHTWeighted mean %v, want 0", v, got)
			}
		} else if math.Abs(got-wantMin)/wantMin > 0.03 {
			t.Errorf("v=%v: MinHTWeighted mean %v, want %v", v, got, wantMin)
		}
	}
}

// TestMaxHTWeightedMatchesPPS: with PPS thresholds the generalized
// estimator coincides with MaxHTPPS on every outcome.
func TestMaxHTWeightedMatchesPPS(t *testing.T) {
	tau := []float64{10, 5}
	th := []Threshold{PPSThreshold{TauStar: 10}, PPSThreshold{TauStar: 5}}
	rng := randx.New(77)
	for i := 0; i < 20000; i++ {
		v := []float64{rng.Float64() * 15, rng.Float64() * 15}
		u := []float64{rng.Float64(), rng.Float64()}
		a := MaxHTPPS(SamplePPS(v, u, tau))
		b := MaxHTWeighted(SampleWeighted(v, u, th))
		if !approxEq(a, b, 1e-12) {
			t.Fatalf("v=%v u=%v: PPS %v vs weighted %v", v, u, a, b)
		}
	}
}

// TestMaxHTWeightedSupport: the estimate is positive iff the outcome
// determines the max.
func TestMaxHTWeightedSupport(t *testing.T) {
	th := []Threshold{EXPThreshold{RankTau: 0.2}, EXPThreshold{RankTau: 0.2}}
	rng := randx.New(41)
	for i := 0; i < 20000; i++ {
		v := []float64{rng.Float64() * 10, rng.Float64() * 10}
		u := []float64{rng.Float64(), rng.Float64()}
		o := SampleWeighted(v, u, th)
		est := MaxHTWeighted(o)
		m := o.MaxSampled()
		determined := m > 0
		for j := 0; j < 2; j++ {
			if !o.Sampled[j] && o.Thresholds[j].At(o.U[j]) > m {
				determined = false
			}
		}
		if determined != (est > 0) {
			t.Fatalf("v=%v u=%v: determined=%v est=%v", v, u, determined, est)
		}
	}
}
