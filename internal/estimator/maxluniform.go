package estimator

import (
	"fmt"
	"math"
	"sort"
)

// MaxLUniform is the order-based estimator max^(L) for any number of
// instances r ≥ 2 under weight-oblivious Poisson sampling with uniform
// inclusion probability p (§4.1, Theorem 4.2, Algorithm 3).
//
// The estimate on an outcome S is a linear combination Σ_i α_i·u_i of the
// sorted determining vector u (the unsampled entries set to the maximum
// sampled value). The coefficients derive from prefix sums A_r,…,A_1
// computed by the triangular recurrence of Theorem 4.2 in O(r²) time.
type MaxLUniform struct {
	r     int
	p     float64
	alpha []float64 // alpha[i] is α_{i+1}
	a     []float64 // a[i] is the prefix sum A_{i+1} = Σ_{j≤i+1} α_j
}

// NewMaxLUniform precomputes the estimator coefficients for r entries
// sampled independently with probability p ∈ (0, 1].
func NewMaxLUniform(r int, p float64) (*MaxLUniform, error) {
	if r < 1 {
		return nil, fmt.Errorf("estimator: MaxLUniform needs r ≥ 1, got %d", r)
	}
	if !(p > 0 && p <= 1) {
		return nil, fmt.Errorf("estimator: MaxLUniform needs p ∈ (0,1], got %v", p)
	}
	a := make([]float64, r+1) // a[h] = A_h; a[0] unused
	q := 1 - p
	a[r] = 1 / (1 - math.Pow(q, float64(r)))
	// Theorem 4.2: for k = 0..r−2,
	//   A_{r−k−1} = (A_{r−k} + t_k) / (1 − (1−p)^{r−k−1})
	//   t_k = Σ_{ℓ=1}^{k} C(k,ℓ)·((1−p)/p)^ℓ ·
	//         (A_{r−k+ℓ} − (1 − (1−p)^{r−k−1})·A_{r−k+ℓ−1})
	for k := 0; k <= r-2; k++ {
		denom := 1 - math.Pow(q, float64(r-k-1))
		t := 0.0
		binom := 1.0 // C(k, ℓ) built incrementally
		ratio := q / p
		rl := 1.0
		for l := 1; l <= k; l++ {
			binom = binom * float64(k-l+1) / float64(l)
			rl *= ratio
			t += binom * rl * (a[r-k+l] - denom*a[r-k+l-1])
		}
		a[r-k-1] = (a[r-k] + t) / denom
	}
	alpha := make([]float64, r)
	alpha[0] = a[1]
	for h := 2; h <= r; h++ {
		alpha[h-1] = a[h] - a[h-1]
	}
	return &MaxLUniform{r: r, p: p, alpha: alpha, a: a}, nil
}

// R returns the number of instances the estimator was built for.
func (e *MaxLUniform) R() int { return e.r }

// P returns the uniform inclusion probability.
func (e *MaxLUniform) P() float64 { return e.p }

// Alpha returns a copy of the coefficient vector (α_1,…,α_r).
func (e *MaxLUniform) Alpha() []float64 {
	return append([]float64(nil), e.alpha...)
}

// PrefixSum returns A_h = Σ_{i≤h} α_i for h in [1, r].
func (e *MaxLUniform) PrefixSum(h int) float64 {
	if h < 1 || h > e.r {
		panic(fmt.Sprintf("estimator: PrefixSum index %d out of range [1,%d]", h, e.r))
	}
	return e.a[h]
}

// Estimate applies max^(L) to an outcome (Algorithm 3, function EST). The
// outcome must have r entries; the P field is ignored (the estimator's own
// uniform p applies).
func (e *MaxLUniform) Estimate(o ObliviousOutcome) float64 {
	if o.R() != e.r {
		panic(fmt.Sprintf("estimator: outcome has r=%d entries, estimator built for r=%d", o.R(), e.r))
	}
	z := make([]float64, 0, e.r)
	for i, s := range o.Sampled {
		if s {
			z = append(z, o.Values[i])
		}
	}
	if len(z) == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(z)))
	// Sorted determining vector: z1 repeated for the r−|S| unsampled
	// entries, then the sampled values in non-increasing order. Using the
	// prefix sum A_{r−|S|} collapses the repeated head.
	est := 0.0
	head := e.r - len(z)
	if head > 0 {
		est += e.a[head] * z[0]
	}
	for j, v := range z {
		est += e.alpha[head+j] * v
	}
	return est
}

// EstimateValues is a convenience wrapper taking the multiset of sampled
// values directly (order irrelevant); pass an empty slice for S = ∅.
func (e *MaxLUniform) EstimateValues(sampledValues []float64) float64 {
	o := ObliviousOutcome{
		P:       make([]float64, e.r),
		Sampled: make([]bool, e.r),
		Values:  make([]float64, e.r),
	}
	for i := range o.P {
		o.P[i] = e.p
	}
	for i, v := range sampledValues {
		o.Sampled[i] = true
		o.Values[i] = v
	}
	return e.Estimate(o)
}
