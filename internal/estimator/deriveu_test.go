package estimator

import (
	"testing"
)

// TestDeriveUMatchesMaxU: Algorithm 2 with the positives partition
// reproduces the symmetric max^(U) closed form on the binary domain,
// on both sides of p1+p2 = 1 and for asymmetric probabilities.
func TestDeriveUMatchesMaxU(t *testing.T) {
	for _, pp := range [][2]float64{
		{0.3, 0.3}, {0.2, 0.6}, {0.6, 0.2}, {0.7, 0.8}, {0.5, 0.5}, {0.25, 0.1},
	} {
		p := []float64{pp[0], pp[1]}
		d, err := DeriveU(DiscreteProblem{
			P:       p,
			Domains: [][]float64{{0, 1}, {0, 1}},
			F:       maxOf,
			Less:    SparseOrder,
		}, PositivesBatch)
		if err != nil {
			t.Fatalf("p=%v: %v", pp, err)
		}
		if !d.Nonnegative() {
			t.Errorf("p=%v: batch derivation negative (min %v)", pp, d.MinEstimate)
		}
		forEachOutcome2(p, [][]float64{{0, 1}, {0, 1}}, func(o ObliviousOutcome) {
			got, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			if want := MaxU2(o); !approxEq(got, want, 1e-7) {
				t.Errorf("p=%v outcome %v/%v: derived %v, closed form %v",
					pp, o.Sampled, o.Values, got, want)
			}
		})
	}
}

// TestDeriveUUnbiasedMultiValue: the batch construction stays exactly
// unbiased on multi-valued domains.
func TestDeriveUUnbiasedMultiValue(t *testing.T) {
	dom := [][]float64{{0, 1, 2}, {0, 1, 2}}
	p := []float64{0.3, 0.45}
	d, err := DeriveU(DiscreteProblem{P: p, Domains: dom, F: maxOf, Less: SparseOrder}, PositivesBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nonnegative() {
		t.Errorf("negative estimates: min %v", d.MinEstimate)
	}
	for _, v1 := range dom[0] {
		for _, v2 := range dom[1] {
			v := []float64{v1, v2}
			mean, _ := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
				x, err := d.Estimate(o)
				if err != nil {
					t.Fatal(err)
				}
				return x
			})
			if !approxEq(mean, maxOf(v), 1e-7) {
				t.Errorf("v=%v: mean %v, want %v", v, mean, maxOf(v))
			}
		}
	}
}

// TestDeriveUSymmetric: with uniform probabilities, the batch estimator is
// symmetric — permuting entries leaves the estimate unchanged — unlike
// the ≺-ordered f̂(+≺) (which reproduces the asymmetric Uas).
func TestDeriveUSymmetric(t *testing.T) {
	p := []float64{0.3, 0.3}
	dom := [][]float64{{0, 1, 2}, {0, 1, 2}}
	d, err := DeriveU(DiscreteProblem{P: p, Domains: dom, F: maxOf, Less: SparseOrder}, PositivesBatch)
	if err != nil {
		t.Fatal(err)
	}
	check := func(s1, s2 bool, v1, v2 float64) {
		a, err := d.Estimate(ObliviousOutcome{P: p, Sampled: []bool{s1, s2}, Values: []float64{v1, v2}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Estimate(ObliviousOutcome{P: p, Sampled: []bool{s2, s1}, Values: []float64{v2, v1}})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(a, b, 1e-8) {
			t.Errorf("asymmetry at (%v,%v)/(%v,%v): %v vs %v", s1, v1, s2, v2, a, b)
		}
	}
	check(true, false, 1, 0)
	check(true, true, 2, 1)
	check(true, true, 1, 0)
	check(false, true, 0, 2)
}

// TestDeriveUBatchVarianceBelowUas: on the (1,0)+(0,1) pair the symmetric
// batch solution has total variance no larger than the asymmetric
// sequential one (it minimizes exactly that total), while Uas is better
// on (1,0) alone — the §4.2 Pareto story.
func TestDeriveUBatchVarianceBelowUas(t *testing.T) {
	p := []float64{0.3, 0.3}
	prob := DiscreteProblem{P: p, Domains: [][]float64{{0, 1}, {0, 1}}, F: maxOf, Less: SparseOrder}
	u, err := DeriveU(prob, PositivesBatch)
	if err != nil {
		t.Fatal(err)
	}
	probUas := prob
	probUas.Less = UasOrder
	uas, err := DerivePlus(probUas)
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(d *Derived, v []float64) float64 {
		_, vr := ObliviousMoments(p, v, func(o ObliviousOutcome) float64 {
			x, err := d.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			return x
		})
		return vr
	}
	uPair := varOf(u, []float64{1, 0}) + varOf(u, []float64{0, 1})
	uasPair := varOf(uas, []float64{1, 0}) + varOf(uas, []float64{0, 1})
	if uPair > uasPair+1e-9 {
		t.Errorf("batch pair variance %v above sequential %v", uPair, uasPair)
	}
	if varOf(uas, []float64{1, 0}) > varOf(u, []float64{1, 0})+1e-9 {
		t.Errorf("Uas should win on its prioritized vector (1,0)")
	}
}

// TestDeriveUZeroBatchFirst: the all-zero vector forms batch 0 and pins
// its outcomes to 0.
func TestDeriveUZeroBatchFirst(t *testing.T) {
	p := []float64{0.4, 0.4}
	d, err := DeriveU(DiscreteProblem{
		P: p, Domains: [][]float64{{0, 1}, {0, 1}}, F: maxOf, Less: SparseOrder,
	}, PositivesBatch)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []ObliviousOutcome{
		{P: p, Sampled: []bool{false, false}, Values: []float64{0, 0}},
		{P: p, Sampled: []bool{true, false}, Values: []float64{0, 0}},
		{P: p, Sampled: []bool{true, true}, Values: []float64{0, 0}},
	} {
		got, err := d.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("zero-consistent outcome %v has estimate %v", o.Sampled, got)
		}
	}
}
