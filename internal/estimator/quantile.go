package estimator

import (
	"fmt"
	"math"
	"sort"
)

// HT estimators for the remaining §2 primitives: the ℓ-th largest entry
// and the exponentiated range RG^d. Under weight-oblivious Poisson
// sampling these inverse-probability estimators are unbiased and
// nonnegative; HT is Pareto optimal for min (any r) and for RG at r = 2,
// and suboptimal for the interior quantiles (§4) — which is precisely the
// paper's motivation for the order-based machinery.

// LthHTOblivious estimates the ℓ-th largest entry (1-based) with inverse
// probability weighting over fully sampled outcomes.
func LthHTOblivious(o ObliviousOutcome, l int) float64 {
	if l < 1 || l > o.R() {
		panic(fmt.Sprintf("estimator: quantile index %d out of range [1,%d]", l, o.R()))
	}
	return HTOblivious(o, func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Sort(sort.Reverse(sort.Float64Slice(s)))
		return s[l-1]
	})
}

// RGdHTOblivious estimates RG(v)^d = (max−min)^d with inverse probability
// weighting over fully sampled outcomes.
func RGdHTOblivious(o ObliviousOutcome, d float64) float64 {
	return HTOblivious(o, func(v []float64) float64 {
		rg := maxOf(v) - minOf(v)
		switch d {
		case 1:
			return rg
		case 2:
			return rg * rg
		}
		return math.Pow(rg, d)
	})
}
