package estimator

import (
	"fmt"
	"math"
	"sort"
)

// HT estimators for the remaining §2 primitives: the ℓ-th largest entry
// and the exponentiated range RG^d. Under weight-oblivious Poisson
// sampling these inverse-probability estimators are unbiased and
// nonnegative; HT is Pareto optimal for min (any r) and for RG at r = 2,
// and suboptimal for the interior quantiles (§4) — which is precisely the
// paper's motivation for the order-based machinery.

// LthHTOblivious estimates the ℓ-th largest entry (1-based) with inverse
// probability weighting over fully sampled outcomes.
func LthHTOblivious(o ObliviousOutcome, l int) float64 {
	if l < 1 || l > o.R() {
		panic(fmt.Sprintf("estimator: quantile index %d out of range [1,%d]", l, o.R()))
	}
	return HTOblivious(o, func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Sort(sort.Reverse(sort.Float64Slice(s)))
		return s[l-1]
	})
}

// LthHTPPS estimates the ℓ-th largest entry (1-based) under independent
// Poisson PPS sampling with known seeds — the §5.2 analogue of
// LthHTOblivious, generalizing MaxHTPPS (the ℓ = 1 case) to interior
// quantiles.
//
// The estimate is positive exactly on outcomes that determine the ℓ-th
// largest value x: the ℓ-th largest sampled value exists and the revealed
// upper bound of every unsampled entry is at most x. On that event every
// entry with value ≥ x is sampled (an unsampled entry's bound strictly
// exceeds its value), so x is known exactly, and the event's probability
// factorizes as Π_{v_i ≥ x} min(1, v_i/τ_i) · Π_{v_i < x} min(1, x/τ_i) —
// computable from the outcome alone, because entries below x contribute a
// factor depending only on x. Inverse-probability weighting over this
// event is therefore well-defined and unbiased.
func LthHTPPS(o PPSOutcome, l int) float64 {
	if l < 1 || l > o.R() {
		panic(fmt.Sprintf("estimator: quantile index %d out of range [1,%d]", l, o.R()))
	}
	z := make([]float64, 0, o.R())
	for i, s := range o.Sampled {
		if s {
			z = append(z, o.Values[i])
		}
	}
	if len(z) < l {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(z)))
	x := z[l-1]
	if x <= 0 {
		return 0
	}
	p := 1.0
	for i, s := range o.Sampled {
		switch {
		case s && o.Values[i] >= x:
			p *= math.Min(1, o.Values[i]/o.Tau[i])
		case s:
			p *= math.Min(1, x/o.Tau[i])
		default:
			if o.U[i]*o.Tau[i] > x {
				return 0
			}
			p *= math.Min(1, x/o.Tau[i])
		}
	}
	if p <= 0 {
		return 0
	}
	return x / p
}

// RGdHTOblivious estimates RG(v)^d = (max−min)^d with inverse probability
// weighting over fully sampled outcomes.
func RGdHTOblivious(o ObliviousOutcome, d float64) float64 {
	return HTOblivious(o, func(v []float64) float64 {
		rg := maxOf(v) - minOf(v)
		switch d {
		case 1:
			return rg
		case 2:
			return rg * rg
		}
		return math.Pow(rg, d)
	})
}
