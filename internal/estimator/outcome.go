// Package estimator implements the paper's unbiased estimators for
// multi-instance functions over sampled data vectors, together with the
// machinery to derive, validate and measure them.
//
// The estimated quantity is f(v) for a single key's value vector
// v = (v_1,…,v_r) across r dispersed instances. An estimator sees only an
// outcome: which entries were sampled, their exact values, and — in the
// "known seeds" model — the random seeds used by the sampling scheme.
//
// Three outcome models are supported, mirroring the paper's sections:
//
//   - ObliviousOutcome: weight-oblivious Poisson sampling (§4) — entry i is
//     sampled with probability p_i independently of its value.
//   - BinaryKnownSeedsOutcome: weighted Poisson sampling of binary data with
//     known seeds (§5.1), reducible to the oblivious model.
//   - PPSOutcome: weighted Poisson PPS sampling of nonnegative reals with
//     known seeds (§5.2).
package estimator

import (
	"errors"
	"fmt"
)

// ObliviousOutcome is the outcome of weight-oblivious Poisson sampling of a
// data vector: entry i was sampled independently with probability P[i]; for
// sampled entries the exact value (possibly zero) is known.
type ObliviousOutcome struct {
	// P holds the per-entry inclusion probabilities, all in (0, 1].
	P []float64
	// Sampled marks which entries were sampled.
	Sampled []bool
	// Values holds the exact values of sampled entries; entries with
	// Sampled[i]==false are ignored.
	Values []float64
}

// R returns the number of entries (instances).
func (o ObliviousOutcome) R() int { return len(o.P) }

// NumSampled returns |S|, the number of sampled entries.
func (o ObliviousOutcome) NumSampled() int {
	n := 0
	for _, s := range o.Sampled {
		if s {
			n++
		}
	}
	return n
}

// MaxSampled returns the maximum sampled value, or 0 when S is empty.
func (o ObliviousOutcome) MaxSampled() float64 {
	m := 0.0
	first := true
	for i, s := range o.Sampled {
		if !s {
			continue
		}
		if first || o.Values[i] > m {
			m = o.Values[i]
			first = false
		}
	}
	return m
}

// Validate checks structural invariants. Estimator functions assume a valid
// outcome; call Validate at trust boundaries.
func (o ObliviousOutcome) Validate() error {
	if len(o.Sampled) != len(o.P) || len(o.Values) != len(o.P) {
		return errors.New("estimator: outcome slices have mismatched lengths")
	}
	for i, p := range o.P {
		if !(p > 0 && p <= 1) {
			return fmt.Errorf("estimator: inclusion probability p[%d]=%v outside (0,1]", i, p)
		}
	}
	return nil
}

// DeterminingVector returns φ(S) under the §4.1 order: sampled entries keep
// their values and unsampled entries are set to the maximum sampled value
// (the ≺-minimal vector consistent with the outcome). For the empty outcome
// this is the zero vector.
func (o ObliviousOutcome) DeterminingVector() []float64 {
	m := o.MaxSampled()
	phi := make([]float64, o.R())
	for i := range phi {
		if o.Sampled[i] {
			phi[i] = o.Values[i]
		} else {
			phi[i] = m
		}
	}
	return phi
}

// BinaryKnownSeedsOutcome is the outcome of weighted Poisson sampling of a
// binary data vector with known seeds (§5.1): entry i is sampled iff
// v_i = 1 and U[i] ≤ P[i]. Because the seed is known, an unsampled entry
// with U[i] ≤ P[i] is revealed to be zero.
type BinaryKnownSeedsOutcome struct {
	// P holds the inclusion probabilities of one-valued entries.
	P []float64
	// U holds the known uniform seeds.
	U []float64
	// Sampled marks the entries included in the sample (all have value 1).
	Sampled []bool
}

// ToOblivious maps the outcome to the equivalent weight-oblivious outcome
// (the 1-1 information-preserving mapping of §5): entry i is "sampled" in
// the oblivious sense iff U[i] ≤ P[i]; its revealed value is 1 when i was in
// the weighted sample and 0 otherwise.
func (o BinaryKnownSeedsOutcome) ToOblivious() ObliviousOutcome {
	r := len(o.P)
	out := ObliviousOutcome{
		P:       o.P,
		Sampled: make([]bool, r),
		Values:  make([]float64, r),
	}
	for i := 0; i < r; i++ {
		switch {
		case o.Sampled[i]:
			out.Sampled[i] = true
			out.Values[i] = 1
		case o.U[i] <= o.P[i]:
			out.Sampled[i] = true
			out.Values[i] = 0
		}
	}
	return out
}

// PPSOutcome is the outcome of independent Poisson PPS sampling with known
// seeds (§5.2): entry i is sampled iff V[i] ≥ U[i]·Tau[i], i.e. with
// probability min{1, V[i]/Tau[i]}. For an unsampled entry the known seed
// yields the upper bound V[i] < U[i]·Tau[i].
type PPSOutcome struct {
	// Tau holds the per-entry PPS thresholds τ*_i > 0.
	Tau []float64
	// U holds the known uniform seeds.
	U []float64
	// Sampled marks the sampled entries.
	Sampled []bool
	// Values holds the exact values of sampled entries.
	Values []float64
}

// R returns the number of entries.
func (o PPSOutcome) R() int { return len(o.Tau) }

// MaxSampled returns the maximum sampled value, or 0 when S is empty.
func (o PPSOutcome) MaxSampled() float64 {
	m := 0.0
	for i, s := range o.Sampled {
		if s && o.Values[i] > m {
			m = o.Values[i]
		}
	}
	return m
}

// UpperBound returns the revealed upper bound on entry i: the exact value
// when sampled, otherwise U[i]·Tau[i] (exclusive).
func (o PPSOutcome) UpperBound(i int) float64 {
	if o.Sampled[i] {
		return o.Values[i]
	}
	return o.U[i] * o.Tau[i]
}

// DeterminingVector returns φ(S) under the §5.2 order: 0 for the empty
// outcome; otherwise sampled entries keep their values and each unsampled
// entry i gets min{max sampled value, U[i]·Tau[i]}.
func (o PPSOutcome) DeterminingVector() []float64 {
	phi := make([]float64, o.R())
	m := o.MaxSampled()
	if o.NumSampled() == 0 {
		return phi
	}
	for i := range phi {
		if o.Sampled[i] {
			phi[i] = o.Values[i]
		} else {
			b := o.U[i] * o.Tau[i]
			if b > m {
				b = m
			}
			phi[i] = b
		}
	}
	return phi
}

// NumSampled returns |S|.
func (o PPSOutcome) NumSampled() int {
	n := 0
	for _, s := range o.Sampled {
		if s {
			n++
		}
	}
	return n
}

// SamplePPS materializes the PPS outcome for data vector v with seeds u and
// thresholds tau. It is the reference sampling procedure used by tests,
// experiments and the aggregate layer.
func SamplePPS(v, u, tau []float64) PPSOutcome {
	r := len(v)
	o := PPSOutcome{Tau: tau, U: u, Sampled: make([]bool, r), Values: make([]float64, r)}
	for i := 0; i < r; i++ {
		if v[i] >= u[i]*tau[i] && v[i] > 0 {
			o.Sampled[i] = true
			o.Values[i] = v[i]
		}
	}
	return o
}

// SampleOblivious materializes the weight-oblivious outcome for data vector
// v with seeds u and inclusion probabilities p.
func SampleOblivious(v, u, p []float64) ObliviousOutcome {
	r := len(v)
	o := ObliviousOutcome{P: p, Sampled: make([]bool, r), Values: make([]float64, r)}
	for i := 0; i < r; i++ {
		if u[i] < p[i] {
			o.Sampled[i] = true
			o.Values[i] = v[i]
		}
	}
	return o
}

// SampleBinaryKnownSeeds materializes the weighted binary outcome for data
// vector v ∈ {0,1}^r with seeds u and one-value inclusion probabilities p.
func SampleBinaryKnownSeeds(v []float64, u, p []float64) BinaryKnownSeedsOutcome {
	r := len(v)
	o := BinaryKnownSeedsOutcome{P: p, U: u, Sampled: make([]bool, r)}
	for i := 0; i < r; i++ {
		o.Sampled[i] = v[i] > 0 && u[i] <= p[i]
	}
	return o
}
