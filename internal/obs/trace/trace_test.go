package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Flags: 0x01}
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("Traceparent() = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	cases := map[string]string{
		"empty":               "",
		"short":               valid[:54],
		"version ff":          "ff" + valid[2:],
		"uppercase version":   "0A" + valid[2:],
		"uppercase trace id":  "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"non-hex trace id":    "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",
		"zero trace id":       "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero span id":        "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"non-hex flags":       valid[:53] + "zz",
		"missing dash":        "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"dash misplaced":      "00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01",
		"v00 trailing":        valid + "-extra",
		"v00 trailing junk":   valid + "x",
		"future-ver no dash":  "01" + valid[2:] + "x",
		"non-hex version":     "zz" + valid[2:],
		"whole header spaces": strings.Repeat(" ", 55),
	}
	for name, in := range cases {
		if _, ok := ParseTraceparent(in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, in)
		}
	}
	// Future versions are accepted at exactly 55 bytes or when extra
	// fields continue with a dash.
	for _, in := range []string{"01" + valid[2:], "01" + valid[2:] + "-anything"} {
		sc, ok := ParseTraceparent(in)
		if !ok {
			t.Errorf("future version rejected: %q", in)
		}
		if !sc.Valid() {
			t.Errorf("future version parsed invalid context: %q", in)
		}
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-tail")
	f.Add(strings.Repeat("0", 55))
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		sc, ok := ParseTraceparent(in)
		if !ok {
			// Invalid input must yield the zero context so callers mint
			// a fresh root.
			if sc != (SpanContext{}) {
				t.Fatalf("rejected input %q returned non-zero context %+v", in, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted input %q parsed to invalid context", in)
		}
		// Whatever we accept must round-trip through our own rendering.
		again, ok2 := ParseTraceparent(sc.Traceparent())
		if !ok2 || again != sc {
			t.Fatalf("round trip of accepted %q: got %+v ok=%v", in, again, ok2)
		}
	})
}

func TestSpanParentageAndPublish(t *testing.T) {
	tr := New(4)
	root := tr.StartSpan("GET /v1/query", SpanContext{})
	if root == nil {
		t.Fatal("enabled tracer returned nil root")
	}
	child := root.StartChild("store.append")
	grand := child.StartChild("wal.fsync")
	grand.SetInt("bytes", 512)
	grand.Finish()
	child.SetAttr("dataset", "flows")
	child.Finish()
	root.Finish()

	recs := tr.Traces()
	if len(recs) != 1 {
		t.Fatalf("Traces() = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != root.TraceID() || rec.RemoteParent {
		t.Fatalf("record identity: %+v", rec)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	if byName["GET /v1/query"].ParentID != "" {
		t.Fatalf("fresh root has parent %q", byName["GET /v1/query"].ParentID)
	}
	if byName["store.append"].ParentID != byName["GET /v1/query"].SpanID {
		t.Fatalf("child parent = %q, want root %q",
			byName["store.append"].ParentID, byName["GET /v1/query"].SpanID)
	}
	if byName["wal.fsync"].ParentID != byName["store.append"].SpanID {
		t.Fatalf("grandchild parent = %q, want %q",
			byName["wal.fsync"].ParentID, byName["store.append"].SpanID)
	}
	if got := byName["wal.fsync"].Attrs; len(got) != 1 || got[0] != (Attr{"bytes", "512"}) {
		t.Fatalf("grandchild attrs = %+v", got)
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	remote, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("seed header rejected")
	}
	tr := New(4)
	root := tr.StartSpan("server", remote)
	if root.Context().TraceID != remote.TraceID {
		t.Fatal("root did not continue remote trace ID")
	}
	if root.Context().SpanID == remote.SpanID {
		t.Fatal("root reused remote span ID")
	}
	root.Finish()
	rec := tr.Traces()[0]
	if !rec.RemoteParent {
		t.Fatal("record not marked remote_parent")
	}
	if rec.Spans[0].ParentID != "b7ad6b7169203331" {
		t.Fatalf("root parent = %q, want remote span", rec.Spans[0].ParentID)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	tr := New(2)
	names := []string{"first", "second", "third"}
	for _, n := range names {
		tr.StartSpan(n, SpanContext{}).Finish()
	}
	recs := tr.Traces()
	if len(recs) != 2 {
		t.Fatalf("ring holds %d, want 2", len(recs))
	}
	// Newest first; "first" evicted.
	if recs[0].Spans[0].Name != "third" || recs[1].Spans[0].Name != "second" {
		t.Fatalf("eviction order wrong: %q, %q",
			recs[0].Spans[0].Name, recs[1].Spans[0].Name)
	}
}

func TestDisabledTracerIsInertAndAllocFree(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Enabled() || nilTracer.StartSpan("x", SpanContext{}) != nil {
		t.Fatal("nil tracer not inert")
	}
	if nilTracer.Traces() != nil {
		t.Fatal("nil tracer returned traces")
	}

	off := New(2)
	off.SetEnabled(false)
	if off.Enabled() || off.StartSpan("x", SpanContext{}) != nil {
		t.Fatal("disabled tracer not inert")
	}

	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		s := off.StartSpan("req", SpanContext{})
		c := s.StartChild("child")
		c.SetAttr("k", "v")
		c.SetInt("n", 42)
		c.SetFloat("f", 0.5)
		c.Finish()
		sub := ContextWithSpan(ctx, s)
		SpanFromContext(sub).Finish()
		s.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v per op, want 0", allocs)
	}
}

func TestUnfinishedChildRecordedAtPublish(t *testing.T) {
	tr := New(2)
	root := tr.StartSpan("root", SpanContext{})
	_ = root.StartChild("left-open")
	time.Sleep(time.Millisecond)
	root.Finish()
	rec := tr.Traces()[0]
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	for _, s := range rec.Spans {
		if s.DurationUS < 0 {
			t.Fatalf("span %q has negative duration", s.Name)
		}
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := New(2)
	root := tr.StartSpan("root", SpanContext{})
	root.Finish()
	root.Finish()
	if n := len(tr.Traces()); n != 1 {
		t.Fatalf("double Finish published %d records, want 1", n)
	}
}
