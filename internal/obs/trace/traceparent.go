package trace

// W3C trace-context (traceparent) parsing and formatting. The header is
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00      -  32 hex   -   16 hex    -    2 hex
//
// parsed strictly: lowercase hex only, all-zero trace or span IDs are
// invalid, version ff is invalid, and a version-00 header must be exactly
// 55 bytes. Higher versions are accepted when they are either exactly 55
// bytes or continue with a dash (forward compatibility per the spec);
// anything else is rejected and the caller starts a fresh root trace.

const traceparentLen = 55 // "00-" + 32 + "-" + 16 + "-" + 2

// SpanContext is the wire identity of one span: the trace it belongs to,
// its own span ID, and the trace flags. The zero value is invalid.
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether both IDs are non-zero, the W3C condition for a
// usable parent context.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// Traceparent renders the context as a version-00 traceparent header
// value.
func (sc SpanContext) Traceparent() string {
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hexEncode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hexEncode(b[36:52], sc.SpanID[:])
	b[52] = '-'
	b[53] = hexDigit(sc.Flags >> 4)
	b[54] = hexDigit(sc.Flags & 0x0f)
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value. ok is false for
// any malformed input — wrong length, uppercase or non-hex digits,
// all-zero IDs, version ff, or a version-00 header with trailing bytes —
// in which case the caller must ignore the header and mint a new trace.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	if len(s) < traceparentLen {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	version, ok := hexDecodeByte(s[0], s[1])
	if !ok || version == 0xff {
		return SpanContext{}, false
	}
	if len(s) > traceparentLen {
		// Version 00 is exactly 55 bytes; future versions may append
		// dash-separated fields we ignore.
		if version == 0 || s[traceparentLen] != '-' {
			return SpanContext{}, false
		}
	}
	if !hexDecode(sc.TraceID[:], s[3:35]) || !hexDecode(sc.SpanID[:], s[36:52]) {
		return SpanContext{}, false
	}
	flags, ok := hexDecodeByte(s[53], s[54])
	if !ok {
		return SpanContext{}, false
	}
	sc.Flags = flags
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

const hexDigits = "0123456789abcdef"

func hexDigit(v byte) byte { return hexDigits[v&0x0f] }

// hexEncode writes src as lowercase hex into dst (len(dst) = 2*len(src)).
func hexEncode(dst, src []byte) {
	for i, b := range src {
		dst[2*i] = hexDigit(b >> 4)
		dst[2*i+1] = hexDigit(b & 0x0f)
	}
}

// hexDecode fills dst from the lowercase-hex string s, reporting whether
// every digit was valid. len(s) must be 2*len(dst).
func hexDecode(dst []byte, s string) bool {
	for i := range dst {
		b, ok := hexDecodeByte(s[2*i], s[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}

// hexDecodeByte decodes two lowercase-hex digits. Uppercase is invalid
// on the wire per the W3C spec.
func hexDecodeByte(hi, lo byte) (byte, bool) {
	h, ok := hexNibble(hi)
	if !ok {
		return 0, false
	}
	l, ok := hexNibble(lo)
	if !ok {
		return 0, false
	}
	return h<<4 | l, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// hexString renders b as a lowercase-hex string (for JSON records and
// log fields).
func hexString(b []byte) string {
	out := make([]byte, 2*len(b))
	hexEncode(out, b)
	return string(out)
}
