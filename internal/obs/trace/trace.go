// Package trace is the request-tracing half of the observability
// substrate: a dependency-free span recorder with W3C traceparent
// propagation and a bounded in-memory ring of completed traces.
//
// The design rules mirror package obs:
//
//   - Disabled tracing costs nothing. Every recording method is safe on
//     a nil *Span / nil *Tracer, and a constructed Tracer that is
//     switched off answers StartSpan with nil after one atomic load. The
//     fast paths are `//summarylint:hot` — lint-enforced to allocate
//     only when a span actually exists.
//
//   - Span timing is monotonic: start is a time.Time carrying the
//     monotonic clock reading, durations come from time.Since.
//
//   - Completed traces are published to a fixed-capacity ring when the
//     root span finishes; the ring holds deep-copied records, so a
//     published trace is immutable and safe to serve from /debug/traces
//     while new requests record concurrently.
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings;
// numeric helpers format at record time (the slow path).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is the published form of one span.
type SpanRecord struct {
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Record is one completed trace as served by /debug/traces: the trace
// ID, whether the root continued a remote (inbound traceparent) parent,
// and every span recorded under it in start order.
type Record struct {
	TraceID      string       `json:"trace_id"`
	RemoteParent bool         `json:"remote_parent,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// Tracer owns the enabled switch and the ring of recent traces. A nil
// *Tracer is a valid, permanently-off tracer; a constructed one can be
// toggled at runtime with SetEnabled. All methods are safe for
// concurrent use.
//
//summarylint:nilsafe
type Tracer struct {
	enabled atomic.Bool

	mu    sync.Mutex
	ring  []Record // fixed capacity; next is the oldest slot once full
	next  int
	count int
}

// DefaultRing is the default capacity of the completed-trace ring.
const DefaultRing = 128

// New returns an enabled Tracer retaining the last ringCap completed
// traces (DefaultRing when ringCap <= 0).
func New(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRing
	}
	t := &Tracer{ring: make([]Record, 0, ringCap)}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips recording at runtime. Disabling does not clear the
// ring; already-published traces remain visible.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.enabled.Store(on)
}

// Enabled reports whether StartSpan currently records.
//
//summarylint:hot
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	return t.enabled.Load()
}

// StartSpan opens a root span. When remote is valid (a parsed inbound
// traceparent) the new trace continues that trace ID with the remote
// span as parent; otherwise a fresh trace ID is minted with the sampled
// flag set. Returns nil — record nothing, allocate nothing — when the
// tracer is nil or disabled.
//
//summarylint:hot
func (t *Tracer) StartSpan(name string, remote SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !t.enabled.Load() {
		return nil
	}
	return t.startSpanSlow(name, remote)
}

// startSpanSlow is the recording path of StartSpan.
func (t *Tracer) startSpanSlow(name string, remote SpanContext) *Span {
	tr := &traceState{tracer: t}
	s := &Span{t: tr, name: name, start: time.Now()}
	if remote.Valid() {
		s.ctx.TraceID = remote.TraceID
		s.ctx.Flags = remote.Flags
		s.parent = remote.SpanID
		tr.remoteParent = true
	} else {
		randBytes(s.ctx.TraceID[:])
		s.ctx.Flags = 0x01 // sampled
	}
	randBytes(s.ctx.SpanID[:])
	tr.root = s
	tr.spans = append(tr.spans, s)
	return s
}

// publish deep-copies a finished trace into the ring, evicting the
// oldest record once the ring is at capacity.
func (t *Tracer) publish(rec Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count < cap(t.ring) {
		t.ring = append(t.ring, rec)
		t.count++
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % cap(t.ring)
}

// Traces snapshots the ring, newest trace first.
func (t *Tracer) Traces() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, t.count)
	// Ring order is oldest→newest starting at next; walk it backwards.
	for i := t.count - 1; i >= 0; i-- {
		out = append(out, t.ring[(t.next+i)%t.count])
	}
	return out
}

// traceState is the shared mutable state of one in-flight trace: its
// spans and the lock serializing recording across goroutines (a request
// handler and the store can annotate concurrently).
type traceState struct {
	tracer       *Tracer
	remoteParent bool

	mu        sync.Mutex
	spans     []*Span
	root      *Span
	published bool
}

// Span is one timed operation inside a trace. A nil *Span is the
// disabled tracer's span: every method is a guarded no-op, so call
// sites never branch on tracing themselves.
//
//summarylint:nilsafe
type Span struct {
	t      *traceState
	ctx    SpanContext
	parent [8]byte // zero for a fresh root
	name   string
	start  time.Time
	dur    time.Duration
	done   bool
	attrs  []Attr
}

// Context returns the span's wire identity for traceparent injection.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// TraceID returns the lowercase-hex trace ID, the correlation key
// between slog lines and /debug/traces ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hexString(s.ctx.TraceID[:])
}

// StartChild opens a sub-span under s. Returns nil on a nil receiver,
// so span trees built on a disabled tracer stay free.
//
//summarylint:hot
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.startChildSlow(name)
}

func (s *Span) startChildSlow(name string) *Span {
	c := &Span{t: s.t, name: name, start: time.Now()}
	c.ctx.TraceID = s.ctx.TraceID
	c.ctx.Flags = s.ctx.Flags
	c.parent = s.ctx.SpanID
	randBytes(c.ctx.SpanID[:])
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, c)
	s.t.mu.Unlock()
	return c
}

// SetAttr annotates the span with a string attribute.
//
//summarylint:hot
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.setAttrSlow(key, value)
}

func (s *Span) setAttrSlow(key, value string) {
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// SetInt annotates the span with an integer attribute.
//
//summarylint:hot
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.setAttrSlow(key, strconv.FormatInt(value, 10))
}

// SetFloat annotates the span with a float attribute (shortest
// round-trip rendering).
//
//summarylint:hot
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.setAttrSlow(key, strconv.FormatFloat(value, 'g', -1, 64))
}

// Finish stops the span's clock. Finishing the root span publishes the
// whole trace to the tracer's ring; spans still open at that point are
// recorded with the duration they had accumulated. Finish is idempotent.
//
//summarylint:hot
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.finishSlow()
}

func (s *Span) finishSlow() {
	t := s.t
	t.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	isRoot := s == t.root && !t.published
	if isRoot {
		t.published = true
	}
	var rec Record
	if isRoot {
		rec = t.recordLocked()
	}
	t.mu.Unlock()
	if isRoot {
		t.tracer.publish(rec)
	}
}

// recordLocked renders the trace's current state as an immutable Record.
// Caller holds t.mu.
func (t *traceState) recordLocked() Record {
	rec := Record{
		TraceID:      hexString(t.root.ctx.TraceID[:]),
		RemoteParent: t.remoteParent,
		Spans:        make([]SpanRecord, len(t.spans)),
	}
	for i, s := range t.spans {
		sr := SpanRecord{
			SpanID: hexString(s.ctx.SpanID[:]),
			Name:   s.name,
			Start:  s.start,
		}
		if s.parent != [8]byte{} {
			sr.ParentID = hexString(s.parent[:])
		}
		dur := s.dur
		if !s.done {
			dur = time.Since(s.start)
		}
		sr.DurationUS = dur.Microseconds()
		if len(s.attrs) > 0 {
			sr.Attrs = append([]Attr(nil), s.attrs...)
		}
		rec.Spans[i] = sr
	}
	return rec
}

// randBytes fills b from math/rand/v2's global source — span IDs need
// uniqueness, not unpredictability.
func randBytes(b []byte) {
	for len(b) >= 8 {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		b = b[8:]
	}
	if len(b) > 0 {
		v := rand.Uint64()
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
}

// ctxKey is the context key carrying the current span.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged, so the disabled path allocates no context frame.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil
// result composes: methods on the nil span are no-ops.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
