package obs_test

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func render(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("test_requests_total", "requests served", obs.Labels{"endpoint": "/v1/query", "code": "2xx"})
	g := r.Gauge("test_in_flight", "requests in flight", nil)
	r.CounterFunc("test_pairs_total", "pairs", nil, func() uint64 { return 42 })
	r.GaugeFunc(
		"test_chain", "chain length", obs.Labels{"kind": "snap"}, func() float64 { return 3 })

	c.Add(4)
	c.Inc()
	g.Set(7)
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_requests_total counter\n",
		`test_requests_total{code="2xx",endpoint="/v1/query"} 5` + "\n",
		"# TYPE test_in_flight gauge\n",
		"test_in_flight 6\n",
		"# HELP test_pairs_total pairs\n",
		"test_pairs_total 42\n",
		`test_chain{kind="snap"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if c.Value() != 5 || g.Value() != 6 {
		t.Errorf("Value() = %d, %d, want 5, 6", c.Value(), g.Value())
	}
}

// TestHistogramBucketing pins the edge cases: 0 lands in the first
// bucket (le is inclusive), values past every bound land only in +Inf,
// negative and NaN observations are rejected entirely.
func TestHistogramBucketing(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", nil, []float64{0.001, 0.01, 0.1})

	if !h.Observe(0) {
		t.Error("Observe(0) rejected; zero durations are legal")
	}
	if h.Observe(-0.5) {
		t.Error("Observe(-0.5) accepted; negative durations must be rejected")
	}
	if h.Observe(math.NaN()) {
		t.Error("Observe(NaN) accepted")
	}
	if !h.Observe(math.Inf(1)) {
		t.Error("Observe(+Inf) rejected; it belongs in the +Inf bucket")
	}
	h.Observe(0.001) // exactly on a bound: le is inclusive, bucket le=0.001
	h.Observe(0.05)
	h.Observe(99)

	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.001"} 2` + "\n", // 0 and 0.001
		`test_latency_seconds_bucket{le="0.01"} 2` + "\n",
		`test_latency_seconds_bucket{le="0.1"} 3` + "\n", // +0.05
		`test_latency_seconds_bucket{le="+Inf"} 5` + "\n",
		"test_latency_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5 (rejected observations must not count)", h.Count())
	}
	if sum := h.Sum(); !math.IsInf(sum, 1) {
		t.Errorf("Sum = %v, want +Inf (the +Inf observation is part of the sum)", sum)
	}

	if !h.ObserveDuration(time.Millisecond) {
		t.Error("ObserveDuration(1ms) rejected")
	}
	if h.ObserveDuration(-time.Second) {
		t.Error("ObserveDuration(-1s) accepted; negative durations must be rejected")
	}
}

// TestNilSafety: a component built without a registry holds nil
// instruments and a nil *Registry; every call site must be a no-op, not
// a panic.
func TestNilSafety(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x_total", "x", nil)
	g := r.Gauge("x", "x", nil)
	h := r.Histogram("x_seconds", "x", nil, nil)
	r.CounterFunc("y_total", "y", nil, func() uint64 { return 1 })
	r.GaugeFunc("y", "y", nil, func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	if h.Observe(1) {
		t.Error("nil histogram accepted an observation")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := obs.NewRegistry()
	r.Counter("dup_total", "d", nil)
	expectPanic("duplicate series", func() { r.Counter("dup_total", "d", nil) })
	expectPanic("type mismatch", func() { r.Gauge("dup_total", "d", obs.Labels{"a": "b"}) })
	expectPanic("invalid metric name", func() { r.Counter("0bad", "d", nil) })
	expectPanic("invalid label name", func() { r.Counter("ok_total", "d", obs.Labels{"0bad": "v"}) })
	expectPanic("non-ascending bounds", func() { r.Histogram("h_seconds", "d", nil, []float64{1, 1}) })
	// Distinct labels under one name are one family, not a duplicate.
	r.Counter("dup_total", "d", obs.Labels{"a": "b"})
}

// TestConcurrentUse hammers one registry from many goroutines while
// scraping it, for the race detector: counters must end exact, and every
// intermediate render must be internally consistent for histograms
// (bucket cumulative == _count).
func TestConcurrentUse(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("cc_total", "c", nil)
	g := r.Gauge("cc_depth", "g", nil)
	h := r.Histogram("cc_seconds", "h", nil, nil)

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) / 1000)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			out := render(t, r)
			if !strings.Contains(out, "cc_total") {
				t.Error("scrape lost a family")
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	out := render(t, r)
	if !strings.Contains(out, `cc_seconds_bucket{le="+Inf"} 8000`) {
		t.Errorf("final +Inf bucket != total observations:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("esc_total", "line1\nline2 and \\slash", obs.Labels{"path": "a\"b\\c\nd"})
	out := render(t, r)
	if !strings.Contains(out, `# HELP esc_total line1\nline2 and \\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestGaugeSetFunc(t *testing.T) {
	r := obs.NewRegistry()
	series := map[string]float64{} // mutated between scrapes
	var mu sync.Mutex
	r.GaugeSetFunc("dyn_tau", "per-dataset threshold", func(emit func(obs.Labels, float64)) {
		mu.Lock()
		defer mu.Unlock()
		for ds, v := range series {
			emit(obs.Labels{"dataset": ds}, v)
		}
	})

	if out := render(t, r); !strings.Contains(out, "# TYPE dyn_tau gauge") {
		t.Errorf("empty family still renders HELP/TYPE:\n%s", out)
	}

	mu.Lock()
	series["flows"] = 0.5
	series["alpha"] = 2
	mu.Unlock()
	out := render(t, r)
	// Series sort by label string, so alpha precedes flows regardless of
	// map iteration order.
	ia := strings.Index(out, `dyn_tau{dataset="alpha"} 2`)
	ifl := strings.Index(out, `dyn_tau{dataset="flows"} 0.5`)
	if ia < 0 || ifl < 0 || ia > ifl {
		t.Errorf("dynamic series wrong or unsorted (alpha@%d flows@%d):\n%s", ia, ifl, out)
	}

	mu.Lock()
	delete(series, "alpha")
	mu.Unlock()
	if out := render(t, r); strings.Contains(out, "alpha") {
		t.Errorf("removed series still renders:\n%s", out)
	}

	// A dynamic family's name cannot be reused by a static series.
	defer func() {
		if recover() == nil {
			t.Error("static series under a dynamic family did not panic")
		}
	}()
	r.GaugeSetFunc("dyn_tau", "dup", func(func(obs.Labels, float64)) {})
}

func TestGaugeSetFuncNilRegistry(t *testing.T) {
	var r *obs.Registry
	r.GaugeSetFunc("x", "y", func(func(obs.Labels, float64)) {}) // must not panic
}
