// Package obs is the dependency-free observability substrate of the
// summary server: a concurrency-safe metrics registry of counters,
// gauges, and fixed-bucket histograms that renders the Prometheus text
// exposition format (version 0.0.4).
//
// The package exists so that every layer — HTTP server, engine, durable
// store — reports through one vocabulary without pulling a client
// library into the module. Three design rules keep the instrumented hot
// paths honest:
//
//   - Instruments are lock-free after construction: counters and gauges
//     are single atomics, a histogram observation is one binary search
//     plus two atomic adds and a CAS loop on the sum. Construction (and
//     exposition) take the registry lock; request paths never do.
//
//   - Every instrument method is nil-receiver safe, and every
//     constructor on a nil *Registry returns a nil instrument. A
//     component built without a registry (the in-process test path, a
//     summaryd run without -metrics plumbing) calls the same Add/Inc/
//     Observe call sites and pays a nil check, not an atomic.
//
//   - Misregistration — invalid names, duplicate (name, labels) pairs,
//     one name under two types — panics at construction, the same
//     convention as server.WithDefaultWire on an unregistered codec:
//     these are programming errors, not runtime conditions.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels are the constant labels of one series: fixed at construction,
// rendered on every exposition line. Per-request label values (method,
// status…) are modeled as distinct pre-constructed series, never by
// mutating labels at observation time.
type Labels map[string]string

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use, and
// all methods on a nil *Registry are no-ops returning nil instruments.
type Registry struct {
	mu    sync.Mutex
	byFam map[string]*family
	names []string // registration-independent render order: sorted on write
}

// family is every series sharing one metric name: one TYPE, one HELP.
type family struct {
	name, help, typ string
	series          []series
	labelSet        map[string]bool // label strings already registered
}

// series is one labeled instrument inside a family.
type series interface {
	labelString() string
	writeTo(w io.Writer, name string)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byFam: make(map[string]*family)}
}

// register adds one series under name, creating the family on first use
// and enforcing the one-type-one-help-per-name rule.
func (r *Registry) register(name, help, typ string, s series) {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byFam[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, labelSet: make(map[string]bool)}
		r.byFam[name] = f
		r.names = append(r.names, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	ls := s.labelString()
	if f.labelSet[ls] {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, ls))
	}
	f.labelSet[ls] = true
	f.series = append(f.series, s)
}

// Counter registers and returns a monotone counter series. On a nil
// registry it returns nil — a valid, no-op instrument.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{labels: labelString(labels)}
	r.register(name, help, "counter", c)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the zero-overhead bridge for components that already
// maintain their own atomics (the server's engine totals). fn must be
// safe for concurrent use and monotone. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", &funcSeries{labels: labelString(labels), fn: func() string {
		return strconv.FormatUint(fn(), 10)
	}})
}

// Gauge registers and returns a gauge series (a settable integer level:
// in-flight requests, queue depths). No-op nil instrument on a nil
// registry.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{labels: labelString(labels)}
	r.register(name, help, "gauge", g)
	return g
}

// GaugeFunc registers a gauge series read from fn at exposition time —
// for values another subsystem already tracks under its own lock (sealed
// segment counts, snapshot chain length). fn must be safe to call from
// the exposition goroutine. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", &funcSeries{labels: labelString(labels), fn: func() string {
		return formatFloat(fn())
	}})
}

// GaugeSetFunc registers a gauge family whose labeled series are
// enumerated by fn at exposition time — the bridge for label sets that
// only exist at runtime (per-dataset sketch health: one series per
// stored summary). fn is called once per scrape with an emit callback
// and must be safe to call from the exposition goroutine; emitted
// series render sorted by label string, so output is deterministic
// regardless of enumeration order. The name cannot be shared with any
// other instrument. No-op on a nil registry.
func (r *Registry) GaugeSetFunc(name, help string, fn func(emit func(labels Labels, v float64))) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", &dynamicSeries{fn: fn})
}

// dynamicSeries renders a whole family of labeled values read from a
// callback at exposition time. Its labelString is a sentinel no static
// series can produce, so a GaugeSetFunc name cannot be mixed with
// fixed-label series under the same family.
type dynamicSeries struct {
	fn func(emit func(labels Labels, v float64))
}

func (s *dynamicSeries) labelString() string { return "*" }
func (s *dynamicSeries) writeTo(w io.Writer, name string) {
	type labeledValue struct {
		labels string
		value  float64
	}
	var out []labeledValue
	s.fn(func(labels Labels, v float64) {
		out = append(out, labeledValue{labelString(labels), v})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	for _, e := range out {
		fmt.Fprintf(w, "%s%s %s\n", name, e.labels, formatFloat(e.value))
	}
}

// Histogram registers and returns a histogram series over the given
// ascending upper bounds (seconds, for latency use); nil bounds selects
// LatencyBuckets. A +Inf bucket is always implicit. No-op nil instrument
// on a nil registry.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %v", name, bounds[i]))
		}
	}
	h := &Histogram{
		labels:  labelString(labels),
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, help, "histogram", h)
	return h
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, families sorted by name, series in registration
// order. Values are read with atomic loads (or the registered funcs), so
// a scrape concurrent with updates sees a near-point-in-time view; each
// histogram is internally consistent (cumulative buckets and _count come
// from one pass over its bucket array).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sort.Strings(r.names)
	fams := make([]*family, len(r.names))
	for i, name := range r.names {
		fams[i] = r.byFam[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.series {
			s.writeTo(&b, f.name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the exposition endpoint: GET answers the registry's
// current state as text/plain version 0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Counter is a monotone uint64 series. All methods are safe on a nil
// receiver (no-ops reading zero).
//
//summarylint:nilsafe
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Counters are monotone; there is deliberately no Sub.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) labelString() string { return c.labels }
func (c *Counter) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

// Gauge is a settable int64 level series. All methods are safe on a nil
// receiver.
//
//summarylint:nilsafe
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) labelString() string { return g.labels }
func (g *Gauge) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}

// funcSeries renders a value read from a callback at exposition time.
type funcSeries struct {
	labels string
	fn     func() string
}

func (s *funcSeries) labelString() string { return s.labels }
func (s *funcSeries) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.fn())
}

// LatencyBuckets are the package's fixed log-scale latency bounds, in
// seconds: 100µs to 10s, roughly 2.5× per step. Sixteen buckets spans
// a sub-millisecond in-process query and a multi-second snapshot in one
// vocabulary; histograms constructed with nil bounds use these.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution series. Observations are
// lock-free; negative and NaN values are rejected (a negative duration
// is a clock bug upstream, and folding it into the sum would corrupt the
// average forever). All methods are safe on a nil receiver.
//
//summarylint:nilsafe
type Histogram struct {
	labels  string
	bounds  []float64       // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64 // len(bounds)+1, non-cumulative; last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value, reporting whether it was accepted: negative
// and NaN observations are rejected, 0 lands in the first bucket (le
// is inclusive), +Inf in the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) bool {
	if h == nil {
		return false
	}
	if v < 0 || math.IsNaN(v) {
		return false
	}
	// First bound ≥ v is the owning bucket (le is an inclusive upper
	// bound); values past every bound go to the trailing +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return true
		}
	}
}

// ObserveDuration records a duration in seconds, rejecting negatives.
func (h *Histogram) ObserveDuration(d time.Duration) bool { return h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) bool { return h.Observe(time.Since(start).Seconds()) }

// Count reads the number of accepted observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of accepted observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) labelString() string { return h.labels }
func (h *Histogram) writeTo(w io.Writer, name string) {
	// One pass over the bucket atomics builds the cumulative counts and
	// the total, so _bucket and _count agree within this render even
	// while observations land concurrently.
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(h.labels, formatFloat(h.bounds[i])), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(h.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, cum)
}

// bucketLabels merges a series' constant labels with the bucket's le.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// labelString renders constant labels once, at construction: sorted
// keys, escaped values, `{k="v",…}` — or "" for no labels. Invalid label
// names panic.
func labelString(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		checkLabelName(k)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeValue(v string) string { return valueEscaper.Replace(v) }
func escapeHelp(v string) string  { return helpEscaper.Replace(v) }

// formatFloat renders a float the shortest way that round-trips; the
// exposition format accepts scientific notation.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// checkName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// checkLabelName enforces the label-name charset [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelName(name string) {
	if !validName(name, false) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

func validName(name string, allowColon bool) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
