package sampling

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/xhash"
)

// TestMergeBottomKOrderInsensitive is the merge's algebraic contract:
// combining 3+ per-shard entry sets must be commutative (any permutation
// of the groups) and associative (pre-concatenating groups), and
// insensitive to within-group entry order — the properties that let a
// dispersed system merge summaries in whatever order they arrive.
func TestMergeBottomKOrderInsensitive(t *testing.T) {
	rng := randx.New(20110613)
	seeder := xhash.Seeder{Salt: 77}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }

	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(40)
		shards := 3 + rng.Intn(3)
		n := rng.Intn(300)
		samplers := make([]*StreamBottomK, shards)
		for i := range samplers {
			samplers[i] = NewStreamBottomK(k, PPS{}, seed)
		}
		for i := 0; i < n; i++ {
			h := dataset.Key(i + 1)
			v := math.Floor(1 + 50*rng.Float64())
			samplers[rng.Intn(shards)].Push(h, v)
		}
		groups := make([][]Entry, shards)
		for i, s := range samplers {
			groups[i] = s.Entries()
		}

		want := MergeBottomK(k, PPS{}, groups...)

		// Commutativity: random permutations of the group order.
		for p := 0; p < 5; p++ {
			perm := rng.Perm(shards)
			shuffled := make([][]Entry, shards)
			for i, j := range perm {
				shuffled[i] = groups[j]
			}
			if got := MergeBottomK(k, PPS{}, shuffled...); !sameSample(got, want) {
				t.Fatalf("trial %d: merge not commutative under perm %v", trial, perm)
			}
		}

		// Within-group order: shuffle each group's entries in place.
		jumbled := make([][]Entry, shards)
		for i, g := range groups {
			cp := append([]Entry(nil), g...)
			for j := len(cp) - 1; j > 0; j-- {
				l := rng.Intn(j + 1)
				cp[j], cp[l] = cp[l], cp[j]
			}
			jumbled[i] = cp
		}
		if got := MergeBottomK(k, PPS{}, jumbled...); !sameSample(got, want) {
			t.Fatalf("trial %d: merge sensitive to within-group entry order", trial)
		}

		// Associativity: concatenating the first two groups (a valid
		// coarsening — the combined stream's k+1 lowest entries are a
		// subset of the union) must not change the result.
		coarse := append([][]Entry{append(append([]Entry(nil), groups[0]...), groups[1]...)}, groups[2:]...)
		if got := MergeBottomK(k, PPS{}, coarse...); !sameSample(got, want) {
			t.Fatalf("trial %d: merge not associative under group concatenation", trial)
		}
	}
}

func sameSample(a, b *WeightedSample) bool {
	if a.Tau != b.Tau && !(math.IsInf(a.Tau, 1) && math.IsInf(b.Tau, 1)) {
		return false
	}
	return reflect.DeepEqual(a.Values, b.Values)
}
