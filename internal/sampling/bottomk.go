package sampling

import (
	"math"

	"repro/internal/dataset"
)

// rankedKey pairs a key with its rank for the bottom-k max-heap.
type rankedKey struct {
	key  dataset.Key
	rank float64
}

// rankHeap is a binary max-heap on rank stored in a slice, so the largest
// retained rank sits at h[0] and can be evicted when a smaller rank
// arrives. The sift loops are written out instead of going through
// container/heap: the interface{}-based heap.Push boxes every rankedKey,
// which costs one allocation per retained arrival on the k-fill path.
type rankHeap []rankedKey

// push appends rk and restores the heap property by sifting it up.
func (h *rankHeap) push(rk rankedKey) {
	*h = append(*h, rk)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hh[parent].rank >= hh[i].rank {
			break
		}
		hh[parent], hh[i] = hh[i], hh[parent]
		i = parent
	}
}

// fixTop restores the heap property after h[0] was replaced in place — the
// eviction step of a full bottom-k sampler.
func (h rankHeap) fixTop() {
	n := len(h)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && h[r].rank > h[c].rank {
			c = r
		}
		if h[i].rank >= h[c].rank {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// BottomK draws a bottom-k (order) sample of the instance: the k keys with
// smallest ranks, where ranks are drawn from the given family using the
// per-key seeds. Tau is set to the (k+1)-st smallest rank, which is the
// rank-conditioning threshold for the subset-sum estimator (§7.1); with PPS
// ranks this is exactly priority sampling, with EXP ranks it is weighted
// sampling without replacement.
//
// The sample is computed in one streaming pass with a size-(k+1) heap, so an
// instance never needs to be fully materialized in rank order. Once the heap
// is full, arrivals take the same threshold fast-reject as
// StreamBottomK.Push: one seed hash, one multiply, one compare.
func BottomK(in dataset.Instance, k int, fam RankFamily, seed SeedFunc) *WeightedSample {
	h := make(rankHeap, 0, k+1)
	guard := fastRejectMult(fam)
	full := false
	tau, tauGuard := 0.0, math.NaN()
	//summarylint:ignore bottom-k heap keeps the k+1 smallest ranks, which depend only on per-key seeds, not arrival order
	for key, v := range in {
		if full {
			u := seed(key)
			if u >= tauGuard*v {
				continue
			}
			r := fam.Rank(u, v)
			if !(r < tau) {
				continue
			}
			h[0] = rankedKey{key, r}
			h.fixTop()
			tau = h[0].rank
			tauGuard = tau * guard
			continue
		}
		r := fam.Rank(seed(key), v)
		if math.IsInf(r, 1) {
			continue
		}
		h.push(rankedKey{key, r})
		if len(h) == k+1 {
			full = true
			tau = h[0].rank
			tauGuard = tau * guard
		}
	}
	out := &WeightedSample{Values: make(map[dataset.Key]float64, k), Family: fam}
	if len(h) <= k {
		// Fewer than k+1 positive keys: everything is sampled, and the
		// conditioning threshold is unbounded (estimates are exact values).
		out.Tau = math.Inf(1)
		for _, rk := range h {
			out.Values[rk.key] = in[rk.key]
		}
		return out
	}
	// The heap top holds the (k+1)-st smallest rank; it is excluded from
	// the sample and becomes the threshold.
	out.Tau = h[0].rank
	for _, rk := range h[1:] {
		out.Values[rk.key] = in[rk.key]
	}
	return out
}
