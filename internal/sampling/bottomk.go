package sampling

import (
	"container/heap"
	"math"

	"repro/internal/dataset"
)

// rankedKey pairs a key with its rank for the bottom-k max-heap.
type rankedKey struct {
	key  dataset.Key
	rank float64
}

// rankHeap is a max-heap on rank so the largest retained rank is on top and
// can be evicted when a smaller rank arrives.
type rankHeap []rankedKey

func (h rankHeap) Len() int            { return len(h) }
func (h rankHeap) Less(i, j int) bool  { return h[i].rank > h[j].rank }
func (h rankHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x interface{}) { *h = append(*h, x.(rankedKey)) }
func (h *rankHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BottomK draws a bottom-k (order) sample of the instance: the k keys with
// smallest ranks, where ranks are drawn from the given family using the
// per-key seeds. Tau is set to the (k+1)-st smallest rank, which is the
// rank-conditioning threshold for the subset-sum estimator (§7.1); with PPS
// ranks this is exactly priority sampling, with EXP ranks it is weighted
// sampling without replacement.
//
// The sample is computed in one streaming pass with a size-(k+1) heap, so an
// instance never needs to be fully materialized in rank order.
func BottomK(in dataset.Instance, k int, fam RankFamily, seed SeedFunc) *WeightedSample {
	h := make(rankHeap, 0, k+1)
	heap.Init(&h)
	for key, v := range in {
		r := fam.Rank(seed(key), v)
		if math.IsInf(r, 1) {
			continue
		}
		if len(h) < k+1 {
			heap.Push(&h, rankedKey{key, r})
			continue
		}
		if r < h[0].rank {
			h[0] = rankedKey{key, r}
			heap.Fix(&h, 0)
		}
	}
	out := &WeightedSample{Values: make(map[dataset.Key]float64, k), Family: fam}
	if len(h) <= k {
		// Fewer than k+1 positive keys: everything is sampled, and the
		// conditioning threshold is unbounded (estimates are exact values).
		out.Tau = math.Inf(1)
		for _, rk := range h {
			out.Values[rk.key] = in[rk.key]
		}
		return out
	}
	// The heap top holds the (k+1)-st smallest rank; it is excluded from
	// the sample and becomes the threshold.
	out.Tau = h[0].rank
	for _, rk := range h[1:] {
		out.Values[rk.key] = in[rk.key]
	}
	return out
}
