package sampling

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// VarOpt is a streaming VarOpt_k reservoir (Chao 1982; Cohen, Duffield,
// Kaplan, Lund, Thorup 2009): a fixed-size weighted sample with PPS
// inclusion probabilities, variance-optimal subset-sum estimates, and
// non-positively correlated inclusions.
//
// Invariant: the reservoir holds at most k items; each retained item has an
// adjusted weight max(w, tau) where tau is the current threshold, and the
// adjusted weights are unbiased estimators of the original weights.
type VarOpt struct {
	k     int
	tau   float64
	items []voItem
	// adj and idx are scratch buffers reused across Add overflows so the
	// per-arrival threshold solve does not allocate.
	adj []float64
	idx []int
	rng interface{ Float64() float64 }
}

type voItem struct {
	key dataset.Key
	w   float64 // original weight
}

// NewVarOpt returns a VarOpt_k reservoir of capacity k drawing its drop
// decisions from rng (any source of uniform [0,1) floats).
func NewVarOpt(k int, rng interface{ Float64() float64 }) *VarOpt {
	if k <= 0 {
		panic("sampling: NewVarOpt with non-positive k")
	}
	return &VarOpt{k: k, rng: rng}
}

// Tau returns the current threshold; items with weight below Tau are
// represented with adjusted weight Tau.
func (v *VarOpt) Tau() float64 { return v.tau }

// Len returns the current reservoir size.
func (v *VarOpt) Len() int { return len(v.items) }

// Add streams one (key, weight) pair into the reservoir. Weights must be
// positive; zero or negative weights are ignored.
func (v *VarOpt) Add(key dataset.Key, w float64) {
	if w <= 0 {
		return
	}
	v.items = append(v.items, voItem{key, w})
	if len(v.items) <= v.k {
		return
	}
	// k+1 items: compute the new threshold tau' solving
	// Σ min(1, w̃_i/tau') = k over adjusted weights, then drop exactly one
	// item with probability 1 − min(1, w̃_i/tau'). Previously retained
	// items carry their threshold-adjusted weight max(w, tau); the new
	// arrival enters with its raw weight.
	if cap(v.adj) < len(v.items) {
		v.adj = make([]float64, len(v.items))
		v.idx = make([]int, len(v.items))
	}
	adj := v.adj[:len(v.items)]
	for i, it := range v.items {
		adj[i] = math.Max(it.w, v.tau)
	}
	adj[len(adj)-1] = v.items[len(adj)-1].w
	idx := v.idx[:len(v.items)]
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return adj[idx[a]] < adj[idx[b]] })
	// Find tau' by scanning the sorted adjusted weights: with the t
	// smallest items below the threshold, tau' = (Σ_{i≤t} w̃_i)/(k−(n−t))
	// where n = k+1; valid when w̃_t ≤ tau' ≤ w̃_{t+1}.
	n := len(v.items)
	prefix := 0.0
	tauNew := 0.0
	for t := 1; t <= n; t++ {
		prefix += adj[idx[t-1]]
		denom := float64(v.k - (n - t))
		if denom <= 0 {
			continue
		}
		cand := prefix / denom
		hi := math.Inf(1)
		if t < n {
			hi = adj[idx[t]]
		}
		if cand >= adj[idx[t-1]]-1e-12 && cand <= hi+1e-12 {
			tauNew = cand
			break
		}
	}
	if tauNew < v.tau {
		tauNew = v.tau
	}
	// Drop probabilities 1 − min(1, w̃_i/tauNew) sum to exactly 1.
	u := v.rng.Float64()
	drop := -1
	cum := 0.0
	for i := range v.items {
		d := 1 - math.Min(1, adj[i]/tauNew)
		cum += d
		if u < cum {
			drop = i
			break
		}
	}
	if drop < 0 {
		// Numerical slack: drop the smallest adjusted weight.
		drop = idx[0]
	}
	v.items[drop] = v.items[n-1]
	v.items = v.items[:n-1]
	v.tau = tauNew
}

// Sample finalizes the reservoir into a VarOptSample.
func (v *VarOpt) Sample() *VarOptSample {
	out := &VarOptSample{
		Adjusted: make(map[dataset.Key]float64, len(v.items)),
		Original: make(map[dataset.Key]float64, len(v.items)),
		Tau:      v.tau,
	}
	for _, it := range v.items {
		out.Original[it.key] = it.w
		out.Adjusted[it.key] = math.Max(it.w, v.tau)
	}
	return out
}

// VarOptSample is a finalized VarOpt_k sample.
type VarOptSample struct {
	// Adjusted maps sampled keys to their unbiased adjusted weights
	// max(w, Tau).
	Adjusted map[dataset.Key]float64
	// Original maps sampled keys to their exact weights.
	Original map[dataset.Key]float64
	// Tau is the final threshold; the inclusion probability of a key with
	// weight w is min(1, w/Tau).
	Tau float64
}

// SubsetSum estimates Σ_{h∈sel} v(h) by summing adjusted weights. Terms
// accumulate in ascending key order, not map order, so equal samples
// produce bit-identical estimates on every run — the same reproducibility
// contract as WeightedSample.SubsetSum.
func (s *VarOptSample) SubsetSum(sel func(dataset.Key) bool) float64 {
	keys := make([]dataset.Key, 0, len(s.Adjusted))
	for h := range s.Adjusted {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := 0.0
	for _, h := range keys {
		if sel != nil && !sel(h) {
			continue
		}
		total += s.Adjusted[h]
	}
	return total
}

// MergeVarOpt merges finalized VarOpt_k reservoirs into one reservoir of
// capacity k — the mergeability construction behind sharded VarOpt
// summarization (Cohen, Duffield, Kaplan, Lund, Thorup 2009): every input
// item enters the union carrying its threshold-adjusted weight
// max(w, tau_own) — the unbiased estimate of its original weight under its
// own reservoir's randomness — and the union is re-dropped to k items by
// the standard per-arrival threshold step, drawing the drop decisions from
// rng. This is the two-level (threshold-union) reservoir: per-key
// unbiasedness composes across the levels, E[adjusted out] = adjusted in
// and E[adjusted in] = w, so subset-sum estimates from the merged
// reservoir are unbiased regardless of how the stream was partitioned.
//
// The inputs are not consumed or mutated. Note the merged reservoir's item
// weights are the inputs' adjusted weights: original weights below an
// input threshold are not recoverable after a merge.
func MergeVarOpt(k int, rng interface{ Float64() float64 }, vs ...*VarOpt) *VarOpt {
	out := NewVarOpt(k, rng)
	for _, v := range vs {
		for _, it := range v.items {
			out.Add(it.key, math.Max(it.w, v.tau))
		}
	}
	return out
}
