package sampling

import (
	"container/heap"
	"math"

	"repro/internal/dataset"
)

// StreamBottomK maintains a bottom-k sample incrementally over a stream of
// (key, value) pairs, using O(k) memory and O(log k) per arrival. Values
// of the same key must arrive at most once (the instances×keys model
// assigns one value per key per instance); feeding aggregated streams is
// the caller's concern.
type StreamBottomK struct {
	k    int
	fam  RankFamily
	seed SeedFunc
	h    rankHeap
	vals map[dataset.Key]float64
}

// NewStreamBottomK returns an empty streaming bottom-k sampler.
func NewStreamBottomK(k int, fam RankFamily, seed SeedFunc) *StreamBottomK {
	if k <= 0 {
		panic("sampling: NewStreamBottomK with non-positive k")
	}
	return &StreamBottomK{
		k:    k,
		fam:  fam,
		seed: seed,
		h:    make(rankHeap, 0, k+1),
		vals: make(map[dataset.Key]float64, k+1),
	}
}

// Push offers one (key, value) pair to the sampler.
func (s *StreamBottomK) Push(key dataset.Key, v float64) {
	r := s.fam.Rank(s.seed(key), v)
	if math.IsInf(r, 1) {
		return
	}
	if len(s.h) < s.k+1 {
		heap.Push(&s.h, rankedKey{key, r})
		s.vals[key] = v
		return
	}
	if r >= s.h[0].rank {
		return
	}
	delete(s.vals, s.h[0].key)
	s.h[0] = rankedKey{key, r}
	s.vals[key] = v
	heap.Fix(&s.h, 0)
}

// Len returns the number of retained keys (at most k+1 internally; the
// (k+1)-st is the threshold witness and excluded from Snapshot).
func (s *StreamBottomK) Len() int {
	if len(s.h) > s.k {
		return s.k
	}
	return len(s.h)
}

// Snapshot materializes the current sample with its rank-conditioning
// threshold. The sampler remains usable afterwards.
func (s *StreamBottomK) Snapshot() *WeightedSample {
	out := &WeightedSample{Values: make(map[dataset.Key]float64, s.k), Family: s.fam}
	if len(s.h) <= s.k {
		out.Tau = math.Inf(1)
		for _, rk := range s.h {
			out.Values[rk.key] = s.vals[rk.key]
		}
		return out
	}
	out.Tau = s.h[0].rank
	for _, rk := range s.h[1:] {
		out.Values[rk.key] = s.vals[rk.key]
	}
	return out
}

// StreamPoissonPPS filters a stream down to a Poisson PPS sample with a
// fixed threshold tauStar: stateless per key, O(1) memory beyond the
// retained sample — the scheme of choice when key processing must be fully
// decoupled (e.g. sensors transmitting independently, §7.1). Inclusion uses
// the exact rank test of PoissonPPS (rank u/v below 1/tauStar), so the
// streaming sample is bit-for-bit the batch sample.
type StreamPoissonPPS struct {
	rankTau float64
	seed    SeedFunc
	out     map[dataset.Key]float64
}

// NewStreamPoissonPPS returns an empty streaming PPS sampler with
// weight-scale threshold tauStar.
func NewStreamPoissonPPS(tauStar float64, seed SeedFunc) *StreamPoissonPPS {
	if tauStar <= 0 {
		panic("sampling: NewStreamPoissonPPS with non-positive tau")
	}
	return &StreamPoissonPPS{rankTau: 1 / tauStar, seed: seed, out: make(map[dataset.Key]float64)}
}

// Push offers one (key, value) pair.
func (s *StreamPoissonPPS) Push(key dataset.Key, v float64) {
	if (PPS{}).Rank(s.seed(key), v) < s.rankTau {
		s.out[key] = v
	}
}

// Len returns the current sample size.
func (s *StreamPoissonPPS) Len() int { return len(s.out) }

// AppendTo copies the current sample into dst without materializing an
// intermediate snapshot — the cheap path for unioning per-shard Poisson
// samples.
func (s *StreamPoissonPPS) AppendTo(dst map[dataset.Key]float64) {
	for k, v := range s.out {
		dst[k] = v
	}
}

// Snapshot materializes the current sample.
func (s *StreamPoissonPPS) Snapshot() *WeightedSample {
	vals := make(map[dataset.Key]float64, len(s.out))
	for k, v := range s.out {
		vals[k] = v
	}
	return &WeightedSample{Values: vals, Tau: s.rankTau, Family: PPS{}}
}
