package sampling

import (
	"math"

	"repro/internal/dataset"
)

// StreamBottomK maintains a bottom-k sample incrementally over a stream of
// (key, value) pairs, using O(k) memory and O(log k) per arrival. Values
// of the same key must arrive at most once (the instances×keys model
// assigns one value per key per instance); feeding aggregated streams is
// the caller's concern.
//
// Once k+1 items are retained the sampler is rejection-dominated: the
// common-case arrival is discarded with one seed hash, one multiply, and
// one compare against the cached threshold (see rejectGuard), touching
// neither the heap nor the value map and allocating nothing.
type StreamBottomK struct {
	k    int
	fam  RankFamily
	seed SeedFunc
	// full is true once k+1 items are retained; tau then caches the
	// heap-top rank (the threshold witness) as a plain field, and
	// tauGuard = tau·fastRejectMult(fam) is the certain-reject bound.
	full     bool
	tau      float64
	tauGuard float64
	guard    float64
	h        rankHeap
	vals     map[dataset.Key]float64
}

// NewStreamBottomK returns an empty streaming bottom-k sampler.
func NewStreamBottomK(k int, fam RankFamily, seed SeedFunc) *StreamBottomK {
	if k <= 0 {
		panic("sampling: NewStreamBottomK with non-positive k")
	}
	return &StreamBottomK{
		k:        k,
		fam:      fam,
		seed:     seed,
		guard:    fastRejectMult(fam),
		tauGuard: math.NaN(),
		h:        make(rankHeap, 0, k+1),
		vals:     make(map[dataset.Key]float64, k+1),
	}
}

// Push offers one (key, value) pair to the sampler.
//
//summarylint:hot
func (s *StreamBottomK) Push(key dataset.Key, v float64) {
	if s.full {
		u := s.seed(key)
		if u >= s.tauGuard*v {
			// Certain reject: rank ≥ tau is guaranteed without computing
			// the rank (NaN tauGuard disables this for unknown families).
			return
		}
		s.pushFull(u, key, v)
		return
	}
	s.pushFill(key, v)
}

// pushFull resolves an arrival inside the guard band of a full sampler
// with the exact rank comparison, evicting the heap top on accept.
//
//summarylint:hot
func (s *StreamBottomK) pushFull(u float64, key dataset.Key, v float64) {
	r := s.fam.Rank(u, v)
	if r >= s.tau {
		return
	}
	delete(s.vals, s.h[0].key)
	s.h[0] = rankedKey{key, r}
	s.vals[key] = v
	s.h.fixTop()
	s.tau = s.h[0].rank
	s.tauGuard = s.tau * s.guard
}

// pushFill handles arrivals while the sampler still has room.
//
//summarylint:hot
func (s *StreamBottomK) pushFill(key dataset.Key, v float64) {
	r := s.fam.Rank(s.seed(key), v)
	if math.IsInf(r, 1) {
		return
	}
	s.h.push(rankedKey{key, r})
	s.vals[key] = v
	if len(s.h) == s.k+1 {
		s.full = true
		s.tau = s.h[0].rank
		s.tauGuard = s.tau * s.guard
	}
}

// Len returns the number of retained keys (at most k+1 internally; the
// (k+1)-st is the threshold witness and excluded from Snapshot).
func (s *StreamBottomK) Len() int {
	if len(s.h) > s.k {
		return s.k
	}
	return len(s.h)
}

// Snapshot materializes the current sample with its rank-conditioning
// threshold. The sampler remains usable afterwards.
func (s *StreamBottomK) Snapshot() *WeightedSample {
	out := &WeightedSample{Values: make(map[dataset.Key]float64, s.k), Family: s.fam}
	if len(s.h) <= s.k {
		out.Tau = math.Inf(1)
		for _, rk := range s.h {
			out.Values[rk.key] = s.vals[rk.key]
		}
		return out
	}
	out.Tau = s.h[0].rank
	for _, rk := range s.h[1:] {
		out.Values[rk.key] = s.vals[rk.key]
	}
	return out
}

// StreamPoissonPPS filters a stream down to a Poisson PPS sample with a
// fixed threshold tauStar: stateless per key, O(1) memory beyond the
// retained sample — the scheme of choice when key processing must be fully
// decoupled (e.g. sensors transmitting independently, §7.1). Inclusion uses
// the exact rank test of PoissonPPS (rank u/v below 1/tauStar), so the
// streaming sample is bit-for-bit the batch sample. Rejected arrivals —
// the common case with a tight threshold — cost one seed hash, one
// multiply, and one compare, mirroring StreamBottomK's fast-reject.
type StreamPoissonPPS struct {
	rankTau  float64
	tauGuard float64
	seed     SeedFunc
	out      map[dataset.Key]float64
}

// NewStreamPoissonPPS returns an empty streaming PPS sampler with
// weight-scale threshold tauStar.
func NewStreamPoissonPPS(tauStar float64, seed SeedFunc) *StreamPoissonPPS {
	if tauStar <= 0 {
		panic("sampling: NewStreamPoissonPPS with non-positive tau")
	}
	rankTau := 1 / tauStar
	return &StreamPoissonPPS{
		rankTau:  rankTau,
		tauGuard: rankTau * (1 + rejectGuard),
		seed:     seed,
		out:      make(map[dataset.Key]float64),
	}
}

// RankTau returns the fixed rank-scale threshold 1/tauStar.
func (s *StreamPoissonPPS) RankTau() float64 { return s.rankTau }

// Push offers one (key, value) pair.
//
//summarylint:hot
func (s *StreamPoissonPPS) Push(key dataset.Key, v float64) {
	u := s.seed(key)
	if u >= s.tauGuard*v {
		return
	}
	if (PPS{}).Rank(u, v) < s.rankTau {
		s.out[key] = v
	}
}

// Len returns the current sample size.
func (s *StreamPoissonPPS) Len() int { return len(s.out) }

// AppendTo copies the current sample into dst without materializing an
// intermediate snapshot — the cheap path for unioning per-shard Poisson
// samples. Callers unioning several samplers should presize dst with the
// summed Len() so the copies never grow the map.
func (s *StreamPoissonPPS) AppendTo(dst map[dataset.Key]float64) {
	for k, v := range s.out {
		dst[k] = v
	}
}

// Snapshot materializes the current sample.
func (s *StreamPoissonPPS) Snapshot() *WeightedSample {
	vals := make(map[dataset.Key]float64, len(s.out))
	s.AppendTo(vals)
	return &WeightedSample{Values: vals, Tau: s.rankTau, Family: PPS{}}
}
