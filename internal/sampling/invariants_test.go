package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/xhash"
)

// Property-based invariant tests (testing/quick) for the sampling
// substrates: the structural guarantees every estimator in this repository
// leans on.

// TestQuickVarOptTotalPreserved: VarOpt's adjusted weights sum to the
// exact stream total after every arrival, for arbitrary streams.
func TestQuickVarOptTotalPreserved(t *testing.T) {
	f := func(seed uint64, sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		rng := randx.New(seed)
		vo := NewVarOpt(4, rng)
		total := 0.0
		for i, s := range sizes {
			w := 0.5 + float64(s%37)
			vo.Add(dataset.Key(i+1), w)
			total += w
			got := vo.Sample().SubsetSum(nil)
			if math.Abs(got-total) > 1e-6*math.Max(1, total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickVarOptThresholdMonotone: the VarOpt threshold never decreases.
func TestQuickVarOptThresholdMonotone(t *testing.T) {
	f := func(seed uint64, sizes []uint8) bool {
		rng := randx.New(seed)
		vo := NewVarOpt(3, rng)
		prev := 0.0
		for i, s := range sizes {
			vo.Add(dataset.Key(i+1), 0.5+float64(s%23))
			if vo.Tau() < prev-1e-12 {
				return false
			}
			prev = vo.Tau()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickStreamEqualsBatch: the streaming bottom-k sampler agrees with
// the batch construction for every random instance and arrival order.
func TestQuickStreamEqualsBatch(t *testing.T) {
	f := func(salt uint64, weights []uint8, order uint64) bool {
		in := dataset.Instance{}
		for i, w := range weights {
			if len(in) >= 40 {
				break
			}
			in[dataset.Key(i+1)] = 1 + float64(w%19)
		}
		seeder := xhash.Seeder{Salt: salt}
		seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
		batch := BottomK(in, 7, PPS{}, seed)
		s := NewStreamBottomK(7, PPS{}, seed)
		keys := in.Keys()
		perm := randx.New(order).Perm(len(keys))
		for _, idx := range perm {
			s.Push(keys[idx], in[keys[idx]])
		}
		snap := s.Snapshot()
		if snap.Tau != batch.Tau || len(snap.Values) != len(batch.Values) {
			return false
		}
		for h, v := range batch.Values {
			if snap.Values[h] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickBottomKRankBound: every sampled key's rank is strictly below
// the conditioning threshold, and the threshold is the (k+1)-st smallest.
func TestQuickBottomKRankBound(t *testing.T) {
	f := func(salt uint64, weights []uint8) bool {
		in := dataset.Instance{}
		for i, w := range weights {
			if len(in) >= 50 {
				break
			}
			in[dataset.Key(i+1)] = 1 + float64(w%29)
		}
		seeder := xhash.Seeder{Salt: salt}
		seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
		s := BottomK(in, 5, EXP{}, seed)
		below := 0
		for h, v := range in {
			r := (EXP{}).Rank(seed(h), v)
			if r < s.Tau {
				below++
			}
			_, sampled := s.Values[h]
			if sampled != (r < s.Tau) {
				return false
			}
		}
		return math.IsInf(s.Tau, 1) || below == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickPPSSampleValueFidelity: sampled values are reported exactly and
// only keys meeting the threshold rule are present.
func TestQuickPPSSampleValueFidelity(t *testing.T) {
	f := func(salt uint64, weights []uint8, tauRaw uint8) bool {
		in := dataset.Instance{}
		for i, w := range weights {
			if len(in) >= 50 {
				break
			}
			in[dataset.Key(i+1)] = float64(w % 31) // zeros allowed
		}
		tau := 1 + float64(tauRaw%50)
		seeder := xhash.Seeder{Salt: salt}
		seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
		s := PoissonPPS(in, tau, seed)
		for h, v := range in {
			want := v > 0 && v >= seed(h)*tau
			got, ok := s.Values[h]
			if ok != want {
				return false
			}
			if ok && got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
