package sampling

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// SeedFunc supplies the uniform seed u(h) ∈ [0,1) for a key. Seeds are
// normally hash-derived (xhash.Seeder) so they are reproducible — the
// "known seeds" model.
type SeedFunc func(dataset.Key) float64

// WeightedSample is the outcome of weighted sampling of a single instance:
// the sampled keys with their values, plus the rank threshold that governed
// (Poisson) or conditions (bottom-k) inclusion.
type WeightedSample struct {
	// Values holds the sampled keys and their exact values.
	Values map[dataset.Key]float64
	// Tau is the rank threshold: fixed for Poisson sampling; the (k+1)-st
	// smallest rank for bottom-k (rank conditioning). +Inf means every
	// positive key was included.
	Tau float64
	// Family is the rank family used to draw ranks.
	Family RankFamily
}

// Len returns the number of sampled keys.
func (s *WeightedSample) Len() int { return len(s.Values) }

// InclusionProb returns the (conditional) inclusion probability of a key
// with weight w given the sample's threshold. For Poisson samples this is
// the exact inclusion probability; for bottom-k it is the rank-conditioning
// probability of §7.1.
func (s *WeightedSample) InclusionProb(w float64) float64 {
	return s.Family.InclusionProb(w, s.Tau)
}

// SubsetSum estimates Σ_{h∈sel} v(h) with inverse-probability weights
// (HT for Poisson, rank-conditioning for bottom-k). A nil sel selects all.
// Terms are accumulated in ascending key order, not map order, so equal
// samples produce bit-identical estimates on every run — the
// reproducibility contract dispersed post-hoc queries rely on.
func (s *WeightedSample) SubsetSum(sel func(dataset.Key) bool) float64 {
	keys := make([]dataset.Key, 0, len(s.Values))
	for h := range s.Values {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := 0.0
	for _, h := range keys {
		if sel != nil && !sel(h) {
			continue
		}
		v := s.Values[h]
		p := s.InclusionProb(v)
		if p > 0 {
			total += v / p
		}
	}
	return total
}

// PoissonRank draws a Poisson sample of the instance: key h is included iff
// its rank Family.Rank(u(h), v(h)) is below rankTau. Inclusions of
// different keys are independent given independent seeds.
func PoissonRank(in dataset.Instance, fam RankFamily, rankTau float64, seed SeedFunc) *WeightedSample {
	out := &WeightedSample{Values: make(map[dataset.Key]float64), Tau: rankTau, Family: fam}
	for h, v := range in {
		if fam.Rank(seed(h), v) < rankTau {
			out.Values[h] = v
		}
	}
	return out
}

// PoissonPPS draws a Poisson PPS sample with weight-scale threshold tauStar:
// key h is included iff v(h) ≥ u(h)·tauStar, i.e. with probability
// min{1, v(h)/tauStar} (§2, §5.2). In rank terms this is PPS ranks with
// rank threshold 1/tauStar.
func PoissonPPS(in dataset.Instance, tauStar float64, seed SeedFunc) *WeightedSample {
	return PoissonRank(in, PPS{}, 1/tauStar, seed)
}

// TauForExpectedSize returns the weight-scale threshold tauStar for which a
// Poisson PPS sample of the instance has expected size k:
// Σ_h min{1, v(h)/tauStar} = k. It solves by bisection on the sorted value
// profile and is exact up to floating point. If k ≥ the number of positive
// keys, it returns a threshold small enough to include everything.
func TauForExpectedSize(in dataset.Instance, k float64) float64 {
	vals := make([]float64, 0, len(in))
	for _, v := range in {
		if v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 1
	}
	sort.Float64s(vals)
	if k >= float64(len(vals)) {
		return vals[0] / 2
	}
	if k <= 0 {
		return math.Inf(1)
	}
	// expectedSize(tau) = Σ min(1, v/tau) is continuous and decreasing in
	// tau. Use prefix sums over the sorted values to evaluate in O(log n).
	prefix := make([]float64, len(vals)+1)
	for i, v := range vals {
		prefix[i+1] = prefix[i] + v
	}
	size := func(tau float64) float64 {
		// number of values ≥ tau contribute 1 each; smaller contribute v/tau.
		i := sort.SearchFloat64s(vals, tau)
		return prefix[i]/tau + float64(len(vals)-i)
	}
	lo, hi := vals[0]/2, vals[len(vals)-1]*float64(len(vals))
	for size(hi) > k {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if size(mid) > k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ObliviousSample is a weight-oblivious Poisson sample over an explicit key
// universe: every key of the universe is included independently with its
// probability, regardless of value (zero-valued keys can be sampled too,
// revealing their zero value — §4).
type ObliviousSample struct {
	// Sampled holds the sampled keys and their exact values (possibly 0).
	Sampled map[dataset.Key]float64
	// P is the per-key inclusion probability function used.
	P func(dataset.Key) float64
}

// ObliviousPoisson draws a weight-oblivious Poisson sample of the instance
// over the given key universe: key h is included iff u(h) < p(h).
func ObliviousPoisson(universe []dataset.Key, in dataset.Instance, p func(dataset.Key) float64, seed SeedFunc) *ObliviousSample {
	out := &ObliviousSample{Sampled: make(map[dataset.Key]float64), P: p}
	for _, h := range universe {
		if seed(h) < p(h) {
			out.Sampled[h] = in[h]
		}
	}
	return out
}

// SubsetSum is the HT subset-sum estimator over the oblivious sample.
// Terms are accumulated in ascending key order, not map order, for the
// same bit-identical reproducibility contract WeightedSample.SubsetSum
// keeps: float addition is not associative, and this method summed in
// randomized map order until summarylint's floatsum check flagged it.
func (s *ObliviousSample) SubsetSum(sel func(dataset.Key) bool) float64 {
	keys := make([]dataset.Key, 0, len(s.Sampled))
	for h := range s.Sampled {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := 0.0
	for _, h := range keys {
		if sel != nil && !sel(h) {
			continue
		}
		if p := s.P(h); p > 0 {
			total += s.Sampled[h] / p
		}
	}
	return total
}
