package sampling

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// Entry is one retained (key, rank, value) triple of a bottom-k sampler.
// Entries are the mergeable representation of partial bottom-k state: the
// rank of a key depends only on its seed and value, never on arrival order
// or on which sampler observed it, so entry sets from disjoint key
// partitions can be combined into the exact global sample.
type Entry struct {
	Key   dataset.Key
	Rank  float64
	Value float64
}

// Entries returns the sampler's retained entries — the current sample plus
// the threshold witness when one is held — in unspecified order. Together
// with MergeBottomK this supports sharded summarization: partition a stream
// by key, run one StreamBottomK per shard, and merge the retained entries.
func (s *StreamBottomK) Entries() []Entry {
	out := make([]Entry, len(s.h))
	for i, rk := range s.h {
		out[i] = Entry{Key: rk.key, Rank: rk.rank, Value: s.vals[rk.key]}
	}
	return out
}

// K returns the sampler's configured sample size.
func (s *StreamBottomK) K() int { return s.k }

// MergeBottomK combines per-shard retained entry sets into the global
// bottom-k sample. It is exact — identical to a single sequential pass over
// the union of the shards' streams — provided every group holds its own
// stream's min(k+1, n) lowest-ranked entries (which StreamBottomK.Entries
// guarantees for samplers of size ≥ k), each key appears in exactly one
// group, and ranks are distinct (hash-derived seeds make rank ties a
// measure-zero event; merge breaks any tie by key, arrival order being
// meaningless across shards).
func MergeBottomK(k int, fam RankFamily, groups ...[]Entry) *WeightedSample {
	if k <= 0 {
		panic("sampling: MergeBottomK with non-positive k")
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	all := make([]Entry, 0, total)
	for _, g := range groups {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Rank != all[j].Rank {
			return all[i].Rank < all[j].Rank
		}
		return all[i].Key < all[j].Key
	})
	out := &WeightedSample{Values: make(map[dataset.Key]float64, k), Family: fam}
	if len(all) <= k {
		// Fewer than k+1 entries survive globally: everything is sampled
		// and the conditioning threshold is unbounded.
		out.Tau = math.Inf(1)
		for _, e := range all {
			out.Values[e.Key] = e.Value
		}
		return out
	}
	// The (k+1)-st smallest rank is the threshold witness, excluded from
	// the sample exactly as in BottomK and StreamBottomK.Snapshot.
	out.Tau = all[k].Rank
	for _, e := range all[:k] {
		out.Values[e.Key] = e.Value
	}
	return out
}
