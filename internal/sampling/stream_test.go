package sampling

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/xhash"
)

// TestStreamBottomKMatchesBatch: the streaming sampler produces exactly
// the batch bottom-k sample (same keys, same threshold) for any arrival
// order.
func TestStreamBottomKMatchesBatch(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(42)
	for k := dataset.Key(1); k <= 500; k++ {
		in[k] = math.Floor(1 + rng.Pareto(1, 1.3))
	}
	seeder := xhash.Seeder{Salt: 77}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	batch := BottomK(in, 25, PPS{}, seed)

	for trial := 0; trial < 3; trial++ {
		s := NewStreamBottomK(25, PPS{}, seed)
		order := randx.New(uint64(trial)).Perm(len(in))
		keys := in.Keys()
		for _, idx := range order {
			h := keys[idx]
			s.Push(h, in[h])
		}
		snap := s.Snapshot()
		if snap.Tau != batch.Tau {
			t.Fatalf("trial %d: tau %v vs batch %v", trial, snap.Tau, batch.Tau)
		}
		if len(snap.Values) != len(batch.Values) {
			t.Fatalf("trial %d: size %d vs %d", trial, len(snap.Values), len(batch.Values))
		}
		for h, v := range batch.Values {
			if snap.Values[h] != v {
				t.Fatalf("trial %d: key %d missing or wrong", trial, h)
			}
		}
	}
}

func TestStreamBottomKSmallStream(t *testing.T) {
	seeder := xhash.Seeder{Salt: 5}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	s := NewStreamBottomK(10, EXP{}, seed)
	s.Push(1, 3)
	s.Push(2, 0) // zero weight: ignored
	s.Push(3, 7)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	snap := s.Snapshot()
	if !math.IsInf(snap.Tau, 1) {
		t.Errorf("tau = %v, want +inf for undersized stream", snap.Tau)
	}
	if got := snap.SubsetSum(nil); got != 10 {
		t.Errorf("undersized subset sum %v, want exact 10", got)
	}
	// Snapshot does not consume the sampler.
	s.Push(4, 9)
	if s.Len() != 3 {
		t.Errorf("push after snapshot failed: len %d", s.Len())
	}
}

// TestStreamPoissonPPSMatchesBatch: the streaming filter equals the batch
// PPS sample.
func TestStreamPoissonPPSMatchesBatch(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(17)
	for k := dataset.Key(1); k <= 300; k++ {
		in[k] = math.Floor(1 + rng.Pareto(1, 1.4))
	}
	seeder := xhash.Seeder{Salt: 3}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	tau := TauForExpectedSize(in, 30)
	batch := PoissonPPS(in, tau, seed)
	s := NewStreamPoissonPPS(tau, seed)
	for h, v := range in {
		s.Push(h, v)
	}
	if s.Len() != batch.Len() {
		t.Fatalf("size %d vs batch %d", s.Len(), batch.Len())
	}
	snap := s.Snapshot()
	for h, v := range batch.Values {
		if snap.Values[h] != v {
			t.Fatalf("key %d mismatch", h)
		}
	}
	if got, want := snap.SubsetSum(nil), batch.SubsetSum(nil); math.Abs(got-want) > 1e-9 {
		t.Errorf("subset sums differ: %v vs %v", got, want)
	}
	// Snapshot is a copy: pushing more does not mutate it.
	before := len(snap.Values)
	s.Push(9999, 1e9)
	if len(snap.Values) != before {
		t.Error("snapshot aliases the live sampler")
	}
}

func TestStreamConstructorsValidate(t *testing.T) {
	seed := func(dataset.Key) float64 { return 0.5 }
	mustPanic(t, func() { NewStreamBottomK(0, PPS{}, seed) })
	mustPanic(t, func() { NewStreamPoissonPPS(0, seed) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestAppendToPresizedAllocs: AppendTo into a map presized with the
// summed Len() copies entries without growing the map — zero allocations,
// the contract the engine's shard-union relies on.
func TestAppendToPresizedAllocs(t *testing.T) {
	seeder := xhash.Seeder{Salt: 3}
	samplers := make([]*StreamPoissonPPS, 3)
	for i := range samplers {
		inst := i
		seed := func(h dataset.Key) float64 { return seeder.Seed(inst, uint64(h)) }
		s := NewStreamPoissonPPS(4, seed)
		for k := dataset.Key(1); k <= 400; k++ {
			s.Push(k+dataset.Key(1000*i), 1+float64(k%17))
		}
		samplers[i] = s
	}
	total := 0
	for _, s := range samplers {
		total += s.Len()
	}
	if total == 0 {
		t.Fatal("fixture retained nothing")
	}
	var dst map[dataset.Key]float64
	allocs := testing.AllocsPerRun(10, func() {
		dst = make(map[dataset.Key]float64, total)
		for _, s := range samplers {
			s.AppendTo(dst)
		}
	})
	if len(dst) != total {
		t.Fatalf("union holds %d keys, want %d", len(dst), total)
	}
	// One allocation budget: the presized map itself (Go maps may take a
	// couple of internal allocations at make time; the copies add none).
	base := testing.AllocsPerRun(10, func() {
		dst = make(map[dataset.Key]float64, total)
	})
	if allocs > base {
		t.Errorf("AppendTo into a presized map allocated %v beyond the %v of make itself", allocs-base, base)
	}
}
