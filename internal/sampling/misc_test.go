package sampling

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
)

func TestRankFamilyNames(t *testing.T) {
	if (PPS{}).Name() != "pps" || (EXP{}).Name() != "exp" {
		t.Error("family names wrong")
	}
}

// heapOK reports whether h satisfies the max-heap property everywhere.
func heapOK(h rankHeap) bool {
	for i := 1; i < len(h); i++ {
		if h[(i-1)/2].rank < h[i].rank {
			return false
		}
	}
	return true
}

func TestRankHeapSift(t *testing.T) {
	rng := randx.New(42)
	h := make(rankHeap, 0, 65)
	for i := 0; i < 64; i++ {
		h.push(rankedKey{key: dataset.Key(i), rank: rng.Float64()})
		if !heapOK(h) {
			t.Fatalf("heap property violated after push %d: %v", i, h)
		}
	}
	// Evictions replace the top in place and sift down, as a full
	// bottom-k sampler does; the top must always be the maximum.
	for i := 0; i < 256; i++ {
		max := 0.0
		for _, rk := range h {
			if rk.rank > max {
				max = rk.rank
			}
		}
		if h[0].rank != max {
			t.Fatalf("heap top %v, want max %v", h[0].rank, max)
		}
		h[0] = rankedKey{key: dataset.Key(1000 + i), rank: rng.Float64()}
		h.fixTop()
		if !heapOK(h) {
			t.Fatalf("heap property violated after eviction %d", i)
		}
	}
}

// TestRankHeapPushAllocs: the k-fill path must not box — pushing into a
// heap with spare capacity allocates nothing (the old container/heap path
// boxed every rankedKey through interface{}).
func TestRankHeapPushAllocs(t *testing.T) {
	h := make(rankHeap, 0, 128)
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		h.push(rankedKey{key: dataset.Key(i), rank: float64(i % 17)})
		i++
		if len(h) == cap(h) {
			h = h[:0]
		}
	})
	if allocs != 0 {
		t.Errorf("rankHeap.push allocs/op = %v, want 0", allocs)
	}
}

func TestNewVarOptValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVarOpt(0) did not panic")
		}
	}()
	NewVarOpt(0, randx.New(1))
}

func TestStreamBottomKLenCap(t *testing.T) {
	seeder := func(h dataset.Key) float64 { return float64(h%97) / 97 }
	s := NewStreamBottomK(3, PPS{}, func(h dataset.Key) float64 { return seeder(h) })
	for k := dataset.Key(1); k <= 10; k++ {
		s.Push(k, float64(k))
	}
	// Internally k+1 items are retained; Len reports at most k.
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if snap := s.Snapshot(); len(snap.Values) != 3 {
		t.Errorf("snapshot size %d, want 3", len(snap.Values))
	}
}
