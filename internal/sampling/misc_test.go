package sampling

import (
	"container/heap"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
)

func TestRankFamilyNames(t *testing.T) {
	if (PPS{}).Name() != "pps" || (EXP{}).Name() != "exp" {
		t.Error("family names wrong")
	}
}

func TestRankHeapInterface(t *testing.T) {
	h := rankHeap{}
	heap.Init(&h)
	for _, r := range []float64{0.5, 0.1, 0.9, 0.3} {
		heap.Push(&h, rankedKey{rank: r})
	}
	// Max-heap: pops come out in decreasing rank order.
	prev := math.Inf(1)
	for h.Len() > 0 {
		rk := heap.Pop(&h).(rankedKey)
		if rk.rank > prev {
			t.Fatalf("heap order violated: %v after %v", rk.rank, prev)
		}
		prev = rk.rank
	}
}

func TestNewVarOptValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVarOpt(0) did not panic")
		}
	}()
	NewVarOpt(0, randx.New(1))
}

func TestStreamBottomKLenCap(t *testing.T) {
	seeder := func(h dataset.Key) float64 { return float64(h%97) / 97 }
	s := NewStreamBottomK(3, PPS{}, func(h dataset.Key) float64 { return seeder(h) })
	for k := dataset.Key(1); k <= 10; k++ {
		s.Push(k, float64(k))
	}
	// Internally k+1 items are retained; Len reports at most k.
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if snap := s.Snapshot(); len(snap.Values) != 3 {
		t.Errorf("snapshot size %d, want 3", len(snap.Values))
	}
}
