package sampling

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// Determinism regression test for ObliviousSample.SubsetSum, which
// accumulated its HT terms in randomized map order until summarylint's
// floatsum check flagged it. With sampled values spanning ~60 orders of
// magnitude the old iteration almost surely produced different low
// mantissa bits on consecutive calls over the same sample.
func TestObliviousSubsetSumDeterministic(t *testing.T) {
	const n = 500
	universe := make([]dataset.Key, 0, n)
	in := make(dataset.Instance, n)
	for i := 0; i < n; i++ {
		h := dataset.Key(uint64(i)*2654435761 + 3)
		universe = append(universe, h)
		in[h] = math.Pow(10, float64(i%61)-30)
	}
	p := func(h dataset.Key) float64 { return 0.25 + float64(h%512)/1024 }
	seed := func(h dataset.Key) float64 { return float64(h%9973) / 9973 }

	s := ObliviousPoisson(universe, in, p, seed)
	if len(s.Sampled) < 50 {
		t.Fatalf("only %d keys sampled: test exercises nothing", len(s.Sampled))
	}

	// Reference: the HT sum accumulated explicitly in ascending key order.
	keys := make([]dataset.Key, 0, len(s.Sampled))
	for h := range s.Sampled {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	want := 0.0
	for _, h := range keys {
		want += s.Sampled[h] / p(h)
	}

	for i := 0; i < 20; i++ {
		got := s.SubsetSum(nil)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d: SubsetSum = %x, ascending-order reference = %x (non-deterministic summation order)",
				i, math.Float64bits(got), math.Float64bits(want))
		}
	}
}
