package sampling

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/randx"
)

// zeroRNG always returns 0.0 — the extreme corner of the drop draw: u=0
// selects the first item with positive drop probability.
type zeroRNG struct{}

func (zeroRNG) Float64() float64 { return 0.0 }

// voTotal sums the adjusted weights of the reservoir (the exact-total
// invariant: Σ max(w, tau) over retained items equals Σ pushed weights).
func voTotal(v *VarOpt) float64 {
	return v.Sample().SubsetSum(nil)
}

// TestVarOptK1: a capacity-1 reservoir holds exactly one item whose
// adjusted weight is the exact running total.
func TestVarOptK1(t *testing.T) {
	vo := NewVarOpt(1, randx.New(7))
	total := 0.0
	for i := 1; i <= 50; i++ {
		w := float64(i%7 + 1)
		vo.Add(dataset.Key(i), w)
		total += w
		if vo.Len() != 1 {
			t.Fatalf("k=1 reservoir holds %d items", vo.Len())
		}
		if got := voTotal(vo); math.Abs(got-total) > 1e-9*total {
			t.Fatalf("k=1 adjusted total %v, want %v", got, total)
		}
	}
}

// TestVarOptAllEqualWeights: with n equal weights w and capacity k, the
// threshold is exactly n·w/k and every retained item carries it.
func TestVarOptAllEqualWeights(t *testing.T) {
	const (
		k = 4
		n = 20
		w = 5.0
	)
	vo := NewVarOpt(k, randx.New(3))
	for i := 1; i <= n; i++ {
		vo.Add(dataset.Key(i), w)
	}
	if vo.Len() != k {
		t.Fatalf("reservoir size %d, want %d", vo.Len(), k)
	}
	wantTau := n * w / k
	if math.Abs(vo.Tau()-wantTau) > 1e-9*wantTau {
		t.Errorf("tau = %v, want %v", vo.Tau(), wantTau)
	}
	s := vo.Sample()
	for h, aw := range s.Adjusted {
		if math.Abs(aw-wantTau) > 1e-9*wantTau {
			t.Errorf("key %d adjusted %v, want %v", h, aw, wantTau)
		}
	}
}

// TestVarOptWeightAtTau: an arrival whose weight equals the current
// threshold exactly keeps the total invariant and a monotone threshold.
func TestVarOptWeightAtTau(t *testing.T) {
	vo := NewVarOpt(3, randx.New(11))
	total := 0.0
	for i := 1; i <= 10; i++ {
		vo.Add(dataset.Key(i), 2)
		total += 2
	}
	tau := vo.Tau()
	if tau <= 0 {
		t.Fatalf("threshold not engaged: tau = %v", tau)
	}
	vo.Add(dataset.Key(100), tau)
	total += tau
	if got := voTotal(vo); math.Abs(got-total) > 1e-9*total {
		t.Errorf("total after at-tau arrival %v, want %v", got, total)
	}
	if vo.Tau() < tau {
		t.Errorf("threshold decreased: %v -> %v", tau, vo.Tau())
	}
}

// TestVarOptZeroRNG: a degenerate rng that always draws 0.0 must still
// keep the reservoir bounded and the total exact.
func TestVarOptZeroRNG(t *testing.T) {
	vo := NewVarOpt(4, zeroRNG{})
	total := 0.0
	for i := 1; i <= 40; i++ {
		w := 1 + float64(i%5)
		vo.Add(dataset.Key(i), w)
		total += w
	}
	if vo.Len() != 4 {
		t.Fatalf("reservoir size %d, want 4", vo.Len())
	}
	if got := voTotal(vo); math.Abs(got-total) > 1e-9*total {
		t.Errorf("total %v, want %v", got, total)
	}
}

// TestVarOptMergeTotalPreserved: the threshold-union merge preserves the
// exact total: the merged reservoir's adjusted weights sum to the union
// stream's total, because each level preserves its own input total.
func TestVarOptMergeTotalPreserved(t *testing.T) {
	rng := randx.New(19)
	a, b := NewVarOpt(8, rng.Split()), NewVarOpt(8, rng.Split())
	total := 0.0
	for i := 1; i <= 100; i++ {
		w := 1 + rng.Pareto(1, 1.5)
		if i%2 == 0 {
			a.Add(dataset.Key(i), w)
		} else {
			b.Add(dataset.Key(i), w)
		}
		total += w
	}
	m := MergeVarOpt(8, rng.Split(), a, b)
	if m.Len() != 8 {
		t.Fatalf("merged size %d, want 8", m.Len())
	}
	if got := voTotal(m); math.Abs(got-total) > 1e-6*total {
		t.Errorf("merged total %v, want %v", got, total)
	}
}

// TestVarOptMergeCommutative: merge(a,b) and merge(b,a) are the same
// estimator — subset-sum means agree with each other and with the truth
// within Monte Carlo tolerance (the samples themselves differ: the merge
// draws randomness, so commutativity is distributional, not bitwise).
func TestVarOptMergeCommutative(t *testing.T) {
	const (
		k      = 16
		trials = 2000
	)
	// Fixed weights; the subset is the low third of the keyspace.
	wts := make([]float64, 121)
	wrng := randx.New(5)
	subsetTotal, total := 0.0, 0.0
	sel := func(h dataset.Key) bool { return h < 40 }
	for i := 1; i <= 120; i++ {
		wts[i] = 1 + wrng.Pareto(1, 1.5)
		total += wts[i]
		if sel(dataset.Key(i)) {
			subsetTotal += wts[i]
		}
	}
	var sumAB, sumBA float64
	for tr := 0; tr < trials; tr++ {
		rng := randx.New(uint64(tr) + 1)
		a, b := NewVarOpt(k, rng.Split()), NewVarOpt(k, rng.Split())
		for i := 1; i <= 60; i++ {
			a.Add(dataset.Key(i), wts[i])
		}
		for i := 61; i <= 120; i++ {
			b.Add(dataset.Key(i), wts[i])
		}
		sumAB += MergeVarOpt(k, rng.Split(), a, b).Sample().SubsetSum(sel)
		sumBA += MergeVarOpt(k, rng.Split(), b, a).Sample().SubsetSum(sel)
	}
	meanAB, meanBA := sumAB/trials, sumBA/trials
	if rel := math.Abs(meanAB-subsetTotal) / subsetTotal; rel > 0.05 {
		t.Errorf("merge(a,b) subset mean %v, want %v (rel err %.3f)", meanAB, subsetTotal, rel)
	}
	if rel := math.Abs(meanBA-subsetTotal) / subsetTotal; rel > 0.05 {
		t.Errorf("merge(b,a) subset mean %v, want %v (rel err %.3f)", meanBA, subsetTotal, rel)
	}
	if rel := math.Abs(meanAB-meanBA) / subsetTotal; rel > 0.05 {
		t.Errorf("merge order changed the estimator: %v vs %v", meanAB, meanBA)
	}
}
