package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/randx"
	"repro/internal/xhash"
)

func seedFuncFrom(seeder xhash.Seeder, instance int) SeedFunc {
	return func(h dataset.Key) float64 { return seeder.Seed(instance, uint64(h)) }
}

func TestRankFamilies(t *testing.T) {
	for _, fam := range []RankFamily{PPS{}, EXP{}} {
		if math.IsInf(fam.Rank(0.5, 0), 1) != true {
			t.Errorf("%s: zero weight should rank +inf", fam.Name())
		}
		if fam.InclusionProb(0, 1) != 0 {
			t.Errorf("%s: zero weight inclusion not 0", fam.Name())
		}
		if p := fam.InclusionProb(3, math.Inf(1)); p != 1 {
			t.Errorf("%s: infinite threshold inclusion = %v", fam.Name(), p)
		}
		// Rank is increasing in u and decreasing in w.
		if fam.Rank(0.2, 1) >= fam.Rank(0.8, 1) {
			t.Errorf("%s: rank not increasing in seed", fam.Name())
		}
		if fam.Rank(0.5, 1) <= fam.Rank(0.5, 10) {
			t.Errorf("%s: rank not decreasing in weight", fam.Name())
		}
	}
	// Closed forms.
	if p := (PPS{}).InclusionProb(2, 0.25); p != 0.5 {
		t.Errorf("PPS inclusion = %v, want 0.5", p)
	}
	if p := (EXP{}).InclusionProb(2, 0.25); math.Abs(p-(1-math.Exp(-0.5))) > 1e-12 {
		t.Errorf("EXP inclusion = %v", p)
	}
}

// TestRankInclusionConsistency: empirical PR[Rank(U,w) < tau] matches
// InclusionProb for both families.
func TestRankInclusionConsistency(t *testing.T) {
	rng := randx.New(31)
	for _, fam := range []RankFamily{PPS{}, EXP{}} {
		for _, w := range []float64{0.3, 1, 5} {
			for _, tau := range []float64{0.1, 0.5, 2} {
				const n = 100000
				hits := 0
				for i := 0; i < n; i++ {
					if fam.Rank(rng.Float64(), w) < tau {
						hits++
					}
				}
				want := fam.InclusionProb(w, tau)
				if got := float64(hits) / n; math.Abs(got-want) > 0.01 {
					t.Errorf("%s w=%v tau=%v: empirical %v, closed form %v", fam.Name(), w, tau, got, want)
				}
			}
		}
	}
}

func TestPoissonPPSInclusion(t *testing.T) {
	in := dataset.Instance{1: 10, 2: 1, 3: 0.1}
	tau := 5.0
	// Key 1 (v=10 ≥ tau) is always sampled; key 2 with prob 1/5; key 3
	// with prob 0.02.
	const trials = 50000
	counts := map[dataset.Key]int{}
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: uint64(i)}
		s := PoissonPPS(in, tau, seedFuncFrom(seeder, 0))
		for h := range s.Values {
			counts[h]++
		}
	}
	if counts[1] != trials {
		t.Errorf("key 1 sampled %d/%d, want always", counts[1], trials)
	}
	if f := float64(counts[2]) / trials; math.Abs(f-0.2) > 0.01 {
		t.Errorf("key 2 frequency %v, want 0.2", f)
	}
	if f := float64(counts[3]) / trials; math.Abs(f-0.02) > 0.005 {
		t.Errorf("key 3 frequency %v, want 0.02", f)
	}
}

// TestSubsetSumUnbiased: the HT subset-sum estimate over Poisson PPS
// samples is unbiased.
func TestSubsetSumUnbiased(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(5)
	total := 0.0
	for k := dataset.Key(1); k <= 50; k++ {
		v := math.Floor(rng.Pareto(2, 1.5))
		in[k] = v
		total += v
	}
	tau := TauForExpectedSize(in, 10)
	const trials = 30000
	sum := 0.0
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: 1000 + uint64(i)}
		s := PoissonPPS(in, tau, seedFuncFrom(seeder, 0))
		sum += s.SubsetSum(nil)
	}
	mean := sum / trials
	if math.Abs(mean-total)/total > 0.02 {
		t.Errorf("PPS subset-sum mean %v, want %v", mean, total)
	}
}

func TestTauForExpectedSize(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(77)
	for k := dataset.Key(1); k <= 200; k++ {
		in[k] = math.Floor(1 + rng.Pareto(1, 1.2))
	}
	for _, k := range []float64{1, 5, 20, 100, 199} {
		tau := TauForExpectedSize(in, k)
		got := 0.0
		for _, v := range in {
			got += math.Min(1, v/tau)
		}
		if math.Abs(got-k) > 1e-6*k {
			t.Errorf("k=%v: expected size %v", k, got)
		}
	}
	// Oversized k includes everything.
	tau := TauForExpectedSize(in, 1000)
	s := PoissonPPS(in, tau, func(dataset.Key) float64 { return 0.999999 })
	if s.Len() != len(in) {
		t.Errorf("oversized k: sampled %d of %d", s.Len(), len(in))
	}
}

func TestBottomKBasics(t *testing.T) {
	in := dataset.FigureFive().Instances[0]
	seeder := xhash.Seeder{Salt: 123}
	s := BottomK(in, 3, PPS{}, seedFuncFrom(seeder, 0))
	if s.Len() != 3 {
		t.Fatalf("sample size %d, want 3", s.Len())
	}
	if math.IsInf(s.Tau, 1) {
		t.Fatal("tau should be finite with >k keys")
	}
	// All sampled ranks must be below tau.
	for h, v := range s.Values {
		if r := (PPS{}).Rank(seeder.Seed(0, uint64(h)), v); r >= s.Tau {
			t.Errorf("sampled key %d rank %v ≥ tau %v", h, r, s.Tau)
		}
	}
	// Small instance: everything sampled, exact estimates.
	tiny := dataset.Instance{1: 5, 2: 7}
	s2 := BottomK(tiny, 3, PPS{}, seedFuncFrom(seeder, 0))
	if s2.Len() != 2 || !math.IsInf(s2.Tau, 1) {
		t.Fatalf("tiny sample: len=%d tau=%v", s2.Len(), s2.Tau)
	}
	if got := s2.SubsetSum(nil); got != 12 {
		t.Errorf("tiny subset sum = %v, want exact 12", got)
	}
}

// TestBottomKSubsetSumUnbiased verifies the rank-conditioning estimator for
// both priority (PPS) and SWOR (EXP) bottom-k sampling.
func TestBottomKSubsetSumUnbiased(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(15)
	total := 0.0
	for k := dataset.Key(1); k <= 40; k++ {
		v := math.Floor(1 + rng.Pareto(1, 1.3))
		in[k] = v
		total += v
	}
	for _, fam := range []RankFamily{PPS{}, EXP{}} {
		const trials = 40000
		sum := 0.0
		for i := 0; i < trials; i++ {
			seeder := xhash.Seeder{Salt: uint64(i) * 31}
			s := BottomK(in, 8, fam, seedFuncFrom(seeder, 0))
			sum += s.SubsetSum(nil)
		}
		mean := sum / trials
		if math.Abs(mean-total)/total > 0.03 {
			t.Errorf("%s bottom-k mean %v, want %v", fam.Name(), mean, total)
		}
	}
}

func TestObliviousPoisson(t *testing.T) {
	universe := []dataset.Key{1, 2, 3, 4, 5, 6}
	in := dataset.FigureFive().Instances[0]
	p := func(dataset.Key) float64 { return 0.5 }
	const trials = 20000
	sum := 0.0
	zeroSampled := 0
	for i := 0; i < trials; i++ {
		seeder := xhash.Seeder{Salt: uint64(i)}
		s := ObliviousPoisson(universe, in, p, seedFuncFrom(seeder, 0))
		sum += s.SubsetSum(nil)
		if v, ok := s.Sampled[2]; ok && v == 0 {
			zeroSampled++
		}
	}
	total := in.Total()
	if mean := sum / trials; math.Abs(mean-total)/total > 0.02 {
		t.Errorf("oblivious subset-sum mean %v, want %v", mean, total)
	}
	// Weight-oblivious sampling observes zero values (key 2 has value 0).
	if f := float64(zeroSampled) / trials; math.Abs(f-0.5) > 0.02 {
		t.Errorf("zero-valued key sampled with frequency %v, want 0.5", f)
	}
}

// TestVarOptBasics: fixed size, threshold semantics, adjusted weights.
func TestVarOptBasics(t *testing.T) {
	rng := randx.New(3)
	vo := NewVarOpt(5, rng)
	in := dataset.Instance{}
	total := 0.0
	r2 := randx.New(8)
	for k := dataset.Key(1); k <= 100; k++ {
		v := math.Floor(1 + r2.Pareto(1, 1.4))
		in[k] = v
		total += v
	}
	for h, v := range in {
		vo.Add(h, v)
	}
	if vo.Len() != 5 {
		t.Fatalf("reservoir size %d, want 5", vo.Len())
	}
	s := vo.Sample()
	if len(s.Adjusted) != 5 {
		t.Fatalf("sample size %d", len(s.Adjusted))
	}
	for h, aw := range s.Adjusted {
		if aw < s.Original[h]-1e-9 || aw < s.Tau-1e-9 {
			t.Errorf("adjusted weight %v below max(original %v, tau %v)", aw, s.Original[h], s.Tau)
		}
	}
	// Adding non-positive weights is a no-op.
	before := vo.Len()
	vo.Add(999, 0)
	vo.Add(998, -3)
	if vo.Len() != before {
		t.Error("non-positive weights changed the reservoir")
	}
}

// TestVarOptUnbiased: the adjusted-weight total is an unbiased estimate of
// the stream total.
func TestVarOptUnbiased(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(55)
	total := 0.0
	keys := make([]dataset.Key, 0, 60)
	for k := dataset.Key(1); k <= 60; k++ {
		v := math.Floor(1 + rng.Pareto(1, 1.3))
		in[k] = v
		total += v
		keys = append(keys, k)
	}
	const trials = 30000
	sum := 0.0
	for i := 0; i < trials; i++ {
		r := randx.New(uint64(i)*2 + 1)
		vo := NewVarOpt(10, r)
		for _, k := range keys {
			vo.Add(k, in[k])
		}
		sum += vo.Sample().SubsetSum(nil)
	}
	mean := sum / trials
	if math.Abs(mean-total)/total > 0.02 {
		t.Errorf("VarOpt mean %v, want %v", mean, total)
	}
}

// TestVarOptExactTotal: the adjusted weights always sum to the exact
// stream total when every weight is below the final threshold region —
// more precisely, VarOpt preserves Σ adjusted = Σ original exactly at
// every step (it is a martingale with zero-variance total).
func TestVarOptTotalPreserved(t *testing.T) {
	rng := randx.New(101)
	vo := NewVarOpt(4, rng)
	total := 0.0
	vals := []float64{5, 1, 3, 8, 2, 2, 9, 1, 4, 6, 7, 3}
	for i, v := range vals {
		vo.Add(dataset.Key(i+1), v)
		total += v
		s := vo.Sample()
		if got := s.SubsetSum(nil); math.Abs(got-total) > 1e-9 {
			t.Fatalf("after %d adds: adjusted total %v, stream total %v", i+1, got, total)
		}
	}
}

// TestSharedSeedCoordination: with a shared-seed seeder, identical
// instances yield identical bottom-k samples, and similar instances yield
// overlapping samples (§7.2).
func TestSharedSeedCoordination(t *testing.T) {
	in := dataset.Instance{}
	rng := randx.New(21)
	for k := dataset.Key(1); k <= 100; k++ {
		in[k] = math.Floor(1 + rng.Pareto(1, 1.5))
	}
	shared := xhash.Seeder{Salt: 9, Shared: true}
	s1 := BottomK(in, 10, PPS{}, seedFuncFrom(shared, 0))
	s2 := BottomK(in, 10, PPS{}, seedFuncFrom(shared, 1))
	for h := range s1.Values {
		if _, ok := s2.Values[h]; !ok {
			t.Fatal("identical instances under shared seeds produced different samples")
		}
	}
	// Independent seeds: overlap should be far below 10.
	indep := xhash.Seeder{Salt: 9}
	t1 := BottomK(in, 10, PPS{}, seedFuncFrom(indep, 0))
	t2 := BottomK(in, 10, PPS{}, seedFuncFrom(indep, 1))
	overlap := 0
	for h := range t1.Values {
		if _, ok := t2.Values[h]; ok {
			overlap++
		}
	}
	if overlap >= 9 {
		t.Errorf("independent samples overlap %d/10 — suspiciously coordinated", overlap)
	}
}

// TestInclusionProbQuick: inclusion probabilities are proper probabilities
// and monotone in weight.
func TestInclusionProbQuick(t *testing.T) {
	f := func(w1, w2, tau float64) bool {
		w1, w2, tau = math.Abs(w1), math.Abs(w2), math.Abs(tau)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		for _, fam := range []RankFamily{PPS{}, EXP{}} {
			p1 := fam.InclusionProb(w1, tau)
			p2 := fam.InclusionProb(w2, tau)
			if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 || p1 > p2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
