// Package sampling implements the single-instance sampling schemes of §7.1
// (Poisson weight-oblivious, Poisson PPS, bottom-k / order sampling, VarOpt)
// and the joint multi-instance distributions (independent vs shared-seed
// coordinated sampling) used throughout the paper.
//
// All schemes are driven by reproducible seeds u(h) ∈ [0,1) supplied by the
// caller (normally hash-derived via xhash.Seeder), which realizes the
// paper's "known seeds" model: the estimator can recompute the seed of any
// key, sampled or not.
package sampling

import "math"

// RankFamily maps a uniform seed and a weight to a rank value. Smaller
// ranks are sampled first; weighted sampling uses families where the rank
// is stochastically decreasing in the weight (§7.1).
type RankFamily interface {
	// Rank returns r(h) = F_w^{-1}(u) for seed u ∈ [0,1) and weight w ≥ 0.
	// A weight of 0 yields +Inf: zero-valued keys are never sampled.
	Rank(u, w float64) float64
	// InclusionProb returns PR[Rank(U, w) < tau] over uniform U — the
	// probability a key of weight w has rank below the threshold tau.
	InclusionProb(w, tau float64) float64
	// Name identifies the family ("pps" or "exp").
	Name() string
}

// PPS ranks: r = u/w, the family behind Poisson PPS (inclusion probability
// proportional to size) and priority sampling (bottom-k with PPS ranks).
type PPS struct{}

// Rank implements RankFamily.
func (PPS) Rank(u, w float64) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	return u / w
}

// InclusionProb implements RankFamily: PR[u/w < tau] = min(1, w·tau).
func (PPS) InclusionProb(w, tau float64) float64 {
	if w <= 0 || tau <= 0 {
		return 0
	}
	if math.IsInf(tau, 1) {
		return 1
	}
	return math.Min(1, w*tau)
}

// Name implements RankFamily.
func (PPS) Name() string { return "pps" }

// EXP ranks: r = −ln(1−u)/w, exponentially distributed with parameter w.
// Bottom-k with EXP ranks is weighted sampling without replacement.
type EXP struct{}

// Rank implements RankFamily.
func (EXP) Rank(u, w float64) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	return -math.Log1p(-u) / w
}

// InclusionProb implements RankFamily: PR[r < tau] = 1 − e^{−w·tau}.
func (EXP) InclusionProb(w, tau float64) float64 {
	if w <= 0 || tau <= 0 {
		return 0
	}
	if math.IsInf(tau, 1) {
		return 1
	}
	return -math.Expm1(-w * tau)
}

// Name implements RankFamily.
func (EXP) Name() string { return "exp" }

// rejectGuard is the relative guard band of the threshold fast-reject: a
// full sampler certainly rejects an arrival when u ≥ (1+rejectGuard)·tau·w,
// using one multiply and one compare — no division, and for EXP ranks no
// logarithm. The band is ~10^7 ulps wide, far beyond the worst-case
// rounding of the exact rank computation, so the shortcut can never
// disagree with it; arrivals inside the band fall through to the exact
// Rank comparison, keeping every accept/reject decision bit-identical to
// the slow path.
//
// Why one comparison covers both built-in families: PPS ranks are u/w, so
// u ≥ tau·w is the rejection test itself (modulo rounding, hence the
// guard). EXP ranks are −ln(1−u)/w ≥ u/w (since −ln(1−u) ≥ u on [0,1)),
// so u ≥ tau·w implies rank ≥ tau — the uniform draw rejects before the
// logarithm is ever taken. Non-positive weights have rank +Inf and are
// always rejected by a full sampler; tau·w ≤ 0 ≤ u covers them too.
const rejectGuard = 1e-9

// fastRejectMult returns the guard multiplier m such that u ≥ m·tau·w
// certainly implies Rank(u, w) ≥ tau for the given family, or NaN for
// unknown families (NaN·w comparisons are always false, so the fast path
// self-disables and every arrival takes the exact rank comparison).
func fastRejectMult(fam RankFamily) float64 {
	switch fam.(type) {
	case PPS, EXP:
		return 1 + rejectGuard
	}
	return math.NaN()
}
