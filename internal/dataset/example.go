package dataset

// FigureFive returns the worked example data set of Figure 5(A): three
// instances over keys 1..6. It is used by cmd/sampledemo, the quickstart
// example, and the tests that reproduce the paper's worked aggregates
// (max-dominance over even keys of instances {1,2} is 40; the L1 distance
// between instances {2,3} over keys {1,2,3} is 18).
func FigureFive() *Matrix {
	return NewMatrix(
		Instance{1: 15, 3: 10, 4: 5, 5: 10, 6: 10},
		Instance{1: 20, 2: 10, 3: 12, 4: 20, 6: 10},
		Instance{1: 10, 2: 15, 3: 15, 5: 15, 6: 10},
	)
}

// FigureFiveSharedSeeds returns the shared seed vector u of Figure 5(B)
// (one seed per key 1..6, used for consistent / coordinated PPS ranks).
func FigureFiveSharedSeeds() map[Key]float64 {
	return map[Key]float64{1: 0.22, 2: 0.75, 3: 0.07, 4: 0.92, 5: 0.55, 6: 0.37}
}

// FigureFiveIndependentSeeds returns the per-instance seed vectors u1,u2,u3
// of Figure 5(B) for independent PPS ranks.
func FigureFiveIndependentSeeds() []map[Key]float64 {
	return []map[Key]float64{
		{1: 0.22, 2: 0.75, 3: 0.07, 4: 0.92, 5: 0.55, 6: 0.37},
		{1: 0.47, 2: 0.58, 3: 0.71, 4: 0.84, 5: 0.25, 6: 0.32},
		{1: 0.63, 2: 0.92, 3: 0.08, 4: 0.59, 5: 0.32, 6: 0.80},
	}
}
