package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitives(t *testing.T) {
	cases := []struct {
		v                  []float64
		max, min, rg, or   float64
		secondLargest, xor float64
	}{
		{[]float64{3, 1, 2}, 3, 1, 2, 1, 2, 1},
		{[]float64{0, 0}, 0, 0, 0, 0, 0, 0},
		{[]float64{5}, 5, 5, 0, 1, 5, 1},
		{[]float64{2, 2, 2}, 2, 2, 0, 1, 2, 1},
		{[]float64{0, 7}, 7, 0, 7, 1, 0, 1},
	}
	for _, c := range cases {
		if got := Max(c.v); got != c.max {
			t.Errorf("Max(%v) = %v, want %v", c.v, got, c.max)
		}
		if got := Min(c.v); got != c.min {
			t.Errorf("Min(%v) = %v, want %v", c.v, got, c.min)
		}
		if got := Range(c.v); got != c.rg {
			t.Errorf("Range(%v) = %v, want %v", c.v, got, c.rg)
		}
		if got := OR(c.v); got != c.or {
			t.Errorf("OR(%v) = %v, want %v", c.v, got, c.or)
		}
		if len(c.v) >= 2 {
			if got := Lth(c.v, 2); got != c.secondLargest {
				t.Errorf("Lth(%v, 2) = %v, want %v", c.v, got, c.secondLargest)
			}
		}
	}
	if XOR([]float64{1, 0}) != 1 || XOR([]float64{1, 1}) != 0 || XOR([]float64{0, 0}) != 0 {
		t.Error("XOR truth table wrong")
	}
}

func TestLthQuantiles(t *testing.T) {
	v := []float64{4, 9, 1, 7}
	want := []float64{9, 7, 4, 1}
	for l := 1; l <= 4; l++ {
		if got := Lth(v, l); got != want[l-1] {
			t.Errorf("Lth(%v, %d) = %v, want %v", v, l, got, want[l-1])
		}
	}
	if Lth(v, 1) != Max(v) || Lth(v, len(v)) != Min(v) {
		t.Error("Lth endpoints disagree with Max/Min")
	}
	defer func() {
		if recover() == nil {
			t.Error("Lth out of range did not panic")
		}
	}()
	Lth(v, 5)
}

func TestRGd(t *testing.T) {
	v := []float64{1, 4}
	if got := RGd(1)(v); got != 3 {
		t.Errorf("RGd(1) = %v", got)
	}
	if got := RGd(2)(v); got != 9 {
		t.Errorf("RGd(2) = %v", got)
	}
	if got := RGd(0.5)(v); math.Abs(got-math.Sqrt(3)) > 1e-12 {
		t.Errorf("RGd(0.5) = %v", got)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := FigureFive()
	if m.R() != 3 {
		t.Fatalf("R = %d", m.R())
	}
	keys := m.Keys()
	if len(keys) != 6 {
		t.Fatalf("keys = %v", keys)
	}
	if v := m.Vector(4); v[0] != 5 || v[1] != 20 || v[2] != 0 {
		t.Errorf("Vector(4) = %v", v)
	}
	if got := m.Instances[0].Total(); got != 50 {
		t.Errorf("instance 1 total = %v", got)
	}
	c := m.Instances[0].Clone()
	c[1] = 999
	if m.Instances[0][1] == 999 {
		t.Error("Clone aliases original")
	}
	ks := m.Instances[0].Keys()
	if len(ks) != 5 || ks[0] != 1 {
		t.Errorf("instance keys = %v", ks)
	}
}

// TestFigureFiveWorkedAggregates locks the §7 worked numbers: 40 and 18.
func TestFigureFiveWorkedAggregates(t *testing.T) {
	m := FigureFive()
	m12 := NewMatrix(m.Instances[0], m.Instances[1])
	even := func(h Key) bool { return h%2 == 0 }
	if got := m12.SumAggregate(Max, even); got != 40 {
		t.Errorf("max-dominance even keys {1,2} = %v, want 40", got)
	}
	m23 := NewMatrix(m.Instances[1], m.Instances[2])
	first3 := func(h Key) bool { return h <= 3 }
	if got := m23.SumAggregate(Range, first3); got != 18 {
		t.Errorf("L1 distance keys {1,2,3} instances {2,3} = %v, want 18", got)
	}
	// Distinct count of the whole matrix via OR.
	if got := m.SumAggregate(OR, nil); got != 6 {
		t.Errorf("distinct keys = %v, want 6", got)
	}
}

// TestPrimitiveInvariantsQuick drives the structural identities with
// testing/quick.
func TestPrimitiveInvariantsQuick(t *testing.T) {
	f := func(a, b, c float64) bool {
		v := []float64{math.Abs(a), math.Abs(b), math.Abs(c)}
		if Max(v) < Min(v) {
			return false
		}
		if Range(v) != Max(v)-Min(v) {
			return false
		}
		if (OR(v) == 1) != (Max(v) > 0) {
			return false
		}
		return Lth(v, 2) >= Min(v) && Lth(v, 2) <= Max(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSumAggregateNilSelection(t *testing.T) {
	m := FigureFive()
	all := m.SumAggregate(Max, nil)
	sel := m.SumAggregate(Max, func(Key) bool { return true })
	if all != sel {
		t.Errorf("nil selection %v != full selection %v", all, sel)
	}
	none := m.SumAggregate(Max, func(Key) bool { return false })
	if none != 0 {
		t.Errorf("empty selection = %v", none)
	}
}
