// Package dataset models the paper's data: a matrix of instances × keys.
//
// Each instance assigns nonnegative values to keys drawn from a shared key
// universe (§1). Instances are snapshots of a changing database, periodic
// request logs, or sensor measurement rounds. Only positive values are
// represented explicitly (sparse representation), matching the setting where
// weighted sampling processes active keys only.
package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Key identifies a record across instances.
type Key uint64

// Instance is a single assignment of positive values to keys. A key absent
// from the map has value 0.
type Instance map[Key]float64

// Value returns the value of key h (0 when absent).
func (in Instance) Value(h Key) float64 { return in[h] }

// Total returns the sum of all values in the instance.
func (in Instance) Total() float64 {
	t := 0.0
	for _, v := range in {
		t += v
	}
	return t
}

// Keys returns the instance's active keys in ascending order.
func (in Instance) Keys() []Key {
	ks := make([]Key, 0, len(in))
	for h := range in {
		ks = append(ks, h)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	for h, v := range in {
		out[h] = v
	}
	return out
}

// Matrix is a set of r dispersed instances over a shared key universe.
type Matrix struct {
	Instances []Instance
}

// NewMatrix builds a matrix from the given instances.
func NewMatrix(instances ...Instance) *Matrix {
	return &Matrix{Instances: instances}
}

// R returns the number of instances.
func (m *Matrix) R() int { return len(m.Instances) }

// Vector returns v(h): the values of key h across all instances.
func (m *Matrix) Vector(h Key) []float64 {
	v := make([]float64, len(m.Instances))
	for i, in := range m.Instances {
		v[i] = in[h]
	}
	return v
}

// Keys returns the union of active keys over all instances, ascending.
func (m *Matrix) Keys() []Key {
	seen := make(map[Key]struct{})
	for _, in := range m.Instances {
		for h := range in {
			seen[h] = struct{}{}
		}
	}
	ks := make([]Key, 0, len(seen))
	for h := range seen {
		ks = append(ks, h)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// SumAggregate computes the exact sum aggregate Σ_{h∈sel} f(v(h)) over the
// union of active keys. A nil sel selects every key. This is the ground
// truth the estimators approximate.
func (m *Matrix) SumAggregate(f Func, sel func(Key) bool) float64 {
	total := 0.0
	for _, h := range m.Keys() {
		if sel != nil && !sel(h) {
			continue
		}
		total += f(m.Vector(h))
	}
	return total
}

// Func is a multi-instance primitive applied to the values of one key.
type Func func(v []float64) float64

// Max returns the maximum entry (0 for an empty vector).
func Max(v []float64) float64 {
	m := 0.0
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum entry (0 for an empty vector).
func Min(v []float64) float64 {
	m := 0.0
	for i, x := range v {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Lth returns the ℓ-th largest entry, 1-based; Lth(v, 1) == Max(v) and
// Lth(v, len(v)) == Min(v). It panics when ℓ is out of range.
func Lth(v []float64, l int) float64 {
	if l < 1 || l > len(v) {
		panic(fmt.Sprintf("dataset: Lth index %d out of range for r=%d", l, len(v)))
	}
	s := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s[l-1]
}

// Range returns RG(v) = max(v) − min(v).
func Range(v []float64) float64 { return Max(v) - Min(v) }

// RGd returns the exponentiated range RG(v)^d for d > 0.
func RGd(d float64) Func {
	return func(v []float64) float64 {
		rg := Range(v)
		// Integer-like powers are computed by repeated multiplication to
		// avoid math.Pow cost in the common d ∈ {1,2} cases.
		switch d {
		case 1:
			return rg
		case 2:
			return rg * rg
		}
		return math.Pow(rg, d)
	}
}

// OR returns 1 if any entry is positive, 0 otherwise (Boolean OR when the
// domain is {0,1}).
func OR(v []float64) float64 {
	for _, x := range v {
		if x > 0 {
			return 1
		}
	}
	return 0
}

// XOR returns the parity of the number of positive entries (Boolean XOR on
// binary domains with r=2).
func XOR(v []float64) float64 {
	c := 0
	for _, x := range v {
		if x > 0 {
			c++
		}
	}
	return float64(c % 2)
}
