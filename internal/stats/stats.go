// Package stats provides the small statistical toolkit shared by tests,
// experiments and benchmarks: numerically stable moment accumulation
// (Welford), coefficient of variation, and a deterministic Monte-Carlo
// harness.
package stats

import (
	"math"

	"repro/internal/randx"
)

// Welford accumulates mean and variance in one pass with the classic
// numerically stable update. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (dividing by n).
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the unbiased sample variance (dividing by n−1).
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return math.Sqrt(w.SampleVar() / float64(w.n))
}

// CV returns the coefficient of variation sqrt(Var)/|Mean| (infinite for a
// zero mean with positive variance).
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		if w.m2 == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(w.Var()) / math.Abs(w.mean)
}

// MonteCarlo runs n replications of a randomized estimate and returns the
// accumulated moments. Each replication receives its own deterministic
// child generator, so the harness is reproducible and insensitive to how
// many draws a replication consumes.
func MonteCarlo(seed uint64, n int, rep func(rng *randx.RNG) float64) *Welford {
	root := randx.New(seed)
	var w Welford
	for i := 0; i < n; i++ {
		w.Add(rep(root.Split()))
	}
	return &w
}

// NormalizedVar returns VAR/total², the per-figure normalization the paper
// uses for sum aggregates (Figure 7).
func NormalizedVar(variance, total float64) float64 {
	if total == 0 {
		return 0
	}
	return variance / (total * total)
}

// Bisect finds x in [lo, hi] with f(x) ≈ 0 for a continuous monotone f,
// using iters bisection steps. It assumes f(lo) and f(hi) bracket a root;
// if they do not, it returns the endpoint with the smaller |f|.
func Bisect(lo, hi float64, iters int, f func(float64) float64) float64 {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo
	}
	if fhi == 0 {
		return hi
	}
	if (flo > 0) == (fhi > 0) {
		if math.Abs(flo) < math.Abs(fhi) {
			return lo
		}
		return hi
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
