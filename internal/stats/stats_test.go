package stats

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestWelfordMoments(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Errorf("population var = %v, want 4", w.Var())
	}
	if math.Abs(w.SampleVar()-32.0/7) > 1e-12 {
		t.Errorf("sample var = %v, want %v", w.SampleVar(), 32.0/7)
	}
	if math.Abs(w.CV()-2.0/5) > 1e-12 {
		t.Errorf("cv = %v, want 0.4", w.CV())
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CV() != 0 {
		t.Error("empty accumulator not zero")
	}
	if !math.IsInf(w.StdErr(), 1) {
		t.Error("StdErr of empty accumulator should be +inf")
	}
	w.Add(3)
	if w.Var() != 0 || w.SampleVar() != 0 {
		t.Error("single observation variance not zero")
	}
	var z Welford
	z.Add(0)
	z.Add(0)
	if z.CV() != 0 {
		t.Errorf("CV of constant zero = %v", z.CV())
	}
	var m Welford
	m.Add(-1)
	m.Add(1)
	if !math.IsInf(m.CV(), 1) {
		t.Errorf("CV with zero mean and spread = %v, want +inf", m.CV())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Huge offset with tiny variance: the naive sum-of-squares approach
	// would catastrophically cancel.
	var w Welford
	const offset = 1e12
	for i := 0; i < 1000; i++ {
		w.Add(offset + float64(i%2))
	}
	if math.Abs(w.Var()-0.25) > 1e-6 {
		t.Errorf("variance = %v, want 0.25", w.Var())
	}
}

func TestMonteCarloReproducible(t *testing.T) {
	rep := func(rng *randx.RNG) float64 { return rng.Float64() }
	a := MonteCarlo(5, 1000, rep)
	b := MonteCarlo(5, 1000, rep)
	if a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Error("MonteCarlo not reproducible for equal seeds")
	}
	c := MonteCarlo(6, 1000, rep)
	if a.Mean() == c.Mean() {
		t.Error("different seeds produced identical means")
	}
	if math.Abs(a.Mean()-0.5) > 0.03 {
		t.Errorf("uniform mean = %v", a.Mean())
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(0, 10, 100, func(x float64) float64 { return x*x - 2 })
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %v, want √2", root)
	}
	// Decreasing function.
	root = Bisect(0, 1, 100, func(x float64) float64 { return 0.25 - x })
	if math.Abs(root-0.25) > 1e-9 {
		t.Errorf("root = %v, want 0.25", root)
	}
	// No bracketing: returns the endpoint with smaller |f|.
	got := Bisect(0, 1, 50, func(x float64) float64 { return x + 1 })
	if got != 0 {
		t.Errorf("unbracketed root = %v, want 0", got)
	}
	// Exact root at an endpoint.
	if got := Bisect(2, 5, 50, func(x float64) float64 { return x - 2 }); got != 2 {
		t.Errorf("endpoint root = %v", got)
	}
}

func TestNormalizedVar(t *testing.T) {
	if got := NormalizedVar(4, 2); got != 1 {
		t.Errorf("NormalizedVar(4,2) = %v", got)
	}
	if got := NormalizedVar(4, 0); got != 0 {
		t.Errorf("NormalizedVar with zero total = %v", got)
	}
}
