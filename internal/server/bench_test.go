package server_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/pkg/client"
)

// BenchmarkServerQuery measures the full HTTP round trip of a
// max-dominance query over two stored ~1000-key PPS summaries — the
// steady-state read path of a dispersed deployment.
func BenchmarkServerQuery(b *testing.B) {
	sites := fixture(10000)
	c, closeSrv := startServer(b, engine.Config{})
	defer closeSrv()
	ctx := context.Background()
	summ := core.NewSummarizer(testSalt)
	for i := 0; i < 2; i++ {
		tau := sampling.TauForExpectedSize(sites[i], 1000)
		if _, err := c.PostSummary(ctx, "flows", summ.SummarizePPS(i, sites[i], tau)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MaxDominance(ctx, "flows", 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestNDJSON measures the write path: a 10k-pair ndjson stream
// posted to /v1/ingest and summarized on arrival. b.SetBytes reports
// stream throughput.
func BenchmarkIngestNDJSON(b *testing.B) {
	sites := fixture(10000)
	body := ndjsonBody(sites[0])
	tau := sampling.TauForExpectedSize(sites[0], 1000)
	c, closeSrv := startServer(b, engine.Config{})
	defer closeSrv()
	ctx := context.Background()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Ingest(ctx, client.IngestOptions{
			Dataset: "flows", Instance: 0, Kind: "pps", Format: "ndjson",
			Salt: testSalt, SaltSet: true, Tau: tau,
		}, bytes.NewReader(body)); err != nil {
			b.Fatal(err)
		}
	}
}
