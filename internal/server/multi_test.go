package server_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/pkg/client"
)

// multiCSVBody renders the sites as one combined key,instance,value CSV
// stream; ids[i] is site i's instance ID.
func multiCSVBody(sites []dataset.Instance, ids []int) []byte {
	var buf bytes.Buffer
	buf.WriteString("key,instance,value\n")
	for i, in := range sites {
		for _, h := range in.Keys() {
			fmt.Fprintf(&buf, "%d,%d,%g\n", uint64(h), ids[i], in[h])
		}
	}
	return buf.Bytes()
}

// multiNdjsonBody is the ndjson equivalent of multiCSVBody.
func multiNdjsonBody(sites []dataset.Instance, ids []int) []byte {
	var buf bytes.Buffer
	for i, in := range sites {
		for _, h := range in.Keys() {
			fmt.Fprintf(&buf, "{\"key\":%d,\"instance\":%d,\"value\":%g}\n", uint64(h), ids[i], in[h])
		}
	}
	return buf.Bytes()
}

// TestIngestMultiEndToEnd: one POST /v1/ingest/multi populates every
// instance of a dataset with a single scan, and the stored summaries are
// bit-identical to the per-instance in-process path — across formats,
// kinds, engine configs, and both randomization modes. healthz reports
// the growing dataset count along the way.
func TestIngestMultiEndToEnd(t *testing.T) {
	sites := fixture(900)
	ids := []int{0, 1, 2}
	summ := core.NewSummarizer(testSalt)
	taus := make([]float64, len(sites))
	for i, in := range sites {
		taus[i] = sampling.TauForExpectedSize(in, 120)
	}

	for _, cfg := range []engine.Config{
		{},
		{Parallel: true, Shards: 3, BatchSize: 64, Async: true, QueueDepth: 2},
	} {
		name := "sequential"
		if cfg.Parallel {
			name = "sharded-async"
		}
		t.Run(name, func(t *testing.T) {
			c, closeSrv := startServer(t, cfg)
			defer closeSrv()
			ctx := context.Background()

			// PPS over ndjson with per-instance thresholds.
			res, err := c.IngestMulti(ctx, client.MultiIngestOptions{
				Dataset: "flows", Instances: ids, Kind: "pps", Format: "ndjson",
				Salt: testSalt, SaltSet: true, Taus: taus,
			}, bytes.NewReader(multiNdjsonBody(sites, ids)))
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			for _, in := range sites {
				want += int64(len(in))
			}
			if res.Pairs != want || len(res.Sizes) != len(ids) {
				t.Fatalf("IngestMulti = %+v, want %d pairs over %d instances", res, want, len(ids))
			}
			localPPS := make([]*core.PPSSummary, len(sites))
			for i, in := range sites {
				localPPS[i] = summ.SummarizePPS(ids[i], in, taus[i])
				if res.Sizes[i] != localPPS[i].Len() {
					t.Errorf("instance %d: stored size %d, want %d", ids[i], res.Sizes[i], localPPS[i].Len())
				}
			}
			srvDom, err := c.MaxDominance(ctx, "flows", 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			locDom, err := core.MaxDominance(localPPS[0], localPPS[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			if srvDom.HT != locDom.HT || srvDom.L != locDom.L {
				t.Errorf("maxdominance over one-pass dataset: got (%v, %v), want (%v, %v)",
					srvDom.HT, srvDom.L, locDom.HT, locDom.L)
			}
			sum2, err := c.Sum(ctx, "flows", 2)
			if err != nil {
				t.Fatal(err)
			}
			if want := localPPS[2].SubsetSum(nil); sum2.Sum != want {
				t.Errorf("sum over one-pass dataset: got %v, want %v", sum2.Sum, want)
			}

			// Bottom-k over CSV, coordinated randomization: the one-pass
			// path must reproduce the shared-seed per-instance summaries.
			co := core.NewCoordinatedSummarizer(testSalt)
			res, err = c.IngestMulti(ctx, client.MultiIngestOptions{
				Dataset: "ranks", Instances: ids, Kind: "bottomk", K: 80, Format: "csv",
				Salt: testSalt, SaltSet: true, Shared: true,
			}, bytes.NewReader(multiCSVBody(sites, ids)))
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range sites {
				if want := co.SummarizeBottomK(ids[i], in, 80, sampling.PPS{}); res.Sizes[i] != want.Len() {
					t.Errorf("coordinated instance %d: stored size %d, want %d", ids[i], res.Sizes[i], want.Len())
				}
			}

			hr, err := c.Health(ctx)
			if err != nil || hr.Status != "ok" || hr.Datasets != 2 {
				t.Errorf("Health = %+v, %v; want ok with 2 datasets", hr, err)
			}
		})
	}
}

// TestIngestMultiErrors: malformed parameters and bodies fail cleanly
// with the right status codes, and never corrupt the registry.
func TestIngestMultiErrors(t *testing.T) {
	sites := fixture(150)
	ids := []int{0, 1, 2}
	c, closeSrv := startServer(t, engine.Config{})
	defer closeSrv()
	ctx := context.Background()

	expect := func(name string, err error, fragment string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: expected an error", name)
			return
		}
		if !strings.Contains(err.Error(), fragment) {
			t.Errorf("%s: error %q does not mention %q", name, err, fragment)
		}
	}

	_, err := c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: nil, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5},
	}, bytes.NewReader(nil))
	expect("missing instances", err, "instances parameter")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: []int{0, 0}, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5},
	}, bytes.NewReader(nil))
	expect("duplicate instance", err, "duplicate instance")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5, 6},
	}, bytes.NewReader(nil))
	expect("tau count", err, "tau values")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "set", Salt: 1, SaltSet: true,
	}, bytes.NewReader(nil))
	expect("set kind", err, "pps and bottomk")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5}, Format: "csv",
	}, strings.NewReader("1,9,3\n"))
	expect("unlisted instance", err, "instance 9")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5}, Format: "csv",
	}, strings.NewReader("1,0,3\n1,0,4\n"))
	expect("repeated pair", err, "repeated")
	// The same key in two different instances is the whole point, not an
	// error.
	if _, err := c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5}, Format: "csv",
	}, strings.NewReader("1,0,3\n1,1,4\n")); err != nil {
		t.Errorf("same key across instances: %v", err)
	}
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5}, Format: "csv",
	}, strings.NewReader("1,0\n"))
	expect("missing column", err, "key,instance,value")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "m", Instances: ids, Kind: "pps", Salt: 1, SaltSet: true, Taus: []float64{5},
	}, strings.NewReader(`{"key":1,"value":2}`+"\n"))
	expect("missing instance field", err, "instance")

	// Randomization conflicts are 409s, pre-checked before the body.
	if _, err := c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "pinned", Instances: ids, Kind: "pps",
		Salt: testSalt, SaltSet: true, Taus: []float64{5},
	}, bytes.NewReader(multiNdjsonBody(sites, ids))); err != nil {
		t.Fatal(err)
	}
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "pinned", Instances: ids, Kind: "pps",
		Salt: 999, SaltSet: true, Taus: []float64{5},
	}, bytes.NewReader(nil))
	expect("salt conflict", err, "HTTP 409")
	_, err = c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "pinned", Instances: ids, Kind: "bottomk", K: 5,
	}, bytes.NewReader(nil))
	expect("kind conflict", err, "HTTP 409")
}
