//go:build race

// Race-detector stress test for the registry's concurrent surface:
// writers (Put on several datasets), the persistence cut path
// (DumpCut's dump/commit closures, which read registry state after the
// lock is released), and lock-free readers (healthz, List, Get) all at
// once. Gated on the race build: the assertions are weak on purpose —
// the -race instrumentation is the test.
package server

import (
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestStressRegistryPutDumpCutHealthz(t *testing.T) {
	reg := NewRegistry()
	srv := New(reg, engine.Config{})

	start := make(chan struct{})
	done := make(chan struct{})

	// Writers: one dataset per goroutine, monotonically increasing
	// instance IDs (the registry rejects duplicate instances).
	var writers sync.WaitGroup
	for _, ds := range []string{"alpha", "beta", "gamma"} {
		writers.Add(1)
		go func(ds string) {
			defer writers.Done()
			<-start
			for i := 0; i < 300; i++ {
				if err := reg.Put(ds, persistSummary(i)); err != nil {
					t.Errorf("put %s/%d: %v", ds, i, err)
					return
				}
			}
		}(ds)
	}

	var aux sync.WaitGroup

	// Cutter: take consistent cuts and walk them while writers run. The
	// dump closure iterates a frozen cut after the registry lock is
	// dropped, so it races with Put unless the cut really is detached.
	aux.Add(1)
	go func() {
		defer aux.Done()
		<-start
		ok := false
		for {
			select {
			case <-done:
				return
			default:
			}
			dump, commit := reg.DumpCut()
			if err := dump(func(string, core.Summary) error { return nil }); err != nil {
				t.Errorf("dump: %v", err)
			}
			ok = !ok
			commit(ok)
		}
	}()

	// Probes: the healthz handler and the read-only registry surface.
	for i := 0; i < 2; i++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			<-start
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
				if rec.Code != 200 {
					t.Errorf("healthz = %d", rec.Code)
					return
				}
				reg.Count()
				reg.List()
			}
		}()
	}

	close(start)
	writers.Wait()
	close(done)
	aux.Wait()

	if got := reg.Count(); got != 3 {
		t.Fatalf("datasets after stress = %d, want 3", got)
	}
}
