package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// maxSummaryBody bounds a posted summary body. 64 MiB holds tens of
// millions of wire-format entries — far beyond any sensible summary (the
// whole point of summarization is that these are small).
const maxSummaryBody = 64 << 20

// Server is the HTTP face of a Registry. It is an http.Handler serving:
//
//	GET  /healthz              liveness probe (status + dataset count)
//	GET  /v1/datasets          list registered datasets
//	GET  /v1/summaries         fetch one stored summary in wire form
//	POST /v1/summaries         store a summary (core JSON wire format)
//	POST /v1/ingest            summarize a raw CSV/ndjson pair stream
//	POST /v1/ingest/multi      one-pass multi-instance ingest (instance column)
//	GET  /v1/query             estimate over a stored subset
//
// Every error response is JSON: {"error": "..."}.
type Server struct {
	reg *Registry
	cfg engine.Config
	mux *http.ServeMux
}

// New builds a server around a registry. The engine config selects the
// summarization strategy of the ingest path (zero value = sequential; see
// engine.Config for the sharded variants). New panics on an invalid
// config — surfacing the misconfiguration at construction rather than as
// a per-request pipeline panic; callers holding user input validate with
// engine.Config.Validate first (as cmd/summaryd does).
func New(reg *Registry, cfg engine.Config) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Server{reg: reg, cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Status plus dataset count: load balancers probe liveness, and
		// operators get a one-number capacity read for free.
		writeJSON(w, http.StatusOK, HealthResult{Status: "ok", Datasets: s.reg.Count()})
	})
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/summaries", s.handleFetchSummary)
	s.mux.HandleFunc("POST /v1/summaries", s.handlePostSummary)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/multi", s.handleIngestMulti)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError maps a registry/decode error to its status code.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrIncompatible):
		status = http.StatusConflict
	case errors.Is(err, core.ErrUnknownVersion):
		// A future wire format: tell the poster to negotiate down rather
		// than hiding the cause in a generic 400.
		status = http.StatusUnsupportedMediaType
	}
	writeJSON(w, status, ErrorResult{Error: err.Error()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handlePostSummary(w http.ResponseWriter, r *http.Request) {
	ds := r.URL.Query().Get("dataset")
	if ds == "" {
		writeError(w, fmt.Errorf("server: missing dataset parameter"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSummaryBody))
	if err != nil {
		writeError(w, fmt.Errorf("server: reading summary body: %w", err))
		return
	}
	sum, err := core.DecodeSummary(body)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.reg.Put(ds, sum); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, PostResult{
		Dataset:  ds,
		Instance: sum.InstanceID(),
		Kind:     sum.Kind(),
		Size:     sum.Size(),
	})
}

func (s *Server) handleFetchSummary(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ds := q.Get("dataset")
	instance, err := strconv.Atoi(q.Get("instance"))
	if ds == "" || err != nil {
		writeError(w, fmt.Errorf("server: fetch needs dataset and instance parameters"))
		return
	}
	sums, err := s.reg.Get(ds, []int{instance})
	if err != nil {
		writeError(w, err)
		return
	}
	data, err := json.Marshal(sums[0])
	if err != nil {
		writeError(w, fmt.Errorf("server: encoding summary: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ds := q.Get("dataset")
	if ds == "" {
		writeError(w, fmt.Errorf("server: missing dataset parameter"))
		return
	}
	instances, err := parseInstances(q.Get("instances"))
	if err != nil {
		writeError(w, err)
		return
	}
	sums, err := s.reg.Get(ds, instances)
	if err != nil {
		writeError(w, err)
		return
	}
	got := make([]int, len(sums))
	for i, sum := range sums {
		got[i] = sum.InstanceID()
	}
	switch query := q.Get("q"); query {
	case "distinct":
		sets, err := asKind[*core.SetSummary](sums, "set", "distinct")
		if err != nil {
			writeError(w, err)
			return
		}
		est, err := core.DistinctCountMulti(sets, nil)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DistinctResult{
			Dataset: ds, Instances: got,
			HT: est.HT, L: est.L, KeysUsed: est.KeysUsed,
		})
	case "maxdominance":
		pps, err := asKind[*core.PPSSummary](sums, "pps", "maxdominance")
		if err != nil {
			writeError(w, err)
			return
		}
		if len(pps) != 2 {
			writeError(w, fmt.Errorf("server: maxdominance needs exactly 2 instances, got %d (pass instances=i,j)", len(pps)))
			return
		}
		est, err := core.MaxDominance(pps[0], pps[1], nil)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DominanceResult{
			Dataset: ds, Instances: got,
			HT: est.HT, L: est.L, KeysUsed: est.KeysUsed,
		})
	case "quantile":
		pps, err := asKind[*core.PPSSummary](sums, "pps", "quantile")
		if err != nil {
			writeError(w, err)
			return
		}
		key, err := strconv.ParseUint(q.Get("key"), 10, 64)
		if err != nil {
			writeError(w, fmt.Errorf("server: quantile needs a key parameter: %w", err))
			return
		}
		l := 1
		if v := q.Get("l"); v != "" {
			if l, err = strconv.Atoi(v); err != nil {
				writeError(w, fmt.Errorf("server: invalid quantile index %q", v))
				return
			}
		}
		est, err := core.QuantilePPS(pps, dataset.Key(key), l)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, QuantileResult{
			Dataset: ds, Instances: got, Key: key, Index: l,
			HT: est.HT, Sampled: est.Sampled,
		})
	case "sum":
		if len(sums) != 1 {
			writeError(w, fmt.Errorf("server: sum is a single-instance query, got %d instances (pass instances=i)", len(sums)))
			return
		}
		var total float64
		switch sum := sums[0].(type) {
		case *core.PPSSummary:
			total = sum.SubsetSum(nil)
		case *core.BottomKSummary:
			total = sum.SubsetSum(nil)
		case *core.SetSummary:
			// HT cardinality estimate of the underlying set.
			total = float64(sum.Len()) / sum.P
		default:
			writeError(w, fmt.Errorf("server: sum not supported for kind %s", sums[0].Kind()))
			return
		}
		writeJSON(w, http.StatusOK, SumResult{Dataset: ds, Instance: got[0], Sum: total})
	case "":
		writeError(w, fmt.Errorf("server: missing q parameter (distinct, maxdominance, quantile, sum)"))
	default:
		writeError(w, fmt.Errorf("server: unknown query %q (distinct, maxdominance, quantile, sum)", query))
	}
}

// asKind narrows stored summaries to the concrete type a query dispatches
// on, naming the query in the error.
func asKind[T core.Summary](sums []core.Summary, kind, query string) ([]T, error) {
	out := make([]T, len(sums))
	for i, s := range sums {
		t, ok := s.(T)
		if !ok {
			return nil, fmt.Errorf("server: %s requires %s summaries, dataset holds %s", query, kind, s.Kind())
		}
		out[i] = t
	}
	return out, nil
}

// parseInstances parses a comma-separated instance list ("" means all).
func parseInstances(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("server: invalid instance list %q: %w", s, err)
		}
		out[i] = n
	}
	return out, nil
}
