package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs/trace"
	"repro/pkg/api"
)

// maxSummaryBody bounds a posted summary body. 64 MiB holds tens of
// millions of wire-format entries — far beyond any sensible summary (the
// whole point of summarization is that these are small).
const maxSummaryBody = 64 << 20

// Server is the HTTP face of a Registry. It is an http.Handler serving:
//
//	GET  /healthz              liveness probe (status, dataset count, wire versions)
//	GET  /v1/datasets          list registered datasets
//	GET  /v1/summaries         fetch one stored summary (Accept-negotiated wire form)
//	POST /v1/summaries         store a summary (v1 JSON or v2 binary, by Content-Type)
//	POST /v1/ingest            summarize a raw CSV/ndjson pair stream
//	POST /v1/ingest/multi      one-pass multi-instance ingest (instance column)
//	GET  /v1/query             estimate over a stored subset
//
// Every error response is JSON: {"error": "..."}; wire-format negotiation
// failures (415/406) additionally list the supported versions.
type Server struct {
	reg         *Registry
	cfg         engine.Config
	mux         *http.ServeMux
	defaultWire core.Codec
	storeStatus func() StoreStatus
	obs         *Observer
	metricsOn   bool
	tracer      *trace.Tracer
	// wireVersions caches core.SupportedWireVersions() — the registered
	// codec set is fixed after init, and /healthz is probed constantly;
	// rebuilding the slice per probe was pure allocation.
	wireVersions []int
	// engine accumulates every ingest pipeline's final Stats() for
	// /healthz and the metrics registry.
	engine engineTotals
}

// Option configures a Server at construction.
type Option func(*Server)

// WithDefaultWire selects the wire format of summary fetch-backs when the
// client's Accept header names none (no header, or */*). The default
// default is version 1 (JSON) — the conservative choice for curl and old
// clients; a deployment fronted only by v2-aware clients can flip it
// (summaryd -wire 2). It panics on an unregistered version, like New on
// an invalid engine config: both are construction-time misconfigurations.
func WithDefaultWire(version int) Option {
	c, err := core.CodecByVersion(version)
	if err != nil {
		panic(err)
	}
	return func(s *Server) { s.defaultWire = c }
}

// WithStoreStatus adds durability reporting to /healthz: status is
// polled per probe and returned under the "store" key. summaryd passes
// the store's Status method when running with -data-dir; servers without
// durable storage omit the option and the key.
func WithStoreStatus(status func() StoreStatus) Option {
	return func(s *Server) { s.storeStatus = status }
}

// WithObserver instruments the server: every request flows through the
// observer's middleware (per-endpoint metrics, X-Request-ID assignment,
// structured request logs), and the observer's registry gains the
// engine-totals and dataset series. Without this option the server is
// entirely unobserved — the in-process and test path pays nothing, not
// even a wrapper allocation per request. One observer serves one server.
func WithObserver(o *Observer) Option {
	return func(s *Server) { s.obs = o }
}

// WithMetricsEndpoint mounts GET /metrics on the server's mux, serving
// the observer's registry in the Prometheus text exposition format. It
// requires WithObserver (New panics otherwise — exposing an endpoint
// with nothing behind it is a construction-time misconfiguration).
func WithMetricsEndpoint() Option {
	return func(s *Server) { s.metricsOn = true }
}

// WithTracer attaches a span recorder: the observer's middleware opens a
// root span per request (honoring an inbound traceparent header and
// emitting the response's next to X-Request-ID), handlers and the store
// hang child spans off it through the request context, and the
// recorder's ring of recent completed traces is served at
// GET /debug/traces. It requires WithObserver (New panics otherwise) —
// the middleware is where the root span lives. The tracer may be
// disabled at runtime (trace.Tracer.SetEnabled); a disabled tracer costs
// one atomic load per request and zero allocations.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// New builds a server around a registry. The engine config selects the
// summarization strategy of the ingest path (zero value = sequential; see
// engine.Config for the sharded variants). New panics on an invalid
// config — surfacing the misconfiguration at construction rather than as
// a per-request pipeline panic; callers holding user input validate with
// engine.Config.Validate first (as cmd/summaryd does).
func New(reg *Registry, cfg engine.Config, opts ...Option) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Server{reg: reg, cfg: cfg, mux: http.NewServeMux()}
	s.defaultWire, _ = core.CodecByVersion(1)
	// The codec registry is frozen after init; cache the version list so
	// liveness probes stop re-sorting it per request.
	s.wireVersions = core.SupportedWireVersions()
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Status plus dataset count: load balancers probe liveness, and
		// operators get a one-number capacity read plus the codec
		// vocabulary for free. The engine block is the richer node-health
		// signal (throughput, backpressure); a durable server additionally
		// reports its store: WAL extent, last snapshot, what recovery
		// replayed. Static parts (wire versions) are cached at New —
		// probes fire often enough that per-probe rebuilds showed up as
		// allocation (pinned by TestHealthzAllocs).
		hr := HealthResult{
			Status:       "ok",
			Datasets:     s.reg.Count(),
			WireVersions: s.wireVersions,
			Engine:       s.engineStatus(),
		}
		if s.storeStatus != nil {
			st := s.storeStatus()
			hr.Store = &st
		}
		writeJSON(w, http.StatusOK, hr)
	})
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/summaries", s.handleFetchSummary)
	s.mux.HandleFunc("POST /v1/summaries", s.handlePostSummary)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/multi", s.handleIngestMulti)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	if s.tracer != nil {
		if s.obs == nil {
			panic("server: WithTracer requires WithObserver")
		}
		s.mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.tracer.Traces())
		})
	}
	if s.obs != nil {
		s.obs.bindServer(s)
	}
	if s.metricsOn {
		if s.obs == nil {
			panic("server: WithMetricsEndpoint requires WithObserver")
		}
		s.mux.Handle("GET /metrics", s.obs.Registry().Handler())
	}
	return s
}

// ServeHTTP implements http.Handler. With an observer attached every
// request passes through its middleware; without one the mux is served
// directly — zero per-request overhead for unobserved servers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.obs != nil {
		s.obs.intercept(s.mux, w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", jsonContentType)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// jsonContentType is the explicit content type of every JSON response,
// charset included so proxies and browsers never guess.
const jsonContentType = "application/json; charset=utf-8"

// errNotAcceptable reports an Accept header that names no representation
// the server can produce (HTTP 406). Unknown wire *versions* are the
// separate, more specific core.ErrUnknownVersion (HTTP 415).
var errNotAcceptable = errors.New("server: no acceptable summary representation")

// checkDatasetName rejects a missing or overlong dataset parameter up
// front, before any request body is read or summarized — the same
// reject-early convention as the randomization conflict checks.
// Registry.Put enforces the length bound again for library callers.
func checkDatasetName(ds string) error {
	if ds == "" {
		return fmt.Errorf("server: missing dataset parameter")
	}
	if len(ds) > api.MaxDatasetName {
		return fmt.Errorf("server: dataset name is %d bytes (max %d)", len(ds), api.MaxDatasetName)
	}
	return nil
}

// writeError maps a registry/decode error to its status code.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	body := ErrorResult{Error: err.Error()}
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrIncompatible):
		status = http.StatusConflict
	case errors.Is(err, core.ErrUnknownVersion):
		// A future wire format: tell the poster which versions this build
		// speaks rather than hiding the cause in a generic 400.
		status = http.StatusUnsupportedMediaType
		body.Supported = core.SupportedWireVersions()
	case errors.Is(err, errNotAcceptable):
		status = http.StatusNotAcceptable
		body.Supported = core.SupportedWireVersions()
	}
	writeJSON(w, status, body)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handlePostSummary(w http.ResponseWriter, r *http.Request) {
	ds := r.URL.Query().Get("dataset")
	if err := checkDatasetName(ds); err != nil {
		writeError(w, err)
		return
	}
	// The server owns the buffered reader so the trailing-bytes check
	// below sees what the decoders left behind (both streaming decoders
	// reuse an existing *bufio.Reader instead of wrapping their own).
	body := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, maxSummaryBody), 4096)
	var (
		sum  core.Summary
		wire int
		err  error
	)
	// Content-Type drives the decoder. A content type that names a wire
	// version selects that codec strictly (a declared-v2 body that is not
	// v2 is a 400, not a guess); one outside the wire vocabulary — curl's
	// form-urlencoded default, text/plain, nothing at all — falls back to
	// sniffing, which keeps every pre-negotiation client working. An
	// explicitly named but unregistered version is the one case that must
	// not be guessed around: 415 with the supported list.
	//
	// v2 bodies take the zero-copy path: the posted bytes are stored as a
	// view and queried in place, never hydrated into maps (non-canonical
	// payloads fall back to the hydrating decoder inside
	// DecodeSummaryViewFrom).
	if codec, named, cterr := core.CodecByContentType(r.Header.Get("Content-Type")); cterr != nil {
		writeError(w, cterr)
		return
	} else if named {
		wire = codec.Version()
		if wire == 2 {
			sum, err = core.DecodeSummaryViewFrom(body)
		} else {
			sum, err = codec.DecodeFrom(body)
		}
	} else if head, _ := body.Peek(3); len(head) == 3 && sniffsV2(head) {
		wire = 2
		sum, err = core.DecodeSummaryViewFrom(body)
	} else {
		sum, wire, err = core.DecodeSummaryFrom(body)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	// One summary per post: the streaming v2 decoder stops after the last
	// declared entry, so enforce the whole-body discipline here (the JSON
	// path gets it from encoding/json). Without this, a client that
	// concatenates two summaries in one POST would lose the second with a
	// success response.
	if _, err := body.ReadByte(); err != io.EOF {
		writeError(w, fmt.Errorf("server: trailing data after summary (one summary per post)"))
		return
	}
	if err := s.reg.PutCtx(r.Context(), ds, sum); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, PostResult{
		Dataset:  ds,
		Instance: sum.InstanceID(),
		Kind:     sum.Kind(),
		Size:     sum.Size(),
		Wire:     wire,
	})
}

// negotiateFetchCodec resolves a summary fetch's Accept header to a codec.
// No header (or only wildcards) selects the server's default wire format;
// media ranges are scanned in order and the first one naming a registered
// format wins. An Accept that names only unregistered wire versions is a
// 415 carrying the supported list (the negotiation contract: unknown
// versions always answer 415); one naming only foreign types is a plain
// 406.
func (s *Server) negotiateFetchCodec(accept string) (core.Codec, error) {
	if accept == "" {
		return s.defaultWire, nil
	}
	var unknown error
	for _, part := range strings.Split(accept, ",") {
		media := part
		if i := strings.IndexByte(media, ';'); i >= 0 {
			media = media[:i] // media-range parameters (q=…) carry no format information here
		}
		media = strings.TrimSpace(media)
		if media == "*/*" || media == "application/*" {
			return s.defaultWire, nil
		}
		codec, named, err := core.CodecByContentType(media)
		if err != nil {
			unknown = err
			continue
		}
		if named {
			return codec, nil
		}
	}
	if unknown != nil {
		return nil, unknown
	}
	return nil, fmt.Errorf("%w: Accept %q", errNotAcceptable, accept)
}

func (s *Server) handleFetchSummary(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ds := q.Get("dataset")
	instance, err := strconv.Atoi(q.Get("instance"))
	if ds == "" || err != nil {
		writeError(w, fmt.Errorf("server: fetch needs dataset and instance parameters"))
		return
	}
	codec, err := s.negotiateFetchCodec(r.Header.Get("Accept"))
	if err != nil {
		writeError(w, err)
		return
	}
	sums, err := s.reg.Get(ds, []int{instance})
	if err != nil {
		writeError(w, err)
		return
	}
	if codec.Version() == 1 {
		// The JSON codec buffers regardless (encoding/json cannot stream),
		// so encode before committing to a status: a failure — NaN weights
		// in a stored summary, which JSON has no representation for — is a
		// clean error response, not a 200 with an empty body.
		data, err := codec.Encode(sums[0])
		if err != nil {
			writeError(w, fmt.Errorf("server: encoding summary: %w", err))
			return
		}
		w.Header().Set("Content-Type", jsonContentType)
		w.Header().Set("X-Summary-Wire-Version", "1")
		_, _ = w.Write(data)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.Header().Set("X-Summary-Wire-Version", strconv.Itoa(codec.Version()))
	// Stream the body through the codec: a million-entry summary flows
	// entry by entry instead of materializing a second copy server-side.
	// Headers are already out, but v2 encoding of a registry-held summary
	// (kind always known, any float bits representable) only fails when
	// the client vanishes mid-stream — and a truncated body failing the
	// client's decode is the right signal for that.
	_ = codec.EncodeTo(w, sums[0])
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ds := q.Get("dataset")
	if err := checkDatasetName(ds); err != nil {
		writeError(w, err)
		return
	}
	instances, err := parseInstances(q.Get("instances"))
	if err != nil {
		writeError(w, err)
		return
	}
	sums, err := s.reg.Get(ds, instances)
	if err != nil {
		writeError(w, err)
		return
	}
	got := make([]int, len(sums))
	for i, sum := range sums {
		got[i] = sum.InstanceID()
	}
	// The explain report and the per-summary scan spans share one
	// inspection pass: which representation each consulted summary answers
	// through (zero-copy view vs hydrated maps) and how much it holds.
	var report *api.Explain
	if q.Get("explain") == "1" {
		report = explainFor(sums)
	}
	query := q.Get("q")
	// Branch on the span before naming the child: the untraced path must
	// not pay the "query."+query concatenation.
	var qsp *trace.Span
	if sp := trace.SpanFromContext(r.Context()); sp != nil {
		qsp = sp.StartChild("query." + query)
		recordSummaryScans(qsp, sums)
	}
	defer qsp.Finish()
	switch query {
	case "distinct":
		// A single bottom-k instance answers its own distinct count with
		// the rank-conditioning estimator (exact when never thresholded);
		// the multi-instance form needs the set summaries' shared seeds.
		if len(sums) == 1 {
			if b, ok := sums[0].(core.BottomKReader); ok {
				est := core.BottomKDistinct(b)
				res := DistinctResult{
					Dataset: ds, Instances: got,
					HT: est, KeysUsed: b.Size(), Explain: report,
				}
				res.Accuracy = accuracyFor(core.BottomKDistinctStdErr(b, est))
				writeJSON(w, http.StatusOK, res)
				return
			}
		}
		sets, err := asKind[core.SetReader](sums, "set", "distinct")
		if err != nil {
			writeError(w, err)
			return
		}
		est, err := core.DistinctCountMultiReaders(sets, nil)
		if err != nil {
			writeError(w, err)
			return
		}
		res := DistinctResult{
			Dataset: ds, Instances: got,
			HT: est.HT, L: est.L, KeysUsed: est.KeysUsed, Explain: report,
		}
		res.Accuracy = accuracyFor(core.DistinctHTStdErr(sets, est.HT))
		writeJSON(w, http.StatusOK, res)
	case "maxdominance":
		pps, err := asKind[core.PPSReader](sums, "pps", "maxdominance")
		if err != nil {
			writeError(w, err)
			return
		}
		if len(pps) != 2 {
			writeError(w, fmt.Errorf("server: maxdominance needs exactly 2 instances, got %d (pass instances=i,j)", len(pps)))
			return
		}
		est, err := core.MaxDominanceReaders(pps[0], pps[1], nil)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DominanceResult{
			Dataset: ds, Instances: got,
			HT: est.HT, L: est.L, KeysUsed: est.KeysUsed, Explain: report,
		})
	case "quantile":
		pps, err := asKind[core.PPSReader](sums, "pps", "quantile")
		if err != nil {
			writeError(w, err)
			return
		}
		key, err := strconv.ParseUint(q.Get("key"), 10, 64)
		if err != nil {
			writeError(w, fmt.Errorf("server: quantile needs a key parameter: %w", err))
			return
		}
		l := 1
		if v := q.Get("l"); v != "" {
			if l, err = strconv.Atoi(v); err != nil {
				writeError(w, fmt.Errorf("server: invalid quantile index %q", v))
				return
			}
		}
		est, err := core.QuantilePPSReaders(pps, dataset.Key(key), l)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, QuantileResult{
			Dataset: ds, Instances: got, Key: key, Index: l,
			HT: est.HT, Sampled: est.Sampled, Explain: report,
		})
	case "sum":
		if len(sums) != 1 {
			writeError(w, fmt.Errorf("server: sum is a single-instance query, got %d instances (pass instances=i)", len(sums)))
			return
		}
		var total float64
		switch sum := sums[0].(type) {
		case core.SetReader:
			// HT cardinality estimate of the underlying set.
			total = float64(sum.Size()) / sum.SetP()
		case interface {
			SubsetSum(func(dataset.Key) bool) float64
		}:
			// PPS, bottom-k, and VarOpt summaries — hydrated or zero-copy
			// views — all answer the subset-sum estimate directly.
			total = sum.SubsetSum(nil)
		default:
			writeError(w, fmt.Errorf("server: sum not supported for kind %s", sums[0].Kind()))
			return
		}
		res := SumResult{Dataset: ds, Instance: got[0], Sum: total, Explain: report}
		res.Accuracy = accuracyFor(core.SumStdErr(sums[0], total))
		writeJSON(w, http.StatusOK, res)
	case "":
		writeError(w, fmt.Errorf("server: missing q parameter (distinct, maxdominance, quantile, sum)"))
	default:
		writeError(w, fmt.Errorf("server: unknown query %q (distinct, maxdominance, quantile, sum)", query))
	}
}

// accuracyFor renders a standard-error bound as the optional accuracy
// block, nil when no bound is known for the summary kind.
func accuracyFor(stderr float64, ok bool) *api.Accuracy {
	if !ok {
		return nil
	}
	return &api.Accuracy{StdErr: stderr, CI95: core.CI95Z * stderr}
}

// explainFor builds the explain=1 execution report: one entry per
// consulted summary with its representation (zero-copy view vs hydrated)
// and size, plus the scan-work totals.
func explainFor(sums []core.Summary) *api.Explain {
	out := &api.Explain{Summaries: make([]api.ExplainSummary, len(sums))}
	for i, sum := range sums {
		path, bytes := core.SummaryRepr(sum)
		es := api.ExplainSummary{
			Instance: sum.InstanceID(),
			Kind:     sum.Kind(),
			Path:     path,
			Entries:  sum.Size(),
			Bytes:    bytes,
		}
		out.Summaries[i] = es
		out.EntriesScanned += es.Entries
		out.BytesTouched += bytes
	}
	return out
}

// recordSummaryScans annotates a query span with the per-summary scan
// shape: instance, representation, entries, and view bytes. Attribute
// volume is capped so a wide instances= list cannot bloat the trace ring.
func recordSummaryScans(sp *trace.Span, sums []core.Summary) {
	if sp == nil {
		return
	}
	const maxRecorded = 8
	sp.SetInt("summaries", int64(len(sums)))
	for i, sum := range sums {
		if i == maxRecorded {
			sp.SetInt("summaries_unrecorded", int64(len(sums)-maxRecorded))
			break
		}
		path, bytes := core.SummaryRepr(sum)
		sp.SetAttr("s"+strconv.Itoa(i),
			fmt.Sprintf("instance=%d kind=%s path=%s entries=%d bytes=%d",
				sum.InstanceID(), sum.Kind(), path, sum.Size(), bytes))
	}
}

// sniffsV2 reports whether the leading bytes claim the v2 binary wire
// format specifically (magic plus version byte 2) — the gate for the
// zero-copy post path. Other claimed versions go through the ordinary
// sniffing decoder, which produces the canonical unknown-version error.
func sniffsV2(head []byte) bool {
	v, ok := core.SniffWireVersion(head)
	return ok && v == 2
}

// asKind narrows stored summaries to the concrete type a query dispatches
// on, naming the query in the error.
func asKind[T core.Summary](sums []core.Summary, kind, query string) ([]T, error) {
	out := make([]T, len(sums))
	for i, s := range sums {
		t, ok := s.(T)
		if !ok {
			return nil, fmt.Errorf("server: %s requires %s summaries, dataset holds %s", query, kind, s.Kind())
		}
		out[i] = t
	}
	return out, nil
}

// parseInstances parses a comma-separated instance list ("" means all).
func parseInstances(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("server: invalid instance list %q: %w", s, err)
		}
		out[i] = n
	}
	return out, nil
}
