package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/pkg/api"
)

// fakePersister records appends and can be told to fail, to test the
// registry's persistence contract without disk. Its Snapshot runs the
// dump and commit synchronously, inline under the registry lock — the
// most hostile legal schedule for the commit callback, which the
// Persister contract requires to be safe anywhere.
type fakePersister struct {
	appended  []string // "dataset/instance" in append order
	failNext  error
	due       bool
	snapErr   error      // next Snapshot fails (commit(false)) with this
	snapshots [][]string // dump contents per snapshot call
}

func (p *fakePersister) Append(ds string, s core.Summary) (bool, error) {
	if p.failNext != nil {
		err := p.failNext
		p.failNext = nil
		return false, err
	}
	p.appended = append(p.appended, fmt.Sprintf("%s/%d", ds, s.InstanceID()))
	due := p.due
	p.due = false
	return due, nil
}

func (p *fakePersister) Snapshot(dump func(emit func(string, core.Summary) error) error, commit func(ok bool), syncWait bool) (func() error, error) {
	if p.snapErr != nil {
		err := p.snapErr
		p.snapErr = nil
		commit(false)
		return nil, err
	}
	var image []string
	if err := dump(func(ds string, s core.Summary) error {
		image = append(image, fmt.Sprintf("%s/%d", ds, s.InstanceID()))
		return nil
	}); err != nil {
		commit(false)
		return nil, err
	}
	p.snapshots = append(p.snapshots, image)
	commit(true)
	return func() error { return nil }, nil
}

func persistSummary(instance int) core.Summary {
	return core.NewSummarizer(7).SummarizePPS(instance, dataset.Instance{1: 2, 3: 4}, 0.5)
}

func TestPutBoundsDatasetNameWithoutPersister(t *testing.T) {
	// The name bound is an API invariant, not a durability detail: an
	// in-memory registry must reject the same names the durable store
	// would, or the accepted-name set would depend on -data-dir — and a
	// registry populated without a persister could hold a name a later
	// SetPersister + Snapshot chokes on.
	reg := NewRegistry()
	long := make([]byte, api.MaxDatasetName+1)
	for i := range long {
		long[i] = 'n'
	}
	if err := reg.Put(string(long), persistSummary(0)); err == nil {
		t.Fatal("Put accepted a dataset name longer than api.MaxDatasetName")
	}
	if _, err := reg.Get(string(long), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("overlong dataset was registered anyway: err=%v", err)
	}
	if err := reg.Put(string(long[:api.MaxDatasetName]), persistSummary(0)); err != nil {
		t.Fatalf("put with max-length name: %v", err)
	}
}

func TestPutAppendsToPersister(t *testing.T) {
	reg := NewRegistry()
	p := &fakePersister{}
	reg.SetPersister(p)
	for i := 0; i < 3; i++ {
		if err := reg.Put("d", persistSummary(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	want := []string{"d/0", "d/1", "d/2"}
	if len(p.appended) != len(want) {
		t.Fatalf("appended %v, want %v", p.appended, want)
	}
	for i := range want {
		if p.appended[i] != want[i] {
			t.Fatalf("appended %v, want %v", p.appended, want)
		}
	}
}

func TestPutRollsBackOnPersistFailure(t *testing.T) {
	reg := NewRegistry()
	p := &fakePersister{}
	reg.SetPersister(p)

	// A failed append on a fresh dataset leaves no trace: the dataset must
	// not exist, or a restart would silently disagree with what the
	// client was told.
	p.failNext = errors.New("disk full")
	if err := reg.Put("d", persistSummary(0)); err == nil {
		t.Fatal("Put succeeded though the persister failed")
	}
	if reg.Count() != 0 {
		t.Fatalf("failed Put left %d datasets behind", reg.Count())
	}

	// A failed replacement restores the previous summary.
	first := persistSummary(0)
	if err := reg.Put("d", first); err != nil {
		t.Fatalf("put: %v", err)
	}
	p.failNext = errors.New("disk full")
	if err := reg.Put("d", persistSummary(0)); err == nil {
		t.Fatal("replacement succeeded though the persister failed")
	}
	sums, err := reg.Get("d", []int{0})
	if err != nil {
		t.Fatalf("get after rollback: %v", err)
	}
	if sums[0] != first {
		t.Fatal("rollback did not restore the previous summary")
	}
}

func TestPutSnapshotsWhenDue(t *testing.T) {
	reg := NewRegistry()
	p := &fakePersister{}
	reg.SetPersister(p)
	if err := reg.Put("b", persistSummary(1)); err != nil {
		t.Fatal(err)
	}
	p.due = true // next append reports a snapshot is due
	if err := reg.Put("a", persistSummary(0)); err != nil {
		t.Fatal(err)
	}
	if len(p.snapshots) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(p.snapshots))
	}
	// The dump is a consistent cut including the append that tripped it,
	// in deterministic order: datasets by name, instances ascending.
	want := []string{"a/0", "b/1"}
	got := p.snapshots[0]
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("snapshot dump %v, want %v", got, want)
	}
}

func TestDumpDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	for _, ds := range []string{"zeta", "alpha"} {
		for _, i := range []int{2, 0, 1} {
			if err := reg.Put(ds, persistSummary(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var got []string
	if err := reg.Dump(func(ds string, s core.Summary) error {
		got = append(got, fmt.Sprintf("%s/%d", ds, s.InstanceID()))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha/0", "alpha/1", "alpha/2", "zeta/0", "zeta/1", "zeta/2"}
	if len(got) != len(want) {
		t.Fatalf("dump %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dump %v, want %v", got, want)
		}
	}
}

func TestHealthzReportsStore(t *testing.T) {
	status := api.StoreStatus{Dir: "/tmp/x", WALRecords: 3, WALBytes: 123, Fsync: true}
	srv := New(NewRegistry(), engine.Config{}, WithStoreStatus(func() StoreStatus { return status }))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var hr HealthResult
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hr.Store == nil || *hr.Store != status {
		t.Fatalf("healthz store = %+v, want %+v", hr.Store, status)
	}

	// Without the option the key is absent entirely.
	srv = New(NewRegistry(), engine.Config{})
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["store"]; ok {
		t.Fatal("in-memory server reports a store in healthz")
	}
}

func TestRegistrySnapshotEntryPoint(t *testing.T) {
	reg := NewRegistry()
	// Without a persister, Snapshot is a harmless no-op.
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot without persister: %v", err)
	}
	p := &fakePersister{}
	reg.SetPersister(p)
	if err := reg.Put("d", persistSummary(0)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(p.snapshots) != 1 || len(p.snapshots[0]) != 1 || p.snapshots[0][0] != "d/0" {
		t.Fatalf("snapshot dump %v, want [[d/0]]", p.snapshots)
	}
}

func snapshotImages(t *testing.T, p *fakePersister) [][]string {
	t.Helper()
	return p.snapshots
}

func TestSnapshotCutsAreIncremental(t *testing.T) {
	reg := NewRegistry()
	p := &fakePersister{}
	reg.SetPersister(p)
	for _, ds := range []string{"a", "b"} {
		if err := reg.Put(ds, persistSummary(0)); err != nil {
			t.Fatal(err)
		}
	}
	// First snapshot covers everything.
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Only b mutates; the next cut must contain b alone — and it must
	// contain ALL of b's summaries, not just the new instance, because
	// chain files supersede by (dataset, instance) entry.
	if err := reg.Put("b", persistSummary(1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Nothing dirty: the cut is empty.
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	got := snapshotImages(t, p)
	want := [][]string{{"a/0", "b/0"}, {"b/0", "b/1"}, nil}
	if len(got) != len(want) {
		t.Fatalf("snapshots %v, want %v", got, want)
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("snapshot %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFailedSnapshotKeepsDatasetsDirty(t *testing.T) {
	reg := NewRegistry()
	p := &fakePersister{}
	reg.SetPersister(p)
	if err := reg.Put("d", persistSummary(0)); err != nil {
		t.Fatal(err)
	}
	p.snapErr = errors.New("disk full")
	if err := reg.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded though the persister failed")
	}
	// commit(false) must have left d dirty: the next cut re-covers it.
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	got := snapshotImages(t, p)
	if len(got) != 1 || fmt.Sprint(got[0]) != fmt.Sprint([]string{"d/0"}) {
		t.Fatalf("snapshots after failed attempt = %v, want [[d/0]]", got)
	}
}

func TestMarkCleanScopesFirstIncrementalCut(t *testing.T) {
	// Recovery replays through Put, marking everything dirty; MarkClean
	// narrows that to the datasets whose records the WAL still holds.
	reg := NewRegistry()
	for _, ds := range []string{"snapped", "walled"} {
		if err := reg.Put(ds, persistSummary(0)); err != nil {
			t.Fatal(err)
		}
	}
	p := &fakePersister{}
	reg.SetPersister(p)
	reg.MarkClean([]string{"walled"})
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	got := snapshotImages(t, p)
	if len(got) != 1 || fmt.Sprint(got[0]) != fmt.Sprint([]string{"walled/0"}) {
		t.Fatalf("first cut after MarkClean = %v, want [[walled/0]]", got)
	}
	// A dataset that mutates after MarkClean is dirty regardless.
	if err := reg.Put("snapped", persistSummary(1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatal(err)
	}
	got = snapshotImages(t, p)
	if len(got) != 2 || fmt.Sprint(got[1]) != fmt.Sprint([]string{"snapped/0", "snapped/1"}) {
		t.Fatalf("second cut = %v, want [snapped/0 snapped/1]", got)
	}
}
