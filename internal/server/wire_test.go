package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/pkg/api"
)

// wireFixture returns a server URL, its close func, and a PPS summary to
// post at it.
func wireFixture(t *testing.T, opts ...server.Option) (string, *core.PPSSummary, func()) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}, opts...))
	sites := fixture(800)
	summ := core.NewSummarizer(testSalt)
	return ts.URL, summ.SummarizePPSExpectedSize(0, sites[0], 120), ts.Close
}

func postBody(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeResult[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

// TestPostSummaryNegotiation: POST /v1/summaries accepts the same summary
// as v1 JSON and v2 binary — by declared Content-Type and by sniffing —
// and the stored results answer queries with identical bits.
func TestPostSummaryNegotiation(t *testing.T) {
	url, sum, closeSrv := wireFixture(t)
	defer closeSrv()

	v1, err := core.EncodeSummary(sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := core.EncodeSummary(sum, 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, dataset, ct string
		body              []byte
		wantWire          int
	}{
		{"v1 declared", "dsv1", "application/json", v1, 1},
		{"v2 declared", "dsv2", core.ContentTypeV2, v2, 2},
		{"v1 sniffed", "dsv1sniff", "application/x-www-form-urlencoded", v1, 1},
		{"v2 sniffed", "dsv2sniff", "", v2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postBody(t, url+"/v1/summaries?dataset="+tc.dataset, tc.ct, tc.body)
			if resp.StatusCode != http.StatusCreated {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			post := decodeResult[api.PostResult](t, resp)
			if post.Wire != tc.wantWire || post.Size != sum.Len() {
				t.Fatalf("PostResult = %+v, want wire %d, size %d", post, tc.wantWire, sum.Len())
			}
		})
	}

	// The stored summaries are the same object regardless of transport:
	// single-instance sum queries answer bit-identically.
	var sums [2]float64
	for i, ds := range []string{"dsv1", "dsv2"} {
		resp, err := http.Get(url + "/v1/query?dataset=" + ds + "&q=sum&instances=0")
		if err != nil {
			t.Fatal(err)
		}
		res := decodeResult[api.SumResult](t, resp)
		sums[i] = res.Sum
	}
	if sums[0] != sums[1] || sums[0] != sum.SubsetSum(nil) {
		t.Fatalf("v1-posted sum %v, v2-posted sum %v, in-process %v — must be bit-identical",
			sums[0], sums[1], sum.SubsetSum(nil))
	}
}

// TestPostSummaryUnknownVersion: unknown wire versions — whether declared
// in the Content-Type or carried inside a JSON body — answer 415 with a
// JSON error listing the supported versions.
func TestPostSummaryUnknownVersion(t *testing.T) {
	url, sum, closeSrv := wireFixture(t)
	defer closeSrv()
	v1, _ := core.EncodeSummary(sum, 1)

	for _, tc := range []struct {
		name, ct string
		body     []byte
	}{
		{"declared v9", "application/x-summary-v9", v1},
		{"json body version 9", "application/json", []byte(`{"version":9,"kind":"pps","tau":1}`)},
		{"binary future version", "", []byte{0xCB, 0x53, 0x07, 0x01, 0x00}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postBody(t, url+"/v1/summaries?dataset=x", tc.ct, tc.body)
			if resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Fatalf("status %d, want 415", resp.StatusCode)
			}
			e := decodeResult[api.ErrorResult](t, resp)
			if e.Error == "" || !reflect.DeepEqual(e.Supported, core.SupportedWireVersions()) {
				t.Fatalf("ErrorResult = %+v, want error text and supported %v",
					e, core.SupportedWireVersions())
			}
		})
	}
}

// TestPostSummaryRejectsTrailingData: a post carrying bytes beyond one
// summary — a second concatenated summary, or garbage — is a 400 in both
// wire formats, never a silent partial accept.
func TestPostSummaryRejectsTrailingData(t *testing.T) {
	url, sum, closeSrv := wireFixture(t)
	defer closeSrv()
	for _, tc := range []struct {
		name, ct string
		version  int
	}{
		{"v2 declared", core.ContentTypeV2, 2},
		{"v2 sniffed", "", 2},
		{"v1 declared", "application/json", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := core.EncodeSummary(sum, tc.version)
			if err != nil {
				t.Fatal(err)
			}
			double := append(append([]byte{}, data...), data...)
			resp := postBody(t, url+"/v1/summaries?dataset=trail", tc.ct, double)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("concatenated summaries: status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestFetchSummaryNegotiation: GET /v1/summaries honors Accept — JSON by
// default, v2 on request — with an explicit Content-Type (charset
// included for JSON) and a wire-version header, and both representations
// decode to summaries with identical query bits.
func TestFetchSummaryNegotiation(t *testing.T) {
	url, sum, closeSrv := wireFixture(t)
	defer closeSrv()
	v1, _ := core.EncodeSummary(sum, 1)
	resp := postBody(t, url+"/v1/summaries?dataset=ds", "application/json", v1)
	resp.Body.Close()

	fetch := func(accept string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, url+"/v1/summaries?dataset=ds&instance=0", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for _, tc := range []struct {
		name, accept, wantCT, wantVer string
	}{
		{"default json", "", "application/json; charset=utf-8", "1"},
		{"wildcard", "*/*", "application/json; charset=utf-8", "1"},
		{"explicit json", "application/json", "application/json; charset=utf-8", "1"},
		{"v2", core.ContentTypeV2, core.ContentTypeV2, "2"},
		{"v2 in a list", "application/x-summary-v2, application/json;q=0.5", core.ContentTypeV2, "2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := fetch(tc.accept)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Errorf("Content-Type %q, want %q", ct, tc.wantCT)
			}
			if v := resp.Header.Get("X-Summary-Wire-Version"); v != tc.wantVer {
				t.Errorf("X-Summary-Wire-Version %q, want %q", v, tc.wantVer)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.DecodeSummary(body)
			if err != nil {
				t.Fatalf("decoding fetched summary: %v", err)
			}
			if got, want := dec.(*core.PPSSummary).SubsetSum(nil), sum.SubsetSum(nil); got != want {
				t.Fatalf("fetched summary sum %v != %v", got, want)
			}
		})
	}

	t.Run("unknown version 415", func(t *testing.T) {
		resp := fetch("application/x-summary-v9")
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("status %d, want 415", resp.StatusCode)
		}
		e := decodeResult[api.ErrorResult](t, resp)
		if !reflect.DeepEqual(e.Supported, core.SupportedWireVersions()) {
			t.Fatalf("supported %v, want %v", e.Supported, core.SupportedWireVersions())
		}
	})
	t.Run("foreign type 406", func(t *testing.T) {
		resp := fetch("text/html")
		if resp.StatusCode != http.StatusNotAcceptable {
			t.Fatalf("status %d, want 406", resp.StatusCode)
		}
		e := decodeResult[api.ErrorResult](t, resp)
		if !reflect.DeepEqual(e.Supported, core.SupportedWireVersions()) {
			t.Fatalf("supported %v, want %v", e.Supported, core.SupportedWireVersions())
		}
	})
}

// TestDefaultWireOption: WithDefaultWire(2) flips the no-Accept fetch
// representation to binary, while explicit JSON still works.
func TestDefaultWireOption(t *testing.T) {
	url, sum, closeSrv := wireFixture(t, server.WithDefaultWire(2))
	defer closeSrv()
	v1, _ := core.EncodeSummary(sum, 1)
	resp := postBody(t, url+"/v1/summaries?dataset=ds", "application/json", v1)
	resp.Body.Close()

	resp, err := http.Get(url + "/v1/summaries?dataset=ds&instance=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != core.ContentTypeV2 {
		t.Fatalf("default Content-Type %q, want %q", ct, core.ContentTypeV2)
	}
	body, _ := io.ReadAll(resp.Body)
	want, _ := core.EncodeSummary(sum, 2)
	if !bytes.Equal(body, want) {
		t.Fatal("default-wire v2 fetch is not the canonical v2 encoding")
	}
}

// TestHealthWireVersions: the health probe advertises codec support.
func TestHealthWireVersions(t *testing.T) {
	url, _, closeSrv := wireFixture(t)
	defer closeSrv()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr := decodeResult[api.HealthResult](t, resp)
	if hr.Status != "ok" || !reflect.DeepEqual(hr.WireVersions, core.SupportedWireVersions()) {
		t.Fatalf("HealthResult = %+v, want ok with wire versions %v", hr, core.SupportedWireVersions())
	}
}
