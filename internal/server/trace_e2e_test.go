package server_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/store"
	"repro/pkg/api"
	"repro/pkg/client"
)

// tracedServer builds an observed, traced, store-backed server: the full
// stack a `summaryd -trace -data-dir` process runs.
func tracedServer(t *testing.T, tr *trace.Tracer) *httptest.Server {
	t.Helper()
	reg := server.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Tracer: tr}, reg.Put)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	reg.SetPersister(st)
	ts := httptest.NewServer(server.New(reg, engine.Config{},
		server.WithObserver(server.NewObserver(obs.NewRegistry())),
		server.WithTracer(tr)))
	t.Cleanup(ts.Close)
	return ts
}

// spanID extracts the span-id field of a span's traceparent rendering.
func spanID(s *trace.Span) string {
	return strings.Split(s.Context().Traceparent(), "-")[2]
}

// findRecord returns the ring record for a trace ID, or nil.
func findRecord(recs []trace.Record, traceID string) *trace.Record {
	for i := range recs {
		if recs[i].TraceID == traceID {
			return &recs[i]
		}
	}
	return nil
}

// findServerRecord returns the server-side record of a trace — the one
// that continued a remote parent. The client's own root span publishes a
// sibling record under the same trace ID when client and server share a
// process (and therefore a tracer), as these tests do.
func findServerRecord(recs []trace.Record, traceID string) *trace.Record {
	for i := range recs {
		if recs[i].TraceID == traceID && recs[i].RemoteParent {
			return &recs[i]
		}
	}
	return nil
}

// TestTraceEndToEnd drives one posted summary and one raw ingest from a
// client whose context carries a root span, and asserts the server-side
// records show the full parentage: the request span continues the
// client's trace (remote parent = the client's span), and the store /
// engine layers hang off the request span.
func TestTraceEndToEnd(t *testing.T) {
	tr := trace.New(8)
	ts := tracedServer(t, tr)
	c := client.New(ts.URL, ts.Client())
	sites := fixture(800)
	summ := core.NewSummarizer(testSalt)

	// Act 1: a posted summary. Client root → server request → WAL append.
	root := tr.StartSpan("test.post", trace.SpanContext{})
	ctx := trace.ContextWithSpan(context.Background(), root)
	tau := sampling.TauForExpectedSize(sites[0], 100)
	if _, err := c.PostSummary(ctx, "flows", summ.SummarizePPS(0, sites[0], tau)); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	rec := findServerRecord(tr.Traces(), root.TraceID())
	if rec == nil {
		t.Fatalf("no server record joined trace %s", root.TraceID())
	}
	reqSpan := rec.Spans[0]
	if reqSpan.Name != "POST /v1/summaries" {
		t.Errorf("root span name %q, want POST /v1/summaries", reqSpan.Name)
	}
	if reqSpan.ParentID != spanID(root) {
		t.Errorf("request span parent %q, want the client span %q", reqSpan.ParentID, spanID(root))
	}
	var sawAppend bool
	for _, sp := range rec.Spans {
		if sp.Name != "store.append" {
			continue
		}
		sawAppend = true
		if sp.ParentID != reqSpan.SpanID {
			t.Errorf("store.append parent %q, want the request span %q", sp.ParentID, reqSpan.SpanID)
		}
	}
	if !sawAppend {
		t.Errorf("no store.append span in %+v", rec.Spans)
	}

	// Act 2: a raw ingest records the engine stages under the request.
	root2 := tr.StartSpan("test.ingest", trace.SpanContext{})
	ctx2 := trace.ContextWithSpan(context.Background(), root2)
	var body bytes.Buffer
	for _, k := range sites[1].Keys() {
		fmt.Fprintf(&body, "%d,%g\n", uint64(k), sites[1][k])
	}
	_, err := c.Ingest(ctx2, client.IngestOptions{
		Dataset: "flows", Instance: 1, Kind: "pps", Format: "csv",
		Salt: testSalt, SaltSet: true, Tau: tau,
	}, strings.NewReader("key,value\n"+body.String()))
	if err != nil {
		t.Fatal(err)
	}
	root2.Finish()

	rec2 := findServerRecord(tr.Traces(), root2.TraceID())
	if rec2 == nil {
		t.Fatalf("no server record joined ingest trace %s", root2.TraceID())
	}
	want := map[string]bool{"ingest.scan": false, "engine.drain": false, "registry.put": false, "store.append": false}
	for _, sp := range rec2.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("ingest trace missing a %s span: %+v", name, rec2.Spans)
		}
	}

	// The ring is served on /debug/traces; both traces come back as JSON.
	recs := getJSON[[]trace.Record](t, ts.URL+"/debug/traces")
	if findServerRecord(recs, root.TraceID()) == nil || findServerRecord(recs, root2.TraceID()) == nil {
		t.Errorf("/debug/traces serves %d records but not both test traces", len(recs))
	}
}

// TestTraceResponseHeader: a traced server emits a traceparent response
// header carrying the request's trace ID — fresh when the caller sent
// none, continuing the caller's when it did.
func TestTraceResponseHeader(t *testing.T) {
	tr := trace.New(4)
	ts := tracedServer(t, tr)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fresh := resp.Header.Get("traceparent")
	if _, ok := trace.ParseTraceparent(fresh); !ok {
		t.Fatalf("fresh traceparent response header %q does not parse", fresh)
	}

	const inbound = "00-11111111111111111111111111111111-2222222222222222-01"
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", inbound)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("traceparent")
	if !strings.HasPrefix(got, "00-11111111111111111111111111111111-") {
		t.Errorf("traceparent response %q does not continue the inbound trace", got)
	}
	if strings.Contains(got, "2222222222222222") {
		t.Errorf("traceparent response %q reuses the caller's span ID", got)
	}
	rec := findRecord(tr.Traces(), "11111111111111111111111111111111")
	if rec == nil {
		t.Fatal("inbound trace ID not recorded")
	}
	if !rec.RemoteParent || rec.Spans[0].ParentID != "2222222222222222" {
		t.Errorf("record did not adopt the remote parent: %+v", rec.Spans[0])
	}
}

// TestTraceRingEviction: the ring keeps the newest N completed traces,
// newest first, evicting strictly in completion order.
func TestTraceRingEviction(t *testing.T) {
	tr := trace.New(2)
	ts := tracedServer(t, tr)

	ids := make([]string, 3)
	for i := range ids {
		ids[i] = fmt.Sprintf("%032d", i+1)
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set("traceparent", "00-"+ids[i]+"-aaaaaaaaaaaaaaaa-01")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	recs := getJSON[[]trace.Record](t, ts.URL+"/debug/traces")
	// The /debug/traces request itself may have displaced a slot by the
	// time it is answered; the ring held [2,3] when request 3 completed,
	// so trace 1 must be gone and order must be newest-first.
	if len(recs) != 2 {
		t.Fatalf("ring of 2 serves %d records", len(recs))
	}
	if findRecord(recs, ids[0]) != nil {
		t.Error("oldest trace survived a full ring")
	}
	if recs[0].TraceID != ids[2] || recs[1].TraceID != ids[1] {
		t.Errorf("ring order [%s %s], want newest-first [%s %s]",
			recs[0].TraceID, recs[1].TraceID, ids[2], ids[1])
	}
}

// TestWithTracerRequiresObserver pins the construction contract: the
// tracer records through the observer's middleware, so it cannot stand
// alone.
func TestWithTracerRequiresObserver(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithTracer without WithObserver did not panic")
		}
	}()
	server.New(server.NewRegistry(), engine.Config{}, server.WithTracer(trace.New(0)))
}

// TestQueryExplainAndAccuracy: explain=1 attaches the consulted-summary
// report, every estimate that admits an error bound carries stderr and
// ci95 = 1.96·stderr, and the bottom-k distinct bound is consistent with
// the k-dependent CV bound est/√(k−2) from the paper.
func TestQueryExplainAndAccuracy(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	sites := fixture(1200)
	summ := core.NewSummarizer(testSalt)

	bk := summ.SummarizeBottomK(0, sites[0], 100, sampling.PPS{})
	postV2(t, ts.URL, "ranked", bk)

	res := getJSON[api.DistinctResult](t, ts.URL+"/v1/query?dataset=ranked&q=distinct&instances=0&explain=1")
	if res.Explain == nil {
		t.Fatal("explain=1 returned no explain block")
	}
	if len(res.Explain.Summaries) != 1 {
		t.Fatalf("explain reports %d summaries, want 1", len(res.Explain.Summaries))
	}
	es := res.Explain.Summaries[0]
	if es.Kind != "bottomk" || es.Path != "view" || es.Entries != bk.Len() || es.Bytes <= 0 {
		t.Errorf("explain summary %+v, want a %d-entry bottomk view with wire bytes", es, bk.Len())
	}
	if res.Explain.EntriesScanned != bk.Len() {
		t.Errorf("entries_scanned = %d, want %d", res.Explain.EntriesScanned, bk.Len())
	}
	if res.Accuracy == nil {
		t.Fatal("bottom-k distinct returned no accuracy block")
	}
	if res.Accuracy.StdErr <= 0 {
		t.Errorf("thresholded bottom-k distinct stderr = %v, want > 0", res.Accuracy.StdErr)
	}
	if got, want := res.Accuracy.CI95, core.CI95Z*res.Accuracy.StdErr; math.Abs(got-want) > 1e-12*want {
		t.Errorf("ci95 = %v, want 1.96*stderr = %v", got, want)
	}
	bound := res.HT / math.Sqrt(float64(res.KeysUsed)-2)
	if res.Accuracy.StdErr > bound*(1+1e-9) {
		t.Errorf("stderr %v exceeds the k-dependent CV bound %v", res.Accuracy.StdErr, bound)
	}

	// Without explain=1 the report is omitted; accuracy still answers.
	bare := getJSON[api.DistinctResult](t, ts.URL+"/v1/query?dataset=ranked&q=distinct&instances=0")
	if bare.Explain != nil {
		t.Error("explain block present without explain=1")
	}
	if bare.Accuracy == nil {
		t.Error("accuracy block missing without explain=1")
	}

	// PPS subset sum: stderr from the Horvitz–Thompson variance estimator.
	tau := sampling.TauForExpectedSize(sites[1], 150)
	postV2(t, ts.URL, "flows", summ.SummarizePPS(1, sites[1], tau))
	sum := getJSON[api.SumResult](t, ts.URL+"/v1/query?dataset=flows&q=sum&instances=1&explain=1")
	if sum.Accuracy == nil || sum.Accuracy.StdErr <= 0 {
		t.Fatalf("thresholded pps sum accuracy = %+v, want stderr > 0", sum.Accuracy)
	}
	if sum.Explain == nil || len(sum.Explain.Summaries) != 1 {
		t.Errorf("sum explain = %+v, want 1 summary", sum.Explain)
	}
}

// TestSketchHealthGauges: posting summaries surfaces the per-dataset
// sketch-health gauge families on /metrics — tau, fill ratio, and the
// bottom-k fast-reject ratio estimate.
func TestSketchHealthGauges(t *testing.T) {
	o := server.NewObserver(obs.NewRegistry())
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{},
		server.WithObserver(o), server.WithMetricsEndpoint()))
	defer ts.Close()
	sites := fixture(1200)
	summ := core.NewSummarizer(testSalt)

	tau := sampling.TauForExpectedSize(sites[0], 150)
	postV2(t, ts.URL, "flows", summ.SummarizePPS(0, sites[0], tau))
	postV2(t, ts.URL, "ranked", summ.SummarizeBottomK(0, sites[1], 100, sampling.PPS{}))
	postV2(t, ts.URL, "presence", summ.SummarizeSet(0, members(sites[2]), 0.3))

	values, types := scrapeMetrics(t, ts)
	if got := values[`summaryd_sketch_tau{dataset="flows",instance="0"}`]; got != tau {
		t.Errorf("pps tau gauge = %v, want %v", got, tau)
	}
	if got := values[`summaryd_sketch_fill_ratio{dataset="presence",instance="0"}`]; got != 0.3 {
		t.Errorf("set fill gauge = %v, want sampling p 0.3", got)
	}
	fill, ok := values[`summaryd_sketch_fill_ratio{dataset="ranked",instance="0"}`]
	if !ok || fill <= 0 || fill > 1 {
		t.Errorf("bottom-k fill gauge = %v (present %v), want in (0,1]", fill, ok)
	}
	rej, ok := values[`summaryd_sketch_fast_reject_ratio{dataset="ranked",instance="0"}`]
	if !ok || rej < 0 || rej >= 1 {
		t.Errorf("fast-reject gauge = %v (present %v), want in [0,1)", rej, ok)
	}
	if math.Abs(rej-math.Max(0, 1-fill)) > 1e-12 {
		t.Errorf("fast-reject %v != 1-fill %v", rej, 1-fill)
	}
	for _, fam := range []string{"summaryd_sketch_tau", "summaryd_sketch_fill_ratio", "summaryd_sketch_fast_reject_ratio"} {
		if types[fam] != "gauge" {
			t.Errorf("family %s declared %q, want gauge", fam, types[fam])
		}
	}
}
