package server

import (
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// This file is the server's observability layer: an Observer wraps the
// request mux with a middleware that measures every request (count,
// latency, in-flight, request/response bytes, status class — all
// per-endpoint), assigns a request ID propagated as X-Request-ID, and
// emits one structured log line per request. It also bridges the ingest
// engine's Stats() seam into the metrics registry: pipelines stay
// completely uninstrumented (zero overhead in the sampling hot loop) and
// the server accumulates each request's final counters once, after the
// pipeline closes.

// endpointLabel buckets a request path into the fixed per-endpoint label
// vocabulary. Unknown paths collapse into "other" so a probe scan cannot
// mint unbounded series.
func endpointLabel(path string) string {
	switch path {
	case "/healthz", "/metrics", "/debug/traces", "/v1/datasets",
		"/v1/summaries", "/v1/ingest", "/v1/ingest/multi", "/v1/query":
		return path
	}
	return "other"
}

// instrumentedEndpoints is every endpointLabel value, the construction
// vocabulary for per-endpoint series.
var instrumentedEndpoints = []string{
	"/healthz", "/metrics", "/debug/traces", "/v1/datasets",
	"/v1/summaries", "/v1/ingest", "/v1/ingest/multi", "/v1/query", "other",
}

// statusClasses are the response status classes, indexed by code/100-1.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// endpointMetrics are one endpoint's pre-constructed series; per-request
// work is pure atomic updates, never registry lookups or label
// formatting.
type endpointMetrics struct {
	requests  [5]*obs.Counter // by status class
	duration  *obs.Histogram
	reqBytes  *obs.Counter
	respBytes *obs.Counter
}

// Observer instruments one Server: construct it with NewObserver, hand
// it to server.New via WithObserver, and expose its registry with
// WithMetricsEndpoint (or mount Registry().Handler() elsewhere). One
// Observer serves exactly one Server — its engine and dataset series
// read that server's state.
type Observer struct {
	reg       *obs.Registry
	log       *slog.Logger
	slow      time.Duration
	bound     bool
	inFlight  *obs.Gauge
	endpoints map[string]*endpointMetrics
	idBase    string
	idSeq     atomic.Uint64
	// tracer is the bound server's span recorder (nil or disabled =
	// tracing off; the middleware pays one atomic load either way).
	tracer *trace.Tracer
}

// ObserverOption configures an Observer at construction.
type ObserverOption func(*Observer)

// WithRequestLogger sets the logger receiving the per-request structured
// line (request_id, method, path, status, duration, bytes). Without it
// requests are measured but not logged — the quiet default for embedded
// and test servers; summaryd always passes its process logger.
func WithRequestLogger(l *slog.Logger) ObserverOption {
	return func(o *Observer) { o.log = l }
}

// WithSlowRequest sets the duration at or above which a request's log
// line is emitted at Warn level with slow=true instead of Info — the
// operator's tail-latency tripwire. Zero or negative disables the
// escalation. The default is one second.
func WithSlowRequest(d time.Duration) ObserverOption {
	return func(o *Observer) { o.slow = d }
}

// NewObserver builds an observer over the given metrics registry,
// pre-registering every per-endpoint HTTP series. A nil registry is
// legal: the instruments are nil no-ops and only the request log (if a
// logger is set) remains active.
func NewObserver(reg *obs.Registry, opts ...ObserverOption) *Observer {
	o := &Observer{
		reg:    reg,
		slow:   time.Second,
		idBase: fmt.Sprintf("%08x-", rand.Uint32()),
	}
	for _, opt := range opts {
		opt(o)
	}
	o.inFlight = reg.Gauge("summaryd_http_requests_in_flight",
		"Requests currently being served.", nil)
	o.endpoints = make(map[string]*endpointMetrics, len(instrumentedEndpoints))
	for _, ep := range instrumentedEndpoints {
		m := &endpointMetrics{
			duration: reg.Histogram("summaryd_http_request_duration_seconds",
				"Request latency by endpoint.", obs.Labels{"endpoint": ep}, nil),
			reqBytes: reg.Counter("summaryd_http_request_bytes_total",
				"Request body bytes read, by endpoint.", obs.Labels{"endpoint": ep}),
			respBytes: reg.Counter("summaryd_http_response_bytes_total",
				"Response body bytes written, by endpoint.", obs.Labels{"endpoint": ep}),
		}
		for i, class := range statusClasses {
			m.requests[i] = reg.Counter("summaryd_http_requests_total",
				"Requests served, by endpoint and status class.",
				obs.Labels{"endpoint": ep, "code": class})
		}
		o.endpoints[ep] = m
	}
	return o
}

// Registry returns the metrics registry the observer reports into (nil
// when constructed without one).
func (o *Observer) Registry() *obs.Registry { return o.reg }

// bindServer registers the series that read one server's state: the
// engine totals accumulated from every ingest pipeline's Stats(), and
// the dataset count. Called by server.New; binding one observer to two
// servers would double-register and panics in the obs registry.
func (o *Observer) bindServer(s *Server) {
	if o.bound {
		panic("server: one Observer cannot instrument two servers")
	}
	o.bound = true
	reg := o.reg
	reg.CounterFunc("summaryd_engine_pairs_total",
		"Raw pairs pushed through ingest engine pipelines.", nil, s.engine.pairs.Load)
	reg.CounterFunc("summaryd_engine_batches_total",
		"Batches handed to engine shard workers.", nil, s.engine.batches.Load)
	reg.CounterFunc("summaryd_engine_stalls_total",
		"Push handoffs that blocked on a full shard queue (backpressure).", nil, s.engine.stalls.Load)
	reg.CounterFunc("summaryd_engine_rejected_total",
		"Arrivals refused by non-blocking TryPush on a full shard queue.", nil, s.engine.rejected.Load)
	reg.CounterFunc("summaryd_engine_snapshots_total",
		"Mid-stream engine pipeline snapshots (each quiesces the workers).", nil, s.engine.snapshots.Load)
	reg.CounterFunc("summaryd_engine_ingests_total",
		"Completed raw-ingest requests (set-kind ingests included).", nil, s.engine.ingests.Load)
	reg.GaugeFunc("summaryd_engine_shards",
		"Configured engine shard (worker) count.", nil,
		func() float64 { return float64(s.cfg.NumShards()) })
	reg.GaugeFunc("summaryd_engine_queue_depth",
		"Configured per-shard queue capacity in batches (0 = no queues).", nil,
		func() float64 { return float64(s.engineQueueDepth()) })
	reg.GaugeFunc("summaryd_datasets",
		"Registered datasets.", nil,
		func() float64 { return float64(s.reg.Count()) })
	o.tracer = s.tracer
	bindSketchGauges(reg, s.reg)
}

// bindSketchGauges registers the per-summary sketch-health families. They
// are dynamic series (obs.GaugeSetFunc): each scrape walks the registry's
// current summaries — summaries are compact by design, so the walk is
// cheap — and emits one sample per (dataset, instance). Everything is
// derived from stored summary state; the sampling hot loops stay
// uninstrumented.
func bindSketchGauges(reg *obs.Registry, sr *Registry) {
	reg.GaugeSetFunc("summaryd_sketch_tau",
		"Per-summary inclusion threshold: PPS tau, bottom-k rank threshold (+Inf when never thresholded), VarOpt tau.",
		func(emit func(labels obs.Labels, v float64)) {
			_ = sr.Dump(func(ds string, sum core.Summary) error {
				if tau, ok := summaryTau(sum); ok {
					emit(summaryLabels(ds, sum), tau)
				}
				return nil
			})
		})
	reg.GaugeSetFunc("summaryd_sketch_fill_ratio",
		"Estimated fraction of the instance's keys the summary retains: size over the estimated key count for bottom-k (1 when exact), the sampling probability for set summaries.",
		func(emit func(labels obs.Labels, v float64)) {
			_ = sr.Dump(func(ds string, sum core.Summary) error {
				if fill, ok := summaryFillRatio(sum); ok {
					emit(summaryLabels(ds, sum), fill)
				}
				return nil
			})
		})
	reg.GaugeSetFunc("summaryd_sketch_fast_reject_ratio",
		"Estimated fraction of arrivals a thresholded bottom-k summary turns away on its fast-reject path (1 - fill ratio; 0 while filling).",
		func(emit func(labels obs.Labels, v float64)) {
			_ = sr.Dump(func(ds string, sum core.Summary) error {
				b, ok := sum.(core.BottomKReader)
				if !ok {
					return nil
				}
				fill, ok := summaryFillRatio(sum)
				if !ok || math.IsInf(b.RankTau(), 1) {
					emit(summaryLabels(ds, sum), 0)
					return nil
				}
				emit(summaryLabels(ds, sum), math.Max(0, 1-fill))
				return nil
			})
		})
}

// summaryLabels is the shared label set of the sketch gauges.
func summaryLabels(ds string, sum core.Summary) obs.Labels {
	return obs.Labels{"dataset": ds, "instance": strconv.Itoa(sum.InstanceID())}
}

// summaryTau extracts the inclusion threshold of a weighted summary
// (hydrated or view); set summaries have none.
func summaryTau(sum core.Summary) (float64, bool) {
	switch s := sum.(type) {
	case core.PPSReader:
		return s.PPSTau(), true
	case core.BottomKReader:
		return s.RankTau(), true
	case core.VarOptReader:
		return s.VarOptTau(), true
	}
	return 0, false
}

// summaryFillRatio estimates how much of the underlying instance the
// summary holds: for bottom-k, size over the rank-conditioning distinct
// estimate (exactly 1 for a never-thresholded summary); for set
// summaries, the sampling probability (the expected retained fraction).
func summaryFillRatio(sum core.Summary) (float64, bool) {
	switch s := sum.(type) {
	case core.BottomKReader:
		if math.IsInf(s.RankTau(), 1) {
			return 1, true
		}
		est := core.BottomKDistinct(s)
		if !(est > 0) {
			return 0, false
		}
		return math.Min(1, float64(s.Size())/est), true
	case core.SetReader:
		return s.SetP(), true
	}
	return 0, false
}

// intercept is the request middleware: measure, tag, serve, log.
func (o *Observer) intercept(next http.Handler, w http.ResponseWriter, r *http.Request) {
	ep := endpointLabel(r.URL.Path)
	m := o.endpoints[ep]
	rid := o.requestID(r)
	// The ID goes out before the handler runs so even a panic-500 or a
	// streamed response carries it; the log line below closes the loop.
	w.Header().Set("X-Request-ID", rid)

	// Root span: honor an inbound traceparent (the client's span becomes
	// the remote parent) and emit this request's own next to the request
	// ID, so a caller can stitch its half of the trace to ours. The whole
	// block is skipped behind one atomic load when tracing is off — no
	// header parse, no span, no context frame, no allocation.
	var sp *trace.Span
	if o.tracer.Enabled() {
		remote, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
		if sp = o.tracer.StartSpan(r.Method+" "+ep, remote); sp != nil {
			sp.SetAttr("request_id", rid)
			w.Header().Set("traceparent", sp.Context().Traceparent())
			r = r.WithContext(trace.ContextWithSpan(r.Context(), sp))
		}
	}

	body := &countingReader{rc: r.Body}
	r.Body = body
	sw := &statusWriter{ResponseWriter: w}
	o.inFlight.Inc()
	start := time.Now()
	next.ServeHTTP(sw, r)
	dur := time.Since(start)
	o.inFlight.Dec()

	status := sw.status()
	class := status/100 - 1
	if class < 0 || class >= len(statusClasses) {
		class = 4 // out-of-band codes count as server errors
	}
	m.requests[class].Inc()
	m.duration.ObserveDuration(dur)
	m.reqBytes.Add(uint64(body.n))
	m.respBytes.Add(uint64(sw.n))

	// Close the root span after the response is fully measured; its
	// Finish publishes the trace to the ring /debug/traces serves.
	sp.SetInt("status", int64(status))
	sp.SetInt("bytes_in", body.n)
	sp.SetInt("bytes_out", sw.n)
	sp.Finish()

	if o.log == nil {
		return
	}
	slow := o.slow > 0 && dur >= o.slow
	lvl := slog.LevelInfo
	if slow {
		lvl = slog.LevelWarn
	}
	if !o.log.Enabled(r.Context(), lvl) {
		return
	}
	attrs := [10]slog.Attr{
		slog.String("request_id", rid),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("endpoint", ep),
		slog.Int("status", status),
		slog.Duration("duration", dur),
		slog.Int64("bytes_in", body.n),
		slog.Int64("bytes_out", sw.n),
		slog.Bool("slow", slow),
	}
	n := 9
	if sp != nil {
		// The trace ID is the join key between this line — slow-request
		// warnings especially — and the matching /debug/traces record.
		attrs[n] = slog.String("trace_id", sp.TraceID())
		n++
	}
	o.log.LogAttrs(r.Context(), lvl, "request", attrs[:n]...)
}

// requestID returns the request's correlation ID: a sane inbound
// X-Request-ID is honored (so a fronting proxy's ID threads through the
// whole line of servers), anything else gets a fresh process-unique ID —
// a random boot prefix plus a sequence number, cheap enough for the
// per-request path.
func (o *Observer) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 64 && cleanASCII(id) {
		return id
	}
	return o.idBase + strconv.FormatUint(o.idSeq.Add(1), 36)
}

// cleanASCII reports whether an inbound ID is printable ASCII — anything
// else is dropped rather than reflected into headers and logs.
func cleanASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// countingReader counts the request body bytes the handler actually
// read.
type countingReader struct {
	rc interface {
		Read([]byte) (int, error)
		Close() error
	}
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

// statusWriter records the response status and body size on the way
// through.
type statusWriter struct {
	http.ResponseWriter
	code int
	n    int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streamed summary fetches
// keep flowing through the instrumented path.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status is the recorded response code (an implicit 200 when the handler
// wrote nothing).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// engineTotals accumulates every ingest pipeline's final Stats() — the
// zero-overhead instrumentation seam: the pipeline itself is untouched,
// and the server adds its counters exactly once, after Close.
type engineTotals struct {
	pairs, batches, stalls, rejected, snapshots, ingests atomic.Uint64
}

// record folds one completed pipeline's counters into the totals.
func (t *engineTotals) record(st engine.Stats) {
	t.pairs.Add(st.Pairs)
	t.batches.Add(st.Batches)
	t.stalls.Add(st.Stalls)
	t.rejected.Add(st.Rejected)
	t.snapshots.Add(st.Snapshots)
	t.ingests.Add(1)
}

// engineQueueDepth resolves the configured per-shard queue capacity: 0
// on the in-line sequential path, which has no queues.
func (s *Server) engineQueueDepth() int {
	if s.cfg.NumShards() > 1 || s.cfg.Async {
		return s.cfg.EffectiveQueueDepth()
	}
	return 0
}

// engineStatus builds the /healthz engine block from the accumulated
// totals.
func (s *Server) engineStatus() *EngineStatus {
	return &EngineStatus{
		Pairs:      s.engine.pairs.Load(),
		Batches:    s.engine.batches.Load(),
		Stalls:     s.engine.stalls.Load(),
		Rejected:   s.engine.rejected.Load(),
		Snapshots:  s.engine.snapshots.Load(),
		Ingests:    s.engine.ingests.Load(),
		Shards:     s.cfg.NumShards(),
		QueueDepth: s.engineQueueDepth(),
	}
}
