package server

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// Fuzz targets for the raw-ingest scanners: whatever bytes arrive on the
// wire — malformed lines, huge fields, binary garbage, hostile instance
// columns — the scanners must either consume them or return a clean
// error, never panic, and the returned pair count must equal the number
// of pushes (the handlers report it to clients and the engine relies on
// every accepted pair having been pushed exactly once).

func FuzzScanPairs(f *testing.F) {
	f.Add(true, false, []byte("key,value\n1,2\n3,4.5\n"))
	f.Add(true, true, []byte("key\n1\n2\n"))
	f.Add(false, false, []byte(`{"key":1,"value":2}`+"\n"))
	f.Add(false, true, []byte(`{"key":1}`+"\n"))
	f.Add(true, false, []byte("1,2,3\n"))                    // extra column
	f.Add(true, false, []byte("  1 , 2 \n\n\n9,0\n"))        // whitespace and blanks
	f.Add(true, false, []byte("18446744073709551615,1e308")) // extreme magnitudes
	f.Add(true, false, []byte("1,NaN\n"))
	f.Add(false, false, []byte(`{"key":null,"value":3}`+"\n"))
	f.Add(false, false, []byte("{\"key\":1,\"value\":2}\n{\"key\":1,\"value\":2}\n")) // dup key
	f.Add(true, false, []byte("1,"+strings.Repeat("9", 400)+"\n"))                    // huge field
	f.Add(true, false, append([]byte("1,2\n"), bytes.Repeat([]byte{0xff, 0x00}, 64)...))
	f.Add(true, false, []byte("1,"+strings.Repeat("3", maxIngestLine+10))) // line over the scanner cap
	f.Fuzz(func(t *testing.T, csv, keysOnly bool, body []byte) {
		format := "ndjson"
		if csv {
			format = "csv"
		}
		var pushes int64
		n, err := scanPairs(bytes.NewReader(body), format, keysOnly, func(h dataset.Key, v float64) {
			if v < 0 {
				t.Fatalf("negative value %v pushed", v)
			}
			pushes++
		})
		if n != pushes {
			t.Fatalf("scanPairs reported %d pairs, pushed %d (err=%v)", n, pushes, err)
		}
	})
}

func FuzzScanMultiPairs(f *testing.F) {
	f.Add(true, []byte("key,instance,value\n1,0,2\n1,7,3\n"))
	f.Add(false, []byte(`{"key":1,"instance":0,"value":2}`+"\n"))
	f.Add(false, []byte(`{"key":1,"value":2}`+"\n"))  // missing instance
	f.Add(true, []byte("1,3,2\n"))                    // unlisted instance
	f.Add(true, []byte("1,-9223372036854775808,2\n")) // extreme instance
	f.Add(true, []byte("1,0,2\n1,0,2\n"))             // repeated (key, instance)
	f.Add(true, []byte("1,0,2,4\n"))                  // extra column
	f.Add(true, []byte("1,0\n"))                      // missing column
	f.Add(true, []byte("key,instance,value\n"))       // header only
	f.Add(false, []byte(`{"key":1,"instance":1e99,"value":2}`+"\n"))
	f.Add(true, []byte("1,0,"+strings.Repeat("7", maxIngestLine+10))) // huge field
	f.Add(false, bytes.Repeat([]byte{0xef, 0xbb, 0xbf}, 32))
	f.Fuzz(func(t *testing.T, csv bool, body []byte) {
		format := "ndjson"
		if csv {
			format = "csv"
		}
		index := map[int]int{0: 0, 7: 1, -2: 2}
		var pushes int64
		n, err := scanMultiPairs(bytes.NewReader(body), format, index, func(i int, h dataset.Key, v float64) {
			if i < 0 || i >= len(index) {
				t.Fatalf("instance position %d out of range", i)
			}
			if v < 0 {
				t.Fatalf("negative value %v pushed", v)
			}
			pushes++
		})
		if n != pushes {
			t.Fatalf("scanMultiPairs reported %d pairs, pushed %d (err=%v)", n, pushes, err)
		}
	})
}
