package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/pkg/client"
)

const testSalt = 2011

// fixture builds three overlapping weighted instances.
func fixture(n int) []dataset.Instance {
	rng := randx.New(11)
	sites := make([]dataset.Instance, 3)
	for i := range sites {
		sites[i] = make(dataset.Instance)
	}
	for k := 1; k <= n; k++ {
		h := dataset.Key(k)
		placed := false
		for i := range sites {
			if rng.Float64() < 0.6 {
				sites[i][h] = math.Floor(1 + 40*rng.Float64())
				placed = true
			}
		}
		if !placed {
			sites[rng.Intn(3)][h] = math.Floor(1 + 40*rng.Float64())
		}
	}
	return sites
}

func members(in dataset.Instance) map[dataset.Key]bool {
	m := make(map[dataset.Key]bool, len(in))
	for h := range in {
		m[h] = true
	}
	return m
}

func ndjsonBody(in dataset.Instance) []byte {
	var buf bytes.Buffer
	for _, h := range in.Keys() {
		fmt.Fprintf(&buf, "{\"key\":%d,\"value\":%g}\n", uint64(h), in[h])
	}
	return buf.Bytes()
}

func csvBody(in dataset.Instance) []byte {
	var buf bytes.Buffer
	buf.WriteString("key,value\n")
	for _, h := range in.Keys() {
		fmt.Fprintf(&buf, "%d,%g\n", uint64(h), in[h])
	}
	return buf.Bytes()
}

func startServer(t testing.TB, cfg engine.Config) (*client.Client, func()) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.NewRegistry(), cfg))
	return client.New(ts.URL, ts.Client()), ts.Close
}

// TestServerEndToEnd drives the full dispersed loop over HTTP — post a
// wire-format summary, ingest raw ndjson and CSV streams — and checks
// every query answer is bit-identical to the corresponding in-process
// estimate, under both the sequential and the sharded ingest pipeline.
func TestServerEndToEnd(t *testing.T) {
	for _, cfg := range []engine.Config{
		{},
		{Parallel: true, Shards: 3, BatchSize: 64},
	} {
		name := "sequential"
		if cfg.Parallel {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			sites := fixture(1500)
			c, closeSrv := startServer(t, cfg)
			defer closeSrv()
			ctx := context.Background()
			if hr, err := c.Health(ctx); err != nil || hr.Status != "ok" || hr.Datasets != 0 {
				t.Fatalf("Health = %+v, %v; want ok with 0 datasets", hr, err)
			}

			summ := core.NewSummarizer(testSalt)
			taus := make([]float64, 3)
			for i, in := range sites {
				taus[i] = sampling.TauForExpectedSize(in, 150)
			}

			// Site 0 posts wire summaries; sites 1 and 2 ingest raw.
			pps0 := summ.SummarizePPS(0, sites[0], taus[0])
			if _, err := c.PostSummary(ctx, "flows", pps0); err != nil {
				t.Fatal(err)
			}
			if _, err := c.PostSummary(ctx, "actives", summ.SummarizeSet(0, members(sites[0]), 0.3)); err != nil {
				t.Fatal(err)
			}
			res, err := c.Ingest(ctx, client.IngestOptions{
				Dataset: "flows", Instance: 1, Kind: "pps", Format: "ndjson",
				Salt: testSalt, SaltSet: true, Tau: taus[1],
			}, bytes.NewReader(ndjsonBody(sites[1])))
			if err != nil {
				t.Fatal(err)
			}
			if res.Pairs != int64(len(sites[1])) {
				t.Fatalf("ingest consumed %d pairs, want %d", res.Pairs, len(sites[1]))
			}
			if _, err := c.Ingest(ctx, client.IngestOptions{
				Dataset: "flows", Instance: 2, Kind: "pps", Format: "csv",
				Salt: testSalt, SaltSet: true, Tau: taus[2],
			}, bytes.NewReader(csvBody(sites[2]))); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 2; i++ {
				if _, err := c.Ingest(ctx, client.IngestOptions{
					Dataset: "actives", Instance: i, Kind: "set", Format: "ndjson",
					Salt: testSalt, SaltSet: true, P: 0.3,
				}, bytes.NewReader(ndjsonBody(sites[i]))); err != nil {
					t.Fatal(err)
				}
			}

			// In-process reference summaries (identical by construction).
			ppsLocal := []*core.PPSSummary{
				pps0,
				summ.SummarizePPS(1, sites[1], taus[1]),
				summ.SummarizePPS(2, sites[2], taus[2]),
			}
			setLocal := make([]*core.SetSummary, 3)
			for i, in := range sites {
				setLocal[i] = summ.SummarizeSet(i, members(in), 0.3)
			}

			srvD, err := c.Distinct(ctx, "actives")
			if err != nil {
				t.Fatal(err)
			}
			locD, err := core.DistinctCountMulti(setLocal, nil)
			if err != nil {
				t.Fatal(err)
			}
			if srvD.HT != locD.HT || srvD.L != locD.L || srvD.KeysUsed != locD.KeysUsed {
				t.Errorf("distinct: server %+v != direct %+v", srvD, locD)
			}

			srvM, err := c.MaxDominance(ctx, "flows", 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			locM, err := core.MaxDominance(ppsLocal[0], ppsLocal[2], nil)
			if err != nil {
				t.Fatal(err)
			}
			if srvM.HT != locM.HT || srvM.L != locM.L || srvM.KeysUsed != locM.KeysUsed {
				t.Errorf("maxdominance: server %+v != direct %+v", srvM, locM)
			}

			// A key sampled everywhere gives a determined (positive) median.
			var hot dataset.Key
			for h := range ppsLocal[0].Sample.Values {
				if _, ok := ppsLocal[1].Sample.Values[h]; !ok {
					continue
				}
				if _, ok := ppsLocal[2].Sample.Values[h]; ok {
					hot = h
					break
				}
			}
			srvQ, err := c.Quantile(ctx, "flows", uint64(hot), 2)
			if err != nil {
				t.Fatal(err)
			}
			locQ, err := core.QuantilePPS(ppsLocal, hot, 2)
			if err != nil {
				t.Fatal(err)
			}
			if srvQ.HT != locQ.HT || srvQ.Sampled != locQ.Sampled {
				t.Errorf("quantile: server %+v != direct %+v", srvQ, locQ)
			}

			srvS, err := c.Sum(ctx, "flows", 1)
			if err != nil {
				t.Fatal(err)
			}
			if loc := ppsLocal[1].SubsetSum(nil); srvS.Sum != loc {
				t.Errorf("sum: server %v != direct %v", srvS.Sum, loc)
			}

			infos, err := c.Datasets(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 2 || infos[0].Dataset != "actives" || len(infos[0].Instances) != 3 {
				t.Errorf("unexpected dataset listing: %+v", infos)
			}
		})
	}
}

// TestServerFetchRoundTrip: a stored summary fetched back decodes and
// combines with locally built ones.
func TestServerFetchRoundTrip(t *testing.T) {
	sites := fixture(400)
	c, closeSrv := startServer(t, engine.Config{})
	defer closeSrv()
	ctx := context.Background()
	summ := core.NewSummarizer(testSalt)
	tau := sampling.TauForExpectedSize(sites[0], 80)
	if _, err := c.Ingest(ctx, client.IngestOptions{
		Dataset: "flows", Instance: 0, Kind: "pps", Format: "ndjson",
		Salt: testSalt, SaltSet: true, Tau: tau,
	}, bytes.NewReader(ndjsonBody(sites[0]))); err != nil {
		t.Fatal(err)
	}
	raw, err := c.FetchSummary(ctx, "flows", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.DecodeSummary(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := summ.SummarizePPS(0, sites[0], tau)
	if !core.Combinable(got.(*core.PPSSummary), want) {
		t.Error("fetched summary not combinable with a local one")
	}
	if got.Size() != want.Len() {
		t.Errorf("fetched %d keys, want %d", got.Size(), want.Len())
	}
}

// TestServerErrors pins the status codes of the failure modes: unknown
// version (415), incompatibility (409), absence (404), bad requests (400).
func TestServerErrors(t *testing.T) {
	sites := fixture(200)
	c, closeSrv := startServer(t, engine.Config{})
	defer closeSrv()
	ctx := context.Background()
	summ := core.NewSummarizer(testSalt)
	if _, err := c.PostSummary(ctx, "flows", summ.SummarizePPS(0, sites[0], 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostSummary(ctx, "actives", summ.SummarizeSet(0, members(sites[0]), 0.5)); err != nil {
		t.Fatal(err)
	}

	expect := func(name string, err error, fragment string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: expected an error", name)
			return
		}
		if !strings.Contains(err.Error(), fragment) {
			t.Errorf("%s: error %q does not mention %q", name, err, fragment)
		}
	}

	// Future wire version → 415 with the version in the message, even
	// when the kind tag is one this build has never heard of.
	_, err := c.PostSummary(ctx, "flows", json.RawMessage(`{"version":9,"kind":"pps","tau":1}`))
	expect("unknown version", err, "HTTP 415")
	expect("unknown version", err, "version 9")
	_, err = c.PostSummary(ctx, "flows", json.RawMessage(`{"version":2,"kind":"zipf"}`))
	expect("future kind", err, "HTTP 415")

	// Wrong salt and wrong kind → 409.
	other := core.NewSummarizer(999)
	_, err = c.PostSummary(ctx, "flows", other.SummarizePPS(1, sites[1], 10))
	expect("salt mismatch", err, "HTTP 409")
	_, err = c.PostSummary(ctx, "flows", summ.SummarizeSet(1, members(sites[1]), 0.5))
	expect("kind mismatch", err, "HTTP 409")
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "flows", Instance: 1, Kind: "pps",
		Salt: 999, SaltSet: true, Tau: 10,
	}, bytes.NewReader(nil))
	expect("ingest salt mismatch", err, "HTTP 409")
	// An explicit coordination-mode conflict is rejected even without a
	// salt parameter, and before the body is read.
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL()+"/v1/ingest?dataset=flows&instance=1&kind=pps&tau=10&shared=true", bytes.NewReader(nil))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("shared conflict: got HTTP %d, want 409", resp.StatusCode)
	}
	// A kind mismatch against an existing dataset is a 409 too.
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "flows", Instance: 1, Kind: "set", P: 0.5,
	}, bytes.NewReader(nil))
	expect("ingest kind mismatch", err, "HTTP 409")

	// Absences → 404.
	_, err = c.Distinct(ctx, "nope")
	expect("unknown dataset", err, "HTTP 404")
	_, err = c.Sum(ctx, "flows", 7)
	expect("unknown instance", err, "HTTP 404")

	// Bad requests → 400.
	_, err = c.MaxDominance(ctx, "flows", 0, 0)
	expect("duplicate instances", err, "HTTP 400")
	_, err = c.Quantile(ctx, "flows", 1, 5, 0)
	expect("bad quantile", err, "HTTP 400")
	_, err = c.Distinct(ctx, "flows")
	expect("distinct on pps", err, "HTTP 400")
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "fresh", Instance: 0, Kind: "pps", Tau: 10,
	}, bytes.NewReader(nil))
	expect("missing salt", err, "HTTP 400")
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "fresh", Instance: 0, Kind: "pps",
		Salt: 1, SaltSet: true, Tau: 10, Format: "csv",
	}, strings.NewReader("key,value\nnot-a-key,3\n"))
	expect("bad csv", err, "HTTP 400")
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "fresh", Instance: 0, Kind: "pps",
		Salt: 1, SaltSet: true, Tau: 10, Format: "ndjson",
	}, strings.NewReader(`{"key":1,"value":-2}`+"\n"))
	expect("negative value", err, "HTTP 400")
	// A weighted stream repeating a key violates the one-value-per-key
	// model (and would corrupt bottom-k sampler state).
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "fresh", Instance: 0, Kind: "bottomk", K: 3,
		Salt: 1, SaltSet: true, Format: "csv",
	}, strings.NewReader("1,5\n1,5\n2,7\n"))
	expect("duplicate key", err, "HTTP 400")
	expect("duplicate key", err, "repeated")
	// Set ingest deduplicates implicitly: repeated members are fine.
	if _, err := c.Ingest(ctx, client.IngestOptions{
		Dataset: "freshset", Instance: 0, Kind: "set", P: 0.9,
		Salt: 1, SaltSet: true, Format: "csv",
	}, strings.NewReader("1\n1\n2\n")); err != nil {
		t.Errorf("set ingest with repeated member: %v", err)
	}
}

// TestServerRejectsCoordinatedQueries: coordinated (shared-seed) datasets
// can be stored and fetched, but the independent-seed query estimators
// must refuse them rather than answer with biased numbers.
func TestServerRejectsCoordinatedQueries(t *testing.T) {
	sites := fixture(200)
	c, closeSrv := startServer(t, engine.Config{})
	defer closeSrv()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Ingest(ctx, client.IngestOptions{
			Dataset: "coord", Instance: i, Kind: "pps", Format: "ndjson",
			Salt: testSalt, SaltSet: true, Shared: true, Tau: 10,
		}, bytes.NewReader(ndjsonBody(sites[i]))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.MaxDominance(ctx, "coord", 0, 1); err == nil ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("maxdominance on coordinated dataset: got %v, want HTTP 400", err)
	}
	if _, err := c.Quantile(ctx, "coord", 1, 1); err == nil ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("quantile on coordinated dataset: got %v, want HTTP 400", err)
	}
	// Single-instance sum does not combine instances and stays served.
	if _, err := c.Sum(ctx, "coord", 0); err != nil {
		t.Errorf("sum on coordinated dataset: %v", err)
	}
}
