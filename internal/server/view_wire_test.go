package server_test

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/pkg/api"
)

// These tests pin the zero-copy post path: a canonical v2 POST is stored
// as a view over the posted bytes, every query over it answers
// bit-identically to the hydrated in-process estimate, and re-fetching it
// as v2 returns exactly the posted bytes.

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return decodeResult[T](t, resp)
}

func postV2(t *testing.T, url, ds string, sum core.Summary) []byte {
	t.Helper()
	data, err := core.EncodeSummary(sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	resp := postBody(t, url+"/v1/summaries?dataset="+ds, core.ContentTypeV2, data)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("post %s to %s: status %d: %s", sum.Kind(), ds, resp.StatusCode, body)
	}
	resp.Body.Close()
	return data
}

// TestViewPostQueryFetch: every summary kind posted as v2 answers queries
// over the zero-copy view bit-identically to the in-process estimates,
// and fetches back as exactly the posted bytes.
func TestViewPostQueryFetch(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	url := ts.URL
	sites := fixture(1200)
	summ := core.NewSummarizer(testSalt)

	// PPS pair for maxdominance + per-kind sum checks.
	pps := []*core.PPSSummary{
		summ.SummarizePPSExpectedSize(0, sites[0], 150),
		summ.SummarizePPSExpectedSize(1, sites[1], 150),
	}
	var posted [][]byte
	for _, p := range pps {
		posted = append(posted, postV2(t, url, "flows", p))
	}
	want, err := core.MaxDominance(pps[0], pps[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	dom := getJSON[api.DominanceResult](t, url+"/v1/query?dataset=flows&q=maxdominance&instances=0,1")
	if math.Float64bits(dom.HT) != math.Float64bits(want.HT) || math.Float64bits(dom.L) != math.Float64bits(want.L) {
		t.Errorf("maxdominance over views (HT %v, L %v) != in-process (HT %v, L %v)", dom.HT, dom.L, want.HT, want.L)
	}
	sum := getJSON[api.SumResult](t, url+"/v1/query?dataset=flows&q=sum&instances=0")
	if math.Float64bits(sum.Sum) != math.Float64bits(pps[0].SubsetSum(nil)) {
		t.Errorf("sum over view %v != in-process %v", sum.Sum, pps[0].SubsetSum(nil))
	}

	// Fetching a view-backed summary as v2 returns the posted bytes
	// verbatim (the raw-copy re-encode).
	req, err := http.NewRequest("GET", url+"/v1/summaries?dataset=flows&instance=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", core.ContentTypeV2)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch v2: status %d, err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(body, posted[0]) {
		t.Error("fetched v2 bytes differ from the posted bytes")
	}

	// Set summaries: distinct over three posted views.
	var sets []*core.SetSummary
	for i, in := range sites {
		set := summ.SummarizeSet(i, members(in), 0.3)
		sets = append(sets, set)
		postV2(t, url, "presence", set)
	}
	wantD, err := core.DistinctCountMulti(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis := getJSON[api.DistinctResult](t, url+"/v1/query?dataset=presence&q=distinct")
	if math.Float64bits(dis.HT) != math.Float64bits(wantD.HT) ||
		math.Float64bits(dis.L) != math.Float64bits(wantD.L) || dis.KeysUsed != wantD.KeysUsed {
		t.Errorf("distinct over views (%v, %v, %d) != in-process (%v, %v, %d)",
			dis.HT, dis.L, dis.KeysUsed, wantD.HT, wantD.L, wantD.KeysUsed)
	}

	// Bottom-k and VarOpt: sum over posted views.
	bk := summ.SummarizeBottomK(0, sites[2], 100, sampling.EXP{})
	postV2(t, url, "ranked", bk)
	bks := getJSON[api.SumResult](t, url+"/v1/query?dataset=ranked&q=sum&instances=0")
	if math.Float64bits(bks.Sum) != math.Float64bits(bk.SubsetSum(nil)) {
		t.Errorf("bottomk sum over view %v != in-process %v", bks.Sum, bk.SubsetSum(nil))
	}
	vo := summ.SummarizeVarOpt(0, sites[2], 90)
	postV2(t, url, "reservoir", vo)
	vos := getJSON[api.SumResult](t, url+"/v1/query?dataset=reservoir&q=sum&instances=0")
	if math.Float64bits(vos.Sum) != math.Float64bits(vo.SubsetSum(nil)) {
		t.Errorf("varopt sum over view %v != in-process %v", vos.Sum, vo.SubsetSum(nil))
	}
}

// TestViewPostNonCanonicalFallsBack: a valid v2 payload that is not the
// canonical encoding (non-minimal entry-count varint) fails the strict
// view parse but still lands via the hydrating decoder — acceptance is
// unchanged, only the storage representation differs.
func TestViewPostNonCanonicalFallsBack(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	summ := core.NewSummarizer(testSalt)
	sum := summ.SummarizePPSExpectedSize(0, dataset.Instance{3: 2, 8: 5, 21: 1}, 10)
	data, err := core.EncodeSummary(sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the one-byte entry count (offset 22: 5 header + 8 salt +
	// 1 instance varint + 8 tau) as a two-byte non-minimal uvarint.
	if data[22] >= 0x80 {
		t.Fatalf("fixture entry count %d not a one-byte uvarint", data[22])
	}
	bad := append(append([]byte{}, data[:22]...), data[22]|0x80, 0x00)
	bad = append(bad, data[23:]...)

	resp := postBody(t, ts.URL+"/v1/summaries?dataset=nc", core.ContentTypeV2, bad)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("non-canonical v2 post: status %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()
	got := getJSON[api.SumResult](t, ts.URL+"/v1/query?dataset=nc&q=sum&instances=0")
	if math.Float64bits(got.Sum) != math.Float64bits(sum.SubsetSum(nil)) {
		t.Errorf("sum after fallback %v != in-process %v", got.Sum, sum.SubsetSum(nil))
	}
}

// TestIngestVarOpt: raw ingest with kind=varopt streams through the
// engine's VarOpt reservoir. With k at least the number of distinct keys
// the reservoir never overflows, so the stored sum is the exact total —
// deterministic despite the sampler's randomized drops.
func TestIngestVarOpt(t *testing.T) {
	for _, cfg := range []engine.Config{
		{},
		{Parallel: true, Shards: 3, BatchSize: 32},
	} {
		ts := httptest.NewServer(server.New(server.NewRegistry(), cfg))
		in := fixture(300)[0]
		resp := postBody(t, ts.URL+"/v1/ingest?dataset=vi&instance=0&kind=varopt&k=100000&salt=7&format=ndjson",
			"application/x-ndjson", ndjsonBody(in))
		if resp.StatusCode != http.StatusCreated {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ts.Close()
			t.Fatalf("varopt ingest: status %d: %s", resp.StatusCode, body)
		}
		post := decodeResult[api.PostResult](t, resp)
		if post.Kind != "varopt" || post.Size != len(in) {
			t.Fatalf("PostResult = %+v, want kind varopt with %d keys", post, len(in))
		}
		got := getJSON[api.SumResult](t, ts.URL+"/v1/query?dataset=vi&q=sum&instances=0")
		if math.Abs(got.Sum-in.Total()) > 1e-9*in.Total() {
			t.Errorf("varopt sum %v != exact total %v", got.Sum, in.Total())
		}
		ts.Close()
	}
}
