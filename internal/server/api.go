package server

import "repro/pkg/api"

// The v1 response bodies live in pkg/api so that importers of pkg/client
// can name them; the aliases keep this package's handlers reading
// naturally.

// PostResult = api.PostResult.
type PostResult = api.PostResult

// MultiPostResult = api.MultiPostResult.
type MultiPostResult = api.MultiPostResult

// HealthResult = api.HealthResult.
type HealthResult = api.HealthResult

// EngineStatus = api.EngineStatus.
type EngineStatus = api.EngineStatus

// StoreStatus = api.StoreStatus.
type StoreStatus = api.StoreStatus

// DatasetInfo = api.DatasetInfo.
type DatasetInfo = api.DatasetInfo

// DistinctResult = api.DistinctResult.
type DistinctResult = api.DistinctResult

// DominanceResult = api.DominanceResult.
type DominanceResult = api.DominanceResult

// QuantileResult = api.QuantileResult.
type QuantileResult = api.QuantileResult

// SumResult = api.SumResult.
type SumResult = api.SumResult

// ErrorResult = api.ErrorResult.
type ErrorResult = api.ErrorResult
