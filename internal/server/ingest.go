package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sampling"
)

// The ingest path is the "summarize where the data lands" half of the
// dispersed-data loop: an edge site that cannot (or should not) ship its
// raw pair stream POSTs it to a local summaryd, which streams it through
// the sharded engine pipeline and registers only the compact summary.

// maxIngestLine bounds one CSV/ndjson line.
const maxIngestLine = 1 << 20

// maxIngestBody bounds one raw ingest request. The cap also bounds the
// per-request key-uniqueness map in scanPairs, so a single request cannot
// grow server memory without limit. Instances too large to ship within
// the cap are exactly the ones that should be summarized at the edge and
// POSTed to /v1/summaries instead — that is the primary dispersed
// workflow; raw ingest is the convenience path for thin producers.
const maxIngestBody = 256 << 20

// ingestParams carries the parsed, validated parameters of one ingest
// request.
type ingestParams struct {
	dataset  string
	instance int
	kind     string
	format   string
	tau      float64             // pps
	k        int                 // bottomk
	fam      sampling.RankFamily // bottomk
	p        float64             // set
	summ     *core.Summarizer
}

// parseIngestParams validates the query string against the registry state:
// an existing dataset pins the salt, coordination mode, and kind (an
// explicit conflict is rejected up front, before the body is read); a new
// dataset requires an explicit salt.
func (s *Server) parseIngestParams(r *http.Request) (ingestParams, error) {
	q := r.URL.Query()
	out := ingestParams{dataset: q.Get("dataset"), kind: q.Get("kind")}
	if out.dataset == "" {
		return out, fmt.Errorf("server: missing dataset parameter")
	}
	instance, err := strconv.Atoi(q.Get("instance"))
	if err != nil {
		return out, fmt.Errorf("server: ingest needs an instance parameter: %w", err)
	}
	out.instance = instance

	shared := false
	sharedGiven := q.Get("shared") != ""
	if sharedGiven {
		if shared, err = strconv.ParseBool(q.Get("shared")); err != nil {
			return out, fmt.Errorf("server: invalid shared parameter %q", q.Get("shared"))
		}
	}
	var salt uint64
	saltGiven := q.Get("salt") != ""
	if saltGiven {
		if salt, err = strconv.ParseUint(q.Get("salt"), 10, 64); err != nil {
			return out, fmt.Errorf("server: invalid salt parameter: %w", err)
		}
	}
	switch out.kind {
	case "pps":
		out.tau, err = strconv.ParseFloat(q.Get("tau"), 64)
		if err != nil || !(out.tau > 0) || math.IsInf(out.tau, 1) {
			return out, fmt.Errorf("server: pps ingest needs a positive finite tau parameter")
		}
	case "bottomk":
		out.k, err = strconv.Atoi(q.Get("k"))
		if err != nil || out.k <= 0 {
			return out, fmt.Errorf("server: bottomk ingest needs a positive k parameter")
		}
		switch fam := q.Get("family"); fam {
		case "", sampling.PPS{}.Name():
			out.fam = sampling.PPS{}
		case sampling.EXP{}.Name():
			out.fam = sampling.EXP{}
		default:
			return out, fmt.Errorf("server: unknown rank family %q", fam)
		}
	case "set":
		out.p, err = strconv.ParseFloat(q.Get("p"), 64)
		if err != nil || !(out.p > 0 && out.p <= 1) {
			return out, fmt.Errorf("server: set ingest needs a p parameter in (0,1]")
		}
	case "":
		return out, fmt.Errorf("server: missing kind parameter (pps, bottomk, set)")
	default:
		return out, fmt.Errorf("server: unknown ingest kind %q (pps, bottomk, set)", out.kind)
	}

	if info, err := s.reg.Info(out.dataset); err == nil {
		// The dataset pins randomization and kind; reject an explicit
		// conflict now (before the body is read) rather than summarizing a
		// stream under parameters the caller did not ask for.
		if (saltGiven && salt != info.Salt) || (sharedGiven && shared != info.Shared) {
			return out, fmt.Errorf("%w: dataset %q uses salt %d (shared=%v)",
				ErrIncompatible, out.dataset, info.Salt, info.Shared)
		}
		if out.kind != info.Kind {
			return out, fmt.Errorf("%w: dataset %q holds %s summaries, got %s",
				ErrIncompatible, out.dataset, info.Kind, out.kind)
		}
		salt, shared = info.Salt, info.Shared
	} else if !saltGiven {
		return out, fmt.Errorf("server: new dataset %q needs a salt parameter", out.dataset)
	}
	if shared {
		out.summ = core.NewCoordinatedSummarizer(salt)
	} else {
		out.summ = core.NewSummarizer(salt)
	}

	out.format = q.Get("format")
	if out.format == "" {
		if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
			out.format = "csv"
		} else {
			out.format = "ndjson"
		}
	}
	if out.format != "csv" && out.format != "ndjson" {
		return out, fmt.Errorf("server: unknown ingest format %q (csv, ndjson)", out.format)
	}
	return out, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseIngestParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	// One sink per kind; each routes through the engine pipeline under the
	// server's config (set sampling is stateless and needs no pipeline).
	var push func(h dataset.Key, v float64)
	var finish func() core.Summary
	switch p.kind {
	case "pps":
		st := p.summ.StreamPPS(s.cfg, p.instance, p.tau)
		push = st.Push
		finish = func() core.Summary { return st.Close() }
	case "bottomk":
		st := p.summ.StreamBottomK(s.cfg, p.instance, p.k, p.fam)
		push = st.Push
		finish = func() core.Summary { return st.Close() }
	case "set":
		st := p.summ.StreamSet(p.instance, p.p)
		push = func(h dataset.Key, _ float64) { st.Push(h) }
		finish = func() core.Summary { return st.Close() }
	}
	pairs, err := scanPairs(http.MaxBytesReader(w, r.Body, maxIngestBody), p.format, p.kind == "set", push)
	// The samplers hold goroutines under a parallel config; always drain.
	sum := finish()
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.reg.Put(p.dataset, sum); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, PostResult{
		Dataset:  p.dataset,
		Instance: sum.InstanceID(),
		Kind:     sum.Kind(),
		Size:     sum.Size(),
		Pairs:    pairs,
	})
}

// scanPairs streams (key, value) pairs out of a CSV or ndjson body into
// push, returning the number of pairs consumed. CSV lines are
// "key,value" ("key" alone when keysOnly; a leading "key,value" header is
// tolerated); ndjson lines are {"key": u64, "value": f64}. Values must be
// nonnegative and finite; zero-valued pairs are legal (weighted samplers
// never retain them).
//
// The instances×keys model assigns one value per key per instance, and
// the engine's streaming samplers rely on it (a repeated key corrupts
// bottom-k heap state). Unless keysOnly (set sampling, where a repeated
// member is harmless and deduplication is implicit), scanPairs therefore
// rejects a stream that repeats a key — producers must aggregate per-key
// before ingesting. The uniqueness check costs one map entry per pair,
// the same order as the decode work already done per line.
func scanPairs(body io.Reader, format string, keysOnly bool, push func(dataset.Key, float64)) (int64, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), maxIngestLine)
	var pairs int64
	lineNo := 0
	var seen map[uint64]struct{}
	if !keysOnly {
		seen = make(map[uint64]struct{})
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var key uint64
		var value float64
		switch format {
		case "csv":
			if lineNo == 1 && (line == "key,value" || line == "key") {
				continue
			}
			fields := strings.SplitN(line, ",", 3)
			if len(fields) > 2 {
				return pairs, fmt.Errorf("server: csv line %d: expected key,value, got extra columns %q", lineNo, fields[2])
			}
			k, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
			if err != nil {
				return pairs, fmt.Errorf("server: csv line %d: bad key: %w", lineNo, err)
			}
			key = k
			if len(fields) > 1 {
				v, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
				if err != nil {
					return pairs, fmt.Errorf("server: csv line %d: bad value: %w", lineNo, err)
				}
				value = v
			} else if !keysOnly {
				return pairs, fmt.Errorf("server: csv line %d: weighted ingest needs key,value", lineNo)
			}
		case "ndjson":
			var rec struct {
				Key   *uint64  `json:"key"`
				Value *float64 `json:"value"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return pairs, fmt.Errorf("server: ndjson line %d: %w", lineNo, err)
			}
			if rec.Key == nil {
				return pairs, fmt.Errorf("server: ndjson line %d: missing key", lineNo)
			}
			key = *rec.Key
			if rec.Value != nil {
				value = *rec.Value
			} else if !keysOnly {
				return pairs, fmt.Errorf("server: ndjson line %d: weighted ingest needs a value", lineNo)
			}
		}
		if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
			return pairs, fmt.Errorf("server: line %d: value %v outside [0, +Inf)", lineNo, value)
		}
		if seen != nil {
			if _, dup := seen[key]; dup {
				return pairs, fmt.Errorf("server: line %d: key %d repeated; weighted ingest needs one value per key (aggregate before posting)", lineNo, key)
			}
			seen[key] = struct{}{}
		}
		push(dataset.Key(key), value)
		pairs++
	}
	if err := sc.Err(); err != nil {
		return pairs, fmt.Errorf("server: reading pair stream: %w", err)
	}
	return pairs, nil
}
