package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs/trace"
	"repro/internal/sampling"
)

// The ingest path is the "summarize where the data lands" half of the
// dispersed-data loop: an edge site that cannot (or should not) ship its
// raw pair stream POSTs it to a local summaryd, which streams it through
// the sharded engine pipeline and registers only the compact summary.
// /v1/ingest summarizes one instance per request; /v1/ingest/multi
// carries an instance column and populates every listed instance of a
// dataset with ONE scan through the engine's one-pass multi-instance
// pipeline (per-instance samplers behind each shard worker).

// maxIngestLine bounds one CSV/ndjson line.
const maxIngestLine = 1 << 20

// maxIngestBody bounds one raw ingest request. The cap also bounds the
// per-request key-uniqueness map in the scanners, so a single request
// cannot grow server memory without limit. Instances too large to ship
// within the cap are exactly the ones that should be summarized at the
// edge and POSTed to /v1/summaries instead — that is the primary dispersed
// workflow; raw ingest is the convenience path for thin producers.
const maxIngestBody = 256 << 20

// ingestParams carries the parsed, validated parameters of one
// single-instance ingest request.
type ingestParams struct {
	dataset  string
	instance int
	kind     string
	format   string
	tau      float64             // pps
	k        int                 // bottomk
	fam      sampling.RankFamily // bottomk
	p        float64             // set
	summ     *core.Summarizer
}

// bindRandomization resolves an ingest's randomization against the
// registry state: an existing dataset pins the salt, coordination mode,
// and kind (an explicit conflict is rejected up front, before the body is
// read); a new dataset requires an explicit salt.
func (s *Server) bindRandomization(q url.Values, ds, kind string) (*core.Summarizer, error) {
	shared := false
	sharedGiven := q.Get("shared") != ""
	var err error
	if sharedGiven {
		if shared, err = strconv.ParseBool(q.Get("shared")); err != nil {
			return nil, fmt.Errorf("server: invalid shared parameter %q", q.Get("shared"))
		}
	}
	var salt uint64
	saltGiven := q.Get("salt") != ""
	if saltGiven {
		if salt, err = strconv.ParseUint(q.Get("salt"), 10, 64); err != nil {
			return nil, fmt.Errorf("server: invalid salt parameter: %w", err)
		}
	}
	if info, err := s.reg.Info(ds); err == nil {
		// The dataset pins randomization and kind; reject an explicit
		// conflict now (before the body is read) rather than summarizing a
		// stream under parameters the caller did not ask for.
		if (saltGiven && salt != info.Salt) || (sharedGiven && shared != info.Shared) {
			return nil, fmt.Errorf("%w: dataset %q uses salt %d (shared=%v)",
				ErrIncompatible, ds, info.Salt, info.Shared)
		}
		if kind != info.Kind {
			return nil, fmt.Errorf("%w: dataset %q holds %s summaries, got %s",
				ErrIncompatible, ds, info.Kind, kind)
		}
		salt, shared = info.Salt, info.Shared
	} else if !saltGiven {
		return nil, fmt.Errorf("server: new dataset %q needs a salt parameter", ds)
	}
	if shared {
		return core.NewCoordinatedSummarizer(salt), nil
	}
	return core.NewSummarizer(salt), nil
}

// resolveFormat picks the body format from the format parameter, falling
// back to the Content-Type.
func resolveFormat(q url.Values, r *http.Request) (string, error) {
	format := q.Get("format")
	if format == "" {
		if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
			format = "csv"
		} else {
			format = "ndjson"
		}
	}
	if format != "csv" && format != "ndjson" {
		return "", fmt.Errorf("server: unknown ingest format %q (csv, ndjson)", format)
	}
	return format, nil
}

// parseIngestParams validates the query string of a single-instance
// ingest against the registry state.
func (s *Server) parseIngestParams(r *http.Request) (ingestParams, error) {
	q := r.URL.Query()
	out := ingestParams{dataset: q.Get("dataset"), kind: q.Get("kind")}
	if err := checkDatasetName(out.dataset); err != nil {
		return out, err
	}
	instance, err := strconv.Atoi(q.Get("instance"))
	if err != nil {
		return out, fmt.Errorf("server: ingest needs an instance parameter: %w", err)
	}
	out.instance = instance

	switch out.kind {
	case "pps":
		out.tau, err = strconv.ParseFloat(q.Get("tau"), 64)
		if err != nil || !(out.tau > 0) || math.IsInf(out.tau, 1) {
			return out, fmt.Errorf("server: pps ingest needs a positive finite tau parameter")
		}
	case "bottomk":
		if out.k, out.fam, err = parseBottomKParams(q); err != nil {
			return out, err
		}
	case "set":
		out.p, err = strconv.ParseFloat(q.Get("p"), 64)
		if err != nil || !(out.p > 0 && out.p <= 1) {
			return out, fmt.Errorf("server: set ingest needs a p parameter in (0,1]")
		}
	case "varopt":
		out.k, err = strconv.Atoi(q.Get("k"))
		if err != nil || out.k <= 0 {
			return out, fmt.Errorf("server: varopt ingest needs a positive k parameter")
		}
	case "":
		return out, fmt.Errorf("server: missing kind parameter (pps, bottomk, set, varopt)")
	default:
		return out, fmt.Errorf("server: unknown ingest kind %q (pps, bottomk, set, varopt)", out.kind)
	}

	if out.summ, err = s.bindRandomization(q, out.dataset, out.kind); err != nil {
		return out, err
	}
	out.format, err = resolveFormat(q, r)
	return out, err
}

// parseBottomKParams parses the k and family parameters shared by the
// single- and multi-instance bottom-k ingests.
func parseBottomKParams(q url.Values) (int, sampling.RankFamily, error) {
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k <= 0 {
		return 0, nil, fmt.Errorf("server: bottomk ingest needs a positive k parameter")
	}
	switch fam := q.Get("family"); fam {
	case "", sampling.PPS{}.Name():
		return k, sampling.PPS{}, nil
	case sampling.EXP{}.Name():
		return k, sampling.EXP{}, nil
	default:
		return 0, nil, fmt.Errorf("server: unknown rank family %q", fam)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseIngestParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	// One sink per kind; each routes through the engine pipeline under the
	// server's config (set sampling is stateless and needs no pipeline).
	var push func(h dataset.Key, v float64)
	var finish func() core.Summary
	var stats func() engine.Stats // nil for set, which bypasses the engine
	switch p.kind {
	case "pps":
		st := p.summ.StreamPPS(s.cfg, p.instance, p.tau)
		push = st.Push
		finish = func() core.Summary { return st.Close() }
		stats = st.Stats
	case "bottomk":
		st := p.summ.StreamBottomK(s.cfg, p.instance, p.k, p.fam)
		push = st.Push
		finish = func() core.Summary { return st.Close() }
		stats = st.Stats
	case "set":
		st := p.summ.StreamSet(p.instance, p.p)
		push = func(h dataset.Key, _ float64) { st.Push(h) }
		finish = func() core.Summary { return st.Close() }
	case "varopt":
		st := p.summ.StreamVarOpt(s.cfg, p.instance, p.k)
		push = st.Push
		finish = func() core.Summary { return st.Close() }
		stats = st.Stats
	}
	// Tracing instruments the request's engine stages from outside the
	// pipeline: the scan+push loop, the drain (Close), and the registry
	// registration each get a child span, and the pipeline's final Stats()
	// are attached to the drain span — the hot loop itself stays untouched.
	sp := trace.SpanFromContext(r.Context())
	scan := sp.StartChild("ingest.scan")
	pairs, err := scanPairs(http.MaxBytesReader(w, r.Body, maxIngestBody), p.format, p.kind == "set", push)
	scan.SetAttr("format", p.format)
	scan.SetInt("pairs", pairs)
	scan.Finish()
	// The samplers hold goroutines under a parallel config; always drain.
	drain := sp.StartChild("engine.drain")
	sum := finish()
	// Fold the pipeline's final counters into the server totals — the
	// one-shot read of the Stats() seam (safe after Close), so the hot
	// loop itself carries no instrumentation. A failed scan still did
	// this much pipeline work; record it either way.
	if stats != nil {
		st := stats()
		recordEngineStats(drain, st)
		s.engine.record(st)
	} else {
		s.engine.ingests.Add(1)
	}
	drain.Finish()
	if err != nil {
		writeError(w, err)
		return
	}
	put := sp.StartChild("registry.put")
	err = s.reg.PutCtx(r.Context(), p.dataset, sum)
	put.Finish()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, PostResult{
		Dataset:  p.dataset,
		Instance: sum.InstanceID(),
		Kind:     sum.Kind(),
		Size:     sum.Size(),
		Pairs:    pairs,
	})
}

// multiIngestParams carries the parsed, validated parameters of one
// multi-instance ingest request.
type multiIngestParams struct {
	dataset   string
	instances []int       // instance IDs, in request order
	index     map[int]int // instance ID → position in instances
	kind      string
	format    string
	taus      []float64           // pps, one per instance
	k         int                 // bottomk
	fam       sampling.RankFamily // bottomk
	summ      *core.Summarizer
}

// parseMultiIngestParams validates the query string of a one-pass
// multi-instance ingest. instances lists the populated instance IDs; for
// pps, tau is either one threshold shared by every instance or a
// comma-separated list matching instances.
func (s *Server) parseMultiIngestParams(r *http.Request) (multiIngestParams, error) {
	q := r.URL.Query()
	out := multiIngestParams{dataset: q.Get("dataset"), kind: q.Get("kind")}
	if err := checkDatasetName(out.dataset); err != nil {
		return out, err
	}
	ids, err := parseInstances(q.Get("instances"))
	if err != nil {
		return out, err
	}
	if len(ids) == 0 {
		return out, fmt.Errorf("server: multi ingest needs an instances parameter (e.g. instances=0,1,2)")
	}
	out.instances = ids
	out.index = make(map[int]int, len(ids))
	for i, id := range ids {
		if _, dup := out.index[id]; dup {
			return out, fmt.Errorf("server: duplicate instance %d in instances parameter", id)
		}
		out.index[id] = i
	}

	switch out.kind {
	case "pps":
		parts := strings.Split(q.Get("tau"), ",")
		if len(parts) != 1 && len(parts) != len(ids) {
			return out, fmt.Errorf("server: pps multi ingest needs 1 or %d tau values, got %d", len(ids), len(parts))
		}
		out.taus = make([]float64, len(ids))
		for i := range out.taus {
			part := parts[0]
			if len(parts) > 1 {
				part = parts[i]
			}
			tau, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || !(tau > 0) || math.IsInf(tau, 1) {
				return out, fmt.Errorf("server: pps multi ingest needs positive finite tau values")
			}
			out.taus[i] = tau
		}
	case "bottomk":
		if out.k, out.fam, err = parseBottomKParams(q); err != nil {
			return out, err
		}
	case "":
		return out, fmt.Errorf("server: missing kind parameter (pps, bottomk)")
	case "set":
		return out, fmt.Errorf("server: multi ingest supports pps and bottomk (set sampling is stateless; ingest set instances separately)")
	default:
		return out, fmt.Errorf("server: unknown multi ingest kind %q (pps, bottomk)", out.kind)
	}

	if out.summ, err = s.bindRandomization(q, out.dataset, out.kind); err != nil {
		return out, err
	}
	out.format, err = resolveFormat(q, r)
	return out, err
}

func (s *Server) handleIngestMulti(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseMultiIngestParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var push func(i int, h dataset.Key, v float64)
	var finish func() []core.Summary
	var stats func() engine.Stats
	switch p.kind {
	case "pps":
		st := p.summ.StreamMultiPPS(s.cfg, p.instances, p.taus)
		push = st.Push
		finish = func() []core.Summary { return asSummaries(st.Close()) }
		stats = st.Stats
	case "bottomk":
		st := p.summ.StreamMultiBottomK(s.cfg, p.instances, p.k, p.fam)
		push = st.Push
		finish = func() []core.Summary { return asSummaries(st.Close()) }
		stats = st.Stats
	}
	sp := trace.SpanFromContext(r.Context())
	scan := sp.StartChild("ingest.scan")
	pairs, err := scanMultiPairs(http.MaxBytesReader(w, r.Body, maxIngestBody), p.format, p.index, push)
	scan.SetAttr("format", p.format)
	scan.SetInt("pairs", pairs)
	scan.Finish()
	// The samplers hold goroutines under a parallel config; always drain,
	// then fold the pipeline's final counters into the server totals.
	drain := sp.StartChild("engine.drain")
	sums := finish()
	st := stats()
	recordEngineStats(drain, st)
	s.engine.record(st)
	drain.Finish()
	if err != nil {
		writeError(w, err)
		return
	}
	put := sp.StartChild("registry.put")
	sizes := make([]int, len(sums))
	for i, sum := range sums {
		if err := s.reg.PutCtx(r.Context(), p.dataset, sum); err != nil {
			put.Finish()
			writeError(w, err)
			return
		}
		sizes[i] = sum.Size()
	}
	put.Finish()
	writeJSON(w, http.StatusCreated, MultiPostResult{
		Dataset:   p.dataset,
		Kind:      p.kind,
		Instances: p.instances,
		Sizes:     sizes,
		Pairs:     pairs,
	})
}

// recordEngineStats attaches one pipeline's final counters to its drain
// span — the same Stats() seam the metrics use, read once after Close.
func recordEngineStats(sp *trace.Span, st engine.Stats) {
	if sp == nil {
		return
	}
	sp.SetInt("pairs", int64(st.Pairs))
	sp.SetInt("batches", int64(st.Batches))
	sp.SetInt("stalls", int64(st.Stalls))
	sp.SetInt("rejected", int64(st.Rejected))
	sp.SetInt("shards", int64(st.Shards))
}

// asSummaries widens a concrete summary slice to the Summary interface.
func asSummaries[T core.Summary](in []T) []core.Summary {
	out := make([]core.Summary, len(in))
	for i, s := range in {
		out[i] = s
	}
	return out
}

// checkIngestValue enforces the shared value constraint of the weighted
// scanners: nonnegative and finite (zero-valued pairs are legal; weighted
// samplers never retain them).
func checkIngestValue(v float64, lineNo int) error {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("server: line %d: value %v outside [0, +Inf)", lineNo, v)
	}
	return nil
}

// scanPairs streams (key, value) pairs out of a CSV or ndjson body into
// push, returning the number of pairs consumed. CSV lines are
// "key,value" ("key" alone when keysOnly; a leading "key,value" header is
// tolerated); ndjson lines are {"key": u64, "value": f64}. Values must be
// nonnegative and finite.
//
// The instances×keys model assigns one value per key per instance, and
// the engine's streaming samplers rely on it (a repeated key corrupts
// bottom-k heap state). Unless keysOnly (set sampling, where a repeated
// member is harmless and deduplication is implicit), scanPairs therefore
// rejects a stream that repeats a key — producers must aggregate per-key
// before ingesting. The uniqueness check costs one map entry per pair,
// the same order as the decode work already done per line.
func scanPairs(body io.Reader, format string, keysOnly bool, push func(dataset.Key, float64)) (int64, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), maxIngestLine)
	var pairs int64
	lineNo := 0
	var seen map[uint64]struct{}
	if !keysOnly {
		seen = make(map[uint64]struct{})
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var key uint64
		var value float64
		switch format {
		case "csv":
			if lineNo == 1 && (line == "key,value" || line == "key") {
				continue
			}
			fields := strings.SplitN(line, ",", 3)
			if len(fields) > 2 {
				return pairs, fmt.Errorf("server: csv line %d: expected key,value, got extra columns %q", lineNo, fields[2])
			}
			k, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
			if err != nil {
				return pairs, fmt.Errorf("server: csv line %d: bad key: %w", lineNo, err)
			}
			key = k
			if len(fields) > 1 {
				v, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
				if err != nil {
					return pairs, fmt.Errorf("server: csv line %d: bad value: %w", lineNo, err)
				}
				value = v
			} else if !keysOnly {
				return pairs, fmt.Errorf("server: csv line %d: weighted ingest needs key,value", lineNo)
			}
		case "ndjson":
			var rec struct {
				Key   *uint64  `json:"key"`
				Value *float64 `json:"value"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return pairs, fmt.Errorf("server: ndjson line %d: %w", lineNo, err)
			}
			if rec.Key == nil {
				return pairs, fmt.Errorf("server: ndjson line %d: missing key", lineNo)
			}
			key = *rec.Key
			if rec.Value != nil {
				value = *rec.Value
			} else if !keysOnly {
				return pairs, fmt.Errorf("server: ndjson line %d: weighted ingest needs a value", lineNo)
			}
		}
		if err := checkIngestValue(value, lineNo); err != nil {
			return pairs, err
		}
		if seen != nil {
			if _, dup := seen[key]; dup {
				return pairs, fmt.Errorf("server: line %d: key %d repeated; weighted ingest needs one value per key (aggregate before posting)", lineNo, key)
			}
			seen[key] = struct{}{}
		}
		push(dataset.Key(key), value)
		pairs++
	}
	if err := sc.Err(); err != nil {
		return pairs, fmt.Errorf("server: reading pair stream: %w", err)
	}
	return pairs, nil
}

// scanMultiPairs streams (key, instance, value) triples out of a CSV or
// ndjson body into push, returning the number of pairs consumed. CSV
// lines are "key,instance,value" (a leading "key,instance,value" header
// is tolerated); ndjson lines are {"key": u64, "instance": int, "value":
// f64}, all fields required. The instance column holds instance IDs and
// every ID must appear in index (the request's instances parameter); push
// receives the ID's position. A repeated (key, instance) combination is
// rejected for the same reason scanPairs rejects repeated keys.
func scanMultiPairs(body io.Reader, format string, index map[int]int, push func(i int, h dataset.Key, v float64)) (int64, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), maxIngestLine)
	var pairs int64
	lineNo := 0
	type pairID struct {
		key      uint64
		instance int
	}
	seen := make(map[pairID]struct{})
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var key uint64
		var instance int
		var value float64
		switch format {
		case "csv":
			if lineNo == 1 && line == "key,instance,value" {
				continue
			}
			fields := strings.SplitN(line, ",", 4)
			if len(fields) != 3 {
				return pairs, fmt.Errorf("server: csv line %d: multi ingest needs key,instance,value", lineNo)
			}
			k, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
			if err != nil {
				return pairs, fmt.Errorf("server: csv line %d: bad key: %w", lineNo, err)
			}
			key = k
			if instance, err = strconv.Atoi(strings.TrimSpace(fields[1])); err != nil {
				return pairs, fmt.Errorf("server: csv line %d: bad instance: %w", lineNo, err)
			}
			if value, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64); err != nil {
				return pairs, fmt.Errorf("server: csv line %d: bad value: %w", lineNo, err)
			}
		case "ndjson":
			var rec struct {
				Key      *uint64  `json:"key"`
				Instance *int     `json:"instance"`
				Value    *float64 `json:"value"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return pairs, fmt.Errorf("server: ndjson line %d: %w", lineNo, err)
			}
			if rec.Key == nil || rec.Instance == nil || rec.Value == nil {
				return pairs, fmt.Errorf("server: ndjson line %d: multi ingest needs key, instance, and value", lineNo)
			}
			key, instance, value = *rec.Key, *rec.Instance, *rec.Value
		}
		if err := checkIngestValue(value, lineNo); err != nil {
			return pairs, err
		}
		idx, ok := index[instance]
		if !ok {
			return pairs, fmt.Errorf("server: line %d: instance %d not listed in the instances parameter", lineNo, instance)
		}
		id := pairID{key: key, instance: instance}
		if _, dup := seen[id]; dup {
			return pairs, fmt.Errorf("server: line %d: key %d repeated for instance %d; ingest needs one value per key per instance (aggregate before posting)", lineNo, key, instance)
		}
		seen[id] = struct{}{}
		push(idx, dataset.Key(key), value)
		pairs++
	}
	if err := sc.Err(); err != nil {
		return pairs, fmt.Errorf("server: reading pair stream: %w", err)
	}
	return pairs, nil
}
